// Package motif counts network motifs — connected vertex-induced subgraph
// classes — using the approximate-matching pipeline, the way §5.6 does: the
// prototypes of an unlabeled c-clique are exactly the connected c-vertex
// patterns, the pipeline counts non-induced matches for each, and an
// overcount-matrix conversion recovers induced counts. An independent
// ESU-style enumerator provides the direct reference implementation.
package motif

import (
	"fmt"

	"approxmatch/internal/core"
	"approxmatch/internal/graph"
	"approxmatch/internal/pattern"
	"approxmatch/internal/prototype"
	"approxmatch/internal/refmatch"
)

// Counts maps a canonical pattern code to the number of vertex sets whose
// induced subgraph realizes that pattern.
type Counts map[string]int64

// Clique returns the unlabeled c-clique template (the maximal-edge motif the
// prototype generation descends from).
func Clique(c int) *pattern.Template {
	labels := make([]pattern.Label, c)
	var edges []pattern.Edge
	for i := 0; i < c; i++ {
		for j := i + 1; j < c; j++ {
			edges = append(edges, pattern.Edge{I: i, J: j})
		}
	}
	return pattern.MustNew(labels, edges)
}

// PipelineCounts counts all motifs of the given size via the
// approximate-matching pipeline (the "HGT" column of the §5.6 table). The
// graph is treated as unlabeled. It returns the per-pattern induced counts
// and the pipeline result for inspection.
func PipelineCounts(g *graph.Graph, size int, cfg core.Config) (Counts, *core.Result, error) {
	if g.MaxLabel() != 0 {
		// Strip labels: motif counting is unlabeled.
		g = graph.FromEdges(make([]graph.Label, g.NumVertices()), g.Edges())
	}
	clique := Clique(size)
	cfg.EditDistance = clique.NumEdges() // explore every connected pattern
	cfg.CountMatches = true
	res, err := core.Run(g, clique, cfg)
	if err != nil {
		return nil, nil, fmt.Errorf("motif: %w", err)
	}
	counts, err := InducedFromResult(res)
	return counts, res, err
}

// InducedFromResult converts a pipeline result with per-prototype mapping
// counts into induced pattern counts.
func InducedFromResult(res *core.Result) (Counts, error) {
	set := res.Set
	// Subgraph-copy counts: mappings / |Aut|.
	sub := make([]int64, set.Count())
	for pi, p := range set.Protos {
		mc := res.Solutions[pi].MatchCount
		if mc < 0 {
			return nil, fmt.Errorf("motif: prototype %d was not counted", pi)
		}
		aut := pattern.CountAutomorphisms(p.Template)
		if mc%aut != 0 {
			return nil, fmt.Errorf("motif: mapping count %d not divisible by |Aut|=%d", mc, aut)
		}
		sub[pi] = mc / aut
	}
	return inducedFromSubgraphCounts(set, sub)
}

// inducedFromSubgraphCounts solves the triangular overcount system
//
//	N_sub(p) = Σ_{q ⊇ p} a(p,q) · N_ind(q)
//
// ordered by decreasing edge count, where a(p,q) is the number of spanning
// subgraphs of pattern q isomorphic to p.
func inducedFromSubgraphCounts(set *prototype.Set, sub []int64) (Counts, error) {
	protos := set.Protos
	n := len(protos)
	ind := make([]int64, n)
	// Set.Protos is ordered by increasing Dist, i.e. decreasing edge
	// count, which is exactly the triangular elimination order.
	for pi, p := range protos {
		val := sub[pi]
		for qi, q := range protos {
			if q.Template.NumEdges() <= p.Template.NumEdges() {
				continue
			}
			val -= spanningCopies(p.Template, q.Template) * ind[qi]
		}
		if val < 0 {
			return nil, fmt.Errorf("motif: negative induced count for prototype %d", pi)
		}
		ind[pi] = val
	}
	out := make(Counts, n)
	for pi, p := range protos {
		out[p.Canon] = ind[pi]
	}
	return out, nil
}

// spanningCopies returns the number of spanning subgraphs of pattern q
// (viewed as a graph) isomorphic to pattern p.
func spanningCopies(p, q *pattern.Template) int64 {
	gq := templateAsGraph(q)
	mappings := refmatch.Count(gq, p, false)
	return mappings / pattern.CountAutomorphisms(p)
}

// templateAsGraph converts a template to an unlabeled background graph.
func templateAsGraph(t *pattern.Template) *graph.Graph {
	b := graph.NewBuilder(t.NumVertices())
	for _, e := range t.Edges() {
		b.AddEdge(graph.VertexID(e.I), graph.VertexID(e.J))
	}
	return b.Build()
}
