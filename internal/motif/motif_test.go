package motif

import (
	"testing"

	"approxmatch/internal/core"
	"approxmatch/internal/datagen"
	"approxmatch/internal/graph"
	"approxmatch/internal/pattern"
	"approxmatch/internal/refmatch"
	"approxmatch/internal/tle"
)

func complete(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(graph.VertexID(i), graph.VertexID(j))
		}
	}
	return b.Build()
}

func cycle(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(graph.VertexID(i), graph.VertexID((i+1)%n))
	}
	return b.Build()
}

func codeOf(edges []pattern.Edge, n int) string {
	return pattern.CanonicalCode(pattern.MustNew(make([]pattern.Label, n), edges))
}

func triangleCode() string {
	return codeOf([]pattern.Edge{{I: 0, J: 1}, {I: 1, J: 2}, {I: 0, J: 2}}, 3)
}

func pathCode() string {
	return codeOf([]pattern.Edge{{I: 0, J: 1}, {I: 1, J: 2}}, 3)
}

func TestDirectCountsKnownGraphs(t *testing.T) {
	// K5: C(5,3)=10 triangles, 0 induced paths.
	k5 := complete(5)
	c := DirectCounts(k5, 3)
	if c[triangleCode()] != 10 || c[pathCode()] != 0 {
		t.Errorf("K5 3-motifs = %v", c)
	}
	// C6: 0 triangles, 6 induced paths.
	c6 := cycle(6)
	c = DirectCounts(c6, 3)
	if c[triangleCode()] != 0 || c[pathCode()] != 6 {
		t.Errorf("C6 3-motifs = %v", c)
	}
	// C6 4-motifs: 6 induced P4s, nothing else.
	c = DirectCounts(c6, 4)
	var total int64
	for _, v := range c {
		total += v
	}
	if total != 6 {
		t.Errorf("C6 4-motif total = %d, want 6 (%v)", total, c)
	}
}

func TestPipelineCountsEqualDirect3Motif(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"K5":    complete(5),
		"C6":    cycle(6),
		"ER":    datagen.ER(60, 150, 9),
		"power": datagen.PowerLaw(50, 3, 10),
	}
	for name, g := range graphs {
		pc, _, err := PipelineCounts(g, 3, core.DefaultConfig(0))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		dc := DirectCounts(g, 3)
		assertCountsEqual(t, name+"/3", pc, dc)
	}
}

func TestPipelineCountsEqualDirect4Motif(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"K6": complete(6),
		"ER": datagen.ER(40, 100, 11),
	}
	for name, g := range graphs {
		pc, _, err := PipelineCounts(g, 4, core.DefaultConfig(0))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		dc := DirectCounts(g, 4)
		assertCountsEqual(t, name+"/4", pc, dc)
	}
}

func TestTLEAgreesWithDirect(t *testing.T) {
	g := datagen.ER(50, 120, 12)
	for _, size := range []int{3, 4} {
		tc, _, err := tle.CountMotifs(g, size, tle.Config{})
		if err != nil {
			t.Fatal(err)
		}
		dc := DirectCounts(g, size)
		assertCountsEqual(t, "tle", Counts(tc), dc)
	}
}

func TestTLEOutOfMemory(t *testing.T) {
	g := complete(12)
	_, _, err := tle.CountMotifs(g, 4, tle.Config{MaxEmbeddings: 50})
	if err != tle.ErrOutOfMemory {
		t.Errorf("expected OOM, got %v", err)
	}
}

func TestDirectAgreesWithBruteForce(t *testing.T) {
	// refmatch induced counting: mappings / |Aut| per pattern.
	g := datagen.ER(30, 70, 13)
	dc := DirectCounts(g, 3)
	tri := pattern.MustNew(make([]pattern.Label, 3),
		[]pattern.Edge{{I: 0, J: 1}, {I: 1, J: 2}, {I: 0, J: 2}})
	p3 := pattern.MustNew(make([]pattern.Label, 3),
		[]pattern.Edge{{I: 0, J: 1}, {I: 1, J: 2}})
	wantTri := refmatch.Count(g, tri, true) / pattern.CountAutomorphisms(tri)
	wantP3 := refmatch.Count(g, p3, true) / pattern.CountAutomorphisms(p3)
	if dc[triangleCode()] != wantTri {
		t.Errorf("triangles: esu=%d brute=%d", dc[triangleCode()], wantTri)
	}
	if dc[pathCode()] != wantP3 {
		t.Errorf("paths: esu=%d brute=%d", dc[pathCode()], wantP3)
	}
}

func TestCliqueTemplate(t *testing.T) {
	c := Clique(4)
	if c.NumVertices() != 4 || c.NumEdges() != 6 {
		t.Fatalf("Clique(4) wrong: %v", c)
	}
}

func assertCountsEqual(t *testing.T, name string, a, b Counts) {
	t.Helper()
	keys := map[string]bool{}
	for k := range a {
		keys[k] = true
	}
	for k := range b {
		keys[k] = true
	}
	for k := range keys {
		if a[k] != b[k] {
			t.Errorf("%s: pattern %q: %d vs %d", name, k, a[k], b[k])
		}
	}
}

func TestInducedFromResultErrors(t *testing.T) {
	// Uncounted prototypes must be rejected.
	g := complete(5)
	res, err := core.Run(g, Clique(3), core.DefaultConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := InducedFromResult(res); err == nil {
		t.Error("uncounted result accepted")
	}
}

func TestPipelineCountsStripsLabels(t *testing.T) {
	// A labeled graph must be treated as unlabeled for motif counting.
	b := graph.NewBuilder(4)
	b.SetLabel(0, 5)
	b.SetLabel(1, 6)
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			b.AddEdge(graph.VertexID(i), graph.VertexID(j))
		}
	}
	g := b.Build()
	counts, _, err := PipelineCounts(g, 3, core.DefaultConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, c := range counts {
		total += c
	}
	if total != 4 {
		t.Errorf("labeled K4 motif total = %d, want 4", total)
	}
}
