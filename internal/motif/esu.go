package motif

import (
	"approxmatch/internal/graph"
	"approxmatch/internal/pattern"
)

// DirectCounts enumerates every connected vertex-induced subgraph of the
// given size exactly once with the ESU algorithm (Wernicke's FANMOD
// enumerator) and groups the occurrences by canonical pattern code. It is
// the independent reference against which both the pipeline-based counter
// and the TLE baseline are validated.
func DirectCounts(g *graph.Graph, size int) Counts {
	counts := make(Counts)
	codeCache := make(map[uint64]string)
	EnumerateInduced(g, size, func(emb []graph.VertexID) {
		counts[inducedCodeOf(g, emb, codeCache)]++
	})
	return counts
}

// EnumerateInduced calls fn once per connected induced vertex set of the
// given size (ESU); the vertex slice passed to fn is reused between calls.
func EnumerateInduced(g *graph.Graph, size int, fn func([]graph.VertexID)) {
	if size < 1 {
		return
	}
	n := g.NumVertices()
	sub := make([]graph.VertexID, 0, size)
	inSub := make([]bool, n)

	// adjacentToSub reports whether u has a neighbor in the current sub.
	adjacentToSub := func(u graph.VertexID) bool {
		for _, w := range g.Neighbors(u) {
			if inSub[w] {
				return true
			}
		}
		return false
	}

	var extendSubgraph func(ext []graph.VertexID, root graph.VertexID)
	extendSubgraph = func(ext []graph.VertexID, root graph.VertexID) {
		if len(sub) == size {
			fn(sub)
			return
		}
		for i := 0; i < len(ext); i++ {
			w := ext[i]
			// Exclusive neighborhood of w w.r.t. the CURRENT sub (before
			// adding w): neighbors beyond root that are neither in sub nor
			// adjacent to it.
			newExt := append([]graph.VertexID(nil), ext[i+1:]...)
			for _, u := range g.Neighbors(w) {
				if u > root && !inSub[u] && u != w && !adjacentToSub(u) && !containsVertex(newExt, u) {
					newExt = append(newExt, u)
				}
			}
			sub = append(sub, w)
			inSub[w] = true
			extendSubgraph(newExt, root)
			inSub[w] = false
			sub = sub[:len(sub)-1]
		}
	}

	for v := 0; v < n; v++ {
		root := graph.VertexID(v)
		sub = append(sub, root)
		inSub[root] = true
		var ext []graph.VertexID
		for _, u := range g.Neighbors(root) {
			if u > root {
				ext = append(ext, u)
			}
		}
		extendSubgraph(ext, root)
		inSub[root] = false
		sub = sub[:0]
	}
}

// containsVertex linearly scans the (small) extension set.
func containsVertex(xs []graph.VertexID, v graph.VertexID) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// inducedCodeOf computes the canonical code of the induced subgraph on emb,
// memoized by adjacency mask (size is fixed per enumeration).
func inducedCodeOf(g *graph.Graph, emb []graph.VertexID, cache map[uint64]string) string {
	n := len(emb)
	var mask uint64
	var edges []pattern.Edge
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if g.HasEdge(emb[i], emb[j]) {
				mask |= 1 << uint(i*n+j)
				edges = append(edges, pattern.Edge{I: i, J: j})
			}
		}
	}
	if code, ok := cache[mask]; ok {
		return code
	}
	t := pattern.MustNew(make([]pattern.Label, n), edges)
	code := pattern.CanonicalCode(t)
	cache[mask] = code
	return code
}
