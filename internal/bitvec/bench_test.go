package bitvec

import (
	"math/rand"
	"testing"
)

func BenchmarkVectorSetGet(b *testing.B) {
	v := New(1 << 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		idx := i & (1<<16 - 1)
		v.Set(idx)
		if !v.Get(idx) {
			b.Fatal("bit lost")
		}
	}
}

func BenchmarkVectorCount(b *testing.B) {
	v := New(1 << 20)
	for i := 0; i < 1<<20; i += 3 {
		v.Set(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if v.Count() == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkVectorForEach(b *testing.B) {
	v := New(1 << 18)
	for i := 0; i < 1<<18; i += 7 {
		v.Set(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		v.ForEach(func(int) { n++ })
	}
}

func BenchmarkVectorOr(b *testing.B) {
	x, y := New(1<<20), New(1<<20)
	for i := 0; i < 1<<20; i += 5 {
		y.Set(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Or(y)
	}
}

// The next benchmarks pair each word-at-a-time primitive with its per-bit
// reference, so the candidate-set kernels' switch to AndInto and range scans
// is backed by before/after numbers (`go test -bench . ./internal/bitvec/`).

const benchBits = 1 << 16

func benchVectors(density float64) (*Vector, *Vector) {
	rng := rand.New(rand.NewSource(42))
	a, b := New(benchBits), New(benchBits)
	for i := 0; i < benchBits; i++ {
		if rng.Float64() < density {
			a.Set(i)
		}
		if rng.Float64() < density {
			b.Set(i)
		}
	}
	return a, b
}

func BenchmarkAndPerBit(bm *testing.B) {
	a, b := benchVectors(0.5)
	dst := New(benchBits)
	bm.ReportAllocs()
	for n := 0; n < bm.N; n++ {
		for i := 0; i < benchBits; i++ {
			if a.Get(i) && b.Get(i) {
				dst.Set(i)
			} else {
				dst.Clear(i)
			}
		}
	}
}

func BenchmarkAndInto(bm *testing.B) {
	a, b := benchVectors(0.5)
	dst := New(benchBits)
	bm.ReportAllocs()
	for n := 0; n < bm.N; n++ {
		dst.AndInto(a, b)
	}
}

func BenchmarkRangeScanPerBit(bm *testing.B) {
	a, _ := benchVectors(0.02) // sparse: a pruned adjacency range
	sink := 0
	bm.ReportAllocs()
	for n := 0; n < bm.N; n++ {
		for i := 100; i < benchBits-100; i++ {
			if a.Get(i) {
				sink += i
			}
		}
	}
	_ = sink
}

func BenchmarkRangeScanWordAtATime(bm *testing.B) {
	a, _ := benchVectors(0.02)
	sink := 0
	bm.ReportAllocs()
	for n := 0; n < bm.N; n++ {
		a.ForEachInRange(100, benchBits-100, func(i int) { sink += i })
	}
	_ = sink
}

func BenchmarkMatrixRowForEach(b *testing.B) {
	m := NewMatrix(1024, 256)
	for r := 0; r < 1024; r++ {
		for c := 0; c < 256; c += 9 {
			m.Set(r, c)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		m.RowForEach(i&1023, func(int) { n++ })
	}
}

func TestAndInto(t *testing.T) {
	a, b := benchVectors(0.5)
	want := a.Clone()
	want.And(b)
	got := New(benchBits)
	got.AndInto(a, b)
	if !got.Equal(want) {
		t.Fatal("AndInto disagrees with And")
	}
	// Aliasing: v.AndInto(v, mask) is the in-place masked intersection.
	aliased := a.Clone()
	aliased.AndInto(aliased, b)
	if !aliased.Equal(want) {
		t.Fatal("aliased AndInto disagrees with And")
	}
}
