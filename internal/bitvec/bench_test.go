package bitvec

import "testing"

func BenchmarkVectorSetGet(b *testing.B) {
	v := New(1 << 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		idx := i & (1<<16 - 1)
		v.Set(idx)
		if !v.Get(idx) {
			b.Fatal("bit lost")
		}
	}
}

func BenchmarkVectorCount(b *testing.B) {
	v := New(1 << 20)
	for i := 0; i < 1<<20; i += 3 {
		v.Set(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if v.Count() == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkVectorForEach(b *testing.B) {
	v := New(1 << 18)
	for i := 0; i < 1<<18; i += 7 {
		v.Set(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		v.ForEach(func(int) { n++ })
	}
}

func BenchmarkVectorOr(b *testing.B) {
	x, y := New(1<<20), New(1<<20)
	for i := 0; i < 1<<20; i += 5 {
		y.Set(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Or(y)
	}
}

func BenchmarkMatrixRowForEach(b *testing.B) {
	m := NewMatrix(1024, 256)
	for r := 0; r < 1024; r++ {
		for c := 0; c < 256; c += 9 {
			m.Set(r, c)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		m.RowForEach(i&1023, func(int) { n++ })
	}
}
