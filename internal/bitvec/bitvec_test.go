package bitvec

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestVectorBasics(t *testing.T) {
	v := New(130)
	if v.Len() != 130 {
		t.Fatalf("Len = %d, want 130", v.Len())
	}
	if v.Any() {
		t.Fatal("new vector should be empty")
	}
	v.Set(0)
	v.Set(64)
	v.Set(129)
	if got := v.Count(); got != 3 {
		t.Fatalf("Count = %d, want 3", got)
	}
	for _, i := range []int{0, 64, 129} {
		if !v.Get(i) {
			t.Errorf("bit %d should be set", i)
		}
	}
	if v.Get(1) || v.Get(128) {
		t.Error("unexpected bits set")
	}
	v.Clear(64)
	if v.Get(64) {
		t.Error("bit 64 should be clear")
	}
	if got := v.Count(); got != 2 {
		t.Fatalf("Count after clear = %d, want 2", got)
	}
}

func TestVectorSetAllRespectsLength(t *testing.T) {
	v := New(70)
	v.SetAll()
	if got := v.Count(); got != 70 {
		t.Fatalf("Count = %d, want 70", got)
	}
	v.ClearAll()
	if v.Any() {
		t.Fatal("ClearAll left bits set")
	}
}

func TestVectorForEachOrder(t *testing.T) {
	v := New(200)
	want := []int{3, 64, 65, 130, 199}
	for _, i := range want {
		v.Set(i)
	}
	var got []int
	v.ForEach(func(i int) { got = append(got, i) })
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach visited %v, want %v", got, want)
		}
	}
}

func TestVectorNextSet(t *testing.T) {
	v := New(150)
	v.Set(10)
	v.Set(100)
	cases := []struct{ from, want int }{
		{0, 10}, {10, 10}, {11, 100}, {100, 100}, {101, -1}, {149, -1},
	}
	for _, c := range cases {
		if got := v.NextSet(c.from); got != c.want {
			t.Errorf("NextSet(%d) = %d, want %d", c.from, got, c.want)
		}
	}
}

func TestVectorBooleanOps(t *testing.T) {
	a, b := New(100), New(100)
	a.Set(1)
	a.Set(50)
	b.Set(50)
	b.Set(99)

	or := a.Clone()
	or.Or(b)
	if or.Count() != 3 || !or.Get(1) || !or.Get(50) || !or.Get(99) {
		t.Errorf("Or result wrong: %v", or)
	}
	and := a.Clone()
	and.And(b)
	if and.Count() != 1 || !and.Get(50) {
		t.Errorf("And result wrong: %v", and)
	}
	andNot := a.Clone()
	andNot.AndNot(b)
	if andNot.Count() != 1 || !andNot.Get(1) {
		t.Errorf("AndNot result wrong: %v", andNot)
	}
	if !a.Equal(a.Clone()) {
		t.Error("clone should equal original")
	}
	if a.Equal(b) {
		t.Error("different vectors reported equal")
	}
}

func TestVectorQuickCountMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(300)
		v := New(n)
		naive := make(map[int]bool)
		for i := 0; i < 100; i++ {
			b := rng.Intn(n)
			if rng.Intn(2) == 0 {
				v.Set(b)
				naive[b] = true
			} else {
				v.Clear(b)
				delete(naive, b)
			}
		}
		if v.Count() != len(naive) {
			return false
		}
		for b := range naive {
			if !v.Get(b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(5, 70)
	m.Set(0, 0)
	m.Set(0, 69)
	m.Set(4, 64)
	if !m.Get(0, 0) || !m.Get(0, 69) || !m.Get(4, 64) {
		t.Fatal("set bits not readable")
	}
	if m.Get(1, 0) {
		t.Fatal("unexpected bit")
	}
	if got := m.RowCount(0); got != 2 {
		t.Fatalf("RowCount(0) = %d, want 2", got)
	}
	if !m.RowAny(4) || m.RowAny(2) {
		t.Fatal("RowAny wrong")
	}
	if got := m.ColCount(64); got != 1 {
		t.Fatalf("ColCount(64) = %d, want 1", got)
	}
	var cols []int
	m.RowForEach(0, func(c int) { cols = append(cols, c) })
	if len(cols) != 2 || cols[0] != 0 || cols[1] != 69 {
		t.Fatalf("RowForEach = %v", cols)
	}
	if !m.RowAnyOf(0, []int{5, 69}) || m.RowAnyOf(0, []int{5, 6}) {
		t.Fatal("RowAnyOf wrong")
	}
	m.Clear(0, 69)
	if m.Get(0, 69) {
		t.Fatal("Clear failed")
	}
}

func TestMatrixRowIsolation(t *testing.T) {
	// Bits at the end of one row must not leak into the next row.
	m := NewMatrix(3, 64)
	m.Set(0, 63)
	if m.Get(1, 0) || m.RowAny(1) {
		t.Fatal("row bleed detected")
	}
}

func TestNextSetBoundaries(t *testing.T) {
	v := New(64)
	if v.NextSet(0) != -1 {
		t.Error("empty vector NextSet != -1")
	}
	v.Set(63)
	if v.NextSet(63) != 63 || v.NextSet(64) != -1 {
		t.Error("word-boundary NextSet wrong")
	}
	if New(0).NextSet(0) != -1 {
		t.Error("zero-length NextSet wrong")
	}
}

func TestVectorStringTruncation(t *testing.T) {
	v := New(300)
	v.Set(0)
	s := v.String()
	if len(s) == 0 || s[0] != '1' {
		t.Errorf("String = %q", s)
	}
	if !strings.Contains(s, "(300 bits)") {
		t.Errorf("long vector not truncated: %q", s)
	}
}

func TestBytesAccounting(t *testing.T) {
	if New(64).Bytes() != 8 || New(65).Bytes() != 16 {
		t.Error("Vector.Bytes wrong")
	}
	if NewMatrix(2, 64).Bytes() != 16 {
		t.Error("Matrix.Bytes wrong")
	}
}

func TestVectorForEachInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(300)
		v := New(n)
		naive := make([]bool, n)
		for i := 0; i < n/2; i++ {
			b := rng.Intn(n)
			v.Set(b)
			naive[b] = true
		}
		lo, hi := rng.Intn(n+1), rng.Intn(n+1)
		if rng.Intn(5) == 0 {
			lo, hi = -3, n+7 // out-of-range bounds must clamp
		}
		var got []int
		v.ForEachInRange(lo, hi, func(i int) { got = append(got, i) })
		var want []int
		for i := 0; i < n; i++ {
			if naive[i] && i >= lo && i < hi {
				want = append(want, i)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("n=%d [%d,%d): got %d bits, want %d", n, lo, hi, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("n=%d [%d,%d): got[%d]=%d want %d", n, lo, hi, i, got[i], want[i])
			}
		}
	}
}

func TestMatrixEqual(t *testing.T) {
	a := NewMatrix(5, 70)
	b := NewMatrix(5, 70)
	if !a.Equal(b) {
		t.Fatal("empty matrices should be equal")
	}
	a.Set(3, 65)
	if a.Equal(b) {
		t.Fatal("differing matrices reported equal")
	}
	b.Set(3, 65)
	if !a.Equal(b) {
		t.Fatal("equal matrices reported different")
	}
	if a.Equal(NewMatrix(5, 71)) || a.Equal(NewMatrix(6, 70)) {
		t.Fatal("shape mismatch reported equal")
	}
}

func TestVectorQuickCountInRangeMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(300)
		v := New(n)
		for i := 0; i < 100; i++ {
			v.Set(rng.Intn(n))
		}
		for trial := 0; trial < 20; trial++ {
			lo := rng.Intn(n+10) - 5
			hi := lo + rng.Intn(n+10)
			naive := 0
			for i := lo; i < hi; i++ {
				if i >= 0 && i < n && v.Get(i) {
					naive++
				}
			}
			if v.CountInRange(lo, hi) != naive {
				return false
			}
		}
		return v.CountInRange(0, n) == v.Count()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
