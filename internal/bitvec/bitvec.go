// Package bitvec provides compact bit-vector utilities used throughout the
// approximate-matching pipeline: per-vertex prototype match vectors (ρ in the
// paper), active vertex/edge sets, and small fixed-width state sets.
package bitvec

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Vector is a fixed-length bit vector. The zero value is an empty vector of
// length zero; use New to allocate one of a given length.
type Vector struct {
	words []uint64
	n     int
}

// New returns a Vector of n bits, all clear.
func New(n int) *Vector {
	if n < 0 {
		panic("bitvec: negative length")
	}
	return &Vector{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// Len returns the number of bits in the vector.
func (v *Vector) Len() int { return v.n }

// Set sets bit i.
func (v *Vector) Set(i int) {
	v.words[i/wordBits] |= 1 << uint(i%wordBits)
}

// Clear clears bit i.
func (v *Vector) Clear(i int) {
	v.words[i/wordBits] &^= 1 << uint(i%wordBits)
}

// Get reports whether bit i is set.
func (v *Vector) Get(i int) bool {
	return v.words[i/wordBits]&(1<<uint(i%wordBits)) != 0
}

// SetAll sets every bit.
func (v *Vector) SetAll() {
	for i := range v.words {
		v.words[i] = ^uint64(0)
	}
	v.trim()
}

// ClearAll clears every bit.
func (v *Vector) ClearAll() {
	for i := range v.words {
		v.words[i] = 0
	}
}

// Count returns the number of set bits.
func (v *Vector) Count() int {
	c := 0
	for _, w := range v.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Any reports whether any bit is set.
func (v *Vector) Any() bool {
	for _, w := range v.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// Or sets v to v|other. The vectors must have equal length.
func (v *Vector) Or(other *Vector) {
	v.checkLen(other)
	for i, w := range other.words {
		v.words[i] |= w
	}
}

// And sets v to v&other. The vectors must have equal length.
func (v *Vector) And(other *Vector) {
	v.checkLen(other)
	for i, w := range other.words {
		v.words[i] &= w
	}
}

// AndInto sets v to a&b, word-at-a-time. All three vectors must have equal
// length; v may alias a or b (so v.AndInto(v, mask) is an in-place masked
// intersection). The candidate-set kernels use it to apply a per-slot filter
// to the active-edge vector in one pass instead of per-bit clears.
func (v *Vector) AndInto(a, b *Vector) {
	v.checkLen(a)
	v.checkLen(b)
	for i := range v.words {
		v.words[i] = a.words[i] & b.words[i]
	}
}

// AndNot clears in v every bit set in other.
func (v *Vector) AndNot(other *Vector) {
	v.checkLen(other)
	for i, w := range other.words {
		v.words[i] &^= w
	}
}

// Clone returns an independent copy of v.
func (v *Vector) Clone() *Vector {
	w := make([]uint64, len(v.words))
	copy(w, v.words)
	return &Vector{words: w, n: v.n}
}

// Equal reports whether v and other have the same length and bits.
func (v *Vector) Equal(other *Vector) bool {
	if v.n != other.n {
		return false
	}
	for i, w := range v.words {
		if w != other.words[i] {
			return false
		}
	}
	return true
}

// ForEach calls fn for every set bit, in increasing order.
func (v *Vector) ForEach(fn func(i int)) {
	for wi, w := range v.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(wi*wordBits + b)
			w &= w - 1
		}
	}
}

// ForEachInRange calls fn for every set bit i with lo <= i < hi, in
// increasing order. It scans word-at-a-time, so sparse ranges cost O(words)
// rather than O(bits); the parallel kernels use it to walk per-worker vertex
// partitions.
func (v *Vector) ForEachInRange(lo, hi int, fn func(i int)) {
	if lo < 0 {
		lo = 0
	}
	if hi > v.n {
		hi = v.n
	}
	if lo >= hi {
		return
	}
	first, last := lo/wordBits, (hi-1)/wordBits
	for wi := first; wi <= last; wi++ {
		w := v.words[wi]
		if wi == first {
			w &= ^uint64(0) << uint(lo%wordBits)
		}
		if wi == last {
			if r := (wi+1)*wordBits - hi; r > 0 {
				w &= ^uint64(0) >> uint(r)
			}
		}
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(wi*wordBits + b)
			w &= w - 1
		}
	}
}

// CountInRange returns the number of set bits i with lo <= i < hi, by
// word-at-a-time popcounts — the per-partition active-work accounting used
// by the superstep balance diagnostics and tests.
func (v *Vector) CountInRange(lo, hi int) int {
	if lo < 0 {
		lo = 0
	}
	if hi > v.n {
		hi = v.n
	}
	if lo >= hi {
		return 0
	}
	first, last := lo/wordBits, (hi-1)/wordBits
	total := 0
	for wi := first; wi <= last; wi++ {
		w := v.words[wi]
		if wi == first {
			w &= ^uint64(0) << uint(lo%wordBits)
		}
		if wi == last {
			if r := (wi+1)*wordBits - hi; r > 0 {
				w &= ^uint64(0) >> uint(r)
			}
		}
		total += bits.OnesCount64(w)
	}
	return total
}

// NextSet returns the index of the first set bit at or after i, or -1 if
// there is none.
func (v *Vector) NextSet(i int) int {
	if i >= v.n {
		return -1
	}
	wi := i / wordBits
	w := v.words[wi] >> uint(i%wordBits)
	if w != 0 {
		return i + bits.TrailingZeros64(w)
	}
	for wi++; wi < len(v.words); wi++ {
		if v.words[wi] != 0 {
			return wi*wordBits + bits.TrailingZeros64(v.words[wi])
		}
	}
	return -1
}

// Bytes returns the memory footprint of the vector payload in bytes.
func (v *Vector) Bytes() int64 { return int64(len(v.words)) * 8 }

// String renders the vector as a bit string, most significant index last,
// truncated for long vectors.
func (v *Vector) String() string {
	var sb strings.Builder
	limit := v.n
	if limit > 128 {
		limit = 128
	}
	for i := 0; i < limit; i++ {
		if v.Get(i) {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	if limit < v.n {
		fmt.Fprintf(&sb, "...(%d bits)", v.n)
	}
	return sb.String()
}

func (v *Vector) trim() {
	if extra := len(v.words)*wordBits - v.n; extra > 0 && len(v.words) > 0 {
		v.words[len(v.words)-1] &= ^uint64(0) >> uint(extra)
	}
}

func (v *Vector) checkLen(other *Vector) {
	if v.n != other.n {
		panic(fmt.Sprintf("bitvec: length mismatch %d != %d", v.n, other.n))
	}
}

// Matrix is a dense 2-D bit matrix: rows of equal width packed contiguously.
// It backs the per-vertex prototype match vectors (ρ): one row per vertex,
// one column per prototype.
type Matrix struct {
	words       []uint64
	rows, cols  int
	wordsPerRow int
}

// NewMatrix returns a rows×cols bit matrix, all clear.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("bitvec: negative matrix dimension")
	}
	wpr := (cols + wordBits - 1) / wordBits
	return &Matrix{words: make([]uint64, rows*wpr), rows: rows, cols: cols, wordsPerRow: wpr}
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// Set sets bit (r,c).
func (m *Matrix) Set(r, c int) {
	m.words[r*m.wordsPerRow+c/wordBits] |= 1 << uint(c%wordBits)
}

// Clear clears bit (r,c).
func (m *Matrix) Clear(r, c int) {
	m.words[r*m.wordsPerRow+c/wordBits] &^= 1 << uint(c%wordBits)
}

// Get reports whether bit (r,c) is set.
func (m *Matrix) Get(r, c int) bool {
	return m.words[r*m.wordsPerRow+c/wordBits]&(1<<uint(c%wordBits)) != 0
}

// RowAny reports whether any bit in row r is set.
func (m *Matrix) RowAny(r int) bool {
	row := m.words[r*m.wordsPerRow : (r+1)*m.wordsPerRow]
	for _, w := range row {
		if w != 0 {
			return true
		}
	}
	return false
}

// RowAnyOf reports whether any of the columns listed in cols is set in row r.
func (m *Matrix) RowAnyOf(r int, cols []int) bool {
	for _, c := range cols {
		if m.Get(r, c) {
			return true
		}
	}
	return false
}

// RowCount returns the number of set bits in row r.
func (m *Matrix) RowCount(r int) int {
	row := m.words[r*m.wordsPerRow : (r+1)*m.wordsPerRow]
	c := 0
	for _, w := range row {
		c += bits.OnesCount64(w)
	}
	return c
}

// RowForEach calls fn for each set column in row r, in increasing order.
func (m *Matrix) RowForEach(r int, fn func(c int)) {
	row := m.words[r*m.wordsPerRow : (r+1)*m.wordsPerRow]
	for wi, w := range row {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(wi*wordBits + b)
			w &= w - 1
		}
	}
}

// Equal reports whether m and other have the same shape and bits. The
// comparison is word-level; the differential tests use it to assert
// bit-identical match-vector matrices across kernel schedules.
func (m *Matrix) Equal(other *Matrix) bool {
	if m.rows != other.rows || m.cols != other.cols {
		return false
	}
	for i, w := range m.words {
		if w != other.words[i] {
			return false
		}
	}
	return true
}

// ColCount returns the number of rows with column c set.
func (m *Matrix) ColCount(c int) int {
	n := 0
	for r := 0; r < m.rows; r++ {
		if m.Get(r, c) {
			n++
		}
	}
	return n
}

// Bytes returns the memory footprint of the matrix payload in bytes.
func (m *Matrix) Bytes() int64 { return int64(len(m.words)) * 8 }
