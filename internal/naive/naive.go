// Package naive implements the baseline of §5.3: it generates the prototype
// set P_k and searches every prototype independently on the full background
// graph with the exact constraint-checking engine — no shared maximum
// candidate set, no containment-rule search-space reduction and no work
// recycling. Figs. 7 and 8 and the §5.7 message table compare HGT against
// this baseline.
package naive

import (
	"fmt"

	"approxmatch/internal/bitvec"
	"approxmatch/internal/core"
	"approxmatch/internal/graph"
	"approxmatch/internal/pattern"
	"approxmatch/internal/prototype"
)

// Result is the naïve run's output, shaped like the optimized pipeline's so
// experiments can compare them field by field.
type Result struct {
	Set       *prototype.Set
	Rho       *bitvec.Matrix
	Solutions []*core.Solution
	Metrics   core.Metrics
}

// Run searches each prototype of t (within edit-distance k) independently on
// g. countMatches additionally enumerates per-prototype match counts.
func Run(g *graph.Graph, t *pattern.Template, k int, countMatches bool) (*Result, error) {
	set, err := prototype.Generate(t, k)
	if err != nil {
		return nil, fmt.Errorf("naive: %w", err)
	}
	res := &Result{
		Set:       set,
		Rho:       bitvec.NewMatrix(g.NumVertices(), set.Count()),
		Solutions: make([]*core.Solution, set.Count()),
	}
	for pi, p := range set.Protos {
		sol, m := core.ExactMatch(g, p.Template, false, countMatches)
		sol.Proto = pi
		res.Solutions[pi] = sol
		res.Metrics.Add(&m)
		sol.Verts.ForEach(func(v int) { res.Rho.Set(v, pi) })
	}
	return res, nil
}

// TotalMatchCount sums per-prototype counts (-1 when not counted).
func (r *Result) TotalMatchCount() int64 {
	var total int64
	for _, sol := range r.Solutions {
		if sol.MatchCount < 0 {
			return -1
		}
		total += sol.MatchCount
	}
	return total
}
