package naive

import (
	"math/rand"
	"testing"

	"approxmatch/internal/core"
	"approxmatch/internal/graph"
	"approxmatch/internal/pattern"
)

func randomGraph(rng *rand.Rand, n, m, labels int) *graph.Graph {
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		b.SetLabel(graph.VertexID(v), graph.Label(rng.Intn(labels)))
	}
	for i := 0; i < m; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			b.AddEdge(graph.VertexID(u), graph.VertexID(v))
		}
	}
	return b.Build()
}

func TestNaiveMatchesOptimized(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	tp := pattern.MustNew([]pattern.Label{0, 1, 2, 0},
		[]pattern.Edge{{I: 0, J: 1}, {I: 1, J: 2}, {I: 2, J: 3}, {I: 0, J: 3}})
	for trial := 0; trial < 8; trial++ {
		g := randomGraph(rng, 40, 120, 3)
		nv, err := Run(g, tp, 2, true)
		if err != nil {
			t.Fatal(err)
		}
		cfg := core.DefaultConfig(2)
		cfg.CountMatches = true
		opt, err := core.Run(g, tp, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if nv.Set.Count() != opt.Set.Count() {
			t.Fatalf("prototype counts differ: %d vs %d", nv.Set.Count(), opt.Set.Count())
		}
		for pi := range nv.Set.Protos {
			if !nv.Solutions[pi].Verts.Equal(opt.Solutions[pi].Verts) {
				t.Errorf("trial %d proto %d: vertex sets differ", trial, pi)
			}
			if !nv.Solutions[pi].Edges.Equal(opt.Solutions[pi].Edges) {
				t.Errorf("trial %d proto %d: edge sets differ", trial, pi)
			}
			if nv.Solutions[pi].MatchCount != opt.Solutions[pi].MatchCount {
				t.Errorf("trial %d proto %d: counts differ: %d vs %d",
					trial, pi, nv.Solutions[pi].MatchCount, opt.Solutions[pi].MatchCount)
			}
		}
		if nv.TotalMatchCount() != opt.TotalMatchCount() {
			t.Errorf("total counts differ")
		}
	}
}

func TestOptimizedDoesLessWork(t *testing.T) {
	// On a graph where most of the background prunes away, HGT must send
	// fewer messages than the naïve approach (the §5.7 message analysis).
	rng := rand.New(rand.NewSource(23))
	g := randomGraph(rng, 300, 900, 4)
	tp := pattern.MustNew([]pattern.Label{0, 1, 2, 3},
		[]pattern.Edge{{I: 0, J: 1}, {I: 1, J: 2}, {I: 2, J: 3}, {I: 0, J: 3}, {I: 0, J: 2}})
	nv, err := Run(g, tp, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := core.Run(g, tp, core.DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	nMsgs := nv.Metrics.TotalMessages()
	oMsgs := opt.Metrics.TotalMessages()
	if oMsgs >= nMsgs {
		t.Errorf("optimized pipeline not cheaper: naive=%d hgt=%d", nMsgs, oMsgs)
	}
	t.Logf("message improvement: naive=%d hgt=%d (%.1fx)", nMsgs, oMsgs, float64(nMsgs)/float64(oMsgs))
}
