package refmatch

import (
	"testing"

	"approxmatch/internal/graph"
	"approxmatch/internal/pattern"
)

// k5 returns the unlabeled complete graph on n vertices.
func complete(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(graph.VertexID(i), graph.VertexID(j))
		}
	}
	return b.Build()
}

func unlabeledTemplate(n int, edges []pattern.Edge) *pattern.Template {
	return pattern.MustNew(make([]pattern.Label, n), edges)
}

func TestCountTrianglesInK5(t *testing.T) {
	g := complete(5)
	tri := unlabeledTemplate(3, []pattern.Edge{{I: 0, J: 1}, {I: 1, J: 2}, {I: 0, J: 2}})
	// Mappings: C(5,3) * 3! = 60.
	if got := Count(g, tri, false); got != 60 {
		t.Errorf("triangle mappings in K5 = %d, want 60", got)
	}
	// Induced is the same for cliques.
	if got := Count(g, tri, true); got != 60 {
		t.Errorf("induced triangle mappings in K5 = %d, want 60", got)
	}
}

func TestCountPathsInK4(t *testing.T) {
	g := complete(4)
	p3 := unlabeledTemplate(3, []pattern.Edge{{I: 0, J: 1}, {I: 1, J: 2}})
	// Non-induced P3 mappings: 4*3*2 = 24.
	if got := Count(g, p3, false); got != 24 {
		t.Errorf("P3 mappings in K4 = %d, want 24", got)
	}
	// Induced P3 in a clique: none (endpoints always adjacent).
	if got := Count(g, p3, true); got != 0 {
		t.Errorf("induced P3 mappings in K4 = %d, want 0", got)
	}
}

func TestLabeledMatching(t *testing.T) {
	// Graph: 1-2-3 path plus a decoy 1-2 edge with wrong third label.
	b := graph.NewBuilder(5)
	b.SetLabel(0, 1)
	b.SetLabel(1, 2)
	b.SetLabel(2, 3)
	b.SetLabel(3, 1)
	b.SetLabel(4, 9)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(3, 4)
	g := b.Build()
	tp := pattern.MustNew([]pattern.Label{1, 2, 3}, []pattern.Edge{{I: 0, J: 1}, {I: 1, J: 2}})
	ms := Enumerate(g, tp, Options{})
	if len(ms) != 1 {
		t.Fatalf("matches = %d, want 1 (%v)", len(ms), ms)
	}
	m := ms[0]
	if m[0] != 0 || m[1] != 1 || m[2] != 2 {
		t.Errorf("match = %v", m)
	}
}

func TestEnumerateLimit(t *testing.T) {
	g := complete(5)
	tri := unlabeledTemplate(3, []pattern.Edge{{I: 0, J: 1}, {I: 1, J: 2}, {I: 0, J: 2}})
	ms := Enumerate(g, tri, Options{Limit: 7})
	if len(ms) != 7 {
		t.Errorf("limited enumeration returned %d", len(ms))
	}
}

func TestSolutionSubgraph(t *testing.T) {
	// Triangle 0-1-2 plus pendant 3 (label 9, can't match).
	b := graph.NewBuilder(4)
	b.SetLabel(3, 9)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(0, 2)
	b.AddEdge(2, 3)
	g := b.Build()
	tri := unlabeledTemplate(3, []pattern.Edge{{I: 0, J: 1}, {I: 1, J: 2}, {I: 0, J: 2}})
	vs, es := SolutionSubgraph(g, tri)
	if len(vs) != 3 || vs[3] {
		t.Errorf("solution vertices = %v", vs)
	}
	if len(es) != 3 {
		t.Errorf("solution edges = %v", es)
	}
	if es[graph.Edge{U: 2, V: 3}] {
		t.Error("pendant edge should not participate")
	}
	mv := MatchingVertices(g, tri)
	if len(mv) != 3 || mv[0] != 0 || mv[2] != 2 {
		t.Errorf("matching vertices = %v", mv)
	}
}

func TestRepeatedLabelInjectivity(t *testing.T) {
	// Template: two label-1 vertices joined to a label-2 center. The graph
	// has the center with only ONE label-1 neighbor: injectivity forbids a
	// match.
	tp := pattern.MustNew([]pattern.Label{1, 2, 1}, []pattern.Edge{{I: 0, J: 1}, {I: 1, J: 2}})
	b := graph.NewBuilder(2)
	b.SetLabel(0, 1)
	b.SetLabel(1, 2)
	b.AddEdge(0, 1)
	g := b.Build()
	if got := Count(g, tp, false); got != 0 {
		t.Errorf("injectivity violated: count = %d", got)
	}
	// Adding a second label-1 neighbor yields exactly 2 mappings (swap).
	b2 := graph.NewBuilder(3)
	b2.SetLabel(0, 1)
	b2.SetLabel(1, 2)
	b2.SetLabel(2, 1)
	b2.AddEdge(0, 1)
	b2.AddEdge(1, 2)
	g2 := b2.Build()
	if got := Count(g2, tp, false); got != 2 {
		t.Errorf("count = %d, want 2", got)
	}
}
