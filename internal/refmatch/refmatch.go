// Package refmatch is the reference oracle: a direct backtracking
// enumerator of exact, label-preserving subgraph-isomorphism matches. It is
// deliberately simple and is used by tests to certify the 100% precision and
// 100% recall guarantees of the optimized pipeline, and by the motif package
// as an induced-count cross-check on small inputs.
package refmatch

import (
	"sort"

	"approxmatch/internal/graph"
	"approxmatch/internal/pattern"
)

// Match is one exact match: Match[q] is the background vertex that template
// vertex q maps to.
type Match []graph.VertexID

// Options control enumeration.
type Options struct {
	// Limit stops enumeration after this many matches (0 = unlimited).
	Limit int
	// Induced additionally requires non-adjacent template vertices to map
	// to non-adjacent graph vertices (vertex-induced matching, used for
	// motif counting).
	Induced bool
}

// Enumerate returns every exact match of t in g (or up to opts.Limit).
func Enumerate(g *graph.Graph, t *pattern.Template, opts Options) []Match {
	var out []Match
	EnumerateFunc(g, t, opts, func(m Match) bool {
		out = append(out, append(Match(nil), m...))
		return opts.Limit == 0 || len(out) < opts.Limit
	})
	return out
}

// Count returns the number of exact matches (vertex mappings) of t in g.
func Count(g *graph.Graph, t *pattern.Template, induced bool) int64 {
	var n int64
	EnumerateFunc(g, t, Options{Induced: induced}, func(Match) bool {
		n++
		return true
	})
	return n
}

// EnumerateFunc calls fn for every exact match; fn returns false to stop.
// The Match slice passed to fn is reused between calls.
func EnumerateFunc(g *graph.Graph, t *pattern.Template, opts Options, fn func(Match) bool) {
	n := t.NumVertices()
	order := matchOrder(t)
	assignment := make(Match, n)
	used := make(map[graph.VertexID]bool, n)

	var rec func(idx int) bool
	rec = func(idx int) bool {
		if idx == n {
			return fn(assignment)
		}
		q := order[idx]
		candidates := candidateStream(g, t, order, assignment, idx)
		for _, v := range candidates {
			if used[v] || !pattern.LabelMatches(t.Label(q), g.Label(v)) {
				continue
			}
			if !consistent(g, t, assignment, order[:idx], q, v, opts.Induced) {
				continue
			}
			assignment[q] = v
			used[v] = true
			if !rec(idx + 1) {
				used[v] = false
				return false
			}
			used[v] = false
		}
		return true
	}
	rec(0)
}

// matchOrder returns a template vertex order in which every vertex after the
// first is adjacent to an earlier one (connected templates admit this), so
// candidates can be drawn from neighbor lists instead of the whole graph.
func matchOrder(t *pattern.Template) []int {
	n := t.NumVertices()
	order := make([]int, 0, n)
	inOrder := make([]bool, n)
	// Start from the highest-degree vertex.
	start := 0
	for q := 1; q < n; q++ {
		if t.Degree(q) > t.Degree(start) {
			start = q
		}
	}
	order = append(order, start)
	inOrder[start] = true
	for len(order) < n {
		bestQ, bestScore := -1, -1
		for q := 0; q < n; q++ {
			if inOrder[q] {
				continue
			}
			score := 0
			for _, r := range t.Neighbors(q) {
				if inOrder[r] {
					score++
				}
			}
			if score > bestScore {
				bestQ, bestScore = q, score
			}
		}
		order = append(order, bestQ)
		inOrder[bestQ] = true
	}
	return order
}

// candidateStream returns candidate graph vertices for order[idx]: the
// neighbor list of an already-assigned template neighbor when one exists
// (always, except for the root), otherwise all vertices.
func candidateStream(g *graph.Graph, t *pattern.Template, order []int, assignment Match, idx int) []graph.VertexID {
	q := order[idx]
	for _, prev := range order[:idx] {
		if t.HasEdge(q, prev) {
			return g.Neighbors(assignment[prev])
		}
	}
	all := make([]graph.VertexID, g.NumVertices())
	for i := range all {
		all[i] = graph.VertexID(i)
	}
	return all
}

// consistent checks edges between q and all previously assigned template
// vertices: required presence with an acceptable edge label, and — in
// induced mode — required absence.
func consistent(g *graph.Graph, t *pattern.Template, assignment Match, placed []int, q int, v graph.VertexID, induced bool) bool {
	for _, p := range placed {
		hasT := t.HasEdge(q, p)
		hasG := g.HasEdge(v, assignment[p])
		if hasT {
			if !hasG {
				return false
			}
			tl, _ := t.EdgeLabelBetween(q, p)
			gl, _ := g.EdgeLabelBetween(v, assignment[p])
			if !pattern.LabelMatches(tl, gl) {
				return false
			}
		}
		if induced && !hasT && hasG {
			return false
		}
	}
	return true
}

// SolutionSubgraph returns the vertex set and edge set participating in at
// least one exact match of t in g — the oracle for the pipeline's solution
// subgraphs (Def. 2).
func SolutionSubgraph(g *graph.Graph, t *pattern.Template) (vertices map[graph.VertexID]bool, edges map[graph.Edge]bool) {
	vertices = make(map[graph.VertexID]bool)
	edges = make(map[graph.Edge]bool)
	EnumerateFunc(g, t, Options{}, func(m Match) bool {
		for _, v := range m {
			vertices[v] = true
		}
		for _, e := range t.Edges() {
			u, v := m[e.I], m[e.J]
			if u > v {
				u, v = v, u
			}
			edges[graph.Edge{U: u, V: v}] = true
		}
		return true
	})
	return vertices, edges
}

// MatchingVertices returns the sorted list of vertices in at least one match.
func MatchingVertices(g *graph.Graph, t *pattern.Template) []graph.VertexID {
	vs, _ := SolutionSubgraph(g, t)
	out := make([]graph.VertexID, 0, len(vs))
	for v := range vs {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
