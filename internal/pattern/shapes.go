package pattern

// Common template shapes. Each constructor takes the per-vertex labels it
// needs (use the same label everywhere, or Wildcard, for unlabeled
// matching); they panic on impossible inputs, mirroring MustNew.

// PathN returns the path q0-q1-...-q(n-1) over the given labels.
func PathN(labels []Label) *Template {
	edges := make([]Edge, 0, len(labels)-1)
	for i := 0; i+1 < len(labels); i++ {
		edges = append(edges, Edge{I: i, J: i + 1})
	}
	return MustNew(labels, edges)
}

// CycleN returns the simple cycle over the given labels (at least 3).
func CycleN(labels []Label) *Template {
	n := len(labels)
	if n < 3 {
		panic("pattern: CycleN needs at least 3 vertices")
	}
	edges := make([]Edge, 0, n)
	for i := 0; i < n; i++ {
		a, b := i, (i+1)%n
		if a > b {
			a, b = b, a
		}
		edges = append(edges, Edge{I: a, J: b})
	}
	return MustNew(labels, edges)
}

// StarN returns a star: labels[0] is the hub, the rest are leaves.
func StarN(labels []Label) *Template {
	if len(labels) < 2 {
		panic("pattern: StarN needs at least 2 vertices")
	}
	edges := make([]Edge, 0, len(labels)-1)
	for i := 1; i < len(labels); i++ {
		edges = append(edges, Edge{I: 0, J: i})
	}
	return MustNew(labels, edges)
}

// CliqueN returns the complete graph over the given labels.
func CliqueN(labels []Label) *Template {
	n := len(labels)
	var edges []Edge
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			edges = append(edges, Edge{I: i, J: j})
		}
	}
	return MustNew(labels, edges)
}

// Diamond returns two triangles sharing the edge (labels[1], labels[2]).
func Diamond(labels [4]Label) *Template {
	return MustNew(labels[:], []Edge{
		{I: 0, J: 1}, {I: 1, J: 2}, {I: 0, J: 2}, {I: 1, J: 3}, {I: 2, J: 3},
	})
}

// House returns a 4-cycle (labels 0..3) with a roof vertex (labels[4])
// joined to vertices 2 and 3.
func House(labels [5]Label) *Template {
	return MustNew(labels[:], []Edge{
		{I: 0, J: 1}, {I: 1, J: 2}, {I: 2, J: 3}, {I: 0, J: 3},
		{I: 2, J: 4}, {I: 3, J: 4},
	})
}

// Unlabeled returns n copies of the same label (0), convenient with the
// shape constructors for topology-only matching.
func Unlabeled(n int) []Label { return make([]Label, n) }
