package pattern

// Automorphism symmetry breaking (GraphPi-style restriction sets). A
// template with a non-trivial automorphism group makes the backtracking
// enumerator produce every match |Aut(T)| times — once per automorphic
// relabeling of the same vertex set. A restriction set is a small list of
// order constraints over template vertices (match[A] < match[B] on graph
// vertex ids) with the defining property that every orbit of matches under
// Aut(T) contains EXACTLY ONE member satisfying all restrictions. Enforcing
// them during enumeration therefore yields one canonical representative per
// orbit; multiplying the restricted count by |Aut(T)| (or composing each
// representative with every automorphism) recovers the full mapping set.
//
// The construction is the classical stabilizer-chain scheme: pick the
// smallest vertex v moved by the current group, emit v < u for every other
// u in v's orbit, and recurse into the stabilizer of v. Correctness: for
// any injective assignment f there is exactly one g in the group such that
// f∘g assigns the orbit's minimum graph vertex to v (graph images of an
// orbit are permuted among themselves by any group element), and the
// argument repeats inside the stabilizer.

// Restriction is one symmetry-breaking order constraint: any accepted match
// must satisfy match[A] < match[B] (comparing background-graph vertex ids).
type Restriction struct {
	A, B int
}

// maxAutomorphisms caps the materialized group size. Search templates are
// small (≤ 64 vertices by construction, a handful in practice), so any
// group larger than this signals a pathological input — symmetry breaking
// is then skipped (correct, merely slower) rather than risking an
// exponential group enumeration.
const maxAutomorphisms = 1 << 16

// Automorphisms returns every label-preserving automorphism of t (including
// the identity), each as a vertex permutation p with p[q] = image of q.
// It returns nil when the group exceeds maxAutomorphisms.
func Automorphisms(t *Template) [][]int {
	n := t.NumVertices()
	colors := refineColors(t)
	mapping := make([]int, n)
	used := make([]bool, n)
	for i := range mapping {
		mapping[i] = -1
	}
	var out [][]int
	overflow := false
	var solve func(q int)
	solve = func(q int) {
		if overflow {
			return
		}
		if q == n {
			if len(out) >= maxAutomorphisms {
				overflow = true
				return
			}
			out = append(out, append([]int(nil), mapping...))
			return
		}
		for w := 0; w < n; w++ {
			if used[w] || colors[w] != colors[q] || t.Label(q) != t.Label(w) || t.Degree(q) != t.Degree(w) {
				continue
			}
			ok := true
			for _, r := range t.adj[q] {
				if m := mapping[r]; m != -1 && !edgeCompatible(t, t, q, r, w, m) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			mapping[q] = w
			used[w] = true
			solve(q + 1)
			mapping[q] = -1
			used[w] = false
		}
	}
	solve(0)
	if overflow {
		return nil
	}
	return out
}

// RestrictionSet derives the symmetry-breaking restrictions for t from its
// automorphism group via the stabilizer chain, together with the group size.
// A trivial group (or an over-large one, see Automorphisms) yields no
// restrictions and aut = 1 so callers multiply counts by exactly the factor
// the restrictions divided out.
func RestrictionSet(t *Template) (restrictions []Restriction, aut int64) {
	auts := Automorphisms(t)
	if len(auts) <= 1 {
		return nil, 1
	}
	return RestrictionsFor(t.NumVertices(), auts), int64(len(auts))
}

// RestrictionsFor derives the restriction set from an already-enumerated
// automorphism group over n template vertices (see RestrictionSet); callers
// that also need the group itself (orbit expansion during enumeration) use
// this to avoid enumerating it twice.
func RestrictionsFor(n int, auts [][]int) []Restriction {
	if len(auts) <= 1 {
		return nil
	}
	var restrictions []Restriction
	group := auts
	for len(group) > 1 {
		// Smallest vertex moved by any element of the current group.
		v := -1
		for q := 0; q < n && v == -1; q++ {
			for _, p := range group {
				if p[q] != q {
					v = q
					break
				}
			}
		}
		if v == -1 {
			break // identity-only (defensive; len check should have caught it)
		}
		inOrbit := make([]bool, n)
		for _, p := range group {
			inOrbit[p[v]] = true
		}
		for u := 0; u < n; u++ {
			if u != v && inOrbit[u] {
				restrictions = append(restrictions, Restriction{A: v, B: u})
			}
		}
		// Recurse into the stabilizer of v.
		var stab [][]int
		for _, p := range group {
			if p[v] == v {
				stab = append(stab, p)
			}
		}
		group = stab
	}
	return restrictions
}
