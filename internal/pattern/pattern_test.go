package pattern

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func path3() *Template {
	return MustNew([]Label{1, 2, 3}, []Edge{{0, 1}, {1, 2}})
}

func triangle() *Template {
	return MustNew([]Label{1, 2, 3}, []Edge{{0, 1}, {1, 2}, {0, 2}})
}

func clique(n int) *Template {
	labels := make([]Label, n)
	var edges []Edge
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			edges = append(edges, Edge{i, j})
		}
	}
	return MustNew(labels, edges)
}

func TestNewValidation(t *testing.T) {
	if _, err := New([]Label{1, 2}, []Edge{{0, 0}}); err == nil {
		t.Error("self loop accepted")
	}
	if _, err := New([]Label{1, 2}, []Edge{{0, 1}, {1, 0}}); err == nil {
		t.Error("duplicate edge accepted")
	}
	if _, err := New([]Label{1, 2, 3}, []Edge{{0, 1}}); err == nil {
		t.Error("disconnected template accepted")
	}
	if _, err := New([]Label{1, 2}, []Edge{{0, 5}}); err == nil {
		t.Error("out-of-range edge accepted")
	}
	if _, err := New(nil, nil); err == nil {
		t.Error("empty template accepted")
	}
	if _, err := New([]Label{7}, nil); err != nil {
		t.Errorf("single-vertex template rejected: %v", err)
	}
}

func TestTemplateAccessors(t *testing.T) {
	tp := triangle()
	if tp.NumVertices() != 3 || tp.NumEdges() != 3 {
		t.Fatalf("shape wrong: %v", tp)
	}
	if !tp.HasEdge(0, 2) || !tp.HasEdge(2, 0) {
		t.Error("HasEdge(0,2) false")
	}
	if tp.HasEdge(0, 0) {
		t.Error("HasEdge(0,0) true")
	}
	if tp.Degree(1) != 2 {
		t.Errorf("Degree(1) = %d", tp.Degree(1))
	}
	if id := tp.EdgeID(2, 0); id < 0 || tp.Edge(id) != (Edge{0, 2}) {
		t.Errorf("EdgeID(2,0) = %d", id)
	}
	if tp.EdgeID(1, 1) != -1 {
		t.Error("EdgeID for absent edge should be -1")
	}
}

func TestRemoveEdge(t *testing.T) {
	tp := triangle()
	sub, err := tp.RemoveEdge(0)
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumEdges() != 2 || sub.NumVertices() != 3 {
		t.Fatalf("RemoveEdge shape: %v", sub)
	}
	// Removing an edge from a path disconnects it.
	if _, err := path3().RemoveEdge(0); err == nil {
		t.Error("disconnecting removal accepted")
	}
}

func TestMandatoryEdges(t *testing.T) {
	tp, err := NewWithMandatory([]Label{1, 2, 3}, []Edge{{0, 1}, {1, 2}, {0, 2}}, []bool{true, false, false})
	if err != nil {
		t.Fatal(err)
	}
	if !tp.Mandatory(0) || tp.Mandatory(1) {
		t.Fatal("mandatory flags wrong")
	}
	if !tp.HasMandatory() {
		t.Fatal("HasMandatory false")
	}
	if _, err := tp.RemoveEdge(0); err == nil {
		t.Error("mandatory edge removal accepted")
	}
	if _, err := tp.RemoveEdge(1); err != nil {
		t.Errorf("optional removal rejected: %v", err)
	}
}

func TestTreeAndLabelAnalyses(t *testing.T) {
	if !path3().IsTree() || triangle().IsTree() {
		t.Error("IsTree wrong")
	}
	if path3().HasRepeatedLabels() {
		t.Error("path3 has distinct labels")
	}
	rep := MustNew([]Label{1, 2, 1}, []Edge{{0, 1}, {1, 2}})
	if !rep.HasRepeatedLabels() {
		t.Error("repeated labels not detected")
	}
	mult := rep.LabelMultiplicity()
	if len(mult[1]) != 2 || len(mult[2]) != 1 {
		t.Errorf("multiplicity = %v", mult)
	}
	pairs := triangle().LabelPairs()
	if len(pairs) != 3 || !pairs[[2]Label{1, 2}] {
		t.Errorf("label pairs = %v", pairs)
	}
}

func TestSimpleCyclesTriangle(t *testing.T) {
	cycles := triangle().SimpleCycles()
	if len(cycles) != 1 {
		t.Fatalf("triangle cycles = %v", cycles)
	}
	if len(cycles[0]) != 3 {
		t.Fatalf("cycle length = %d", len(cycles[0]))
	}
}

func TestSimpleCyclesCounts(t *testing.T) {
	// K4 has 4 triangles and 3 squares: 7 simple cycles.
	if got := len(clique(4).SimpleCycles()); got != 7 {
		t.Errorf("K4 simple cycles = %d, want 7", got)
	}
	// A tree has none.
	if got := len(path3().SimpleCycles()); got != 0 {
		t.Errorf("path cycles = %d, want 0", got)
	}
	// 4-cycle has exactly one.
	c4 := MustNew(make([]Label, 4), []Edge{{0, 1}, {1, 2}, {2, 3}, {0, 3}})
	if got := len(c4.SimpleCycles()); got != 1 {
		t.Errorf("C4 cycles = %d, want 1", got)
	}
}

func TestEdgeMonocyclic(t *testing.T) {
	if !triangle().EdgeMonocyclic() {
		t.Error("triangle should be edge-monocyclic")
	}
	if clique(4).EdgeMonocyclic() {
		t.Error("K4 should not be edge-monocyclic")
	}
	// Two triangles sharing only a vertex are edge-monocyclic.
	bowtie := MustNew(make([]Label, 5), []Edge{{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}, {2, 4}})
	if !bowtie.EdgeMonocyclic() {
		t.Error("bowtie should be edge-monocyclic")
	}
	// Two triangles sharing an edge (diamond) are not.
	diamond := MustNew(make([]Label, 4), []Edge{{0, 1}, {1, 2}, {0, 2}, {1, 3}, {2, 3}})
	if diamond.EdgeMonocyclic() {
		t.Error("diamond should not be edge-monocyclic")
	}
	pairs := CyclesSharingEdges(diamond.SimpleCycles())
	if len(pairs) == 0 {
		t.Error("diamond cycles share edges")
	}
}

func TestIsomorphicPositive(t *testing.T) {
	a := MustNew([]Label{1, 2, 3}, []Edge{{0, 1}, {1, 2}})
	b := MustNew([]Label{3, 2, 1}, []Edge{{2, 1}, {1, 0}})
	if !Isomorphic(a, b) {
		t.Error("relabeled paths should be isomorphic")
	}
	m := FindIsomorphism(a, b)
	if m == nil {
		t.Fatal("no mapping found")
	}
	for q := 0; q < 3; q++ {
		if a.Label(q) != b.Label(m[q]) {
			t.Errorf("mapping breaks labels at %d", q)
		}
	}
	for _, e := range a.Edges() {
		if !b.HasEdge(m[e.I], m[e.J]) {
			t.Errorf("mapping breaks edge %v", e)
		}
	}
}

func TestIsomorphicNegative(t *testing.T) {
	a := path3()
	b := triangle()
	if Isomorphic(a, b) {
		t.Error("path vs triangle")
	}
	c := MustNew([]Label{1, 2, 2}, []Edge{{0, 1}, {1, 2}})
	if Isomorphic(a, c) {
		t.Error("different label multisets")
	}
	// Same degree sequence, different structure: C6 vs two triangles is
	// impossible on one connected template, so use labeled distinction.
	d1 := MustNew([]Label{1, 1, 2, 2}, []Edge{{0, 1}, {1, 2}, {2, 3}})
	d2 := MustNew([]Label{1, 2, 1, 2}, []Edge{{0, 1}, {1, 2}, {2, 3}})
	if Isomorphic(d1, d2) {
		t.Error("label placement should distinguish paths")
	}
}

func TestCanonicalCodeAgreesWithIsomorphism(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomTemplate(rng)
		b := shuffleTemplate(rng, a)
		if CanonicalCode(a) != CanonicalCode(b) {
			t.Logf("isomorphic templates got different codes:\n a=%v\n b=%v", a, b)
			return false
		}
		c := randomTemplate(rng)
		sameCode := CanonicalCode(a) == CanonicalCode(c)
		iso := Isomorphic(a, c)
		if sameCode != iso {
			t.Logf("code/iso disagreement:\n a=%v\n c=%v (code=%v iso=%v)", a, c, sameCode, iso)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestCountAutomorphisms(t *testing.T) {
	cases := []struct {
		t    *Template
		want int64
	}{
		{clique(3), 6},
		{clique(4), 24},
		{path3(), 1},
		{MustNew(make([]Label, 3), []Edge{{0, 1}, {1, 2}}), 2},                         // unlabeled path
		{MustNew(make([]Label, 4), []Edge{{0, 1}, {1, 2}, {2, 3}, {0, 3}}), 8},         // C4
		{MustNew([]Label{1, 0, 0, 0}, []Edge{{0, 1}, {0, 2}, {0, 3}}), 6},              // star, distinct center
		{MustNew([]Label{0, 1, 0}, []Edge{{0, 1}, {1, 2}, {0, 2}}), 2},                 // labeled triangle
		{MustNew(make([]Label, 4), []Edge{{0, 1}, {1, 2}, {0, 2}, {1, 3}, {2, 3}}), 4}, // diamond
	}
	for i, c := range cases {
		if got := CountAutomorphisms(c.t); got != c.want {
			t.Errorf("case %d: automorphisms = %d, want %d (%v)", i, got, c.want, c.t)
		}
	}
}

// randomTemplate builds a small random connected labeled template.
func randomTemplate(rng *rand.Rand) *Template {
	n := 2 + rng.Intn(4)
	labels := make([]Label, n)
	for i := range labels {
		labels[i] = Label(rng.Intn(3))
	}
	var edges []Edge
	// random spanning tree
	for v := 1; v < n; v++ {
		edges = append(edges, Edge{rng.Intn(v), v})
	}
	// extra random edges
	for i := 0; i < rng.Intn(3); i++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a == b {
			continue
		}
		e := Edge{min(a, b), max(a, b)}
		dup := false
		for _, x := range edges {
			if x == e {
				dup = true
				break
			}
		}
		if !dup {
			edges = append(edges, e)
		}
	}
	t, err := New(labels, edges)
	if err != nil {
		panic(err)
	}
	return t
}

// shuffleTemplate returns an isomorphic copy of t under a random vertex
// permutation.
func shuffleTemplate(rng *rand.Rand, t *Template) *Template {
	n := t.NumVertices()
	perm := rng.Perm(n)
	labels := make([]Label, n)
	for q := 0; q < n; q++ {
		labels[perm[q]] = t.Label(q)
	}
	var edges []Edge
	for _, e := range t.Edges() {
		edges = append(edges, Edge{perm[e.I], perm[e.J]})
	}
	nt, err := New(labels, edges)
	if err != nil {
		panic(err)
	}
	return nt
}

func TestTemplateEdgeLabels(t *testing.T) {
	tp, err := NewEdgeLabeled(
		[]Label{1, 2, 3},
		[]Edge{{I: 0, J: 1}, {I: 1, J: 2}, {I: 0, J: 2}},
		[]Label{7, Wildcard, 9}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !tp.HasEdgeLabels() {
		t.Fatal("HasEdgeLabels false")
	}
	if tp.EdgeLabel(0) != 7 || tp.EdgeLabel(1) != Wildcard || tp.EdgeLabel(2) != 9 {
		t.Error("edge labels wrong")
	}
	if l, ok := tp.EdgeLabelBetween(2, 0); !ok || l != 9 {
		t.Errorf("EdgeLabelBetween(2,0) = %d,%v", l, ok)
	}
	set, wild := tp.EdgeLabelSet()
	if !wild || !set[7] || !set[9] || set[8] {
		t.Errorf("EdgeLabelSet = %v wild=%v", set, wild)
	}
	// Restrict carries labels.
	sub, err := tp.Restrict(0b011)
	if err != nil {
		t.Fatal(err)
	}
	if sub.EdgeLabel(0) != 7 || sub.EdgeLabel(1) != Wildcard {
		t.Error("Restrict lost edge labels")
	}
	// Unlabeled templates return wildcard everywhere.
	plain := MustNew([]Label{1, 2}, []Edge{{I: 0, J: 1}})
	if plain.EdgeLabel(0) != Wildcard || plain.HasEdgeLabels() {
		t.Error("plain template edge label wrong")
	}
	// Length mismatch rejected.
	if _, err := NewEdgeLabeled([]Label{1, 2}, []Edge{{I: 0, J: 1}}, []Label{1, 2}, nil); err == nil {
		t.Error("edge label length mismatch accepted")
	}
}

func TestIsomorphismRespectsEdgeLabels(t *testing.T) {
	a, _ := NewEdgeLabeled([]Label{1, 1}, []Edge{{I: 0, J: 1}}, []Label{5}, nil)
	b, _ := NewEdgeLabeled([]Label{1, 1}, []Edge{{I: 0, J: 1}}, []Label{6}, nil)
	c, _ := NewEdgeLabeled([]Label{1, 1}, []Edge{{I: 0, J: 1}}, []Label{5}, nil)
	if Isomorphic(a, b) {
		t.Error("different edge labels reported isomorphic")
	}
	if !Isomorphic(a, c) {
		t.Error("equal edge labels not isomorphic")
	}
	if CanonicalCode(a) == CanonicalCode(b) {
		t.Error("canonical codes collide across edge labels")
	}
	if CanonicalCode(a) != CanonicalCode(c) {
		t.Error("canonical codes differ for identical templates")
	}
	// Automorphisms constrained by edge labels: a labeled path 5-6 has no
	// flip symmetry; 5-5 does.
	p56, _ := NewEdgeLabeled(make([]Label, 3), []Edge{{I: 0, J: 1}, {I: 1, J: 2}}, []Label{5, 6}, nil)
	p55, _ := NewEdgeLabeled(make([]Label, 3), []Edge{{I: 0, J: 1}, {I: 1, J: 2}}, []Label{5, 5}, nil)
	if CountAutomorphisms(p56) != 1 {
		t.Errorf("5-6 path automorphisms = %d", CountAutomorphisms(p56))
	}
	if CountAutomorphisms(p55) != 2 {
		t.Errorf("5-5 path automorphisms = %d", CountAutomorphisms(p55))
	}
}

func TestShapeConstructors(t *testing.T) {
	p := PathN([]Label{1, 2, 3, 4})
	if p.NumEdges() != 3 || !p.IsTree() {
		t.Errorf("PathN: %v", p)
	}
	c := CycleN(Unlabeled(5))
	if c.NumEdges() != 5 || c.IsTree() || len(c.SimpleCycles()) != 1 {
		t.Errorf("CycleN: %v", c)
	}
	s := StarN([]Label{9, 1, 1, 1})
	if s.Degree(0) != 3 || !s.IsTree() {
		t.Errorf("StarN: %v", s)
	}
	k := CliqueN(Unlabeled(4))
	if k.NumEdges() != 6 {
		t.Errorf("CliqueN: %v", k)
	}
	d := Diamond([4]Label{0, 0, 0, 0})
	if d.EdgeMonocyclic() {
		t.Error("Diamond should share cycle edges")
	}
	h := House([5]Label{0, 1, 2, 3, 4})
	if h.NumEdges() != 6 || h.NumVertices() != 5 {
		t.Errorf("House: %v", h)
	}
	// Panics on bad input.
	for _, fn := range []func(){
		func() { CycleN(Unlabeled(2)) },
		func() { StarN(Unlabeled(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}
