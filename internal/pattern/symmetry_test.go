package pattern

import (
	"math/rand"
	"testing"
)

func symTemplates() map[string]*Template {
	return map[string]*Template{
		"triangle-aaa": MustNew([]Label{1, 1, 1}, []Edge{{0, 1}, {1, 2}, {0, 2}}),
		"triangle-aab": MustNew([]Label{1, 1, 2}, []Edge{{0, 1}, {1, 2}, {0, 2}}),
		"4-clique": MustNew([]Label{1, 1, 1, 1}, []Edge{
			{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}),
		"6-cycle": MustNew([]Label{1, 1, 1, 1, 1, 1}, []Edge{
			{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {0, 5}}),
		"path-3":     MustNew([]Label{1, 2, 1}, []Edge{{0, 1}, {1, 2}}),
		"asymmetric": MustNew([]Label{1, 2, 3}, []Edge{{0, 1}, {1, 2}}),
		"star-4":     MustNew([]Label{2, 1, 1, 1, 1}, []Edge{{0, 1}, {0, 2}, {0, 3}, {0, 4}}),
	}
}

func TestAutomorphismsMatchesCount(t *testing.T) {
	want := map[string]int64{
		"triangle-aaa": 6,
		"triangle-aab": 2,
		"4-clique":     24,
		"6-cycle":      12,
		"path-3":       2,
		"asymmetric":   1,
		"star-4":       24,
	}
	for name, tpl := range symTemplates() {
		auts := Automorphisms(tpl)
		if got := int64(len(auts)); got != want[name] {
			t.Errorf("%s: len(Automorphisms) = %d, want %d", name, got, want[name])
		}
		if got, cnt := int64(len(auts)), CountAutomorphisms(tpl); got != cnt {
			t.Errorf("%s: Automorphisms/CountAutomorphisms disagree: %d vs %d", name, got, cnt)
		}
		seen := make(map[string]bool)
		n := tpl.NumVertices()
		for _, p := range auts {
			key := ""
			perm := make([]bool, n)
			for _, w := range p {
				key += string(rune('a' + w))
				perm[w] = true
			}
			for q, ok := range perm {
				if !ok {
					t.Fatalf("%s: automorphism %v is not a permutation (misses %d)", name, p, q)
				}
			}
			if seen[key] {
				t.Fatalf("%s: duplicate automorphism %v", name, p)
			}
			seen[key] = true
			for _, e := range tpl.Edges() {
				if !tpl.HasEdge(p[e.I], p[e.J]) {
					t.Fatalf("%s: %v does not preserve edge %v", name, p, e)
				}
			}
			for q := 0; q < n; q++ {
				if tpl.Label(q) != tpl.Label(p[q]) {
					t.Fatalf("%s: %v does not preserve label of %d", name, p, q)
				}
			}
		}
	}
}

// TestRestrictionSetOneRepresentativePerOrbit checks the defining property:
// for a random injective assignment f of graph ids to template vertices,
// exactly one member of the orbit {f∘g : g ∈ Aut(T)} satisfies every
// restriction.
func TestRestrictionSetOneRepresentativePerOrbit(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for name, tpl := range symTemplates() {
		auts := Automorphisms(tpl)
		restrictions, aut := RestrictionSet(tpl)
		if aut != int64(len(auts)) {
			t.Fatalf("%s: RestrictionSet aut = %d, want %d", name, aut, len(auts))
		}
		n := tpl.NumVertices()
		for trial := 0; trial < 200; trial++ {
			f := rng.Perm(64)[:n] // injective images in a larger id space
			satisfied := 0
			for _, g := range auts {
				ok := true
				for _, r := range restrictions {
					if f[g[r.A]] >= f[g[r.B]] {
						ok = false
						break
					}
				}
				if ok {
					satisfied++
				}
			}
			if satisfied != 1 {
				t.Fatalf("%s: %d orbit members satisfy restrictions, want exactly 1 (f=%v)", name, satisfied, f)
			}
		}
	}
}

func TestRestrictionSetTrivialGroup(t *testing.T) {
	tpl := MustNew([]Label{1, 2, 3}, []Edge{{0, 1}, {1, 2}})
	rs, aut := RestrictionSet(tpl)
	if len(rs) != 0 || aut != 1 {
		t.Fatalf("asymmetric template: got %v aut=%d, want no restrictions aut=1", rs, aut)
	}
}
