package pattern

import "math"

// Wildcard is the template vertex label that matches any background-graph
// label — the wildcard-label extension the paper sketches in §3.1. A
// template vertex labeled Wildcard constrains only topology.
const Wildcard Label = math.MaxUint32

// LabelMatches reports whether a template label accepts a graph label.
func LabelMatches(templateLabel, graphLabel Label) bool {
	return templateLabel == Wildcard || templateLabel == graphLabel
}

// HasWildcard reports whether any template vertex carries the wildcard.
func (t *Template) HasWildcard() bool {
	for _, l := range t.labels {
		if l == Wildcard {
			return true
		}
	}
	return false
}

// PairSet is a wildcard-aware set of unordered label pairs, used to test
// whether a background edge's label pair can realize some template edge.
type PairSet struct {
	exact  map[[2]Label]bool // both endpoints concrete
	single map[Label]bool    // one endpoint wildcard: the concrete label
	any    bool              // wildcard-wildcard edge present
}

// NewPairSet returns an empty set.
func NewPairSet() *PairSet {
	return &PairSet{exact: make(map[[2]Label]bool), single: make(map[Label]bool)}
}

// Add inserts the unordered template label pair (a, b).
func (ps *PairSet) Add(a, b Label) {
	switch {
	case a == Wildcard && b == Wildcard:
		ps.any = true
	case a == Wildcard:
		ps.single[b] = true
	case b == Wildcard:
		ps.single[a] = true
	default:
		if a > b {
			a, b = b, a
		}
		ps.exact[[2]Label{a, b}] = true
	}
}

// Matches reports whether the concrete graph label pair (a, b) realizes
// some pair in the set.
func (ps *PairSet) Matches(a, b Label) bool {
	if ps.any || ps.single[a] || ps.single[b] {
		return true
	}
	if a > b {
		a, b = b, a
	}
	return ps.exact[[2]Label{a, b}]
}

// Empty reports whether the set holds no pairs.
func (ps *PairSet) Empty() bool {
	return !ps.any && len(ps.single) == 0 && len(ps.exact) == 0
}

// EdgePairSet returns the set of label pairs spanned by t's edges,
// wildcard-aware.
func (t *Template) EdgePairSet() *PairSet {
	ps := NewPairSet()
	for _, e := range t.edges {
		ps.Add(t.labels[e.I], t.labels[e.J])
	}
	return ps
}
