package pattern

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParse exercises the template parser: any input must either error or
// produce a template that round-trips through Write/Parse.
func FuzzParse(f *testing.F) {
	f.Add("v 0 1\nv 1 2\ne 0 1\n")
	f.Add("v 0 *\nv 1 2\ne 0 1 label=3 mandatory\n")
	f.Add("# comment\nv 0 1\n")
	f.Add("e 0 1\ne 1 2\n")
	f.Add("v 0 4294967295\nv 1 0\ne 0 1\n")
	f.Fuzz(func(t *testing.T, in string) {
		tp, err := Parse(strings.NewReader(in))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := Write(&buf, tp); err != nil {
			t.Fatalf("Write failed on parsed template: %v", err)
		}
		tp2, err := Parse(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v\ninput: %q\nwritten: %q", err, in, buf.String())
		}
		if tp.NumVertices() != tp2.NumVertices() || tp.NumEdges() != tp2.NumEdges() {
			t.Fatalf("round trip changed shape: %v vs %v", tp, tp2)
		}
		if !Isomorphic(tp, tp2) {
			t.Fatalf("round trip not isomorphic: %v vs %v", tp, tp2)
		}
	})
}
