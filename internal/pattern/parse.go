package pattern

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Parse reads a template from a simple text format:
//
//	# comment
//	v <index> <label>
//	v <index> *                      (wildcard vertex)
//	e <i> <j> [label=<L>] [mandatory]
//
// Vertex indices must be dense starting at 0; vertices may also be implied
// by edges (label 0).
func Parse(r io.Reader) (*Template, error) {
	sc := bufio.NewScanner(r)
	labels := map[int]Label{}
	maxV := -1
	var edges []Edge
	var mandatory []bool
	var edgeLabels []Label
	anyEdgeLabel := false
	lineNo := 0
	note := func(v int) error {
		if v >= MaxVertices {
			return fmt.Errorf("pattern: vertex index %d exceeds the %d-vertex template limit", v, MaxVertices)
		}
		if v > maxV {
			maxV = v
		}
		return nil
	}
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "v":
			if len(fields) != 3 {
				return nil, fmt.Errorf("pattern: line %d: want 'v <index> <label>'", lineNo)
			}
			idx, err1 := strconv.Atoi(fields[1])
			if err1 != nil || idx < 0 {
				return nil, fmt.Errorf("pattern: line %d: bad vertex line %q", lineNo, line)
			}
			if fields[2] == "*" {
				labels[idx] = Wildcard
			} else {
				l, err2 := strconv.ParseUint(fields[2], 10, 32)
				if err2 != nil {
					return nil, fmt.Errorf("pattern: line %d: bad vertex line %q", lineNo, line)
				}
				labels[idx] = Label(l)
			}
			if err := note(idx); err != nil {
				return nil, err
			}
		case "e":
			if len(fields) < 3 || len(fields) > 5 {
				return nil, fmt.Errorf("pattern: line %d: want 'e <i> <j> [label=<L>] [mandatory]'", lineNo)
			}
			i, err1 := strconv.Atoi(fields[1])
			j, err2 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil || i < 0 || j < 0 {
				return nil, fmt.Errorf("pattern: line %d: bad edge line %q", lineNo, line)
			}
			el := Wildcard
			mand := false
			for _, f := range fields[3:] {
				switch {
				case f == "mandatory":
					mand = true
				case strings.HasPrefix(f, "label="):
					l, err := strconv.ParseUint(strings.TrimPrefix(f, "label="), 10, 32)
					if err != nil {
						return nil, fmt.Errorf("pattern: line %d: bad edge label %q", lineNo, f)
					}
					el = Label(l)
					anyEdgeLabel = true
				default:
					return nil, fmt.Errorf("pattern: line %d: unrecognized edge flag %q", lineNo, f)
				}
			}
			edges = append(edges, Edge{I: i, J: j})
			mandatory = append(mandatory, mand)
			edgeLabels = append(edgeLabels, el)
			if err := note(i); err != nil {
				return nil, err
			}
			if err := note(j); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("pattern: line %d: unrecognized line %q", lineNo, line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if maxV < 0 {
		return nil, fmt.Errorf("pattern: empty template")
	}
	ls := make([]Label, maxV+1)
	for idx, l := range labels {
		ls[idx] = l
	}
	if !anyEdgeLabel {
		edgeLabels = nil
	}
	return NewEdgeLabeled(ls, edges, edgeLabels, mandatory)
}

// Write renders t in the Parse format.
func Write(w io.Writer, t *Template) error {
	bw := bufio.NewWriter(w)
	for q := 0; q < t.NumVertices(); q++ {
		if t.Label(q) == Wildcard {
			if _, err := fmt.Fprintf(bw, "v %d *\n", q); err != nil {
				return err
			}
			continue
		}
		if _, err := fmt.Fprintf(bw, "v %d %d\n", q, t.Label(q)); err != nil {
			return err
		}
	}
	for i, e := range t.Edges() {
		suffix := ""
		if l := t.EdgeLabel(i); l != Wildcard {
			suffix += fmt.Sprintf(" label=%d", l)
		}
		if t.Mandatory(i) {
			suffix += " mandatory"
		}
		if _, err := fmt.Fprintf(bw, "e %d %d%s\n", e.I, e.J, suffix); err != nil {
			return err
		}
	}
	return bw.Flush()
}
