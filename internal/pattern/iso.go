package pattern

import (
	"fmt"
	"sort"
	"strings"
)

// refineColors runs Weisfeiler–Leman style color refinement starting from
// vertex labels and returns a stable coloring. Colors are iso-invariant, so
// they both prune isomorphism search and order cells canonically.
func refineColors(t *Template) []int {
	n := t.NumVertices()
	colors := make([]int, n)
	// Initial colors: rank of (vertex label, sorted incident edge labels)
	// among sorted distinct keys — both are isomorphism invariants.
	keys := make([]string, n)
	for q := 0; q < n; q++ {
		els := make([]int, 0, t.Degree(q))
		for _, r := range t.adj[q] {
			el, _ := t.EdgeLabelBetween(q, r)
			els = append(els, int(el))
		}
		sort.Ints(els)
		keys[q] = fmt.Sprintf("L%d|%v", t.Label(q), els)
	}
	assign := func() bool {
		sorted := append([]string(nil), keys...)
		sort.Strings(sorted)
		rank := make(map[string]int, n)
		for _, k := range sorted {
			if _, ok := rank[k]; !ok {
				rank[k] = len(rank)
			}
		}
		changed := false
		for q := 0; q < n; q++ {
			c := rank[keys[q]]
			if colors[q] != c {
				colors[q] = c
				changed = true
			}
		}
		return changed
	}
	assign()
	for iter := 0; iter < n; iter++ {
		for q := 0; q < n; q++ {
			ncs := make([]int, 0, t.Degree(q))
			for _, r := range t.adj[q] {
				ncs = append(ncs, colors[r])
			}
			sort.Ints(ncs)
			keys[q] = fmt.Sprintf("%d|%v", colors[q], ncs)
		}
		if !assign() {
			break
		}
	}
	return colors
}

// Isomorphic reports whether a and b are isomorphic under a label-preserving
// vertex bijection (same vertex count, labels and adjacency structure).
func Isomorphic(a, b *Template) bool {
	return FindIsomorphism(a, b) != nil
}

// FindIsomorphism returns a label-preserving isomorphism from a's vertices
// to b's vertices, or nil if none exists.
func FindIsomorphism(a, b *Template) []int {
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		return nil
	}
	n := a.NumVertices()
	ca, cb := refineColors(a), refineColors(b)
	// Color histograms must agree.
	ha, hb := map[int]int{}, map[int]int{}
	for q := 0; q < n; q++ {
		ha[ca[q]]++
		hb[cb[q]]++
	}
	if len(ha) != len(hb) {
		return nil
	}
	for c, k := range ha {
		if hb[c] != k {
			return nil
		}
	}
	mapping := make([]int, n)
	used := make([]bool, n)
	for i := range mapping {
		mapping[i] = -1
	}
	// Order a's vertices: most-constrained (rarest color, highest degree)
	// first.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		qi, qj := order[i], order[j]
		if ha[ca[qi]] != ha[ca[qj]] {
			return ha[ca[qi]] < ha[ca[qj]]
		}
		return a.Degree(qi) > a.Degree(qj)
	})
	var solve func(idx int) bool
	solve = func(idx int) bool {
		if idx == n {
			return true
		}
		q := order[idx]
		for w := 0; w < n; w++ {
			if used[w] || cb[w] != ca[q] || a.Label(q) != b.Label(w) || a.Degree(q) != b.Degree(w) {
				continue
			}
			ok := true
			for _, r := range a.adj[q] {
				if m := mapping[r]; m != -1 && !edgeCompatible(a, b, q, r, w, m) {
					ok = false
					break
				}
			}
			if ok {
				// Also reject extra adjacency to already-mapped vertices:
				// matched degree + all required edges present implies edge
				// counts line up only if we check the reverse too.
				for _, x := range b.adj[w] {
					src := -1
					for qa, m := range mapping {
						if m == x {
							src = qa
							break
						}
					}
					if src != -1 && !a.HasEdge(q, src) {
						ok = false
						break
					}
				}
			}
			if !ok {
				continue
			}
			mapping[q] = w
			used[w] = true
			if solve(idx + 1) {
				return true
			}
			mapping[q] = -1
			used[w] = false
		}
		return false
	}
	if !solve(0) {
		return nil
	}
	return mapping
}

// edgeCompatible reports whether mapping template-a edge (q,r) onto
// template-b pair (w,m) preserves both adjacency and edge labels.
func edgeCompatible(a, b *Template, q, r, w, m int) bool {
	la, oka := a.EdgeLabelBetween(q, r)
	lb, okb := b.EdgeLabelBetween(w, m)
	return oka && okb && la == lb
}

// CountAutomorphisms returns the number of label-preserving automorphisms of
// t, used to convert mapping counts to subgraph counts (motif counting).
func CountAutomorphisms(t *Template) int64 {
	n := t.NumVertices()
	colors := refineColors(t)
	mapping := make([]int, n)
	used := make([]bool, n)
	for i := range mapping {
		mapping[i] = -1
	}
	var count int64
	var solve func(q int)
	solve = func(q int) {
		if q == n {
			count++
			return
		}
		for w := 0; w < n; w++ {
			if used[w] || colors[w] != colors[q] || t.Label(q) != t.Label(w) || t.Degree(q) != t.Degree(w) {
				continue
			}
			ok := true
			for _, r := range t.adj[q] {
				if m := mapping[r]; m != -1 && !edgeCompatible(t, t, q, r, w, m) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			mapping[q] = w
			used[w] = true
			solve(q + 1)
			mapping[q] = -1
			used[w] = false
		}
	}
	solve(0)
	return count
}

// CanonicalCode returns a string that is identical for isomorphic templates
// and distinct for non-isomorphic ones. It canonicalizes by color-refined
// cell ordering followed by exhaustive permutation within cells, taking the
// lexicographically smallest (labels, adjacency) encoding. Templates are
// small, so this is fast in practice.
func CanonicalCode(t *Template) string {
	n := t.NumVertices()
	colors := refineColors(t)
	// Group vertices into cells ordered by an iso-invariant cell key:
	// (color histogram rank). Colors from refineColors are already ranks of
	// sorted invariant keys, hence canonical across isomorphic templates.
	cells := make(map[int][]int)
	var cellIDs []int
	for q := 0; q < n; q++ {
		if _, ok := cells[colors[q]]; !ok {
			cellIDs = append(cellIDs, colors[q])
		}
		cells[colors[q]] = append(cells[colors[q]], q)
	}
	sort.Ints(cellIDs)

	perm := make([]int, 0, n) // perm[pos] = original vertex
	best := ""

	var encode func() string
	encode = func() string {
		pos := make([]int, n) // original vertex -> position
		for p, q := range perm {
			pos[q] = p
		}
		var sb strings.Builder
		for _, q := range perm {
			fmt.Fprintf(&sb, "%d,", t.Label(q))
		}
		sb.WriteByte('|')
		type pe struct {
			a, b int
			l    Label
		}
		var pes []pe
		for i, e := range t.edges {
			a, b := pos[e.I], pos[e.J]
			if a > b {
				a, b = b, a
			}
			pes = append(pes, pe{a, b, t.EdgeLabel(i)})
		}
		sort.Slice(pes, func(i, j int) bool {
			if pes[i].a != pes[j].a {
				return pes[i].a < pes[j].a
			}
			return pes[i].b < pes[j].b
		})
		for _, e := range pes {
			fmt.Fprintf(&sb, "%d-%d:%d;", e.a, e.b, e.l)
		}
		return sb.String()
	}

	var rec func(ci int)
	rec = func(ci int) {
		if ci == len(cellIDs) {
			code := encode()
			if best == "" || code < best {
				best = code
			}
			return
		}
		cell := cells[cellIDs[ci]]
		permuteCell(cell, func(orderedCell []int) {
			perm = append(perm, orderedCell...)
			rec(ci + 1)
			perm = perm[:len(perm)-len(orderedCell)]
		})
	}
	rec(0)
	return best
}

// permuteCell calls fn with every permutation of cell (Heap's algorithm on a
// copy).
func permuteCell(cell []int, fn func([]int)) {
	c := append([]int(nil), cell...)
	var rec func(k int)
	rec = func(k int) {
		if k == 1 {
			fn(c)
			return
		}
		for i := 0; i < k; i++ {
			rec(k - 1)
			if k%2 == 0 {
				c[i], c[k-1] = c[k-1], c[i]
			} else {
				c[0], c[k-1] = c[k-1], c[0]
			}
		}
	}
	if len(c) == 0 {
		fn(c)
		return
	}
	rec(len(c))
}
