package pattern

import (
	"fmt"
	"sort"
	"strings"
)

// refineColors runs Weisfeiler–Leman style color refinement starting from
// vertex labels and returns a stable coloring. Colors are iso-invariant, so
// they both prune isomorphism search and order cells canonically.
func refineColors(t *Template) []int {
	n := t.NumVertices()
	colors := make([]int, n)
	// Initial colors: rank of (vertex label, sorted incident edge labels)
	// among sorted distinct keys — both are isomorphism invariants.
	keys := make([]string, n)
	for q := 0; q < n; q++ {
		els := make([]int, 0, t.Degree(q))
		for _, r := range t.adj[q] {
			el, _ := t.EdgeLabelBetween(q, r)
			els = append(els, int(el))
		}
		sort.Ints(els)
		keys[q] = fmt.Sprintf("L%d|%v", t.Label(q), els)
	}
	assign := func() bool {
		sorted := append([]string(nil), keys...)
		sort.Strings(sorted)
		rank := make(map[string]int, n)
		for _, k := range sorted {
			if _, ok := rank[k]; !ok {
				rank[k] = len(rank)
			}
		}
		changed := false
		for q := 0; q < n; q++ {
			c := rank[keys[q]]
			if colors[q] != c {
				colors[q] = c
				changed = true
			}
		}
		return changed
	}
	assign()
	for iter := 0; iter < n; iter++ {
		for q := 0; q < n; q++ {
			ncs := make([]int, 0, t.Degree(q))
			for _, r := range t.adj[q] {
				ncs = append(ncs, colors[r])
			}
			sort.Ints(ncs)
			keys[q] = fmt.Sprintf("%d|%v", colors[q], ncs)
		}
		if !assign() {
			break
		}
	}
	return colors
}

// Isomorphic reports whether a and b are isomorphic under a label-preserving
// vertex bijection (same vertex count, labels and adjacency structure).
func Isomorphic(a, b *Template) bool {
	return FindIsomorphism(a, b) != nil
}

// FindIsomorphism returns a label-preserving isomorphism from a's vertices
// to b's vertices, or nil if none exists.
func FindIsomorphism(a, b *Template) []int {
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		return nil
	}
	n := a.NumVertices()
	ca, cb := refineColors(a), refineColors(b)
	// Color histograms must agree.
	ha, hb := map[int]int{}, map[int]int{}
	for q := 0; q < n; q++ {
		ha[ca[q]]++
		hb[cb[q]]++
	}
	if len(ha) != len(hb) {
		return nil
	}
	for c, k := range ha {
		if hb[c] != k {
			return nil
		}
	}
	mapping := make([]int, n)
	used := make([]bool, n)
	for i := range mapping {
		mapping[i] = -1
	}
	// Order a's vertices: most-constrained (rarest color, highest degree)
	// first.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		qi, qj := order[i], order[j]
		if ha[ca[qi]] != ha[ca[qj]] {
			return ha[ca[qi]] < ha[ca[qj]]
		}
		return a.Degree(qi) > a.Degree(qj)
	})
	var solve func(idx int) bool
	solve = func(idx int) bool {
		if idx == n {
			return true
		}
		q := order[idx]
		for w := 0; w < n; w++ {
			if used[w] || cb[w] != ca[q] || a.Label(q) != b.Label(w) || a.Degree(q) != b.Degree(w) {
				continue
			}
			ok := true
			for _, r := range a.adj[q] {
				if m := mapping[r]; m != -1 && !edgeCompatible(a, b, q, r, w, m) {
					ok = false
					break
				}
			}
			if ok {
				// Also reject extra adjacency to already-mapped vertices:
				// matched degree + all required edges present implies edge
				// counts line up only if we check the reverse too.
				for _, x := range b.adj[w] {
					src := -1
					for qa, m := range mapping {
						if m == x {
							src = qa
							break
						}
					}
					if src != -1 && !a.HasEdge(q, src) {
						ok = false
						break
					}
				}
			}
			if !ok {
				continue
			}
			mapping[q] = w
			used[w] = true
			if solve(idx + 1) {
				return true
			}
			mapping[q] = -1
			used[w] = false
		}
		return false
	}
	if !solve(0) {
		return nil
	}
	return mapping
}

// edgeCompatible reports whether mapping template-a edge (q,r) onto
// template-b pair (w,m) preserves both adjacency and edge labels.
func edgeCompatible(a, b *Template, q, r, w, m int) bool {
	la, oka := a.EdgeLabelBetween(q, r)
	lb, okb := b.EdgeLabelBetween(w, m)
	return oka && okb && la == lb
}

// CountAutomorphisms returns the number of label-preserving automorphisms of
// t, used to convert mapping counts to subgraph counts (motif counting).
func CountAutomorphisms(t *Template) int64 {
	n := t.NumVertices()
	colors := refineColors(t)
	mapping := make([]int, n)
	used := make([]bool, n)
	for i := range mapping {
		mapping[i] = -1
	}
	var count int64
	var solve func(q int)
	solve = func(q int) {
		if q == n {
			count++
			return
		}
		for w := 0; w < n; w++ {
			if used[w] || colors[w] != colors[q] || t.Label(q) != t.Label(w) || t.Degree(q) != t.Degree(w) {
				continue
			}
			ok := true
			for _, r := range t.adj[q] {
				if m := mapping[r]; m != -1 && !edgeCompatible(t, t, q, r, w, m) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			mapping[q] = w
			used[w] = true
			solve(q + 1)
			mapping[q] = -1
			used[w] = false
		}
	}
	solve(0)
	return count
}

// CanonicalCode returns a string that is identical for isomorphic templates
// and distinct for non-isomorphic ones. It canonicalizes by color-refined
// cell ordering followed by exhaustive permutation within cells, taking the
// lexicographically smallest (labels, adjacency) encoding. Templates are
// small, so this is fast in practice.
//
// CanonicalCode deliberately ignores mandatory-edge flags: prototype
// deduplication folds structurally identical variants regardless of which
// literal edges are pinned (mandatory flags constrain generation, not
// matching). Callers keying caches across *different base templates* must
// use CanonicalKey instead, which does encode them.
func CanonicalCode(t *Template) string {
	code, _ := canonicalize(t, false)
	return code
}

// CanonicalKey returns a cache key that fully identifies a template up to
// label-preserving isomorphism: the CanonicalCode extended with a canonical
// mandatory-edge section. Two templates share a key iff some vertex
// bijection preserves labels, adjacency, edge labels AND mandatory flags —
// exactly the condition under which prototype generation (and hence every
// match result) coincides. CanonicalCode alone collides for templates that
// differ only in which edges are mandatory, which would silently poison a
// result cache.
func CanonicalKey(t *Template) string {
	code, _ := canonicalize(t, true)
	return code
}

// CanonicalForm returns the canonically relabeled copy of t (same key for
// every isomorphic input, per CanonicalKey's equivalence) together with the
// relabeling: toCanon[q] is the canonical index of t's vertex q. Running a
// query on the canonical form makes pipeline output byte-identical across
// isomorphic submissions, which is what lets cross-query result caches
// translate hits through the isomorphism trivially.
func CanonicalForm(t *Template) (*Template, []int) {
	_, perm := canonicalize(t, true) // perm[pos] = original vertex
	n := t.NumVertices()
	toCanon := make([]int, n)
	for pos, q := range perm {
		toCanon[q] = pos
	}
	labels := make([]Label, n)
	for q, l := range t.labels {
		labels[toCanon[q]] = l
	}
	// Relabel, then sort edges by endpoints so the form is independent of
	// the submission's edge ordering (edge indices are load-bearing: they
	// define prototype edge-mask bits).
	type ce struct {
		e    Edge
		l    Label
		mand bool
	}
	ces := make([]ce, len(t.edges))
	for i, e := range t.edges {
		ces[i] = ce{normEdge(toCanon[e.I], toCanon[e.J]), t.EdgeLabel(i), t.mandatory[i]}
	}
	sort.Slice(ces, func(i, j int) bool {
		if ces[i].e.I != ces[j].e.I {
			return ces[i].e.I < ces[j].e.I
		}
		return ces[i].e.J < ces[j].e.J
	})
	edges := make([]Edge, len(ces))
	mand := make([]bool, len(ces))
	var elabels []Label
	if t.edgeLabels != nil {
		elabels = make([]Label, len(ces))
	}
	for i, c := range ces {
		edges[i] = c.e
		mand[i] = c.mand
		if elabels != nil {
			elabels[i] = c.l
		}
	}
	ct, err := NewEdgeLabeled(labels, edges, elabels, mand)
	if err != nil {
		// Relabeling a valid template cannot invalidate it.
		panic(fmt.Sprintf("pattern: canonical relabeling failed: %v", err))
	}
	return ct, toCanon
}

// CanonicalCost estimates the number of permutations canonicalization must
// enumerate (the product of color-cell factorials). Callers canonicalizing
// untrusted templates at admission should skip templates whose cost exceeds
// their latency budget — e.g. a large all-wildcard clique degenerates to n!.
func CanonicalCost(t *Template) float64 {
	colors := refineColors(t)
	sizes := make(map[int]int)
	for _, c := range colors {
		sizes[c]++
	}
	cost := 1.0
	for _, sz := range sizes {
		for f := 2; f <= sz; f++ {
			cost *= float64(f)
			if cost > 1e18 {
				return cost
			}
		}
	}
	return cost
}

// canonicalize computes the lexicographically smallest cell-respecting
// encoding of t and the permutation achieving it (perm[pos] = original
// vertex). With withMandatory set, the encoding carries a trailing
// mandatory-bit section; because every candidate encoding has the same
// number of edge terminators, no base encoding is a proper prefix of
// another, so the extended minimum's base section still equals
// CanonicalCode — the extension only refines ties and distinguishes
// mandatory-differing templates.
func canonicalize(t *Template, withMandatory bool) (string, []int) {
	n := t.NumVertices()
	colors := refineColors(t)
	// Group vertices into cells ordered by an iso-invariant cell key:
	// (color histogram rank). Colors from refineColors are already ranks of
	// sorted invariant keys, hence canonical across isomorphic templates.
	cells := make(map[int][]int)
	var cellIDs []int
	for q := 0; q < n; q++ {
		if _, ok := cells[colors[q]]; !ok {
			cellIDs = append(cellIDs, colors[q])
		}
		cells[colors[q]] = append(cells[colors[q]], q)
	}
	sort.Ints(cellIDs)

	perm := make([]int, 0, n) // perm[pos] = original vertex
	best := ""
	var bestPerm []int

	var encode func() string
	encode = func() string {
		pos := make([]int, n) // original vertex -> position
		for p, q := range perm {
			pos[q] = p
		}
		var sb strings.Builder
		for _, q := range perm {
			fmt.Fprintf(&sb, "%d,", t.Label(q))
		}
		sb.WriteByte('|')
		type pe struct {
			a, b int
			l    Label
			mand bool
		}
		var pes []pe
		for i, e := range t.edges {
			a, b := pos[e.I], pos[e.J]
			if a > b {
				a, b = b, a
			}
			pes = append(pes, pe{a, b, t.EdgeLabel(i), t.mandatory[i]})
		}
		sort.Slice(pes, func(i, j int) bool {
			if pes[i].a != pes[j].a {
				return pes[i].a < pes[j].a
			}
			return pes[i].b < pes[j].b
		})
		for _, e := range pes {
			fmt.Fprintf(&sb, "%d-%d:%d;", e.a, e.b, e.l)
		}
		if withMandatory {
			sb.WriteString("|m")
			for _, e := range pes {
				if e.mand {
					sb.WriteByte('1')
				} else {
					sb.WriteByte('0')
				}
			}
		}
		return sb.String()
	}

	var rec func(ci int)
	rec = func(ci int) {
		if ci == len(cellIDs) {
			code := encode()
			if best == "" || code < best {
				best = code
				bestPerm = append(bestPerm[:0], perm...)
			}
			return
		}
		cell := cells[cellIDs[ci]]
		permuteCell(cell, func(orderedCell []int) {
			perm = append(perm, orderedCell...)
			rec(ci + 1)
			perm = perm[:len(perm)-len(orderedCell)]
		})
	}
	rec(0)
	return best, bestPerm
}

// permuteCell calls fn with every permutation of cell (Heap's algorithm on a
// copy).
func permuteCell(cell []int, fn func([]int)) {
	c := append([]int(nil), cell...)
	var rec func(k int)
	rec = func(k int) {
		if k == 1 {
			fn(c)
			return
		}
		for i := 0; i < k; i++ {
			rec(k - 1)
			if k%2 == 0 {
				c[i], c[k-1] = c[k-1], c[i]
			} else {
				c[0], c[k-1] = c[k-1], c[0]
			}
		}
	}
	if len(c) == 0 {
		fn(c)
		return
	}
	rec(len(c))
}
