package pattern

import "fmt"

// Edge-label support for templates: each template edge may require a
// specific edge label in the background graph (Wildcard, the default,
// accepts any). This is the edge-labeled generalization the paper notes
// in §2.

// NewEdgeLabeled builds a template whose edges additionally constrain the
// background edge labels. edgeLabels and mandatory may each be nil
// (all-wildcard / all-optional).
func NewEdgeLabeled(labels []Label, edges []Edge, edgeLabels []Label, mandatory []bool) (*Template, error) {
	t, err := NewWithMandatory(labels, edges, mandatory)
	if err != nil {
		return nil, err
	}
	if edgeLabels == nil {
		return t, nil
	}
	if len(edgeLabels) != len(edges) {
		return nil, fmt.Errorf("pattern: %d edge labels for %d edges", len(edgeLabels), len(edges))
	}
	// NewWithMandatory normalizes edge order (I<J) but preserves sequence,
	// so edge i in t.edges corresponds to edges[i].
	t.edgeLabels = append([]Label(nil), edgeLabels...)
	return t, nil
}

// HasEdgeLabels reports whether any edge constrains its label.
func (t *Template) HasEdgeLabels() bool { return t.edgeLabels != nil }

// EdgeLabel returns the label requirement of edge i (Wildcard when
// unconstrained).
func (t *Template) EdgeLabel(i int) Label {
	if t.edgeLabels == nil {
		return Wildcard
	}
	return t.edgeLabels[i]
}

// EdgeLabelBetween returns the label requirement of the undirected edge
// (i,j) and whether the edge exists.
func (t *Template) EdgeLabelBetween(i, j int) (Label, bool) {
	id := t.EdgeID(i, j)
	if id < 0 {
		return 0, false
	}
	return t.EdgeLabel(id), true
}

// EdgeLabelSet returns the distinct concrete edge labels used by t and
// whether any edge accepts all labels.
func (t *Template) EdgeLabelSet() (set map[Label]bool, hasWildcard bool) {
	set = make(map[Label]bool)
	for i := range t.edges {
		l := t.EdgeLabel(i)
		if l == Wildcard {
			hasWildcard = true
		} else {
			set[l] = true
		}
	}
	return set, hasWildcard
}
