package pattern

import (
	"math/rand"
	"testing"
)

// permuteTemplate relabels t's vertices by perm (perm[q] = new index of q),
// shuffles edge order, and randomly flips edge endpoint order — everything a
// client could do while submitting "the same" template.
func permuteTemplate(t *Template, perm []int, rng *rand.Rand) *Template {
	n := t.NumVertices()
	labels := make([]Label, n)
	for q := 0; q < n; q++ {
		labels[perm[q]] = t.Label(q)
	}
	type rec struct {
		e    Edge
		l    Label
		mand bool
	}
	recs := make([]rec, t.NumEdges())
	for i, e := range t.Edges() {
		a, b := perm[e.I], perm[e.J]
		if rng.Intn(2) == 0 {
			a, b = b, a
		}
		recs[i] = rec{Edge{a, b}, t.EdgeLabel(i), t.Mandatory(i)}
	}
	rng.Shuffle(len(recs), func(i, j int) { recs[i], recs[j] = recs[j], recs[i] })
	edges := make([]Edge, len(recs))
	mand := make([]bool, len(recs))
	var elabels []Label
	if t.HasEdgeLabels() {
		elabels = make([]Label, len(recs))
	}
	for i, r := range recs {
		edges[i] = r.e
		mand[i] = r.mand
		if elabels != nil {
			elabels[i] = r.l
		}
	}
	out, err := NewEdgeLabeled(labels, edges, elabels, mand)
	if err != nil {
		panic(err)
	}
	return out
}

func randomConnectedTemplate(rng *rand.Rand, maxN, maxLabel int) *Template {
	n := 2 + rng.Intn(maxN-1)
	labels := make([]Label, n)
	for i := range labels {
		labels[i] = Label(rng.Intn(maxLabel))
	}
	seen := make(map[Edge]bool)
	var edges []Edge
	// Random spanning tree keeps it connected.
	for v := 1; v < n; v++ {
		u := rng.Intn(v)
		e := normEdge(u, v)
		seen[e] = true
		edges = append(edges, e)
	}
	extra := rng.Intn(n)
	for i := 0; i < extra; i++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a == b {
			continue
		}
		e := normEdge(a, b)
		if seen[e] {
			continue
		}
		seen[e] = true
		edges = append(edges, e)
	}
	mand := make([]bool, len(edges))
	for i := range mand {
		mand[i] = rng.Intn(4) == 0
	}
	t, err := NewWithMandatory(labels, edges, mand)
	if err != nil {
		panic(err)
	}
	return t
}

func randomPerm(n int, rng *rand.Rand) []int {
	p := rng.Perm(n)
	return p
}

// TestCanonicalKeyIsoInvariant: isomorphic submissions — random vertex
// relabelings, edge reorderings, endpoint flips — must map to one key, and
// the canonical forms must be byte-identical templates.
func TestCanonicalKeyIsoInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		base := randomConnectedTemplate(rng, 7, 4)
		keyBase := CanonicalKey(base)
		formBase, _ := CanonicalForm(base)
		for rep := 0; rep < 3; rep++ {
			shuffled := permuteTemplate(base, randomPerm(base.NumVertices(), rng), rng)
			if got := CanonicalKey(shuffled); got != keyBase {
				t.Fatalf("trial %d: isomorphic templates got different keys\n%s -> %s\n%s -> %s",
					trial, base, keyBase, shuffled, got)
			}
			form, _ := CanonicalForm(shuffled)
			if form.String() != formBase.String() {
				t.Fatalf("trial %d: canonical forms differ\n%s\n%s", trial, formBase, form)
			}
			if CanonicalCode(shuffled) != CanonicalCode(base) {
				t.Fatalf("trial %d: CanonicalCode not iso-invariant", trial)
			}
		}
	}
}

// TestCanonicalFormMapping: the returned mapping must be a label-preserving
// isomorphism from the input onto the canonical form, including edge labels
// and mandatory flags.
func TestCanonicalFormMapping(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		in := randomConnectedTemplate(rng, 7, 4)
		ct, toCanon := CanonicalForm(in)
		if ct.NumVertices() != in.NumVertices() || ct.NumEdges() != in.NumEdges() {
			t.Fatalf("trial %d: size mismatch", trial)
		}
		seenPos := make([]bool, in.NumVertices())
		for q := 0; q < in.NumVertices(); q++ {
			p := toCanon[q]
			if p < 0 || p >= in.NumVertices() || seenPos[p] {
				t.Fatalf("trial %d: toCanon is not a permutation: %v", trial, toCanon)
			}
			seenPos[p] = true
			if ct.Label(p) != in.Label(q) {
				t.Fatalf("trial %d: label mismatch at vertex %d", trial, q)
			}
		}
		for i, e := range in.Edges() {
			a, b := toCanon[e.I], toCanon[e.J]
			id := ct.EdgeID(a, b)
			if id < 0 {
				t.Fatalf("trial %d: edge (%d,%d) missing in canonical form", trial, e.I, e.J)
			}
			if ct.Mandatory(id) != in.Mandatory(i) {
				t.Fatalf("trial %d: mandatory flag lost on edge (%d,%d)", trial, e.I, e.J)
			}
			if ct.EdgeLabel(id) != in.EdgeLabel(i) {
				t.Fatalf("trial %d: edge label lost on edge (%d,%d)", trial, e.I, e.J)
			}
		}
		// The canonical form is a fixpoint: canonicalizing it again changes
		// nothing (identity mapping), so cached keys are stable.
		ct2, m2 := CanonicalForm(ct)
		if ct2.String() != ct.String() {
			t.Fatalf("trial %d: canonical form not a fixpoint\n%s\n%s", trial, ct, ct2)
		}
		for q, p := range m2 {
			if p != q {
				t.Fatalf("trial %d: canonical form remapped: %v", trial, m2)
			}
		}
	}
}

// TestCanonicalKeyDistinguishes: table of non-isomorphic pairs that naive
// encodings confuse.
func TestCanonicalKeyDistinguishes(t *testing.T) {
	path4 := MustNew([]Label{1, 1, 1, 1}, []Edge{{0, 1}, {1, 2}, {2, 3}})
	star4 := MustNew([]Label{1, 1, 1, 1}, []Edge{{0, 1}, {0, 2}, {0, 3}})
	tri := MustNew([]Label{1, 1, 1}, []Edge{{0, 1}, {1, 2}, {0, 2}})
	path3 := MustNew([]Label{1, 1, 1}, []Edge{{0, 1}, {1, 2}})
	pathAB := MustNew([]Label{1, 2, 1}, []Edge{{0, 1}, {1, 2}})
	pathBA := MustNew([]Label{2, 1, 2}, []Edge{{0, 1}, {1, 2}})
	pairs := [][2]*Template{
		{path4, star4},
		{tri, path3},
		{pathAB, pathBA},
	}
	for i, p := range pairs {
		if CanonicalKey(p[0]) == CanonicalKey(p[1]) {
			t.Errorf("pair %d: non-isomorphic templates share a key: %s vs %s", i, p[0], p[1])
		}
	}
}

// TestCanonicalKeyMandatoryRegression: CanonicalCode deliberately folds
// mandatory-differing templates (prototype dedup), but such templates have
// different prototype sets and hence different results — the cache key must
// separate them. This is the collision the result cache would otherwise be
// poisoned by.
func TestCanonicalKeyMandatoryRegression(t *testing.T) {
	labels := []Label{1, 2, 3}
	edges := []Edge{{0, 1}, {1, 2}, {0, 2}}
	free, err := NewWithMandatory(labels, edges, nil)
	if err != nil {
		t.Fatal(err)
	}
	pinned, err := NewWithMandatory(labels, edges, []bool{true, false, false})
	if err != nil {
		t.Fatal(err)
	}
	if CanonicalCode(free) != CanonicalCode(pinned) {
		t.Fatalf("precondition: CanonicalCode should fold mandatory-differing templates")
	}
	if CanonicalKey(free) == CanonicalKey(pinned) {
		t.Fatalf("CanonicalKey collides for mandatory-differing templates: %q", CanonicalKey(free))
	}
	// Pinning a *different but automorphic-equivalent* edge must keep the
	// key identical: labels 1,2,3 are distinct so edges (0,1) vs (1,2) are
	// NOT equivalent here; check with a symmetric template instead.
	sym := []Label{1, 1, 1}
	a, _ := NewWithMandatory(sym, edges, []bool{true, false, false})
	b, _ := NewWithMandatory(sym, edges, []bool{false, true, false})
	if CanonicalKey(a) != CanonicalKey(b) {
		t.Fatalf("automorphism-equivalent mandatory placements must share a key")
	}
	c, _ := NewWithMandatory(sym, edges, []bool{true, true, false})
	if CanonicalKey(a) == CanonicalKey(c) {
		t.Fatalf("different mandatory multiplicity must change the key")
	}
}

// TestCanonicalKeyRandomMutationDistinct: mutating a random structural
// property (vertex label, edge presence, edge label, mandatory flag) must
// change the key — i.e. the key has no blind spots a cache could collide on.
func TestCanonicalKeyRandomMutationDistinct(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 300; trial++ {
		base := randomConnectedTemplate(rng, 6, 3)
		key := CanonicalKey(base)
		n := base.NumVertices()
		labels := append([]Label(nil), base.Labels()...)
		edges := append([]Edge(nil), base.Edges()...)
		mand := make([]bool, base.NumEdges())
		for i := range mand {
			mand[i] = base.Mandatory(i)
		}
		switch rng.Intn(3) {
		case 0: // change a vertex label
			q := rng.Intn(n)
			labels[q] = labels[q] + 100
		case 1: // flip a mandatory flag
			i := rng.Intn(len(mand))
			mand[i] = !mand[i]
		case 2: // add an edge if room, else flip a mandatory flag
			added := false
			for a := 0; a < n && !added; a++ {
				for b := a + 1; b < n && !added; b++ {
					if !base.HasEdge(a, b) {
						edges = append(edges, Edge{a, b})
						mand = append(mand, false)
						added = true
					}
				}
			}
			if !added {
				i := rng.Intn(len(mand))
				mand[i] = !mand[i]
			}
		}
		mut, err := NewWithMandatory(labels, edges, mand)
		if err != nil {
			continue // mutation disconnected or invalidated it; skip
		}
		if CanonicalKey(mut) == key {
			t.Fatalf("trial %d: mutation did not change key\nbase: %s\nmut:  %s", trial, base, mut)
		}
	}
}

// TestCanonicalKeyExtendsCode: the key's base section must equal
// CanonicalCode — appending the mandatory section refines ties without
// perturbing the minimized structural encoding, so prototype dedup and the
// cache key agree on structure.
func TestCanonicalKeyExtendsCode(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 200; trial++ {
		tt := randomConnectedTemplate(rng, 7, 4)
		code := CanonicalCode(tt)
		key := CanonicalKey(tt)
		if len(key) < len(code) || key[:len(code)] != code {
			t.Fatalf("trial %d: key %q does not extend code %q", trial, key, code)
		}
	}
}

func TestCanonicalCost(t *testing.T) {
	// Distinct labels: every cell is a singleton, cost 1.
	distinct := MustNew([]Label{1, 2, 3}, []Edge{{0, 1}, {1, 2}})
	if c := CanonicalCost(distinct); c != 1 {
		t.Errorf("distinct-label path: cost %v, want 1", c)
	}
	// All-same-label clique: refinement cannot split it; cost n!.
	k4 := MustNew([]Label{7, 7, 7, 7},
		[]Edge{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}})
	if c := CanonicalCost(k4); c != 24 {
		t.Errorf("K4: cost %v, want 24", c)
	}
}

func FuzzCanonicalKey(f *testing.F) {
	f.Add(int64(5), int64(11))
	f.Add(int64(42), int64(99))
	f.Fuzz(func(t *testing.T, seedA, seedB int64) {
		rng := rand.New(rand.NewSource(seedA))
		base := randomConnectedTemplate(rng, 6, 3)
		shufRng := rand.New(rand.NewSource(seedB))
		shuffled := permuteTemplate(base, randomPerm(base.NumVertices(), shufRng), shufRng)
		if CanonicalKey(base) != CanonicalKey(shuffled) {
			t.Fatalf("isomorphic templates got different keys\n%s\n%s", base, shuffled)
		}
		if FindIsomorphism(base, shuffled) == nil {
			t.Fatalf("permuteTemplate produced a non-isomorphic template")
		}
	})
}
