package pattern

import (
	"bytes"
	"strings"
	"testing"
)

func TestParseRoundTrip(t *testing.T) {
	orig, err := NewWithMandatory(
		[]Label{1, 2, 3},
		[]Edge{{I: 0, J: 1}, {I: 1, J: 2}, {I: 0, J: 2}},
		[]bool{true, false, false})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumVertices() != 3 || got.NumEdges() != 3 {
		t.Fatalf("round trip shape: %v", got)
	}
	for q := 0; q < 3; q++ {
		if got.Label(q) != orig.Label(q) {
			t.Errorf("label %d differs", q)
		}
	}
	if !got.Mandatory(got.EdgeID(0, 1)) {
		t.Error("mandatory flag lost")
	}
}

func TestParseComments(t *testing.T) {
	in := `# triangle
v 0 1
v 1 2
v 2 3

e 0 1
e 1 2
e 0 2 mandatory
`
	tp, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tp.NumEdges() != 3 || !tp.Mandatory(tp.EdgeID(0, 2)) {
		t.Fatalf("parse result: %v", tp)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",                           // empty
		"x 1 2",                      // unknown directive
		"v 0",                        // short vertex
		"e 0",                        // short edge
		"v -1 2",                     // negative index
		"e 0 1 optional",             // bad flag
		"v 0 1\nv 1 1\ne 0 1\nv 9 1", // disconnected (vertex 9 floats)
	}
	for _, in := range cases {
		if _, err := Parse(strings.NewReader(in)); err == nil {
			t.Errorf("Parse(%q) accepted", in)
		}
	}
}

func TestParseWildcardAndEdgeLabels(t *testing.T) {
	in := `v 0 1
v 1 *
v 2 3
e 0 1 label=5
e 1 2 label=6 mandatory
e 0 2
`
	tp, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tp.Label(1) != Wildcard {
		t.Error("wildcard vertex not parsed")
	}
	if tp.EdgeLabel(0) != 5 || tp.EdgeLabel(1) != 6 || tp.EdgeLabel(2) != Wildcard {
		t.Errorf("edge labels: %d %d %d", tp.EdgeLabel(0), tp.EdgeLabel(1), tp.EdgeLabel(2))
	}
	if !tp.Mandatory(tp.EdgeID(1, 2)) {
		t.Error("mandatory flag lost")
	}
	// Full round trip.
	var buf bytes.Buffer
	if err := Write(&buf, tp); err != nil {
		t.Fatal(err)
	}
	tp2, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !Isomorphic(tp, tp2) {
		t.Error("round trip broke the template")
	}
	if tp2.EdgeLabel(0) != 5 || tp2.Label(1) != Wildcard {
		t.Error("round trip lost wildcard/edge labels")
	}
	// Bad edge flag rejected.
	if _, err := Parse(strings.NewReader("v 0 1\nv 1 1\ne 0 1 label=x")); err == nil {
		t.Error("bad edge label accepted")
	}
	if _, err := Parse(strings.NewReader("v 0 1\nv 1 1\ne 0 1 bogus")); err == nil {
		t.Error("bogus flag accepted")
	}
}
