// Package pattern models the user-supplied search template H0 and its
// prototypes: small vertex-labeled undirected graphs with optional and
// mandatory edges (§2 of the paper). It provides the structural analyses the
// pipeline depends on — connectivity, cycle enumeration, edge-monocyclicity,
// label multiplicity — plus label-preserving isomorphism testing, canonical
// codes and automorphism counting for prototype deduplication and match
// counting.
package pattern

import (
	"fmt"
	"sort"
	"strings"

	"approxmatch/internal/graph"
)

// Label is a template vertex label; it shares the alphabet of the
// background graph.
type Label = graph.Label

// Edge is an undirected template edge between vertex indices I < J.
type Edge struct {
	I, J int
}

func normEdge(i, j int) Edge {
	if i > j {
		i, j = j, i
	}
	return Edge{i, j}
}

// Template is a small connected vertex-labeled graph. Edges may be marked
// mandatory: prototype generation never deletes mandatory edges (§3.1).
// Templates are immutable after construction.
type Template struct {
	labels    []Label
	edges     []Edge
	mandatory []bool
	adj       [][]int // neighbor vertex indices, sorted
	// edgeLabels, when non-nil, constrains background edge labels per
	// template edge (see edgelabels.go).
	edgeLabels []Label
}

// New builds a template from per-vertex labels and an edge list. All edges
// are optional; use NewWithMandatory to pin edges. It returns an error for
// self loops, duplicate edges, out-of-range endpoints or a disconnected
// template.
func New(labels []Label, edges []Edge) (*Template, error) {
	return NewWithMandatory(labels, edges, nil)
}

// MaxVertices bounds template size: the engines track per-vertex candidate
// sets as 64-bit masks (ω in Alg. 3), far beyond any practical search
// template.
const MaxVertices = 64

// NewWithMandatory builds a template where mandatory[i] marks edges[i] as a
// mandatory relationship. mandatory may be nil (all optional).
func NewWithMandatory(labels []Label, edges []Edge, mandatory []bool) (*Template, error) {
	n := len(labels)
	if n == 0 {
		return nil, fmt.Errorf("pattern: template needs at least one vertex")
	}
	if n > MaxVertices {
		return nil, fmt.Errorf("pattern: template has %d vertices, limit %d", n, MaxVertices)
	}
	if mandatory != nil && len(mandatory) != len(edges) {
		return nil, fmt.Errorf("pattern: %d mandatory flags for %d edges", len(mandatory), len(edges))
	}
	t := &Template{
		labels:    append([]Label(nil), labels...),
		mandatory: make([]bool, len(edges)),
		adj:       make([][]int, n),
	}
	seen := make(map[Edge]bool)
	for i, e := range edges {
		ne := normEdge(e.I, e.J)
		if ne.I == ne.J {
			return nil, fmt.Errorf("pattern: self loop at vertex %d", ne.I)
		}
		if ne.I < 0 || ne.J >= n {
			return nil, fmt.Errorf("pattern: edge (%d,%d) out of range", e.I, e.J)
		}
		if seen[ne] {
			return nil, fmt.Errorf("pattern: duplicate edge (%d,%d)", ne.I, ne.J)
		}
		seen[ne] = true
		t.edges = append(t.edges, ne)
		if mandatory != nil {
			t.mandatory[i] = mandatory[i]
		}
		t.adj[ne.I] = append(t.adj[ne.I], ne.J)
		t.adj[ne.J] = append(t.adj[ne.J], ne.I)
	}
	for _, ns := range t.adj {
		sort.Ints(ns)
	}
	if !t.Connected() {
		return nil, fmt.Errorf("pattern: template is disconnected")
	}
	return t, nil
}

// MustNew is New, panicking on error; intended for tests and literals.
func MustNew(labels []Label, edges []Edge) *Template {
	t, err := New(labels, edges)
	if err != nil {
		panic(err)
	}
	return t
}

// NumVertices returns the number of template vertices.
func (t *Template) NumVertices() int { return len(t.labels) }

// NumEdges returns the number of template edges.
func (t *Template) NumEdges() int { return len(t.edges) }

// Label returns the label of template vertex q.
func (t *Template) Label(q int) Label { return t.labels[q] }

// Labels returns the label slice (do not modify).
func (t *Template) Labels() []Label { return t.labels }

// Edges returns the edge slice (do not modify).
func (t *Template) Edges() []Edge { return t.edges }

// Edge returns edge i.
func (t *Template) Edge(i int) Edge { return t.edges[i] }

// Mandatory reports whether edge i is mandatory.
func (t *Template) Mandatory(i int) bool { return t.mandatory[i] }

// HasMandatory reports whether any edge is mandatory.
func (t *Template) HasMandatory() bool {
	for _, m := range t.mandatory {
		if m {
			return true
		}
	}
	return false
}

// Neighbors returns the sorted neighbor indices of vertex q (do not modify).
func (t *Template) Neighbors(q int) []int { return t.adj[q] }

// Degree returns the degree of vertex q.
func (t *Template) Degree(q int) int { return len(t.adj[q]) }

// HasEdge reports whether the undirected edge (i,j) exists.
func (t *Template) HasEdge(i, j int) bool {
	ns := t.adj[i]
	p := sort.SearchInts(ns, j)
	return p < len(ns) && ns[p] == j
}

// EdgeID returns the index of edge (i,j) in Edges, or -1.
func (t *Template) EdgeID(i, j int) int {
	ne := normEdge(i, j)
	for id, e := range t.edges {
		if e == ne {
			return id
		}
	}
	return -1
}

// RemoveEdge returns a copy of t with edge index id removed, or an error if
// the result would be disconnected or the edge is mandatory. Vertex set and
// labels are preserved (prototypes keep all template vertices, Def. 1).
func (t *Template) RemoveEdge(id int) (*Template, error) {
	if t.mandatory[id] {
		return nil, fmt.Errorf("pattern: edge %d is mandatory", id)
	}
	var mask uint64 = 0
	for i := range t.edges {
		if i != id {
			mask |= 1 << uint(i)
		}
	}
	return t.Restrict(mask)
}

// Restrict returns the template keeping only the edges whose bit is set in
// mask, carrying edge labels and mandatory flags; it fails when the result
// is disconnected. Restrict underlies prototype generation.
func (t *Template) Restrict(mask uint64) (*Template, error) {
	edges := make([]Edge, 0, len(t.edges))
	mand := make([]bool, 0, len(t.edges))
	var elabels []Label
	if t.edgeLabels != nil {
		elabels = make([]Label, 0, len(t.edges))
	}
	for i, e := range t.edges {
		if mask&(1<<uint(i)) == 0 {
			continue
		}
		edges = append(edges, e)
		mand = append(mand, t.mandatory[i])
		if elabels != nil {
			elabels = append(elabels, t.edgeLabels[i])
		}
	}
	return NewEdgeLabeled(t.labels, edges, elabels, mand)
}

// Connected reports whether the template is connected (isolated-vertex-free
// for NumVertices > 1).
func (t *Template) Connected() bool {
	n := len(t.labels)
	if n == 0 {
		return false
	}
	seen := make([]bool, n)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		q := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, r := range t.adj[q] {
			if !seen[r] {
				seen[r] = true
				count++
				stack = append(stack, r)
			}
		}
	}
	return count == n
}

// IsTree reports whether the template is acyclic (a tree, given that it is
// connected).
func (t *Template) IsTree() bool { return len(t.edges) == len(t.labels)-1 }

// HasRepeatedLabels reports whether two template vertices share a label.
func (t *Template) HasRepeatedLabels() bool {
	seen := make(map[Label]bool, len(t.labels))
	for _, l := range t.labels {
		if seen[l] {
			return true
		}
		seen[l] = true
	}
	return false
}

// LabelMultiplicity returns, for each label, the template vertices carrying
// it (sorted).
func (t *Template) LabelMultiplicity() map[Label][]int {
	m := make(map[Label][]int)
	for q, l := range t.labels {
		m[l] = append(m[l], q)
	}
	return m
}

// LabelPairs returns the set of unordered label pairs spanned by template
// edges, as canonical [2]Label with the smaller label first. The containment
// rule (Obs. 1) retains background edges whose label pair matches a removed
// template edge.
func (t *Template) LabelPairs() map[[2]Label]bool {
	m := make(map[[2]Label]bool)
	for _, e := range t.edges {
		a, b := t.labels[e.I], t.labels[e.J]
		if a > b {
			a, b = b, a
		}
		m[[2]Label{a, b}] = true
	}
	return m
}

// String renders the template compactly, e.g. "0:1 1:2 | (0-1)(1-2)".
func (t *Template) String() string {
	var sb strings.Builder
	for q, l := range t.labels {
		if q > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%d:%d", q, l)
	}
	sb.WriteString(" |")
	for i, e := range t.edges {
		mark := ""
		if t.mandatory[i] {
			mark = "!"
		}
		fmt.Fprintf(&sb, " (%d-%d)%s", e.I, e.J, mark)
	}
	return sb.String()
}
