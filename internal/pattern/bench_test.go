package pattern

import "testing"

func BenchmarkCanonicalCodeClique(b *testing.B) {
	t6 := clique(6)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		CanonicalCode(t6)
	}
}

func BenchmarkCanonicalCodeLabeled(b *testing.B) {
	tp := MustNew([]Label{1, 2, 3, 4, 5, 6},
		[]Edge{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {0, 5}, {0, 2}, {1, 3}})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		CanonicalCode(tp)
	}
}

func BenchmarkIsomorphic(b *testing.B) {
	a := clique(6)
	c := clique(6)
	for i := 0; i < b.N; i++ {
		if !Isomorphic(a, c) {
			b.Fatal("cliques not isomorphic")
		}
	}
}

func BenchmarkSimpleCycles(b *testing.B) {
	t6 := clique(6)
	for i := 0; i < b.N; i++ {
		if len(t6.SimpleCycles()) == 0 {
			b.Fatal("no cycles")
		}
	}
}

func BenchmarkCountAutomorphisms(b *testing.B) {
	t6 := clique(6)
	for i := 0; i < b.N; i++ {
		if CountAutomorphisms(t6) != 720 {
			b.Fatal("wrong automorphism count")
		}
	}
}
