package pattern

// Cycle is a simple cycle in a template, listed as the ordered vertex
// sequence q0, q1, ..., q(L-1) with an implicit closing edge q(L-1)->q0.
// q0 is the smallest vertex index on the cycle.
type Cycle []int

// SimpleCycles enumerates every simple cycle of the template, each exactly
// once (orientation-normalized). Templates are tiny, so a DFS with the
// smallest-vertex anchoring rule is ample: a cycle is reported from its
// minimum vertex s, and only in the orientation where the second vertex is
// smaller than the last.
func (t *Template) SimpleCycles() []Cycle {
	var cycles []Cycle
	n := t.NumVertices()
	onPath := make([]bool, n)
	var path []int

	var dfs func(s, q int)
	dfs = func(s, q int) {
		onPath[q] = true
		path = append(path, q)
		for _, r := range t.adj[q] {
			if r == s {
				if len(path) >= 3 && path[1] < path[len(path)-1] {
					cycles = append(cycles, append(Cycle(nil), path...))
				}
				continue
			}
			if r < s || onPath[r] {
				continue
			}
			dfs(s, r)
		}
		path = path[:len(path)-1]
		onPath[q] = false
	}
	for s := 0; s < n; s++ {
		dfs(s, s)
	}
	return cycles
}

// HasCycle reports whether the template contains any cycle.
func (t *Template) HasCycle() bool { return !t.IsTree() }

// EdgeMonocyclic reports whether no two distinct simple cycles share an
// edge. Per the paper (Fig. 2), templates that are NOT edge-monocyclic need
// a template-driven search (TDS) constraint in addition to cycle
// constraints.
func (t *Template) EdgeMonocyclic() bool {
	cycles := t.SimpleCycles()
	use := make(map[Edge]int)
	for _, c := range cycles {
		for i := range c {
			e := normEdge(c[i], c[(i+1)%len(c)])
			use[e]++
			if use[e] > 1 {
				return false
			}
		}
	}
	return true
}

// CyclesSharingEdges returns pairs of cycle indices (into SimpleCycles's
// result) that share at least one edge; these are the cycle pairs the paper
// combines into TDS constraints (Fig. 2 top).
func CyclesSharingEdges(cycles []Cycle) [][2]int {
	edgeSets := make([]map[Edge]bool, len(cycles))
	for i, c := range cycles {
		edgeSets[i] = make(map[Edge]bool, len(c))
		for j := range c {
			edgeSets[i][normEdge(c[j], c[(j+1)%len(c)])] = true
		}
	}
	var pairs [][2]int
	for i := 0; i < len(cycles); i++ {
		for j := i + 1; j < len(cycles); j++ {
			for e := range edgeSets[i] {
				if edgeSets[j][e] {
					pairs = append(pairs, [2]int{i, j})
					break
				}
			}
		}
	}
	return pairs
}
