package dist

import (
	"context"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"approxmatch/internal/core"
	"approxmatch/internal/graph"
	"approxmatch/internal/pattern"
)

func randomGraph(rng *rand.Rand, n, m, labels int) *graph.Graph {
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		b.SetLabel(graph.VertexID(v), graph.Label(rng.Intn(labels)))
	}
	for i := 0; i < m; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			b.AddEdge(graph.VertexID(u), graph.VertexID(v))
		}
	}
	return b.Build()
}

func randomTemplate(rng *rand.Rand, maxV, labels int) *pattern.Template {
	n := 2 + rng.Intn(maxV-1)
	ls := make([]pattern.Label, n)
	for i := range ls {
		ls[i] = pattern.Label(rng.Intn(labels))
	}
	var edges []pattern.Edge
	for v := 1; v < n; v++ {
		edges = append(edges, pattern.Edge{I: rng.Intn(v), J: v})
	}
	for i := 0; i < rng.Intn(3); i++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a == b {
			continue
		}
		if a > b {
			a, b = b, a
		}
		e := pattern.Edge{I: a, J: b}
		dup := false
		for _, x := range edges {
			if x == e {
				dup = true
			}
		}
		if !dup {
			edges = append(edges, e)
		}
	}
	t, err := pattern.New(ls, edges)
	if err != nil {
		panic(err)
	}
	return t
}

func TestTraverseQuiescence(t *testing.T) {
	// A ripple: every vertex forwards a counter to its neighbors until TTL
	// expires; the traversal must terminate and process every message.
	rng := rand.New(rand.NewSource(1))
	g := randomGraph(rng, 50, 150, 2)
	e := NewEngine(g, Config{Ranks: 4, RanksPerNode: 2})
	var visits atomic.Int64
	type ripple struct{ ttl int }
	e.Traverse("test",
		func(seed func(graph.VertexID, any)) {
			seed(0, ripple{ttl: 3})
		},
		func(ctx *Ctx, target graph.VertexID, data any) {
			visits.Add(1)
			r := data.(ripple)
			if r.ttl == 0 {
				return
			}
			ctx.SendToNeighbors(target,
				func(int, graph.VertexID) bool { return true },
				func(int, graph.VertexID) any { return ripple{ttl: r.ttl - 1} })
		})
	if visits.Load() == 0 {
		t.Fatal("no visits")
	}
	// Message accounting: counted sends equal visits minus the seed.
	if got := e.Stats.Phase("test").Total(); got != visits.Load()-1 {
		t.Errorf("accounted %d messages for %d visits", got, visits.Load())
	}
}

func TestTraverseManyRounds(t *testing.T) {
	// Stress quiescence detection across many small traversals.
	rng := rand.New(rand.NewSource(2))
	g := randomGraph(rng, 30, 60, 2)
	e := NewEngine(g, Config{Ranks: 8, RanksPerNode: 4})
	for round := 0; round < 100; round++ {
		var count atomic.Int64
		e.Traverse("round",
			func(seed func(graph.VertexID, any)) {
				for v := 0; v < g.NumVertices(); v++ {
					seed(graph.VertexID(v), struct{}{})
				}
			},
			func(ctx *Ctx, target graph.VertexID, data any) {
				count.Add(1)
			})
		if count.Load() != int64(g.NumVertices()) {
			t.Fatalf("round %d: %d visits", round, count.Load())
		}
	}
}

func TestLocalityAccounting(t *testing.T) {
	g := randomGraph(rand.New(rand.NewSource(3)), 40, 100, 2)
	e := NewEngine(g, Config{Ranks: 4, RanksPerNode: 2})
	// Send one message from every vertex's owner to vertex 0's owner.
	e.Traverse("acct",
		func(seed func(graph.VertexID, any)) { seed(1, struct{}{}) },
		func(ctx *Ctx, target graph.VertexID, data any) {
			if target == 1 {
				for v := 2; v < 10; v++ {
					ctx.Send(graph.VertexID(v), struct{}{})
				}
			}
		})
	p := e.Stats.Phase("acct")
	if p.Total() != 8 {
		t.Errorf("total = %d, want 8", p.Total())
	}
	// The sum of the three classes must equal the total.
	if p.IntraRank.Load()+p.InterRank.Load()+p.InterNode.Load() != p.Total() {
		t.Error("class sums inconsistent")
	}
}

func TestDistPipelineMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 10; trial++ {
		g := randomGraph(rng, 30+rng.Intn(30), 90+rng.Intn(60), 3)
		tp := randomTemplate(rng, 4, 3)
		k := rng.Intn(3)

		cfg := core.DefaultConfig(k)
		cfg.CountMatches = true
		seq, err := core.Run(g, tp, cfg)
		if err != nil {
			t.Fatal(err)
		}

		e := NewEngine(g, Config{Ranks: 1 + rng.Intn(7), RanksPerNode: 2})
		opts := DefaultOptions(k)
		opts.CountMatches = true
		dres, err := Run(e, tp, opts)
		if err != nil {
			t.Fatal(err)
		}

		if dres.Set.Count() != seq.Set.Count() {
			t.Fatalf("trial %d: prototype sets differ", trial)
		}
		for pi := range seq.Set.Protos {
			if !dres.Solutions[pi].Verts.Equal(seq.Solutions[pi].Verts) {
				t.Errorf("trial %d proto %d: vertex sets differ (dist=%d seq=%d)",
					trial, pi, dres.Solutions[pi].Verts.Count(), seq.Solutions[pi].Verts.Count())
			}
			if !dres.Solutions[pi].Edges.Equal(seq.Solutions[pi].Edges) {
				t.Errorf("trial %d proto %d: edge sets differ", trial, pi)
			}
			if dres.Solutions[pi].MatchCount != seq.Solutions[pi].MatchCount {
				t.Errorf("trial %d proto %d: counts %d vs %d",
					trial, pi, dres.Solutions[pi].MatchCount, seq.Solutions[pi].MatchCount)
			}
		}
	}
}

func TestDistPipelineAblations(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	g := randomGraph(rng, 40, 120, 3)
	tp := pattern.MustNew([]pattern.Label{0, 1, 2, 0},
		[]pattern.Edge{{I: 0, J: 1}, {I: 1, J: 2}, {I: 2, J: 3}, {I: 0, J: 3}})
	cfg := core.DefaultConfig(2)
	seq, err := core.Run(g, tp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range []Options{
		{EditDistance: 2},
		{EditDistance: 2, WorkRecycling: true},
		{EditDistance: 2, Rebalance: true},
		{EditDistance: 2, LabelPairRefinement: true, FrequencyOrdering: true},
		DefaultOptions(2),
	} {
		e := NewEngine(g, Config{Ranks: 5, RanksPerNode: 2, DelegateThreshold: 10})
		dres, err := Run(e, tp, opts)
		if err != nil {
			t.Fatal(err)
		}
		for pi := range seq.Set.Protos {
			if !dres.Solutions[pi].Verts.Equal(seq.Solutions[pi].Verts) {
				t.Errorf("opts %+v proto %d: vertex sets differ", opts, pi)
			}
		}
	}
}

func TestDelegatesReduceRemoteMessages(t *testing.T) {
	// A hub-heavy graph: broadcasts from the hub must cost fewer remote
	// messages with delegation enabled.
	b := graph.NewBuilder(200)
	for v := 1; v < 200; v++ {
		b.AddEdge(0, graph.VertexID(v))
	}
	g := b.Build()

	run := func(threshold int) int64 {
		e := NewEngine(g, Config{Ranks: 8, RanksPerNode: 2, DelegateThreshold: threshold})
		e.Traverse("bcast",
			func(seed func(graph.VertexID, any)) { seed(0, struct{}{}) },
			func(ctx *Ctx, target graph.VertexID, data any) {
				if target == 0 {
					ctx.SendToNeighbors(target,
						func(int, graph.VertexID) bool { return true },
						func(int, graph.VertexID) any { return nil })
				}
			})
		return e.Stats.Phase("bcast").Remote()
	}
	without := run(0)
	with := run(50)
	if with >= without {
		t.Errorf("delegation did not reduce remote messages: with=%d without=%d", with, without)
	}
}

func TestBalancedOwners(t *testing.T) {
	g := randomGraph(rand.New(rand.NewSource(5)), 100, 200, 2)
	e := NewEngine(g, Config{Ranks: 4})
	active := core.NewFullState(g).VertexBits()
	owners := BalancedOwners(active, 4)
	counts := make([]int, 4)
	for _, o := range owners {
		counts[o]++
	}
	for r, c := range counts {
		if c < 20 || c > 30 {
			t.Errorf("rank %d owns %d active vertices, want ~25", r, c)
		}
	}
	e.SetOwners(owners)
	if e.Owner(0) != int(owners[0]) {
		t.Error("SetOwners not applied")
	}
}

func TestCheckpointReload(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := randomGraph(rng, 60, 150, 3)
	s := core.NewEmptyState(g)
	for v := 0; v < 30; v++ {
		s.VertexBits().Set(v)
	}
	data, orig, err := Checkpoint(g, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(orig) != 30 {
		t.Fatalf("checkpointed %d vertices", len(orig))
	}
	e, err := Reload(data, Config{Ranks: 2})
	if err != nil {
		t.Fatal(err)
	}
	if e.Graph().NumVertices() != 30 {
		t.Errorf("reloaded %d vertices", e.Graph().NumVertices())
	}
	for nv, ov := range orig {
		if e.Graph().Label(graph.VertexID(nv)) != g.Label(ov) {
			t.Errorf("label mismatch at %d", nv)
		}
	}
}

func TestParallelPrototypeSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := randomGraph(rng, 50, 150, 3)
	tp := pattern.MustNew([]pattern.Label{0, 1, 2},
		[]pattern.Edge{{I: 0, J: 1}, {I: 1, J: 2}, {I: 0, J: 2}})
	var m core.Metrics
	mcs := core.MaxCandidateSet(g, tp, &m)

	// Search the same template 6 times in parallel; results must agree
	// with the sequential search.
	templates := make([]*pattern.Template, 6)
	for i := range templates {
		templates[i] = tp
	}
	res := SearchPrototypesParallel(mcs, templates, 3, 2, nil)
	want := core.SearchOn(context.Background(), mcs, tp, nil, nil, false, 0, &m)
	for i, sol := range res.Solutions {
		if !sol.Verts.Equal(want.Verts) {
			t.Errorf("parallel search %d differs", i)
		}
	}
	if res.RankSeconds <= 0 {
		t.Error("no rank-seconds recorded")
	}
}

func TestOrderByEstimatedCost(t *testing.T) {
	cheap := pattern.MustNew([]pattern.Label{5, 6}, []pattern.Edge{{I: 0, J: 1}})
	costly := pattern.MustNew([]pattern.Label{0, 0, 0},
		[]pattern.Edge{{I: 0, J: 1}, {I: 1, J: 2}, {I: 0, J: 2}})
	freq := map[pattern.Label]int64{0: 1000, 5: 1, 6: 1}
	order := OrderByEstimatedCost([]*pattern.Template{cheap, costly}, freq)
	if order[0] != 1 {
		t.Errorf("expensive template should launch first: %v", order)
	}
}

func TestModeledTimeLocalityShape(t *testing.T) {
	// With fixed rank count, the modeled runtime should be worse at the
	// extremes (all ranks on one oversubscribed node; one rank per node,
	// all traffic on the network) than at an intermediate grouping.
	rng := rand.New(rand.NewSource(8))
	g := randomGraph(rng, 80, 240, 3)
	e := NewEngine(g, Config{Ranks: 48, RanksPerNode: 8})
	tp := randomTemplate(rng, 4, 3)
	if _, err := Run(e, tp, DefaultOptions(1)); err != nil {
		t.Fatal(err)
	}
	cm := DefaultCostModel()
	cm.CoresPerNode = 8
	oneNode := ModeledTime(e, cm, 48) // heavy oversubscription
	spread := ModeledTime(e, cm, 1)   // all remote traffic
	middle := ModeledTime(e, cm, 8)   // balanced
	if middle >= oneNode || middle >= spread {
		t.Errorf("locality curve not U-shaped: one-node=%.0f middle=%.0f spread=%.0f",
			oneNode, middle, spread)
	}
}

func TestLoadImbalanceMetric(t *testing.T) {
	g := randomGraph(rand.New(rand.NewSource(9)), 50, 100, 2)
	e := NewEngine(g, Config{Ranks: 4})
	if got := LoadImbalance(e); got != 1 {
		t.Errorf("imbalance with no work = %v, want 1", got)
	}
	e.ComputePerRank[0].Store(100)
	e.ComputePerRank[1].Store(100)
	e.ComputePerRank[2].Store(100)
	e.ComputePerRank[3].Store(100)
	if got := LoadImbalance(e); got != 1.0 {
		t.Errorf("balanced imbalance = %v", got)
	}
	e.ComputePerRank[0].Store(400)
	if got := LoadImbalance(e); got <= 1.5 {
		t.Errorf("skewed imbalance = %v", got)
	}
	ResetComputeCounters(e)
	if LoadImbalance(e) != 1 {
		t.Error("reset failed")
	}
}

func TestReplicaSetMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	g := randomGraph(rng, 50, 150, 3)
	tp := pattern.MustNew([]pattern.Label{0, 1, 2, 0},
		[]pattern.Edge{{I: 0, J: 1}, {I: 1, J: 2}, {I: 2, J: 3}, {I: 0, J: 3}})
	var m core.Metrics
	mcs := core.MaxCandidateSet(g, tp, &m)

	// Prototypes of tp at k<=1.
	seq, err := core.Run(g, tp, core.DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	var templates []*pattern.Template
	for _, p := range seq.Set.Protos {
		templates = append(templates, p.Template)
	}

	rs, err := NewReplicaSet(g, mcs, 3, Config{Ranks: 2, RanksPerNode: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Replicas() != 3 || rs.SubgraphSize() != mcs.NumActiveVertices() {
		t.Fatalf("replica shape: %d replicas, %d vertices", rs.Replicas(), rs.SubgraphSize())
	}
	opts := Options{CountMatches: true}
	sols := rs.Search(templates, nil, opts)
	for i := range templates {
		want := core.SearchOn(context.Background(), mcs, templates[i], nil, nil, true, 0, &m)
		if !sols[i].Verts.Equal(want.Verts) {
			t.Errorf("template %d: vertex sets differ (replica=%d want=%d)",
				i, sols[i].Verts.Count(), want.Verts.Count())
		}
		if !sols[i].Edges.Equal(want.Edges) {
			t.Errorf("template %d: edge sets differ", i)
		}
		if sols[i].MatchCount != want.MatchCount {
			t.Errorf("template %d: counts %d vs %d", i, sols[i].MatchCount, want.MatchCount)
		}
	}
}

func TestReplicaSlotOwner(t *testing.T) {
	g := randomGraph(rand.New(rand.NewSource(82)), 30, 80, 2)
	for v := 0; v < g.NumVertices(); v++ {
		base := int(g.AdjOffset(graph.VertexID(v)))
		for i := range g.Neighbors(graph.VertexID(v)) {
			if got := replicaSlotOwner(g, base+i); got != graph.VertexID(v) {
				t.Fatalf("slot %d: owner %d, want %d", base+i, got, v)
			}
		}
	}
}

func TestDistEdgeLabeledMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(94))
	for trial := 0; trial < 5; trial++ {
		b := graph.NewBuilder(30)
		for v := 0; v < 30; v++ {
			b.SetLabel(graph.VertexID(v), graph.Label(rng.Intn(3)))
		}
		for i := 0; i < 90; i++ {
			u, v := rng.Intn(30), rng.Intn(30)
			if u != v {
				b.AddEdgeLabeled(graph.VertexID(u), graph.VertexID(v), graph.Label(rng.Intn(2)))
			}
		}
		g := b.Build()
		tp, err := pattern.NewEdgeLabeled(
			[]pattern.Label{0, 1, 2},
			[]pattern.Edge{{I: 0, J: 1}, {I: 1, J: 2}, {I: 0, J: 2}},
			[]pattern.Label{1, pattern.Wildcard, 0}, nil)
		if err != nil {
			t.Fatal(err)
		}
		cfg := core.DefaultConfig(1)
		cfg.CountMatches = true
		seq, err := core.Run(g, tp, cfg)
		if err != nil {
			t.Fatal(err)
		}
		e := NewEngine(g, Config{Ranks: 4, RanksPerNode: 2})
		opts := DefaultOptions(1)
		opts.CountMatches = true
		dres, err := Run(e, tp, opts)
		if err != nil {
			t.Fatal(err)
		}
		for pi := range seq.Set.Protos {
			if !dres.Solutions[pi].Verts.Equal(seq.Solutions[pi].Verts) {
				t.Errorf("trial %d proto %d: vertex sets differ", trial, pi)
			}
			if dres.Solutions[pi].MatchCount != seq.Solutions[pi].MatchCount {
				t.Errorf("trial %d proto %d: counts differ", trial, pi)
			}
		}
	}
}

func TestCountMatchesDistAgainstSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(95))
	for trial := 0; trial < 8; trial++ {
		g := randomGraph(rng, 30, 90, 3)
		tp := randomTemplate(rng, 4, 3)
		e := NewEngine(g, Config{Ranks: 1 + rng.Intn(6), RanksPerNode: 2})
		s := core.NewFullState(g)
		var m core.Metrics
		want := core.CountOn(context.Background(), s, tp, &m)
		if got := CountMatchesDist(e, s, tp); got != want {
			t.Errorf("trial %d: dist count %d, want %d (template %v)", trial, got, want, tp)
		}
	}
}

func TestCountMatchesDistOnSolutionSubgraph(t *testing.T) {
	rng := rand.New(rand.NewSource(96))
	g := randomGraph(rng, 40, 120, 3)
	tp := pattern.MustNew([]pattern.Label{0, 1, 2},
		[]pattern.Edge{{I: 0, J: 1}, {I: 1, J: 2}, {I: 0, J: 2}})
	cfg := core.DefaultConfig(1)
	cfg.CountMatches = true
	res, err := core.Run(g, tp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(g, Config{Ranks: 4, RanksPerNode: 2})
	for pi := range res.Set.Protos {
		s := res.SolutionState(pi)
		got := CountMatchesDist(e, s, res.Set.Protos[pi].Template)
		if got != res.Solutions[pi].MatchCount {
			t.Errorf("proto %d: dist count %d, want %d", pi, got, res.Solutions[pi].MatchCount)
		}
	}
	if e.Stats.Phase("enumerate").Total() == 0 {
		t.Error("no enumeration messages recorded")
	}
}

func TestCountMatchesDistSingleVertex(t *testing.T) {
	g := randomGraph(rand.New(rand.NewSource(97)), 20, 40, 2)
	tp := pattern.MustNew([]pattern.Label{1}, nil)
	e := NewEngine(g, Config{Ranks: 3})
	s := core.NewFullState(g)
	var want int64
	for v := 0; v < g.NumVertices(); v++ {
		if g.Label(graph.VertexID(v)) == 1 {
			want++
		}
	}
	if got := CountMatchesDist(e, s, tp); got != want {
		t.Errorf("single-vertex count %d, want %d", got, want)
	}
}

func TestShrinkToRanks(t *testing.T) {
	rng := rand.New(rand.NewSource(98))
	g := randomGraph(rng, 40, 120, 3)
	tp := pattern.MustNew([]pattern.Label{0, 1, 2},
		[]pattern.Edge{{I: 0, J: 1}, {I: 1, J: 2}, {I: 0, J: 2}})
	full, err := core.Run(g, tp, core.DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(g, Config{Ranks: 8, RanksPerNode: 4})
	opts := DefaultOptions(1)
	opts.ShrinkToRanks = 2
	dres, err := Run(e, tp, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Results unchanged.
	for pi := range full.Set.Protos {
		if !dres.Solutions[pi].Verts.Equal(full.Solutions[pi].Verts) {
			t.Errorf("proto %d: shrink changed the result", pi)
		}
	}
	// After the shrink, all active vertices are owned by ranks 0..1.
	dres.Candidate.VertexBits().ForEach(func(v int) {
		if e.Owner(graph.VertexID(v)) >= 2 {
			t.Errorf("active vertex %d owned by rank %d after shrink", v, e.Owner(graph.VertexID(v)))
		}
	})
}

func TestDistTopDownMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	for trial := 0; trial < 5; trial++ {
		g := randomGraph(rng, 30, 70, 3)
		tp := randomTemplate(rng, 4, 3)
		seq, err := core.RunTopDown(g, tp, core.DefaultConfig(2))
		if err != nil {
			t.Fatal(err)
		}
		e := NewEngine(g, Config{Ranks: 4, RanksPerNode: 2})
		dres, err := RunTopDown(e, tp, DefaultOptions(2))
		if err != nil {
			t.Fatal(err)
		}
		if dres.FoundDist != seq.FoundDist {
			t.Errorf("trial %d: found at %d, sequential at %d", trial, dres.FoundDist, seq.FoundDist)
		}
		if seq.FoundDist >= 0 && !dres.MatchingVertices.Equal(seq.MatchingVertices) {
			t.Errorf("trial %d: matching vertex sets differ", trial)
		}
	}
}

func TestPartitionStrategies(t *testing.T) {
	g := randomGraph(rand.New(rand.NewSource(104)), 100, 200, 2)
	block := NewEngine(g, Config{Ranks: 4})
	hash := NewEngine(g, Config{Ranks: 4, Partition: PartitionHash})
	// Block: contiguous ranges — owner non-decreasing in vertex id.
	for v := 1; v < g.NumVertices(); v++ {
		if block.Owner(graph.VertexID(v)) < block.Owner(graph.VertexID(v-1)) {
			t.Fatalf("block partition not monotone at %d", v)
		}
	}
	// Hash: scattered — some adjacent-id pair must differ in owner.
	scattered := false
	for v := 1; v < g.NumVertices(); v++ {
		if hash.Owner(graph.VertexID(v)) != hash.Owner(graph.VertexID(v-1)) {
			scattered = true
			break
		}
	}
	if !scattered {
		t.Error("hash partition looks contiguous")
	}
	// Both give identical pipeline results.
	tp := pattern.MustNew([]pattern.Label{0, 1}, []pattern.Edge{{I: 0, J: 1}})
	r1, err := Run(block, tp, DefaultOptions(0))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(hash, tp, DefaultOptions(0))
	if err != nil {
		t.Fatal(err)
	}
	if !r1.Solutions[0].Verts.Equal(r2.Solutions[0].Verts) {
		t.Error("partition strategy changed results")
	}
}

func TestSimulatedLatencyExposure(t *testing.T) {
	g := randomGraph(rand.New(rand.NewSource(111)), 40, 120, 3)
	tp := pattern.MustNew([]pattern.Label{0, 1}, []pattern.Edge{{I: 0, J: 1}})
	run := func(cfg Config) time.Duration {
		e := NewEngine(g, cfg)
		start := time.Now()
		if _, err := Run(e, tp, DefaultOptions(0)); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	fast := run(Config{Ranks: 4, RanksPerNode: 2})
	slow := run(Config{Ranks: 4, RanksPerNode: 2, InterNodeDelay: 200 * time.Microsecond, InterRankDelay: 20 * time.Microsecond})
	if slow <= fast {
		t.Errorf("latency simulation had no effect: fast=%v slow=%v", fast, slow)
	}
	// Results unchanged under latency.
	e1 := NewEngine(g, Config{Ranks: 4, RanksPerNode: 2})
	r1, err := Run(e1, tp, DefaultOptions(0))
	if err != nil {
		t.Fatal(err)
	}
	e2 := NewEngine(g, Config{Ranks: 4, RanksPerNode: 2, InterNodeDelay: 50 * time.Microsecond})
	r2, err := Run(e2, tp, DefaultOptions(0))
	if err != nil {
		t.Fatal(err)
	}
	if !r1.Solutions[0].Verts.Equal(r2.Solutions[0].Verts) {
		t.Error("latency changed results")
	}
}

// TestDistCompactionDifferential checks compaction invisibility through the
// distributed path: compaction off, the default threshold, and compaction
// forced at every level and gather must all match the sequential engine's
// compaction-off results bit for bit.
func TestDistCompactionDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 6; trial++ {
		g := randomGraph(rng, 30+rng.Intn(30), 90+rng.Intn(60), 3)
		tp := randomTemplate(rng, 4, 3)
		k := 1 + rng.Intn(2)

		cfg := core.DefaultConfig(k)
		cfg.CountMatches = true
		cfg.CompactBelow = 0
		seq, err := core.Run(g, tp, cfg)
		if err != nil {
			t.Fatal(err)
		}

		for _, threshold := range []float64{0, 0.5, 1.1} {
			e := NewEngine(g, Config{Ranks: 1 + rng.Intn(7), RanksPerNode: 2})
			opts := DefaultOptions(k)
			opts.CountMatches = true
			opts.CompactBelow = threshold
			dres, err := Run(e, tp, opts)
			if err != nil {
				t.Fatal(err)
			}
			if threshold > 1 && dres.VerifyMetrics.Compactions == 0 {
				t.Errorf("trial %d: forced compaction never fired", trial)
			}
			for pi := range seq.Set.Protos {
				if !dres.Solutions[pi].Verts.Equal(seq.Solutions[pi].Verts) {
					t.Errorf("trial %d threshold %v proto %d: vertex sets differ",
						trial, threshold, pi)
				}
				if !dres.Solutions[pi].Edges.Equal(seq.Solutions[pi].Edges) {
					t.Errorf("trial %d threshold %v proto %d: edge sets differ",
						trial, threshold, pi)
				}
				if dres.Solutions[pi].MatchCount != seq.Solutions[pi].MatchCount {
					t.Errorf("trial %d threshold %v proto %d: counts %d vs %d",
						trial, threshold, pi, dres.Solutions[pi].MatchCount, seq.Solutions[pi].MatchCount)
				}
			}
		}
	}
}

// TestBalancedOwnersViewMatchesBitvec pins the repartitioning equivalence:
// owners computed from a compacted view must equal owners computed from the
// original active bit vector, for every rank count.
func TestBalancedOwnersViewMatchesBitvec(t *testing.T) {
	rng := rand.New(rand.NewSource(48))
	g := randomGraph(rng, 80, 200, 3)
	s := core.NewFullState(g)
	for v := 0; v < 80; v++ {
		if rng.Intn(3) != 0 {
			s.DeactivateVertex(graph.VertexID(v))
		}
	}
	var m core.Metrics
	cs := core.CompactState(s, 1.1, &m)
	if cs.View() == nil {
		t.Fatal("compaction did not fire")
	}
	for _, ranks := range []int{1, 2, 5} {
		want := BalancedOwners(s.VertexBits(), ranks)
		got := BalancedOwnersView(cs.View(), ranks)
		if len(want) != len(got) {
			t.Fatalf("ranks %d: length %d vs %d", ranks, len(got), len(want))
		}
		for v := range want {
			if want[v] != got[v] {
				t.Fatalf("ranks %d vertex %d: owner %d vs %d", ranks, v, got[v], want[v])
			}
		}
	}
}

// TestDistSharedCacheMatchesSequential runs the distributed pipeline twice
// against one caller-owned shared NLCC store (Options.SharedCache): both the
// cold and the warm run must stay bit-identical to the sequential engine,
// and the warm run must actually recycle verdicts recorded by the cold one.
func TestDistSharedCacheMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	g := randomGraph(rng, 40, 120, 3)
	tp := pattern.MustNew([]pattern.Label{0, 1, 2, 0},
		[]pattern.Edge{{I: 0, J: 1}, {I: 1, J: 2}, {I: 2, J: 3}, {I: 0, J: 3}})
	cfg := core.DefaultConfig(2)
	cfg.CountMatches = true
	seq, err := core.Run(g, tp, cfg)
	if err != nil {
		t.Fatal(err)
	}

	shared := core.NewCacheBytes(g.NumVertices(), 0)
	opts := DefaultOptions(2)
	opts.CountMatches = true
	opts.SharedCache = shared
	for round := 0; round < 2; round++ {
		e := NewEngine(g, Config{Ranks: 4, RanksPerNode: 2})
		dres, err := Run(e, tp, opts)
		if err != nil {
			t.Fatal(err)
		}
		for pi := range seq.Set.Protos {
			if !dres.Solutions[pi].Verts.Equal(seq.Solutions[pi].Verts) {
				t.Errorf("round %d proto %d: vertex sets differ", round, pi)
			}
			if dres.Solutions[pi].MatchCount != seq.Solutions[pi].MatchCount {
				t.Errorf("round %d proto %d: counts %d vs %d",
					round, pi, dres.Solutions[pi].MatchCount, seq.Solutions[pi].MatchCount)
			}
		}
		if round == 0 {
			if shared.Sets() == 0 {
				t.Fatal("cold distributed run recorded nothing in the shared store")
			}
		} else if shared.Hits() == 0 {
			t.Fatal("warm distributed run recycled nothing from the shared store")
		}
	}
}
