package dist

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// TCPOptions opts an engine's fault-tolerant traversals onto real loopback
// TCP sockets: every cross-rank envelope is encoded through the wire codec
// (wire.go), written to the destination rank's socket, and decoded by a
// reader goroutine on the far side. Ranks remain goroutines of one process
// — what changes is that their traffic crosses the kernel's TCP stack,
// with real stream framing, real connection failures, and (optionally) an
// injected socket-fault schedule. A non-nil TCP implies the fault-tolerant
// path even with no message faults configured: a socket can genuinely lose
// frames (a torn-down connection discards everything in flight), so the
// ack/retransmit machinery is not optional there.
type TCPOptions struct {
	// SocketFaults injects socket-level faults (nil = clean sockets).
	SocketFaults *SocketFaults
}

// SocketFaults is the socket-level fault schedule, seeded and deterministic
// per transmission like the message-level Faults plane: each frame's fate
// is a pure function of (seed, connection pair, frame ordinal). All three
// fault classes are recoverable by the existing retransmit machinery — a
// torn connection is redialed lazily on the next send.
type SocketFaults struct {
	// Seed drives the deterministic socket-fault schedule.
	Seed int64
	// ConnDrop is the per-frame probability that the connection is torn
	// down instead of carrying the frame (the frame is lost).
	ConnDrop float64
	// PartialWrite is the per-frame probability that the frame is cut
	// mid-write and the connection torn down — the reader sees a truncated
	// frame and discards the connection, resynchronizing at a frame
	// boundary on the redialed one.
	PartialWrite float64
	// Delay is the per-frame probability of an injected write delay,
	// hash-scaled within (0, MaxDelay].
	Delay float64
	// MaxDelay bounds the injected write delay (default 500µs).
	MaxDelay time.Duration
}

func (sf *SocketFaults) maxDelay() time.Duration {
	if sf.MaxDelay <= 0 {
		return 500 * time.Microsecond
	}
	return sf.MaxDelay
}

// tcpNet is an engine's socket fabric: one loopback listener per rank,
// lazily dialed per-(src, dst) connections on the send side, and reader
// goroutines that decode frames into the currently attached traversal's
// mailboxes. It lives for the engine's lifetime (traversals attach and
// detach); Engine.Close tears it down.
type tcpNet struct {
	e     *Engine
	sf    *SocketFaults
	lns   []net.Listener
	addrs []string
	// cur is the traversal currently attached to the fabric. Readers drop
	// frames when no traversal is attached or the frame's generation is
	// stale — sockets outlive traversal attempts, so frames from a
	// finished or crashed attempt are expected traffic.
	cur    atomic.Pointer[traversal]
	mu     sync.Mutex
	conns  map[[2]int]*rankConn
	closed atomic.Bool
	wg     sync.WaitGroup
}

// rankConn is the sender half of one (src, dst) rank pair. The mutex
// serializes frame writes (a frame interleaved with another frame is
// stream corruption, not a fault) and the frame ordinal feeds the
// deterministic socket-fault schedule.
type rankConn struct {
	mu     sync.Mutex
	c      net.Conn
	frames uint64
}

func newTCPNet(e *Engine) (*tcpNet, error) {
	n := &tcpNet{
		e:     e,
		sf:    e.cfg.TCP.SocketFaults,
		lns:   make([]net.Listener, e.cfg.Ranks),
		addrs: make([]string, e.cfg.Ranks),
		conns: make(map[[2]int]*rankConn),
	}
	for r := 0; r < e.cfg.Ranks; r++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			n.close()
			return nil, fmt.Errorf("dist: rank %d listener: %w", r, err)
		}
		n.lns[r] = ln
		n.addrs[r] = ln.Addr().String()
	}
	for r := 0; r < e.cfg.Ranks; r++ {
		n.wg.Add(1)
		go n.acceptLoop(r, n.lns[r])
	}
	return n, nil
}

func (n *tcpNet) acceptLoop(rank int, ln net.Listener) {
	defer n.wg.Done()
	for {
		c, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			n.reader(rank, c)
		}()
	}
}

// reader decodes frames off one inbound connection into rank's mailbox of
// the attached traversal. Any decode failure kills the connection: after a
// partial write the stream has no recoverable frame boundary, so the only
// safe resynchronization point is a fresh connection — the sender redials
// and the retransmit pump re-sends whatever was lost.
func (n *tcpNet) reader(rank int, c net.Conn) {
	defer c.Close()
	br := bufio.NewReader(c)
	for {
		class, body, err := readFrame(br)
		if err != nil {
			return
		}
		if class != frameEnvelope {
			return
		}
		t := n.cur.Load()
		if t == nil {
			continue
		}
		env, err := decodeEnvelope(body, t.ws, t.gen)
		if err != nil {
			if errors.Is(err, errStaleGen) {
				n.e.Stats.Faults.SockStaleFrames.Add(1)
				continue
			}
			return
		}
		t.push(rank, env)
	}
}

// send frames env and writes it to dst's socket, applying the injected
// socket-fault schedule. A lost frame (torn connection, failed write) is
// simply dropped here: the sender's retransmit pump owns recovery, exactly
// as it does for message-level drops.
func (n *tcpNet) send(src, dst int, env envelope, t *traversal) {
	body, err := encodeEnvelope(nil, env, t.gen)
	if err != nil {
		// Payload types without a codec cannot cross a socket; reaching
		// this is a programming error, not a runtime condition.
		panic(err)
	}
	frame := appendFrame(make([]byte, 0, len(body)+frameHeaderLen+4), frameEnvelope, body)

	rc := n.rankConn(src, dst)
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if n.closed.Load() {
		return
	}
	fs := &n.e.Stats.Faults
	if rc.c == nil {
		c, err := net.DialTimeout("tcp", n.addrs[dst], 2*time.Second)
		if err != nil {
			fs.SockWriteErrors.Add(1)
			return
		}
		rc.c = c
		fs.SockDials.Add(1)
	}
	rc.frames++
	if sf := n.sf; sf != nil {
		// One fault roll per frame, keyed by the connection pair and the
		// frame ordinal — deterministic per identity, like faultHash's
		// message schedule (the pair is folded into the src lane; ranks
		// never approach the 1<<20 fold base).
		h := faultHash(sf.Seed, "sock", src<<20|dst, rc.frames, 1)
		switch {
		case roll(h, 0) < sf.ConnDrop:
			fs.SockConnDrops.Add(1)
			rc.c.Close()
			rc.c = nil
			return
		case roll(h, 1) < sf.PartialWrite && len(frame) > 1:
			fs.SockPartialWrites.Add(1)
			cut := 1 + int((h>>32)%uint64(len(frame)-1))
			rc.c.Write(frame[:cut]) //nolint:errcheck // the conn is being torn down
			rc.c.Close()
			rc.c = nil
			return
		case roll(h, 2) < sf.Delay:
			fs.SockDelays.Add(1)
			frac := (float64((h>>48)&0xffff) + 1) / 65536.0
			time.Sleep(time.Duration(frac * float64(sf.maxDelay())))
		}
	}
	if _, err := rc.c.Write(frame); err != nil {
		fs.SockWriteErrors.Add(1)
		rc.c.Close()
		rc.c = nil
		return
	}
	fs.SockFrames.Add(1)
	fs.SockBytes.Add(int64(len(frame)))
}

func (n *tcpNet) rankConn(src, dst int) *rankConn {
	key := [2]int{src, dst}
	n.mu.Lock()
	defer n.mu.Unlock()
	rc, ok := n.conns[key]
	if !ok {
		rc = &rankConn{}
		n.conns[key] = rc
	}
	return rc
}

// close tears down listeners and connections and waits for every reader to
// exit. Idempotent.
func (n *tcpNet) close() {
	if !n.closed.CompareAndSwap(false, true) {
		return
	}
	for _, ln := range n.lns {
		if ln != nil {
			ln.Close()
		}
	}
	n.mu.Lock()
	for _, rc := range n.conns {
		rc.mu.Lock()
		if rc.c != nil {
			rc.c.Close()
			rc.c = nil
		}
		rc.mu.Unlock()
	}
	n.mu.Unlock()
	n.wg.Wait()
}

// tcpSink is the socket delivery surface under the fault plane: intra-rank
// traffic stays an in-process mailbox append (it cannot be lost, mirroring
// a real deployment), cross-rank traffic is framed onto the wire.
type tcpSink struct {
	n *tcpNet
	t *traversal
}

func (s tcpSink) emit(src, dst int, env envelope) {
	if src == dst {
		s.t.push(dst, env)
		return
	}
	s.n.send(src, dst, env, s.t)
}

// emitAt degrades to a plain send on the socket path: a sender cannot
// splice into a remote mailbox. The chaos transport never routes remote
// reorders here (it parks them instead — see deliver), so this only
// matters for defensive completeness.
func (s tcpSink) emitAt(src, dst int, env envelope, _ int) {
	s.emit(src, dst, env)
}
