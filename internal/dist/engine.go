// Package dist is the distributed runtime: an in-process reimplementation
// of the HavoqGT abstractions the paper's system is built on (§4) — a
// partitioned graph spread over P ranks, asynchronous vertex-centric
// visitor delivery (do_traversal / push), distributed quiescence detection,
// delegate handling for high-degree vertices, message accounting
// (intra-rank / inter-rank / inter-node), checkpoint-based load rebalancing
// and parallel prototype search on replicated candidate sets.
//
// Ranks are goroutines and messages are in-memory queue entries, so the
// engine reproduces the paper's distributed-execution *structure* (who
// sends how many messages where, how work balances across ranks) rather
// than wire-level transport. Per-vertex state arrays are only ever written
// by the owning rank, mirroring MPI ownership discipline.
package dist

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"approxmatch/internal/graph"
)

// Partition selects the initial vertex-to-rank assignment strategy.
type Partition int

const (
	// PartitionBlock assigns contiguous vertex-id ranges per rank — the
	// ingestion-order default, which preserves the id-space locality real
	// graphs have (and therefore the load imbalance the paper's
	// rebalancing addresses).
	PartitionBlock Partition = iota
	// PartitionHash scatters vertices pseudo-randomly, trading locality
	// for static balance.
	PartitionHash
)

// Config shapes the simulated deployment.
type Config struct {
	// Ranks is the number of MPI-process stand-ins (goroutines).
	Ranks int
	// RanksPerNode groups ranks into compute nodes for message locality
	// accounting (the paper runs 36 ranks per node; Fig. 12 varies this).
	RanksPerNode int
	// DelegateThreshold marks vertices with degree >= threshold as
	// delegates whose neighbor broadcasts use one remote message per
	// destination rank instead of one per neighbor (HavoqGT's delegate
	// partitioned graph). 0 disables delegation.
	DelegateThreshold int
	// Partition selects the initial assignment (block by default).
	Partition Partition
	// InterRankDelay and InterNodeDelay, when set, are slept by the
	// receiving rank before processing a message of that locality class —
	// a measured (not modeled) simulation of shared-memory vs network
	// transfer latency. Rank goroutines sleep concurrently, so wall time
	// reflects each rank's exposed communication latency the way the
	// paper's asynchronous runtime would.
	InterRankDelay time.Duration
	InterNodeDelay time.Duration
}

// DefaultConfig returns a small deployment: 4 ranks, 2 per node.
func DefaultConfig() Config { return Config{Ranks: 4, RanksPerNode: 2} }

func (c Config) normalized() Config {
	if c.Ranks <= 0 {
		c.Ranks = 1
	}
	if c.RanksPerNode <= 0 {
		c.RanksPerNode = c.Ranks
	}
	return c
}

// Nodes returns the number of simulated compute nodes.
func (c Config) Nodes() int {
	c = c.normalized()
	return (c.Ranks + c.RanksPerNode - 1) / c.RanksPerNode
}

// PhaseStats counts messages by locality class within one phase.
type PhaseStats struct {
	// IntraRank messages stay on the sending rank.
	IntraRank atomic.Int64
	// InterRank messages cross ranks within one node (shared memory in a
	// real deployment).
	InterRank atomic.Int64
	// InterNode messages cross node boundaries (the network).
	InterNode atomic.Int64
}

// Total returns all messages in the phase.
func (p *PhaseStats) Total() int64 {
	return p.IntraRank.Load() + p.InterRank.Load() + p.InterNode.Load()
}

// Remote returns messages leaving the sending rank (the paper's "remote"
// in the §5.7 message table).
func (p *PhaseStats) Remote() int64 { return p.InterRank.Load() + p.InterNode.Load() }

// MessageStats aggregates per-phase message counters.
type MessageStats struct {
	mu     sync.Mutex
	phases map[string]*PhaseStats
}

// Phase returns (creating if needed) the counter for a phase name.
func (m *MessageStats) Phase(name string) *PhaseStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.phases == nil {
		m.phases = make(map[string]*PhaseStats)
	}
	p, ok := m.phases[name]
	if !ok {
		p = &PhaseStats{}
		m.phases[name] = p
	}
	return p
}

// Phases returns the phase names recorded so far.
func (m *MessageStats) Phases() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.phases))
	for name := range m.phases {
		out = append(out, name)
	}
	return out
}

// Total sums messages across phases.
func (m *MessageStats) Total() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var t int64
	for _, p := range m.phases {
		t += p.Total()
	}
	return t
}

// Remote sums remote (off-rank) messages across phases.
func (m *MessageStats) Remote() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var t int64
	for _, p := range m.phases {
		t += p.Remote()
	}
	return t
}

// InterNodeTotal sums inter-node messages across phases.
func (m *MessageStats) InterNodeTotal() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var t int64
	for _, p := range m.phases {
		t += p.InterNode.Load()
	}
	return t
}

// Engine is one deployment over a background graph.
type Engine struct {
	g     *graph.Graph
	cfg   Config
	owner []int32 // vertex -> rank
	// delegate marks high-degree vertices whose broadcasts use the
	// delegate fan-out.
	delegate []bool
	// Stats records message counters across all traversals.
	Stats MessageStats
	// ComputePerRank counts visitor executions per rank, the load-balance
	// signal (Fig. 9a).
	ComputePerRank []atomic.Int64
}

// NewEngine partitions g over the configured ranks with block (contiguous
// vertex-id range) partitioning — the common ingestion-order default. Real
// graphs have heavy id-space locality (webgraphs are crawled domain by
// domain), which is exactly why the paper's reshuffle-based load balancing
// matters; SetOwners/BalancedOwners install a balanced assignment.
func NewEngine(g *graph.Graph, cfg Config) *Engine {
	cfg = cfg.normalized()
	e := &Engine{
		g:              g,
		cfg:            cfg,
		owner:          make([]int32, g.NumVertices()),
		delegate:       make([]bool, g.NumVertices()),
		ComputePerRank: make([]atomic.Int64, cfg.Ranks),
	}
	n := g.NumVertices()
	for v := 0; v < n; v++ {
		switch cfg.Partition {
		case PartitionHash:
			e.owner[v] = int32(hashVertex(graph.VertexID(v)) % uint32(cfg.Ranks))
		default:
			if n > 0 {
				e.owner[v] = int32(v * cfg.Ranks / n)
			}
		}
		if cfg.DelegateThreshold > 0 && g.Degree(graph.VertexID(v)) >= cfg.DelegateThreshold {
			e.delegate[v] = true
		}
	}
	return e
}

// hashVertex is a Fibonacci-style mixer giving a stable pseudo-random rank
// assignment.
func hashVertex(v graph.VertexID) uint32 {
	x := uint32(v) * 2654435761
	x ^= x >> 16
	return x
}

// Graph returns the underlying background graph.
func (e *Engine) Graph() *graph.Graph { return e.g }

// Cfg returns the deployment configuration.
func (e *Engine) Cfg() Config { return e.cfg }

// Owner returns the rank owning vertex v.
func (e *Engine) Owner(v graph.VertexID) int { return int(e.owner[v]) }

// IsDelegate reports whether v uses delegate fan-out.
func (e *Engine) IsDelegate(v graph.VertexID) bool { return e.delegate[v] }

// nodeOf returns the simulated node of a rank.
func (e *Engine) nodeOf(rank int) int { return rank / e.cfg.RanksPerNode }

// SetOwners replaces the vertex-to-rank assignment (load rebalancing).
func (e *Engine) SetOwners(owner []int32) {
	if len(owner) != len(e.owner) {
		panic(fmt.Sprintf("dist: owner slice length %d, want %d", len(owner), len(e.owner)))
	}
	copy(e.owner, owner)
}

// Owners returns a copy of the current assignment.
func (e *Engine) Owners() []int32 {
	return append([]int32(nil), e.owner...)
}

// locality classes for message deliveries.
const (
	classIntraRank = iota
	classInterRank
	classInterNode
)

// message is one visitor delivery.
type message struct {
	target graph.VertexID
	data   any
	class  uint8
}

// mailbox is one rank's visitor queue.
type mailbox struct {
	mu   sync.Mutex
	cond *sync.Cond
	q    []message
}

// traversal carries the live state of one Traverse call.
type traversal struct {
	e       *Engine
	phase   *PhaseStats
	boxes   []*mailbox
	pending atomic.Int64
}

// Ctx is handed to visit callbacks: it attributes sends to the executing
// rank and exposes delegate-aware neighbor broadcast.
type Ctx struct {
	t    *traversal
	Rank int
}

// enqueue appends a message to the owner's mailbox (no accounting).
func (t *traversal) enqueue(target graph.VertexID, data any) {
	t.enqueueClass(target, data, classIntraRank)
}

func (t *traversal) enqueueClass(target graph.VertexID, data any, class uint8) {
	t.pending.Add(1)
	b := t.boxes[t.e.owner[target]]
	b.mu.Lock()
	b.q = append(b.q, message{target, data, class})
	b.mu.Unlock()
	b.cond.Signal()
}

// account records one message from rank `from` to rank `to` and returns
// its locality class.
func (t *traversal) account(from, to int) uint8 {
	switch {
	case from == to:
		t.phase.IntraRank.Add(1)
		return classIntraRank
	case t.e.nodeOf(from) == t.e.nodeOf(to):
		t.phase.InterRank.Add(1)
		return classInterRank
	default:
		t.phase.InterNode.Add(1)
		return classInterNode
	}
}

// Send delivers a visitor to target's owner, counted from the current rank.
func (c *Ctx) Send(target graph.VertexID, data any) {
	class := c.t.account(c.Rank, int(c.t.e.owner[target]))
	c.t.enqueueClass(target, data, class)
}

// SendToNeighbors delivers mk(i, w) to every neighbor w of v accepted by
// filter. For delegate vertices the broadcast costs one remote message per
// destination rank (HavoqGT's delegate broadcast tree) plus local fan-out;
// for regular vertices it costs one message per neighbor.
func (c *Ctx) SendToNeighbors(v graph.VertexID, filter func(i int, w graph.VertexID) bool, mk func(i int, w graph.VertexID) any) {
	t := c.t
	if !t.e.delegate[v] {
		for i, w := range t.e.g.Neighbors(v) {
			if filter(i, w) {
				c.Send(w, mk(i, w))
			}
		}
		return
	}
	touched := make(map[int]bool)
	for i, w := range t.e.g.Neighbors(v) {
		if !filter(i, w) {
			continue
		}
		dst := int(t.e.owner[w])
		if dst != c.Rank && !touched[dst] {
			touched[dst] = true
			t.account(c.Rank, dst) // one hop on the broadcast tree
		}
		t.phase.IntraRank.Add(1) // local fan-out at the destination
		t.enqueueClass(w, mk(i, w), classIntraRank)
	}
}

// Traverse runs one asynchronous traversal: init seeds visitors (uncounted
// local creations — HavoqGT's do_traversal), then every rank processes its
// mailbox, with visits allowed to push further visitors, until distributed
// quiescence (no queued or in-flight visitors remain). phaseName selects
// the message counter bucket.
func (e *Engine) Traverse(phaseName string, init func(seed func(target graph.VertexID, data any)), visit func(ctx *Ctx, target graph.VertexID, data any)) {
	t := &traversal{
		e:     e,
		phase: e.Stats.Phase(phaseName),
		boxes: make([]*mailbox, e.cfg.Ranks),
	}
	for i := range t.boxes {
		t.boxes[i] = &mailbox{}
		t.boxes[i].cond = sync.NewCond(&t.boxes[i].mu)
	}

	init(t.enqueue)
	if t.pending.Load() == 0 {
		return
	}

	var wg sync.WaitGroup
	for rank := 0; rank < e.cfg.Ranks; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			ctx := &Ctx{t: t, Rank: rank}
			b := t.boxes[rank]
			// Latency debt is accumulated per rank and slept in batches:
			// sub-millisecond sleeps are quantized by the OS scheduler, so
			// batching keeps the injected totals accurate.
			var latencyDebt time.Duration
			for {
				b.mu.Lock()
				for len(b.q) == 0 && t.pending.Load() > 0 {
					b.cond.Wait()
				}
				if len(b.q) == 0 {
					b.mu.Unlock()
					return
				}
				msg := b.q[0]
				b.q = b.q[1:]
				b.mu.Unlock()

				switch msg.class {
				case classInterRank:
					latencyDebt += e.cfg.InterRankDelay
				case classInterNode:
					latencyDebt += e.cfg.InterNodeDelay
				}
				if latencyDebt >= time.Millisecond {
					time.Sleep(latencyDebt)
					latencyDebt = 0
				}
				e.ComputePerRank[rank].Add(1)
				visit(ctx, msg.target, msg.data)
				if t.pending.Add(-1) == 0 {
					// Quiescence: wake every rank so idle workers observe
					// pending == 0 and exit. Broadcasting under each box's
					// lock closes the check-then-wait window.
					for _, other := range t.boxes {
						other.mu.Lock()
						other.cond.Broadcast()
						other.mu.Unlock()
					}
				}
			}
		}(rank)
	}
	wg.Wait()
}

// ParallelRanks runs fn(rank) concurrently on every rank and waits — the
// compute-only barrier phases between traversals (local re-evaluation in
// LCC, initiator elimination in NLCC).
func (e *Engine) ParallelRanks(fn func(rank int)) {
	var wg sync.WaitGroup
	for rank := 0; rank < e.cfg.Ranks; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			fn(rank)
		}(rank)
	}
	wg.Wait()
}
