// Package dist is the distributed runtime: an in-process reimplementation
// of the HavoqGT abstractions the paper's system is built on (§4) — a
// partitioned graph spread over P ranks, asynchronous vertex-centric
// visitor delivery (do_traversal / push), distributed quiescence detection,
// delegate handling for high-degree vertices, message accounting
// (intra-rank / inter-rank / inter-node), checkpoint-based load rebalancing
// and parallel prototype search on replicated candidate sets.
//
// Ranks are goroutines and messages are in-memory queue entries, so the
// engine reproduces the paper's distributed-execution *structure* (who
// sends how many messages where, how work balances across ranks) rather
// than wire-level transport. Per-vertex state arrays are only ever written
// by the owning rank, mirroring MPI ownership discipline.
//
// Message delivery sits behind a transport seam. The default transport is
// perfect (exactly-once, in order, immediate); configuring Config.Faults
// switches Traverse onto a fault-tolerant path — sequence-numbered sends,
// per-(phase, sender) receiver dedup, ack/retry with capped backoff,
// quiescence over acknowledged work, and per-rank checkpoint/restore for
// injected crashes — that keeps results bit-identical under an injectable
// chaos schedule of message drops, duplications, reorders, delays, rank
// stalls and rank crashes.
package dist

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"approxmatch/internal/constraint"
	"approxmatch/internal/core"
	"approxmatch/internal/graph"
	"approxmatch/internal/pattern"
)

// Partition selects the initial vertex-to-rank assignment strategy.
type Partition int

const (
	// PartitionBlock assigns contiguous vertex-id ranges per rank — the
	// ingestion-order default, which preserves the id-space locality real
	// graphs have (and therefore the load imbalance the paper's
	// rebalancing addresses).
	PartitionBlock Partition = iota
	// PartitionHash scatters vertices pseudo-randomly, trading locality
	// for static balance.
	PartitionHash
)

// Config shapes the simulated deployment.
type Config struct {
	// Ranks is the number of MPI-process stand-ins (goroutines).
	Ranks int
	// RanksPerNode groups ranks into compute nodes for message locality
	// accounting (the paper runs 36 ranks per node; Fig. 12 varies this).
	RanksPerNode int
	// DelegateThreshold marks vertices with degree >= threshold as
	// delegates whose neighbor broadcasts use one remote message per
	// destination rank instead of one per neighbor (HavoqGT's delegate
	// partitioned graph). 0 disables delegation.
	DelegateThreshold int
	// Partition selects the initial assignment (block by default).
	Partition Partition
	// InterRankDelay and InterNodeDelay, when set, are slept by the
	// receiving rank before processing a message of that locality class —
	// a measured (not modeled) simulation of shared-memory vs network
	// transfer latency. Rank goroutines sleep concurrently, so wall time
	// reflects each rank's exposed communication latency the way the
	// paper's asynchronous runtime would.
	InterRankDelay time.Duration
	InterNodeDelay time.Duration
	// Faults, when non-nil, switches every Traverse onto the
	// fault-tolerant transport and injects the configured fault schedule
	// (see Faults). An all-zero Faults enables the dedup/ack machinery
	// with no injected faults — the overhead mode kernelbench measures.
	Faults *Faults
	// TCP, when non-nil, routes every cross-rank envelope over real
	// loopback TCP sockets through the wire codec (see TCPOptions). It
	// implies the fault-tolerant path — normalized installs an all-zero
	// Faults if none is configured, because a socket can genuinely lose
	// frames and the ack/retransmit machinery is what recovers them. An
	// engine with TCP set owns kernel resources; call Engine.Close when
	// done with it.
	TCP *TCPOptions
}

// DefaultConfig returns a small deployment: 4 ranks, 2 per node.
func DefaultConfig() Config { return Config{Ranks: 4, RanksPerNode: 2} }

func (c Config) normalized() Config {
	if c.Ranks <= 0 {
		c.Ranks = 1
	}
	if c.RanksPerNode <= 0 {
		c.RanksPerNode = c.Ranks
	}
	if c.TCP != nil && c.Faults == nil {
		// The socket path requires the at-least-once machinery: injected
		// (or organic) connection failures lose frames, and only the
		// ack/retransmit protocol gets them back.
		c.Faults = &Faults{}
	}
	return c
}

// Nodes returns the number of simulated compute nodes.
func (c Config) Nodes() int {
	c = c.normalized()
	return (c.Ranks + c.RanksPerNode - 1) / c.RanksPerNode
}

// nodeOf returns the simulated node of a rank. It normalizes exactly the
// way Nodes does, so the two always agree — including on a Config (or an
// Engine built by struct literal in tests) that never went through
// NewEngine's normalization, where a zero RanksPerNode used to divide by
// zero.
func (c Config) nodeOf(rank int) int {
	c = c.normalized()
	return rank / c.RanksPerNode
}

// PhaseStats counts messages by locality class within one phase.
type PhaseStats struct {
	// IntraRank messages stay on the sending rank.
	IntraRank atomic.Int64
	// InterRank messages cross ranks within one node (shared memory in a
	// real deployment).
	InterRank atomic.Int64
	// InterNode messages cross node boundaries (the network).
	InterNode atomic.Int64
}

// Total returns all messages in the phase.
func (p *PhaseStats) Total() int64 {
	return p.IntraRank.Load() + p.InterRank.Load() + p.InterNode.Load()
}

// Remote returns messages leaving the sending rank (the paper's "remote"
// in the §5.7 message table).
func (p *PhaseStats) Remote() int64 { return p.InterRank.Load() + p.InterNode.Load() }

// MessageStats aggregates per-phase message counters plus the engine-wide
// fault-plane counters. Logical messages are counted once per phase
// regardless of retransmissions; retries, redeliveries and acks are
// control traffic tracked in Faults.
type MessageStats struct {
	mu     sync.Mutex
	phases map[string]*PhaseStats
	// Faults counts fault-plane events (injected faults, retries,
	// redeliveries, checkpoints, crashes, restores, stalls).
	Faults FaultStats
}

// Phase returns (creating if needed) the counter for a phase name.
func (m *MessageStats) Phase(name string) *PhaseStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.phases == nil {
		m.phases = make(map[string]*PhaseStats)
	}
	p, ok := m.phases[name]
	if !ok {
		p = &PhaseStats{}
		m.phases[name] = p
	}
	return p
}

// Phases returns the phase names recorded so far.
func (m *MessageStats) Phases() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.phases))
	for name := range m.phases {
		out = append(out, name)
	}
	return out
}

// Total sums messages across phases.
func (m *MessageStats) Total() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var t int64
	for _, p := range m.phases {
		t += p.Total()
	}
	return t
}

// Remote sums remote (off-rank) messages across phases.
func (m *MessageStats) Remote() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var t int64
	for _, p := range m.phases {
		t += p.Remote()
	}
	return t
}

// InterNodeTotal sums inter-node messages across phases.
func (m *MessageStats) InterNodeTotal() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var t int64
	for _, p := range m.phases {
		t += p.InterNode.Load()
	}
	return t
}

// Engine is one deployment over a background graph.
type Engine struct {
	g     *graph.Graph
	cfg   Config
	owner []int32 // vertex -> rank
	// delegate marks high-degree vertices whose broadcasts use the
	// delegate fan-out.
	delegate []bool
	// Stats records message counters across all traversals.
	Stats MessageStats
	// ComputePerRank counts visitor executions per rank, the load-balance
	// signal (Fig. 9a).
	ComputePerRank []atomic.Int64

	// travGen numbers fault-tolerant traversal attempts engine-wide; the
	// TCP reader uses it to drop frames from finished or crashed attempts
	// whose sequence numbers would collide with the current dedup space.
	travGen atomic.Uint64
	// wireTpl/wireWalk are the walk binding of the traversal about to run
	// (set by nlccDist, nil otherwise): token and walk-ack payloads encode
	// only their variable part and re-attach these canonical pointers on
	// decode. Written and read on the single goroutine that issues
	// traversals, never from rank goroutines.
	wireTpl  *pattern.Template
	wireWalk *constraint.Walk
	// net is the lazily created TCP fabric (Config.TCP only).
	netOnce sync.Once
	net     *tcpNet
	netErr  error
}

// ensureNet creates the TCP fabric on first use.
func (e *Engine) ensureNet() (*tcpNet, error) {
	e.netOnce.Do(func() { e.net, e.netErr = newTCPNet(e) })
	return e.net, e.netErr
}

// Close releases the engine's socket resources (TCP listeners,
// connections, reader goroutines). Engines without Config.TCP hold no
// kernel resources and need no Close. Idempotent.
func (e *Engine) Close() {
	e.netOnce.Do(func() {}) // settle the fabric pointer
	if e.net != nil {
		e.net.close()
	}
}

// NewEngine partitions g over the configured ranks with block (contiguous
// vertex-id range) partitioning — the common ingestion-order default. Real
// graphs have heavy id-space locality (webgraphs are crawled domain by
// domain), which is exactly why the paper's reshuffle-based load balancing
// matters; SetOwners/BalancedOwners install a balanced assignment.
// NewEngine is the single construction entry point that normalizes cfg.
func NewEngine(g *graph.Graph, cfg Config) *Engine {
	cfg = cfg.normalized()
	e := &Engine{
		g:              g,
		cfg:            cfg,
		owner:          make([]int32, g.NumVertices()),
		delegate:       make([]bool, g.NumVertices()),
		ComputePerRank: make([]atomic.Int64, cfg.Ranks),
	}
	n := g.NumVertices()
	for v := 0; v < n; v++ {
		switch cfg.Partition {
		case PartitionHash:
			e.owner[v] = int32(hashVertex(graph.VertexID(v)) % uint32(cfg.Ranks))
		default:
			e.owner[v] = blockOwner(v, cfg.Ranks, n)
		}
		if cfg.DelegateThreshold > 0 && g.Degree(graph.VertexID(v)) >= cfg.DelegateThreshold {
			e.delegate[v] = true
		}
	}
	return e
}

// blockOwner maps vertex v to its contiguous-range rank. The product
// v×ranks is computed in int64: in int it overflows for large graphs on
// 32-bit platforms (v×ranks > 2³¹ already at |V|=2²⁵, 64 ranks) and
// mis-assigns owners.
func blockOwner(v, ranks, n int) int32 {
	if n <= 0 {
		return 0
	}
	return int32(int64(v) * int64(ranks) / int64(n))
}

// hashVertex is a Fibonacci-style mixer giving a stable pseudo-random rank
// assignment.
func hashVertex(v graph.VertexID) uint32 {
	x := uint32(v) * 2654435761
	x ^= x >> 16
	return x
}

// Graph returns the underlying background graph.
func (e *Engine) Graph() *graph.Graph { return e.g }

// Cfg returns the deployment configuration.
func (e *Engine) Cfg() Config { return e.cfg }

// Owner returns the rank owning vertex v.
func (e *Engine) Owner(v graph.VertexID) int { return int(e.owner[v]) }

// IsDelegate reports whether v uses delegate fan-out.
func (e *Engine) IsDelegate(v graph.VertexID) bool { return e.delegate[v] }

// nodeOf returns the simulated node of a rank; it delegates to the
// Config's normalized grouping so it agrees with Cfg().Nodes() even when
// the Engine was built without NewEngine.
func (e *Engine) nodeOf(rank int) int { return e.cfg.nodeOf(rank) }

// SetOwners replaces the vertex-to-rank assignment (load rebalancing).
func (e *Engine) SetOwners(owner []int32) {
	if len(owner) != len(e.owner) {
		panic(fmt.Sprintf("dist: owner slice length %d, want %d", len(owner), len(e.owner)))
	}
	copy(e.owner, owner)
}

// Owners returns a copy of the current assignment.
func (e *Engine) Owners() []int32 {
	return append([]int32(nil), e.owner...)
}

// locality classes for message deliveries.
const (
	classIntraRank = iota
	classInterRank
	classInterNode
)

// mailbox is one rank's visitor queue.
type mailbox struct {
	mu   sync.Mutex
	cond *sync.Cond
	q    []envelope
}

// fault-tolerant traversal attempt outcomes (traversal.state).
const (
	ftRunning int32 = iota
	ftCrashed
	ftDeadline
)

// traversal carries the live state of one Traverse attempt.
type traversal struct {
	e         *Engine
	phase     *PhaseStats
	phaseName string
	boxes     []*mailbox
	// pending counts logical work not yet complete: on the perfect path a
	// message is complete when its visit returns; on the fault-tolerant
	// path a transported message is complete only when its ack reaches
	// the sender (quiescence over acknowledged work), and a seed when its
	// visit returns.
	pending atomic.Int64
	tr      transport

	// Fault-tolerant fields (unused on the perfect path).
	f         *Faults
	ft        bool
	send      []*senderState
	recv      []*recvState
	state     atomic.Int32
	abortCh   chan struct{}
	abortOnce sync.Once
	ct        *chaosTransport // non-nil only when message faults are injected
	// gen is this attempt's engine-wide generation number, carried in
	// every wire envelope; ws is the codec session resolving walk payloads
	// (both set on the fault-tolerant path only).
	gen uint64
	ws  wireSession
}

// Ctx is handed to visit callbacks: it attributes sends to the executing
// rank and exposes delegate-aware neighbor broadcast.
type Ctx struct {
	t    *traversal
	Rank int
}

// push appends env to rank dst's mailbox.
func (t *traversal) push(dst int, env envelope) {
	b := t.boxes[dst]
	b.mu.Lock()
	b.q = append(b.q, env)
	b.mu.Unlock()
	b.cond.Signal()
}

// pushAt inserts env at position pos (mod queue length) — the chaos
// transport's reorder primitive.
func (t *traversal) pushAt(dst int, env envelope, pos int) {
	b := t.boxes[dst]
	b.mu.Lock()
	n := len(b.q) + 1
	pos %= n
	if pos < 0 {
		pos += n
	}
	b.q = append(b.q, envelope{})
	copy(b.q[pos+1:], b.q[pos:])
	b.q[pos] = env
	b.mu.Unlock()
	b.cond.Signal()
}

// enqueue seeds a visitor at target's owner (uncounted local creation —
// HavoqGT's do_traversal). Seeds bypass the fault plane: they are
// in-process constructor calls, not messages.
func (t *traversal) enqueue(target graph.VertexID, data any) {
	t.pending.Add(1)
	t.push(int(t.e.owner[target]), envelope{target: target, data: data, class: classIntraRank, from: -1})
}

// dispatch routes one accounted message from rank `from` to target's
// owner: direct mailbox append on the perfect path, sequence-numbered
// tracked send on the fault-tolerant path.
func (t *traversal) dispatch(from int, target graph.VertexID, data any, class uint8) {
	if !t.ft {
		t.pending.Add(1)
		t.push(int(t.e.owner[target]), envelope{target: target, data: data, class: class, from: -1})
		return
	}
	s := t.send[from]
	s.nextSeq++ // sends happen only on the owning rank's goroutine
	seq := s.nextSeq
	env := envelope{target: target, data: data, class: class, from: int32(from), seq: seq}
	dst := int(t.e.owner[target])
	t.pending.Add(1)
	s.mu.Lock()
	s.unacked[seq] = &outstanding{env: env, dst: dst, attempts: 1, nextRetry: time.Now().Add(t.f.RetryInterval)}
	s.mu.Unlock()
	t.tr.deliver(dst, env, faultKey{src: from, seq: seq, attempt: 1})
}

// account records one message from rank `from` to rank `to` and returns
// its locality class.
func (t *traversal) account(from, to int) uint8 {
	switch {
	case from == to:
		t.phase.IntraRank.Add(1)
		return classIntraRank
	case t.e.nodeOf(from) == t.e.nodeOf(to):
		t.phase.InterRank.Add(1)
		return classInterRank
	default:
		t.phase.InterNode.Add(1)
		return classInterNode
	}
}

// Send delivers a visitor to target's owner, counted from the current rank.
func (c *Ctx) Send(target graph.VertexID, data any) {
	class := c.t.account(c.Rank, int(c.t.e.owner[target]))
	c.t.dispatch(c.Rank, target, data, class)
}

// SendToNeighbors delivers mk(i, w) to every neighbor w of v accepted by
// filter. For delegate vertices the broadcast costs one remote message per
// destination rank (HavoqGT's delegate broadcast tree) plus local fan-out;
// for regular vertices it costs one message per neighbor.
func (c *Ctx) SendToNeighbors(v graph.VertexID, filter func(i int, w graph.VertexID) bool, mk func(i int, w graph.VertexID) any) {
	t := c.t
	if !t.e.delegate[v] {
		for i, w := range t.e.g.Neighbors(v) {
			if filter(i, w) {
				c.Send(w, mk(i, w))
			}
		}
		return
	}
	touched := make(map[int]bool)
	for i, w := range t.e.g.Neighbors(v) {
		if !filter(i, w) {
			continue
		}
		dst := int(t.e.owner[w])
		if dst != c.Rank && !touched[dst] {
			touched[dst] = true
			t.account(c.Rank, dst) // one hop on the broadcast tree
		}
		t.phase.IntraRank.Add(1) // local fan-out at the destination
		t.dispatch(c.Rank, w, mk(i, w), classIntraRank)
	}
}

// classDelay returns the injected latency of a locality class.
func (e *Engine) classDelay(class uint8) time.Duration {
	switch class {
	case classInterRank:
		return e.cfg.InterRankDelay
	case classInterNode:
		return e.cfg.InterNodeDelay
	default:
		return 0
	}
}

// TraverseHooks let a traversal's caller participate in crash recovery:
// Checkpoint serializes the durable per-vertex state rank owns, taken at
// the start of every traversal attempt (the engine's finest level
// boundary), and Restore wipes whatever the crash left of that rank's
// state and rebuilds it from the checkpoint bytes before the traversal
// restarts. Both are consulted only when Config.Faults configures a
// CrashEvent.
type TraverseHooks struct {
	Checkpoint func(rank int) []byte
	Restore    func(rank int, data []byte)
}

// Traverse runs one asynchronous traversal: init seeds visitors (uncounted
// local creations — HavoqGT's do_traversal), then every rank processes its
// mailbox, with visits allowed to push further visitors, until distributed
// quiescence. phaseName selects the message counter bucket.
//
// With Config.Faults set, delivery is at-least-once over the chaos
// transport and quiescence counts acknowledged work; a traversal that
// cannot quiesce before Faults.Deadline aborts the pipeline with
// ErrQuiescenceDeadline (recovered into an ordinary error by the Run*
// entry points via core.RecoverCancel).
func (e *Engine) Traverse(phaseName string, init func(seed func(target graph.VertexID, data any)), visit func(ctx *Ctx, target graph.VertexID, data any)) {
	e.traverseH(phaseName, nil, init, visit)
}

// traverseH is Traverse with crash-recovery hooks.
func (e *Engine) traverseH(phaseName string, hooks *TraverseHooks, init func(seed func(target graph.VertexID, data any)), visit func(ctx *Ctx, target graph.VertexID, data any)) {
	if e.cfg.Faults == nil {
		e.runPerfect(phaseName, init, visit)
		return
	}
	if err := e.runFT(phaseName, hooks, init, visit); err != nil {
		core.Abort(err)
	}
}

// runPerfect is the zero-overhead exactly-once path (Config.Faults nil).
func (e *Engine) runPerfect(phaseName string, init func(seed func(target graph.VertexID, data any)), visit func(ctx *Ctx, target graph.VertexID, data any)) {
	t := &traversal{
		e:         e,
		phase:     e.Stats.Phase(phaseName),
		phaseName: phaseName,
		boxes:     make([]*mailbox, e.cfg.Ranks),
	}
	t.tr = perfectTransport{t}
	for i := range t.boxes {
		t.boxes[i] = &mailbox{}
		t.boxes[i].cond = sync.NewCond(&t.boxes[i].mu)
	}

	init(t.enqueue)
	if t.pending.Load() == 0 {
		return
	}

	var wg sync.WaitGroup
	for rank := 0; rank < e.cfg.Ranks; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			ctx := &Ctx{t: t, Rank: rank}
			b := t.boxes[rank]
			// Latency debt is accumulated per rank and slept in batches:
			// sub-millisecond sleeps are quantized by the OS scheduler, so
			// batching keeps the injected totals accurate. Residual debt
			// below the batching threshold is flushed when the rank exits
			// — without the flush a short traversal under-reports its
			// configured inter-rank/inter-node latency.
			lm := latencyMeter{sleep: time.Sleep}
			defer lm.flush()
			for {
				b.mu.Lock()
				for len(b.q) == 0 && t.pending.Load() > 0 {
					b.cond.Wait()
				}
				if len(b.q) == 0 {
					b.mu.Unlock()
					return
				}
				env := b.q[0]
				b.q = b.q[1:]
				b.mu.Unlock()

				lm.add(e.classDelay(env.class))
				e.ComputePerRank[rank].Add(1)
				visit(ctx, env.target, env.data)
				if t.pending.Add(-1) == 0 {
					// Quiescence: wake every rank so idle workers observe
					// pending == 0 and exit. Broadcasting under each box's
					// lock closes the check-then-wait window.
					t.wakeAll()
				}
			}
		}(rank)
	}
	wg.Wait()
}

// runFT is the fault-tolerant path: at-least-once delivery with receiver
// dedup, ack/retry with capped backoff, quiescence over acknowledged work
// bounded by a deadline, and checkpoint/restart recovery for injected rank
// crashes. Each iteration of the outer loop is one traversal attempt; a
// crash discards the attempt, restores the crashed rank's owned state from
// its checkpoint and re-runs init against unchanged durable state, which
// makes recovery bit-exact (traversal effects are idempotent functions of
// the durable state, so a partial attempt's surviving effects are a subset
// of the re-run's).
func (e *Engine) runFT(phaseName string, hooks *TraverseHooks, init func(seed func(target graph.VertexID, data any)), visit func(ctx *Ctx, target graph.VertexID, data any)) error {
	fv := e.cfg.Faults.withDefaults()
	f := &fv
	crashesLeft := 0
	if f.Crash != nil {
		crashesLeft = f.Crash.Times
		if crashesLeft <= 0 {
			crashesLeft = 1
		}
	}
	var deadline time.Time
	if f.Deadline > 0 {
		deadline = time.Now().Add(f.Deadline)
	}
	for attempt := 1; ; attempt++ {
		t := &traversal{
			e:         e,
			phase:     e.Stats.Phase(phaseName),
			phaseName: phaseName,
			boxes:     make([]*mailbox, e.cfg.Ranks),
			f:         f,
			ft:        true,
			send:      make([]*senderState, e.cfg.Ranks),
			recv:      make([]*recvState, e.cfg.Ranks),
			abortCh:   make(chan struct{}),
		}
		for i := range t.boxes {
			t.boxes[i] = &mailbox{}
			t.boxes[i].cond = sync.NewCond(&t.boxes[i].mu)
			t.send[i] = &senderState{unacked: make(map[uint64]*outstanding)}
			t.recv[i] = &recvState{seen: make(map[sendKey]struct{})}
		}
		t.gen = e.travGen.Add(1)
		t.ws = wireSession{gen: t.gen, tpl: e.wireTpl, walk: e.wireWalk, vertices: e.g.NumVertices()}
		var base sink = mailboxSink{t}
		if e.cfg.TCP != nil {
			n, err := e.ensureNet()
			if err != nil {
				return err
			}
			base = tcpSink{n: n, t: t}
			// Attach this attempt to the fabric: readers decode into its
			// mailboxes from here on, and drop frames of earlier attempts
			// by generation.
			n.cur.Store(t)
		}
		if f.Drop > 0 || f.Duplicate > 0 || f.Reorder > 0 || f.Delay > 0 {
			t.ct = &chaosTransport{t: t, f: f, s: base, remote: e.cfg.TCP != nil}
			t.tr = t.ct
		} else if e.cfg.TCP != nil {
			t.tr = sinkTransport{s: base}
		} else {
			t.tr = perfectTransport{t}
		}

		// Per-level rank checkpoints: every rank serializes the durable
		// per-vertex state it owns at the attempt start, so an injected
		// crash can restore from the last boundary.
		var ckpts [][]byte
		if crashesLeft > 0 && hooks != nil && hooks.Checkpoint != nil {
			ckpts = make([][]byte, e.cfg.Ranks)
			for r := range ckpts {
				ckpts[r] = hooks.Checkpoint(r)
				e.Stats.Faults.Checkpoints.Add(1)
				e.Stats.Faults.CheckpointBytes.Add(int64(len(ckpts[r])))
			}
		}

		init(t.enqueue)
		if t.pending.Load() == 0 {
			return nil
		}

		stop := make(chan struct{})
		var pumpWG sync.WaitGroup
		pumpWG.Add(1)
		go func() {
			defer pumpWG.Done()
			t.pump(deadline, stop)
		}()
		var wg sync.WaitGroup
		for rank := 0; rank < e.cfg.Ranks; rank++ {
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				t.rankLoopFT(rank, visit, crashesLeft > 0)
			}(rank)
		}
		wg.Wait()
		close(stop)
		pumpWG.Wait()

		switch t.state.Load() {
		case ftDeadline:
			return fmt.Errorf("dist: phase %q: %w", phaseName, ErrQuiescenceDeadline)
		case ftCrashed:
			crashesLeft--
			if hooks != nil && hooks.Restore != nil && ckpts != nil {
				hooks.Restore(f.Crash.Rank, ckpts[f.Crash.Rank])
				e.Stats.Faults.Restores.Add(1)
			}
			e.Stats.Faults.Restarts.Add(1)
			// Re-run the attempt against the restored durable state.
		default:
			return nil // quiesced: every logical message acknowledged
		}
	}
}

// rankLoopFT is one rank's delivery loop on the fault-tolerant path.
func (t *traversal) rankLoopFT(rank int, visit func(ctx *Ctx, target graph.VertexID, data any), crashArmed bool) {
	e := t.e
	ctx := &Ctx{t: t, Rank: rank}
	b := t.boxes[rank]
	lm := latencyMeter{sleep: time.Sleep}
	defer lm.flush()
	processed := 0
	stalled := false
	for {
		b.mu.Lock()
		for len(b.q) == 0 && t.pending.Load() > 0 && t.state.Load() == ftRunning {
			b.cond.Wait()
		}
		if len(b.q) == 0 || t.state.Load() != ftRunning {
			b.mu.Unlock()
			return
		}
		env := b.q[0]
		b.q = b.q[1:]
		b.mu.Unlock()

		if env.ack {
			t.handleAck(rank, env)
			continue
		}
		lm.add(e.classDelay(env.class))
		if env.from >= 0 {
			key := sendKey{from: env.from, seq: env.seq}
			if _, dup := t.recv[rank].seen[key]; dup {
				// Redelivery: the effect already applied; re-ack in case
				// the previous ack was lost.
				e.Stats.Faults.Redeliveries.Add(1)
				t.sendAck(rank, env)
				continue
			}
			t.recv[rank].seen[key] = struct{}{}
		}
		processed++

		if st := t.f.Stall; st != nil && st.Rank == rank && !stalled && processed > st.After {
			stalled = true
			e.Stats.Faults.Stalls.Add(1)
			if st.For > 0 {
				select {
				case <-time.After(st.For):
				case <-t.abortCh:
				}
			} else {
				// Stall until the traversal aborts — the livelock the
				// quiescence deadline exists to break.
				<-t.abortCh
			}
			if t.state.Load() != ftRunning {
				return
			}
		}
		if cr := t.f.Crash; crashArmed && cr != nil && cr.Rank == rank && processed > cr.After {
			if t.state.CompareAndSwap(ftRunning, ftCrashed) {
				// The crash loses this rank's mailbox, dedup table and
				// owned per-vertex state; the attempt is discarded and
				// restarted after the checkpoint restore.
				e.Stats.Faults.Crashes.Add(1)
				b.mu.Lock()
				b.q = nil
				b.mu.Unlock()
				t.closeAbort()
				t.wakeAll()
			}
			return
		}

		e.ComputePerRank[rank].Add(1)
		visit(ctx, env.target, env.data)
		if env.from >= 0 {
			// Ack after the visit: any messages the visit pushed have
			// already raised pending, so the ack's decrement can never
			// quiesce the traversal early.
			t.sendAck(rank, env)
		} else if t.pending.Add(-1) == 0 {
			t.wakeAll()
		}
	}
}

// handleAck completes one logical message: first ack wins, duplicates are
// ignored.
func (t *traversal) handleAck(rank int, env envelope) {
	s := t.send[rank]
	s.mu.Lock()
	_, ok := s.unacked[env.seq]
	if ok {
		delete(s.unacked, env.seq)
	}
	s.mu.Unlock()
	if ok && t.pending.Add(-1) == 0 {
		t.wakeAll()
	}
}

// sendAck transmits an ack for env back to its originator. Acks are
// fire-and-forget control traffic (reliability comes from payload retries
// triggering re-acks) with their own sequence numbers so every
// transmission rolls fresh fault decisions.
func (t *traversal) sendAck(rank int, env envelope) {
	s := t.send[rank]
	s.nextSeq++
	t.e.Stats.Faults.AcksSent.Add(1)
	t.tr.deliver(int(env.from), envelope{from: env.from, seq: env.seq, ack: true},
		faultKey{src: rank, seq: s.nextSeq, attempt: 1})
}

// pump is the traversal's background timer: it flushes chaos-delayed
// messages, retransmits unacked sends past their backoff, and enforces the
// quiescence deadline.
func (t *traversal) pump(deadline time.Time, stop chan struct{}) {
	iv := t.f.RetryInterval / 2
	if iv < 100*time.Microsecond {
		iv = 100 * time.Microsecond
	}
	tick := time.NewTicker(iv)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case now := <-tick.C:
			if !deadline.IsZero() && now.After(deadline) {
				if t.state.CompareAndSwap(ftRunning, ftDeadline) {
					t.closeAbort()
					t.wakeAll()
				}
				return
			}
			if t.ct != nil {
				t.ct.flushDelayed(now, false)
			}
			t.retransmit(now)
		}
	}
}

// retransmit re-sends every outstanding message past its retry time, with
// per-message exponential backoff capped at 16× the base interval.
func (t *traversal) retransmit(now time.Time) {
	type resend struct {
		env      envelope
		dst      int
		attempts int
	}
	for src, s := range t.send {
		var due []resend
		s.mu.Lock()
		for _, o := range s.unacked {
			if now.After(o.nextRetry) {
				o.attempts++
				shift := o.attempts - 1
				if shift > 4 {
					shift = 4
				}
				o.nextRetry = now.Add(t.f.RetryInterval << uint(shift))
				due = append(due, resend{env: o.env, dst: o.dst, attempts: o.attempts})
			}
		}
		s.mu.Unlock()
		for _, r := range due {
			// Re-check membership immediately before the send: the ack may
			// have landed between the scan above and this delivery, and
			// retransmitting an acked message both burns the wire and
			// inflates Retries with a retry that never needed to happen.
			s.mu.Lock()
			_, still := s.unacked[r.env.seq]
			s.mu.Unlock()
			if !still {
				continue
			}
			t.e.Stats.Faults.Retries.Add(1)
			t.tr.deliver(r.dst, r.env, faultKey{src: src, seq: r.env.seq, attempt: r.attempts})
		}
	}
}

// wakeAll broadcasts every mailbox condition so idle ranks re-check the
// exit predicate. Broadcasting under each box's lock closes the
// check-then-wait window.
func (t *traversal) wakeAll() {
	for _, b := range t.boxes {
		b.mu.Lock()
		b.cond.Broadcast()
		b.mu.Unlock()
	}
}

func (t *traversal) closeAbort() {
	t.abortOnce.Do(func() { close(t.abortCh) })
}

// FoldFaultMetrics accumulates the engine's lifetime fault-plane counters
// into m — the bridge from MessageStats to core.Metrics and /metrics.
func (e *Engine) FoldFaultMetrics(m *core.Metrics) {
	f := &e.Stats.Faults
	m.FaultDrops += f.Dropped.Load()
	m.FaultDups += f.Duplicated.Load()
	m.FaultReorders += f.Reordered.Load()
	m.FaultDelays += f.Delayed.Load()
	m.Retries += f.Retries.Load()
	m.Redeliveries += f.Redeliveries.Load()
	m.RankCheckpoints += f.Checkpoints.Load()
	m.CheckpointBytes += f.CheckpointBytes.Load()
	m.RankRestores += f.Restores.Load()
	m.RankCrashes += f.Crashes.Load()
	m.RankStalls += f.Stalls.Load()
	m.SockFrames += f.SockFrames.Load()
	m.SockBytes += f.SockBytes.Load()
	m.SockDials += f.SockDials.Load()
	m.SockConnDrops += f.SockConnDrops.Load()
	m.SockPartialWrites += f.SockPartialWrites.Load()
	m.SockDelays += f.SockDelays.Load()
	m.SockWriteErrors += f.SockWriteErrors.Load()
	m.SockStaleFrames += f.SockStaleFrames.Load()
}

// ParallelRanks runs fn(rank) concurrently on every rank and waits — the
// compute-only barrier phases between traversals (local re-evaluation in
// LCC, initiator elimination in NLCC).
func (e *Engine) ParallelRanks(fn func(rank int)) {
	var wg sync.WaitGroup
	for rank := 0; rank < e.cfg.Ranks; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			fn(rank)
		}(rank)
	}
	wg.Wait()
}
