package dist

import (
	"sync"
	"time"

	"approxmatch/internal/graph"
)

// envelope is one transport-level delivery: a visitor payload or an ack.
// Seeds (do_traversal local creations) carry from == -1 and bypass the
// fault plane entirely — they are in-process constructor calls, not
// messages.
type envelope struct {
	target graph.VertexID
	data   any
	class  uint8
	// from is the originating rank of the payload (-1 for seeds). For an
	// ack envelope it still names the payload's originator, which is also
	// the ack's destination rank.
	from int32
	// seq is the payload's per-(traversal, sender) sequence number; the
	// (from, seq) pair is the receiver's dedup key.
	seq uint64
	// ack marks an acknowledgment for payload (from, seq).
	ack bool
}

// faultKey identifies one physical transmission for the chaos transport's
// deterministic fault schedule: the hash of (seed, phase, src, seq,
// attempt) decides this transmission's fate, so retries (attempt+1) are
// re-rolled rather than deterministically re-dropped, and the schedule does
// not depend on goroutine interleaving.
type faultKey struct {
	src     int
	seq     uint64
	attempt int
}

// transport conveys envelopes between ranks. The perfect transport
// delivers exactly once, in order, immediately; the chaos transport
// applies a seeded deterministic schedule of drops, duplications,
// reorders and delays to cross-rank transmissions.
type transport interface {
	deliver(dst int, env envelope, key faultKey)
}

// perfectTransport is the default in-memory delivery: append to the
// destination mailbox, exactly once.
type perfectTransport struct{ t *traversal }

func (p perfectTransport) deliver(dst int, env envelope, _ faultKey) {
	p.t.push(dst, env)
}

// sink is the final delivery surface underneath the fault plane: where an
// envelope physically goes once its fate is decided. The mailbox sink
// appends to the destination rank's in-memory queue; the TCP sink frames
// the envelope through the wire codec and writes it to the destination
// rank's socket. The chaos transport composes over either, so one fault
// schedule drives both the in-memory and the socket path — the basis of
// the chaos-parity guarantee.
type sink interface {
	emit(src, dst int, env envelope)
	// emitAt inserts at a mailbox position (the reorder primitive); sinks
	// without positional delivery degrade it to emit.
	emitAt(src, dst int, env envelope, pos int)
}

// mailboxSink is the in-memory delivery surface.
type mailboxSink struct{ t *traversal }

func (s mailboxSink) emit(_, dst int, env envelope)            { s.t.push(dst, env) }
func (s mailboxSink) emitAt(_, dst int, env envelope, pos int) { s.t.pushAt(dst, env, pos) }

// sinkTransport is the fault-tolerant transport with no injected message
// faults: every delivery goes straight to the sink. It exists for the TCP
// path, where the ack/retransmit machinery must run even without message
// faults (a socket can genuinely lose frames) — the in-memory equivalent
// is perfectTransport.
type sinkTransport struct{ s sink }

func (st sinkTransport) deliver(dst int, env envelope, key faultKey) {
	st.s.emit(key.src, dst, env)
}

// outstanding is one unacknowledged logical message held for retransmission.
type outstanding struct {
	env       envelope
	dst       int
	attempts  int
	nextRetry time.Time
}

// senderState is one rank's at-least-once bookkeeping: a sequence counter
// (written only by the owning rank's goroutine) and the unacked buffer
// (shared with the retransmit pump, hence the mutex).
type senderState struct {
	nextSeq uint64
	mu      sync.Mutex
	unacked map[uint64]*outstanding
}

// sendKey is the receiver-side dedup key for at-least-once delivery.
type sendKey struct {
	from int32
	seq  uint64
}

// recvState is one rank's dedup table, touched only by the owning rank's
// goroutine (including the crash wipe, which runs on that goroutine).
type recvState struct {
	seen map[sendKey]struct{}
}

// latencyMeter batches injected communication latency: sub-millisecond
// sleeps are quantized by the OS scheduler, so debt accumulates until it
// crosses a millisecond, and any residue is flushed when the rank exits so
// short traversals do not silently under-report the configured latency.
type latencyMeter struct {
	debt  time.Duration
	sleep func(time.Duration)
}

func (l *latencyMeter) add(d time.Duration) {
	if d <= 0 {
		return
	}
	l.debt += d
	if l.debt >= time.Millisecond {
		l.sleep(l.debt)
		l.debt = 0
	}
}

// flush sleeps off any residual debt below the batching threshold.
func (l *latencyMeter) flush() {
	if l.debt > 0 {
		l.sleep(l.debt)
		l.debt = 0
	}
}
