package dist

// CostModel turns measured message/compute counters into a modeled runtime
// for deployment-shape studies (Fig. 12): the same partitioning mapped onto
// different node counts changes (a) how many messages cross the network and
// (b) how oversubscribed each node's cores are. The model is deliberately
// simple — per-event costs plus an oversubscription penalty — and is only
// used to reproduce the *shape* of the locality experiment; all absolute
// runtimes elsewhere are measured, not modeled.
type CostModel struct {
	// ComputePerVisit is the cost of executing one visitor.
	ComputePerVisit float64
	// IntraRankPerMsg, InterRankPerMsg, InterNodePerMsg are per-message
	// delivery costs for the three locality classes.
	IntraRankPerMsg float64
	InterRankPerMsg float64
	InterNodePerMsg float64
	// CoresPerNode bounds how many ranks per node run without contention;
	// beyond it compute scales by the oversubscription ratio.
	CoresPerNode int
}

// DefaultCostModel reflects the paper's testbed proportions: network
// messages an order of magnitude costlier than shared-memory ones, which
// are costlier than local queue operations; visitor execution several times
// the cost of a message hop (per-visit constraint evaluation dominates a
// queue transfer); 36 cores per node. With these ratios the model
// reproduces both the paper's moderate strong scaling (compute shrinks with
// ranks faster than network grows) and the Fig. 12 locality U-curve.
func DefaultCostModel() CostModel {
	return CostModel{
		ComputePerVisit: 6.0,
		IntraRankPerMsg: 0.2,
		InterRankPerMsg: 1.0,
		InterNodePerMsg: 10.0,
		CoresPerNode:    36,
	}
}

// ModeledTime estimates the runtime of the recorded workload under a
// hypothetical node grouping: the engine's rank count stays fixed (same
// partitioning, as in Fig. 12) while ranksPerNode varies. Per-rank compute
// is slowed by core oversubscription; per-rank communication cost depends
// on how much of the remote traffic crosses node boundaries under the
// grouping; asynchronous execution overlaps the two, so the larger term
// dominates with a fractional exposure of the other (§5.7's observation
// that async processing hides network overhead).
func ModeledTime(e *Engine, cm CostModel, ranksPerNode int) float64 {
	cfg := e.cfg
	if ranksPerNode <= 0 {
		ranksPerNode = 1
	}
	// Compute: the busiest rank bounds progress; oversubscribing a node's
	// cores slows every rank on it proportionally.
	var maxCompute int64
	for r := range e.ComputePerRank {
		if c := e.ComputePerRank[r].Load(); c > maxCompute {
			maxCompute = c
		}
	}
	over := 1.0
	if cm.CoresPerNode > 0 && ranksPerNode > cm.CoresPerNode {
		over = float64(ranksPerNode) / float64(cm.CoresPerNode)
	}
	compute := float64(maxCompute) * cm.ComputePerVisit * over

	// Communication: reclassify the recorded remote traffic under the
	// hypothetical grouping. With hash partitioning, destination ranks are
	// uniform, so a remote message crosses nodes with the probability that
	// a random other rank sits on a different node.
	totalRemote := float64(e.Stats.Remote())
	intra := float64(e.Stats.Total()) - totalRemote
	interNodeFrac := 1.0
	if cfg.Ranks > 1 {
		nodes := (cfg.Ranks + ranksPerNode - 1) / ranksPerNode
		sameNodePairs := float64(nodes) * float64(ranksPerNode) * float64(ranksPerNode-1)
		allPairs := float64(cfg.Ranks) * float64(cfg.Ranks-1)
		interNodeFrac = 1 - sameNodePairs/allPairs
		if interNodeFrac < 0 {
			interNodeFrac = 0
		}
	}
	perMsgRemote := interNodeFrac*cm.InterNodePerMsg + (1-interNodeFrac)*cm.InterRankPerMsg
	// Each rank sources/sinks ~1/Ranks of the traffic.
	comm := (intra*cm.IntraRankPerMsg + totalRemote*perMsgRemote) / float64(cfg.Ranks)

	hi, lo := compute, comm
	if comm > compute {
		hi, lo = comm, compute
	}
	return hi + 0.15*lo
}
