package dist

import (
	"math/rand"
	"testing"
	"time"
)

// socketFaultClasses is the socket-level differential matrix: each class
// plus a combined schedule, all recoverable by the retransmit machinery.
func socketFaultClasses() []struct {
	name string
	sf   SocketFaults
} {
	return []struct {
		name string
		sf   SocketFaults
	}{
		{name: "conndrop", sf: SocketFaults{Seed: 21, ConnDrop: 0.15}},
		{name: "partialwrite", sf: SocketFaults{Seed: 22, PartialWrite: 0.15}},
		{name: "sockdelay", sf: SocketFaults{Seed: 23, Delay: 0.5, MaxDelay: 200 * time.Microsecond}},
		{name: "sockcombined", sf: SocketFaults{Seed: 24, ConnDrop: 0.08, PartialWrite: 0.08, Delay: 0.2, MaxDelay: 200 * time.Microsecond}},
	}
}

// TestChaosTCPDifferential is the tentpole acceptance suite over real
// sockets: with every cross-rank envelope crossing loopback TCP through
// the wire codec — under clean sockets, under injected socket faults, and
// under socket faults combined with the message-fault plane — results must
// stay bit-identical to the in-memory fault-free run.
func TestChaosTCPDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(414))
	g := randomGraph(rng, 25+rng.Intn(15), 80+rng.Intn(40), 3)
	tp := randomTemplate(rng, 4, 3)
	fast := 200 * time.Microsecond
	for _, ranks := range []int{1, 2, 4} {
		cfg := Config{Ranks: ranks, RanksPerNode: 2}
		base, err := Run(NewEngine(g, cfg), tp, chaosOpts())
		if err != nil {
			t.Fatalf("ranks %d: fault-free run: %v", ranks, err)
		}

		run := func(label string, ccfg Config) {
			t.Helper()
			e := NewEngine(g, ccfg)
			defer e.Close()
			got, err := Run(e, tp, chaosOpts())
			if err != nil {
				t.Fatalf("ranks %d %s: %v", ranks, label, err)
			}
			assertSameResult(t, label, base, got)
		}

		// Clean sockets: the wire codec and the FT machinery alone.
		ccfg := cfg
		ccfg.TCP = &TCPOptions{}
		ccfg.Faults = &Faults{RetryInterval: fast}
		run("tcp-clean", ccfg)

		// Socket-fault classes over clean message transport.
		for _, sc := range socketFaultClasses() {
			sf := sc.sf
			ccfg := cfg
			ccfg.TCP = &TCPOptions{SocketFaults: &sf}
			ccfg.Faults = &Faults{RetryInterval: fast}
			run("tcp-"+sc.name, ccfg)
		}

		// Message-fault classes (drops, duplicates, reorders, delays,
		// crashes) with every surviving delivery crossing a real socket —
		// the chaos-parity guarantee, including generation-tagged restart
		// after a crash.
		for _, fc := range faultClasses() {
			f := fc.faults
			f.Seed = 5
			ccfg := cfg
			ccfg.Faults = &f
			ccfg.TCP = &TCPOptions{}
			run("tcp-msg-"+fc.name, ccfg)
		}

		// Both planes at once.
		f := Faults{
			Drop: 0.1, Duplicate: 0.15, Reorder: 0.2, Delay: 0.15,
			MaxDelay: 200 * time.Microsecond, RetryInterval: fast, Seed: 6,
		}
		ccfg = cfg
		ccfg.Faults = &f
		ccfg.TCP = &TCPOptions{SocketFaults: &SocketFaults{
			Seed: 31, ConnDrop: 0.05, PartialWrite: 0.05, Delay: 0.1,
			MaxDelay: 200 * time.Microsecond,
		}}
		run("tcp-msg+sock", ccfg)
	}
}

// TestChaosTCPSocketFaultsFire pins the socket-fault schedule to the
// workload: every socket fault class must actually inject on a multi-rank
// run, and lost frames must force retransmissions — otherwise the TCP
// differential would pass vacuously.
func TestChaosTCPSocketFaultsFire(t *testing.T) {
	rng := rand.New(rand.NewSource(415))
	g := randomGraph(rng, 40, 140, 3)
	tp := randomTemplate(rng, 4, 3)
	e := NewEngine(g, Config{
		Ranks: 4, RanksPerNode: 2,
		Faults: &Faults{RetryInterval: 200 * time.Microsecond},
		TCP: &TCPOptions{SocketFaults: &SocketFaults{
			Seed: 17, ConnDrop: 0.1, PartialWrite: 0.1, Delay: 0.2,
			MaxDelay: 200 * time.Microsecond,
		}},
	})
	defer e.Close()
	if _, err := Run(e, tp, chaosOpts()); err != nil {
		t.Fatal(err)
	}
	fs := &e.Stats.Faults
	for _, c := range []struct {
		name string
		v    int64
	}{
		{"frames", fs.SockFrames.Load()},
		{"bytes", fs.SockBytes.Load()},
		{"dials", fs.SockDials.Load()},
		{"conndrops", fs.SockConnDrops.Load()},
		{"partialwrites", fs.SockPartialWrites.Load()},
		{"delays", fs.SockDelays.Load()},
		{"retries", fs.Retries.Load()},
	} {
		if c.v == 0 {
			t.Errorf("%s = 0, socket schedule never exercised that class", c.name)
		}
	}
}

// TestChaosTCPFramesCrossSockets pins the transport boundary: multi-rank
// runs must push cross-rank traffic through real sockets, and single-rank
// runs (everything intra-rank) must touch no socket at all.
func TestChaosTCPFramesCrossSockets(t *testing.T) {
	rng := rand.New(rand.NewSource(416))
	g := randomGraph(rng, 30, 100, 3)
	tp := randomTemplate(rng, 4, 3)
	for _, tc := range []struct {
		ranks     int
		wantWired bool
	}{{ranks: 4, wantWired: true}, {ranks: 1, wantWired: false}} {
		e := NewEngine(g, Config{Ranks: tc.ranks, RanksPerNode: 2, TCP: &TCPOptions{}})
		if _, err := Run(e, tp, chaosOpts()); err != nil {
			e.Close()
			t.Fatal(err)
		}
		frames := e.Stats.Faults.SockFrames.Load()
		e.Close()
		if tc.wantWired && frames == 0 {
			t.Errorf("ranks=%d: no frames crossed a socket", tc.ranks)
		}
		if !tc.wantWired && frames != 0 {
			t.Errorf("ranks=%d: %d frames crossed a socket, want 0 (all traffic intra-rank)", tc.ranks, frames)
		}
	}
}

// TestChaosTCPEngineClose covers the socket fabric's lifecycle edges: Close
// is idempotent, safe on an engine whose fabric was never created, and an
// engine stays reusable for multiple queries before Close.
func TestChaosTCPEngineClose(t *testing.T) {
	rng := rand.New(rand.NewSource(417))
	g := randomGraph(rng, 25, 80, 3)
	tp := randomTemplate(rng, 4, 3)

	unused := NewEngine(g, Config{Ranks: 2, TCP: &TCPOptions{}})
	unused.Close() // fabric never dialed — must not hang or panic
	unused.Close()

	e := NewEngine(g, Config{Ranks: 2, RanksPerNode: 2, TCP: &TCPOptions{}})
	r1, err := Run(e, tp, chaosOpts())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(e, tp, chaosOpts())
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, "second query on one fabric", r1, r2)
	e.Close()
	e.Close()
}
