package dist

import (
	"sync/atomic"

	"approxmatch/internal/core"
	"approxmatch/internal/graph"
	"approxmatch/internal/pattern"
)

// Distributed match enumeration (§4, "Match Enumeration and Counting"):
// enumeration tokens carry a partial assignment of template vertices in a
// connected matching order; each hop extends the assignment by one vertex,
// validated receiver-side, and completed tokens are counted at the rank
// that finishes them. This is the token-passing analogue of the sequential
// enumerator, run over a solution-subgraph state.

// enumToken carries the assignment for order[0:len(assigned)] and is
// addressed to the vertex proposed for order[len(assigned)].
type enumToken struct {
	assigned []graph.VertexID
}

// expandReq asks the target (an already-assigned vertex) to broadcast the
// token to its active neighbors — candidates for the next position.
type expandReq struct {
	assigned []graph.VertexID
	// anchor is the index within the matching order whose assigned vertex
	// is the broadcast source (the target of this message).
	anchor int
}

// CountMatchesDist counts exact matches of t within the given state by
// distributed token passing. The state must already be the exact solution
// subgraph (or any state: the count is of matches present in the state).
// It returns the total match count and leaves the message traffic in the
// engine's "enumerate" phase counters.
func CountMatchesDist(e *Engine, s *core.State, t *pattern.Template) int64 {
	ds := fromCoreState(e, s)
	ds.initOmega(t)
	order, anchors := matchOrderWithAnchors(t)
	g := e.Graph()
	var count atomic.Int64

	validate := func(target graph.VertexID, assigned []graph.VertexID) bool {
		idx := len(assigned)
		q := order[idx]
		if !ds.active[target] || ds.omega[target]&(1<<uint(q)) == 0 {
			return false
		}
		for _, gv := range assigned {
			if gv == target {
				return false // injectivity
			}
		}
		// Template edges from q to earlier order entries must be realized
		// by active, label-acceptable graph edges.
		for pi := 0; pi < idx; pi++ {
			r := order[pi]
			if !t.HasEdge(q, r) {
				continue
			}
			i := g.EdgeIndex(target, assigned[pi])
			if i < 0 || !ds.edgeOn[int(g.AdjOffset(target))+i] {
				return false
			}
			if el, ok := t.EdgeLabelBetween(q, r); ok && el != pattern.Wildcard {
				if g.EdgeLabelAt(target, i) != el {
					return false
				}
			}
		}
		return true
	}

	ds.traverse("enumerate",
		func(seed func(graph.VertexID, any)) {
			// A crash-recovery restart re-runs init and replays the whole
			// enumeration, so the count must restart from zero with it.
			count.Store(0)
			q0 := order[0]
			for v := range ds.active {
				if ds.active[v] && ds.omega[v]&(1<<uint(q0)) != 0 {
					seed(graph.VertexID(v), enumToken{})
				}
			}
		},
		func(ctx *Ctx, target graph.VertexID, data any) {
			switch d := data.(type) {
			case enumToken:
				if !validate(target, d.assigned) {
					return
				}
				next := append(append([]graph.VertexID(nil), d.assigned...), target)
				if len(next) == len(order) {
					count.Add(1)
					return
				}
				// Route to the anchor vertex for the next position, which
				// broadcasts to its neighbors.
				anchor := anchors[len(next)]
				ctx.Send(next[anchor], expandReq{assigned: next, anchor: anchor})
			case expandReq:
				base := int(g.AdjOffset(target))
				ctx.SendToNeighbors(target,
					func(i int, u graph.VertexID) bool { return ds.edgeOn[base+i] },
					func(i int, u graph.VertexID) any { return enumToken{assigned: d.assigned} })
			}
		})
	return count.Load()
}

// matchOrderWithAnchors returns a connected matching order plus, for each
// position > 0, the index of an earlier position whose template vertex is
// adjacent — the broadcast anchor for candidates.
func matchOrderWithAnchors(t *pattern.Template) (order []int, anchors []int) {
	n := t.NumVertices()
	inOrder := make([]bool, n)
	start := 0
	for q := 1; q < n; q++ {
		if t.Degree(q) > t.Degree(start) {
			start = q
		}
	}
	order = append(order, start)
	anchors = append(anchors, -1)
	inOrder[start] = true
	for len(order) < n {
		bestQ, bestScore, bestAnchor := -1, -1, -1
		for q := 0; q < n; q++ {
			if inOrder[q] {
				continue
			}
			score, anchor := 0, -1
			for pi, r := range order {
				if t.HasEdge(q, r) {
					score++
					if anchor == -1 {
						anchor = pi
					}
				}
			}
			if score > bestScore {
				bestQ, bestScore, bestAnchor = q, score, anchor
			}
		}
		order = append(order, bestQ)
		anchors = append(anchors, bestAnchor)
		inOrder[bestQ] = true
	}
	return order, anchors
}
