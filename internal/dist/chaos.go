package dist

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// ErrQuiescenceDeadline reports a traversal that failed to quiesce within
// Faults.Deadline — the fault plane's answer to a livelock (a permanently
// stalled rank, or a fault schedule so hostile that retries cannot drain
// the pending set). It surfaces through the Run* entry points as an
// ordinary error.
var ErrQuiescenceDeadline = errors.New("dist: traversal did not quiesce before the fault-plane deadline")

// Faults configures the injectable fault plane. A nil *Faults in Config
// keeps the perfect in-memory transport (no sequence numbers, no acks —
// the zero-overhead default). A non-nil Faults, even all-zero, switches
// Traverse onto the fault-tolerant path: sequence-numbered sends,
// per-(phase, sender) dedup, ack/retry with capped backoff, and a
// quiescence protocol that counts acknowledged work; the probability
// fields then inject faults on top of it.
//
// All message faults are decided by a seeded hash of (seed, phase, sender,
// seq, attempt): a transmission's fate is a pure function of its identity
// — not of wall time or goroutine interleaving — and a retransmission
// (attempt+1) re-rolls rather than repeating its fate, so no message can
// be dropped forever. Run-level aggregates still vary across runs, because
// sequence numbers are assigned in send order and retry counts depend on
// scheduling; what the seed pins is the schedule function itself. Faults
// apply to cross-rank transmissions only: intra-rank deliveries are
// in-process function calls that cannot be lost, mirroring a real
// deployment.
type Faults struct {
	// Seed drives the deterministic fault schedule.
	Seed int64
	// Drop, Duplicate, Reorder and Delay are per-transmission fault
	// probabilities in [0, 1].
	Drop      float64
	Duplicate float64
	Reorder   float64
	Delay     float64
	// MaxDelay bounds the extra delivery delay (default 1ms). The actual
	// delay is hash-scaled within (0, MaxDelay].
	MaxDelay time.Duration
	// Stall pauses one rank mid-traversal (nil = never).
	Stall *StallEvent
	// Crash crashes one rank mid-traversal: the rank loses its mailbox,
	// dedup table and owned per-vertex state, restores the state from the
	// checkpoint taken at the attempt start, and the traversal restarts
	// (nil = never).
	Crash *CrashEvent
	// Deadline bounds each Traverse call end to end (all recovery attempts
	// included); exceeding it surfaces ErrQuiescenceDeadline instead of
	// hanging. 0 means the 30s default; negative disables the deadline.
	Deadline time.Duration
	// RetryInterval is the base retransmission interval for unacked
	// messages (default 500µs), backed off exponentially per message and
	// capped at 16× the base.
	RetryInterval time.Duration
}

// StallEvent pauses rank Rank for For after it has processed After
// deliveries within a traversal attempt. For <= 0 stalls until the
// traversal aborts — the livelock probe the deadline exists for.
type StallEvent struct {
	Rank  int
	After int
	For   time.Duration
}

// CrashEvent crashes rank Rank after it has processed After deliveries
// within a traversal attempt, Times times per Traverse call (default 1).
type CrashEvent struct {
	Rank  int
	After int
	Times int
}

// withDefaults fills the zero-value knobs.
func (f Faults) withDefaults() Faults {
	if f.MaxDelay <= 0 {
		f.MaxDelay = time.Millisecond
	}
	if f.Deadline == 0 {
		f.Deadline = 30 * time.Second
	}
	if f.RetryInterval <= 0 {
		f.RetryInterval = 500 * time.Microsecond
	}
	return f
}

// FaultStats counts fault-plane events across an engine's lifetime:
// injected faults, the recovery work they forced, and checkpoint activity.
// All fields are atomics — they are bumped from rank goroutines.
type FaultStats struct {
	// Dropped/Duplicated/Reordered/Delayed count injected message faults.
	Dropped    atomic.Int64
	Duplicated atomic.Int64
	Reordered  atomic.Int64
	Delayed    atomic.Int64
	// Retries counts retransmissions of unacked messages.
	Retries atomic.Int64
	// Redeliveries counts duplicate deliveries suppressed by the receiver
	// dedup table (each is re-acked in case the ack was lost).
	Redeliveries atomic.Int64
	// AcksSent counts acknowledgment transmissions (control traffic, kept
	// out of the per-phase message accounting).
	AcksSent atomic.Int64
	// Checkpoints counts per-rank state checkpoints taken at traversal
	// attempt starts; CheckpointBytes sums their serialized size.
	Checkpoints     atomic.Int64
	CheckpointBytes atomic.Int64
	// Crashes counts injected rank crashes; Restores counts checkpoint
	// restorations; Restarts counts traversal attempts beyond the first.
	Crashes  atomic.Int64
	Restores atomic.Int64
	Restarts atomic.Int64
	// Stalls counts injected rank stalls.
	Stalls atomic.Int64
	// Socket-transport counters (TCP rank transport only). SockFrames and
	// SockBytes count frames successfully written to a rank socket;
	// SockDials counts connection establishments (first dials and
	// fault-recovery redials alike); SockConnDrops, SockPartialWrites and
	// SockDelays count injected socket faults; SockWriteErrors counts
	// organic write/dial failures (the frame is lost and retransmitted);
	// SockStaleFrames counts frames from a finished or crashed traversal
	// attempt dropped by the reader's generation check.
	SockFrames        atomic.Int64
	SockBytes         atomic.Int64
	SockDials         atomic.Int64
	SockConnDrops     atomic.Int64
	SockPartialWrites atomic.Int64
	SockDelays        atomic.Int64
	SockWriteErrors   atomic.Int64
	SockStaleFrames   atomic.Int64
}

// faultHash mixes the transmission identity into a 64-bit value (FNV-1a)
// from which all fault decisions for that transmission derive.
func faultHash(seed int64, phase string, src int, seq uint64, attempt int) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(x uint64) {
		for i := 0; i < 8; i++ {
			h ^= x & 0xff
			h *= prime
			x >>= 8
		}
	}
	for i := 0; i < len(phase); i++ {
		h ^= uint64(phase[i])
		h *= prime
	}
	mix(uint64(seed))
	mix(uint64(src))
	mix(seq)
	mix(uint64(attempt))
	return h
}

// roll extracts a uniform [0,1) sample from 16 hash bits at the given lane,
// so the drop/duplicate/reorder/delay decisions of one transmission are
// independent of each other.
func roll(h uint64, lane uint) float64 {
	return float64((h>>(16*lane))&0xffff) / 65536.0
}

// delayedMsg is a chaos-delayed transmission awaiting its due time.
type delayedMsg struct {
	src int
	dst int
	env envelope
	due time.Time
}

// reorderPark is how long a remote-reordered transmission is parked on the
// socket path: the sender cannot splice into a remote mailbox, so the
// frame is instead held back briefly and overtaken by subsequent
// same-connection traffic — a genuine wire-level reordering. The pump
// flushes it on its next tick.
const reorderPark = 100 * time.Microsecond

// chaosTransport applies the injected fault schedule on top of a delivery
// sink — the in-memory mailboxes or the TCP sockets, so one schedule
// drives both paths. Delayed messages are parked here and flushed by the
// traversal's pump goroutine.
type chaosTransport struct {
	t *traversal
	f *Faults
	s sink
	// remote marks a sink without positional delivery (TCP): reorders are
	// parked instead of spliced.
	remote bool

	mu      sync.Mutex
	delayed []delayedMsg
}

func (c *chaosTransport) deliver(dst int, env envelope, key faultKey) {
	// Intra-rank traffic and seeds are in-process calls: always reliable.
	if key.src == dst || env.from < 0 && !env.ack {
		c.t.push(dst, env)
		return
	}
	fs := &c.t.e.Stats.Faults
	h := faultHash(c.f.Seed, c.t.phaseName, key.src, key.seq, key.attempt)
	if env.ack {
		// Give acks an independent schedule lane so a payload and its ack
		// do not share a fate.
		h = faultHash(c.f.Seed, c.t.phaseName, key.src, key.seq^0x5bf03635, key.attempt)
	}
	if roll(h, 0) < c.f.Drop {
		fs.Dropped.Add(1)
		return
	}
	copies := 1
	if roll(h, 1) < c.f.Duplicate {
		fs.Duplicated.Add(1)
		copies = 2
	}
	for i := 0; i < copies; i++ {
		e := env
		if i > 0 {
			// The duplicate gets its own payload via a codec round-trip,
			// so the two deliveries never alias one object — the semantics
			// the wire path has naturally (each frame decodes fresh).
			e = c.t.dupPayload(env)
		}
		switch {
		case roll(h, 2) < c.f.Delay:
			fs.Delayed.Add(1)
			// Scale within (0, MaxDelay] from a lane unused by the
			// decisions above.
			frac := (float64((h>>48)&0xffff) + 1) / 65536.0
			c.park(key.src, dst, e, time.Duration(frac*float64(c.f.MaxDelay)))
		case roll(h, 3) < c.f.Reorder:
			fs.Reordered.Add(1)
			if c.remote {
				c.park(key.src, dst, e, reorderPark)
			} else {
				c.s.emitAt(key.src, dst, e, int(h>>32))
			}
		default:
			c.s.emit(key.src, dst, e)
		}
	}
}

func (c *chaosTransport) park(src, dst int, env envelope, d time.Duration) {
	c.mu.Lock()
	c.delayed = append(c.delayed, delayedMsg{src: src, dst: dst, env: env, due: time.Now().Add(d)})
	c.mu.Unlock()
}

// flushDelayed releases parked messages that have reached their due time;
// with force it releases everything (used on abort so no delivery is
// silently lost by the harness itself).
func (c *chaosTransport) flushDelayed(now time.Time, force bool) {
	c.mu.Lock()
	var due []delayedMsg
	rest := c.delayed[:0]
	for _, m := range c.delayed {
		if force || !m.due.After(now) {
			due = append(due, m)
		} else {
			rest = append(rest, m)
		}
	}
	c.delayed = rest
	c.mu.Unlock()
	for _, m := range due {
		c.s.emit(m.src, m.dst, m.env)
	}
}
