package dist

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"approxmatch/internal/core"
)

// TestDistPartialDifferential is the distributed twin of the core
// anytime-partial property test: a budget-killed distributed run must report
// a complete-prefix of levels whose solutions and Rho columns are
// bit-identical to the unbudgeted distributed run, with unfinished
// prototypes reported unknown.
func TestDistPartialDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(4040))
	partials := 0
	for trial := 0; trial < 6; trial++ {
		g := randomGraph(rng, 90, 260, 3)
		tp := randomTemplate(rng, 4, 3)
		opts := DefaultOptions(2)
		opts.CountMatches = true
		e := NewEngine(g, Config{Ranks: 1 + rng.Intn(5), RanksPerNode: 2})

		tracker := core.NewBudgetTracker(core.Budget{MaxWork: 1 << 62})
		want, err := RunContext(core.WithBudgetTracker(context.Background(), tracker), e, tp, opts)
		if err != nil {
			t.Fatal(err)
		}
		total := tracker.WorkUsed()

		for _, frac := range []float64{0.1, 0.5, 0.9} {
			bopts := opts
			bopts.Budget = core.Budget{MaxWork: int64(frac * float64(total))}
			// Fresh engine: rank ownership mutates during a run.
			got, err := RunContext(context.Background(), NewEngine(g, Config{Ranks: e.cfg.Ranks, RanksPerNode: 2}), tp, bopts)
			if err != nil {
				if !errors.Is(err, core.ErrBudgetExhausted) {
					t.Fatalf("frac=%v: unexpected error %v", frac, err)
				}
				if got == nil || !got.Partial {
					t.Fatalf("frac=%v: budget error without partial result", frac)
				}
				partials++
			} else if got.Partial {
				t.Fatalf("frac=%v: partial without error", frac)
			}

			exact := make(map[int]bool)
			incomplete := false
			for _, lv := range got.Levels {
				if lv.Complete && incomplete {
					t.Fatalf("frac=%v: complete level below an incomplete one", frac)
				}
				if !lv.Complete {
					incomplete = true
				}
				exact[lv.Dist] = lv.Complete
			}
			for pi, p := range got.Set.Protos {
				if !exact[p.Dist] {
					if got.Solutions[pi] != nil {
						t.Errorf("frac=%v: proto %d on incomplete level has a solution", frac, pi)
					}
					continue
				}
				ws, gs := want.Solutions[pi], got.Solutions[pi]
				if gs == nil {
					t.Fatalf("frac=%v: proto %d on complete level missing", frac, pi)
				}
				if !ws.Verts.Equal(gs.Verts) || !ws.Edges.Equal(gs.Edges) || ws.MatchCount != gs.MatchCount {
					t.Errorf("frac=%v: proto %d differs from full run", frac, pi)
				}
				for v := 0; v < g.NumVertices(); v++ {
					if want.Rho.Get(v, pi) != got.Rho.Get(v, pi) {
						t.Fatalf("frac=%v: Rho column %d differs at vertex %d", frac, pi, v)
					}
				}
			}
		}
	}
	if partials == 0 {
		t.Fatal("no distributed trial ever went partial; the differential is vacuous")
	}
}

// TestDistPartialFoldsFaultMetrics checks the abort path still folds the
// engine's fault counters into the result, mirroring the core regression.
func TestDistPartialFoldsFaultMetrics(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := randomGraph(rng, 80, 220, 3)
	tp := randomTemplate(rng, 4, 3)
	opts := DefaultOptions(2)
	opts.Budget = core.Budget{MaxWork: 1}
	res, err := Run(NewEngine(g, Config{Ranks: 3}), tp, opts)
	if !errors.Is(err, core.ErrBudgetExhausted) {
		t.Fatalf("err = %v, want budget exhaustion", err)
	}
	if res == nil || !res.Partial {
		t.Fatal("no partial result")
	}
	for _, lv := range res.Levels {
		if lv.Complete {
			t.Fatalf("level %d complete under a 1-unit budget", lv.Dist)
		}
	}
}
