package dist

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"approxmatch/internal/core"
	"approxmatch/internal/graph"
)

// chaosOpts is the pipeline configuration the differential suite runs
// under: every optimization on, matches counted so the enumeration path is
// exercised under faults too.
func chaosOpts() Options {
	o := DefaultOptions(1)
	o.CountMatches = true
	return o
}

// stripVolatile zeroes the Metrics fields that legitimately differ between
// a fault-free and a faulted run — wall times and the fault-plane counters
// themselves. Everything else (messages, tokens, iterations, searches,
// compaction work) must be bit-identical: recovery replays the same
// logical computation.
func stripVolatile(m core.Metrics) core.Metrics {
	m.CandidateTime, m.LCCTime, m.NLCCTime, m.VerifyTime = 0, 0, 0, 0
	m.FaultDrops, m.FaultDups, m.FaultReorders, m.FaultDelays = 0, 0, 0, 0
	m.Retries, m.Redeliveries = 0, 0
	m.RankCheckpoints, m.CheckpointBytes = 0, 0
	m.RankCrashes, m.RankRestores, m.RankStalls = 0, 0, 0
	m.SockFrames, m.SockBytes, m.SockDials, m.SockConnDrops = 0, 0, 0, 0
	m.SockPartialWrites, m.SockDelays, m.SockWriteErrors, m.SockStaleFrames = 0, 0, 0, 0
	return m
}

// assertSameResult compares a faulted run against the fault-free baseline:
// Rho, per-prototype solution subgraphs and match counts, and the
// non-volatile work counters must all be bit-identical.
func assertSameResult(t *testing.T, label string, base, got *Result) {
	t.Helper()
	if !base.Rho.Equal(got.Rho) {
		t.Fatalf("%s: Rho differs from fault-free run", label)
	}
	if len(base.Solutions) != len(got.Solutions) {
		t.Fatalf("%s: %d solutions, want %d", label, len(got.Solutions), len(base.Solutions))
	}
	for pi, bs := range base.Solutions {
		gs := got.Solutions[pi]
		if !bs.Verts.Equal(gs.Verts) {
			t.Fatalf("%s: proto %d solution vertices differ", label, pi)
		}
		if !bs.Edges.Equal(gs.Edges) {
			t.Fatalf("%s: proto %d solution edges differ", label, pi)
		}
		if bs.MatchCount != gs.MatchCount {
			t.Fatalf("%s: proto %d match count %d, want %d", label, pi, gs.MatchCount, bs.MatchCount)
		}
	}
	if b, g := stripVolatile(base.VerifyMetrics), stripVolatile(got.VerifyMetrics); b != g {
		t.Fatalf("%s: work counters differ\nfault-free: %+v\nfaulted:    %+v", label, b, g)
	}
}

// faultClasses is the differential matrix: one entry per injected fault
// class, plus a combined schedule. Probabilities are aggressive enough
// that every class actually fires on the test workloads (verified by the
// counter assertions below).
func faultClasses() []struct {
	name   string
	faults Faults
	crash  bool
} {
	fast := 200 * time.Microsecond
	return []struct {
		name   string
		faults Faults
		crash  bool
	}{
		{name: "drop", faults: Faults{Drop: 0.3, RetryInterval: fast}},
		{name: "duplicate", faults: Faults{Duplicate: 0.5, RetryInterval: fast}},
		{name: "reorder", faults: Faults{Reorder: 0.5, RetryInterval: fast}},
		{name: "delay", faults: Faults{Delay: 0.5, MaxDelay: 300 * time.Microsecond, RetryInterval: fast}},
		{name: "crash", faults: Faults{RetryInterval: fast, Crash: &CrashEvent{Rank: 0, After: 3}}, crash: true},
		{name: "combined", faults: Faults{
			Drop: 0.15, Duplicate: 0.2, Reorder: 0.3, Delay: 0.2,
			MaxDelay: 200 * time.Microsecond, RetryInterval: fast,
			Crash: &CrashEvent{Rank: 0, After: 10},
		}, crash: true},
	}
}

// TestChaosDifferential is the tentpole acceptance suite: for every fault
// class, every rank count and several seeds, the pipeline's results must be
// bit-identical to the fault-free run on the same deployment.
func TestChaosDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	for trial := 0; trial < 2; trial++ {
		g := randomGraph(rng, 25+rng.Intn(15), 80+rng.Intn(40), 3)
		tp := randomTemplate(rng, 4, 3)
		for _, ranks := range []int{1, 2, 4} {
			cfg := Config{Ranks: ranks, RanksPerNode: 2}
			base, err := Run(NewEngine(g, cfg), tp, chaosOpts())
			if err != nil {
				t.Fatalf("trial %d ranks %d: fault-free run: %v", trial, ranks, err)
			}
			for _, fc := range faultClasses() {
				for _, seed := range []int64{1, 7} {
					f := fc.faults
					f.Seed = seed
					ccfg := cfg
					ccfg.Faults = &f
					e := NewEngine(g, ccfg)
					got, err := Run(e, tp, chaosOpts())
					if err != nil {
						t.Fatalf("trial %d ranks %d %s seed %d: %v", trial, ranks, fc.name, seed, err)
					}
					label := fc.name
					assertSameResult(t, label, base, got)
					if fc.crash {
						fs := &e.Stats.Faults
						if fs.Crashes.Load() == 0 || fs.Restores.Load() == 0 || fs.Checkpoints.Load() == 0 {
							t.Fatalf("%s ranks %d: crash schedule never fired (crashes=%d restores=%d checkpoints=%d)",
								label, ranks, fs.Crashes.Load(), fs.Restores.Load(), fs.Checkpoints.Load())
						}
					}
				}
			}
		}
	}
}

// TestChaosFaultsActuallyFire pins the fault schedule to the workload: on a
// multi-rank run every message fault class must inject at least once, and
// drops must force retries and redeliveries — otherwise the differential
// suite would pass vacuously.
func TestChaosFaultsActuallyFire(t *testing.T) {
	rng := rand.New(rand.NewSource(405))
	g := randomGraph(rng, 40, 140, 3)
	tp := randomTemplate(rng, 4, 3)
	f := &Faults{
		Seed: 3, Drop: 0.2, Duplicate: 0.3, Reorder: 0.3, Delay: 0.3,
		MaxDelay: 200 * time.Microsecond, RetryInterval: 200 * time.Microsecond,
	}
	e := NewEngine(g, Config{Ranks: 4, RanksPerNode: 2, Faults: f})
	if _, err := Run(e, tp, chaosOpts()); err != nil {
		t.Fatal(err)
	}
	fs := &e.Stats.Faults
	for _, c := range []struct {
		name string
		v    int64
	}{
		{"drops", fs.Dropped.Load()},
		{"duplicates", fs.Duplicated.Load()},
		{"reorders", fs.Reordered.Load()},
		{"delays", fs.Delayed.Load()},
		{"retries", fs.Retries.Load()},
		{"redeliveries", fs.Redeliveries.Load()},
		{"acks", fs.AcksSent.Load()},
	} {
		if c.v == 0 {
			t.Errorf("%s = 0, schedule never exercised that class", c.name)
		}
	}
}

// TestChaosTopDownDifferential runs the exploratory entry point under the
// combined fault schedule.
func TestChaosTopDownDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(406))
	g := randomGraph(rng, 30, 100, 3)
	tp := randomTemplate(rng, 4, 3)
	opts := DefaultOptions(2)
	base, err := RunTopDown(NewEngine(g, Config{Ranks: 4, RanksPerNode: 2}), tp, opts)
	if err != nil {
		t.Fatal(err)
	}
	f := &Faults{
		Seed: 11, Drop: 0.2, Duplicate: 0.2, Reorder: 0.3, Delay: 0.2,
		MaxDelay: 200 * time.Microsecond, RetryInterval: 200 * time.Microsecond,
		Crash: &CrashEvent{Rank: 1, After: 5},
	}
	got, err := RunTopDown(NewEngine(g, Config{Ranks: 4, RanksPerNode: 2, Faults: f}), tp, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got.FoundDist != base.FoundDist {
		t.Fatalf("FoundDist = %d, want %d", got.FoundDist, base.FoundDist)
	}
	if got.PrototypesSearched != base.PrototypesSearched {
		t.Fatalf("PrototypesSearched = %d, want %d", got.PrototypesSearched, base.PrototypesSearched)
	}
	if !base.MatchingVertices.Equal(got.MatchingVertices) {
		t.Fatal("MatchingVertices differ from fault-free run")
	}
	for pi, bs := range base.Solutions {
		gs := got.Solutions[pi]
		if (bs == nil) != (gs == nil) {
			t.Fatalf("proto %d: solution presence differs", pi)
		}
		if bs != nil && (!bs.Verts.Equal(gs.Verts) || !bs.Edges.Equal(gs.Edges)) {
			t.Fatalf("proto %d: solution subgraph differs", pi)
		}
	}
	if b, g := stripVolatile(base.VerifyMetrics), stripVolatile(got.VerifyMetrics); b != g {
		t.Fatalf("work counters differ\nfault-free: %+v\nfaulted:    %+v", b, g)
	}
}

// TestChaosFTNoFaults checks the all-zero Faults mode (the overhead
// configuration kernelbench measures): the dedup/ack machinery runs but no
// fault may be injected, and results stay bit-identical.
func TestChaosFTNoFaults(t *testing.T) {
	rng := rand.New(rand.NewSource(407))
	g := randomGraph(rng, 30, 100, 3)
	tp := randomTemplate(rng, 4, 3)
	cfg := Config{Ranks: 4, RanksPerNode: 2}
	base, err := Run(NewEngine(g, cfg), tp, chaosOpts())
	if err != nil {
		t.Fatal(err)
	}
	cfg.Faults = &Faults{}
	e := NewEngine(g, cfg)
	got, err := Run(e, tp, chaosOpts())
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, "ft-no-faults", base, got)
	fs := &e.Stats.Faults
	if fs.Dropped.Load()+fs.Duplicated.Load()+fs.Reordered.Load()+fs.Delayed.Load() != 0 {
		t.Error("faults injected with all-zero probabilities")
	}
	if fs.Crashes.Load()+fs.Stalls.Load() != 0 {
		t.Error("events fired without a schedule")
	}
	if fs.AcksSent.Load() == 0 {
		t.Error("no acks sent — fault-tolerant path not engaged")
	}
}

// TestChaosStallDeadline injects a permanent rank stall: the traversal must
// terminate with ErrQuiescenceDeadline instead of livelocking, within the
// configured deadline (not the test timeout).
func TestChaosStallDeadline(t *testing.T) {
	rng := rand.New(rand.NewSource(408))
	g := randomGraph(rng, 30, 100, 3)
	f := &Faults{
		Seed:     1,
		Stall:    &StallEvent{Rank: 0, After: 0},
		Deadline: 300 * time.Millisecond,
	}
	e := NewEngine(g, Config{Ranks: 2, RanksPerNode: 2, Faults: f})
	// A rank-0-owned vertex receives several messages; the first delivery
	// stalls the rank forever, so its remaining work can never be acked.
	var v0 graph.VertexID
	for v := 0; v < g.NumVertices(); v++ {
		if e.Owner(graph.VertexID(v)) == 0 {
			v0 = graph.VertexID(v)
			break
		}
	}
	start := time.Now()
	err := func() (err error) {
		defer core.RecoverCancel(&err)
		e.Traverse("stalltest",
			func(seed func(graph.VertexID, any)) {
				for i := 0; i < 4; i++ {
					seed(v0, struct{}{})
				}
			},
			func(ctx *Ctx, target graph.VertexID, data any) {})
		return nil
	}()
	if !errors.Is(err, ErrQuiescenceDeadline) {
		t.Fatalf("err = %v, want ErrQuiescenceDeadline", err)
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("deadline took %v to fire", el)
	}
	if e.Stats.Faults.Stalls.Load() == 0 {
		t.Error("stall never fired")
	}
}

// TestChaosStallDeadlinePipeline is the end-to-end version: a full
// distributed run with a permanently stalled rank returns an error through
// the public API rather than hanging.
func TestChaosStallDeadlinePipeline(t *testing.T) {
	rng := rand.New(rand.NewSource(409))
	g := randomGraph(rng, 30, 100, 3)
	tp := randomTemplate(rng, 4, 3)
	f := &Faults{
		Stall:    &StallEvent{Rank: 1, After: 0},
		Deadline: 300 * time.Millisecond,
	}
	_, err := Run(NewEngine(g, Config{Ranks: 4, RanksPerNode: 2, Faults: f}), tp, chaosOpts())
	if !errors.Is(err, ErrQuiescenceDeadline) {
		t.Fatalf("err = %v, want ErrQuiescenceDeadline", err)
	}
}

// TestChaosTransientStall checks the complementary case: a stall shorter
// than the deadline delays the traversal but does not fail it.
func TestChaosTransientStall(t *testing.T) {
	rng := rand.New(rand.NewSource(410))
	g := randomGraph(rng, 25, 80, 3)
	tp := randomTemplate(rng, 4, 3)
	cfg := Config{Ranks: 2, RanksPerNode: 2}
	base, err := Run(NewEngine(g, cfg), tp, chaosOpts())
	if err != nil {
		t.Fatal(err)
	}
	cfg.Faults = &Faults{Stall: &StallEvent{Rank: 0, After: 2, For: 20 * time.Millisecond}}
	e := NewEngine(g, cfg)
	got, err := Run(e, tp, chaosOpts())
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, "transient-stall", base, got)
	if e.Stats.Faults.Stalls.Load() == 0 {
		t.Error("stall never fired")
	}
}

// TestChaosCheckpointRoundTrip exercises the serialization directly:
// restoring a rank from its own checkpoint after scribbling over its state
// must reproduce the original arrays exactly, including wiping the owned
// volatile snapshots.
func TestChaosCheckpointRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(411))
	g := randomGraph(rng, 50, 150, 3)
	e := NewEngine(g, Config{Ranks: 4, RanksPerNode: 2})
	s := newDistState(e)
	for v := 0; v < g.NumVertices(); v++ {
		if rng.Intn(4) > 0 {
			s.active[v] = true
			s.omega[v] = rng.Uint64() | 1
		}
	}
	for i := range s.edgeOn {
		s.edgeOn[i] = rng.Intn(2) == 0
		s.nbrOmega[i] = rng.Uint64()
		s.nbrFresh[i] = rng.Intn(2) == 0
	}
	// Deactivated vertices hold no durable edge state (the deactivate
	// invariant the compact layout relies on).
	for v := 0; v < g.NumVertices(); v++ {
		if !s.active[v] {
			s.omega[v] = 0
			base := int(g.AdjOffset(graph.VertexID(v)))
			for i := range g.Neighbors(graph.VertexID(v)) {
				s.edgeOn[base+i] = false
			}
		}
	}

	const rank = 1
	ckpt := s.checkpointRank(rank)
	wantActive := append([]bool(nil), s.active...)
	wantOmega := append([]uint64(nil), s.omega...)
	wantEdge := append([]bool(nil), s.edgeOn...)

	// Scribble over the rank's owned state, then restore.
	for v := 0; v < g.NumVertices(); v++ {
		if e.Owner(graph.VertexID(v)) != rank {
			continue
		}
		s.active[v] = !s.active[v]
		s.omega[v] ^= 0xdeadbeef
		base := int(g.AdjOffset(graph.VertexID(v)))
		for i := range g.Neighbors(graph.VertexID(v)) {
			s.edgeOn[base+i] = !s.edgeOn[base+i]
		}
	}
	s.restoreRank(rank, ckpt)

	for v := 0; v < g.NumVertices(); v++ {
		vid := graph.VertexID(v)
		if e.Owner(vid) != rank {
			// Other ranks' state must be untouched.
			if s.active[v] != wantActive[v] || s.omega[v] != wantOmega[v] {
				t.Fatalf("vertex %d (foreign rank) modified by restore", v)
			}
			continue
		}
		if s.active[v] != wantActive[v] {
			t.Fatalf("vertex %d: active = %v, want %v", v, s.active[v], wantActive[v])
		}
		if s.omega[v] != wantOmega[v] {
			t.Fatalf("vertex %d: omega = %#x, want %#x", v, s.omega[v], wantOmega[v])
		}
		base := int(g.AdjOffset(vid))
		for i := range g.Neighbors(vid) {
			if s.edgeOn[base+i] != wantEdge[base+i] {
				t.Fatalf("vertex %d slot %d: edgeOn = %v, want %v", v, i, s.edgeOn[base+i], wantEdge[base+i])
			}
			if s.nbrOmega[base+i] != 0 || s.nbrFresh[base+i] {
				t.Fatalf("vertex %d slot %d: volatile snapshot not wiped", v, i)
			}
		}
	}
}

// TestChaosDeterministicSchedule pins the schedule function: a
// transmission's fate is a pure function of (seed, phase, src, seq,
// attempt). Replaying the same transmission identities through fresh
// chaos transports must reproduce the exact per-message outcomes, a
// different seed must produce a different schedule, and a retry
// (attempt+1) must re-roll rather than repeat a drop.
func TestChaosDeterministicSchedule(t *testing.T) {
	g := randomGraph(rand.New(rand.NewSource(412)), 8, 20, 2)
	replay := func(seed int64) (fates []string, stats [4]int64) {
		f := Faults{Seed: seed, Drop: 0.25, Duplicate: 0.25, Reorder: 0.25, Delay: 0.25}
		fv := f.withDefaults()
		e := NewEngine(g, Config{Ranks: 2, RanksPerNode: 2})
		tr := &traversal{e: e, phase: e.Stats.Phase("det"), phaseName: "det",
			boxes: make([]*mailbox, 2), f: &fv, ft: true}
		for i := range tr.boxes {
			tr.boxes[i] = &mailbox{}
			tr.boxes[i].cond = sync.NewCond(&tr.boxes[i].mu)
		}
		ct := &chaosTransport{t: tr, f: &fv, s: mailboxSink{tr}}
		fs := &e.Stats.Faults
		for seq := uint64(1); seq <= 200; seq++ {
			before := [4]int64{fs.Dropped.Load(), fs.Duplicated.Load(), fs.Reordered.Load(), fs.Delayed.Load()}
			qlen := len(tr.boxes[1].q)
			ct.deliver(1, envelope{from: 0, seq: seq}, faultKey{src: 0, seq: seq, attempt: 1})
			fate := fmt.Sprintf("d%d u%d r%d l%d q%d",
				fs.Dropped.Load()-before[0], fs.Duplicated.Load()-before[1],
				fs.Reordered.Load()-before[2], fs.Delayed.Load()-before[3],
				len(tr.boxes[1].q)-qlen)
			fates = append(fates, fate)
		}
		stats = [4]int64{fs.Dropped.Load(), fs.Duplicated.Load(), fs.Reordered.Load(), fs.Delayed.Load()}
		return fates, stats
	}
	f1, s1 := replay(99)
	f2, s2 := replay(99)
	if s1 != s2 {
		t.Fatalf("same seed, different totals: %v vs %v", s1, s2)
	}
	for i := range f1 {
		if f1[i] != f2[i] {
			t.Fatalf("seq %d: fate %q vs %q — schedule not a pure function of identity", i+1, f1[i], f2[i])
		}
	}
	_, s3 := replay(100)
	if s1 == s3 {
		t.Fatal("different seeds produced identical schedules")
	}
	for _, c := range s1 {
		if c == 0 {
			t.Fatalf("a fault class never fired over 200 transmissions: %v", s1)
		}
	}
	// Retry re-roll: for any seq dropped at attempt 1, some later attempt
	// must survive (the at-least-once argument depends on it).
	fv := Faults{Seed: 99, Drop: 0.25}.withDefaults()
	for seq := uint64(1); seq <= 50; seq++ {
		if roll(faultHash(fv.Seed, "det", 0, seq, 1), 0) >= fv.Drop {
			continue
		}
		survived := false
		for attempt := 2; attempt <= 20; attempt++ {
			if roll(faultHash(fv.Seed, "det", 0, seq, attempt), 0) >= fv.Drop {
				survived = true
				break
			}
		}
		if !survived {
			t.Fatalf("seq %d dropped across 20 attempts at p=0.25 — attempts not re-rolled", seq)
		}
	}
}

// TestChaosQuiescenceExactness re-runs the quiescence accounting check on
// the fault-tolerant path: with faults injected, every logical message is
// still visited exactly once (dedup), so the visit count and per-phase
// message accounting match the perfect run.
func TestChaosQuiescenceExactness(t *testing.T) {
	rng := rand.New(rand.NewSource(413))
	g := randomGraph(rng, 50, 150, 2)
	count := func(f *Faults) (int64, int64) {
		e := NewEngine(g, Config{Ranks: 4, RanksPerNode: 2, Faults: f})
		var visits atomic.Int64
		type ripple struct{ ttl int }
		e.Traverse("test",
			func(seed func(graph.VertexID, any)) { seed(0, ripple{ttl: 3}) },
			func(ctx *Ctx, target graph.VertexID, data any) {
				visits.Add(1)
				r := data.(ripple)
				if r.ttl == 0 {
					return
				}
				ctx.SendToNeighbors(target,
					func(int, graph.VertexID) bool { return true },
					func(int, graph.VertexID) any { return ripple{ttl: r.ttl - 1} })
			})
		return visits.Load(), e.Stats.Phase("test").Total()
	}
	baseVisits, baseMsgs := count(nil)
	for _, f := range []*Faults{
		{},
		{Seed: 5, Drop: 0.3, RetryInterval: 200 * time.Microsecond},
		{Seed: 5, Duplicate: 0.5},
		{Seed: 5, Reorder: 0.5},
	} {
		visits, msgs := count(f)
		if visits != baseVisits {
			t.Errorf("faults %+v: %d visits, want %d", f, visits, baseVisits)
		}
		if msgs != baseMsgs {
			t.Errorf("faults %+v: %d accounted messages, want %d", f, msgs, baseMsgs)
		}
	}
}
