package dist

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Coordinator protocol: how a front-end (amatchd) routes queries to a
// group of amatchrank worker processes, each serving the full graph.
// Frames reuse the rank-transport wire format (wire.go). On connect the
// worker sends one hello frame:
//
//	[uvarint numVertices][uvarint numDirectedEdges][uvarint graphSignature]
//
// after which the connection is a lockstep request/response stream:
//
//	query  frame: [1B endpoint][request body ...]
//	result frame: [uvarint status][uvarint len(contentType)][contentType]
//	              [response body ...]
//
// The hello's graph signature (GraphSignature) is validated at dial time
// against the rest of the group — and optionally against the
// coordinator's own graph — so a worker serving a different graph, file
// or relabeling is rejected before it can answer queries against the
// wrong data. This is what makes the coordinator's byte-identity claim
// safe to rely on: same graph, same code path, same bytes.

// Query endpoints routed through a rank group.
const (
	EndpointMatch   byte = 1
	EndpointExplore byte = 2
)

// HelloInfo is the worker's self-description sent on every connection.
type HelloInfo struct {
	Vertices  int
	Edges     int // directed edges
	Signature uint64
}

// QueryHandler serves one routed query on the worker side. It returns the
// HTTP-equivalent status, the content type and the response body; the
// coordinator relays all three verbatim.
type QueryHandler func(endpoint byte, body []byte) (status int, contentType string, resp []byte)

func appendHello(dst []byte, h HelloInfo) []byte {
	body := binary.AppendUvarint(nil, uint64(h.Vertices))
	body = binary.AppendUvarint(body, uint64(h.Edges))
	body = binary.AppendUvarint(body, h.Signature)
	return appendFrame(dst, frameHello, body)
}

func parseHello(body []byte) (HelloInfo, error) {
	var h HelloInfo
	v, body, err := getUvarint(body)
	if err != nil {
		return h, err
	}
	e, body, err := getUvarint(body)
	if err != nil {
		return h, err
	}
	sig, _, err := getUvarint(body)
	if err != nil {
		return h, err
	}
	h.Vertices, h.Edges, h.Signature = int(v), int(e), sig
	return h, nil
}

// RankServer is the worker-side serve loop: it greets each connection
// with a hello frame, then answers query frames in lockstep. amatchrank
// wraps the full HTTP serving stack (scheduler, caches, budgets) behind
// the QueryHandler, so a routed query takes exactly the code path a
// direct HTTP request would.
type RankServer struct {
	ln    net.Listener
	hello HelloInfo
	h     QueryHandler

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewRankServer wraps an existing listener; Serve starts accepting.
func NewRankServer(ln net.Listener, hello HelloInfo, h QueryHandler) *RankServer {
	return &RankServer{ln: ln, hello: hello, h: h, conns: make(map[net.Conn]struct{})}
}

// Addr returns the listen address.
func (s *RankServer) Addr() string { return s.ln.Addr().String() }

// Serve accepts and serves connections until Close. It returns nil after
// a graceful Close, the accept error otherwise.
func (s *RankServer) Serve() error {
	for {
		c, err := s.ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			return nil
		}
		s.conns[c] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.serveConn(c)
			s.mu.Lock()
			delete(s.conns, c)
			s.mu.Unlock()
		}()
	}
}

// Close stops accepting, tears down live connections and waits for their
// handlers to return.
func (s *RankServer) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.ln.Close()
	s.wg.Wait()
}

func (s *RankServer) serveConn(c net.Conn) {
	defer c.Close()
	if _, err := c.Write(appendHello(nil, s.hello)); err != nil {
		return
	}
	br := bufio.NewReader(c)
	for {
		class, body, err := readFrame(br)
		if err != nil || class != frameQuery || len(body) < 1 {
			return
		}
		status, ct, resp := s.h(body[0], body[1:])
		out := binary.AppendUvarint(nil, uint64(status))
		out = binary.AppendUvarint(out, uint64(len(ct)))
		out = append(out, ct...)
		out = append(out, resp...)
		if _, err := c.Write(appendFrame(nil, frameResult, out)); err != nil {
			return
		}
	}
}

// Coordinator routes queries round-robin over a rank group with failover:
// a worker whose connection fails is skipped (and lazily redialed on its
// next turn), and the query moves to the next worker. Context expiry is
// surfaced, not failed over — a slow query retried elsewhere would only
// double the work.
type Coordinator struct {
	workers []*workerConn
	hello   HelloInfo
	timeout time.Duration
	next    atomic.Uint64
}

// workerConn is one worker's client half; the mutex serializes the
// lockstep request/response exchange.
type workerConn struct {
	addr    string
	timeout time.Duration
	want    HelloInfo

	mu sync.Mutex
	c  net.Conn
	br *bufio.Reader
}

// ErrNoWorkers reports a rank group where every worker failed.
var ErrNoWorkers = errors.New("dist: no reachable rank worker")

// DialGroup connects to every worker, validates that the group serves one
// graph (all hello signatures equal — and equal to expectSig when
// non-zero, the coordinator's own graph), and returns the coordinator.
// timeout bounds each dial and each query exchange (0 = 5s). Each worker
// gets exactly one dial attempt; see DialGroupWithin for startup
// resilience.
func DialGroup(addrs []string, expectSig uint64, timeout time.Duration) (*Coordinator, error) {
	return DialGroupWithin(addrs, expectSig, timeout, 0)
}

// DialGroupWithin is DialGroup with a startup budget: a worker whose dial
// or hello fails is retried with capped exponential backoff plus jitter
// until budget elapses, so a coordinator started in parallel with its
// workers (the common deployment race) waits for them instead of aborting
// on the first refused connection. budget <= 0 means one attempt per
// worker. Permanent mismatches — a worker serving the wrong graph
// signature, or a split group — fail immediately: waiting cannot fix a
// wrong graph.
func DialGroupWithin(addrs []string, expectSig uint64, timeout, budget time.Duration) (*Coordinator, error) {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	if len(addrs) == 0 {
		return nil, errors.New("dist: empty rank group")
	}
	var deadline time.Time
	if budget > 0 {
		deadline = time.Now().Add(budget)
	}
	// Jitter is deterministic per call group but spread across workers so
	// restarting coordinators do not retry in lockstep.
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	co := &Coordinator{timeout: timeout}
	for i, addr := range addrs {
		w := &workerConn{addr: addr, timeout: timeout}
		hello, err := w.connect()
		for attempt := 0; err != nil && !deadline.IsZero(); attempt++ {
			// Capped exponential backoff: 50ms, 100ms, ... up to 2s, each
			// scaled by a jitter factor in [0.5, 1).
			back := 50 * time.Millisecond << uint(min(attempt, 6))
			if back > 2*time.Second {
				back = 2 * time.Second
			}
			back = time.Duration(float64(back) * (0.5 + rng.Float64()/2))
			if remaining := time.Until(deadline); remaining <= 0 {
				break
			} else if back > remaining {
				back = remaining
			}
			time.Sleep(back)
			hello, err = w.connect()
		}
		if err != nil {
			co.Close()
			return nil, fmt.Errorf("dist: rank worker %s: %w", addr, err)
		}
		if expectSig != 0 && hello.Signature != expectSig {
			co.Close()
			w.close()
			return nil, fmt.Errorf("dist: rank worker %s serves graph signature %016x, coordinator has %016x",
				addr, hello.Signature, expectSig)
		}
		if i == 0 {
			co.hello = hello
		} else if hello.Signature != co.hello.Signature {
			co.Close()
			w.close()
			return nil, fmt.Errorf("dist: rank group is split: %s serves signature %016x, %s serves %016x",
				addr, hello.Signature, addrs[0], co.hello.Signature)
		}
		w.want = hello
		co.workers = append(co.workers, w)
	}
	return co, nil
}

// Hello returns the group's common graph description.
func (co *Coordinator) Hello() HelloInfo { return co.hello }

// Size returns the number of workers in the group.
func (co *Coordinator) Size() int { return len(co.workers) }

// Do routes one query to the group. Round-robin with failover on
// connection errors; a context cancellation or deadline is returned
// as-is.
func (co *Coordinator) Do(ctx context.Context, endpoint byte, body []byte) (status int, contentType string, resp []byte, err error) {
	start := co.next.Add(1)
	var lastErr error
	for i := 0; i < len(co.workers); i++ {
		w := co.workers[(start+uint64(i))%uint64(len(co.workers))]
		status, contentType, resp, err = w.roundTrip(ctx, endpoint, body)
		if err == nil {
			return status, contentType, resp, nil
		}
		if ctx.Err() != nil {
			return 0, "", nil, ctx.Err()
		}
		// The conn deadline is derived from the ctx deadline and can fire
		// a hair before ctx.Err() flips; an expired deadline is a context
		// timeout either way, not a worker failure to retry elsewhere.
		if d, ok := ctx.Deadline(); ok && !time.Now().Before(d) {
			return 0, "", nil, context.DeadlineExceeded
		}
		lastErr = err
	}
	return 0, "", nil, fmt.Errorf("%w: %w", ErrNoWorkers, lastErr)
}

// Close tears down every worker connection.
func (co *Coordinator) Close() {
	for _, w := range co.workers {
		w.close()
	}
}

// dialWorker dials a worker and reads its hello greeting.
func dialWorker(addr string, timeout time.Duration) (net.Conn, *bufio.Reader, HelloInfo, error) {
	c, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, nil, HelloInfo{}, err
	}
	br := bufio.NewReaderSize(c, 64<<10)
	c.SetReadDeadline(time.Now().Add(timeout))
	class, body, err := readFrame(br)
	c.SetReadDeadline(time.Time{})
	if err != nil {
		c.Close()
		return nil, nil, HelloInfo{}, fmt.Errorf("reading hello: %w", err)
	}
	if class != frameHello {
		c.Close()
		return nil, nil, HelloInfo{}, fmt.Errorf("expected hello frame, got class 0x%02x", class)
	}
	hello, err := parseHello(body)
	if err != nil {
		c.Close()
		return nil, nil, HelloInfo{}, fmt.Errorf("parsing hello: %w", err)
	}
	return c, br, hello, nil
}

// connect dials the worker and reads its hello.
func (w *workerConn) connect() (HelloInfo, error) {
	c, br, hello, err := dialWorker(w.addr, w.timeout)
	if err != nil {
		return HelloInfo{}, err
	}
	w.mu.Lock()
	w.c, w.br = c, br
	w.mu.Unlock()
	return hello, nil
}

func (w *workerConn) close() {
	w.mu.Lock()
	if w.c != nil {
		w.c.Close()
		w.c, w.br = nil, nil
	}
	w.mu.Unlock()
}

// roundTrip performs one lockstep exchange, redialing (and re-validating
// the graph signature) if the connection was lost.
func (w *workerConn) roundTrip(ctx context.Context, endpoint byte, body []byte) (int, string, []byte, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.c == nil {
		hello, err := w.reconnectLocked()
		if err != nil {
			return 0, "", nil, err
		}
		if hello.Signature != w.want.Signature {
			w.c.Close()
			w.c, w.br = nil, nil
			return 0, "", nil, fmt.Errorf("dist: worker %s changed graph signature %016x -> %016x",
				w.addr, w.want.Signature, hello.Signature)
		}
	}
	deadline := time.Now().Add(w.timeout)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	w.c.SetDeadline(deadline)
	defer func() {
		if w.c != nil {
			w.c.SetDeadline(time.Time{})
		}
	}()

	q := make([]byte, 0, len(body)+8)
	q = append(q, endpoint)
	q = append(q, body...)
	if _, err := w.c.Write(appendFrame(nil, frameQuery, q)); err != nil {
		w.dropLocked()
		return 0, "", nil, err
	}
	class, rbody, err := readFrame(w.br)
	if err != nil {
		w.dropLocked()
		return 0, "", nil, err
	}
	if class != frameResult {
		w.dropLocked()
		return 0, "", nil, fmt.Errorf("dist: expected result frame, got class 0x%02x", class)
	}
	status, rbody, err := getUvarint(rbody)
	if err != nil {
		return 0, "", nil, err
	}
	ctLen, rbody, err := getUvarint(rbody)
	if err != nil || ctLen > uint64(len(rbody)) {
		return 0, "", nil, errTruncated
	}
	return int(status), string(rbody[:ctLen]), rbody[ctLen:], nil
}

// reconnectLocked redials under the held mutex.
func (w *workerConn) reconnectLocked() (HelloInfo, error) {
	c, br, hello, err := dialWorker(w.addr, w.timeout)
	if err != nil {
		return HelloInfo{}, err
	}
	w.c, w.br = c, br
	return hello, nil
}

func (w *workerConn) dropLocked() {
	if w.c != nil {
		w.c.Close()
		w.c, w.br = nil, nil
	}
}
