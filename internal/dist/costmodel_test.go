package dist

import (
	"math/rand"
	"testing"

	"approxmatch/internal/pattern"
)

func TestCostModelProperties(t *testing.T) {
	g := randomGraph(rand.New(rand.NewSource(110)), 60, 180, 3)
	e := NewEngine(g, Config{Ranks: 16, RanksPerNode: 4})
	tp := pattern.MustNew([]pattern.Label{0, 1, 2},
		[]pattern.Edge{{I: 0, J: 1}, {I: 1, J: 2}, {I: 0, J: 2}})
	if _, err := Run(e, tp, DefaultOptions(1)); err != nil {
		t.Fatal(err)
	}
	cm := DefaultCostModel()
	// Monotone in network cost: pricier inter-node messages cannot make a
	// low-locality grouping cheaper.
	base := ModeledTime(e, cm, 1)
	cm2 := cm
	cm2.InterNodePerMsg *= 4
	if ModeledTime(e, cm2, 1) < base {
		t.Error("higher network cost lowered modeled time")
	}
	// Oversubscription kicks in only beyond CoresPerNode.
	cm3 := cm
	cm3.CoresPerNode = 4
	within := ModeledTime(e, cm3, 4)
	beyond := ModeledTime(e, cm3, 16)
	if beyond <= within {
		t.Errorf("oversubscription had no effect: %v vs %v", within, beyond)
	}
	// Degenerate ranksPerNode is clamped.
	if ModeledTime(e, cm, 0) <= 0 {
		t.Error("zero ranks-per-node mishandled")
	}
}

func TestPhaseStatsHelpers(t *testing.T) {
	var ms MessageStats
	p := ms.Phase("x")
	p.IntraRank.Add(3)
	p.InterRank.Add(2)
	p.InterNode.Add(1)
	if p.Total() != 6 || p.Remote() != 3 {
		t.Errorf("total=%d remote=%d", p.Total(), p.Remote())
	}
	if ms.Total() != 6 || ms.Remote() != 3 || ms.InterNodeTotal() != 1 {
		t.Error("aggregate stats wrong")
	}
	if len(ms.Phases()) != 1 || ms.Phases()[0] != "x" {
		t.Errorf("phases = %v", ms.Phases())
	}
	// Same phase object on re-lookup.
	if ms.Phase("x") != p {
		t.Error("phase not cached")
	}
}

func TestConfigNodes(t *testing.T) {
	cases := []struct {
		cfg  Config
		want int
	}{
		{Config{Ranks: 8, RanksPerNode: 4}, 2},
		{Config{Ranks: 9, RanksPerNode: 4}, 3},
		{Config{Ranks: 4}, 1}, // ranksPerNode defaults to ranks
		{Config{}, 1},         // fully defaulted
		{Config{Ranks: 1, RanksPerNode: 36}, 1},
	}
	for i, c := range cases {
		if got := c.cfg.Nodes(); got != c.want {
			t.Errorf("case %d: Nodes() = %d, want %d", i, got, c.want)
		}
	}
}
