package dist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"approxmatch/internal/constraint"
	"approxmatch/internal/graph"
	"approxmatch/internal/pattern"
)

// Wire format for the TCP rank transport and the coordinator protocol.
//
// Every message on a socket is one frame:
//
//	[4B big-endian length][1B version][1B frame class][payload ...]
//
// where length counts the version byte, the class byte and the payload.
// The version byte is checked on every frame, so a protocol change can
// never be silently misparsed as data. Frame classes:
//
//	frameEnvelope  rank-to-rank traversal envelope (payload below)
//	frameHello     worker greeting: wire version, graph shape, signature
//	frameQuery     coordinator -> worker query ([1B endpoint][body])
//	frameResult    worker -> coordinator response
//
// An envelope frame's payload is:
//
//	[uvarint gen][1B flags][uvarint from][uvarint seq][1B locality class]
//	[uvarint target]                      -- always
//	[1B payload tag][payload bytes ...]   -- only when flags&envFlagAck == 0
//
// gen is the traversal generation: each fault-tolerant traversal attempt
// bumps it, and the reader drops frames whose generation is not current —
// a socket can hold frames from a finished or crashed attempt, and their
// sequence numbers would collide with the new attempt's dedup space.
// Acks carry no payload; the (from, seq) pair identifies the payload
// being acknowledged.
//
// Visitor payloads are resolved against a wireSession: one traversal runs
// one (template, walk) pair, so tokens and walk-acks encode only their
// variable part (the path) and re-attach the session's canonical template
// and walk pointers on decode. This is what makes the codec a faithful
// stand-in for pointer delivery: the decoded payload is behaviorally
// identical, but never aliases the sender's object.

const (
	// wireVersion is bumped on any incompatible frame or payload change.
	wireVersion = 1
	// maxFrameLen bounds a frame's declared length; a hostile or corrupt
	// length prefix is rejected before any allocation happens.
	maxFrameLen = 16 << 20
	// frameHeaderLen is the version byte plus the class byte.
	frameHeaderLen = 2
)

// Frame classes.
const (
	frameEnvelope byte = 0x01
	frameHello    byte = 0x02
	frameQuery    byte = 0x03
	frameResult   byte = 0x04
)

// Envelope flag bits.
const envFlagAck byte = 0x01

// Payload tags for the visitor message types in algorithms.go and
// enumerate.go.
const (
	payloadStartBroadcast byte = 0x01
	payloadNbrInfo        byte = 0x02
	payloadToken          byte = 0x03
	payloadWalkAck        byte = 0x04
	payloadEnumToken      byte = 0x05
	payloadExpandReq      byte = 0x06
)

// maxWireIDs caps decoded id-list lengths when no session bound applies —
// far above any template the engine accepts (omega is a 64-bit mask), so
// the cap only ever rejects hostile input.
const maxWireIDs = 4096

var (
	errFrameTooLarge  = errors.New("dist: frame length exceeds limit")
	errFrameTooShort  = errors.New("dist: frame shorter than header")
	errWireVersion    = errors.New("dist: wire version mismatch")
	errTruncated      = errors.New("dist: truncated wire data")
	errUnknownPayload = errors.New("dist: unknown payload tag")
	errNoSession      = errors.New("dist: walk payload outside a walk session")
	errWireBounds     = errors.New("dist: wire value out of bounds")
	// errStaleGen marks an envelope from a previous traversal attempt;
	// the reader drops it silently (it is expected traffic, not damage).
	errStaleGen = errors.New("dist: stale traversal generation")
)

// wireSession is the decode context of one traversal attempt: the
// generation number plus the canonical template/walk the attempt runs, so
// token and walk-ack payloads can re-attach their shared pointers, and a
// vertex bound so hostile ids are rejected before they reach kernel code.
type wireSession struct {
	gen      uint64
	tpl      *pattern.Template
	walk     *constraint.Walk
	vertices int
}

// appendFrame appends one framed message to dst and returns the extended
// slice.
func appendFrame(dst []byte, class byte, body []byte) []byte {
	n := frameHeaderLen + len(body)
	dst = binary.BigEndian.AppendUint32(dst, uint32(n))
	dst = append(dst, wireVersion, class)
	return append(dst, body...)
}

// readFrame reads one frame from r. The declared length is validated
// before any proportional allocation: a hostile prefix costs at most one
// bounded read, never a maxFrameLen allocation for bytes that never
// arrive (the body buffer grows only as data is actually read).
func readFrame(r io.Reader) (class byte, body []byte, err error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrameLen {
		return 0, nil, errFrameTooLarge
	}
	if n < frameHeaderLen {
		return 0, nil, errFrameTooShort
	}
	var vc [2]byte
	if _, err := io.ReadFull(r, vc[:]); err != nil {
		return 0, nil, readErr(err)
	}
	if vc[0] != wireVersion {
		return 0, nil, fmt.Errorf("%w: got %d, want %d", errWireVersion, vc[0], wireVersion)
	}
	rest := int(n) - frameHeaderLen
	body, err = readBounded(r, rest)
	if err != nil {
		return 0, nil, err
	}
	return vc[1], body, nil
}

// readBounded reads exactly n bytes, growing the buffer in steps so a
// hostile length prefix never forces a large up-front allocation.
func readBounded(r io.Reader, n int) ([]byte, error) {
	const step = 64 << 10
	buf := make([]byte, 0, min(n, step))
	for len(buf) < n {
		chunk := min(n-len(buf), step)
		start := len(buf)
		buf = append(buf, make([]byte, chunk)...)
		if _, err := io.ReadFull(r, buf[start:]); err != nil {
			return nil, readErr(err)
		}
	}
	return buf, nil
}

// readErr normalizes a mid-frame EOF to ErrUnexpectedEOF so callers can
// treat any truncation uniformly.
func readErr(err error) error {
	if errors.Is(err, io.EOF) {
		return io.ErrUnexpectedEOF
	}
	return err
}

// encodeEnvelope appends env's wire form (an envelope-frame payload,
// without the frame header) to dst. It returns an error for payload types
// without a codec — those cannot cross a socket.
func encodeEnvelope(dst []byte, env envelope, gen uint64) ([]byte, error) {
	dst = binary.AppendUvarint(dst, gen)
	var flags byte
	if env.ack {
		flags |= envFlagAck
	}
	dst = append(dst, flags)
	dst = binary.AppendUvarint(dst, uint64(uint32(env.from)))
	dst = binary.AppendUvarint(dst, env.seq)
	dst = append(dst, env.class)
	dst = binary.AppendUvarint(dst, uint64(env.target))
	if env.ack {
		return dst, nil
	}
	return encodePayload(dst, env.data)
}

// decodeEnvelope parses an envelope-frame payload against the session.
// wantGen is the only accepted generation; pass anyGen to accept all
// (fuzzing and round-trip tests). A stale generation returns errStaleGen
// before the payload is touched — the payload belongs to a different
// (template, walk) binding and must not be decoded against this one.
const anyGen = ^uint64(0)

func decodeEnvelope(b []byte, ws wireSession, wantGen uint64) (envelope, error) {
	var env envelope
	gen, b, err := getUvarint(b)
	if err != nil {
		return env, err
	}
	if wantGen != anyGen && gen != wantGen {
		return env, errStaleGen
	}
	if len(b) == 0 {
		return env, errTruncated
	}
	flags := b[0]
	b = b[1:]
	env.ack = flags&envFlagAck != 0
	from, b, err := getUvarint(b)
	if err != nil {
		return env, err
	}
	if from > uint64(^uint32(0)>>1) {
		return env, errWireBounds // negative "from" never crosses a socket
	}
	env.from = int32(from)
	if env.seq, b, err = getUvarint(b); err != nil {
		return env, err
	}
	if len(b) == 0 {
		return env, errTruncated
	}
	env.class = b[0]
	b = b[1:]
	if env.class > classInterNode {
		return env, errWireBounds
	}
	target, b, err := getUvarint(b)
	if err != nil {
		return env, err
	}
	if target > uint64(^uint32(0)) || ws.vertices > 0 && target >= uint64(ws.vertices) {
		return env, errWireBounds
	}
	env.target = graph.VertexID(target)
	if env.ack {
		return env, nil
	}
	if env.data, err = decodePayload(b, ws); err != nil {
		return env, err
	}
	return env, nil
}

// encodePayload appends the tagged wire form of a visitor payload.
func encodePayload(dst []byte, data any) ([]byte, error) {
	switch d := data.(type) {
	case startBroadcast:
		return append(dst, payloadStartBroadcast), nil
	case nbrInfo:
		dst = append(dst, payloadNbrInfo)
		dst = binary.AppendUvarint(dst, uint64(d.from))
		return binary.AppendUvarint(dst, d.omega), nil
	case token:
		dst = append(dst, payloadToken)
		return appendIDs(dst, d.path), nil
	case ack:
		return append(dst, payloadWalkAck), nil
	case enumToken:
		dst = append(dst, payloadEnumToken)
		return appendIDs(dst, d.assigned), nil
	case expandReq:
		dst = append(dst, payloadExpandReq)
		dst = appendIDs(dst, d.assigned)
		return binary.AppendUvarint(dst, uint64(d.anchor)), nil
	default:
		return nil, fmt.Errorf("dist: payload type %T has no wire codec", data)
	}
}

// decodePayload parses one tagged visitor payload against the session.
func decodePayload(b []byte, ws wireSession) (any, error) {
	if len(b) == 0 {
		return nil, errTruncated
	}
	tag := b[0]
	b = b[1:]
	switch tag {
	case payloadStartBroadcast:
		return startBroadcast{}, nil
	case payloadNbrInfo:
		from, b, err := getUvarint(b)
		if err != nil {
			return nil, err
		}
		if from > uint64(^uint32(0)) || ws.vertices > 0 && from >= uint64(ws.vertices) {
			return nil, errWireBounds
		}
		omega, _, err := getUvarint(b)
		if err != nil {
			return nil, err
		}
		return nbrInfo{from: graph.VertexID(from), omega: omega}, nil
	case payloadToken:
		if ws.tpl == nil || ws.walk == nil {
			return nil, errNoSession
		}
		path, _, err := getIDs(b, ws, len(ws.walk.Seq)-1)
		if err != nil {
			return nil, err
		}
		return token{t: ws.tpl, w: ws.walk, path: path}, nil
	case payloadWalkAck:
		if ws.walk == nil {
			return nil, errNoSession
		}
		return ack{w: ws.walk}, nil
	case payloadEnumToken:
		assigned, _, err := getIDs(b, ws, maxWireIDs)
		if err != nil {
			return nil, err
		}
		return enumToken{assigned: assigned}, nil
	case payloadExpandReq:
		assigned, b, err := getIDs(b, ws, maxWireIDs)
		if err != nil {
			return nil, err
		}
		anchor, _, err := getUvarint(b)
		if err != nil {
			return nil, err
		}
		if anchor >= uint64(max(len(assigned), 1)) {
			return nil, errWireBounds // anchor indexes into assigned's order
		}
		return expandReq{assigned: assigned, anchor: int(anchor)}, nil
	default:
		return nil, fmt.Errorf("%w: 0x%02x", errUnknownPayload, tag)
	}
}

// appendIDs appends a counted vertex-id list.
func appendIDs(dst []byte, ids []graph.VertexID) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(ids)))
	for _, v := range ids {
		dst = binary.AppendUvarint(dst, uint64(v))
	}
	return dst
}

// getIDs parses a counted vertex-id list, bounding the count (so hostile
// bytes cannot force a large allocation) and each id against the session.
func getIDs(b []byte, ws wireSession, maxLen int) ([]graph.VertexID, []byte, error) {
	n, b, err := getUvarint(b)
	if err != nil {
		return nil, nil, err
	}
	if maxLen < 0 || n > uint64(maxLen) || n > maxWireIDs {
		return nil, nil, errWireBounds
	}
	if n == 0 {
		return nil, b, nil
	}
	ids := make([]graph.VertexID, n)
	for i := range ids {
		var v uint64
		if v, b, err = getUvarint(b); err != nil {
			return nil, nil, err
		}
		if v > uint64(^uint32(0)) || ws.vertices > 0 && v >= uint64(ws.vertices) {
			return nil, nil, errWireBounds
		}
		ids[i] = graph.VertexID(v)
	}
	return ids, b, nil
}

// getUvarint reads one uvarint off b, returning the remainder.
func getUvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, errTruncated
	}
	return v, b[n:], nil
}

// dupPayload deep-copies env's payload through a codec round-trip, so a
// chaos-duplicated envelope never aliases the original delivery's object —
// the semantics the wire path has naturally (every frame decodes a fresh
// copy). Payload types without a codec (ad-hoc test payloads) fall back to
// sharing, the pre-codec behavior.
func (t *traversal) dupPayload(env envelope) envelope {
	if env.ack || env.data == nil {
		return env
	}
	b, err := encodePayload(nil, env.data)
	if err != nil {
		return env
	}
	data, err := decodePayload(b, t.ws)
	if err != nil {
		return env
	}
	env.data = data
	return env
}

// GraphSignature hashes the structural identity of g — vertex count, edge
// count, every vertex's label, degree and adjacency — into one value
// (FNV-1a). The coordinator compares signatures across its rank group (and
// optionally against its own graph) at dial time, so a worker serving a
// different graph, a different relabeling, or a stale file is rejected
// before it can silently answer queries against the wrong data.
func GraphSignature(g *graph.Graph) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(x uint64) {
		for i := 0; i < 8; i++ {
			h ^= x & 0xff
			h *= prime
			x >>= 8
		}
	}
	n := g.NumVertices()
	mix(uint64(n))
	mix(uint64(g.NumDirectedEdges()))
	for v := 0; v < n; v++ {
		vid := graph.VertexID(v)
		mix(uint64(g.Label(vid)))
		nbrs := g.Neighbors(vid)
		mix(uint64(len(nbrs)))
		for _, w := range nbrs {
			mix(uint64(w))
		}
	}
	return h
}
