package dist

import (
	"context"
	"fmt"
	"time"

	"approxmatch/internal/bitvec"
	"approxmatch/internal/constraint"
	"approxmatch/internal/core"
	"approxmatch/internal/pattern"
	"approxmatch/internal/prototype"
)

// TopDownResult mirrors core.TopDownResult for the distributed engine.
type TopDownResult struct {
	Set                *prototype.Set
	FoundDist          int
	PrototypesSearched int
	MatchingVertices   *bitvec.Vector
	Solutions          []*core.Solution
	// VerifyMetrics counts the sequential finalization work plus the
	// engine's fault-plane counters.
	VerifyMetrics core.Metrics
	Levels        []core.LevelStats
}

// RunTopDown performs exploratory search on the distributed engine: every
// prototype at distance δ is searched on the candidate set, δ growing until
// matches appear (§4's top-down mode). Work recycling applies across levels
// through the shared κ cache.
func RunTopDown(e *Engine, t *pattern.Template, opts Options) (*TopDownResult, error) {
	return RunTopDownContext(context.Background(), e, t, opts)
}

// RunTopDownContext is RunTopDown honoring ctx: the context is checked
// between levels, prototypes and pruning walks, and a fired context makes
// the run return ctx.Err(). When ctx never fires, the results are identical
// to RunTopDown's.
func RunTopDownContext(ctx context.Context, e *Engine, t *pattern.Template, opts Options) (*TopDownResult, error) {
	var res *TopDownResult
	err := func() (err error) {
		defer core.RecoverCancel(&err)
		res, err = runTopDown(ctx, e, t, opts)
		return err
	}()
	if err != nil {
		return nil, err
	}
	return res, nil
}

func runTopDown(ctx context.Context, e *Engine, t *pattern.Template, opts Options) (*TopDownResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	g := e.Graph()
	set, err := prototype.Generate(t, opts.EditDistance)
	if err != nil {
		return nil, fmt.Errorf("dist: %w", err)
	}
	res := &TopDownResult{
		Set:              set,
		FoundDist:        -1,
		MatchingVertices: bitvec.New(g.NumVertices()),
		Solutions:        make([]*core.Solution, set.Count()),
	}
	var freq constraint.LabelFreq
	if opts.FrequencyOrdering {
		freq = make(constraint.LabelFreq)
		for l, c := range g.LabelFrequencies() {
			freq[l] = c
		}
		freq[pattern.Wildcard] = int64(g.NumVertices())
	}
	var cache recycler
	if opts.WorkRecycling {
		if opts.SharedCache != nil {
			cache = sharedRecycler{opts.SharedCache}
		} else {
			cache = newDistCache(g.NumVertices())
		}
	}
	mcs := MaxCandidateSetDist(e, t)
	candidate := mcs.toCoreState()
	if opts.Rebalance {
		e.SetOwners(BalancedOwners(candidate.VertexBits(), e.cfg.Ranks))
	}
	satisfied := make([]bool, g.NumVertices())

	vm := &res.VerifyMetrics
	for dist := 0; dist <= set.MaxDist; dist++ {
		start := time.Now()
		found := false
		levelVerts := bitvec.New(g.NumVertices())
		var labels int64
		for _, pi := range set.At(dist) {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			sol := e.searchPrototypeDist(ctx, candidate, set.Protos[pi].Template, freq, cache, satisfied, opts, vm)
			sol.Proto = pi
			res.PrototypesSearched++
			res.Solutions[pi] = sol
			if sol.Verts.Any() {
				found = true
				levelVerts.Or(sol.Verts)
				labels += int64(sol.Verts.Count())
			}
		}
		res.Levels = append(res.Levels, core.LevelStats{
			Dist:            dist,
			Prototypes:      set.CountAt(dist),
			ActiveVertices:  levelVerts.Count(),
			LabelsGenerated: labels,
			Duration:        time.Since(start),
		})
		if found {
			res.FoundDist = dist
			res.MatchingVertices = levelVerts
			break
		}
	}
	e.FoldFaultMetrics(&res.VerifyMetrics)
	return res, nil
}
