package dist

import (
	"context"
	"fmt"
	"sync"

	"approxmatch/internal/constraint"
	"approxmatch/internal/core"
	"approxmatch/internal/graph"
	"approxmatch/internal/pattern"
)

// ReplicaSet implements the §4/§5.4 "reloading on a smaller deployment"
// flow faithfully: the pruned candidate (or intermediate) subgraph is
// checkpointed, reloaded as an independent graph on each of several small
// deployments, and prototypes are searched across the replicas in parallel.
// Results are translated back to the original graph's vertex ids.
type ReplicaSet struct {
	origGraph *graph.Graph
	orig      []graph.VertexID // replica vertex id -> original id
	engines   []*Engine
}

// NewReplicaSet checkpoints the active subgraph of pruned and reloads it
// onto `replicas` deployments, each with the given per-replica config.
func NewReplicaSet(g *graph.Graph, pruned *core.State, replicas int, cfg Config) (*ReplicaSet, error) {
	if replicas < 1 {
		replicas = 1
	}
	data, orig, err := Checkpoint(g, pruned)
	if err != nil {
		return nil, fmt.Errorf("dist: replica checkpoint: %w", err)
	}
	rs := &ReplicaSet{origGraph: g, orig: orig}
	for i := 0; i < replicas; i++ {
		e, err := Reload(data, cfg)
		if err != nil {
			return nil, fmt.Errorf("dist: replica %d reload: %w", i, err)
		}
		rs.engines = append(rs.engines, e)
	}
	return rs, nil
}

// Replicas returns the number of deployments.
func (rs *ReplicaSet) Replicas() int { return len(rs.engines) }

// SubgraphSize returns the checkpointed subgraph's vertex count.
func (rs *ReplicaSet) SubgraphSize() int { return len(rs.orig) }

// Search runs the given templates across the replicas (each replica takes
// the next unsearched template — the paper's batched parallel prototype
// search) and returns solutions in original-graph coordinates, index-aligned
// with templates.
func (rs *ReplicaSet) Search(templates []*pattern.Template, freq constraint.LabelFreq, opts Options) []*core.Solution {
	out := make([]*core.Solution, len(templates))
	next := make(chan int, len(templates))
	for i := range templates {
		next <- i
	}
	close(next)
	var wg sync.WaitGroup
	for _, e := range rs.engines {
		wg.Add(1)
		go func(e *Engine) {
			defer wg.Done()
			satisfied := make([]bool, e.Graph().NumVertices())
			for i := range next {
				sol := e.searchOnReplica(templates[i], freq, satisfied, opts)
				out[i] = rs.translate(sol)
			}
		}(e)
	}
	wg.Wait()
	return out
}

// searchOnReplica runs the distributed per-prototype search on the whole
// replica graph (the replica IS the pruned subgraph, so no candidate-set
// phase is needed).
func (e *Engine) searchOnReplica(t *pattern.Template, freq constraint.LabelFreq, satisfied []bool, opts Options) *core.Solution {
	ds := newDistState(e)
	g := e.Graph()
	for v := 0; v < g.NumVertices(); v++ {
		ds.active[v] = true
	}
	for slot := range ds.edgeOn {
		ds.edgeOn[slot] = true
	}
	ds.initOmega(t)
	ds.lccDist(t)
	pruning, _ := constraint.Generate(t)
	if freq != nil {
		pruning = constraint.OrientAll(t, pruning, freq)
	}
	constraint.OrderWalks(t, pruning, freq)
	for _, w := range pruning {
		if ds.nlccDist(t, w, satisfied, nil) {
			ds.lccDist(t)
		}
	}
	cs := ds.toCoreState()
	var vm core.Metrics
	cs = core.CompactState(cs, opts.CompactBelow, &vm)
	return core.FinalizeSolution(context.Background(), cs, t, opts.Workers, opts.CountMatches, &vm)
}

// translate maps a replica-coordinate solution back to the original graph.
func (rs *ReplicaSet) translate(sol *core.Solution) *core.Solution {
	g := rs.origGraph
	out := &core.Solution{Proto: sol.Proto, MatchCount: sol.MatchCount}
	st := core.NewEmptyState(g)
	sol.Verts.ForEach(func(rv int) {
		st.VertexBits().Set(int(rs.orig[rv]))
	})
	// Translate directed slots: replica slot (u -> i-th neighbor).
	rg := rs.engines[0].Graph()
	sol.Edges.ForEach(func(slot int) {
		// Find the replica vertex owning the slot by binary search over
		// adjacency offsets.
		u := replicaSlotOwner(rg, slot)
		w := rg.Neighbors(u)[slot-int(rg.AdjOffset(u))]
		ou, ow := rs.orig[u], rs.orig[w]
		if i := g.EdgeIndex(ou, ow); i >= 0 {
			st.EdgeBits().Set(int(g.AdjOffset(ou)) + i)
		}
	})
	out.Verts = st.VertexBits().Clone()
	out.Edges = st.EdgeBits().Clone()
	return out
}

// replicaSlotOwner returns the vertex whose adjacency contains the given
// directed slot index.
func replicaSlotOwner(g *graph.Graph, slot int) graph.VertexID {
	lo, hi := 0, g.NumVertices()-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if int(g.AdjOffset(graph.VertexID(mid))) <= slot {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return graph.VertexID(lo)
}
