package dist

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"approxmatch/internal/constraint"
	"approxmatch/internal/graph"
	"approxmatch/internal/pattern"
)

// testSession builds a small but real (template, walk) pair and the
// wireSession a traversal would carry for it, so codec tests exercise the
// same canonical-pointer re-attachment the TCP readers rely on.
func testSession(tb testing.TB) wireSession {
	tpl, err := pattern.New(
		[]pattern.Label{0, 1, 2, 1},
		[]pattern.Edge{{I: 0, J: 1}, {I: 1, J: 2}, {I: 2, J: 3}, {I: 0, J: 3}},
	)
	if err != nil {
		tb.Fatal(err)
	}
	w := &constraint.Walk{Kind: constraint.CC, Seq: []int{0, 1, 2, 3, 0}, ID: "cc[0>1>2>3>0]"}
	return wireSession{gen: 7, tpl: tpl, walk: w, vertices: 100}
}

func TestWireFrameRoundTrip(t *testing.T) {
	for _, body := range [][]byte{nil, {}, {0x01}, bytes.Repeat([]byte{0xab}, 3000)} {
		frame := appendFrame(nil, frameEnvelope, body)
		class, got, err := readFrame(bytes.NewReader(frame))
		if err != nil {
			t.Fatalf("readFrame(%d-byte body): %v", len(body), err)
		}
		if class != frameEnvelope {
			t.Fatalf("class = %#x, want frameEnvelope", class)
		}
		if !bytes.Equal(got, body) {
			t.Fatalf("body round-trip mismatch at %d bytes", len(body))
		}
	}
	// Two frames back to back on one stream.
	s := appendFrame(appendFrame(nil, frameHello, []byte("a")), frameQuery, []byte("bb"))
	r := bytes.NewReader(s)
	if c, b, err := readFrame(r); err != nil || c != frameHello || string(b) != "a" {
		t.Fatalf("first frame: class %#x body %q err %v", c, b, err)
	}
	if c, b, err := readFrame(r); err != nil || c != frameQuery || string(b) != "bb" {
		t.Fatalf("second frame: class %#x body %q err %v", c, b, err)
	}
}

func TestWireFrameHostileInputs(t *testing.T) {
	valid := appendFrame(nil, frameEnvelope, []byte{1, 2, 3})
	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, io.EOF},
		{"short header", valid[:2], io.ErrUnexpectedEOF},
		{"oversized length", binary.BigEndian.AppendUint32(nil, maxFrameLen+1), errFrameTooLarge},
		{"max uint32 length", binary.BigEndian.AppendUint32(nil, ^uint32(0)), errFrameTooLarge},
		{"length below header", binary.BigEndian.AppendUint32(nil, 1), errFrameTooShort},
		{"truncated body", valid[:len(valid)-2], io.ErrUnexpectedEOF},
		{"bad version", append(binary.BigEndian.AppendUint32(nil, 2), 99, frameEnvelope), errWireVersion},
		// A declared length far beyond the bytes that follow must fail
		// with truncation, not allocate the declared size up front (the
		// fuzz targets below also pin the no-over-allocation property).
		{"huge declared, tiny stream", append(binary.BigEndian.AppendUint32(nil, maxFrameLen), wireVersion, frameEnvelope, 0xff), io.ErrUnexpectedEOF},
	}
	for _, c := range cases {
		_, _, err := readFrame(bytes.NewReader(c.data))
		if !errors.Is(err, c.want) {
			t.Errorf("%s: err = %v, want %v", c.name, err, c.want)
		}
	}
}

func TestWireEnvelopeRoundTrip(t *testing.T) {
	ws := testSession(t)
	payloads := []any{
		startBroadcast{},
		nbrInfo{from: 42, omega: 0xdeadbeef},
		token{t: ws.tpl, w: ws.walk, path: []graph.VertexID{5, 9, 13}},
		ack{w: ws.walk},
		enumToken{assigned: []graph.VertexID{3, 1, 4}},
		expandReq{assigned: []graph.VertexID{3, 1, 4}, anchor: 2},
	}
	for _, data := range payloads {
		env := envelope{target: 17, data: data, class: classInterNode, from: 3, seq: 99}
		b, err := encodeEnvelope(nil, env, ws.gen)
		if err != nil {
			t.Fatalf("%T: encode: %v", data, err)
		}
		got, err := decodeEnvelope(b, ws, ws.gen)
		if err != nil {
			t.Fatalf("%T: decode: %v", data, err)
		}
		if !reflect.DeepEqual(got, env) {
			t.Fatalf("%T: round trip\ngot  %+v\nwant %+v", data, got, env)
		}
		// Walk payloads must re-attach the session's canonical pointers,
		// not equal copies — handler code compares walks by pointer.
		if tok, ok := got.data.(token); ok && (tok.t != ws.tpl || tok.w != ws.walk) {
			t.Fatal("decoded token does not alias the session template/walk")
		}
		if a, ok := got.data.(ack); ok && a.w != ws.walk {
			t.Fatal("decoded walk-ack does not alias the session walk")
		}
	}
	// Transport acks carry no payload and survive with data == nil.
	env := envelope{from: 2, seq: 7, ack: true}
	b, err := encodeEnvelope(nil, env, ws.gen)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeEnvelope(b, ws, ws.gen)
	if err != nil {
		t.Fatal(err)
	}
	if !got.ack || got.data != nil || got.from != 2 || got.seq != 7 {
		t.Fatalf("ack round trip: %+v", got)
	}
}

func TestWireEnvelopeStaleGen(t *testing.T) {
	ws := testSession(t)
	env := envelope{target: 1, data: startBroadcast{}, from: 0, seq: 1}
	b, err := encodeEnvelope(nil, env, ws.gen)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := decodeEnvelope(b, ws, ws.gen+1); !errors.Is(err, errStaleGen) {
		t.Fatalf("wrong generation: err = %v, want errStaleGen", err)
	}
	if _, err := decodeEnvelope(b, ws, anyGen); err != nil {
		t.Fatalf("anyGen must accept every generation: %v", err)
	}
}

func TestWireEnvelopeHostileValues(t *testing.T) {
	ws := testSession(t)
	enc := func(env envelope) []byte {
		b, err := encodeEnvelope(nil, env, ws.gen)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	// Target beyond the session's vertex bound.
	b := enc(envelope{target: graph.VertexID(ws.vertices), data: startBroadcast{}})
	if _, err := decodeEnvelope(b, ws, ws.gen); !errors.Is(err, errWireBounds) {
		t.Fatalf("out-of-bounds target: err = %v, want errWireBounds", err)
	}
	// Token path longer than the walk.
	long := make([]graph.VertexID, len(ws.walk.Seq))
	b = enc(envelope{target: 1, data: token{t: ws.tpl, w: ws.walk, path: long}})
	if _, err := decodeEnvelope(b, ws, ws.gen); !errors.Is(err, errWireBounds) {
		t.Fatalf("oversized token path: err = %v, want errWireBounds", err)
	}
	// Walk payload against a session with no walk bound (e.g. a frame
	// arriving outside nlccDist).
	b = enc(envelope{target: 1, data: token{t: ws.tpl, w: ws.walk, path: []graph.VertexID{1}}})
	bare := wireSession{gen: ws.gen, vertices: ws.vertices}
	if _, err := decodeEnvelope(b, bare, ws.gen); !errors.Is(err, errNoSession) {
		t.Fatalf("token without session: err = %v, want errNoSession", err)
	}
	// expandReq anchor outside the assigned prefix.
	b = enc(envelope{target: 1, data: expandReq{assigned: []graph.VertexID{1, 2}, anchor: 1}})
	b[len(b)-1] = 5 // anchor is the trailing uvarint
	if _, err := decodeEnvelope(b, ws, ws.gen); !errors.Is(err, errWireBounds) {
		t.Fatalf("out-of-range anchor: err = %v, want errWireBounds", err)
	}
	// Unknown payload tag.
	b = enc(envelope{target: 1, data: startBroadcast{}})
	b[len(b)-1] = 0x7f
	if _, err := decodeEnvelope(b, ws, ws.gen); !errors.Is(err, errUnknownPayload) {
		t.Fatalf("unknown tag: err = %v, want errUnknownPayload", err)
	}
	// Hostile id-list count: claims maxWireIDs+1 entries.
	hostile := binary.AppendUvarint([]byte{payloadEnumToken}, maxWireIDs+1)
	env := enc(envelope{target: 1, data: startBroadcast{}})
	env = env[:len(env)-1] // strip the startBroadcast tag
	env = append(env, hostile...)
	if _, err := decodeEnvelope(env, ws, ws.gen); !errors.Is(err, errWireBounds) {
		t.Fatalf("hostile id count: err = %v, want errWireBounds", err)
	}
}

func TestWireEncodeRejectsCodecless(t *testing.T) {
	type adHoc struct{ x int }
	if _, err := encodeEnvelope(nil, envelope{data: adHoc{1}}, 1); err == nil {
		t.Fatal("encoding a payload without a codec must fail, not silently drop it")
	}
}

func TestGraphSignature(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := randomGraph(rng, 30, 90, 3)
	if GraphSignature(g) != GraphSignature(g) {
		t.Fatal("signature is not deterministic")
	}
	// Any structural difference — one more edge, a relabeling — must move
	// the signature: it is what stops a coordinator joining mismatched
	// workers.
	g2 := randomGraph(rand.New(rand.NewSource(9)), 30, 91, 3)
	if GraphSignature(g) == GraphSignature(g2) {
		t.Fatal("different edge sets share a signature")
	}
	rel := graph.RelabelByDegree(g)
	if GraphSignature(g) == GraphSignature(rel) {
		t.Fatal("degree relabeling did not change the signature")
	}
}

// FuzzDecodeFrame feeds hostile byte streams to the frame reader: any
// outcome but a clean parse or a clean error — a panic, or a buffer grown
// beyond the bytes actually supplied — is a bug.
func FuzzDecodeFrame(f *testing.F) {
	f.Add(appendFrame(nil, frameEnvelope, []byte{1, 2, 3}))
	f.Add(appendFrame(nil, frameHello, nil))
	f.Add(binary.BigEndian.AppendUint32(nil, ^uint32(0)))
	f.Add(append(binary.BigEndian.AppendUint32(nil, maxFrameLen), wireVersion, frameEnvelope))
	f.Add([]byte{0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		class, body, err := readFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		if len(body) > len(data) {
			t.Fatalf("body (%d bytes) larger than input (%d bytes)", len(body), len(data))
		}
		if len(body)+frameHeaderLen > maxFrameLen {
			t.Fatalf("accepted frame beyond maxFrameLen")
		}
		_ = class
	})
}

// FuzzDecodeEnvelope feeds hostile envelope payloads to the codec under a
// real session: garbage must come back as an error, never a panic, and any
// accepted envelope must satisfy the session's bounds.
func FuzzDecodeEnvelope(f *testing.F) {
	ws := testSession(f)
	for _, data := range []any{
		startBroadcast{},
		nbrInfo{from: 1, omega: 3},
		token{t: ws.tpl, w: ws.walk, path: []graph.VertexID{5, 9}},
		ack{w: ws.walk},
		enumToken{assigned: []graph.VertexID{3, 1}},
		expandReq{assigned: []graph.VertexID{3, 1}, anchor: 0},
	} {
		b, err := encodeEnvelope(nil, envelope{target: 4, data: data, from: 1, seq: 2}, ws.gen)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	ackB, _ := encodeEnvelope(nil, envelope{from: 1, seq: 2, ack: true}, ws.gen)
	f.Add(ackB)
	f.Fuzz(func(t *testing.T, data []byte) {
		env, err := decodeEnvelope(data, ws, anyGen)
		if err != nil {
			return
		}
		if env.from < 0 {
			t.Fatalf("decoded negative sender %d", env.from)
		}
		if int(env.target) >= ws.vertices {
			t.Fatalf("decoded out-of-bounds target %d", env.target)
		}
		switch d := env.data.(type) {
		case token:
			if len(d.path) > len(ws.walk.Seq)-1 {
				t.Fatalf("token path %d exceeds walk", len(d.path))
			}
		case expandReq:
			if d.anchor >= max(len(d.assigned), 1) {
				t.Fatalf("anchor %d outside assigned prefix %d", d.anchor, len(d.assigned))
			}
		}
	})
}

// transportFunc adapts a function to the transport seam for tests.
type transportFunc func(dst int, env envelope, key faultKey)

func (f transportFunc) deliver(dst int, env envelope, key faultKey) { f(dst, env, key) }

// newBareTraversal hand-builds a fault-tolerant traversal outside Run, the
// harness for transport-level regression tests.
func newBareTraversal(tb testing.TB, ranks int, f Faults) *traversal {
	g := randomGraph(rand.New(rand.NewSource(5)), 8, 20, 2)
	e := NewEngine(g, Config{Ranks: ranks, RanksPerNode: ranks})
	fv := f.withDefaults()
	tr := &traversal{e: e, phase: e.Stats.Phase("bare"), phaseName: "bare",
		boxes: make([]*mailbox, ranks), f: &fv, ft: true,
		send: make([]*senderState, ranks), recv: make([]*recvState, ranks)}
	for i := range tr.boxes {
		tr.boxes[i] = &mailbox{}
		tr.boxes[i].cond = sync.NewCond(&tr.boxes[i].mu)
		tr.send[i] = &senderState{unacked: make(map[uint64]*outstanding)}
		tr.recv[i] = &recvState{seen: make(map[sendKey]struct{})}
	}
	return tr
}

// TestRetransmitSkipsAckedBetweenScanAndSend pins the retransmit race fix:
// the pump collects due messages under the sender lock, then delivers after
// unlocking — an ack landing in that window must suppress the delivery and
// must NOT count as a retry. The fake transport acks the *other*
// outstanding message during the first delivery, exactly the interleaving
// the re-check guards against.
func TestRetransmitSkipsAckedBetweenScanAndSend(t *testing.T) {
	tr := newBareTraversal(t, 2, Faults{RetryInterval: time.Millisecond})
	past := time.Now().Add(-time.Second)
	for seq := uint64(1); seq <= 2; seq++ {
		tr.send[0].unacked[seq] = &outstanding{
			env: envelope{from: 0, seq: seq}, dst: 1, attempts: 1, nextRetry: past}
	}
	tr.pending.Store(2)
	delivered := 0
	tr.tr = transportFunc(func(dst int, env envelope, key faultKey) {
		delivered++
		for seq := uint64(1); seq <= 2; seq++ {
			if seq != env.seq {
				tr.handleAck(0, envelope{from: 0, seq: seq, ack: true})
			}
		}
	})
	tr.retransmit(time.Now())
	if delivered != 1 {
		t.Fatalf("delivered %d retransmissions, want 1 (the other was acked mid-loop)", delivered)
	}
	if got := tr.e.Stats.Faults.Retries.Load(); got != 1 {
		t.Fatalf("Retries = %d, want 1 — counter must only count genuine retransmissions", got)
	}
}

// TestChaosDuplicateCopiesPayload pins the duplicate-aliasing fix: a
// duplicated envelope's payload must be an independent deep copy, so a
// receiver mutating the first delivery's object (path append during token
// extension) can never be observed through the duplicate.
func TestChaosDuplicateCopiesPayload(t *testing.T) {
	ws := testSession(t)
	tr := newBareTraversal(t, 2, Faults{Duplicate: 1})
	tr.ws = ws
	tr.ws.vertices = 0 // the 8-vertex test graph is not the bound here
	ct := &chaosTransport{t: tr, f: tr.f, s: mailboxSink{tr}}
	want := []graph.VertexID{5, 9, 13}
	orig := token{t: ws.tpl, w: ws.walk, path: append([]graph.VertexID(nil), want...)}
	ct.deliver(1, envelope{target: 4, data: orig, from: 0, seq: 1},
		faultKey{src: 0, seq: 1, attempt: 1})
	ct.flushDelayed(time.Now().Add(time.Hour), true) // in case a copy was parked
	box := tr.boxes[1]
	if len(box.q) != 2 {
		t.Fatalf("expected 2 deliveries with Duplicate=1, got %d", len(box.q))
	}
	first := box.q[0].data.(token)
	second := box.q[1].data.(token)
	if &first.path[0] == &second.path[0] {
		t.Fatal("duplicate shares the original's path backing array")
	}
	// Mutate every element of the first delivery's path (a receiver may
	// extend or overwrite in place); the duplicate must be unaffected.
	for i := range first.path {
		first.path[i] = 77
	}
	for i, v := range second.path {
		if v != want[i] {
			t.Fatalf("duplicate observed the first delivery's mutation at %d: %v", i, second.path)
		}
	}
	// The copy must still alias the canonical template/walk — only the
	// variable part is duplicated.
	if second.t != ws.tpl || second.w != ws.walk {
		t.Fatal("duplicate lost the canonical template/walk pointers")
	}
	if got := tr.e.Stats.Faults.Duplicated.Load(); got != 1 {
		t.Fatalf("Duplicated = %d, want 1", got)
	}
}
