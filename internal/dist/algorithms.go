package dist

import (
	"math/bits"
	"sync/atomic"

	"approxmatch/internal/constraint"
	"approxmatch/internal/core"
	"approxmatch/internal/graph"
	"approxmatch/internal/pattern"
)

// distState is the per-vertex / per-edge search state of a distributed
// search, laid out so that every element is written only by the owning
// rank: active/omega per vertex, edgeOn per directed adjacency slot, and
// the neighbor-candidate snapshots (nbrOmega/nbrFresh) received via
// messages — the distributed stand-in for reading a remote vertex's state.
type distState struct {
	e        *Engine
	active   []bool
	omega    []uint64
	edgeOn   []bool
	nbrOmega []uint64
	nbrFresh []bool
	// hooks serialize/restore owned state for crash recovery; non-nil only
	// when the engine's fault plane configures a CrashEvent.
	hooks *TraverseHooks
}

func newDistState(e *Engine) *distState {
	g := e.Graph()
	s := &distState{
		e:        e,
		active:   make([]bool, g.NumVertices()),
		omega:    make([]uint64, g.NumVertices()),
		edgeOn:   make([]bool, g.NumDirectedEdges()),
		nbrOmega: make([]uint64, g.NumDirectedEdges()),
		nbrFresh: make([]bool, g.NumDirectedEdges()),
	}
	if f := e.cfg.Faults; f != nil && f.Crash != nil {
		s.hooks = &TraverseHooks{Checkpoint: s.checkpointRank, Restore: s.restoreRank}
	}
	return s
}

// traverse runs a traversal with this state's crash-recovery hooks
// attached. Every traversal over a distState must go through it: a restart
// after an injected crash re-runs init against the restored durable state,
// which is only correct because active/omega/edgeOn never change during a
// traversal and the volatile writes (nbrOmega/nbrFresh/satisfied) are
// idempotent functions of them.
func (s *distState) traverse(phase string, init func(seed func(graph.VertexID, any)), visit func(ctx *Ctx, target graph.VertexID, data any)) {
	s.e.traverseH(phase, s.hooks, init, visit)
}

// fromCoreState seeds the distributed state from a sequential State. A
// compacted view state is expanded back to original ids: the distributed
// runtime's per-vertex arrays are sized by the engine's graph, and rank
// ownership is keyed by original vertex id.
func fromCoreState(e *Engine, cs *core.State) *distState {
	s := newDistState(e)
	if vw := cs.View(); vw != nil {
		cs.VertexBits().ForEach(func(v int) {
			s.active[vw.OrigVertex(graph.VertexID(v))] = true
		})
		cs.EdgeBits().ForEach(func(slot int) {
			s.edgeOn[vw.OrigSlot(slot)] = true
		})
		return s
	}
	cs.VertexBits().ForEach(func(v int) { s.active[v] = true })
	cs.EdgeBits().ForEach(func(slot int) { s.edgeOn[slot] = true })
	return s
}

// toCoreState converts back for the sequential finalization step.
func (s *distState) toCoreState() *core.State {
	cs := core.NewEmptyState(s.e.Graph())
	for v, a := range s.active {
		if a {
			cs.VertexBits().Set(v)
		}
	}
	for slot, on := range s.edgeOn {
		if on {
			cs.EdgeBits().Set(slot)
		}
	}
	return cs
}

// initOmega fills the candidate masks by label (wildcard-aware).
func (s *distState) initOmega(t *pattern.Template) {
	labelBits, wildBits := templateLabelBits(t)
	g := s.e.Graph()
	for v := range s.omega {
		if s.active[v] {
			s.omega[v] = labelBits[g.Label(graph.VertexID(v))] | wildBits
			if s.omega[v] == 0 {
				s.deactivate(graph.VertexID(v))
			}
		} else {
			s.omega[v] = 0
		}
	}
}

// templateLabelBits precomputes per-label candidate masks plus the wildcard
// mask.
func templateLabelBits(t *pattern.Template) (map[pattern.Label]uint64, uint64) {
	labelBits := make(map[pattern.Label]uint64)
	var wildBits uint64
	for q := 0; q < t.NumVertices(); q++ {
		if t.Label(q) == pattern.Wildcard {
			wildBits |= 1 << uint(q)
		} else {
			labelBits[t.Label(q)] |= 1 << uint(q)
		}
	}
	return labelBits, wildBits
}

// deactivate kills a vertex and its outgoing slots (owner-rank operation).
func (s *distState) deactivate(v graph.VertexID) {
	s.active[v] = false
	g := s.e.Graph()
	base := int(g.AdjOffset(v))
	for i := range g.Neighbors(v) {
		s.edgeOn[base+i] = false
	}
}

// nbrInfo is the LCC broadcast payload: the sender's id and candidate mask.
type nbrInfo struct {
	from  graph.VertexID
	omega uint64
}

// exchangeNeighborState is one LCC communication superstep: every active
// vertex broadcasts its candidate mask over its active edges; receivers
// record the snapshot on the corresponding slot.
func (s *distState) exchangeNeighborState(phase string) {
	g := s.e.Graph()
	for i := range s.nbrFresh {
		s.nbrFresh[i] = false
	}
	s.traverse(phase,
		func(seed func(graph.VertexID, any)) {
			for v := range s.active {
				if s.active[v] {
					seed(graph.VertexID(v), startBroadcast{})
				}
			}
		},
		func(ctx *Ctx, target graph.VertexID, data any) {
			switch d := data.(type) {
			case startBroadcast:
				if !s.active[target] {
					return
				}
				base := int(g.AdjOffset(target))
				ctx.SendToNeighbors(target,
					func(i int, w graph.VertexID) bool { return s.edgeOn[base+i] },
					func(i int, w graph.VertexID) any {
						return nbrInfo{from: target, omega: s.omega[target]}
					})
			case nbrInfo:
				if !s.active[target] {
					return
				}
				if i := g.EdgeIndex(target, d.from); i >= 0 {
					slot := int(g.AdjOffset(target)) + i
					s.nbrOmega[slot] = d.omega
					s.nbrFresh[slot] = true
				}
			}
		})
}

// startBroadcast is the do_traversal seed marker.
type startBroadcast struct{}

// localRequirement abstracts what a candidate (v, q) must see in its
// neighborhood: the full LCC requirement for prototype search, or the
// weakened max-candidate-set requirement.
type localRequirement interface {
	satisfied(s *distState, v graph.VertexID, q int) bool
}

// lccRequirement is the per-prototype local constraint.
type lccRequirement struct{ prof *constraint.LocalProfile }

func (r lccRequirement) satisfied(s *distState, v graph.VertexID, q int) bool {
	g := s.e.Graph()
	base := int(g.AdjOffset(v))
	for _, grp := range r.prof.Groups(q) {
		found := 0
		for i := range g.Neighbors(v) {
			slot := base + i
			if s.edgeOn[slot] && s.nbrFresh[slot] && s.nbrOmega[slot]&grp.Mask != 0 {
				found++
				if found >= grp.Count {
					break
				}
			}
		}
		if found < grp.Count {
			return false
		}
	}
	return true
}

// mcsRequirement is the max-candidate-set viability check.
type mcsRequirement struct {
	prof   *constraint.MandatoryProfile
	single bool
}

func (r mcsRequirement) satisfied(s *distState, v graph.VertexID, q int) bool {
	if r.single {
		return true
	}
	g := s.e.Graph()
	base := int(g.AdjOffset(v))
	any := false
	for i := range g.Neighbors(v) {
		slot := base + i
		if s.edgeOn[slot] && s.nbrFresh[slot] && s.nbrOmega[slot]&r.prof.AllNbr(q) != 0 {
			any = true
			break
		}
	}
	if !any {
		return false
	}
	for _, grp := range r.prof.Mandatory(q) {
		found := 0
		for i := range g.Neighbors(v) {
			slot := base + i
			if s.edgeOn[slot] && s.nbrFresh[slot] && s.nbrOmega[slot]&grp.Mask != 0 {
				found++
				if found >= grp.Count {
					break
				}
			}
		}
		if found < grp.Count {
			return false
		}
	}
	return true
}

// fixpoint alternates communication supersteps with rank-local
// re-evaluation until no rank changes anything — Alg. 4 in BSP-over-async
// form. nbrMask gives the template adjacency for edge support checks (nil
// disables edge-support elimination, as in the candidate-set phase, which
// only drops edges to dead neighbors).
func (s *distState) fixpoint(phase string, t *pattern.Template, req localRequirement, edgeSupport bool) {
	g := s.e.Graph()
	prof := constraint.BuildLocalProfile(t)
	for {
		s.exchangeNeighborState(phase)
		var changed atomic.Bool
		s.e.ParallelRanks(func(rank int) {
			for v := 0; v < g.NumVertices(); v++ {
				if int(s.e.owner[v]) != rank || !s.active[v] {
					continue
				}
				vid := graph.VertexID(v)
				for q := 0; q < t.NumVertices(); q++ {
					if s.omega[v]&(1<<uint(q)) == 0 {
						continue
					}
					if !req.satisfied(s, vid, q) {
						s.omega[v] &^= 1 << uint(q)
						changed.Store(true)
					}
				}
				if s.omega[v] == 0 {
					s.deactivate(vid)
					changed.Store(true)
					continue
				}
				// Edge elimination: drop slots to stale (dead) neighbors,
				// and — for full LCC — slots without candidate support.
				base := int(g.AdjOffset(vid))
				for i := range g.Neighbors(vid) {
					slot := base + i
					if !s.edgeOn[slot] {
						continue
					}
					if !s.nbrFresh[slot] {
						s.edgeOn[slot] = false
						changed.Store(true)
						continue
					}
					if edgeSupport && !s.edgeSupported(vid, slot, prof) {
						s.edgeOn[slot] = false
						changed.Store(true)
					}
				}
			}
		})
		if !changed.Load() {
			return
		}
	}
}

// edgeSupported checks candidate support of a slot using the neighbor
// snapshot.
func (s *distState) edgeSupported(v graph.VertexID, slot int, prof *constraint.LocalProfile) bool {
	ov := s.omega[v]
	for ov != 0 {
		q := bits.TrailingZeros64(ov)
		ov &= ov - 1
		if s.nbrOmega[slot]&prof.NbrMask(q) != 0 {
			return true
		}
	}
	return false
}

// MaxCandidateSetDist computes M* with the distributed engine.
func MaxCandidateSetDist(e *Engine, t *pattern.Template) *distState {
	s := newDistState(e)
	g := e.Graph()
	pairs := t.EdgePairSet()
	labelBits, wildBits := templateLabelBits(t)
	// Label filtering and label-pair edge filtering are rank-local.
	e.ParallelRanks(func(rank int) {
		for v := 0; v < g.NumVertices(); v++ {
			if int(e.owner[v]) != rank {
				continue
			}
			vid := graph.VertexID(v)
			s.omega[v] = labelBits[g.Label(vid)] | wildBits
			s.active[v] = s.omega[v] != 0
			if !s.active[v] {
				continue
			}
			base := int(g.AdjOffset(vid))
			lv := g.Label(vid)
			for i, u := range g.Neighbors(vid) {
				s.edgeOn[base+i] = pairs.Matches(lv, g.Label(u))
			}
		}
	})
	s.fixpoint("candidate", t, mcsRequirement{
		prof:   constraint.BuildMandatoryProfile(t),
		single: t.NumVertices() == 1,
	}, false)
	return s
}

// lccDist runs the per-prototype local constraint fixpoint.
func (s *distState) lccDist(t *pattern.Template) {
	s.fixpoint("lcc", t, lccRequirement{prof: constraint.BuildLocalProfile(t)}, true)
}

// token is the NLCC walk payload: path realizes w.Seq[0:len(path)], and the
// token is addressed to the vertex proposed to realize w.Seq[len(path)].
type token struct {
	t    *pattern.Template
	w    *constraint.Walk
	path []graph.VertexID
}

// ack reports walk completion back to the initiator.
type ack struct{ w *constraint.Walk }

// nlccDist validates one walk by distributed token passing (Alg. 5):
// every candidate initiator broadcasts tokens; receivers validate
// label/candidate/consistency conditions, extend and forward; tokens
// reaching the end of the sequence ack the initiator. Initiators without an
// ack lose the walk's source candidate. Returns whether anything was
// eliminated. satisfied is scratch space (len n), cache the shared
// recycling state (may be nil).
func (s *distState) nlccDist(t *pattern.Template, w *constraint.Walk, satisfied []bool, cache recycler) bool {
	g := s.e.Graph()
	q0 := w.Seq[0]
	for i := range satisfied {
		satisfied[i] = false
	}
	// The seed set and cache-hit accounting are computed once, before the
	// traversal: a crash-recovery restart re-runs the init callback, so
	// anything non-idempotent (counter bumps) must stay outside it.
	var seeds []graph.VertexID
	for v := range s.active {
		if !s.active[v] || s.omega[v]&(1<<uint(q0)) == 0 {
			continue
		}
		if cache != nil && cache.satisfied(w.ID, graph.VertexID(v)) {
			satisfied[v] = true
			continue
		}
		seeds = append(seeds, graph.VertexID(v))
	}
	// Bind this walk as the traversal's wire session: token and walk-ack
	// payloads encode only their variable part, and the TCP reader (or the
	// chaos duplicate copy) re-attaches these canonical pointers on decode.
	s.e.wireTpl, s.e.wireWalk = t, w
	defer func() { s.e.wireTpl, s.e.wireWalk = nil, nil }()
	s.traverse("nlcc",
		func(seed func(graph.VertexID, any)) {
			for _, v := range seeds {
				seed(v, token{t: t, w: w})
			}
		},
		func(ctx *Ctx, target graph.VertexID, data any) {
			switch d := data.(type) {
			case token:
				s.handleToken(ctx, target, d)
			case ack:
				satisfied[target] = true
			}
		})
	if cache != nil {
		cache.ensure(w.ID)
	}
	var changed atomic.Bool
	s.e.ParallelRanks(func(rank int) {
		for v := 0; v < g.NumVertices(); v++ {
			if int(s.e.owner[v]) != rank || !s.active[v] || s.omega[v]&(1<<uint(q0)) == 0 {
				continue
			}
			if satisfied[v] {
				if cache != nil {
					cache.record(w.ID, graph.VertexID(v))
				}
				continue
			}
			s.omega[v] &^= 1 << uint(q0)
			changed.Store(true)
			if s.omega[v] == 0 {
				s.deactivate(graph.VertexID(v))
			}
		}
	})
	return changed.Load()
}

// handleToken processes a token addressed to `target`, the vertex proposed
// to realize w.Seq[len(path)]: receiver-side validation (the paper's "v_j
// matches the token.r-th entry" check), extension and forwarding.
func (s *distState) handleToken(ctx *Ctx, target graph.VertexID, d token) {
	g := s.e.Graph()
	w := d.w
	if !s.active[target] {
		return
	}
	tq := w.Seq[len(d.path)]
	if s.omega[target]&(1<<uint(tq)) == 0 {
		return
	}
	if len(d.path) > 0 {
		prev := d.path[len(d.path)-1]
		i := g.EdgeIndex(prev, target)
		if i < 0 || !s.edgeOn[int(g.AdjOffset(prev))+i] {
			// Edge state lives with prev's owner; no writes occur during a
			// traversal, so this cross-rank read is stable.
			return
		}
		// Edge-labeled templates constrain the hop's edge label.
		if el, ok := d.t.EdgeLabelBetween(d.w.Seq[len(d.path)-1], tq); ok && el != pattern.Wildcard {
			if g.EdgeLabelAt(prev, i) != el {
				return
			}
		}
	}
	// Consistency: a revisited template vertex must reuse its realization;
	// distinct template vertices must realize distinct graph vertices.
	for i, qi := range w.Seq[:len(d.path)] {
		if qi == tq {
			if d.path[i] != target {
				return
			}
		} else if d.path[i] == target {
			return
		}
	}
	next := token{t: d.t, w: w, path: append(append([]graph.VertexID(nil), d.path...), target)}
	if len(next.path) == len(w.Seq) {
		ctx.Send(next.path[0], ack{w: w})
		return
	}
	s.forwardToken(ctx, target, next)
}

// forwardToken sends the token toward candidates for the next sequence
// entry: directly to the already-assigned vertex on a revisit, or to all
// active neighbors otherwise.
func (s *distState) forwardToken(ctx *Ctx, cur graph.VertexID, d token) {
	g := s.e.Graph()
	w := d.w
	nextQ := w.Seq[len(d.path)]
	base := int(g.AdjOffset(cur))
	for i, qi := range w.Seq[:len(d.path)] {
		if qi == nextQ {
			assigned := d.path[i]
			if j := g.EdgeIndex(cur, assigned); j >= 0 && s.edgeOn[base+j] {
				ctx.Send(assigned, d)
			}
			return
		}
	}
	ctx.SendToNeighbors(cur,
		func(i int, u graph.VertexID) bool { return s.edgeOn[base+i] },
		func(i int, u graph.VertexID) any { return d })
}

// recycler abstracts the NLCC work-recycling store so the distributed
// engine runs against either its private per-run distCache or a
// caller-owned core.Cache shared across queries (Options.SharedCache).
// Implementations count their own hit/miss statistics inside satisfied.
type recycler interface {
	// satisfied reports whether v is recorded as satisfying constraint id.
	satisfied(id string, v graph.VertexID) bool
	// ensure pre-creates id's record where the implementation needs it so
	// that subsequent record calls are safe from concurrent ranks.
	ensure(id string)
	// record marks v as satisfying constraint id.
	record(id string, v graph.VertexID)
}

// distCache is the distributed work-recycling store: per constraint ID, the
// set of vertices that satisfied it (κ in Alg. 3). Bit vectors are written
// between traversals only (rank-parallel over owned vertices), so a plain
// mutex-per-record suffices.
type distCache struct {
	n    int
	sets map[string][]bool
	hits atomic.Int64
}

func newDistCache(n int) *distCache {
	return &distCache{n: n, sets: make(map[string][]bool)}
}

func (c *distCache) satisfied(id string, v graph.VertexID) bool {
	set, ok := c.sets[id]
	if ok && set[v] {
		c.hits.Add(1)
		return true
	}
	return false
}

// ensure pre-creates the record for id so that record() only performs
// element writes (safe from concurrent ranks; each vertex index is written
// by its owner only).
func (c *distCache) ensure(id string) {
	if _, ok := c.sets[id]; !ok {
		c.sets[id] = make([]bool, c.n)
	}
}

func (c *distCache) record(id string, v graph.VertexID) {
	c.sets[id][v] = true
}

// sharedRecycler adapts a caller-owned core.Cache to the recycler
// interface. core.Cache.Record takes its own write lock, so concurrent
// ranks need no ensure pre-creation; hit/miss accounting lives in the
// store. Cache content is correctness-neutral either way — a foreign or
// stale verdict only skips a pruning walk, and exact verification fixes
// precision — so sharing across queries needs no coordination beyond the
// store's own locking.
type sharedRecycler struct{ c *core.Cache }

func (r sharedRecycler) satisfied(id string, v graph.VertexID) bool { return r.c.Satisfied(id, v) }
func (r sharedRecycler) ensure(string)                              {}
func (r sharedRecycler) record(id string, v graph.VertexID)         { r.c.Record(id, v) }
