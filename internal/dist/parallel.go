package dist

import (
	"context"
	"sync"
	"time"

	"approxmatch/internal/constraint"
	"approxmatch/internal/core"
	"approxmatch/internal/pattern"
)

// ParallelSearchResult reports a parallel-prototype-search run: the §5.4
// deployment-size study measures both wall time (time-to-solution) and
// aggregate CPU time (rank-seconds, the paper's CPU-Hour axis).
type ParallelSearchResult struct {
	Solutions []*core.Solution
	// Wall is the end-to-end time with `Deployments` searches in flight.
	Wall time.Duration
	// RankSeconds is Σ over prototypes of (search time × ranks per
	// deployment) — the aggregate compute cost.
	RankSeconds float64
	// PerPrototype records individual search durations.
	PerPrototype []time.Duration
}

// SearchPrototypesParallel searches the given prototype templates on
// replicas of the (pruned) level state, running up to `deployments`
// searches concurrently, each charged for `ranksPerDeployment` ranks — the
// multi-level parallelism of §4 ("replicating the max-candidate set on
// multiple smaller deployments"). The order of templates is preserved in
// the result.
func SearchPrototypesParallel(level *core.State, templates []*pattern.Template, deployments, ranksPerDeployment int, freq constraint.LabelFreq) *ParallelSearchResult {
	if deployments < 1 {
		deployments = 1
	}
	res := &ParallelSearchResult{
		Solutions:    make([]*core.Solution, len(templates)),
		PerPrototype: make([]time.Duration, len(templates)),
	}
	start := time.Now()
	sem := make(chan struct{}, deployments)
	var wg sync.WaitGroup
	var mu sync.Mutex
	for i, t := range templates {
		wg.Add(1)
		go func(i int, t *pattern.Template) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			var m core.Metrics
			t0 := time.Now()
			sol := core.SearchOn(context.Background(), level, t, nil, freq, false, 0, &m)
			d := time.Since(t0)
			mu.Lock()
			res.Solutions[i] = sol
			res.PerPrototype[i] = d
			res.RankSeconds += d.Seconds() * float64(ranksPerDeployment)
			mu.Unlock()
		}(i, t)
	}
	wg.Wait()
	res.Wall = time.Since(start)
	return res
}

// OrderByEstimatedCost returns template indices ordered so the most
// expensive prototype searches launch first — the prototype-ordering
// optimization of §5.4 (overlapping expensive searches improves parallel
// completion time). Cost is estimated from candidate-label frequency mass.
func OrderByEstimatedCost(templates []*pattern.Template, freq constraint.LabelFreq) []int {
	type scored struct {
		idx  int
		cost float64
	}
	xs := make([]scored, len(templates))
	for i, t := range templates {
		var c float64
		for q := 0; q < t.NumVertices(); q++ {
			c += float64(freq[t.Label(q)])
		}
		// Cyclic templates trigger token walks: weigh them up.
		if !t.IsTree() {
			c *= 2
		}
		xs[i] = scored{i, c}
	}
	// Descending by cost.
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j].cost > xs[j-1].cost; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
	out := make([]int, len(xs))
	for i, x := range xs {
		out[i] = x.idx
	}
	return out
}
