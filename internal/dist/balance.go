package dist

import (
	"bytes"
	"fmt"

	"approxmatch/internal/bitvec"
	"approxmatch/internal/core"
	"approxmatch/internal/graph"
)

// BalancedOwners builds a vertex-to-rank assignment that spreads the active
// vertices round-robin across ranks — the "reshuffle vertex-to-processor
// assignment" load-balancing step of §4. Inactive vertices keep their hash
// placement (they generate no work).
func BalancedOwners(active *bitvec.Vector, ranks int) []int32 {
	owner := make([]int32, active.Len())
	for v := range owner {
		owner[v] = int32(hashVertex(graph.VertexID(v)) % uint32(ranks))
	}
	next := int32(0)
	active.ForEach(func(v int) {
		owner[v] = next
		next = (next + 1) % int32(ranks)
	})
	return owner
}

// BalancedOwnersView is BalancedOwners driven by a compacted view: the
// active vertices are exactly the view's kept vertices, already enumerated
// in increasing original id, so the assignment walks the compacted list
// instead of scanning the full bit vector. The result is identical to
// BalancedOwners over the view's original active set — the paper's per-level
// rebalancing made cheap by compaction.
func BalancedOwnersView(vw *graph.View, ranks int) []int32 {
	owner := make([]int32, vw.Orig().NumVertices())
	for v := range owner {
		owner[v] = int32(hashVertex(graph.VertexID(v)) % uint32(ranks))
	}
	next := int32(0)
	for _, ov := range vw.OrigVertices() {
		owner[ov] = next
		next = (next + 1) % int32(ranks)
	}
	return owner
}

// balancedOwnersFor dispatches on whether the level state was compacted.
func balancedOwnersFor(s *core.State, ranks int) []int32 {
	if vw := s.View(); vw != nil {
		return BalancedOwnersView(vw, ranks)
	}
	return BalancedOwners(s.VertexBits(), ranks)
}

// LoadImbalance summarizes compute distribution: the ratio of the maximum
// per-rank visitor count to the mean (1.0 = perfectly balanced).
func LoadImbalance(e *Engine) float64 {
	var max, total int64
	for r := range e.ComputePerRank {
		c := e.ComputePerRank[r].Load()
		total += c
		if c > max {
			max = c
		}
	}
	if total == 0 {
		return 1
	}
	mean := float64(total) / float64(len(e.ComputePerRank))
	if mean == 0 {
		return 1
	}
	return float64(max) / mean
}

// ResetComputeCounters zeroes the per-rank visitor counters.
func ResetComputeCounters(e *Engine) {
	for r := range e.ComputePerRank {
		e.ComputePerRank[r].Store(0)
	}
}

// Checkpoint serializes the active subgraph of state s (the pruned
// intermediate graph) to a byte buffer using the binary CSR format — the
// §4 checkpoint/reload path that lets a pruned graph move to a smaller
// deployment. It returns the serialized bytes and the mapping from
// checkpointed vertex ids back to original ids.
func Checkpoint(g *graph.Graph, s *core.State) ([]byte, []graph.VertexID, error) {
	sub, orig := graph.InducedSubgraph(g, func(v graph.VertexID) bool {
		return s.VertexActive(v)
	})
	var buf bytes.Buffer
	if err := graph.WriteBinary(&buf, sub); err != nil {
		return nil, nil, fmt.Errorf("dist: checkpoint: %w", err)
	}
	return buf.Bytes(), orig, nil
}

// Reload deserializes a checkpoint into a fresh engine on a (typically
// smaller) deployment.
func Reload(data []byte, cfg Config) (*Engine, error) {
	g, err := graph.ReadBinary(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("dist: reload: %w", err)
	}
	return NewEngine(g, cfg), nil
}
