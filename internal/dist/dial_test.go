package dist

import (
	"net"
	"strings"
	"testing"
	"time"
)

// reservePort grabs a loopback port and releases it, returning the
// address so a test can start a server there *later*.
func reservePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestDialGroupWithinLateWorker is the startup-resilience regression
// test: the coordinator begins dialing before one of its workers is
// listening. With a retry budget, DialGroupWithin must keep retrying the
// refused dial (capped backoff + jitter) and succeed once the straggler
// comes up — amatchd and its ranks no longer need a launch-order dance.
func TestDialGroupWithinLateWorker(t *testing.T) {
	hello := HelloInfo{Vertices: 10, Edges: 20, Signature: 0xabc}
	h := func(byte, []byte) (int, string, []byte) { return 200, "", []byte("ok") }
	_, early := startWorker(t, hello, h)
	lateAddr := reservePort(t)

	// Bring the late worker up well inside the budget but long after the
	// first dial attempt has failed.
	go func() {
		time.Sleep(300 * time.Millisecond)
		ln, err := net.Listen("tcp", lateAddr)
		if err != nil {
			return // the test will fail on the dial side with a clear error
		}
		rs := NewRankServer(ln, hello, h)
		go rs.Serve() //nolint:errcheck // exits on Close
	}()

	start := time.Now()
	co, err := DialGroupWithin([]string{early, lateAddr}, 0xabc, time.Second, 10*time.Second)
	if err != nil {
		t.Fatalf("late worker never joined: %v", err)
	}
	defer co.Close()
	if co.Size() != 2 {
		t.Fatalf("Size() = %d, want 2", co.Size())
	}
	if e := time.Since(start); e < 250*time.Millisecond {
		t.Fatalf("dial succeeded in %v — the late worker cannot have been up yet", e)
	}
}

// TestDialGroupWithinBudgetExhausted: a worker that never appears fails
// the dial once the budget runs out, not sooner (retries happened) and
// not much later (the budget bounds the wait).
func TestDialGroupWithinBudgetExhausted(t *testing.T) {
	dead := reservePort(t)
	start := time.Now()
	_, err := DialGroupWithin([]string{dead}, 0, 200*time.Millisecond, 700*time.Millisecond)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("dial to a dead address succeeded")
	}
	if elapsed < 500*time.Millisecond {
		t.Fatalf("gave up after %v — budget not honored (no retries?)", elapsed)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("took %v — budget overshot", elapsed)
	}
}

// TestDialGroupWithinMismatchFailsFast: retrying cannot fix a signature
// mismatch — the worker is serving the wrong graph — so DialGroupWithin
// must fail immediately instead of burning the whole budget.
func TestDialGroupWithinMismatchFailsFast(t *testing.T) {
	h := func(byte, []byte) (int, string, []byte) { return 200, "", nil }
	_, addr := startWorker(t, HelloInfo{Signature: 0x111}, h)
	start := time.Now()
	_, err := DialGroupWithin([]string{addr}, 0x999, time.Second, 30*time.Second)
	if err == nil || !strings.Contains(err.Error(), "signature") {
		t.Fatalf("mismatch not rejected: %v", err)
	}
	if e := time.Since(start); e > 5*time.Second {
		t.Fatalf("mismatch burned %v of budget, want fail-fast", e)
	}
}
