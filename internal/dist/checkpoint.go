package dist

import (
	"encoding/binary"
	"fmt"

	"approxmatch/internal/graph"
)

// Rank checkpoint serialization for crash recovery. A checkpoint captures
// the durable per-vertex search state one rank owns — the active flag,
// 64-bit candidate mask and outgoing directed-edge slots of every owned
// vertex — at a traversal attempt start (the engine's finest level
// boundary). Durable state never changes *during* a traversal (ranks only
// rewrite their owned arrays in the barrier phases between traversals), so
// the attempt boundary is a consistent cut by construction.
//
// Layout (little-endian):
//
//	magic byte 0xC4, version byte 0x01
//	uint32  owned vertex count (sanity check against the owner table)
//	bits    active flags, one per owned vertex in ascending id order, packed
//	uint64  omega per *active* owned vertex, ascending id order
//	bits    edgeOn per outgoing slot of each *active* owned vertex, packed
//
// Vertex ids themselves are not stored: both sides enumerate owned
// vertices from the engine's owner table, which is stable for the life of
// the traversal (SetOwners only runs between traversals). Inactive
// vertices contribute one cleared bit — their omega is zero and their
// slots are off by the deactivation invariant, so nothing else is stored.
const (
	ckptMagic   = 0xC4
	ckptVersion = 0x01
)

// bitPacker accumulates bools eight to a byte.
type bitPacker struct {
	out []byte
	cur byte
	n   uint8
}

func (p *bitPacker) put(b bool) {
	if b {
		p.cur |= 1 << p.n
	}
	if p.n++; p.n == 8 {
		p.out = append(p.out, p.cur)
		p.cur, p.n = 0, 0
	}
}

func (p *bitPacker) flush() {
	if p.n > 0 {
		p.out = append(p.out, p.cur)
		p.cur, p.n = 0, 0
	}
}

// bitUnpacker streams bools back out of packed bytes.
type bitUnpacker struct {
	in  []byte
	pos int
	n   uint8
}

func (u *bitUnpacker) get() bool {
	b := u.in[u.pos]&(1<<u.n) != 0
	if u.n++; u.n == 8 {
		u.pos++
		u.n = 0
	}
	return b
}

// align advances to the next byte boundary (between sections).
func (u *bitUnpacker) align() {
	if u.n > 0 {
		u.pos++
		u.n = 0
	}
}

// checkpointRank serializes the durable state of every vertex rank owns.
func (s *distState) checkpointRank(rank int) []byte {
	g := s.e.Graph()
	owned := 0
	for v := range s.active {
		if int(s.e.owner[v]) == rank {
			owned++
		}
	}
	header := make([]byte, 6)
	header[0], header[1] = ckptMagic, ckptVersion
	binary.LittleEndian.PutUint32(header[2:], uint32(owned))

	var flags bitPacker
	flags.out = header
	for v := range s.active {
		if int(s.e.owner[v]) == rank {
			flags.put(s.active[v])
		}
	}
	flags.flush()

	buf := flags.out
	var omegaBytes [8]byte
	for v := range s.active {
		if int(s.e.owner[v]) != rank || !s.active[v] {
			continue
		}
		binary.LittleEndian.PutUint64(omegaBytes[:], s.omega[v])
		buf = append(buf, omegaBytes[:]...)
	}

	var edges bitPacker
	edges.out = buf
	for v := range s.active {
		if int(s.e.owner[v]) != rank || !s.active[v] {
			continue
		}
		base := int(g.AdjOffset(graph.VertexID(v)))
		for i := range g.Neighbors(graph.VertexID(v)) {
			edges.put(s.edgeOn[base+i])
		}
	}
	edges.flush()
	return edges.out
}

// restoreRank rebuilds the durable state of every vertex rank owns from a
// checkpoint, first wiping everything the crash left behind — owned
// active/omega/edgeOn AND the owned volatile neighbor snapshots
// (nbrOmega/nbrFresh), which the restarted traversal re-derives. The wipe
// makes the serialized bytes load-bearing: a restore that silently kept
// in-memory state would mask serialization bugs.
func (s *distState) restoreRank(rank int, data []byte) {
	g := s.e.Graph()
	owned := 0
	for v := range s.active {
		if int(s.e.owner[v]) != rank {
			continue
		}
		owned++
		s.active[v] = false
		s.omega[v] = 0
		base := int(g.AdjOffset(graph.VertexID(v)))
		for i := range g.Neighbors(graph.VertexID(v)) {
			s.edgeOn[base+i] = false
			s.nbrOmega[base+i] = 0
			s.nbrFresh[base+i] = false
		}
	}

	if len(data) < 6 || data[0] != ckptMagic || data[1] != ckptVersion {
		panic(fmt.Sprintf("dist: rank %d checkpoint header invalid (%d bytes)", rank, len(data)))
	}
	if got := binary.LittleEndian.Uint32(data[2:]); got != uint32(owned) {
		panic(fmt.Sprintf("dist: rank %d checkpoint owns %d vertices, owner table says %d", rank, got, owned))
	}

	flags := bitUnpacker{in: data, pos: 6}
	for v := range s.active {
		if int(s.e.owner[v]) == rank {
			s.active[v] = flags.get()
		}
	}
	flags.align()

	pos := flags.pos
	for v := range s.active {
		if int(s.e.owner[v]) != rank || !s.active[v] {
			continue
		}
		s.omega[v] = binary.LittleEndian.Uint64(data[pos:])
		pos += 8
	}

	edges := bitUnpacker{in: data, pos: pos}
	for v := range s.active {
		if int(s.e.owner[v]) != rank || !s.active[v] {
			continue
		}
		base := int(g.AdjOffset(graph.VertexID(v)))
		for i := range g.Neighbors(graph.VertexID(v)) {
			s.edgeOn[base+i] = edges.get()
		}
	}
}
