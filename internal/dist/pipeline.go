package dist

import (
	"context"
	"errors"
	"fmt"
	"time"

	"approxmatch/internal/bitvec"
	"approxmatch/internal/constraint"
	"approxmatch/internal/core"
	"approxmatch/internal/graph"
	"approxmatch/internal/pattern"
	"approxmatch/internal/prototype"
)

// Options control the distributed pipeline's optimizations; they mirror
// core.Config plus the load-balancing knob of §4.
type Options struct {
	EditDistance        int
	WorkRecycling       bool
	FrequencyOrdering   bool
	LabelPairRefinement bool
	CountMatches        bool
	// Rebalance reshuffles active vertices evenly across ranks after
	// candidate-set generation and between edit-distance levels (Fig. 9a).
	Rebalance bool
	// ShrinkToRanks, when positive and smaller than the engine's rank
	// count, relaunches the search on that many ranks once the candidate
	// set is pruned — §4's "reload on the same or fewer processors". The
	// remaining ranks idle (in a real deployment they would be released).
	ShrinkToRanks int
	// Workers is the worker count for the shared core kernels the
	// distributed run calls back into (the sequential gather-and-finalize
	// step); 0 = sequential, mirroring core.Config.Workers.
	Workers int
	// CompactBelow mirrors core.Config.CompactBelow: level states and
	// gathered per-prototype subgraphs are physically compacted once their
	// active fraction drops below this threshold, and rank repartitioning
	// walks the compacted vertex list instead of the full bit vector. 0
	// disables compaction.
	CompactBelow float64
	// Budget mirrors core.Config.Budget: it bounds the run's work, bytes
	// and wall time, and exhaustion stops the pipeline between levels with
	// a Partial result (completed levels exact, see core.Result.Partial).
	// Work charging rides the core probes of the finalization phase and the
	// wall/byte checks between distributed phases. A budget already on the
	// context (core.WithBudget) takes precedence.
	Budget core.Budget
	// SharedCache mirrors core.Config.SharedCache: a caller-owned NLCC
	// work-recycling store that replaces the run's private distCache so
	// constraint verdicts recycle across queries. Requires WorkRecycling
	// and a store built for the same background graph. Cache content never
	// affects results — exact finalization restores precision — so sharing
	// needs no coordination beyond the store's own locking.
	SharedCache *core.Cache
}

// DefaultOptions enables every optimization for edit-distance k.
func DefaultOptions(k int) Options {
	return Options{
		EditDistance:        k,
		WorkRecycling:       true,
		FrequencyOrdering:   true,
		LabelPairRefinement: true,
		Rebalance:           true,
		CompactBelow:        0.5,
	}
}

// Result is the distributed run's output; Solutions and Rho are bit-exact
// with the sequential engine's (differential-tested).
type Result struct {
	Set       *prototype.Set
	Rho       *bitvec.Matrix
	Solutions []*core.Solution
	Candidate *core.State
	// VerifyMetrics counts the sequential finalization work (the
	// gather-and-verify-on-a-small-deployment step).
	VerifyMetrics core.Metrics
	Levels        []core.LevelStats
	// Partial mirrors core.Result.Partial: the run's budget was exhausted
	// before all levels completed. Levels with Complete set are exact;
	// unfinished prototypes' Rho columns and Solutions are unknown.
	Partial bool
}

// Run executes the bottom-up approximate-matching pipeline on the
// distributed engine: distributed candidate-set generation, distributed
// LCC/NLCC pruning per prototype, then exact finalization of each pruned
// (small) subgraph.
func Run(e *Engine, t *pattern.Template, opts Options) (*Result, error) {
	return RunContext(context.Background(), e, t, opts)
}

// RunContext is Run honoring ctx: the context is checked between levels,
// prototypes and pruning walks, and inside the sequential finalization
// phase, so a fired deadline or cancellation stops the distributed run and
// returns ctx.Err(). When ctx never fires, the results are identical to
// Run's.
//
// When a budget governs the run (Options.Budget or core.WithBudget on ctx)
// and is exhausted mid-pipeline, RunContext returns BOTH a non-nil Partial
// result and an error matching core.ErrBudgetExhausted, exactly like
// core.RunContext.
func RunContext(ctx context.Context, e *Engine, t *pattern.Template, opts Options) (*Result, error) {
	if core.BudgetFromContext(ctx) == nil && !opts.Budget.Unlimited() {
		ctx = core.WithBudget(ctx, opts.Budget)
	}
	var res *Result
	err := func() (err error) {
		defer core.RecoverCancel(&err)
		res, err = run(ctx, e, t, opts)
		return err
	}()
	if err != nil && (res == nil || !res.Partial) {
		return nil, err
	}
	return res, err
}

func run(ctx context.Context, e *Engine, t *pattern.Template, opts Options) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	g := e.Graph()
	set, err := prototype.Generate(t, opts.EditDistance)
	if err != nil {
		return nil, fmt.Errorf("dist: %w", err)
	}
	res := &Result{
		Set:       set,
		Rho:       bitvec.NewMatrix(g.NumVertices(), set.Count()),
		Solutions: make([]*core.Solution, set.Count()),
	}
	var freq constraint.LabelFreq
	if opts.FrequencyOrdering {
		freq = make(constraint.LabelFreq)
		for l, c := range g.LabelFrequencies() {
			freq[l] = c
		}
		freq[pattern.Wildcard] = int64(g.NumVertices())
	}
	var cache recycler
	if opts.WorkRecycling {
		if opts.SharedCache != nil {
			cache = sharedRecycler{opts.SharedCache}
		} else {
			cache = newDistCache(g.NumVertices())
		}
	}

	// Candidate-set generation runs under the budget too; exhaustion there
	// yields a Partial result with zero completed levels (Candidate nil).
	if cerr := func() (err error) {
		defer core.RecoverCancel(&err)
		mcs := MaxCandidateSetDist(e, t)
		res.Candidate = mcs.toCoreState()
		return nil
	}(); cerr != nil {
		if errors.Is(cerr, core.ErrBudgetExhausted) {
			return finishPartialDist(e, res, cerr)
		}
		return nil, cerr
	}
	activeRanks := e.cfg.Ranks
	if opts.ShrinkToRanks > 0 && opts.ShrinkToRanks < activeRanks {
		activeRanks = opts.ShrinkToRanks
	}
	if opts.Rebalance || activeRanks < e.cfg.Ranks {
		e.SetOwners(BalancedOwners(res.Candidate.VertexBits(), activeRanks))
	}

	level := res.Candidate
	levelFrac := core.ActiveFraction(level)
	satisfied := make([]bool, g.NumVertices())
	for dist := set.MaxDist; dist >= 0; dist-- {
		next, nextFrac, lerr := runLevelDist(ctx, e, res, level, levelFrac, dist, activeRanks, freq, cache, satisfied, opts)
		if lerr != nil {
			if errors.Is(lerr, core.ErrBudgetExhausted) {
				return finishPartialDist(e, res, lerr)
			}
			return nil, lerr
		}
		level, levelFrac = next, nextFrac
	}
	e.FoldFaultMetrics(&res.VerifyMetrics)
	return res, nil
}

// runLevelDist searches one edit-distance level and commits its solutions,
// Rho columns and stats into res only once the whole level completed —
// mirroring the sequential engine's commit-after-complete structure so a
// budget abort mid-level keeps the Partial contract (committed levels are
// always whole, exact levels).
func runLevelDist(ctx context.Context, e *Engine, res *Result, level *core.State, levelFrac float64, dist, activeRanks int, freq constraint.LabelFreq, cache recycler, satisfied []bool, opts Options) (next *core.State, nextFrac float64, err error) {
	defer core.RecoverCancel(&err)
	set := res.Set
	g := e.Graph()
	start := time.Now()
	ids := set.At(dist)
	sols := make([]*core.Solution, 0, len(ids))
	for _, pi := range ids {
		if cerr := ctx.Err(); cerr != nil {
			return nil, 0, cerr
		}
		searchState := level
		if dist < set.MaxDist && len(set.Protos[pi].Children) == 0 {
			searchState = res.Candidate
		}
		sol := e.searchPrototypeDist(ctx, searchState, set.Protos[pi].Template, freq, cache, satisfied, opts, &res.VerifyMetrics)
		sol.Proto = pi
		sols = append(sols, sol)
	}
	unionVerts := bitvec.New(g.NumVertices())
	unionEdges := bitvec.New(g.NumDirectedEdges())
	var labels int64
	for _, sol := range sols {
		res.Solutions[sol.Proto] = sol
		unionVerts.Or(sol.Verts)
		unionEdges.Or(sol.Edges)
		sol.Verts.ForEach(func(v int) {
			res.Rho.Set(v, sol.Proto)
			labels++
		})
	}
	res.Levels = append(res.Levels, core.LevelStats{
		Dist:            dist,
		Prototypes:      len(ids),
		ActiveVertices:  unionVerts.Count(),
		LabelsGenerated: labels,
		Duration:        time.Since(start),
		ActiveFraction:  levelFrac,
		Compacted:       level.View() != nil,
		Complete:        true,
	})
	if dist > 0 {
		next = containmentState(g, set, res.Candidate, unionVerts, unionEdges, dist, opts.LabelPairRefinement)
		nextFrac = core.ActiveFraction(next)
		next = core.CompactStateBudgeted(next, opts.CompactBelow, &res.VerifyMetrics, core.NewCancelCheck(ctx))
		if opts.Rebalance || activeRanks < e.cfg.Ranks {
			e.SetOwners(balancedOwnersFor(next, activeRanks))
		}
	}
	return next, nextFrac, nil
}

// finishPartialDist marks res partial, appends Complete=false placeholders
// for the unfinished levels and folds the fault counters gathered so far (so
// /metrics accounting survives the abort).
func finishPartialDist(e *Engine, res *Result, cause error) (*Result, error) {
	res.Partial = true
	next := res.Set.MaxDist
	if n := len(res.Levels); n > 0 {
		next = res.Levels[n-1].Dist - 1
	}
	for dist := next; dist >= 0; dist-- {
		res.Levels = append(res.Levels, core.LevelStats{Dist: dist, Prototypes: res.Set.CountAt(dist)})
	}
	e.FoldFaultMetrics(&res.VerifyMetrics)
	return res, cause
}

// searchPrototypeDist runs the distributed Alg. 2 for one prototype
// template on the given level state. A fired ctx aborts with a cancellation
// panic (recovered at the RunContext / RunTopDownContext boundary).
func (e *Engine) searchPrototypeDist(ctx context.Context, level *core.State, t *pattern.Template, freq constraint.LabelFreq, cache recycler, satisfied []bool, opts Options, vm *core.Metrics) *core.Solution {
	cc := core.NewCancelCheck(ctx)
	ds := fromCoreState(e, level)
	ds.initOmega(t)
	ds.lccDist(t)

	pruning, _ := constraint.Generate(t)
	if freq != nil {
		pruning = constraint.OrientAll(t, pruning, freq)
	}
	constraint.OrderWalks(t, pruning, freq)
	for _, w := range pruning {
		cc.Check()
		if ds.nlccDist(t, w, satisfied, cache) {
			ds.lccDist(t)
		}
	}

	// Gather the pruned subgraph, compact it (distributed pruning typically
	// leaves a small active fraction) and finalize exactly — the in-process
	// analogue of reloading the pruned graph on a small deployment (§4).
	cs := ds.toCoreState()
	cs = core.CompactStateBudgeted(cs, opts.CompactBelow, vm, cc)
	return core.FinalizeSolution(ctx, cs, t, opts.Workers, opts.CountMatches, vm)
}

// containmentState mirrors the sequential engine's Obs.-1 construction:
// union of the level's solution subgraphs plus candidate edges between
// active vertices whose label pair is removable at this level.
func containmentState(g *graph.Graph, set *prototype.Set, candidate *core.State, unionVerts *bitvec.Vector, unionEdges *bitvec.Vector, dist int, labelPairRefinement bool) *core.State {
	s := core.NewEmptyState(g)
	s.VertexBits().Or(unionVerts)
	s.EdgeBits().Or(unionEdges)

	var pairs *pattern.PairSet
	if labelPairRefinement {
		pairs = set.RemovedLabelPairs(dist)
	}
	s.ForEachActiveVertex(func(v graph.VertexID) {
		ns := g.Neighbors(v)
		base := int(g.AdjOffset(v))
		lv := g.Label(v)
		for i, u := range ns {
			if !candidate.EdgeBits().Get(base+i) || !unionVerts.Get(int(u)) {
				continue
			}
			if pairs != nil && !pairs.Matches(lv, g.Label(u)) {
				continue
			}
			s.EdgeBits().Set(base + i)
		}
	})
	return s
}
