package dist

import (
	"math/rand"
	"testing"
	"time"

	"approxmatch/internal/graph"
)

// TestLatencyMeterFlush drives the meter with delays that never reach the
// 1ms batching threshold: nothing may sleep until flush, and flush must
// sleep exactly the accumulated residue (the satellite bugfix — ranks used
// to exit and silently drop sub-threshold debt).
func TestLatencyMeterFlush(t *testing.T) {
	var slept []time.Duration
	lm := latencyMeter{sleep: func(d time.Duration) { slept = append(slept, d) }}
	for i := 0; i < 3; i++ {
		lm.add(300 * time.Microsecond)
	}
	if len(slept) != 0 {
		t.Fatalf("slept %v before reaching the batching threshold", slept)
	}
	lm.flush()
	if len(slept) != 1 || slept[0] != 900*time.Microsecond {
		t.Fatalf("flush slept %v, want [900µs]", slept)
	}
	// Flushing again is a no-op: the debt was consumed.
	lm.flush()
	if len(slept) != 1 {
		t.Fatalf("second flush slept again: %v", slept)
	}
}

// TestLatencyMeterBatches checks the threshold path: debt crossing 1ms
// sleeps immediately and resets, leaving nothing for flush.
func TestLatencyMeterBatches(t *testing.T) {
	var slept []time.Duration
	lm := latencyMeter{sleep: func(d time.Duration) { slept = append(slept, d) }}
	lm.add(600 * time.Microsecond)
	lm.add(600 * time.Microsecond)
	if len(slept) != 1 || slept[0] != 1200*time.Microsecond {
		t.Fatalf("slept %v, want [1.2ms]", slept)
	}
	lm.flush()
	if len(slept) != 1 {
		t.Fatalf("flush slept residue after a batch: %v", slept)
	}
	lm.add(0)
	lm.add(-time.Microsecond)
	lm.flush()
	if len(slept) != 1 {
		t.Fatalf("non-positive delays accumulated debt: %v", slept)
	}
}

// TestTraverseFlushesResidualLatency is the end-to-end satellite check: a
// traversal whose total injected latency stays below the batching
// threshold must still expose it as wall time.
func TestTraverseFlushesResidualLatency(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	g := randomGraph(rng, 20, 60, 2)
	e := NewEngine(g, Config{Ranks: 2, RanksPerNode: 1, InterNodeDelay: 300 * time.Microsecond})
	// Find a pair of vertices on different ranks.
	var v0, v1 graph.VertexID
	found := false
	for v := 0; v < g.NumVertices() && !found; v++ {
		for w := 0; w < g.NumVertices(); w++ {
			if e.Owner(graph.VertexID(v)) != e.Owner(graph.VertexID(w)) {
				v0, v1 = graph.VertexID(v), graph.VertexID(w)
				found = true
				break
			}
		}
	}
	if !found {
		t.Fatal("no cross-rank vertex pair")
	}
	start := time.Now()
	type hop struct{ n int }
	e.Traverse("latency",
		func(seed func(graph.VertexID, any)) { seed(v0, hop{n: 5}) },
		func(ctx *Ctx, target graph.VertexID, data any) {
			h := data.(hop)
			if h.n == 0 {
				return
			}
			next := v0
			if target == v0 {
				next = v1
			}
			ctx.Send(next, hop{n: h.n - 1})
		})
	// The ping-pong chain lands three 300µs inter-node receptions on one
	// rank (900µs of debt) and two on the other (600µs) — neither crosses
	// the 1ms batching threshold, and ranks flush concurrently, so the
	// exposed wall time is the 900µs max. Without the exit flush the
	// measured time would be (and was) essentially zero.
	if el := time.Since(start); el < 700*time.Microsecond {
		t.Errorf("traversal exposed %v of latency, want >= ~900µs", el)
	}
}

// TestBlockOwnerBoundaries pins the int64 partition arithmetic (the
// satellite overflow fix): the last vertex lands on the last rank, owners
// are monotone, and the helper stays exact where v*ranks would overflow
// 32-bit int arithmetic.
func TestBlockOwnerBoundaries(t *testing.T) {
	for _, tc := range []struct{ n, ranks int }{
		{1, 1}, {7, 3}, {100, 4}, {1000, 7}, {1 << 20, 64},
	} {
		if got := blockOwner(tc.n-1, tc.ranks, tc.n); got != int32(tc.ranks-1) {
			t.Errorf("blockOwner(last, %d, %d) = %d, want %d", tc.ranks, tc.n, got, tc.ranks-1)
		}
		if got := blockOwner(0, tc.ranks, tc.n); got != 0 {
			t.Errorf("blockOwner(0, %d, %d) = %d, want 0", tc.ranks, tc.n, got)
		}
	}
	// 2^26 vertices × 64 ranks: v*ranks reaches 2^32, past 32-bit int.
	// With int64 arithmetic the mapping stays exact.
	const n, ranks = 1 << 26, 64
	if got := blockOwner(n-1, ranks, n); got != ranks-1 {
		t.Errorf("large blockOwner(last) = %d, want %d", got, ranks-1)
	}
	if got := blockOwner(n/2, ranks, n); got != ranks/2 {
		t.Errorf("large blockOwner(mid) = %d, want %d", got, ranks/2)
	}
	// Monotonicity on a real engine: owners never decrease with vertex id
	// and every rank is hit.
	g := randomGraph(rand.New(rand.NewSource(5)), 257, 400, 2)
	e := NewEngine(g, Config{Ranks: 8, RanksPerNode: 4})
	prev := int32(0)
	seen := make(map[int32]bool)
	for v := 0; v < g.NumVertices(); v++ {
		o := int32(e.Owner(graph.VertexID(v)))
		if o < prev {
			t.Fatalf("owners not monotone at vertex %d: %d after %d", v, o, prev)
		}
		prev = o
		seen[o] = true
	}
	if int32(e.Owner(graph.VertexID(g.NumVertices()-1))) != 7 {
		t.Error("last vertex not on last rank")
	}
	if len(seen) != 8 {
		t.Errorf("only %d of 8 ranks own vertices", len(seen))
	}
}

// TestNodeOfUnnormalizedConfig is the satellite regression test: nodeOf on
// a config that never went through NewEngine (RanksPerNode zero) must not
// divide by zero and must agree with Nodes().
func TestNodeOfUnnormalizedConfig(t *testing.T) {
	for _, cfg := range []Config{
		{Ranks: 4}, // RanksPerNode 0: used to divide by zero
		{Ranks: 4, RanksPerNode: 2},
		{Ranks: 1},
		{}, // fully zero config
		{Ranks: 7, RanksPerNode: 3},
	} {
		nodes := cfg.Nodes()
		ranks := cfg.normalized().Ranks
		for r := 0; r < ranks; r++ {
			n := cfg.nodeOf(r) // must not panic
			if n < 0 || n >= nodes {
				t.Errorf("cfg %+v: nodeOf(%d) = %d, outside [0, %d)", cfg, r, n, nodes)
			}
		}
		if last := cfg.nodeOf(ranks - 1); last != nodes-1 {
			t.Errorf("cfg %+v: last rank on node %d, want %d", cfg, last, nodes-1)
		}
	}
	// Engine built by struct literal, bypassing NewEngine normalization.
	e := &Engine{cfg: Config{Ranks: 2}}
	if got := e.nodeOf(1); got != 0 {
		t.Errorf("literal engine nodeOf(1) = %d, want 0", got)
	}
}
