package dist

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// startWorker spins up one RankServer on a loopback port with the given
// hello and handler, returning it and its address.
func startWorker(t *testing.T, hello HelloInfo, h QueryHandler) (*RankServer, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	rs := NewRankServer(ln, hello, h)
	go rs.Serve() //nolint:errcheck // exits on Close
	t.Cleanup(rs.Close)
	return rs, rs.Addr()
}

func TestCoordinatorRoundTrip(t *testing.T) {
	hello := HelloInfo{Vertices: 10, Edges: 20, Signature: 0xabc}
	echo := func(id int) QueryHandler {
		return func(endpoint byte, body []byte) (int, string, []byte) {
			return 200, "text/plain", []byte(fmt.Sprintf("w%d e%d %s", id, endpoint, body))
		}
	}
	_, a0 := startWorker(t, hello, echo(0))
	_, a1 := startWorker(t, hello, echo(1))
	co, err := DialGroup([]string{a0, a1}, 0xabc, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	if co.Hello() != hello {
		t.Fatalf("Hello() = %+v, want %+v", co.Hello(), hello)
	}
	if co.Size() != 2 {
		t.Fatalf("Size() = %d, want 2", co.Size())
	}
	seen := map[string]int{}
	for i := 0; i < 6; i++ {
		status, ct, resp, err := co.Do(context.Background(), EndpointMatch, []byte("q"))
		if err != nil {
			t.Fatal(err)
		}
		if status != 200 || ct != "text/plain" {
			t.Fatalf("status %d ct %q", status, ct)
		}
		if !bytes.HasSuffix(resp, []byte("e1 q")) {
			t.Fatalf("unexpected response %q", resp)
		}
		seen[string(resp[:2])]++
	}
	// Round-robin must spread queries over both workers.
	if seen["w0"] == 0 || seen["w1"] == 0 {
		t.Fatalf("round-robin skipped a worker: %v", seen)
	}
}

func TestCoordinatorSignatureMismatch(t *testing.T) {
	h := func(byte, []byte) (int, string, []byte) { return 200, "", nil }
	_, a0 := startWorker(t, HelloInfo{Signature: 0x111}, h)
	_, a1 := startWorker(t, HelloInfo{Signature: 0x222}, h)

	// The coordinator's own graph disagrees with the worker.
	if _, err := DialGroup([]string{a0}, 0x999, time.Second); err == nil ||
		!strings.Contains(err.Error(), "signature") {
		t.Fatalf("expectSig mismatch not rejected: %v", err)
	}
	// The group itself is split.
	if _, err := DialGroup([]string{a0, a1}, 0, time.Second); err == nil ||
		!strings.Contains(err.Error(), "split") {
		t.Fatalf("split group not rejected: %v", err)
	}
	// Agreement passes.
	co, err := DialGroup([]string{a0}, 0x111, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	co.Close()
}

func TestCoordinatorFailover(t *testing.T) {
	hello := HelloInfo{Signature: 0x7}
	h := func(byte, []byte) (int, string, []byte) { return 200, "", []byte("ok") }
	rs0, a0 := startWorker(t, hello, h)
	_, a1 := startWorker(t, hello, h)
	co, err := DialGroup([]string{a0, a1}, 0x7, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	rs0.Close() // worker 0 dies after the group formed
	// Enough queries that round-robin lands on the dead worker; every one
	// must fail over to the survivor.
	for i := 0; i < 4; i++ {
		status, _, resp, err := co.Do(context.Background(), EndpointExplore, nil)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if status != 200 || string(resp) != "ok" {
			t.Fatalf("query %d: status %d resp %q", i, status, resp)
		}
	}
}

func TestCoordinatorAllWorkersDown(t *testing.T) {
	hello := HelloInfo{Signature: 0x7}
	h := func(byte, []byte) (int, string, []byte) { return 200, "", []byte("ok") }
	rs, a := startWorker(t, hello, h)
	co, err := DialGroup([]string{a}, 0x7, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	rs.Close()
	if _, _, _, err := co.Do(context.Background(), EndpointMatch, nil); !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("err = %v, want ErrNoWorkers", err)
	}
}

// TestCoordinatorContextNotFailedOver pins the retry policy: a context
// deadline during a query surfaces as the context error without the query
// being retried on another worker — a slow query replayed elsewhere would
// only double the load.
func TestCoordinatorContextNotFailedOver(t *testing.T) {
	hello := HelloInfo{Signature: 0x7}
	var calls atomic.Int64
	slow := func(byte, []byte) (int, string, []byte) {
		calls.Add(1)
		time.Sleep(300 * time.Millisecond)
		return 200, "", []byte("late")
	}
	_, a0 := startWorker(t, hello, slow)
	_, a1 := startWorker(t, hello, slow)
	co, err := DialGroup([]string{a0, a1}, 0x7, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, _, _, err = co.Do(ctx, EndpointMatch, nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	// Give the in-flight handler time to finish, then check only one
	// worker ever saw the query.
	time.Sleep(400 * time.Millisecond)
	if n := calls.Load(); n != 1 {
		t.Fatalf("query reached %d workers, want 1 (no failover on context expiry)", n)
	}
}

// TestRankServerHostileClient: garbage after the hello must close the
// connection, not wedge or crash the worker; a fresh connection still
// works.
func TestRankServerHostileClient(t *testing.T) {
	hello := HelloInfo{Signature: 0x7}
	_, addr := startWorker(t, hello, func(byte, []byte) (int, string, []byte) {
		return 200, "", []byte("ok")
	})
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Write(bytes.Repeat([]byte{0xff}, 64)) //nolint:errcheck
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 1024)
	for {
		if _, err := c.Read(buf); err != nil {
			break // hello then EOF — the server hung up
		}
	}
	co, err := DialGroup([]string{addr}, 0x7, time.Second)
	if err != nil {
		t.Fatalf("worker unusable after hostile client: %v", err)
	}
	defer co.Close()
	if status, _, resp, err := co.Do(context.Background(), EndpointMatch, nil); err != nil || status != 200 || string(resp) != "ok" {
		t.Fatalf("status %d resp %q err %v", status, resp, err)
	}
}
