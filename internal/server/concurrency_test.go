package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"approxmatch/internal/core"
	"approxmatch/internal/datagen"
	"approxmatch/internal/pattern"
)

// templateText serializes a template back into the wire format the server
// parses, so tests can query with datagen-planted patterns.
func templateText(t *testing.T, tpl *pattern.Template) string {
	t.Helper()
	var buf bytes.Buffer
	if err := pattern.Write(&buf, tpl); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestOverloadSheds503 fills the scheduler and checks that the next request
// is rejected immediately with 503 + Retry-After instead of queuing, and
// that capacity returning makes the same request succeed.
func TestOverloadSheds503(t *testing.T) {
	s := NewWithConfig(testGraph(), Config{MaxConcurrent: 1, QueueDepth: -1})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	release, err := s.sched.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	body, _ := json.Marshal(MatchRequest{Template: triangleTemplate, K: 1})
	resp := postJSON(t, srv.URL+"/match", string(body))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After header")
	}

	release()
	resp = postJSON(t, srv.URL+"/match", string(body))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status after release = %d, want 200", resp.StatusCode)
	}

	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	prom, _ := io.ReadAll(mresp.Body)
	if !strings.Contains(string(prom), `amatchd_queries_total{endpoint="match",outcome="overload"} 1`) {
		t.Errorf("overload not counted in metrics:\n%s", prom)
	}
}

// TestCanceledWhileQueued admits a request behind a full slot set, cancels
// its context while it waits, and checks the scheduler fully drains (the
// queue token is returned, no slot leaks).
func TestCanceledWhileQueued(t *testing.T) {
	s := NewWithConfig(testGraph(), Config{MaxConcurrent: 1, QueueDepth: 1})
	release, err := s.sched.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	body, _ := json.Marshal(MatchRequest{Template: triangleTemplate, K: 1})
	ctx, cancel := context.WithCancel(context.Background())
	req := httptest.NewRequest("POST", "/match", strings.NewReader(string(body))).WithContext(ctx)
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.Handler().ServeHTTP(httptest.NewRecorder(), req)
	}()

	// Wait until the request is parked in the queue, then yank its context.
	deadline := time.Now().Add(2 * time.Second)
	for s.sched.waiting() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never queued")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("handler did not return after cancellation while queued")
	}
	if s.sched.waiting() != 0 {
		t.Errorf("queue not drained: waiting = %d", s.sched.waiting())
	}
	release()
	if s.sched.inFlight() != 0 {
		t.Errorf("slot leaked: inFlight = %d", s.sched.inFlight())
	}
}

// TestQueryTimeoutMidRun runs a real query on the RMAT bench graph under a
// timeout far below its runtime and checks the slow-query watchdog downgrades
// it to a partial result (200, partial flag set) instead of letting the
// pipeline finish.
func TestQueryTimeoutMidRun(t *testing.T) {
	g, tpl := datagen.RMATWithPattern(13)
	s := NewWithConfig(g, Config{QueryTimeout: 2 * time.Millisecond})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	body, _ := json.Marshal(MatchRequest{Template: templateText(t, tpl), K: 2, Count: true})
	start := time.Now()
	resp := postJSON(t, srv.URL+"/match", string(body))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d after %v, want 200 (partial downgrade)", resp.StatusCode, time.Since(start))
	}
	var mr MatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !mr.Partial {
		t.Fatal("over-deadline query returned a non-partial result")
	}
	for _, p := range mr.Prototypes {
		if p.Exact {
			t.Logf("level %d completed before the wall budget fired", p.Dist)
		}
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("timed-out query held the request %v", elapsed)
	}
}

// TestQueryTimeoutHardKill disables the watchdog downgrade (PartialGrace<0)
// and checks the pre-governance behavior is preserved: the context deadline
// fires at QueryTimeout and the query is aborted with 504.
func TestQueryTimeoutHardKill(t *testing.T) {
	g, tpl := datagen.RMATWithPattern(13)
	s := NewWithConfig(g, Config{QueryTimeout: 2 * time.Millisecond, PartialGrace: -1})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	body, _ := json.Marshal(MatchRequest{Template: templateText(t, tpl), K: 2, Count: true})
	start := time.Now()
	resp := postJSON(t, srv.URL+"/match", string(body))
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d after %v, want 504", resp.StatusCode, time.Since(start))
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("timed-out query held the request %v", elapsed)
	}
}

// TestBodyLimit413 checks the request body cap: an oversized body is
// rejected with 413 before any parsing or graph work.
func TestBodyLimit413(t *testing.T) {
	s := NewWithConfig(testGraph(), Config{MaxBodyBytes: 64})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	big, _ := json.Marshal(MatchRequest{Template: strings.Repeat("v 0 1\n", 100), K: 1})
	resp := postJSON(t, srv.URL+"/match", string(big))
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", resp.StatusCode)
	}
}

// TestVectorsNeverNull checks the wire contract: prototypes and vectors are
// always a JSON array/object, never null, even when vectors were not
// requested.
func TestVectorsNeverNull(t *testing.T) {
	srv := newTestServer(t)
	body, _ := json.Marshal(MatchRequest{Template: triangleTemplate, K: 1})
	resp := postJSON(t, srv.URL+"/match", string(body))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	raw, _ := io.ReadAll(resp.Body)
	if strings.Contains(string(raw), "null") {
		t.Errorf("response contains null: %s", raw)
	}
	if !strings.Contains(string(raw), `"vectors":{}`) {
		t.Errorf("vectors not an empty object: %s", raw)
	}
}

// TestConcurrentMatchMatchesSerial hammers /match from many goroutines and
// checks every concurrent response equals the serial core.Run result —
// the scheduler and shared-graph access must not perturb answers. Run under
// -race this also exercises the server's concurrency safety.
func TestConcurrentMatchMatchesSerial(t *testing.T) {
	g, tpl := datagen.RMATWithPattern(10)
	cfg := core.DefaultConfig(2)
	cfg.CountMatches = true
	want, err := core.Run(g, tpl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	req := &MatchRequest{Template: templateText(t, tpl), K: 2, Count: true, Vectors: true}
	wantResp := buildMatchResponse(g, want, req, 0)

	s := NewWithConfig(g, Config{MaxConcurrent: 4, QueueDepth: 64})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	body, _ := json.Marshal(req)

	const clients = 16
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	results := make([]MatchResponse, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(srv.URL+"/match", "application/json", bytes.NewReader(body))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				raw, _ := io.ReadAll(resp.Body)
				t.Errorf("client %d: status %d: %s", i, resp.StatusCode, raw)
				return
			}
			if err := json.NewDecoder(resp.Body).Decode(&results[i]); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for i := range results {
		results[i].ElapsedMS = wantResp.ElapsedMS
		if !reflect.DeepEqual(results[i], wantResp) {
			t.Errorf("client %d response differs from serial result", i)
		}
	}
}

// benchmarkMatch measures end-to-end /match throughput on the RMAT bench
// graph under the given scheduler configuration.
func benchmarkMatch(b *testing.B, cfg Config, concurrent bool) {
	g, tpl := datagen.RMATWithPattern(10)
	var buf bytes.Buffer
	if err := pattern.Write(&buf, tpl); err != nil {
		b.Fatal(err)
	}
	body, _ := json.Marshal(MatchRequest{Template: buf.String(), K: 1, Count: true})
	srv := httptest.NewServer(NewWithConfig(g, cfg).Handler())
	defer srv.Close()

	post := func() error {
		resp, err := http.Post(srv.URL+"/match", "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("status %d", resp.StatusCode)
		}
		return nil
	}
	if err := post(); err != nil { // warm up, fail fast on misconfig
		b.Fatal(err)
	}
	b.ResetTimer()
	if concurrent {
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if err := post(); err != nil {
					b.Error(err)
					return
				}
			}
		})
	} else {
		for i := 0; i < b.N; i++ {
			if err := post(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkMatchSerial is the old serving model: one query at a time.
func BenchmarkMatchSerial(b *testing.B) {
	benchmarkMatch(b, Config{MaxConcurrent: 1, Parallelism: 2}, false)
}

// BenchmarkMatchConcurrent is the bounded scheduler at full width; compare
// ns/op against BenchmarkMatchSerial for the concurrency speedup.
func BenchmarkMatchConcurrent(b *testing.B) {
	n := runtime.GOMAXPROCS(0)
	benchmarkMatch(b, Config{MaxConcurrent: n, Parallelism: 2, QueueDepth: 4 * n}, true)
}
