package server

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"approxmatch/internal/core"
	"approxmatch/internal/wal"
)

// Request outcomes recorded in the query counters. "ok" is a served result;
// the rest are the distinct ways a request can fail, so operators can tell
// client errors (bad_request, too_large), shed load (overload), deadline
// expiry (timeout), client disconnects (canceled) and template-level
// rejections (unprocessable) apart at a glance.
const (
	outcomeOK            = "ok"
	outcomeBadRequest    = "bad_request"
	outcomeTooLarge      = "too_large"
	outcomeUnprocessable = "unprocessable"
	outcomeOverload      = "overload"
	outcomeTimeout       = "timeout"
	outcomeCanceled      = "canceled"
	// outcomePartial is a served result whose budget ran out mid-pipeline:
	// completed levels are exact, the rest unknown (HTTP 200, Partial flag).
	outcomePartial = "partial"
	// outcomeBudget is a budget-exhausted query with nothing to salvage
	// (top-down exploration has no containment guarantee) — HTTP 504.
	outcomeBudget = "budget"
	// outcomePanic is a query whose pipeline panicked; the panic was
	// isolated to the query (HTTP 500) and the process survived.
	outcomePanic = "panic"
	// outcomeMemOverload is a query shed at admission because the heap was
	// above Config.MemHighWatermark (HTTP 503).
	outcomeMemOverload = "mem_overload"
	// outcomeCacheHit is a query served verbatim from the cross-query
	// result cache without running the pipeline.
	outcomeCacheHit = "cache_hit"
	// outcomeProxied is a query routed to the rank group by the
	// coordinator (any worker status); outcomeProxyError is a routed query
	// that failed because no worker was reachable (502).
	outcomeProxied    = "proxied"
	outcomeProxyError = "proxy_error"
	// outcomeCoalesced is a query that waited on an identical in-flight
	// leader (single flight) and served the leader's bytes.
	outcomeCoalesced = "coalesced"
	// outcomeDurability is an ingest batch that validated but could not be
	// durably appended to the write-ahead log (HTTP 500, nothing
	// published; the batch is NOT acknowledged and NOT applied).
	outcomeDurability = "durability"
)

// latencyBuckets are the histogram upper bounds in seconds (Prometheus
// `le` convention; +Inf is implicit as the final count).
var latencyBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30,
}

type outcomeKey struct {
	endpoint string
	outcome  string
}

// metricsRegistry aggregates serving metrics for the /metrics endpoint. It
// is deliberately dependency-free: counters, one latency histogram, and the
// pipeline's own core.Metrics accumulated across queries, rendered in the
// Prometheus text exposition format.
type metricsRegistry struct {
	start time.Time

	mu         sync.Mutex
	queries    map[outcomeKey]int64
	buckets    []int64 // len(latencyBuckets)+1; last is +Inf
	latencySum float64
	latencyN   int64
	pipeline   core.Metrics
	// Resource-governance counters: queries whose budget ran out, partial
	// results served, and pipeline panics isolated to their query.
	budgetExhausted int64
	partialResults  int64
	queryPanics     int64
	// Live-ingest counters: applied batches with their operation totals, and
	// batches rejected at any stage (oversized body, malformed rows, delta
	// validation).
	ingestBatches  int64
	ingestInserts  int64
	ingestDeletes  int64
	ingestRelabels int64
	ingestRejected int64
}

func newMetricsRegistry() *metricsRegistry {
	return &metricsRegistry{
		start:   time.Now(),
		queries: make(map[outcomeKey]int64),
		buckets: make([]int64, len(latencyBuckets)+1),
	}
}

// record counts one finished request. Latency is observed for every
// outcome; pipeline metrics only accompany successful runs.
func (r *metricsRegistry) record(endpoint, outcome string, elapsed time.Duration) {
	sec := elapsed.Seconds()
	r.mu.Lock()
	defer r.mu.Unlock()
	r.queries[outcomeKey{endpoint, outcome}]++
	i := sort.SearchFloat64s(latencyBuckets, sec)
	r.buckets[i]++
	r.latencySum += sec
	r.latencyN++
}

// observePipeline folds one query's pipeline counters into the cumulative
// per-phase totals.
func (r *metricsRegistry) observePipeline(m *core.Metrics) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.pipeline.Add(m)
}

// noteBudgetExhausted counts a query stopped by budget exhaustion; partial
// additionally counts it as a served partial result.
func (r *metricsRegistry) noteBudgetExhausted(partial bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.budgetExhausted++
	if partial {
		r.partialResults++
	}
}

// noteIngestApplied counts one successfully applied ingest batch.
func (r *metricsRegistry) noteIngestApplied(inserts, deletes, relabels int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ingestBatches++
	r.ingestInserts += int64(inserts)
	r.ingestDeletes += int64(deletes)
	r.ingestRelabels += int64(relabels)
}

// noteIngestRejected counts one rejected ingest batch (nothing applied).
func (r *metricsRegistry) noteIngestRejected() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ingestRejected++
}

// notePanic counts a pipeline panic isolated to its query.
func (r *metricsRegistry) notePanic() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.queryPanics++
}

// cacheGauges samples the cross-query cache state for /metrics. The caller
// (handleMetrics) reads it from the live caches; all-zero when both caches
// are disabled.
type cacheGauges struct {
	resultHits      int64
	resultMisses    int64
	resultEvictions int64
	resultBytes     int64
	resultEntries   int

	sharedHits      int64
	sharedMisses    int64
	sharedEvictions int64
	sharedBytes     int64
	sharedSets      int
}

// walGauges samples the write-ahead log's durability counters for
// /metrics; all-zero when the WAL is disabled.
type walGauges struct {
	appends         int64
	fsyncs          int64
	bytes           int64
	checkpoints     int64
	replayed        int64
	tornTails       int64
	recoverySeconds float64
}

// sampleWALGauges converts a wal.Stats snapshot to the rendering shape.
func sampleWALGauges(st wal.Stats) walGauges {
	return walGauges{
		appends:         st.Appends,
		fsyncs:          st.Fsyncs,
		bytes:           st.Bytes,
		checkpoints:     st.Checkpoints,
		replayed:        st.ReplayedRecords,
		tornTails:       st.TornTailTruncations,
		recoverySeconds: st.RecoverySeconds,
	}
}

// writeProm renders the registry in the Prometheus text format. inFlight,
// waiting, heapBytes, the cache gauges, the WAL gauges and the snapshot
// gauges (epoch, retired) are sampled by the caller (they live in the
// scheduler, the memory watcher, the cross-query caches, the write-ahead
// log and the snapshot store).
func (r *metricsRegistry) writeProm(w io.Writer, inFlight, waiting int, heapBytes uint64, cg cacheGauges, wg walGauges, epoch, retired, reclaimedBytes uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()

	fmt.Fprintf(w, "# HELP amatchd_queries_total Finished queries by endpoint and outcome.\n")
	fmt.Fprintf(w, "# TYPE amatchd_queries_total counter\n")
	keys := make([]outcomeKey, 0, len(r.queries))
	for k := range r.queries {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].endpoint != keys[j].endpoint {
			return keys[i].endpoint < keys[j].endpoint
		}
		return keys[i].outcome < keys[j].outcome
	})
	for _, k := range keys {
		fmt.Fprintf(w, "amatchd_queries_total{endpoint=%q,outcome=%q} %d\n", k.endpoint, k.outcome, r.queries[k])
	}

	fmt.Fprintf(w, "# HELP amatchd_in_flight_queries Queries currently running the pipeline.\n")
	fmt.Fprintf(w, "# TYPE amatchd_in_flight_queries gauge\n")
	fmt.Fprintf(w, "amatchd_in_flight_queries %d\n", inFlight)
	fmt.Fprintf(w, "# HELP amatchd_queued_queries Admitted queries waiting for a pipeline slot.\n")
	fmt.Fprintf(w, "# TYPE amatchd_queued_queries gauge\n")
	fmt.Fprintf(w, "amatchd_queued_queries %d\n", waiting)

	fmt.Fprintf(w, "# HELP amatchd_query_duration_seconds Query wall time, all endpoints and outcomes.\n")
	fmt.Fprintf(w, "# TYPE amatchd_query_duration_seconds histogram\n")
	var cum int64
	for i, ub := range latencyBuckets {
		cum += r.buckets[i]
		fmt.Fprintf(w, "amatchd_query_duration_seconds_bucket{le=%q} %d\n", trimFloat(ub), cum)
	}
	cum += r.buckets[len(latencyBuckets)]
	fmt.Fprintf(w, "amatchd_query_duration_seconds_bucket{le=\"+Inf\"} %d\n", cum)
	fmt.Fprintf(w, "amatchd_query_duration_seconds_sum %g\n", r.latencySum)
	fmt.Fprintf(w, "amatchd_query_duration_seconds_count %d\n", r.latencyN)

	p := &r.pipeline
	fmt.Fprintf(w, "# HELP amatchd_pipeline_messages_total Logical pipeline messages by phase, summed over queries.\n")
	fmt.Fprintf(w, "# TYPE amatchd_pipeline_messages_total counter\n")
	fmt.Fprintf(w, "amatchd_pipeline_messages_total{phase=\"candidate\"} %d\n", p.CandidateMessages)
	fmt.Fprintf(w, "amatchd_pipeline_messages_total{phase=\"lcc\"} %d\n", p.LCCMessages)
	fmt.Fprintf(w, "amatchd_pipeline_messages_total{phase=\"nlcc\"} %d\n", p.NLCCMessages)
	fmt.Fprintf(w, "amatchd_pipeline_messages_total{phase=\"verify\"} %d\n", p.VerifyMessages)
	fmt.Fprintf(w, "# HELP amatchd_pipeline_phase_seconds_total Pipeline wall time by phase, summed over queries.\n")
	fmt.Fprintf(w, "# TYPE amatchd_pipeline_phase_seconds_total counter\n")
	fmt.Fprintf(w, "amatchd_pipeline_phase_seconds_total{phase=\"candidate\"} %g\n", p.CandidateTime.Seconds())
	fmt.Fprintf(w, "amatchd_pipeline_phase_seconds_total{phase=\"lcc\"} %g\n", p.LCCTime.Seconds())
	fmt.Fprintf(w, "amatchd_pipeline_phase_seconds_total{phase=\"nlcc\"} %g\n", p.NLCCTime.Seconds())
	fmt.Fprintf(w, "amatchd_pipeline_phase_seconds_total{phase=\"verify\"} %g\n", p.VerifyTime.Seconds())
	fmt.Fprintf(w, "# HELP amatchd_kernel_expansions_total Partial-embedding extensions performed by the search kernels, by phase.\n")
	fmt.Fprintf(w, "# TYPE amatchd_kernel_expansions_total counter\n")
	fmt.Fprintf(w, "amatchd_kernel_expansions_total{phase=\"verify\"} %d\n", p.VerifyExpansions)
	fmt.Fprintf(w, "amatchd_kernel_expansions_total{phase=\"enumerate\"} %d\n", p.EnumExpansions)
	fmt.Fprintf(w, "# HELP amatchd_guard_hits_total Subtree re-entries rejected O(1) by failure guards.\n")
	fmt.Fprintf(w, "# TYPE amatchd_guard_hits_total counter\n")
	fmt.Fprintf(w, "amatchd_guard_hits_total %d\n", p.GuardHits)
	fmt.Fprintf(w, "# HELP amatchd_guards_set_total Failure guards recorded by the verification kernels.\n")
	fmt.Fprintf(w, "# TYPE amatchd_guards_set_total counter\n")
	fmt.Fprintf(w, "amatchd_guards_set_total %d\n", p.GuardsSet)
	fmt.Fprintf(w, "# HELP amatchd_nlcc_tokens_initiated_total NLCC walk tokens initiated.\n")
	fmt.Fprintf(w, "# TYPE amatchd_nlcc_tokens_initiated_total counter\n")
	fmt.Fprintf(w, "amatchd_nlcc_tokens_initiated_total %d\n", p.TokensInitiated)
	fmt.Fprintf(w, "# HELP amatchd_nlcc_cache_hits_total NLCC walks skipped by the work-recycling cache; divide by (hits+tokens) for the cache-hit rate.\n")
	fmt.Fprintf(w, "# TYPE amatchd_nlcc_cache_hits_total counter\n")
	fmt.Fprintf(w, "amatchd_nlcc_cache_hits_total %d\n", p.CacheHits)
	fmt.Fprintf(w, "# HELP amatchd_nlcc_cache_evictions_total Work-recycling cache entries evicted to honor the byte cap.\n")
	fmt.Fprintf(w, "# TYPE amatchd_nlcc_cache_evictions_total counter\n")
	fmt.Fprintf(w, "amatchd_nlcc_cache_evictions_total %d\n", p.CacheEvictions)

	fmt.Fprintf(w, "# HELP amatchd_compaction_checks_total Search-space compaction threshold evaluations.\n")
	fmt.Fprintf(w, "# TYPE amatchd_compaction_checks_total counter\n")
	fmt.Fprintf(w, "amatchd_compaction_checks_total %d\n", p.CompactionChecks)
	fmt.Fprintf(w, "# HELP amatchd_compactions_total Compacted graph views built by the pipeline.\n")
	fmt.Fprintf(w, "# TYPE amatchd_compactions_total counter\n")
	fmt.Fprintf(w, "amatchd_compactions_total %d\n", p.Compactions)
	fmt.Fprintf(w, "# HELP amatchd_compactions_declined_total Compactions skipped because the view would not fit the query's byte budget.\n")
	fmt.Fprintf(w, "# TYPE amatchd_compactions_declined_total counter\n")
	fmt.Fprintf(w, "amatchd_compactions_declined_total %d\n", p.CompactionsDeclined)
	fmt.Fprintf(w, "# HELP amatchd_compaction_bytes_reclaimed_total Working-set bytes the kernels stopped touching thanks to compaction.\n")
	fmt.Fprintf(w, "# TYPE amatchd_compaction_bytes_reclaimed_total counter\n")
	fmt.Fprintf(w, "amatchd_compaction_bytes_reclaimed_total %d\n", p.CompactionBytesReclaimed)
	fmt.Fprintf(w, "# HELP amatchd_pipeline_active_fraction Mean active fraction observed at compaction checks, before (pre) and after (post) compaction applied.\n")
	fmt.Fprintf(w, "# TYPE amatchd_pipeline_active_fraction gauge\n")
	preFrac, postFrac := 1.0, 1.0
	if p.CompactionChecks > 0 {
		preFrac = p.CompactionFracBefore / float64(p.CompactionChecks)
		postFrac = p.CompactionFracAfter / float64(p.CompactionChecks)
	}
	fmt.Fprintf(w, "amatchd_pipeline_active_fraction{stage=\"pre\"} %g\n", preFrac)
	fmt.Fprintf(w, "amatchd_pipeline_active_fraction{stage=\"post\"} %g\n", postFrac)

	fmt.Fprintf(w, "# HELP amatchd_fault_injected_total Faults injected by the distributed chaos transport, by kind.\n")
	fmt.Fprintf(w, "# TYPE amatchd_fault_injected_total counter\n")
	fmt.Fprintf(w, "amatchd_fault_injected_total{kind=\"drop\"} %d\n", p.FaultDrops)
	fmt.Fprintf(w, "amatchd_fault_injected_total{kind=\"duplicate\"} %d\n", p.FaultDups)
	fmt.Fprintf(w, "amatchd_fault_injected_total{kind=\"reorder\"} %d\n", p.FaultReorders)
	fmt.Fprintf(w, "amatchd_fault_injected_total{kind=\"delay\"} %d\n", p.FaultDelays)
	fmt.Fprintf(w, "# HELP amatchd_retransmissions_total Unacked messages retransmitted by the fault-tolerant transport.\n")
	fmt.Fprintf(w, "# TYPE amatchd_retransmissions_total counter\n")
	fmt.Fprintf(w, "amatchd_retransmissions_total %d\n", p.Retries)
	fmt.Fprintf(w, "# HELP amatchd_redeliveries_total Duplicate deliveries suppressed by receiver dedup.\n")
	fmt.Fprintf(w, "# TYPE amatchd_redeliveries_total counter\n")
	fmt.Fprintf(w, "amatchd_redeliveries_total %d\n", p.Redeliveries)
	fmt.Fprintf(w, "# HELP amatchd_rank_checkpoints_total Per-rank state checkpoints taken at traversal attempt starts.\n")
	fmt.Fprintf(w, "# TYPE amatchd_rank_checkpoints_total counter\n")
	fmt.Fprintf(w, "amatchd_rank_checkpoints_total %d\n", p.RankCheckpoints)
	fmt.Fprintf(w, "# HELP amatchd_checkpoint_bytes_total Serialized checkpoint bytes written.\n")
	fmt.Fprintf(w, "# TYPE amatchd_checkpoint_bytes_total counter\n")
	fmt.Fprintf(w, "amatchd_checkpoint_bytes_total %d\n", p.CheckpointBytes)
	fmt.Fprintf(w, "# HELP amatchd_rank_crashes_total Injected rank crashes.\n")
	fmt.Fprintf(w, "# TYPE amatchd_rank_crashes_total counter\n")
	fmt.Fprintf(w, "amatchd_rank_crashes_total %d\n", p.RankCrashes)
	fmt.Fprintf(w, "# HELP amatchd_rank_restores_total Rank states restored from checkpoints after crashes.\n")
	fmt.Fprintf(w, "# TYPE amatchd_rank_restores_total counter\n")
	fmt.Fprintf(w, "amatchd_rank_restores_total %d\n", p.RankRestores)
	fmt.Fprintf(w, "# HELP amatchd_rank_stalls_total Injected rank stalls.\n")
	fmt.Fprintf(w, "# TYPE amatchd_rank_stalls_total counter\n")
	fmt.Fprintf(w, "amatchd_rank_stalls_total %d\n", p.RankStalls)

	fmt.Fprintf(w, "# HELP amatchd_result_cache_hits_total /match queries served from the cross-query result cache (verbatim hits plus coalesced single-flight followers).\n")
	fmt.Fprintf(w, "# TYPE amatchd_result_cache_hits_total counter\n")
	fmt.Fprintf(w, "amatchd_result_cache_hits_total %d\n", cg.resultHits)
	fmt.Fprintf(w, "# HELP amatchd_result_cache_misses_total Cacheable /match queries that led a pipeline run.\n")
	fmt.Fprintf(w, "# TYPE amatchd_result_cache_misses_total counter\n")
	fmt.Fprintf(w, "amatchd_result_cache_misses_total %d\n", cg.resultMisses)
	fmt.Fprintf(w, "# HELP amatchd_result_cache_evictions_total Result bodies evicted to honor the byte cap.\n")
	fmt.Fprintf(w, "# TYPE amatchd_result_cache_evictions_total counter\n")
	fmt.Fprintf(w, "amatchd_result_cache_evictions_total %d\n", cg.resultEvictions)
	fmt.Fprintf(w, "# HELP amatchd_result_cache_bytes Resident bytes of cached result bodies.\n")
	fmt.Fprintf(w, "# TYPE amatchd_result_cache_bytes gauge\n")
	fmt.Fprintf(w, "amatchd_result_cache_bytes %d\n", cg.resultBytes)
	fmt.Fprintf(w, "# HELP amatchd_result_cache_entries Cached result bodies currently resident.\n")
	fmt.Fprintf(w, "# TYPE amatchd_result_cache_entries gauge\n")
	fmt.Fprintf(w, "amatchd_result_cache_entries %d\n", cg.resultEntries)

	fmt.Fprintf(w, "# HELP amatchd_shared_nlcc_hits_total Walk verdicts recycled from the shared cross-query NLCC store.\n")
	fmt.Fprintf(w, "# TYPE amatchd_shared_nlcc_hits_total counter\n")
	fmt.Fprintf(w, "amatchd_shared_nlcc_hits_total %d\n", cg.sharedHits)
	fmt.Fprintf(w, "# HELP amatchd_shared_nlcc_misses_total Shared NLCC store probes that found no recorded verdict.\n")
	fmt.Fprintf(w, "# TYPE amatchd_shared_nlcc_misses_total counter\n")
	fmt.Fprintf(w, "amatchd_shared_nlcc_misses_total %d\n", cg.sharedMisses)
	fmt.Fprintf(w, "# HELP amatchd_shared_nlcc_evictions_total Shared NLCC constraint sets evicted to honor the byte cap.\n")
	fmt.Fprintf(w, "# TYPE amatchd_shared_nlcc_evictions_total counter\n")
	fmt.Fprintf(w, "amatchd_shared_nlcc_evictions_total %d\n", cg.sharedEvictions)
	fmt.Fprintf(w, "# HELP amatchd_shared_nlcc_bytes Resident bytes of the shared NLCC store.\n")
	fmt.Fprintf(w, "# TYPE amatchd_shared_nlcc_bytes gauge\n")
	fmt.Fprintf(w, "amatchd_shared_nlcc_bytes %d\n", cg.sharedBytes)
	fmt.Fprintf(w, "# HELP amatchd_shared_nlcc_sets Constraint sets currently resident in the shared NLCC store.\n")
	fmt.Fprintf(w, "# TYPE amatchd_shared_nlcc_sets gauge\n")
	fmt.Fprintf(w, "amatchd_shared_nlcc_sets %d\n", cg.sharedSets)

	fmt.Fprintf(w, "# HELP amatchd_budget_exhausted_total Queries stopped by per-query budget exhaustion (work, bytes or wall).\n")
	fmt.Fprintf(w, "# TYPE amatchd_budget_exhausted_total counter\n")
	fmt.Fprintf(w, "amatchd_budget_exhausted_total %d\n", r.budgetExhausted)
	fmt.Fprintf(w, "# HELP amatchd_partial_results_total Budget-exhausted queries served as anytime partial results (completed levels exact).\n")
	fmt.Fprintf(w, "# TYPE amatchd_partial_results_total counter\n")
	fmt.Fprintf(w, "amatchd_partial_results_total %d\n", r.partialResults)
	fmt.Fprintf(w, "# HELP amatchd_query_panics_total Pipeline panics isolated to their query (500 returned, process survived).\n")
	fmt.Fprintf(w, "# TYPE amatchd_query_panics_total counter\n")
	fmt.Fprintf(w, "amatchd_query_panics_total %d\n", r.queryPanics)
	fmt.Fprintf(w, "# HELP amatchd_ingest_batches_total Successfully applied ingest batches (epoch swaps driven by /ingest).\n")
	fmt.Fprintf(w, "# TYPE amatchd_ingest_batches_total counter\n")
	fmt.Fprintf(w, "amatchd_ingest_batches_total %d\n", r.ingestBatches)
	fmt.Fprintf(w, "# HELP amatchd_ingest_operations_total Ingested mutations by kind, summed over applied batches.\n")
	fmt.Fprintf(w, "# TYPE amatchd_ingest_operations_total counter\n")
	fmt.Fprintf(w, "amatchd_ingest_operations_total{kind=\"insert\"} %d\n", r.ingestInserts)
	fmt.Fprintf(w, "amatchd_ingest_operations_total{kind=\"delete\"} %d\n", r.ingestDeletes)
	fmt.Fprintf(w, "amatchd_ingest_operations_total{kind=\"relabel\"} %d\n", r.ingestRelabels)
	fmt.Fprintf(w, "# HELP amatchd_ingest_rejected_total Ingest batches rejected with nothing applied (oversized, malformed or failing delta validation).\n")
	fmt.Fprintf(w, "# TYPE amatchd_ingest_rejected_total counter\n")
	fmt.Fprintf(w, "amatchd_ingest_rejected_total %d\n", r.ingestRejected)
	fmt.Fprintf(w, "# HELP amatchd_wal_appends_total Ingest batches durably appended to the write-ahead log.\n")
	fmt.Fprintf(w, "# TYPE amatchd_wal_appends_total counter\n")
	fmt.Fprintf(w, "amatchd_wal_appends_total %d\n", wg.appends)
	fmt.Fprintf(w, "# HELP amatchd_wal_fsyncs_total fsync calls issued by the write-ahead log (appends, interval syncs, rotations, checkpoints).\n")
	fmt.Fprintf(w, "# TYPE amatchd_wal_fsyncs_total counter\n")
	fmt.Fprintf(w, "amatchd_wal_fsyncs_total %d\n", wg.fsyncs)
	fmt.Fprintf(w, "# HELP amatchd_wal_bytes_total Bytes written to write-ahead log segments (records plus segment headers).\n")
	fmt.Fprintf(w, "# TYPE amatchd_wal_bytes_total counter\n")
	fmt.Fprintf(w, "amatchd_wal_bytes_total %d\n", wg.bytes)
	fmt.Fprintf(w, "# HELP amatchd_wal_checkpoints_total CSR checkpoints written to bound replay to the tail.\n")
	fmt.Fprintf(w, "# TYPE amatchd_wal_checkpoints_total counter\n")
	fmt.Fprintf(w, "amatchd_wal_checkpoints_total %d\n", wg.checkpoints)
	fmt.Fprintf(w, "# HELP amatchd_wal_replayed_records_total Log records replayed during startup recovery.\n")
	fmt.Fprintf(w, "# TYPE amatchd_wal_replayed_records_total counter\n")
	fmt.Fprintf(w, "amatchd_wal_replayed_records_total %d\n", wg.replayed)
	fmt.Fprintf(w, "# HELP amatchd_wal_recovery_seconds Wall time startup recovery took (checkpoint load plus tail replay).\n")
	fmt.Fprintf(w, "# TYPE amatchd_wal_recovery_seconds gauge\n")
	fmt.Fprintf(w, "amatchd_wal_recovery_seconds %g\n", wg.recoverySeconds)
	fmt.Fprintf(w, "# HELP amatchd_wal_torn_tail_truncations_total Torn log tails truncated during recovery (unacknowledged final records discarded).\n")
	fmt.Fprintf(w, "# TYPE amatchd_wal_torn_tail_truncations_total counter\n")
	fmt.Fprintf(w, "amatchd_wal_torn_tail_truncations_total %d\n", wg.tornTails)
	fmt.Fprintf(w, "# HELP amatchd_graph_epoch Current graph snapshot epoch (advances on every ingest or bump).\n")
	fmt.Fprintf(w, "# TYPE amatchd_graph_epoch gauge\n")
	fmt.Fprintf(w, "amatchd_graph_epoch %d\n", epoch)
	fmt.Fprintf(w, "# HELP amatchd_snapshots_retired_total Superseded graph snapshots whose last reader has finished.\n")
	fmt.Fprintf(w, "# TYPE amatchd_snapshots_retired_total counter\n")
	fmt.Fprintf(w, "amatchd_snapshots_retired_total %d\n", retired)
	fmt.Fprintf(w, "# HELP amatchd_snapshot_reclaimed_bytes_total CSR topology bytes made collectible by snapshot retirement (each distinct graph counted once, when its last epoch retires).\n")
	fmt.Fprintf(w, "# TYPE amatchd_snapshot_reclaimed_bytes_total counter\n")
	fmt.Fprintf(w, "amatchd_snapshot_reclaimed_bytes_total %d\n", reclaimedBytes)
	fmt.Fprintf(w, "# HELP amatchd_heap_bytes Live Go heap bytes, sampled from runtime/metrics (admission watermark input).\n")
	fmt.Fprintf(w, "# TYPE amatchd_heap_bytes gauge\n")
	fmt.Fprintf(w, "amatchd_heap_bytes %d\n", heapBytes)

	fmt.Fprintf(w, "# HELP amatchd_uptime_seconds Seconds since the server started.\n")
	fmt.Fprintf(w, "# TYPE amatchd_uptime_seconds gauge\n")
	fmt.Fprintf(w, "amatchd_uptime_seconds %g\n", time.Since(r.start).Seconds())
}

// trimFloat renders a bucket bound the way Prometheus clients expect
// (no trailing zeros, e.g. "0.005", "1", "30").
func trimFloat(f float64) string {
	return fmt.Sprintf("%g", f)
}
