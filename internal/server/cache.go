package server

import (
	"container/list"
	"fmt"
	"sync"
	"sync/atomic"

	"approxmatch/internal/pattern"
)

// Cross-query result caching (ROADMAP item 1: shared execution).
//
// Admission canonicalizes the template (pattern.CanonicalForm), so every
// query isomorphic to a previously-served one — any vertex relabeling, edge
// reordering or endpoint flip — maps to the same cache key and the same
// canonical execution. Because /match responses reference only background
// graph vertices and prototype indices of the canonical run (never the
// client's template vertex numbering), a cached body is served verbatim:
// the isomorphism translation is the identity once execution itself is
// canonical.
//
// The key is (graph epoch, k, count, vectors, pattern.CanonicalKey). The
// canonical key encodes labels, adjacency, edge labels AND mandatory flags
// — two templates share it exactly when their prototype sets, and hence
// their results, provably coincide. Epoch versioning (Server.BumpEpoch)
// invalidates every key when the background graph is swapped.
//
// Partial (budget-exhausted) responses are never cached: they reflect one
// query's budget, not the graph.

// maxCanonCost bounds the permutations template canonicalization may
// enumerate at admission (it is factorial in the color-cell sizes, e.g. an
// all-same-label clique). Canonicalization runs on the request path, so the
// bound is sized for sub-second worst-case admission (~4µs per enumerated
// permutation). Costlier templates bypass the result cache and run under
// the client's own numbering — correctness is unaffected, the query is
// merely uncacheable.
const maxCanonCost = 1 << 16

// resultKey derives the cache key for a request whose template canonical
// key is ck.
func resultKey(epoch uint64, req *MatchRequest, ck string) string {
	return fmt.Sprintf("e%d|k%d|c%t|v%t|%s", epoch, req.K, req.Count, req.Vectors, ck)
}

// canonicalizeForCache rewrites t to its canonical form and returns the
// cache key, or ok=false when the template is too costly to canonicalize.
func canonicalizeForCache(epoch uint64, req *MatchRequest, t *pattern.Template) (*pattern.Template, string, bool) {
	if pattern.CanonicalCost(t) > maxCanonCost {
		return t, "", false
	}
	ct, _ := pattern.CanonicalForm(t)
	return ct, resultKey(epoch, req, pattern.CanonicalKey(ct)), true
}

// resultCache is a byte-capped, concurrency-safe LRU over serialized
// /match response bodies. Values are immutable byte slices served verbatim,
// which is what makes warm responses bit-identical to the cold run that
// populated them. Eviction never affects exactness — a victim is simply
// recomputed by the next query that wants it.
type resultCache struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	entries  map[string]*list.Element
	lru      *list.List // front = most recent; values are *rcEntry

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

// resultCacheEntryOverhead is the fixed per-entry charge covering the map
// cell, the list element and the rcEntry header — memory a cached result
// occupies beyond its key and body bytes. Without it (and the key charge) a
// flood of tiny bodies under long canonical keys could resident-size far past
// the configured cap while the accounting read near zero.
const resultCacheEntryOverhead = 128

type rcEntry struct {
	key  string
	body []byte
	// size is the bytes charged against the cap at insertion: key + body +
	// fixed overhead. Stored so eviction refunds exactly what put charged.
	size int64
}

// entryCost is the byte charge for caching body under key.
func entryCost(key string, body []byte) int64 {
	return int64(len(key)) + int64(len(body)) + resultCacheEntryOverhead
}

func newResultCache(maxBytes int64) *resultCache {
	return &resultCache{
		maxBytes: maxBytes,
		entries:  make(map[string]*list.Element),
		lru:      list.New(),
	}
}

// get returns the cached body for key, or nil. Counting is left to the
// caller (a single-flight follower is a hit too, but never calls get).
func (c *resultCache) get(key string) []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil
	}
	c.lru.MoveToFront(el)
	return el.Value.(*rcEntry).body
}

// put inserts body under key, evicting least-recently-used entries to honor
// the byte cap. Entries are charged their full footprint — key bytes, body
// bytes and a fixed per-entry overhead — not just the body (a body-only
// charge undercounts small-body/long-key workloads). Entries costlier than
// the whole cap are skipped.
func (c *resultCache) put(key string, body []byte) {
	need := entryCost(key, body)
	if need > c.maxBytes {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		// Concurrent leader of the same key (possible across an epoch bump's
		// purge): keep the resident body, refresh recency.
		c.lru.MoveToFront(el)
		return
	}
	for c.bytes+need > c.maxBytes {
		back := c.lru.Back()
		if back == nil {
			break
		}
		victim := back.Value.(*rcEntry)
		c.lru.Remove(back)
		delete(c.entries, victim.key)
		c.bytes -= victim.size
		c.evictions.Add(1)
	}
	c.entries[key] = c.lru.PushFront(&rcEntry{key: key, body: body, size: need})
	c.bytes += need
}

// purge drops every entry (epoch bump); cumulative counters survive.
func (c *resultCache) purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[string]*list.Element)
	c.lru = list.New()
	c.bytes = 0
}

// stats samples the cache gauges for /metrics.
func (c *resultCache) stats() (bytes int64, entries int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes, len(c.entries)
}

// flight is one in-progress computation of a cache key. The leader closes
// done after setting body (nil = the run failed or went partial; followers
// then run their own query rather than stampeding on a shared error).
type flight struct {
	done chan struct{}
	body []byte
}

// flightGroup coalesces concurrent identical queries: the first request for
// a key becomes the leader and runs the pipeline; the rest wait on the
// flight — without holding scheduler slots — and serve the leader's bytes.
type flightGroup struct {
	mu      sync.Mutex
	flights map[string]*flight
}

func newFlightGroup() *flightGroup {
	return &flightGroup{flights: make(map[string]*flight)}
}

// join returns the flight for key and whether the caller is its leader.
func (g *flightGroup) join(key string) (*flight, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if f, ok := g.flights[key]; ok {
		return f, false
	}
	f := &flight{done: make(chan struct{})}
	g.flights[key] = f
	return f, true
}

// complete publishes the leader's body (nil on failure) and releases the
// key; deferred by the leader so followers can never wait forever.
func (g *flightGroup) complete(key string, f *flight, body []byte) {
	g.mu.Lock()
	delete(g.flights, key)
	g.mu.Unlock()
	f.body = body
	close(f.done)
}
