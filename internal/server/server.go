// Package server exposes the approximate-matching pipeline as an HTTP
// service for the bulk-labeling scenario (S4): a long-lived process loads
// the background graph once and answers template queries over a small JSON
// API — the "high-throughput matching pipeline" deployment shape the paper
// motivates for ML feature extraction.
//
//	POST /match    {"template": "...", "k": 2, "count": true}
//	POST /explore  {"template": "...", "k": 4}
//	GET  /stats
//
// Templates use the pattern text format ("v <i> <label>" / "e <i> <j>
// [label=<L>] [mandatory]"). Responses carry per-prototype summaries and,
// when requested, per-vertex match vectors.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"approxmatch/internal/core"
	"approxmatch/internal/graph"
	"approxmatch/internal/pattern"
)

// Server answers matching queries over one background graph. Queries are
// serialized with a mutex: the pipeline itself parallelizes internally, and
// a single in-flight query keeps memory bounded.
type Server struct {
	mu sync.Mutex
	g  *graph.Graph
	// MaxEditDistance bounds accepted k values (default 6).
	MaxEditDistance int
}

// New wraps a background graph.
func New(g *graph.Graph) *Server {
	return &Server{g: g, MaxEditDistance: 6}
}

// Handler returns the HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /match", s.handleMatch)
	mux.HandleFunc("POST /explore", s.handleExplore)
	mux.HandleFunc("GET /stats", s.handleStats)
	return mux
}

// MatchRequest is the /match and /explore request body.
type MatchRequest struct {
	// Template in the pattern text format.
	Template string `json:"template"`
	// K is the edit-distance budget.
	K int `json:"k"`
	// Count enumerates match counts per prototype.
	Count bool `json:"count"`
	// Vectors includes per-vertex match vectors for matching vertices.
	Vectors bool `json:"vectors"`
}

// PrototypeSummary describes one prototype's result.
type PrototypeSummary struct {
	Index      int    `json:"index"`
	Dist       int    `json:"dist"`
	Vertices   int    `json:"vertices"`
	MatchCount *int64 `json:"matches,omitempty"`
}

// MatchResponse is the /match response body.
type MatchResponse struct {
	Prototypes []PrototypeSummary `json:"prototypes"`
	// Labels counts (vertex, prototype) labels generated.
	Labels int64 `json:"labels"`
	// Vectors maps vertex id → matched prototype indices (only matching
	// vertices; present when requested).
	Vectors map[string][]int `json:"vectors,omitempty"`
	// ElapsedMS is the query's wall time.
	ElapsedMS int64 `json:"elapsed_ms"`
}

// ExploreResponse is the /explore response body.
type ExploreResponse struct {
	FoundDist          int   `json:"found_dist"`
	PrototypesSearched int   `json:"prototypes_searched"`
	MatchingVertices   int   `json:"matching_vertices"`
	ElapsedMS          int64 `json:"elapsed_ms"`
}

// StatsResponse is the /stats response body.
type StatsResponse struct {
	Vertices   int     `json:"vertices"`
	Edges      int     `json:"edges"`
	MaxDegree  int     `json:"max_degree"`
	AvgDegree  float64 `json:"avg_degree"`
	Labels     int     `json:"labels"`
	EdgeLabels bool    `json:"edge_labels"`
}

func (s *Server) parseRequest(w http.ResponseWriter, r *http.Request) (*MatchRequest, *pattern.Template, bool) {
	var req MatchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("bad request: %v", err), http.StatusBadRequest)
		return nil, nil, false
	}
	if req.K < 0 || req.K > s.MaxEditDistance {
		http.Error(w, fmt.Sprintf("k must be in [0,%d]", s.MaxEditDistance), http.StatusBadRequest)
		return nil, nil, false
	}
	t, err := pattern.Parse(strings.NewReader(req.Template))
	if err != nil {
		http.Error(w, fmt.Sprintf("bad template: %v", err), http.StatusBadRequest)
		return nil, nil, false
	}
	return &req, t, true
}

func (s *Server) handleMatch(w http.ResponseWriter, r *http.Request) {
	req, t, ok := s.parseRequest(w, r)
	if !ok {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	start := time.Now()
	cfg := core.DefaultConfig(req.K)
	cfg.CountMatches = req.Count
	res, err := core.Run(s.g, t, cfg)
	if err != nil {
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	resp := MatchResponse{Labels: res.LabelsGenerated(), ElapsedMS: time.Since(start).Milliseconds()}
	for pi, p := range res.Set.Protos {
		ps := PrototypeSummary{Index: pi, Dist: p.Dist, Vertices: res.Solutions[pi].Verts.Count()}
		if req.Count {
			c := res.Solutions[pi].MatchCount
			ps.MatchCount = &c
		}
		resp.Prototypes = append(resp.Prototypes, ps)
	}
	if req.Vectors {
		resp.Vectors = make(map[string][]int)
		res.UnionVertices().ForEach(func(v int) {
			resp.Vectors[fmt.Sprintf("%d", v)] = res.MatchVector(graph.VertexID(v))
		})
	}
	writeJSON(w, resp)
}

func (s *Server) handleExplore(w http.ResponseWriter, r *http.Request) {
	req, t, ok := s.parseRequest(w, r)
	if !ok {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	start := time.Now()
	res, err := core.RunTopDown(s.g, t, core.DefaultConfig(req.K))
	if err != nil {
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	writeJSON(w, ExploreResponse{
		FoundDist:          res.FoundDist,
		PrototypesSearched: res.PrototypesSearched,
		MatchingVertices:   res.MatchingVertices.Count(),
		ElapsedMS:          time.Since(start).Milliseconds(),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := graph.ComputeStats(s.g)
	writeJSON(w, StatsResponse{
		Vertices:   st.NumVertices,
		Edges:      st.NumEdges,
		MaxDegree:  st.MaxDegree,
		AvgDegree:  st.AvgDegree,
		Labels:     st.NumLabels,
		EdgeLabels: s.g.HasEdgeLabels(),
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
