// Package server exposes the approximate-matching pipeline as an HTTP
// service for the bulk-labeling scenario (S4): a long-lived process loads
// the background graph once and answers template queries over a small JSON
// API — the "high-throughput matching pipeline" deployment shape the paper
// motivates for ML feature extraction.
//
//	POST /match    {"template": "...", "k": 2, "count": true}
//	POST /explore  {"template": "...", "k": 4}
//	GET  /stats
//	GET  /metrics
//	GET  /healthz
//
// Templates use the pattern text format ("v <i> <label>" / "e <i> <j>
// [label=<L>] [mandatory]"). Responses carry per-prototype summaries and,
// when requested, per-vertex match vectors.
//
// Queries run concurrently under a bounded scheduler: up to
// Config.MaxConcurrent pipeline runs in flight (each internally parallel
// via core.RunParallelContext), a small admission queue, and immediate
// 503 + Retry-After beyond that. Every query carries the request context —
// optionally bounded by Config.QueryTimeout — so client disconnects and
// deadlines stop pipeline work instead of letting it run to completion.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"runtime/debug"
	"strings"
	"sync/atomic"
	"time"

	"approxmatch/internal/core"
	"approxmatch/internal/dist"
	"approxmatch/internal/graph"
	"approxmatch/internal/pattern"
	"approxmatch/internal/wal"
)

// Config tunes the serving layer. The zero value picks GOMAXPROCS-aware
// defaults, so NewWithConfig(g, Config{}) behaves like New(g).
type Config struct {
	// MaxConcurrent bounds in-flight pipeline runs (default:
	// max(1, GOMAXPROCS/2) — each run is itself parallel).
	MaxConcurrent int
	// QueueDepth bounds admitted queries waiting for a slot (default:
	// 2×MaxConcurrent). Beyond in-flight+queued, requests get 503.
	QueueDepth int
	// Parallelism is the per-query core.RunParallelContext width
	// (default: max(2, GOMAXPROCS/MaxConcurrent)).
	Parallelism int
	// Workers is the per-query worker count for the constraint-checking
	// kernels (core.Config.Workers). 0 picks a scheduler-aware default —
	// GOMAXPROCS/MaxConcurrent, so slots × workers never exceeds
	// GOMAXPROCS, falling back to the sequential kernels when that quota
	// is a single core. Negative forces the sequential kernels.
	Workers int
	// CompactBelow is the per-query physical-compaction threshold
	// (core.Config.CompactBelow). 0 keeps the pipeline default (0.5);
	// negative disables compaction.
	CompactBelow float64
	// NoSymmetry disables automorphism symmetry breaking in the counting
	// and enumeration kernels (core.Config.NoSymmetry). Results are
	// identical either way; this is the ablation knob behind amatchd
	// -no-symmetry.
	NoSymmetry bool
	// NoGuards disables failure-guard pruning in the verification kernels
	// (core.Config.NoGuards). Results are identical either way; the
	// ablation knob behind amatchd -no-guards.
	NoGuards bool
	// QueryTimeout bounds each query's pipeline time; 0 disables (the
	// request context still cancels on client disconnect).
	QueryTimeout time.Duration
	// Chaos, when non-nil, routes queries through the distributed engine
	// with the given fault plane instead of the in-process parallel
	// pipeline — the fault-injection serving mode behind amatchd's
	// -chaos-* flags. Results are bit-identical to the normal path (the
	// chaos differential suite's guarantee); fault counters surface on
	// /metrics.
	Chaos *dist.Faults
	// ChaosRanks is the distributed deployment size in chaos mode
	// (default 4). Each query builds its own engine: rank ownership
	// mutates during a run, so engines cannot be shared across concurrent
	// queries.
	ChaosRanks int
	// MaxBodyBytes caps the request body (default 1 MiB; larger bodies
	// get 413).
	MaxBodyBytes int64
	// MaxWork and MaxBytes bound each query's pipeline work units and
	// auxiliary allocation (core.Budget); 0 = unlimited. A query that
	// exhausts either returns a Partial result on /match (HTTP 200 with
	// the partial flag; completed levels exact) and 504 on /explore.
	MaxWork  int64
	MaxBytes int64
	// CacheBytes caps each query's NLCC work-recycling cache; beyond it,
	// least-recently-used constraint sets are evicted (recomputation cost
	// only, never correctness). 0 = unbounded. With SharedNLCC set it caps
	// the one shared store instead.
	CacheBytes int64
	// ResultCacheBytes enables the cross-query result cache: completed
	// /match responses are cached under the template's canonical key (byte
	// capped, LRU) and served verbatim to isomorphic queries; concurrent
	// identical queries are coalesced into one pipeline run (single
	// flight). 0 disables. Partial results are never cached. Chaos mode
	// bypasses the cache so injected faults keep exercising the pipeline.
	ResultCacheBytes int64
	// SharedNLCC promotes the per-query NLCC work-recycling cache to one
	// store shared by every query on this graph epoch, so constraint walks
	// recycle across queries (Obs. 2 across the query boundary). Cache
	// content never affects results — exact verification restores
	// precision — so sharing is correctness-neutral by construction.
	SharedNLCC bool
	// PartialGrace is the slow-query watchdog window. With QueryTimeout
	// set, a query crossing QueryTimeout is first downgraded to
	// partial-result mode (wall budget exhaustion → anytime partial
	// result) and only killed outright — context deadline — once the
	// grace has passed too. 0 picks QueryTimeout/4, at least 1s; negative
	// disables the downgrade (hard kill at QueryTimeout).
	PartialGrace time.Duration
	// MemHighWatermark sheds new queries with 503 while the live Go heap
	// (runtime/metrics) exceeds this many bytes; 0 disables. In-flight
	// queries are unaffected — their budgets bound them.
	MemHighWatermark uint64
	// EnableIngest registers POST /ingest: live mutation batches (edge
	// inserts/deletes, vertex relabels) applied as epoch-swapped snapshots
	// while in-flight queries keep reading their epoch. Off by default —
	// an unauthenticated graph-mutation endpoint is a data-integrity and
	// cache-flush DoS lever, so deployments must opt in (amatchd -ingest).
	EnableIngest bool
	// IngestMaxBodyBytes caps the /ingest request body (default 16 MiB;
	// larger batches get 413). Ingest batches are legitimately much larger
	// than queries, so they do not share MaxBodyBytes.
	IngestMaxBodyBytes int64
	// Logger receives one structured line per finished request (default:
	// discard).
	Logger *slog.Logger
	// Coordinator, when non-nil, routes /match and /explore queries to a
	// group of amatchrank worker processes (see internal/dist.DialGroup)
	// instead of the in-process engine; the response bytes are relayed
	// verbatim. All other endpoints stay local, and a nil Coordinator is
	// the in-process fallback. The server does not take ownership — the
	// caller closes the coordinator on shutdown.
	Coordinator *dist.Coordinator
	// WAL, when non-nil, makes ingest durable: every accepted batch is
	// appended to the write-ahead delta log — and fsynced, per the log's
	// sync policy — before its epoch is published, so an acknowledged
	// /ingest response implies the batch survives a crash (the
	// write-ahead contract; see internal/wal). The server does not take
	// ownership: the caller closes the log on shutdown.
	WAL *wal.Log
	// StartEpoch is the snapshot store's starting epoch. Non-zero only on
	// the WAL recovery path, where the store must resume at the epoch the
	// recovered graph corresponds to so the log's epoch chain, the
	// epoch-keyed caches and replaying clients all agree.
	StartEpoch uint64
}

// partialGrace resolves the watchdog window (see Config.PartialGrace);
// 0 means the downgrade is disabled.
func (c Config) partialGrace() time.Duration {
	if c.QueryTimeout <= 0 || c.PartialGrace < 0 {
		return 0
	}
	if c.PartialGrace > 0 {
		return c.PartialGrace
	}
	g := c.QueryTimeout / 4
	if g < time.Second {
		g = time.Second
	}
	return g
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent < 1 {
		c.MaxConcurrent = runtime.GOMAXPROCS(0) / 2
		if c.MaxConcurrent < 1 {
			c.MaxConcurrent = 1
		}
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 2 * c.MaxConcurrent
	}
	if c.QueueDepth < 0 { // explicit "no queue"
		c.QueueDepth = 0
	}
	if c.Parallelism < 1 {
		c.Parallelism = runtime.GOMAXPROCS(0) / c.MaxConcurrent
		if c.Parallelism < 2 {
			c.Parallelism = 2
		}
	}
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0) / c.MaxConcurrent
		if c.Workers <= 1 {
			// One core per slot: the superstep schedule would only add
			// barrier overhead, so keep the sequential reference kernels.
			c.Workers = -1
		}
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.IngestMaxBodyBytes <= 0 {
		c.IngestMaxBodyBytes = 16 << 20
	}
	if c.ChaosRanks < 1 {
		c.ChaosRanks = 4
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return c
}

// Server answers matching queries over one background graph under a bounded
// concurrent scheduler (see Config).
type Server struct {
	// snaps holds the epoch-swapped graph snapshots: every query pins the
	// current snapshot for its whole run, so /ingest can swap in the next
	// epoch underneath without disturbing in-flight work. The snapshot's
	// epoch participates in every result cache key, so a swap atomically
	// versions out all cached results even if a stale leader later
	// completes an old-epoch flight.
	snaps *graph.SnapshotStore
	// MaxEditDistance bounds accepted k values (default 6).
	MaxEditDistance int

	cfg     Config
	sched   *scheduler
	metrics *metricsRegistry
	mem     *memWatcher
	log     *slog.Logger
	stats   atomic.Pointer[StatsResponse]
	qid     atomic.Uint64

	// rcache/flights implement the cross-query result cache (nil when
	// Config.ResultCacheBytes is 0); nlccShared is the cross-query NLCC
	// store (nil unless Config.SharedNLCC).
	rcache     *resultCache
	flights    *flightGroup
	nlccShared *core.Cache
}

// New wraps a background graph with default scheduling (see Config).
func New(g *graph.Graph) *Server { return NewWithConfig(g, Config{}) }

// NewWithConfig wraps a background graph. Graph statistics are computed once
// here so /stats is an O(1) health probe, not an O(V+E) walk per GET.
func NewWithConfig(g *graph.Graph, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		snaps:           graph.NewSnapshotStoreAt(g, cfg.StartEpoch),
		MaxEditDistance: 6,
		cfg:             cfg,
		sched:           newScheduler(cfg.MaxConcurrent, cfg.QueueDepth),
		metrics:         newMetricsRegistry(),
		mem:             newMemWatcher(cfg.MemHighWatermark),
		log:             cfg.Logger,
	}
	s.stats.Store(s.computeStats(g, cfg.StartEpoch))
	if cfg.ResultCacheBytes > 0 {
		s.rcache = newResultCache(cfg.ResultCacheBytes)
		s.flights = newFlightGroup()
	}
	if cfg.SharedNLCC {
		// The vertex set is fixed across epochs (deltas change edges and
		// labels only), so one store sized at construction stays valid for
		// the server's lifetime; ingest purges it instead of replacing it.
		s.nlccShared = core.NewCacheBytes(g.NumVertices(), cfg.CacheBytes)
	}
	return s
}

// computeStats builds the /stats payload for one epoch (an O(V+E) walk,
// done once per construction or ingest, never per GET).
func (s *Server) computeStats(g *graph.Graph, epoch uint64) *StatsResponse {
	st := graph.ComputeStats(g)
	return &StatsResponse{
		Vertices:   st.NumVertices,
		Edges:      st.NumEdges,
		MaxDegree:  st.MaxDegree,
		AvgDegree:  st.AvgDegree,
		Labels:     st.NumLabels,
		EdgeLabels: g.HasEdgeLabels(),
		Epoch:      epoch,
	}
}

// BumpEpoch republishes the current graph under a new epoch and invalidates
// both cross-query caches — the hook for out-of-band graph mutation (an
// operator swapping data files): the result cache is purged and versioned
// out (the epoch participates in every key, so even an in-flight leader
// finishing late cannot resurface a stale body to new queries), and the
// shared NLCC store drops its recycled verdicts. Exactness never depended
// on either cache, so the bump only restores cold-start performance.
// /ingest drives the same invalidation through its own epoch swap.
// Deliberately a method, not an HTTP endpoint: an unauthenticated
// cache-flush would be a denial-of-service lever.
func (s *Server) BumpEpoch() {
	var epoch uint64
	if s.cfg.WAL != nil {
		// The WAL's epoch chain must stay dense, so a bump is logged as an
		// empty delta (which still advances the epoch) rather than skipping
		// a log position. A log failure wedges the bump — same contract as
		// ingest: no published epoch without a durable record.
		ep, _, err := s.snaps.ApplyLogged(&graph.Delta{}, func(e uint64) error {
			return s.cfg.WAL.Append(e, &graph.Delta{})
		})
		if err != nil {
			s.log.LogAttrs(context.Background(), slog.LevelError, "epoch bump not logged",
				slog.String("error", err.Error()))
			return
		}
		epoch = ep
	} else {
		epoch = s.snaps.Bump()
	}
	s.stats.Store(s.computeStats(s.snaps.Current(), epoch))
	s.purgeCaches()
}

// purgeCaches drops both cross-query caches after an epoch swap. The result
// cache's old-epoch keys are already unreachable (new queries key by the new
// epoch); purging just returns the memory early.
func (s *Server) purgeCaches() {
	if s.rcache != nil {
		s.rcache.purge()
	}
	if s.nlccShared != nil {
		s.nlccShared.Purge()
	}
}

// Handler returns the HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /match", s.handleMatch)
	mux.HandleFunc("POST /explore", s.handleExplore)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	if s.cfg.EnableIngest {
		mux.HandleFunc("POST /ingest", s.handleIngest)
	}
	return mux
}

// MatchRequest is the /match and /explore request body.
type MatchRequest struct {
	// Template in the pattern text format.
	Template string `json:"template"`
	// K is the edit-distance budget.
	K int `json:"k"`
	// Count enumerates match counts per prototype.
	Count bool `json:"count"`
	// Vectors includes per-vertex match vectors for matching vertices.
	Vectors bool `json:"vectors"`
}

// PrototypeSummary describes one prototype's result. Exact is true when the
// prototype's edit-distance level completed — always on a full run; on a
// partial (budget-exhausted) run, non-exact prototypes' counts are unknown
// placeholders, never false positives.
type PrototypeSummary struct {
	Index      int    `json:"index"`
	Dist       int    `json:"dist"`
	Vertices   int    `json:"vertices"`
	MatchCount *int64 `json:"matches,omitempty"`
	Exact      bool   `json:"exact"`
}

// MatchResponse is the /match response body.
type MatchResponse struct {
	// Prototypes is always a JSON array (never null), one entry per
	// prototype.
	Prototypes []PrototypeSummary `json:"prototypes"`
	// Labels counts (vertex, prototype) labels generated.
	Labels int64 `json:"labels"`
	// Vectors maps vertex id → matched prototype indices (only matching
	// vertices). Always a JSON object (never null); populated only when
	// vectors were requested.
	Vectors map[string][]int `json:"vectors"`
	// ElapsedMS is the query's wall time.
	ElapsedMS int64 `json:"elapsed_ms"`
	// Partial is set when the query's budget ran out mid-pipeline: the
	// prototypes marked exact carry full-precision, full-recall results;
	// the rest are unknown (anytime partial result, Obs. 1).
	Partial bool `json:"partial"`
}

// ExploreResponse is the /explore response body.
type ExploreResponse struct {
	FoundDist          int   `json:"found_dist"`
	PrototypesSearched int   `json:"prototypes_searched"`
	MatchingVertices   int   `json:"matching_vertices"`
	ElapsedMS          int64 `json:"elapsed_ms"`
}

// StatsResponse is the /stats response body, describing the current graph
// epoch.
type StatsResponse struct {
	Vertices   int     `json:"vertices"`
	Edges      int     `json:"edges"`
	MaxDegree  int     `json:"max_degree"`
	AvgDegree  float64 `json:"avg_degree"`
	Labels     int     `json:"labels"`
	EdgeLabels bool    `json:"edge_labels"`
	Epoch      uint64  `json:"epoch"`
}

// request carries one query's bookkeeping from admission to the log line.
type request struct {
	id       string
	endpoint string
	start    time.Time
}

func (s *Server) begin(endpoint string) *request {
	return &request{
		id:       fmt.Sprintf("q%08d", s.qid.Add(1)),
		endpoint: endpoint,
		start:    time.Now(),
	}
}

// finish records the outcome in the metrics registry and emits the query's
// structured log line.
func (s *Server) finish(r *http.Request, q *request, outcome string, status int, attrs ...slog.Attr) {
	elapsed := time.Since(q.start)
	s.metrics.record(q.endpoint, outcome, elapsed)
	base := []slog.Attr{
		slog.String("qid", q.id),
		slog.String("endpoint", q.endpoint),
		slog.String("outcome", outcome),
		slog.Int("status", status),
		slog.Int64("elapsed_ms", elapsed.Milliseconds()),
		slog.String("remote", r.RemoteAddr),
	}
	s.log.LogAttrs(r.Context(), slog.LevelInfo, "query", append(base, attrs...)...)
}

// parseRequest decodes and validates the body. The body is capped at
// Config.MaxBodyBytes (413 on overflow). On failure it writes the error
// response, records the outcome and returns ok=false.
func (s *Server) parseRequest(w http.ResponseWriter, r *http.Request, q *request) (*MatchRequest, *pattern.Template, bool) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	var req MatchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			http.Error(w, fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit), http.StatusRequestEntityTooLarge)
			s.finish(r, q, outcomeTooLarge, http.StatusRequestEntityTooLarge)
		} else {
			http.Error(w, fmt.Sprintf("bad request: %v", err), http.StatusBadRequest)
			s.finish(r, q, outcomeBadRequest, http.StatusBadRequest)
		}
		return nil, nil, false
	}
	if req.K < 0 || req.K > s.MaxEditDistance {
		http.Error(w, fmt.Sprintf("k must be in [0,%d]", s.MaxEditDistance), http.StatusBadRequest)
		s.finish(r, q, outcomeBadRequest, http.StatusBadRequest, slog.Int("k", req.K))
		return nil, nil, false
	}
	t, err := pattern.Parse(strings.NewReader(req.Template))
	if err != nil {
		http.Error(w, fmt.Sprintf("bad template: %v", err), http.StatusBadRequest)
		s.finish(r, q, outcomeBadRequest, http.StatusBadRequest, slog.Int("k", req.K))
		return nil, nil, false
	}
	return &req, t, true
}

// queryContext derives the pipeline context: the request context (fires on
// client disconnect and server shutdown) bounded by the query timeout plus
// the watchdog grace. With the downgrade enabled, the wall *budget* fires at
// QueryTimeout and turns the query into a partial result; the context
// deadline is the backstop that kills a query which cannot even wind down
// within the grace.
func (s *Server) queryContext(r *http.Request) (context.Context, context.CancelFunc) {
	if s.cfg.QueryTimeout > 0 {
		return context.WithTimeout(r.Context(), s.cfg.QueryTimeout+s.cfg.partialGrace())
	}
	return context.WithCancel(r.Context())
}

// queryBudget assembles the per-query budget from the server config: work
// and byte caps, plus the watchdog's wall cap when the partial downgrade is
// enabled.
func (s *Server) queryBudget() core.Budget {
	b := core.Budget{MaxWork: s.cfg.MaxWork, MaxBytes: s.cfg.MaxBytes}
	if s.cfg.partialGrace() > 0 {
		b.MaxWall = s.cfg.QueryTimeout
	}
	return b
}

// withQueryBudget attaches the per-query budget tracker to ctx (no-op when
// the server is unbudgeted). It is called after admission so queue wait
// never consumes the query's wall budget.
func (s *Server) withQueryBudget(ctx context.Context) context.Context {
	return core.WithBudget(ctx, s.queryBudget())
}

// retryAfterSeconds derives the 503 Retry-After hint from current load
// instead of a hardcoded constant: the backlog ahead of a retrying client
// (in-flight plus queued queries) divided over the service rate the slots
// sustain, using the configured query timeout as the per-query worst case
// (1s per query when no timeout is configured). Clamped to [1, 60] so the
// header is always a positive integer and never tells a client to go away
// for minutes just because the queue momentarily spiked.
func (s *Server) retryAfterSeconds() int {
	backlog := s.sched.inFlight() + s.sched.waiting() + 1
	perQuery := s.cfg.QueryTimeout
	if perQuery <= 0 {
		perQuery = time.Second
	}
	secs := int64(perQuery.Seconds()*float64(backlog)/float64(s.cfg.MaxConcurrent) + 0.5)
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return int(secs)
}

// shedMemory rejects the query with 503 when the heap is above the high
// watermark. It reports whether the request was handled.
func (s *Server) shedMemory(w http.ResponseWriter, r *http.Request, q *request) bool {
	if !s.mem.over() {
		return false
	}
	w.Header().Set("Retry-After", fmt.Sprintf("%d", s.retryAfterSeconds()))
	http.Error(w, "server over memory watermark, retry later", http.StatusServiceUnavailable)
	s.finish(r, q, outcomeMemOverload, http.StatusServiceUnavailable)
	return true
}

// admit acquires a pipeline slot, translating scheduler errors into HTTP
// responses. On failure it records the outcome and returns nil.
func (s *Server) admit(ctx context.Context, w http.ResponseWriter, r *http.Request, q *request) func() {
	release, err := s.sched.acquire(ctx)
	switch {
	case err == nil:
		return release
	case errors.Is(err, errOverloaded):
		w.Header().Set("Retry-After", fmt.Sprintf("%d", s.retryAfterSeconds()))
		http.Error(w, "server overloaded, retry later", http.StatusServiceUnavailable)
		s.finish(r, q, outcomeOverload, http.StatusServiceUnavailable)
	case errors.Is(err, context.DeadlineExceeded):
		http.Error(w, "queue wait exceeded query timeout", http.StatusGatewayTimeout)
		s.finish(r, q, outcomeTimeout, http.StatusGatewayTimeout)
	default: // context.Canceled: client went away while queued
		s.finish(r, q, outcomeCanceled, http.StatusServiceUnavailable)
	}
	return nil
}

// writePipelineError maps a pipeline error to an HTTP response and outcome.
func (s *Server) writePipelineError(w http.ResponseWriter, r *http.Request, q *request, err error, k int) {
	var pe *core.PanicError
	switch {
	case errors.As(err, &pe):
		// The pipeline panicked inside this query; the panic was contained
		// to the query's goroutines and the process keeps serving.
		s.metrics.notePanic()
		s.log.LogAttrs(r.Context(), slog.LevelError, "pipeline panic",
			slog.String("qid", q.id), slog.String("panic", fmt.Sprint(pe.Val)),
			slog.String("stack", string(pe.Stack)))
		http.Error(w, "internal pipeline error", http.StatusInternalServerError)
		s.finish(r, q, outcomePanic, http.StatusInternalServerError, slog.Int("k", k))
	case errors.Is(err, core.ErrBudgetExhausted):
		// Budget exhaustion with no partial result to salvage (top-down
		// exploration): report it like a server-side deadline.
		s.metrics.noteBudgetExhausted(false)
		http.Error(w, err.Error(), http.StatusGatewayTimeout)
		s.finish(r, q, outcomeBudget, http.StatusGatewayTimeout, slog.Int("k", k))
	case errors.Is(err, dist.ErrQuiescenceDeadline):
		// The distributed runtime could not quiesce under the injected
		// fault schedule — a server-side deadline, not a client error.
		http.Error(w, err.Error(), http.StatusGatewayTimeout)
		s.finish(r, q, outcomeTimeout, http.StatusGatewayTimeout, slog.Int("k", k))
	case errors.Is(err, context.DeadlineExceeded):
		http.Error(w, fmt.Sprintf("query exceeded timeout %v", s.cfg.QueryTimeout), http.StatusGatewayTimeout)
		s.finish(r, q, outcomeTimeout, http.StatusGatewayTimeout, slog.Int("k", k))
	case errors.Is(err, context.Canceled):
		// Client is gone; nothing useful can be written.
		s.finish(r, q, outcomeCanceled, http.StatusServiceUnavailable, slog.Int("k", k))
	default:
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		s.finish(r, q, outcomeUnprocessable, http.StatusUnprocessableEntity, slog.Int("k", k))
	}
}

// applyCompaction folds the server's compaction threshold into a per-query
// pipeline config: positive overrides, 0 keeps the pipeline default,
// negative disables compaction.
func (s *Server) applyCompaction(cfg *core.Config) {
	if s.cfg.CompactBelow > 0 {
		cfg.CompactBelow = s.cfg.CompactBelow
	} else if s.cfg.CompactBelow < 0 {
		cfg.CompactBelow = 0
	}
}

func (s *Server) handleMatch(w http.ResponseWriter, r *http.Request) {
	q := s.begin("match")
	if s.cfg.Coordinator != nil {
		s.forward(w, r, q, dist.EndpointMatch)
		return
	}
	req, t, ok := s.parseRequest(w, r, q)
	if !ok {
		return
	}

	// Pin the current graph epoch for the query's whole lifetime — cache
	// lookup, pipeline run and response all see one immutable snapshot,
	// even if /ingest swaps in the next epoch mid-flight.
	snap := s.snaps.Acquire()
	defer snap.Release()

	// Cross-query result cache: canonicalize the template and consult the
	// cache before memory shedding and admission — hits and coalesced
	// followers consume neither a heap check nor a scheduler slot. From
	// here on the pipeline (if any) runs on the canonical form, which is
	// what makes response bodies byte-identical across isomorphic
	// submissions. The key carries the pinned snapshot's epoch, so entries
	// version out on every ingest. Chaos mode bypasses the cache so
	// injected faults keep exercising the full pipeline.
	var ckey string
	var leaderFlight *flight
	cacheable := s.rcache != nil && s.cfg.Chaos == nil
	if cacheable {
		t, ckey, cacheable = canonicalizeForCache(snap.Epoch(), req, t)
	}
	if cacheable {
		if body := s.rcache.get(ckey); body != nil {
			s.rcache.hits.Add(1)
			s.finish(r, q, outcomeCacheHit, http.StatusOK, slog.Int("k", req.K))
			writeRawJSON(w, body)
			return
		}
		f, leader := s.flights.join(ckey)
		if leader {
			leaderFlight = f
		} else {
			wctx, wcancel := s.queryContext(r)
			defer wcancel()
			select {
			case <-f.done:
				if f.body != nil {
					s.rcache.hits.Add(1)
					s.finish(r, q, outcomeCoalesced, http.StatusOK, slog.Int("k", req.K))
					writeRawJSON(w, f.body)
					return
				}
				// The leader failed or went partial; run this query
				// independently rather than propagating a foreign error.
			case <-wctx.Done():
				s.finish(r, q, outcomeCanceled, http.StatusServiceUnavailable)
				return
			}
		}
	}
	// published stays nil on every failure path, releasing followers to
	// fend for themselves; the deferred complete guarantees they never
	// wait on a dead leader.
	var published []byte
	if leaderFlight != nil {
		s.rcache.misses.Add(1)
		defer func() { s.flights.complete(ckey, leaderFlight, published) }()
	}

	if s.shedMemory(w, r, q) {
		return
	}
	ctx, cancel := s.queryContext(r)
	defer cancel()
	release := s.admit(ctx, w, r, q)
	if release == nil {
		return
	}
	ctx = s.withQueryBudget(ctx)

	var resp MatchResponse
	if s.cfg.Chaos != nil {
		eng := s.chaosEngine(snap.Graph())
		dres, err := func() (res *dist.Result, err error) {
			defer recoverToPanicError(&err)
			return dist.RunContext(ctx, eng, t, s.distOptions(req))
		}()
		if err != nil && (dres == nil || !dres.Partial) {
			release()
			s.observeFaults(eng)
			s.writePipelineError(w, r, q, err, req.K)
			return
		}
		// Fold the query's counters whether it completed or went partial —
		// work performed must reach /metrics either way.
		s.metrics.observePipeline(&dres.VerifyMetrics)
		if dres.Partial {
			s.metrics.noteBudgetExhausted(true)
		}
		resp = buildMatchResponseDist(snap.Graph(), dres, req, time.Since(q.start))
	} else {
		cfg := core.DefaultConfig(req.K)
		cfg.CountMatches = req.Count
		cfg.CacheBytes = s.cfg.CacheBytes
		cfg.SharedCache = s.nlccShared
		cfg.NoSymmetry = s.cfg.NoSymmetry
		cfg.NoGuards = s.cfg.NoGuards
		if s.cfg.Workers > 0 {
			cfg.Workers = s.cfg.Workers
		}
		s.applyCompaction(&cfg)
		res, err := func() (res *core.Result, err error) {
			defer recoverToPanicError(&err)
			if h := testHookMatch; h != nil {
				h(req)
			}
			return core.RunParallelContext(ctx, snap.Graph(), t, cfg, s.cfg.Parallelism)
		}()
		if err != nil && (res == nil || !res.Partial) {
			release()
			s.writePipelineError(w, r, q, err, req.K)
			return
		}
		s.metrics.observePipeline(&res.Metrics)
		if res.Partial {
			s.metrics.noteBudgetExhausted(true)
		}
		// Build the response while still holding the slot (it reads
		// pipeline state), then release BEFORE serialization: encoding a
		// huge Vectors map to a slow client must not occupy query capacity.
		resp = buildMatchResponse(snap.Graph(), res, req, time.Since(q.start))
	}
	release()

	outcome := outcomeOK
	if resp.Partial {
		outcome = outcomePartial
	}
	s.finish(r, q, outcome, http.StatusOK,
		slog.Int("k", req.K),
		slog.Int("prototypes", len(resp.Prototypes)),
		slog.Int64("labels", resp.Labels),
		slog.Bool("partial", resp.Partial))
	if cacheable {
		// Serialize once and serve the leader, the cache and every follower
		// the same bytes — warm responses are bit-identical to this cold one
		// by construction. Partial results are never cached or published:
		// they reflect this query's budget, not the graph.
		body, err := json.Marshal(resp)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		body = append(body, '\n')
		if leaderFlight != nil && !resp.Partial {
			s.rcache.put(ckey, body)
			published = body
		}
		writeRawJSON(w, body)
		return
	}
	writeJSON(w, resp)
}

// testHookMatch, when set, runs inside handleMatch's panic-isolation
// boundary, just before the pipeline call — the seam the panic-isolation
// test uses to poison one query.
var testHookMatch func(*MatchRequest)

// recoverToPanicError converts any panic on the handler goroutine — e.g. a
// bug in the sequential pipeline phases, which run on the calling goroutine
// — into a *core.PanicError, isolating it to this query. (Panics inside
// pipeline worker goroutines are already converted by core itself.)
func recoverToPanicError(err *error) {
	if r := recover(); r != nil {
		*err = &core.PanicError{Val: r, Stack: debug.Stack()}
	}
}

// chaosEngine builds a per-query distributed deployment over the query's
// pinned snapshot with the server's fault plane attached.
func (s *Server) chaosEngine(g *graph.Graph) *dist.Engine {
	return dist.NewEngine(g, dist.Config{Ranks: s.cfg.ChaosRanks, Faults: s.cfg.Chaos})
}

// observeFaults salvages a failed chaos query's fault counters: the engine
// is per-query, so without this a deadline abort would silently discard the
// stalls/retries/crashes that caused it.
func (s *Server) observeFaults(eng *dist.Engine) {
	var m core.Metrics
	eng.FoldFaultMetrics(&m)
	s.metrics.observePipeline(&m)
}

// distOptions translates a request into distributed pipeline options,
// honoring the server's worker and compaction settings.
func (s *Server) distOptions(req *MatchRequest) dist.Options {
	opts := dist.DefaultOptions(req.K)
	opts.CountMatches = req.Count
	// The shared NLCC store is correctness-neutral even under injected
	// faults (verification is exact), so chaos-mode queries recycle too.
	opts.SharedCache = s.nlccShared
	if s.cfg.Workers > 0 {
		opts.Workers = s.cfg.Workers
	}
	if s.cfg.CompactBelow > 0 {
		opts.CompactBelow = s.cfg.CompactBelow
	} else if s.cfg.CompactBelow < 0 {
		opts.CompactBelow = 0
	}
	return opts
}

// buildMatchResponseDist mirrors buildMatchResponse for the distributed
// result shape; both serve the same JSON contract. g is the snapshot the
// query ran on: pipeline vertex ids are internal (possibly degree-relabeled),
// the wire speaks external ids.
func buildMatchResponseDist(g *graph.Graph, res *dist.Result, req *MatchRequest, elapsed time.Duration) MatchResponse {
	resp := MatchResponse{
		Prototypes: make([]PrototypeSummary, 0, len(res.Set.Protos)),
		Vectors:    map[string][]int{},
		ElapsedMS:  elapsed.Milliseconds(),
		Partial:    res.Partial,
	}
	exact := completeDists(res.Levels)
	for _, lv := range res.Levels {
		resp.Labels += lv.LabelsGenerated
	}
	for pi, p := range res.Set.Protos {
		ps := PrototypeSummary{Index: pi, Dist: p.Dist, Exact: exact[p.Dist]}
		if sol := res.Solutions[pi]; sol != nil {
			ps.Vertices = sol.Verts.Count()
			if req.Count {
				c := sol.MatchCount
				ps.MatchCount = &c
			}
		}
		resp.Prototypes = append(resp.Prototypes, ps)
	}
	if req.Vectors {
		// Prototype-major iteration appends indices in ascending order per
		// vertex, matching the sequential path's MatchVector output.
		for pi, sol := range res.Solutions {
			if sol == nil {
				continue
			}
			sol.Verts.ForEach(func(v int) {
				key := fmt.Sprintf("%d", g.ExternalID(graph.VertexID(v)))
				resp.Vectors[key] = append(resp.Vectors[key], pi)
			})
		}
	}
	return resp
}

// completeDists maps each edit distance to whether its level completed.
func completeDists(levels []core.LevelStats) map[int]bool {
	m := make(map[int]bool, len(levels))
	for _, lv := range levels {
		m[lv.Dist] = lv.Complete
	}
	return m
}

// buildMatchResponse translates the pipeline result to the wire shape; see
// buildMatchResponseDist for the id-space contract of g.
func buildMatchResponse(g *graph.Graph, res *core.Result, req *MatchRequest, elapsed time.Duration) MatchResponse {
	resp := MatchResponse{
		Prototypes: make([]PrototypeSummary, 0, len(res.Set.Protos)),
		Vectors:    map[string][]int{},
		Labels:     res.LabelsGenerated(),
		ElapsedMS:  elapsed.Milliseconds(),
		Partial:    res.Partial,
	}
	exact := completeDists(res.Levels)
	for pi, p := range res.Set.Protos {
		ps := PrototypeSummary{Index: pi, Dist: p.Dist, Exact: exact[p.Dist]}
		if sol := res.Solutions[pi]; sol != nil {
			ps.Vertices = sol.Verts.Count()
			if req.Count {
				c := sol.MatchCount
				ps.MatchCount = &c
			}
		}
		resp.Prototypes = append(resp.Prototypes, ps)
	}
	if req.Vectors {
		res.UnionVertices().ForEach(func(v int) {
			key := fmt.Sprintf("%d", g.ExternalID(graph.VertexID(v)))
			resp.Vectors[key] = res.MatchVector(graph.VertexID(v))
		})
	}
	return resp
}

func (s *Server) handleExplore(w http.ResponseWriter, r *http.Request) {
	q := s.begin("explore")
	if s.cfg.Coordinator != nil {
		s.forward(w, r, q, dist.EndpointExplore)
		return
	}
	req, t, ok := s.parseRequest(w, r, q)
	if !ok {
		return
	}
	snap := s.snaps.Acquire()
	defer snap.Release()
	if s.shedMemory(w, r, q) {
		return
	}
	ctx, cancel := s.queryContext(r)
	defer cancel()
	release := s.admit(ctx, w, r, q)
	if release == nil {
		return
	}
	ctx = s.withQueryBudget(ctx)

	var resp ExploreResponse
	if s.cfg.Chaos != nil {
		eng := s.chaosEngine(snap.Graph())
		dres, err := func() (res *dist.TopDownResult, err error) {
			defer recoverToPanicError(&err)
			return dist.RunTopDownContext(ctx, eng, t, s.distOptions(req))
		}()
		if err != nil {
			release()
			s.observeFaults(eng)
			s.writePipelineError(w, r, q, err, req.K)
			return
		}
		s.metrics.observePipeline(&dres.VerifyMetrics)
		resp = ExploreResponse{
			FoundDist:          dres.FoundDist,
			PrototypesSearched: dres.PrototypesSearched,
			MatchingVertices:   dres.MatchingVertices.Count(),
			ElapsedMS:          time.Since(q.start).Milliseconds(),
		}
	} else {
		cfg := core.DefaultConfig(req.K)
		cfg.CacheBytes = s.cfg.CacheBytes
		cfg.SharedCache = s.nlccShared
		cfg.NoSymmetry = s.cfg.NoSymmetry
		cfg.NoGuards = s.cfg.NoGuards
		if s.cfg.Workers > 0 {
			cfg.Workers = s.cfg.Workers
		}
		s.applyCompaction(&cfg)
		res, err := func() (res *core.TopDownResult, err error) {
			defer recoverToPanicError(&err)
			return core.RunTopDownContext(ctx, snap.Graph(), t, cfg)
		}()
		if err != nil {
			release()
			s.writePipelineError(w, r, q, err, req.K)
			return
		}
		s.metrics.observePipeline(&res.Metrics)
		resp = ExploreResponse{
			FoundDist:          res.FoundDist,
			PrototypesSearched: res.PrototypesSearched,
			MatchingVertices:   res.MatchingVertices.Count(),
			ElapsedMS:          time.Since(q.start).Milliseconds(),
		}
	}
	release()

	s.finish(r, q, outcomeOK, http.StatusOK,
		slog.Int("k", req.K),
		slog.Int("found_dist", resp.FoundDist))
	writeJSON(w, resp)
}

// handleStats serves the graph statistics computed once per epoch (at
// construction and after each ingest), so /stats is safe to poll as a
// health probe.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.stats.Load())
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var cg cacheGauges
	if s.rcache != nil {
		cg.resultHits = s.rcache.hits.Load()
		cg.resultMisses = s.rcache.misses.Load()
		cg.resultEvictions = s.rcache.evictions.Load()
		cg.resultBytes, cg.resultEntries = s.rcache.stats()
	}
	if s.nlccShared != nil {
		cg.sharedHits = s.nlccShared.Hits()
		cg.sharedMisses = s.nlccShared.Misses()
		cg.sharedEvictions = s.nlccShared.Evictions()
		cg.sharedBytes = s.nlccShared.Bytes()
		cg.sharedSets = s.nlccShared.Sets()
	}
	var wg walGauges
	if s.cfg.WAL != nil {
		wg = sampleWALGauges(s.cfg.WAL.Stats())
	}
	s.metrics.writeProm(w, s.sched.inFlight(), s.sched.waiting(), s.mem.heapBytes(), cg, wg,
		s.snaps.Epoch(), s.snaps.Retired(), s.snaps.ReclaimedBytes())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	io.WriteString(w, "ok\n")
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// writeRawJSON serves a pre-serialized response body verbatim — the cache
// and single-flight paths, where byte-identity with the original response
// matters.
func writeRawJSON(w http.ResponseWriter, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
}
