package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestPanicIsolation poisons one in-flight query with an injected panic and
// checks the blast radius: that query alone gets 500, concurrent queries on
// the same server succeed, the panic counter ticks, and the process keeps
// serving. Run under -race this also proves the isolation path is data-race
// free.
func TestPanicIsolation(t *testing.T) {
	s := NewWithConfig(testGraph(), Config{MaxConcurrent: 4})
	testHookMatch = func(req *MatchRequest) {
		if req.K == 3 {
			panic("injected query bug")
		}
	}
	defer func() { testHookMatch = nil }()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	post := func(k int) (int, string) {
		body, _ := json.Marshal(MatchRequest{Template: triangleTemplate, K: k, Count: true})
		resp, err := http.Post(srv.URL+"/match", "application/json", strings.NewReader(string(body)))
		if err != nil {
			t.Error(err)
			return 0, ""
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}

	const healthy = 8
	statuses := make([]int, healthy)
	var wg sync.WaitGroup
	var poisonedStatus int
	var poisonedBody string
	wg.Add(1)
	go func() {
		defer wg.Done()
		poisonedStatus, poisonedBody = post(3)
	}()
	for i := 0; i < healthy; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			statuses[i], _ = post(1)
		}(i)
	}
	wg.Wait()

	if poisonedStatus != http.StatusInternalServerError {
		t.Fatalf("poisoned query status = %d, want 500", poisonedStatus)
	}
	if strings.Contains(poisonedBody, "injected query bug") {
		t.Fatal("panic detail leaked to the client")
	}
	for i, st := range statuses {
		if st != http.StatusOK {
			t.Fatalf("healthy query %d status = %d, want 200", i, st)
		}
	}

	// The process survived; /healthz and /metrics still serve, and the
	// panic was counted.
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after panic: %v status=%v", err, resp)
	}
	resp.Body.Close()
	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	prom, _ := io.ReadAll(mresp.Body)
	if !strings.Contains(string(prom), "amatchd_query_panics_total 1") {
		t.Fatalf("metrics do not count the panic:\n%s", prom)
	}

	// The same request shape succeeds once the hook is gone — the failure
	// was query-scoped, not server state.
	testHookMatch = nil
	if st, _ := post(3); st != http.StatusOK {
		t.Fatalf("post-panic k=3 status = %d, want 200", st)
	}
}

// TestMemWatermarkSheds503 drives the admission watermark directly: a server
// whose high watermark is below the live heap must shed queries with 503 and
// count them, and one with a generous watermark must admit them.
func TestMemWatermarkSheds503(t *testing.T) {
	shed := NewWithConfig(testGraph(), Config{MemHighWatermark: 1}) // any live heap exceeds 1 byte
	srv := httptest.NewServer(shed.Handler())
	defer srv.Close()
	body, _ := json.Marshal(MatchRequest{Template: triangleTemplate, K: 1})
	resp := postJSON(t, srv.URL+"/match", string(body))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}

	open := NewWithConfig(testGraph(), Config{MemHighWatermark: 1 << 50})
	srv2 := httptest.NewServer(open.Handler())
	defer srv2.Close()
	if resp := postJSON(t, srv2.URL+"/match", string(body)); resp.StatusCode != http.StatusOK {
		t.Fatalf("status under generous watermark = %d, want 200", resp.StatusCode)
	}
}

// TestBudgetExhaustedMatchPartial runs a real query under a one-unit work
// budget: /match must answer 200 with the partial flag, no prototype marked
// exact, and the budget/partial counters ticked.
func TestBudgetExhaustedMatchPartial(t *testing.T) {
	s := NewWithConfig(testGraph(), Config{MaxWork: 1})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	body, _ := json.Marshal(MatchRequest{Template: triangleTemplate, K: 1, Count: true})
	resp := postJSON(t, srv.URL+"/match", string(body))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	var mr MatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
		t.Fatal(err)
	}
	if !mr.Partial {
		t.Fatal("one-unit budget produced a non-partial result")
	}
	for _, p := range mr.Prototypes {
		if p.Exact {
			t.Fatalf("prototype %d marked exact under a one-unit budget", p.Index)
		}
	}

	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	prom, _ := io.ReadAll(mresp.Body)
	for _, want := range []string{
		"amatchd_budget_exhausted_total 1",
		"amatchd_partial_results_total 1",
		`amatchd_queries_total{endpoint="match",outcome="partial"} 1`,
	} {
		if !strings.Contains(string(prom), want) {
			t.Fatalf("metrics missing %q:\n%s", want, prom)
		}
	}
}

// TestBudgetExhaustedExplore504 checks the exploration endpoint, which has no
// partial result to salvage: budget exhaustion surfaces as 504.
func TestBudgetExhaustedExplore504(t *testing.T) {
	s := NewWithConfig(testGraph(), Config{MaxWork: 1})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	body, _ := json.Marshal(MatchRequest{Template: triangleTemplate, K: 1})
	resp := postJSON(t, srv.URL+"/explore", string(body))
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504", resp.StatusCode)
	}
}
