package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// newIngestServer builds a server with /ingest enabled over testGraph (two
// label-1/2/3 triangles, the second missing its closing edge 3-5).
func newIngestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	cfg.EnableIngest = true
	s := NewWithConfig(testGraph(), cfg)
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	return s, srv
}

func getStats(t *testing.T, url string) StatsResponse {
	t.Helper()
	resp, err := http.Get(url + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

func matchBaseCount(t *testing.T, url string) int64 {
	t.Helper()
	body, _ := json.Marshal(MatchRequest{Template: triangleTemplate, K: 0, Count: true})
	resp := postJSON(t, url+"/match", string(body))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("match status %d", resp.StatusCode)
	}
	var out MatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Prototypes[0].MatchCount == nil {
		t.Fatal("no match count")
	}
	return *out.Prototypes[0].MatchCount
}

// TestIngestEndpoint applies a live batch and checks the epoch swap is
// visible everywhere: the response accounting, /stats, and query results on
// the new epoch.
func TestIngestEndpoint(t *testing.T) {
	_, srv := newIngestServer(t, Config{})

	if got := matchBaseCount(t, srv.URL); got != 1 {
		t.Fatalf("pre-ingest base count = %d, want 1", got)
	}
	before := getStats(t, srv.URL)
	if before.Epoch != 0 || before.Edges != 5 {
		t.Fatalf("pre-ingest stats = %+v", before)
	}

	// Close the second triangle (insert 3-5) and perturb elsewhere: delete
	// 0-2 (opening the first triangle) and put it back in a later batch.
	resp := postJSON(t, srv.URL+"/ingest", `{"insert":[[3,5]],"delete":[[0,2]],"relabel":[[0,1]]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}
	var out IngestResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Epoch != 1 || out.Inserted != 1 || out.Deleted != 1 || out.Relabeled != 1 {
		t.Fatalf("ingest response = %+v", out)
	}
	// Changed vertices: {3,5} ∪ {0,2} ∪ {0} = {0,2,3,5}.
	if out.ChangedVertices != 4 {
		t.Errorf("changed vertices = %d, want 4", out.ChangedVertices)
	}
	if out.Edges != 5 || out.Vertices != 6 {
		t.Errorf("new graph %d vertices / %d edges, want 6/5", out.Vertices, out.Edges)
	}

	after := getStats(t, srv.URL)
	if after.Epoch != 1 || after.Edges != 5 {
		t.Errorf("post-ingest stats = %+v", after)
	}
	// Triangle 0-1-2 is open and relabeled; triangle 3-4-5 is closed now.
	if got := matchBaseCount(t, srv.URL); got != 1 {
		t.Errorf("post-ingest base count = %d, want 1", got)
	}

	resp = postJSON(t, srv.URL+"/ingest", `{"insert":[[0,2]],"relabel":[[0,1]]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second ingest status %d", resp.StatusCode)
	}
	if got := matchBaseCount(t, srv.URL); got != 2 {
		t.Errorf("final base count = %d, want 2 (both triangles)", got)
	}
	if ep := getStats(t, srv.URL).Epoch; ep != 2 {
		t.Errorf("final epoch = %d, want 2", ep)
	}

	prom := scrapeMetrics(t, srv.URL)
	for _, want := range []string{
		"amatchd_ingest_batches_total 2",
		`amatchd_ingest_operations_total{kind="insert"} 2`,
		`amatchd_ingest_operations_total{kind="delete"} 1`,
		`amatchd_ingest_operations_total{kind="relabel"} 2`,
		"amatchd_graph_epoch 2",
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestIngestRejection: malformed and semantically invalid batches are
// rejected all-or-nothing — proper status codes, no epoch advance, no graph
// change.
func TestIngestRejection(t *testing.T) {
	_, srv := newIngestServer(t, Config{})

	cases := []struct {
		name, body string
		status     int
	}{
		{"bad json", `{"insert":`, http.StatusBadRequest},
		{"short row", `{"insert":[[1]]}`, http.StatusBadRequest},
		{"long row", `{"delete":[[0,1,2]]}`, http.StatusBadRequest},
		{"negative id", `{"insert":[[-1,2]]}`, http.StatusBadRequest},
		{"overflow id", `{"insert":[[4294967296,2]]}`, http.StatusBadRequest},
		{"delete absent", `{"delete":[[0,3]]}`, http.StatusUnprocessableEntity},
		{"insert present", `{"insert":[[0,1]]}`, http.StatusUnprocessableEntity},
		{"self loop", `{"insert":[[2,2]]}`, http.StatusUnprocessableEntity},
		{"out of range", `{"insert":[[0,99]]}`, http.StatusUnprocessableEntity},
		{"insert and delete", `{"insert":[[3,5]],"delete":[[3,5]]}`, http.StatusUnprocessableEntity},
		{"edge label on unlabeled graph", `{"insert":[[3,5,7]]}`, http.StatusUnprocessableEntity},
		{"conflicting relabels", `{"relabel":[[0,1],[0,2]]}`, http.StatusUnprocessableEntity},
	}
	for _, tc := range cases {
		resp := postJSON(t, srv.URL+"/ingest", tc.body)
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.status)
		}
	}
	if st := getStats(t, srv.URL); st.Epoch != 0 || st.Edges != 5 {
		t.Errorf("rejected batches moved the graph: %+v", st)
	}
	prom := scrapeMetrics(t, srv.URL)
	if !strings.Contains(prom, fmt.Sprintf("amatchd_ingest_rejected_total %d", len(cases))) {
		t.Errorf("rejected counter wrong:\n%s", prom)
	}
	if !strings.Contains(prom, "amatchd_ingest_batches_total 0") {
		t.Error("applied counter moved on rejections")
	}
}

// TestIngestDisabledByDefault: without the opt-in, /ingest does not exist.
func TestIngestDisabledByDefault(t *testing.T) {
	srv := newTestServer(t)
	resp := postJSON(t, srv.URL+"/ingest", `{"insert":[[3,5]]}`)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404 on a default server", resp.StatusCode)
	}
}

// TestIngestBodyCap: batches beyond IngestMaxBodyBytes get 413.
func TestIngestBodyCap(t *testing.T) {
	_, srv := newIngestServer(t, Config{IngestMaxBodyBytes: 64})
	big := `{"insert":[` + strings.Repeat("[3,5],", 100) + `[3,5]]}`
	resp := postJSON(t, srv.URL+"/ingest", big)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", resp.StatusCode)
	}
}

// TestIngestInvalidatesResultCache: a cached /match body must not survive an
// ingest that changes its answer — the epoch in the cache key versions it
// out.
func TestIngestInvalidatesResultCache(t *testing.T) {
	_, srv := newIngestServer(t, Config{ResultCacheBytes: 1 << 20})

	if got := matchBaseCount(t, srv.URL); got != 1 {
		t.Fatalf("cold count = %d, want 1", got)
	}
	// Warm hit on epoch 0.
	if got := matchBaseCount(t, srv.URL); got != 1 {
		t.Fatalf("warm count = %d, want 1", got)
	}
	resp := postJSON(t, srv.URL+"/ingest", `{"insert":[[3,5]]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}
	if got := matchBaseCount(t, srv.URL); got != 2 {
		t.Errorf("post-ingest count = %d, want 2 (stale cache body served?)", got)
	}
}

// TestIngestWhileQuerying is the ingest/query race test (runs under -race in
// make check): readers hammer /match and /stats while a writer applies an
// alternating insert/delete batch stream. Every query must succeed against
// whichever epoch it pinned — the base-triangle count is 1 or 2 depending on
// whether the 3-5 edge existed in that epoch, never anything else — and the
// final epoch must count every applied batch.
func TestIngestWhileQuerying(t *testing.T) {
	const batches = 24
	_, srv := newIngestServer(t, Config{ResultCacheBytes: 1 << 20, SharedNLCC: true})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	report := func(format string, args ...any) {
		select {
		case errs <- fmt.Errorf(format, args...):
		default:
		}
	}
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			body, _ := json.Marshal(MatchRequest{Template: triangleTemplate, K: 1, Count: true})
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Post(srv.URL+"/match", "application/json", strings.NewReader(string(body)))
				if err != nil {
					report("match: %v", err)
					return
				}
				var out MatchResponse
				err = json.NewDecoder(resp.Body).Decode(&out)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK || err != nil {
					report("match: status %d, err %v", resp.StatusCode, err)
					return
				}
				if c := *out.Prototypes[0].MatchCount; c != 1 && c != 2 {
					report("match: base count %d, want 1 or 2", c)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if st := getStats(t, srv.URL); st.Vertices != 6 {
				report("stats: %+v", st)
				return
			}
		}
	}()

	for i := 0; i < batches; i++ {
		body := `{"insert":[[3,5]]}`
		if i%2 == 1 {
			body = `{"delete":[[3,5]]}`
		}
		resp := postJSON(t, srv.URL+"/ingest", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("batch %d: status %d", i, resp.StatusCode)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	if ep := getStats(t, srv.URL).Epoch; ep != batches {
		t.Errorf("final epoch = %d, want %d", ep, batches)
	}
}

// TestRetryAfterDerived: the 503 Retry-After hint must be a positive integer
// derived from load, bounded to [1, 60] — never the old hardcoded constant
// regardless of queue shape or timeout config.
func TestRetryAfterDerived(t *testing.T) {
	for _, cfg := range []Config{
		{MaxConcurrent: 1, QueueDepth: -1},
		{MaxConcurrent: 1, QueueDepth: -1, QueryTimeout: 30 * 1e9},
		{MaxConcurrent: 2, QueueDepth: -1, QueryTimeout: 500 * 1e9},
	} {
		s := NewWithConfig(testGraph(), cfg)
		srv := httptest.NewServer(s.Handler())
		var releases []func()
		for i := 0; i < s.cfg.MaxConcurrent; i++ {
			release, err := s.sched.acquire(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			releases = append(releases, release)
		}
		body, _ := json.Marshal(MatchRequest{Template: triangleTemplate, K: 1})
		resp := postJSON(t, srv.URL+"/match", string(body))
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("status = %d, want 503", resp.StatusCode)
		}
		ra := resp.Header.Get("Retry-After")
		secs, err := strconv.Atoi(ra)
		if err != nil {
			t.Fatalf("Retry-After %q is not an integer: %v", ra, err)
		}
		if secs < 1 || secs > 60 {
			t.Errorf("Retry-After = %d, want within [1, 60]", secs)
		}
		if cfg.QueryTimeout == 500*1e9 && secs != 60 {
			t.Errorf("saturated 500s-per-query server: Retry-After = %d, want clamped to 60", secs)
		}
		if cfg.QueryTimeout == 30*1e9 && secs <= 1 {
			t.Errorf("30s-per-query backlog: Retry-After = %d, want > 1", secs)
		}
		for _, release := range releases {
			release()
		}
		srv.Close()
	}
}
