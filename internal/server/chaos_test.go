package server

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"approxmatch/internal/core"
	"approxmatch/internal/dist"
)

// TestWritePromFaultCounters pins the Prometheus rendering of the
// fault-plane counters surfaced from the distributed runtime.
func TestWritePromFaultCounters(t *testing.T) {
	r := newMetricsRegistry()
	r.observePipeline(&core.Metrics{
		FaultDrops:      3,
		FaultDups:       2,
		FaultReorders:   5,
		FaultDelays:     7,
		Retries:         11,
		Redeliveries:    4,
		RankCheckpoints: 8,
		CheckpointBytes: 4096,
		RankCrashes:     1,
		RankRestores:    1,
		RankStalls:      2,
	})
	r.observePipeline(&core.Metrics{FaultDrops: 1, Retries: 1})

	var sb strings.Builder
	r.writeProm(&sb, 0, 0, 0, cacheGauges{}, walGauges{}, 0, 0, 0)
	got := sb.String()
	for _, want := range []string{
		"# TYPE amatchd_fault_injected_total counter",
		"amatchd_fault_injected_total{kind=\"drop\"} 4\n",
		"amatchd_fault_injected_total{kind=\"duplicate\"} 2\n",
		"amatchd_fault_injected_total{kind=\"reorder\"} 5\n",
		"amatchd_fault_injected_total{kind=\"delay\"} 7\n",
		"amatchd_retransmissions_total 12\n",
		"amatchd_redeliveries_total 4\n",
		"amatchd_rank_checkpoints_total 8\n",
		"amatchd_checkpoint_bytes_total 4096\n",
		"amatchd_rank_crashes_total 1\n",
		"amatchd_rank_restores_total 1\n",
		"amatchd_rank_stalls_total 2\n",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("missing %q in:\n%s", want, got)
		}
	}
}

// TestSchedulerAdmissionAfterQueuedCancels is the admission-token regression
// test: a request canceled while queued must return its queue token. The
// cancel loop runs far past the queue capacity — if a token leaked per
// cancel, acquire would start failing with errOverloaded within three
// iterations, and the final fresh request would be shut out.
func TestSchedulerAdmissionAfterQueuedCancels(t *testing.T) {
	s := newScheduler(1, 2)
	hold, err := s.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	for i := 0; i < 25; i++ {
		if _, err := s.acquire(canceled); !errors.Is(err, context.Canceled) {
			t.Fatalf("cancel %d: err = %v, want context.Canceled (queue token leak)", i, err)
		}
	}
	if w := s.waiting(); w != 0 {
		t.Fatalf("waiting = %d after canceled acquires, want 0", w)
	}

	hold()
	ctx, cancelFresh := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancelFresh()
	release, err := s.acquire(ctx)
	if err != nil {
		t.Fatalf("fresh acquire after cancels: %v", err)
	}
	release()
	if s.inFlight() != 0 || s.waiting() != 0 {
		t.Errorf("scheduler not drained: inFlight=%d waiting=%d", s.inFlight(), s.waiting())
	}
}

// chaosServerFaults is a hostile-but-recoverable schedule: every fault class
// plus a rank-0 crash, tight retries so the test stays fast.
func chaosServerFaults() *dist.Faults {
	return &dist.Faults{
		Seed:          42,
		Drop:          0.2,
		Duplicate:     0.3,
		Reorder:       0.3,
		Delay:         0.2,
		MaxDelay:      200 * time.Microsecond,
		Crash:         &dist.CrashEvent{Rank: 0, After: 3},
		RetryInterval: 200 * time.Microsecond,
	}
}

// TestChaosServeMatchesBaseline runs the same /match and /explore queries
// against a normal server and a chaos-mode server (distributed engine with
// injected drops, duplicates, reorders, delays and a rank crash) and checks
// the served results are identical — the end-to-end form of the chaos
// differential guarantee — and that the fault counters surface on /metrics.
func TestChaosServeMatchesBaseline(t *testing.T) {
	base := httptest.NewServer(New(testGraph()).Handler())
	defer base.Close()
	chaos := httptest.NewServer(NewWithConfig(testGraph(), Config{
		Chaos:      chaosServerFaults(),
		ChaosRanks: 2,
	}).Handler())
	defer chaos.Close()

	body, _ := json.Marshal(MatchRequest{Template: triangleTemplate, K: 2, Count: true, Vectors: true})
	var want, got MatchResponse
	for _, tc := range []struct {
		url  string
		into *MatchResponse
	}{{base.URL, &want}, {chaos.URL, &got}} {
		resp := postJSON(t, tc.url+"/match", string(body))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s/match status %d", tc.url, resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(tc.into); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	if !reflect.DeepEqual(want.Prototypes, got.Prototypes) {
		t.Errorf("prototype summaries diverge under faults:\nbaseline: %+v\nchaos:    %+v", want.Prototypes, got.Prototypes)
	}
	if want.Labels != got.Labels {
		t.Errorf("labels diverge under faults: baseline %d, chaos %d", want.Labels, got.Labels)
	}
	if !reflect.DeepEqual(want.Vectors, got.Vectors) {
		t.Errorf("match vectors diverge under faults:\nbaseline: %v\nchaos:    %v", want.Vectors, got.Vectors)
	}

	var wantEx, gotEx ExploreResponse
	for _, tc := range []struct {
		url  string
		into *ExploreResponse
	}{{base.URL, &wantEx}, {chaos.URL, &gotEx}} {
		resp := postJSON(t, tc.url+"/explore", string(body))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s/explore status %d", tc.url, resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(tc.into); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	if wantEx.FoundDist != gotEx.FoundDist || wantEx.MatchingVertices != gotEx.MatchingVertices ||
		wantEx.PrototypesSearched != gotEx.PrototypesSearched {
		t.Errorf("explore diverges under faults:\nbaseline: %+v\nchaos:    %+v", wantEx, gotEx)
	}

	mresp, err := http.Get(chaos.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	prom, _ := io.ReadAll(mresp.Body)
	promStr := string(prom)
	// The crash is armed per traversal, so it must have fired at least once,
	// forcing checkpoints and a restore; the ack path is always live in
	// chaos mode.
	for _, zero := range []string{
		"amatchd_rank_crashes_total 0\n",
		"amatchd_rank_restores_total 0\n",
		"amatchd_rank_checkpoints_total 0\n",
		"amatchd_checkpoint_bytes_total 0\n",
	} {
		if strings.Contains(promStr, zero) {
			t.Errorf("fault counter never moved: %q in\n%s", strings.TrimSpace(zero), promStr)
		}
	}
	if !strings.Contains(promStr, "amatchd_fault_injected_total{kind=") {
		t.Errorf("fault-injection counters missing from /metrics:\n%s", promStr)
	}
}

// TestChaosServeStallDeadline checks a permanently stalled rank surfaces as
// 504 + timeout outcome instead of hanging the request.
func TestChaosServeStallDeadline(t *testing.T) {
	s := NewWithConfig(testGraph(), Config{
		Chaos: &dist.Faults{
			Stall:    &dist.StallEvent{Rank: 0, After: 0}, // stalls until abort
			Deadline: 300 * time.Millisecond,
		},
		ChaosRanks: 2,
	})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	body, _ := json.Marshal(MatchRequest{Template: triangleTemplate, K: 1})
	start := time.Now()
	resp := postJSON(t, srv.URL+"/match", string(body))
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("stalled chaos query status = %d, want 504", resp.StatusCode)
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Errorf("stalled query took %v, deadline not enforced", el)
	}

	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	prom, _ := io.ReadAll(mresp.Body)
	if !strings.Contains(string(prom), `amatchd_queries_total{endpoint="match",outcome="timeout"} 1`) {
		t.Errorf("stall deadline not counted as timeout:\n%s", prom)
	}
	if strings.Contains(string(prom), "amatchd_rank_stalls_total 0\n") {
		t.Errorf("stall never injected:\n%s", prom)
	}
}
