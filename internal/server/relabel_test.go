package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"approxmatch/internal/graph"
)

// relabelTestGraph builds a graph whose input ids are deliberately NOT in
// descending-degree order (the hub comes last), so RelabelByDegree produces
// a non-identity permutation. Two labeled triangles plus a high-degree
// label-3 hub.
func relabelTestGraph() *graph.Graph {
	b := graph.NewBuilder(0)
	labels := []graph.Label{1, 2, 3, 1, 2, 1, 2, 3}
	v := make([]graph.VertexID, len(labels))
	for i, l := range labels {
		v[i] = b.AddVertex(l)
	}
	for _, e := range [][2]int{
		{0, 1}, {1, 2}, {0, 2}, // triangle 0-1-2
		{3, 4}, {4, 7}, {3, 7}, // triangle 3-4-7
		{7, 5}, {7, 6}, {7, 0}, // vertex 7 is the hub
	} {
		b.AddEdge(v[e[0]], v[e[1]])
	}
	return b.Build()
}

// TestRelabeledServerDifferential runs a plain server and a degree-relabeled
// server over the same logical graph and drives both through the same HTTP
// script — match (with vectors), an externally-addressed ingest batch, a
// re-match, and a cache-served repeat. Every response must be identical:
// the relabeling is an internal layout choice the API must not leak.
func TestRelabeledServerDifferential(t *testing.T) {
	mk := func(relabel bool) *httptest.Server {
		g := relabelTestGraph()
		if relabel {
			rg := graph.RelabelByDegree(g)
			if !rg.Relabeled() {
				t.Fatal("test graph relabeled to identity; pick a different topology")
			}
			g = rg
		}
		s := NewWithConfig(g, Config{
			EnableIngest:     true,
			ResultCacheBytes: 1 << 20,
		})
		srv := httptest.NewServer(s.Handler())
		t.Cleanup(srv.Close)
		return srv
	}
	plain, relabeled := mk(false), mk(true)

	match := func(t *testing.T, srv *httptest.Server) MatchResponse {
		t.Helper()
		body, _ := json.Marshal(MatchRequest{Template: triangleTemplate, K: 1, Count: true, Vectors: true})
		resp := postJSON(t, srv.URL+"/match", string(body))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("match status %d", resp.StatusCode)
		}
		var out MatchResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		out.ElapsedMS = 0 // the sole nondeterministic field
		return out
	}
	ingest := func(t *testing.T, srv *httptest.Server, batch string) IngestResponse {
		t.Helper()
		resp := postJSON(t, srv.URL+"/ingest", batch)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest status %d", resp.StatusCode)
		}
		var out IngestResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}

	if p, r := match(t, plain), match(t, relabeled); !reflect.DeepEqual(p, r) {
		t.Fatalf("pre-ingest responses differ:\nplain:     %+v\nrelabeled: %+v", p, r)
	}

	// The batch speaks input-file ids: close a triangle through the hub,
	// cut one triangle edge, flip a label. Both servers must translate it
	// to the same logical mutation.
	const batch = `{"insert":[[5,6]],"delete":[[0,2]],"relabel":[[5,3]]}`
	pi, ri := ingest(t, plain, batch), ingest(t, relabeled, batch)
	if !reflect.DeepEqual(pi, ri) {
		t.Fatalf("ingest responses differ:\nplain:     %+v\nrelabeled: %+v", pi, ri)
	}

	p, r := match(t, plain), match(t, relabeled)
	if !reflect.DeepEqual(p, r) {
		t.Fatalf("post-ingest responses differ:\nplain:     %+v\nrelabeled: %+v", p, r)
	}

	// Third query repeats the second: served from the cross-query result
	// cache on both sides, still identical (and identical to the live run).
	if p2, r2 := match(t, plain), match(t, relabeled); !reflect.DeepEqual(p2, r2) || !reflect.DeepEqual(p, p2) {
		t.Fatalf("cache-served responses differ:\nplain:     %+v\nrelabeled: %+v", p2, r2)
	}
	for _, srv := range []*httptest.Server{plain, relabeled} {
		if !containsMetric(t, srv, "amatchd_result_cache_hits_total 1") {
			t.Errorf("expected one result-cache hit on %s", srv.URL)
		}
	}
}

func containsMetric(t *testing.T, srv *httptest.Server, want string) bool {
	t.Helper()
	return strings.Contains(scrapeMetrics(t, srv.URL), want)
}
