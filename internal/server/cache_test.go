package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"approxmatch/internal/datagen"
	"approxmatch/internal/pattern"
)

// isoText returns a random isomorphic resubmission of a template text:
// vertices renumbered by a random permutation, edges shuffled and endpoints
// flipped — everything a client could do while asking "the same" question.
func isoText(t *testing.T, text string, rng *rand.Rand) string {
	t.Helper()
	tpl, err := pattern.Parse(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	n := tpl.NumVertices()
	perm := rng.Perm(n)
	labels := make([]pattern.Label, n)
	for q := 0; q < n; q++ {
		labels[perm[q]] = tpl.Label(q)
	}
	type rec struct {
		e    pattern.Edge
		l    pattern.Label
		mand bool
	}
	recs := make([]rec, tpl.NumEdges())
	for i, e := range tpl.Edges() {
		a, b := perm[e.I], perm[e.J]
		if rng.Intn(2) == 0 {
			a, b = b, a
		}
		recs[i] = rec{pattern.Edge{I: a, J: b}, tpl.EdgeLabel(i), tpl.Mandatory(i)}
	}
	rng.Shuffle(len(recs), func(i, j int) { recs[i], recs[j] = recs[j], recs[i] })
	edges := make([]pattern.Edge, len(recs))
	mand := make([]bool, len(recs))
	var elabels []pattern.Label
	if tpl.HasEdgeLabels() {
		elabels = make([]pattern.Label, len(recs))
	}
	for i, r := range recs {
		edges[i] = r.e
		mand[i] = r.mand
		if elabels != nil {
			elabels[i] = r.l
		}
	}
	permuted, err := pattern.NewEdgeLabeled(labels, edges, elabels, mand)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := pattern.Write(&buf, permuted); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// postMatch posts a /match request and returns the status and raw body
// bytes, because the cache guarantees are stated in terms of bytes.
func postMatch(t *testing.T, url string, req MatchRequest) (int, []byte) {
	t.Helper()
	payload, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/match", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// decodeNormalized parses a /match body and zeroes the wall-clock field, the
// only part of the contract allowed to differ between two cold computations
// of the same query.
func decodeNormalized(t *testing.T, body []byte) MatchResponse {
	t.Helper()
	var m MatchResponse
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("bad body %q: %v", body, err)
	}
	m.ElapsedMS = 0
	return m
}

func scrapeMetrics(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestResultCacheIsomorphicWarmCold is the warm/cold differential: after one
// cold run, every isomorphic resubmission — random renumberings, edge
// shuffles, endpoint flips, across distinct worker counts — must be served
// byte-identical to that server's cold body, and the semantic content must
// agree across worker counts too.
func TestResultCacheIsomorphicWarmCold(t *testing.T) {
	g, tpl := datagen.RMATWithPattern(10)
	base := templateText(t, tpl)
	req := func(text string) MatchRequest {
		return MatchRequest{Template: text, K: 2, Count: true, Vectors: true}
	}

	var semantic []MatchResponse
	for _, workers := range []int{-1, 2} {
		s := NewWithConfig(g, Config{ResultCacheBytes: 1 << 20, SharedNLCC: true, Workers: workers})
		srv := httptest.NewServer(s.Handler())
		defer srv.Close()

		status, cold := postMatch(t, srv.URL, req(base))
		if status != http.StatusOK {
			t.Fatalf("workers=%d: cold status %d", workers, status)
		}
		rng := rand.New(rand.NewSource(int64(41 + workers)))
		for trial := 0; trial < 6; trial++ {
			status, warm := postMatch(t, srv.URL, req(isoText(t, base, rng)))
			if status != http.StatusOK {
				t.Fatalf("workers=%d trial %d: warm status %d", workers, trial, status)
			}
			if !bytes.Equal(cold, warm) {
				t.Fatalf("workers=%d trial %d: warm body differs from cold\ncold: %s\nwarm: %s",
					workers, trial, cold, warm)
			}
		}
		prom := scrapeMetrics(t, srv.URL)
		if !strings.Contains(prom, "amatchd_result_cache_hits_total 6\n") ||
			!strings.Contains(prom, "amatchd_result_cache_misses_total 1\n") {
			t.Errorf("workers=%d: wrong cache counters:\n%s", workers, prom)
		}
		semantic = append(semantic, decodeNormalized(t, cold))
	}
	if !reflect.DeepEqual(semantic[0], semantic[1]) {
		t.Errorf("worker counts disagree:\n%+v\n%+v", semantic[0], semantic[1])
	}
}

// TestResultCacheEvictionDifferential forces result-cache eviction with a
// cap sized to hold exactly one of two alternating queries and checks that
// recomputed responses stay semantically identical — eviction costs latency,
// never answers.
func TestResultCacheEvictionDifferential(t *testing.T) {
	g := testGraph()
	reqA := MatchRequest{Template: triangleTemplate, K: 1, Count: true, Vectors: true}
	reqB := MatchRequest{Template: triangleTemplate, K: 2, Count: true, Vectors: true}

	// Measure the two body sizes on an uncapped server, then rebuild with a
	// cap that admits either body but never both.
	probe := NewWithConfig(g, Config{ResultCacheBytes: 1 << 20})
	psrv := httptest.NewServer(probe.Handler())
	_, bodyA := postMatch(t, psrv.URL, reqA)
	_, bodyB := postMatch(t, psrv.URL, reqB)
	psrv.Close()
	capBytes := int64(len(bodyA) + len(bodyB) - 1)

	s := NewWithConfig(g, Config{ResultCacheBytes: capBytes})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	wantA, wantB := decodeNormalized(t, bodyA), decodeNormalized(t, bodyB)
	for round := 0; round < 4; round++ {
		_, gotA := postMatch(t, srv.URL, reqA)
		if !reflect.DeepEqual(decodeNormalized(t, gotA), wantA) {
			t.Fatalf("round %d: post-eviction recompute of A diverged:\n%s\nvs\n%s", round, gotA, bodyA)
		}
		_, gotB := postMatch(t, srv.URL, reqB)
		if !reflect.DeepEqual(decodeNormalized(t, gotB), wantB) {
			t.Fatalf("round %d: post-eviction recompute of B diverged:\n%s\nvs\n%s", round, gotB, bodyB)
		}
	}
	if ev := s.rcache.evictions.Load(); ev == 0 {
		t.Fatal("alternating queries under a one-body cap never evicted; the differential is vacuous")
	}
}

// TestSingleFlightCoalesces floods the server with concurrent identical
// queries while the leader is pinned inside the pipeline: exactly one
// pipeline run may happen, every response must carry the leader's exact
// bytes, and the hit/miss counters must account for every request.
func TestSingleFlightCoalesces(t *testing.T) {
	const followers = 9
	s := NewWithConfig(testGraph(), Config{ResultCacheBytes: 1 << 20})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	var runs atomic.Int32
	entered := make(chan struct{})
	releaseLeader := make(chan struct{})
	testHookMatch = func(*MatchRequest) {
		if runs.Add(1) == 1 {
			close(entered)
			<-releaseLeader
		}
	}
	defer func() { testHookMatch = nil }()

	req := MatchRequest{Template: triangleTemplate, K: 1, Count: true}
	type reply struct {
		status int
		body   []byte
	}
	replies := make(chan reply, followers+1)
	var wg sync.WaitGroup
	post := func() {
		defer wg.Done()
		payload, _ := json.Marshal(req)
		resp, err := http.Post(srv.URL+"/match", "application/json", bytes.NewReader(payload))
		if err != nil {
			t.Error(err)
			return
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		replies <- reply{resp.StatusCode, body}
	}
	wg.Add(1)
	go post()
	<-entered
	// The leader is pinned inside the pipeline, so its flight is registered:
	// every request from here on either waits on it or, if it arrives after
	// completion, hits the populated cache — no timing window runs a second
	// pipeline either way.
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go post()
	}
	close(releaseLeader)
	wg.Wait()
	close(replies)

	if n := runs.Load(); n != 1 {
		t.Fatalf("pipeline ran %d times for %d identical queries", n, followers+1)
	}
	var first []byte
	count := 0
	for r := range replies {
		if r.status != http.StatusOK {
			t.Fatalf("status %d", r.status)
		}
		if first == nil {
			first = r.body
		} else if !bytes.Equal(first, r.body) {
			t.Fatalf("coalesced bodies differ:\n%s\nvs\n%s", first, r.body)
		}
		count++
	}
	if count != followers+1 {
		t.Fatalf("got %d replies, want %d", count, followers+1)
	}
	prom := scrapeMetrics(t, srv.URL)
	if !strings.Contains(prom, fmt.Sprintf("amatchd_result_cache_hits_total %d\n", followers)) ||
		!strings.Contains(prom, "amatchd_result_cache_misses_total 1\n") {
		t.Errorf("wrong single-flight accounting:\n%s", prom)
	}
}

// TestEpochBumpInvalidates checks BumpEpoch restores cold behavior: the next
// identical query runs the pipeline again (result cache cannot serve it) and
// the shared NLCC store starts empty.
func TestEpochBumpInvalidates(t *testing.T) {
	s := NewWithConfig(testGraph(), Config{ResultCacheBytes: 1 << 20, SharedNLCC: true})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	var runs atomic.Int32
	testHookMatch = func(*MatchRequest) { runs.Add(1) }
	defer func() { testHookMatch = nil }()

	req := MatchRequest{Template: triangleTemplate, K: 1, Count: true}
	_, cold := postMatch(t, srv.URL, req)
	_, warm := postMatch(t, srv.URL, req)
	if !bytes.Equal(cold, warm) {
		t.Fatal("warm body differs from cold before the bump")
	}
	if n := runs.Load(); n != 1 {
		t.Fatalf("pipeline ran %d times before the bump, want 1", n)
	}

	s.BumpEpoch()
	if bytes_, entries := s.rcache.stats(); bytes_ != 0 || entries != 0 {
		t.Fatalf("result cache survived the bump: %d bytes, %d entries", bytes_, entries)
	}
	if s.nlccShared.Sets() != 0 {
		t.Fatalf("shared NLCC store survived the bump: %d sets", s.nlccShared.Sets())
	}

	_, recold := postMatch(t, srv.URL, req)
	if n := runs.Load(); n != 2 {
		t.Fatalf("post-bump query did not rerun the pipeline (runs = %d)", n)
	}
	if !reflect.DeepEqual(decodeNormalized(t, cold), decodeNormalized(t, recold)) {
		t.Fatalf("post-bump recompute diverged:\n%s\nvs\n%s", cold, recold)
	}
	_, rewarm := postMatch(t, srv.URL, req)
	if !bytes.Equal(recold, rewarm) {
		t.Fatal("cache did not repopulate after the bump")
	}
	if n := runs.Load(); n != 2 {
		t.Fatalf("post-bump warm query reran the pipeline (runs = %d)", n)
	}
}

// TestUncacheableTemplateBypasses submits a template whose canonicalization
// cost exceeds the admission bound (an all-same-label clique has factorial
// cell permutations) and checks it is answered correctly with the cache
// engaged but never consulted.
func TestUncacheableTemplateBypasses(t *testing.T) {
	// A star with 9 same-label leaves: color refinement cannot split the
	// leaf cell, so canonicalization would enumerate 9! ≫ maxCanonCost
	// permutations — too expensive for the admission path.
	var sb strings.Builder
	sb.WriteString("v 0 2\n")
	for i := 1; i <= 9; i++ {
		fmt.Fprintf(&sb, "v %d 1\n", i)
		fmt.Fprintf(&sb, "e 0 %d\n", i)
	}
	s := NewWithConfig(testGraph(), Config{ResultCacheBytes: 1 << 20})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	req := MatchRequest{Template: sb.String(), K: 0, Count: true}
	status, a := postMatch(t, srv.URL, req)
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	_, b := postMatch(t, srv.URL, req)
	if !reflect.DeepEqual(decodeNormalized(t, a), decodeNormalized(t, b)) {
		t.Fatal("uncacheable query not deterministic")
	}
	if _, entries := s.rcache.stats(); entries != 0 {
		t.Fatalf("over-cost template was cached anyway (%d entries)", entries)
	}
	if h, m := s.rcache.hits.Load(), s.rcache.misses.Load(); h != 0 || m != 0 {
		t.Fatalf("over-cost template touched the cache counters: hits=%d misses=%d", h, m)
	}
}

// TestResultCacheChargesFullEntryFootprint is the regression test for the
// accounting bug where put charged only len(body): an entry's charge must
// cover its key and a fixed per-entry overhead too, and eviction must refund
// exactly what insertion charged. With body-only accounting a flood of
// tiny-body/long-key entries would read as ~zero resident bytes and never
// evict.
func TestResultCacheChargesFullEntryFootprint(t *testing.T) {
	key := func(i int) string {
		return fmt.Sprintf("e0|k2|ctrue|vfalse|%s-%03d", strings.Repeat("x", 100), i)
	}
	body := []byte("{}\n")
	perEntry := entryCost(key(0), body)
	if perEntry <= int64(len(body)) {
		t.Fatalf("entryCost(%d-byte key, %d-byte body) = %d: key and overhead uncharged",
			len(key(0)), len(body), perEntry)
	}

	// Cap fits exactly 3 full entries but would fit thousands of bodies.
	c := newResultCache(3 * perEntry)
	for i := 0; i < 10; i++ {
		c.put(key(i), body)
	}
	bytes, entries := c.stats()
	if entries != 3 {
		t.Errorf("entries = %d, want 3 (body-only accounting would keep all 10)", entries)
	}
	if bytes != 3*perEntry {
		t.Errorf("accounted bytes = %d, want %d", bytes, 3*perEntry)
	}
	if bytes > c.maxBytes {
		t.Errorf("accounted bytes %d exceed cap %d", bytes, c.maxBytes)
	}
	if ev := c.evictions.Load(); ev != 7 {
		t.Errorf("evictions = %d, want 7", ev)
	}
	// LRU order: the three newest survive, the oldest were evicted.
	if c.get(key(0)) != nil || c.get(key(9)) == nil {
		t.Error("eviction order wrong")
	}

	// An entry whose full footprint exceeds the cap is refused outright even
	// though its body alone would fit.
	small := newResultCache(perEntry - 1)
	small.put(key(42), body)
	if bytes, entries := small.stats(); bytes != 0 || entries != 0 {
		t.Errorf("over-cap entry admitted: %d bytes, %d entries", bytes, entries)
	}
}
