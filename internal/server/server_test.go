package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"approxmatch/internal/graph"
)

func testGraph() *graph.Graph {
	b := graph.NewBuilder(0)
	a0 := b.AddVertex(1)
	a1 := b.AddVertex(2)
	a2 := b.AddVertex(3)
	b.AddEdge(a0, a1)
	b.AddEdge(a1, a2)
	b.AddEdge(a0, a2)
	c0 := b.AddVertex(1)
	c1 := b.AddVertex(2)
	c2 := b.AddVertex(3)
	b.AddEdge(c0, c1)
	b.AddEdge(c1, c2)
	return b.Build()
}

const triangleTemplate = `v 0 1
v 1 2
v 2 3
e 0 1
e 1 2
e 0 2
`

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(New(testGraph()).Handler())
	t.Cleanup(srv.Close)
	return srv
}

func postJSON(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func TestMatchEndpoint(t *testing.T) {
	srv := newTestServer(t)
	body, _ := json.Marshal(MatchRequest{Template: triangleTemplate, K: 1, Count: true, Vectors: true})
	resp := postJSON(t, srv.URL+"/match", string(body))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out MatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Prototypes) != 4 {
		t.Fatalf("prototypes = %d", len(out.Prototypes))
	}
	if out.Prototypes[0].MatchCount == nil || *out.Prototypes[0].MatchCount != 1 {
		t.Errorf("base count = %v", out.Prototypes[0].MatchCount)
	}
	if out.Labels == 0 {
		t.Error("no labels")
	}
	if len(out.Vectors) == 0 {
		t.Error("no vectors")
	}
	if mv, ok := out.Vectors["0"]; !ok || len(mv) != 4 {
		t.Errorf("vertex 0 vector = %v", out.Vectors["0"])
	}
}

func TestExploreEndpoint(t *testing.T) {
	srv := newTestServer(t)
	// Only the approximate instance exists for a 4-clique... use the
	// triangle on a graph where the exact match exists: found at 0.
	body, _ := json.Marshal(MatchRequest{Template: triangleTemplate, K: 2})
	resp := postJSON(t, srv.URL+"/explore", string(body))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out ExploreResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.FoundDist != 0 {
		t.Errorf("found at %d, want 0", out.FoundDist)
	}
	if out.MatchingVertices != 3 {
		t.Errorf("matching vertices = %d", out.MatchingVertices)
	}
}

func TestStatsEndpoint(t *testing.T) {
	srv := newTestServer(t)
	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Vertices != 6 || out.Edges != 5 {
		t.Errorf("stats = %+v", out)
	}
}

func TestBadRequests(t *testing.T) {
	srv := newTestServer(t)
	cases := []string{
		`{`,                                   // malformed JSON
		`{"template": "x y z", "k": 1}`,       // bad template
		`{"template": "v 0 1", "k": 99}`,      // k out of range
		`{"template": "v 0 1\nv 1 2", "k":1}`, // disconnected template
	}
	for _, c := range cases {
		resp := postJSON(t, srv.URL+"/match", c)
		if resp.StatusCode == http.StatusOK {
			t.Errorf("request %q accepted", c)
		}
	}
	// Wrong method.
	resp, err := http.Get(srv.URL + "/match")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Error("GET /match accepted")
	}
}
