package server

import (
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"regexp"
	"testing"
	"time"

	"approxmatch/internal/dist"
)

// startRankWorker runs a full server stack behind the rank worker protocol
// on a loopback socket, the in-process equivalent of one amatchrank.
func startRankWorker(t *testing.T) string {
	t.Helper()
	g := testGraph()
	s := New(g)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	rs := dist.NewRankServer(ln, dist.HelloInfo{
		Vertices:  g.NumVertices(),
		Edges:     g.NumDirectedEdges(),
		Signature: dist.GraphSignature(g),
	}, s.RankHandler())
	go rs.Serve() //nolint:errcheck // exits on Close
	t.Cleanup(rs.Close)
	return rs.Addr()
}

// elapsedRe strips the one legitimately volatile response field before
// byte comparison.
var elapsedRe = regexp.MustCompile(`"elapsed_ms":\d+`)

func normalize(b []byte) string {
	return elapsedRe.ReplaceAllString(string(b), `"elapsed_ms":0`)
}

func readAll(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestCoordinatorByteIdentity is the satellite acceptance test: a query
// routed through a rank group must return byte-for-byte the body a direct
// in-process server produces (modulo wall time), for /match and /explore,
// for success and for validation failures.
func TestCoordinatorByteIdentity(t *testing.T) {
	workers := []string{startRankWorker(t), startRankWorker(t)}
	co, err := dist.DialGroup(workers, dist.GraphSignature(testGraph()), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(co.Close)
	direct := newTestServer(t)
	proxied := httptest.NewServer(NewWithConfig(testGraph(), Config{Coordinator: co}).Handler())
	t.Cleanup(proxied.Close)

	cases := []struct {
		name, path, body string
	}{
		{"match", "/match", `{"template":"` + `v 0 1\nv 1 2\nv 2 3\ne 0 1\ne 1 2\ne 0 2\n` + `","k":1,"count":true,"vectors":true}`},
		{"match k0", "/match", `{"template":"` + `v 0 1\nv 1 2\nv 2 3\ne 0 1\ne 1 2\ne 0 2\n` + `","k":0}`},
		{"explore", "/explore", `{"template":"` + `v 0 1\nv 1 2\nv 2 3\ne 0 1\ne 1 2\ne 0 2\n` + `","max_k":2}`},
		{"bad template", "/match", `{"template":"nonsense","k":1}`},
		{"bad json", "/match", `{"template":`},
	}
	for _, c := range cases {
		dResp := postJSON(t, direct.URL+c.path, c.body)
		pResp := postJSON(t, proxied.URL+c.path, c.body)
		dBody, pBody := readAll(t, dResp), readAll(t, pResp)
		if dResp.StatusCode != pResp.StatusCode {
			t.Fatalf("%s: status %d via coordinator, %d direct", c.name, pResp.StatusCode, dResp.StatusCode)
		}
		if dct, pct := dResp.Header.Get("Content-Type"), pResp.Header.Get("Content-Type"); dct != pct {
			t.Fatalf("%s: content type %q via coordinator, %q direct", c.name, pct, dct)
		}
		if normalize(dBody) != normalize(pBody) {
			t.Fatalf("%s: body differs\ncoordinator: %s\ndirect:      %s", c.name, pBody, dBody)
		}
	}
}

// TestCoordinatorSheddingSkipped: the coordinator must not apply its own
// admission control to routed queries — the rank group is the capacity.
// Local endpoints (/stats, /healthz) stay local and keep working.
func TestCoordinatorLocalEndpointsStayLocal(t *testing.T) {
	workers := []string{startRankWorker(t)}
	co, err := dist.DialGroup(workers, 0, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(co.Close)
	proxied := httptest.NewServer(NewWithConfig(testGraph(), Config{Coordinator: co}).Handler())
	t.Cleanup(proxied.Close)
	for _, path := range []string{"/stats", "/healthz", "/metrics"} {
		resp, err := http.Get(proxied.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
	}
}

// TestCoordinatorWorkerDownIs502: with the whole group unreachable a valid
// query surfaces 502, while a malformed one still fails fast locally with
// 400 (validation happens before the network hop).
func TestCoordinatorWorkerDownIs502(t *testing.T) {
	g := testGraph()
	s := New(g)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	rs := dist.NewRankServer(ln, dist.HelloInfo{Signature: dist.GraphSignature(g)}, s.RankHandler())
	go rs.Serve() //nolint:errcheck
	co, err := dist.DialGroup([]string{rs.Addr()}, 0, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(co.Close)
	rs.Close()
	proxied := httptest.NewServer(NewWithConfig(testGraph(), Config{Coordinator: co}).Handler())
	t.Cleanup(proxied.Close)

	resp := postJSON(t, proxied.URL+"/match", `{"template":"`+`v 0 1\nv 1 2\nv 2 3\ne 0 1\ne 1 2\ne 0 2\n`+`","k":1}`)
	readAll(t, resp)
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("valid query with dead group: status %d, want 502", resp.StatusCode)
	}
	resp = postJSON(t, proxied.URL+"/match", `{"template":"nonsense","k":1}`)
	readAll(t, resp)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed query: status %d, want 400 (local validation)", resp.StatusCode)
	}
}
