package server

import (
	"runtime/metrics"
	"sync"
	"time"
)

// heapMetric is the runtime/metrics sample the admission watermark reads:
// bytes occupied by live objects plus not-yet-swept garbage — the number
// that grows when queries hold too much state.
const heapMetric = "/memory/classes/heap/objects:bytes"

// memWatcher samples the Go heap for memory-watermark admission control.
// Samples are cached for sampleTTL so a burst of admissions costs one
// runtime/metrics read, not one per request.
type memWatcher struct {
	limit uint64 // 0 = shedding disabled

	mu       sync.Mutex
	sampled  time.Time
	lastHeap uint64
}

const sampleTTL = 100 * time.Millisecond

func newMemWatcher(limit uint64) *memWatcher {
	return &memWatcher{limit: limit}
}

// heapBytes returns the (possibly cached) live-heap sample.
func (m *memWatcher) heapBytes() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if now := time.Now(); now.Sub(m.sampled) >= sampleTTL {
		sample := []metrics.Sample{{Name: heapMetric}}
		metrics.Read(sample)
		if sample[0].Value.Kind() == metrics.KindUint64 {
			m.lastHeap = sample[0].Value.Uint64()
		}
		m.sampled = now
	}
	return m.lastHeap
}

// over reports whether the heap is above the high watermark.
func (m *memWatcher) over() bool {
	return m.limit > 0 && m.heapBytes() > m.limit
}
