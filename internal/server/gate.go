package server

import (
	"io"
	"net/http"
	"sync/atomic"
)

// ReadyGate fronts the HTTP handler during startup recovery: amatchd
// binds its listener before WAL replay begins (so probes see a live
// port, not connection refused), and the gate answers 503 with a
// Retry-After on every route — including /healthz and /match — until
// Ready installs the real handler. The swap is one atomic pointer store;
// requests racing it get whichever side they loaded, never a torn state.
type ReadyGate struct {
	h atomic.Pointer[http.Handler]
}

// NewReadyGate returns a gate in the not-ready state.
func NewReadyGate() *ReadyGate { return &ReadyGate{} }

// Ready installs h; every subsequent request is served by it.
func (g *ReadyGate) Ready(h http.Handler) { g.h.Store(&h) }

// IsReady reports whether the real handler has been installed.
func (g *ReadyGate) IsReady() bool { return g.h.Load() != nil }

func (g *ReadyGate) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if hp := g.h.Load(); hp != nil {
		(*hp).ServeHTTP(w, r)
		return
	}
	w.Header().Set("Retry-After", "1")
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusServiceUnavailable)
	io.WriteString(w, "recovering\n")
}
