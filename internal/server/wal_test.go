package server

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"approxmatch/internal/wal"
)

// walServer recovers dir's WAL over testGraph and builds an
// ingest-enabled server on the recovered state, exactly as amatchd does
// on boot.
func walServer(t *testing.T, opts wal.Options) (*Server, *httptest.Server, *wal.Log, *wal.Recovery) {
	t.Helper()
	l, rec, err := wal.Open(opts, testGraph())
	if err != nil {
		t.Fatal(err)
	}
	s := NewWithConfig(rec.Graph, Config{EnableIngest: true, WAL: l, StartEpoch: rec.Epoch})
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	t.Cleanup(func() { l.Close() })
	return s, srv, l, rec
}

// canonicalMatch posts req to /match and returns the response body with
// the volatile elapsed_ms field stripped; everything else (prototypes,
// counts, vectors, partial flag) must be byte-identical across a
// crash-restart.
func canonicalMatch(t *testing.T, url string, req MatchRequest) string {
	t.Helper()
	body, _ := json.Marshal(req)
	resp := postJSON(t, url+"/match", string(body))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("match status %d", resp.StatusCode)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	delete(m, "elapsed_ms")
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

// randomBatches generates n ingest bodies that are valid in sequence
// against testGraph: the 3-5 edge toggles (tracking presence so inserts
// and deletes always validate) and vertices get random relabels, distinct
// within a batch so no intra-batch conflicts arise.
func randomBatches(rng *rand.Rand, n int) []string {
	has35 := false
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		var ins, del, rel []string
		if rng.Intn(2) == 0 {
			if has35 {
				del = append(del, "[3,5]")
			} else {
				ins = append(ins, "[3,5]")
			}
			has35 = !has35
		}
		perm := rng.Perm(6)
		for j := rng.Intn(3); j > 0; j-- {
			rel = append(rel, fmt.Sprintf("[%d,%d]", perm[j], 1+rng.Intn(3)))
		}
		if len(ins)+len(del)+len(rel) == 0 {
			rel = append(rel, fmt.Sprintf("[%d,1]", perm[0]))
		}
		out = append(out, fmt.Sprintf(`{"insert":[%s],"delete":[%s],"relabel":[%s]}`,
			strings.Join(ins, ","), strings.Join(del, ","), strings.Join(rel, ",")))
	}
	return out
}

// lastSegment returns the newest WAL segment file in dir.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments in %s (%v)", dir, err)
	}
	sort.Strings(segs) // names are zero-padded hex: lexical == numeric
	return segs[len(segs)-1]
}

// TestCrashRestartDifferential is the restart-identity suite: a WAL-backed
// server and a WAL-less reference consume the same randomized batch
// sequence; the WAL server is then "crashed" (HTTP torn down, log closed
// without a checkpoint; on odd seeds a partial record — a mid-append
// crash of a batch that was never acknowledged — is splattered onto the
// segment tail) and recovered. The recovered server must be
// indistinguishable from the reference: same epoch, same match counts,
// byte-identical /match bodies.
func TestCrashRestartDifferential(t *testing.T) {
	const nBatches = 12
	for _, policy := range []wal.SyncPolicy{wal.SyncAlways, wal.SyncInterval, wal.SyncNone} {
		for seed := int64(0); seed < 4; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", policy, seed), func(t *testing.T) {
				dir := t.TempDir()
				batches := randomBatches(rand.New(rand.NewSource(seed)), nBatches)
				_, vsrv, vlog, _ := walServer(t, wal.Options{Dir: dir, Sync: policy, CheckpointEvery: 5})
				_, rsrv := newIngestServer(t, Config{})
				for i, b := range batches {
					for _, u := range []string{vsrv.URL, rsrv.URL} {
						if resp := postJSON(t, u+"/ingest", b); resp.StatusCode != http.StatusOK {
							t.Fatalf("batch %d on %s: status %d (%s)", i, u, resp.StatusCode, b)
						}
					}
				}
				// Crash: drop the listener and the log handle. Writes were
				// unbuffered, so the on-disk bytes are what kill -9 leaves.
				vsrv.Close()
				vlog.Close()
				tornInjected := seed%2 == 1
				if tornInjected {
					f, err := os.OpenFile(lastSegment(t, dir), os.O_APPEND|os.O_WRONLY, 0)
					if err != nil {
						t.Fatal(err)
					}
					if _, err := f.Write([]byte{0xee, 0xee, 0xee, 0xee, 0x01, 0x02}); err != nil {
						t.Fatal(err)
					}
					f.Close()
				}

				_, v2srv, _, rec := walServer(t, wal.Options{Dir: dir, Sync: policy, CheckpointEvery: 5})
				if rec.Epoch != nBatches {
					t.Fatalf("recovered epoch %d, want %d", rec.Epoch, nBatches)
				}
				if rec.TornTail != tornInjected {
					t.Fatalf("TornTail = %v, want %v", rec.TornTail, tornInjected)
				}
				if !rec.FromCheckpoint || rec.CheckpointEpoch != 10 {
					t.Fatalf("recovery = %+v, want checkpoint at epoch 10 bounding replay", rec)
				}
				if rec.Replayed != nBatches-10 {
					t.Fatalf("replayed %d records, want %d", rec.Replayed, nBatches-10)
				}

				if got, want := getStats(t, v2srv.URL).Epoch, getStats(t, rsrv.URL).Epoch; got != want {
					t.Fatalf("recovered epoch %d != reference %d", got, want)
				}
				for _, req := range []MatchRequest{
					{Template: triangleTemplate, K: 0, Count: true},
					{Template: triangleTemplate, K: 1, Count: true},
					{Template: triangleTemplate, K: 1},
				} {
					got := canonicalMatch(t, v2srv.URL, req)
					want := canonicalMatch(t, rsrv.URL, req)
					if got != want {
						t.Fatalf("K=%d match body diverged after restart:\n got %s\nwant %s", req.K, got, want)
					}
				}
			})
		}
	}
}

// TestIngestDurabilityFailure: when the WAL append cannot be made durable
// the batch must be rejected — 500, no epoch advance, no graph change —
// and a later batch (and a restart) must see a consistent log.
func TestIngestDurabilityFailure(t *testing.T) {
	dir := t.TempDir()
	opts := wal.Options{
		Dir:  dir,
		Sync: wal.SyncAlways,
		OpenFile: func(path string) (wal.File, error) {
			return wal.NewFaultFile(path, wal.FaultSpec{FailSyncAt: 2})
		},
	}
	_, srv, l, _ := walServer(t, opts)
	if resp := postJSON(t, srv.URL+"/ingest", `{"insert":[[3,5]]}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("first ingest: status %d", resp.StatusCode)
	}
	// Second append hits the injected short fsync: rejected, rolled back.
	resp := postJSON(t, srv.URL+"/ingest", `{"delete":[[3,5]]}`)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("non-durable ingest: status %d, want 500", resp.StatusCode)
	}
	if st := getStats(t, srv.URL); st.Epoch != 1 {
		t.Fatalf("failed append advanced the epoch to %d", st.Epoch)
	}
	// The rejected batch changed nothing: 3-5 still present, so deleting
	// it again must succeed now that the fault is spent.
	if resp := postJSON(t, srv.URL+"/ingest", `{"delete":[[3,5]]}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-fault ingest: status %d", resp.StatusCode)
	}
	prom := scrapeMetrics(t, srv.URL)
	for _, want := range []string{
		"amatchd_ingest_rejected_total 1",
		"amatchd_wal_appends_total 2",
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	srv.Close()
	l.Close()

	_, _, l2, rec := walServer(t, wal.Options{Dir: dir})
	defer l2.Close()
	if rec.Epoch != 2 || rec.TornTail {
		t.Fatalf("recovery = epoch %d torn %v, want 2/false (rollback left a clean tail)", rec.Epoch, rec.TornTail)
	}
}

// TestBumpEpochLogged: with a WAL attached, administrative epoch bumps go
// through the log too — otherwise the epoch chain would have a hole and
// recovery would refuse the records after it.
func TestBumpEpochLogged(t *testing.T) {
	dir := t.TempDir()
	s, srv, l, _ := walServer(t, wal.Options{Dir: dir})
	s.BumpEpoch()
	if resp := postJSON(t, srv.URL+"/ingest", `{"insert":[[3,5]]}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest after bump: status %d", resp.StatusCode)
	}
	if st := getStats(t, srv.URL); st.Epoch != 2 {
		t.Fatalf("epoch = %d, want 2 (bump + batch)", st.Epoch)
	}
	srv.Close()
	l.Close()
	_, srv2, _, rec := walServer(t, wal.Options{Dir: dir})
	if rec.Epoch != 2 || rec.Replayed != 2 {
		t.Fatalf("recovery = %+v, want both records (bump included) replayed", rec)
	}
	if got := matchBaseCount(t, srv2.URL); got != 2 {
		t.Fatalf("post-recovery base count = %d, want 2", got)
	}
}

// TestWALMetricsExposed: the durability counter families render on
// /metrics when a WAL is attached.
func TestWALMetricsExposed(t *testing.T) {
	_, srv, _, _ := walServer(t, wal.Options{Dir: t.TempDir(), Sync: wal.SyncAlways, CheckpointEvery: 1})
	if resp := postJSON(t, srv.URL+"/ingest", `{"insert":[[3,5]]}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: status %d", resp.StatusCode)
	}
	prom := scrapeMetrics(t, srv.URL)
	for _, want := range []string{
		"amatchd_wal_appends_total 1",
		"amatchd_wal_bytes_total",
		"amatchd_wal_checkpoints_total 1",
		"amatchd_wal_replayed_records_total 0",
		"amatchd_wal_torn_tail_truncations_total 0",
		"amatchd_wal_recovery_seconds",
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("metrics missing %q:\n%s", want, prom)
		}
	}
	if !strings.Contains(prom, "amatchd_wal_fsyncs_total") {
		t.Error("fsync counter family missing")
	}
}

// TestReadyGate: amatchd binds its listener before recovery; until the
// real handler is installed every route answers 503 with a Retry-After.
func TestReadyGate(t *testing.T) {
	gate := NewReadyGate()
	srv := httptest.NewServer(gate)
	defer srv.Close()
	for _, path := range []string{"/healthz", "/match", "/stats"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("%s before Ready: status %d, want 503", path, resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Fatalf("%s before Ready: no Retry-After", path)
		}
	}
	if gate.IsReady() {
		t.Fatal("gate ready before Ready()")
	}
	s := NewWithConfig(testGraph(), Config{})
	gate.Ready(s.Handler())
	if !gate.IsReady() {
		t.Fatal("gate not ready after Ready()")
	}
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after Ready: status %d", resp.StatusCode)
	}
}
