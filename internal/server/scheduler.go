package server

import (
	"context"
	"errors"
	"sync"
)

// errOverloaded is returned by scheduler.acquire when the admission queue is
// full; handlers translate it to 503 + Retry-After.
var errOverloaded = errors.New("server overloaded")

// scheduler bounds the serving layer's concurrency: at most maxConcurrent
// queries run the pipeline at once, and at most queueDepth more may wait for
// a slot. Anything beyond that is rejected immediately (load shedding) so a
// traffic spike degrades into fast 503s instead of an unbounded queue of
// slow requests.
type scheduler struct {
	// slots holds one token per in-flight pipeline run.
	slots chan struct{}
	// queue holds one token per admitted request (in-flight + waiting);
	// its capacity is maxConcurrent+queueDepth.
	queue chan struct{}
}

func newScheduler(maxConcurrent, queueDepth int) *scheduler {
	if maxConcurrent < 1 {
		maxConcurrent = 1
	}
	if queueDepth < 0 {
		queueDepth = 0
	}
	return &scheduler{
		slots: make(chan struct{}, maxConcurrent),
		queue: make(chan struct{}, maxConcurrent+queueDepth),
	}
}

// acquire admits the request and blocks until a pipeline slot frees up or
// ctx fires. It returns errOverloaded immediately when the admission queue
// is full, ctx.Err() when the caller's context fires while waiting, and
// otherwise a release function that MUST be called exactly once — as soon
// as the pipeline run finishes, before response serialization, so a slow
// client draining a large response does not hold query capacity.
func (s *scheduler) acquire(ctx context.Context) (release func(), err error) {
	select {
	case s.queue <- struct{}{}:
	default:
		return nil, errOverloaded
	}
	select {
	case s.slots <- struct{}{}:
		var once sync.Once
		return func() {
			once.Do(func() {
				<-s.slots
				<-s.queue
			})
		}, nil
	case <-ctx.Done():
		<-s.queue
		return nil, ctx.Err()
	}
}

// inFlight reports the number of queries currently holding a pipeline slot.
func (s *scheduler) inFlight() int { return len(s.slots) }

// waiting reports the number of admitted queries waiting for a slot.
func (s *scheduler) waiting() int {
	if n := len(s.queue) - len(s.slots); n > 0 {
		return n
	}
	return 0
}
