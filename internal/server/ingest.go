package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"time"

	"approxmatch/internal/graph"
)

// Live-graph ingest (POST /ingest, behind Config.EnableIngest). A batch of
// edge inserts/deletes and vertex relabels is validated and applied as one
// atomic epoch swap: the next-epoch CSR is built off to the side
// (graph.ApplyDelta), published with a single pointer store, and in-flight
// queries keep reading the snapshot they pinned at admission. On success both
// cross-query caches are purged — the epoch participates in every result
// cache key, so even a stale single-flight leader finishing late cannot
// resurface a pre-ingest body to post-ingest queries — and /stats is
// recomputed for the new epoch.
//
// Rejection is all-or-nothing: a batch that fails validation (malformed rows,
// out-of-range endpoints, inserting a present edge, deleting an absent one,
// intra-batch conflicts) changes nothing, not even the epoch.

// IngestRequest is the /ingest request body. Rows are positional arrays —
// compact enough that a million-edge batch stays well under the body cap:
//
//	{
//	  "insert":  [[u, v], [u, v, edgeLabel], ...],
//	  "delete":  [[u, v], ...],
//	  "relabel": [[vertex, label], ...]
//	}
//
// Insert rows carry an optional third element, the edge label (only valid on
// edge-labeled graphs). All values must be non-negative and fit in 32 bits.
type IngestRequest struct {
	Insert  [][]int64 `json:"insert"`
	Delete  [][]int64 `json:"delete"`
	Relabel [][]int64 `json:"relabel"`
}

// IngestResponse reports one applied batch.
type IngestResponse struct {
	// Epoch is the new graph epoch the batch published.
	Epoch uint64 `json:"epoch"`
	// Inserted/Deleted/Relabeled count the batch's operations.
	Inserted  int `json:"inserted"`
	Deleted   int `json:"deleted"`
	Relabeled int `json:"relabeled"`
	// ChangedVertices is the size of the dirty seed set (endpoints of
	// inserted/deleted edges plus relabeled vertices) — the |C| of the
	// incremental re-matching locality bound.
	ChangedVertices int `json:"changed_vertices"`
	// Vertices and Edges describe the new epoch's graph.
	Vertices  int   `json:"vertices"`
	Edges     int   `json:"edges"`
	ElapsedMS int64 `json:"elapsed_ms"`
}

// cell extracts row[i] as a 32-bit-safe non-negative value.
func cell(what string, row []int64, i int) (uint32, error) {
	v := row[i]
	if v < 0 || v > math.MaxUint32 {
		return 0, fmt.Errorf("%s row value %d out of range", what, v)
	}
	return uint32(v), nil
}

// decodeDelta translates the wire rows into a graph.Delta, checking row
// shapes and value ranges; semantic validation against the live graph
// (presence, duplicates, self loops) is ApplyDelta's job.
func decodeDelta(req *IngestRequest) (*graph.Delta, error) {
	b := graph.NewDeltaBuilder()
	for _, row := range req.Insert {
		if len(row) != 2 && len(row) != 3 {
			return nil, fmt.Errorf("insert rows need 2 or 3 values, got %d", len(row))
		}
		u, err := cell("insert", row, 0)
		if err != nil {
			return nil, err
		}
		v, err := cell("insert", row, 1)
		if err != nil {
			return nil, err
		}
		if len(row) == 3 {
			l, err := cell("insert", row, 2)
			if err != nil {
				return nil, err
			}
			b.InsertEdgeLabeled(graph.VertexID(u), graph.VertexID(v), graph.Label(l))
		} else {
			b.InsertEdge(graph.VertexID(u), graph.VertexID(v))
		}
	}
	for _, row := range req.Delete {
		if len(row) != 2 {
			return nil, fmt.Errorf("delete rows need 2 values, got %d", len(row))
		}
		u, err := cell("delete", row, 0)
		if err != nil {
			return nil, err
		}
		v, err := cell("delete", row, 1)
		if err != nil {
			return nil, err
		}
		b.DeleteEdge(graph.VertexID(u), graph.VertexID(v))
	}
	for _, row := range req.Relabel {
		if len(row) != 2 {
			return nil, fmt.Errorf("relabel rows need 2 values, got %d", len(row))
		}
		v, err := cell("relabel", row, 0)
		if err != nil {
			return nil, err
		}
		l, err := cell("relabel", row, 1)
		if err != nil {
			return nil, err
		}
		b.RelabelVertex(graph.VertexID(v), graph.Label(l))
	}
	return b.Delta(), nil
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	q := s.begin("ingest")
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.IngestMaxBodyBytes)
	var req IngestRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			http.Error(w, fmt.Sprintf("ingest body exceeds %d bytes", tooBig.Limit), http.StatusRequestEntityTooLarge)
			s.finish(r, q, outcomeTooLarge, http.StatusRequestEntityTooLarge)
		} else {
			http.Error(w, fmt.Sprintf("bad request: %v", err), http.StatusBadRequest)
			s.finish(r, q, outcomeBadRequest, http.StatusBadRequest)
		}
		s.metrics.noteIngestRejected()
		return
	}
	d, err := decodeDelta(&req)
	if err != nil {
		http.Error(w, fmt.Sprintf("bad batch: %v", err), http.StatusBadRequest)
		s.finish(r, q, outcomeBadRequest, http.StatusBadRequest)
		s.metrics.noteIngestRejected()
		return
	}

	// The wire speaks external vertex ids; translate to the internal
	// (possibly degree-relabeled) space before applying. The permutation is
	// fixed for the server's lifetime — every epoch shares the same tables —
	// so translating against the current snapshot is race-free even while
	// another writer swaps epochs.
	d = graph.TranslateDeltaToInternal(s.snaps.Current(), d)

	// Apply serializes writers internally; validation failures publish
	// nothing (the epoch does not advance). With a WAL configured, the
	// batch is appended — and fsynced, per the sync policy — between
	// validation and publication (write-ahead): an acknowledged batch is
	// always recoverable, and a batch the log rejects is never applied or
	// acknowledged. The delta is logged in internal id space, which is
	// what recovery replays against (the checkpoint carries the
	// permutation, and the seed graph is relabeled identically on every
	// boot).
	var commitErr error
	var commit func(epoch uint64) error
	if s.cfg.WAL != nil {
		commit = func(epoch uint64) error {
			if err := s.cfg.WAL.Append(epoch, d); err != nil {
				commitErr = err
				return err
			}
			return nil
		}
	}
	epoch, changed, err := s.snaps.ApplyLogged(d, commit)
	if commitErr != nil {
		s.log.LogAttrs(r.Context(), slog.LevelError, "ingest batch not durable",
			slog.String("error", commitErr.Error()))
		http.Error(w, "durable append failed; batch not applied", http.StatusInternalServerError)
		s.finish(r, q, outcomeDurability, http.StatusInternalServerError)
		s.metrics.noteIngestRejected()
		return
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		s.finish(r, q, outcomeUnprocessable, http.StatusUnprocessableEntity)
		s.metrics.noteIngestRejected()
		return
	}
	// Recompute /stats before purging: a query racing the purge may still
	// cache an old-epoch body, but it is keyed by the old epoch and therefore
	// unreachable to post-ingest queries.
	ng := s.snaps.Current()
	s.stats.Store(s.computeStats(ng, epoch))
	s.purgeCaches()
	s.metrics.noteIngestApplied(len(d.Insert), len(d.Delete), len(d.Relabels))
	if s.cfg.WAL != nil {
		// Outside the publish critical path: a checkpoint failure costs
		// replay time on the next boot, never durability (the records it
		// would have superseded are still in the log).
		if _, err := s.cfg.WAL.MaybeCheckpoint(ng, epoch); err != nil {
			s.log.LogAttrs(r.Context(), slog.LevelWarn, "wal checkpoint failed",
				slog.String("error", err.Error()))
		}
	}

	resp := IngestResponse{
		Epoch:           epoch,
		Inserted:        len(d.Insert),
		Deleted:         len(d.Delete),
		Relabeled:       len(d.Relabels),
		ChangedVertices: len(changed),
		Vertices:        ng.NumVertices(),
		Edges:           ng.NumDirectedEdges() / 2,
		ElapsedMS:       time.Since(q.start).Milliseconds(),
	}
	s.finish(r, q, outcomeOK, http.StatusOK,
		slog.Uint64("epoch", epoch),
		slog.Int("inserted", resp.Inserted),
		slog.Int("deleted", resp.Deleted),
		slog.Int("relabeled", resp.Relabeled),
		slog.Int("changed_vertices", resp.ChangedVertices))
	writeJSON(w, resp)
}
