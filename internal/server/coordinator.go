package server

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"

	"approxmatch/internal/dist"
)

// Coordinator-mode serving: with Config.Coordinator set, /match and
// /explore are routed to a group of amatchrank worker processes instead of
// the in-process engine. The request body is validated locally first (bad
// requests fail fast without a network hop), then forwarded verbatim —
// workers parse the same bytes, run the same serving stack, and the
// response is relayed untouched, so a routed query's body is byte-for-byte
// what the in-process engine would have produced for the same graph.
// Admission control and memory shedding are NOT applied on the
// coordinator: the rank group is the capacity being managed, and each
// worker runs its own scheduler. /stats, /metrics, /healthz (and /ingest
// if enabled) always stay local.

// forward routes one query to the rank group and relays the response.
func (s *Server) forward(w http.ResponseWriter, r *http.Request, q *request, endpoint byte) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	body, err := io.ReadAll(r.Body)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			http.Error(w, fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit), http.StatusRequestEntityTooLarge)
			s.finish(r, q, outcomeTooLarge, http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, fmt.Sprintf("bad request: %v", err), http.StatusBadRequest)
		s.finish(r, q, outcomeBadRequest, http.StatusBadRequest)
		return
	}
	// Validate locally against the same rules the worker will apply, so a
	// malformed query is rejected here with the usual error shape.
	r.Body = io.NopCloser(bytes.NewReader(body))
	if _, _, ok := s.parseRequest(w, r, q); !ok {
		return
	}
	ctx, cancel := s.queryContext(r)
	defer cancel()
	status, contentType, resp, err := s.cfg.Coordinator.Do(ctx, endpoint, body)
	if err != nil {
		http.Error(w, fmt.Sprintf("rank group unavailable: %v", err), http.StatusBadGateway)
		s.finish(r, q, outcomeProxyError, http.StatusBadGateway)
		return
	}
	if contentType != "" {
		w.Header().Set("Content-Type", contentType)
	}
	w.WriteHeader(status)
	w.Write(resp) //nolint:errcheck // client write failures are the client's problem
	s.finish(r, q, outcomeProxied, status)
}

// RankHandler adapts this server's full HTTP serving stack to the rank
// worker protocol: a routed query is replayed as an in-process HTTP
// request through Handler(), so it passes the same scheduler, caches,
// budgets and chaos configuration as a direct request — and produces the
// same bytes.
func (s *Server) RankHandler() dist.QueryHandler {
	h := s.Handler()
	return func(endpoint byte, body []byte) (int, string, []byte) {
		var path string
		switch endpoint {
		case dist.EndpointMatch:
			path = "/match"
		case dist.EndpointExplore:
			path = "/explore"
		default:
			return http.StatusNotFound, "text/plain; charset=utf-8", []byte("unknown endpoint\n")
		}
		req, err := http.NewRequest(http.MethodPost, path, bytes.NewReader(body))
		if err != nil {
			return http.StatusInternalServerError, "text/plain; charset=utf-8", []byte(err.Error())
		}
		req.Header.Set("Content-Type", "application/json")
		req.RemoteAddr = "coordinator"
		rec := &responseRecorder{status: http.StatusOK, header: make(http.Header)}
		h.ServeHTTP(rec, req)
		return rec.status, rec.header.Get("Content-Type"), rec.buf.Bytes()
	}
}

// responseRecorder is the minimal in-process http.ResponseWriter behind
// RankHandler (the stdlib recorder lives in httptest, a test package).
type responseRecorder struct {
	header http.Header
	buf    bytes.Buffer
	status int
	wrote  bool
}

func (r *responseRecorder) Header() http.Header { return r.header }

func (r *responseRecorder) WriteHeader(code int) {
	if !r.wrote {
		r.status = code
		r.wrote = true
	}
}

func (r *responseRecorder) Write(b []byte) (int, error) {
	r.wrote = true
	return r.buf.Write(b)
}
