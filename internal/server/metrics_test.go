package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"approxmatch/internal/core"
)

// TestWritePromCompactionCounters pins the Prometheus text rendering of the
// compaction counters and the active-fraction gauge, including the
// no-checks-yet divide-by-zero guard.
func TestWritePromCompactionCounters(t *testing.T) {
	r := newMetricsRegistry()

	// Before any query the gauge must render its neutral value, not NaN.
	var sb strings.Builder
	r.writeProm(&sb, 0, 0, 0, cacheGauges{}, walGauges{}, 0, 0, 0)
	for _, want := range []string{
		"amatchd_compaction_checks_total 0\n",
		"amatchd_compactions_total 0\n",
		"amatchd_compaction_bytes_reclaimed_total 0\n",
		"amatchd_pipeline_active_fraction{stage=\"pre\"} 1\n",
		"amatchd_pipeline_active_fraction{stage=\"post\"} 1\n",
	} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("empty registry missing %q in:\n%s", want, sb.String())
		}
	}

	// Two queries' worth of pipeline metrics: 4 checks total, 1 fired.
	r.observePipeline(&core.Metrics{
		CompactionChecks:         3,
		Compactions:              1,
		CompactionBytesReclaimed: 4096,
		CompactionFracBefore:     0.25 + 0.5 + 0.75,
		CompactionFracAfter:      1 + 0.5 + 0.75,
	})
	r.observePipeline(&core.Metrics{
		CompactionChecks:     1,
		CompactionFracBefore: 0.5,
		CompactionFracAfter:  0.5,
	})
	r.record("match", outcomeOK, 5*time.Millisecond)

	sb.Reset()
	r.writeProm(&sb, 1, 2, 1<<20, cacheGauges{}, walGauges{}, 3, 2, 4096)
	got := sb.String()
	for _, want := range []string{
		"# TYPE amatchd_compaction_checks_total counter",
		"amatchd_compaction_checks_total 4\n",
		"amatchd_compactions_total 1\n",
		"amatchd_compaction_bytes_reclaimed_total 4096\n",
		"# TYPE amatchd_pipeline_active_fraction gauge",
		"amatchd_pipeline_active_fraction{stage=\"pre\"} 0.5\n",
		"amatchd_pipeline_active_fraction{stage=\"post\"} 0.6875\n",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("missing %q in:\n%s", want, got)
		}
	}
}

// TestMetricsEndpointCompaction runs a real query with compaction forced on
// and checks the counters surface on /metrics.
func TestMetricsEndpointCompaction(t *testing.T) {
	// Force a view at every level so the counters must move.
	s := NewWithConfig(testGraph(), Config{CompactBelow: 1.1})
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	body, _ := json.Marshal(MatchRequest{Template: triangleTemplate, K: 1})
	resp := postJSON(t, srv.URL+"/match", string(body))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("match status %d", resp.StatusCode)
	}
	io.Copy(io.Discard, resp.Body)

	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	prom, _ := io.ReadAll(mresp.Body)
	got := string(prom)
	if strings.Contains(got, "amatchd_compaction_checks_total 0\n") {
		t.Errorf("no compaction checks recorded:\n%s", got)
	}
	if strings.Contains(got, "amatchd_compactions_total 0\n") {
		t.Errorf("forced compaction never fired:\n%s", got)
	}
}
