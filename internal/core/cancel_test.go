package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"approxmatch/internal/datagen"
)

// TestPreCanceledContextReturnsPromptly checks the acceptance bar for the
// context plumbing: a query whose context is already dead must fail with
// the context's error before any graph work starts — well under 100 ms even
// on the RMAT bench graph.
func TestPreCanceledContextReturnsPromptly(t *testing.T) {
	g, tpl := datagen.RMATWithPattern(10)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	start := time.Now()
	if _, err := RunContext(ctx, g, tpl, DefaultConfig(2)); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext err = %v, want context.Canceled", err)
	}
	if _, err := RunParallelContext(ctx, g, tpl, DefaultConfig(2), 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunParallelContext err = %v, want context.Canceled", err)
	}
	if _, err := RunTopDownContext(ctx, g, tpl, DefaultConfig(2)); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunTopDownContext err = %v, want context.Canceled", err)
	}
	if _, err := MatchFlipsContext(ctx, g, tpl, DefaultConfig(0)); !errors.Is(err, context.Canceled) {
		t.Fatalf("MatchFlipsContext err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Errorf("pre-canceled entry points took %v, want < 100ms", elapsed)
	}
}

// TestExpiredDeadline checks that an already-expired deadline surfaces as
// context.DeadlineExceeded, distinguishable from explicit cancellation.
func TestExpiredDeadline(t *testing.T) {
	g, tpl := datagen.RMATWithPattern(8)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := RunContext(ctx, g, tpl, DefaultConfig(1)); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestMidRunCancellation cancels the context while the pipeline is deep in
// its phase loops and checks that the run aborts instead of completing.
func TestMidRunCancellation(t *testing.T) {
	g, tpl := datagen.RMATWithPattern(13)
	// Calibrate: the uncancelled query must outlast the amortized probes'
	// reaction latency (a few ms) by a healthy margin, or a cancel fired
	// partway can legitimately race query completion.
	t0 := time.Now()
	if _, err := RunContext(context.Background(), g, tpl, DefaultConfig(2)); err != nil {
		t.Fatal(err)
	}
	full := time.Since(t0)
	if full < 15*time.Millisecond {
		t.Skipf("query too fast to cancel mid-run (%v)", full)
	}

	ctx, cancel := context.WithTimeout(context.Background(), full/8)
	defer cancel()
	start := time.Now()
	_, err := RunContext(ctx, g, tpl, DefaultConfig(2))
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v after %v (full run %v), want context.DeadlineExceeded", err, elapsed, full)
	}
	if elapsed > 2*full {
		t.Errorf("canceled run took %v, more than twice the full run %v", elapsed, full)
	}

	// Same mid-run abort through the parallel scheduler's goroutines.
	ctx2, cancel2 := context.WithTimeout(context.Background(), full/8)
	defer cancel2()
	if _, err := RunParallelContext(ctx2, g, tpl, DefaultConfig(2), 4); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("parallel err = %v, want context.DeadlineExceeded", err)
	}
}

// TestContextNeverFiresMatchesRun checks the "results unchanged" half of
// the contract: a live but never-fired context must not perturb the result.
func TestContextNeverFiresMatchesRun(t *testing.T) {
	g, tpl := datagen.RMATWithPattern(8)
	cfg := DefaultConfig(2)
	cfg.CountMatches = true
	want, err := Run(g, tpl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
	defer cancel()
	got, err := RunContext(ctx, g, tpl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Solutions) != len(want.Solutions) {
		t.Fatalf("solutions %d vs %d", len(got.Solutions), len(want.Solutions))
	}
	for pi := range want.Solutions {
		if got.Solutions[pi].MatchCount != want.Solutions[pi].MatchCount {
			t.Errorf("proto %d count %d vs %d", pi, got.Solutions[pi].MatchCount, want.Solutions[pi].MatchCount)
		}
		if !got.Solutions[pi].Verts.Equal(want.Solutions[pi].Verts) {
			t.Errorf("proto %d vertex sets differ", pi)
		}
	}
}

// TestRecoverCancelPassesThroughOtherPanics checks that the abort recovery
// does not swallow unrelated panics.
func TestRecoverCancelPassesThroughOtherPanics(t *testing.T) {
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want boom", r)
		}
	}()
	var err error
	func() {
		defer RecoverCancel(&err)
		panic("boom")
	}()
}
