package core

import (
	"fmt"
	"time"
)

// Metrics counts the logical work the engine performs. In the distributed
// engine these counters correspond to real messages; in this sequential
// engine they count the visitor/token deliveries the same algorithm would
// generate, which is what §5.7's message analysis reports.
type Metrics struct {
	// CandidateMessages counts visitor deliveries during max-candidate-set
	// generation (reported separately in the §5.7 table).
	CandidateMessages int64
	// LCCMessages counts visitor deliveries during local constraint
	// checking iterations.
	LCCMessages int64
	// NLCCMessages counts token forwards during non-local constraint
	// checking walks.
	NLCCMessages int64
	// VerifyMessages counts candidate probes during the final exact
	// verification phase.
	VerifyMessages int64
	// TokensInitiated counts NLCC walk initiations.
	TokensInitiated int64
	// CacheHits counts NLCC walks skipped thanks to work recycling
	// (Obs. 2).
	CacheHits int64
	// CacheEvictions counts work-recycling cache entries evicted to honor
	// the cache's byte cap (Config.CacheBytes). Evictions cost recomputation
	// only, never correctness.
	CacheEvictions int64
	// LCCIterations counts LCC fixpoint rounds.
	LCCIterations int64
	// VerifySearches counts seeded match searches in the verification
	// phase.
	VerifySearches int64
	// EnumExpansions counts backtracking node expansions (successful
	// partial-assignment extensions) during match counting/enumeration;
	// VerifyExpansions counts the same during verification probes. With
	// symmetry breaking enabled, EnumExpansions drops by roughly |Aut(T)|
	// at the deep levels while counts stay identical.
	EnumExpansions   int64
	VerifyExpansions int64
	// GuardHits counts candidates rejected in O(1) by a recorded failure
	// guard; GuardsSet counts guards recorded.
	GuardHits int64
	GuardsSet int64
	// PrototypesSearched counts SEARCH_PROTOTYPE invocations.
	PrototypesSearched int64

	// CompactionChecks counts CompactState threshold evaluations (one per
	// level or gathered state with compaction enabled).
	CompactionChecks int64
	// Compactions counts compacted views actually built.
	Compactions int64
	// CompactionsDeclined counts compactions skipped because the view would
	// not fit under the run's byte budget (the search proceeds on the
	// uncompacted state — slower, never wrong).
	CompactionsDeclined int64
	// CompactionBytesReclaimed sums, over compactions, the working-set bytes
	// the kernels no longer touch (original CSR topology plus state bitvecs,
	// minus the view's).
	CompactionBytesReclaimed int64
	// CompactionFracBefore sums the active fraction observed at each
	// compaction check; CompactionFracAfter sums the fraction of the
	// structure actually searched afterwards (1.0 once compacted, the
	// before-value when the check declined). Divide by CompactionChecks for
	// averages.
	CompactionFracBefore float64
	CompactionFracAfter  float64

	// Fault-plane counters (distributed runtime only; zero on the
	// sequential path). FaultDrops/FaultDups/FaultReorders/FaultDelays
	// count injected message faults; Retries counts retransmissions of
	// unacked messages; Redeliveries counts duplicate deliveries the
	// receiver dedup suppressed; RankCheckpoints/CheckpointBytes count
	// per-rank state checkpoints and their serialized size; RankCrashes,
	// RankRestores and RankStalls count injected crash events, checkpoint
	// restorations and injected stalls.
	FaultDrops      int64
	FaultDups       int64
	FaultReorders   int64
	FaultDelays     int64
	Retries         int64
	Redeliveries    int64
	RankCheckpoints int64
	CheckpointBytes int64
	RankCrashes     int64
	RankRestores    int64
	RankStalls      int64

	// Socket-transport counters (TCP rank transport only; zero elsewhere).
	// SockFrames/SockBytes count frames successfully written to rank
	// sockets; SockDials counts connection establishments (first dials and
	// fault-recovery redials); SockConnDrops/SockPartialWrites/SockDelays
	// count injected socket faults; SockWriteErrors counts organic
	// write/dial failures (the frame is lost and retransmitted);
	// SockStaleFrames counts frames from finished or crashed traversal
	// attempts dropped by the reader's generation check.
	SockFrames        int64
	SockBytes         int64
	SockDials         int64
	SockConnDrops     int64
	SockPartialWrites int64
	SockDelays        int64
	SockWriteErrors   int64
	SockStaleFrames   int64

	// Phase wall times (the paper's Fig. 6 C/S breakdown): candidate-set
	// generation, LCC fixpoints, NLCC walks and final verification.
	CandidateTime time.Duration
	LCCTime       time.Duration
	NLCCTime      time.Duration
	VerifyTime    time.Duration
}

// TotalMessages returns all visitor/token deliveries.
func (m *Metrics) TotalMessages() int64 {
	return m.CandidateMessages + m.LCCMessages + m.NLCCMessages + m.VerifyMessages
}

// Add accumulates other into m.
func (m *Metrics) Add(other *Metrics) {
	m.CandidateMessages += other.CandidateMessages
	m.LCCMessages += other.LCCMessages
	m.NLCCMessages += other.NLCCMessages
	m.VerifyMessages += other.VerifyMessages
	m.TokensInitiated += other.TokensInitiated
	m.CacheHits += other.CacheHits
	m.CacheEvictions += other.CacheEvictions
	m.LCCIterations += other.LCCIterations
	m.VerifySearches += other.VerifySearches
	m.EnumExpansions += other.EnumExpansions
	m.VerifyExpansions += other.VerifyExpansions
	m.GuardHits += other.GuardHits
	m.GuardsSet += other.GuardsSet
	m.PrototypesSearched += other.PrototypesSearched
	m.CompactionChecks += other.CompactionChecks
	m.Compactions += other.Compactions
	m.CompactionsDeclined += other.CompactionsDeclined
	m.CompactionBytesReclaimed += other.CompactionBytesReclaimed
	m.CompactionFracBefore += other.CompactionFracBefore
	m.CompactionFracAfter += other.CompactionFracAfter
	m.FaultDrops += other.FaultDrops
	m.FaultDups += other.FaultDups
	m.FaultReorders += other.FaultReorders
	m.FaultDelays += other.FaultDelays
	m.Retries += other.Retries
	m.Redeliveries += other.Redeliveries
	m.RankCheckpoints += other.RankCheckpoints
	m.CheckpointBytes += other.CheckpointBytes
	m.RankCrashes += other.RankCrashes
	m.RankRestores += other.RankRestores
	m.RankStalls += other.RankStalls
	m.SockFrames += other.SockFrames
	m.SockBytes += other.SockBytes
	m.SockDials += other.SockDials
	m.SockConnDrops += other.SockConnDrops
	m.SockPartialWrites += other.SockPartialWrites
	m.SockDelays += other.SockDelays
	m.SockWriteErrors += other.SockWriteErrors
	m.SockStaleFrames += other.SockStaleFrames
	m.CandidateTime += other.CandidateTime
	m.LCCTime += other.LCCTime
	m.NLCCTime += other.NLCCTime
	m.VerifyTime += other.VerifyTime
}

// String summarizes the metrics.
func (m *Metrics) String() string {
	return fmt.Sprintf("msgs=%d (cand=%d lcc=%d nlcc=%d verify=%d) tokens=%d cachehits=%d",
		m.TotalMessages(), m.CandidateMessages, m.LCCMessages, m.NLCCMessages,
		m.VerifyMessages, m.TokensInitiated, m.CacheHits)
}

// LevelStats records one edit-distance level of the bottom-up pipeline,
// mirroring the per-level breakdowns of Figs. 6 and 8.
type LevelStats struct {
	// Dist is the edit-distance δ of the level.
	Dist int
	// Prototypes is the number of prototypes searched at this level.
	Prototypes int
	// ActiveVertices is |V*_δ|: vertices matching at least one prototype
	// at this level.
	ActiveVertices int
	// LabelsGenerated is the number of (vertex, prototype) labels set at
	// this level (the bottom row of Fig. 8).
	LabelsGenerated int64
	// Duration is the wall time spent searching this level.
	Duration time.Duration
	// ActiveFraction is the level state's active fraction (vertices plus
	// directed slots over the original graph) before any compaction.
	ActiveFraction float64
	// Compacted reports whether this level searched a compacted view.
	Compacted bool
	// Complete reports whether the level finished. On a full run every
	// level is complete; on a Partial run (budget exhaustion) the completed
	// levels' prototype columns are exact — bit-identical to an unbudgeted
	// run — and the incomplete levels' columns are unknown (all-zero
	// placeholders, never false positives).
	Complete bool
}

// PhaseSummary renders the phase wall times (the paper's Fig. 6 breakdown
// into candidate set, search and verification).
func (m *Metrics) PhaseSummary() string {
	return fmt.Sprintf("candidate=%v lcc=%v nlcc=%v verify=%v",
		m.CandidateTime.Round(time.Millisecond),
		m.LCCTime.Round(time.Millisecond),
		m.NLCCTime.Round(time.Millisecond),
		m.VerifyTime.Round(time.Millisecond))
}
