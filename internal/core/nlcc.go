package core

import (
	"sync"
	"sync/atomic"

	"approxmatch/internal/bitvec"
	"approxmatch/internal/constraint"
	"approxmatch/internal/graph"
	"approxmatch/internal/pattern"
)

// Cache stores which vertices have satisfied which non-local constraints
// (the κ(v) sets of Alg. 3). It is shared across all prototype searches of a
// run and is the mechanism behind work recycling (Obs. 2): a vertex that
// satisfied constraint C while searching one prototype skips the walk when
// another prototype presents the same constraint ID. It is safe for
// concurrent use (parallel prototype search shares one cache).
//
// The cache can be byte-bounded (NewCacheBytes): when inserting a new
// constraint's set would cross the cap, least-recently-used whole sets are
// evicted first. Eviction is always safe — a recorded verdict only lets a
// vertex *skip* a walk it would provably complete, so losing one merely
// re-runs that walk, and the verification phase makes the final solutions
// exact either way. The differential suites assert bit-identical results
// under tiny caps.
type Cache struct {
	mu       sync.RWMutex
	n        int
	maxBytes int64
	bytes    int64
	sets     map[string]*cacheEntry
	// clock is the recency stamp source; entries copy it on every touch.
	clock     atomic.Int64
	evictions atomic.Int64
	// hits/misses count Satisfied probes store-wide. Per-run metrics fold
	// their own counters; these cumulative ones exist for shared stores that
	// outlive any single run (cross-query recycling).
	hits   atomic.Int64
	misses atomic.Int64
}

// cacheEntry is one constraint's satisfied-vertex set plus its LRU stamp.
type cacheEntry struct {
	set *bitvec.Vector
	// touched is the entry's last-use stamp; updated under the read lock,
	// hence atomic.
	touched atomic.Int64
}

// NewCache returns an unbounded cache for an n-vertex background graph.
func NewCache(n int) *Cache {
	return NewCacheBytes(n, 0)
}

// NewCacheBytes returns a cache for an n-vertex background graph holding at
// most maxBytes of constraint sets (0 = unbounded). A cap smaller than one
// set means nothing is ever cached — legal, just cache-free.
func NewCacheBytes(n int, maxBytes int64) *Cache {
	return &Cache{n: n, maxBytes: maxBytes, sets: make(map[string]*cacheEntry)}
}

// Satisfied reports whether v is recorded as satisfying constraint id.
func (c *Cache) Satisfied(id string, v graph.VertexID) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	e, ok := c.sets[id]
	if !ok {
		c.misses.Add(1)
		return false
	}
	if !e.set.Get(int(v)) {
		// No touch on a negative probe: a miss storm against a resident set
		// must not keep it hot at the expense of sets that actually serve
		// hits (they would be evicted first under a byte cap).
		c.misses.Add(1)
		return false
	}
	e.touched.Store(c.clock.Add(1))
	c.hits.Add(1)
	return true
}

// Record marks v as satisfying constraint id. With a byte cap, a new
// constraint set that does not fit evicts least-recently-used sets until it
// does; if it cannot fit even alone the record is dropped (the walk simply
// re-runs next time).
func (c *Cache) Record(id string, v graph.VertexID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.sets[id]
	if !ok {
		set := bitvec.New(c.n)
		if c.maxBytes > 0 {
			need := set.Bytes()
			if need > c.maxBytes {
				return
			}
			for c.bytes+need > c.maxBytes {
				c.evictLRULocked()
			}
		}
		e = &cacheEntry{set: set}
		c.sets[id] = e
		c.bytes += set.Bytes()
	}
	e.touched.Store(c.clock.Add(1))
	e.set.Set(int(v))
}

// evictLRULocked removes the least-recently-touched entry; the caller holds
// the write lock and guarantees the map is non-empty.
func (c *Cache) evictLRULocked() {
	var victim string
	oldest := int64(0)
	first := true
	for id, e := range c.sets {
		if t := e.touched.Load(); first || t < oldest {
			victim, oldest, first = id, t, false
		}
	}
	c.bytes -= c.sets[victim].set.Bytes()
	delete(c.sets, victim)
	c.evictions.Add(1)
}

// Evictions returns how many constraint sets have been evicted.
func (c *Cache) Evictions() int64 { return c.evictions.Load() }

// Hits returns the cumulative number of positive Satisfied probes.
func (c *Cache) Hits() int64 { return c.hits.Load() }

// Misses returns the cumulative number of negative Satisfied probes.
func (c *Cache) Misses() int64 { return c.misses.Load() }

// Sets returns the number of resident constraint sets.
func (c *Cache) Sets() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.sets)
}

// Purge drops every resident set and resets byte accounting, leaving the
// cumulative counters intact. Serving layers call it when the background
// graph changes epoch: recycled verdicts from the old graph are merely
// useless (exactness never depended on them), but holding them wastes the
// byte budget on sets that can no longer hit.
func (c *Cache) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sets = make(map[string]*cacheEntry)
	c.bytes = 0
}

// Bytes returns the cache's memory footprint (Fig. 11 accounting).
func (c *Cache) Bytes() int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.bytes
}

// nlcc validates one non-local constraint walk (Alg. 5) on state s: every
// active vertex that is a candidate for the walk's initiator template vertex
// must complete the walk; vertices that cannot lose that candidate (and are
// deactivated when no candidates remain). With a non-nil cache, vertices
// recorded as satisfying w.ID skip the walk (work recycling); fresh
// successes are recorded. It returns whether any candidate or vertex was
// eliminated. A non-nil pool runs the initiator scan on the superstep
// schedule in nlccPar; the walks themselves stay per-vertex either way.
func nlcc(s *State, omega candidateSet, t *pattern.Template, w *constraint.Walk, cache *Cache, pool *Pool, cc *CancelCheck, m *Metrics) bool {
	if pool != nil {
		return nlccPar(s, omega, t, w, cache, pool, cc, m)
	}
	q0 := w.Seq[0]
	changed := false
	s.ForEachActiveVertex(func(v graph.VertexID) {
		cc.Tick()
		if !omega.has(v, q0) {
			return
		}
		// Cache keys live in original-id space: recycled verdicts must be
		// shareable across levels and prototypes regardless of whether a
		// given search ran compacted.
		if cache != nil && cache.Satisfied(w.ID, s.origID(v)) {
			m.CacheHits++
			return
		}
		m.TokensInitiated++
		if walkFrom(s, omega, t, w, v, cc, m) {
			if cache != nil {
				cache.Record(w.ID, s.origID(v))
			}
			return
		}
		omega.remove(v, q0)
		changed = true
		if !omega.any(v) {
			s.DeactivateVertex(v)
		}
	})
	return changed
}

// walkFrom runs the token walk for w starting at v (which plays w.Seq[0]).
// The token carries the partial assignment of walk template vertices to
// graph vertices; revisited template vertices must re-use their assignment
// and distinct template vertices must map to distinct graph vertices, which
// is what makes CC closure and PC distinctness checks fall out naturally.
func walkFrom(s *State, omega candidateSet, t *pattern.Template, w *constraint.Walk, v graph.VertexID, cc *CancelCheck, m *Metrics) bool {
	assign := make(map[int]graph.VertexID, len(w.Seq))
	owner := make(map[graph.VertexID]int, len(w.Seq))
	assign[w.Seq[0]] = v
	owner[v] = w.Seq[0]

	var step func(r int, cur graph.VertexID) bool
	step = func(r int, cur graph.VertexID) bool {
		cc.Tick()
		if r == len(w.Seq) {
			return true
		}
		tq := w.Seq[r]
		hopOK := func(next graph.VertexID) bool {
			return templateEdgeLabelOK(s, t, w.Seq[r-1], tq, cur, next)
		}
		if gv, ok := assign[tq]; ok {
			// Revisit: the token must travel back over an active edge with
			// an acceptable edge label.
			m.NLCCMessages++
			if s.EdgeActiveBetween(cur, gv) && s.VertexActive(gv) && hopOK(gv) {
				return step(r+1, gv)
			}
			return false
		}
		found := false
		s.ForEachActiveNeighbor(cur, func(_ int, u graph.VertexID) {
			if found {
				return
			}
			if !omega.has(u, tq) || !hopOK(u) {
				return
			}
			if _, taken := owner[u]; taken {
				return
			}
			m.NLCCMessages++
			assign[tq] = u
			owner[u] = tq
			if step(r+1, u) {
				found = true
				return
			}
			delete(assign, tq)
			delete(owner, u)
		})
		return found
	}
	return step(1, v)
}
