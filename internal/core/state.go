// Package core implements the approximate-matching pipeline of the paper
// (Alg. 1–5) as a sequential reference engine: maximum-candidate-set
// generation, local constraint checking (LCC), non-local constraint checking
// (NLCC) by token walks with work recycling, bottom-up iterative
// search-space reduction via the containment rule, exact final verification
// (100% precision / 100% recall), match enumeration and counting, and the
// top-down exploratory search mode.
//
// The distributed engine in internal/dist reimplements the same algorithms
// on a vertex-centric message-passing runtime and is differentially tested
// against this package.
package core

import (
	"approxmatch/internal/bitvec"
	"approxmatch/internal/graph"
	"approxmatch/internal/pattern"
)

// State is the active subgraph the search currently operates on: an active
// bit per vertex and an active bit per directed adjacency slot of the
// background graph (the ε(v) edge-state maps of Alg. 3, stored flat).
type State struct {
	g     *graph.Graph
	verts *bitvec.Vector
	edges *bitvec.Vector // indexed by directed adjacency slot
	// view, when non-nil, records that g is a compacted view of a larger
	// graph (see CompactState): vertex and slot ids are view-local and must
	// be translated through the view before leaving the search.
	view *graph.View
}

// NewFullState returns a state with every vertex and edge active.
func NewFullState(g *graph.Graph) *State {
	s := &State{
		g:     g,
		verts: bitvec.New(g.NumVertices()),
		edges: bitvec.New(g.NumDirectedEdges()),
	}
	s.verts.SetAll()
	s.edges.SetAll()
	return s
}

// seedState returns the initial pipeline state: the full graph when
// restrict is nil, otherwise the subgraph induced by the mask — mask
// vertices plus exactly the directed slots whose both endpoints carry the
// mask. The incremental maintenance path (incremental.go) uses the latter
// to confine a run to the dirty region.
func seedState(g *graph.Graph, restrict *bitvec.Vector) *State {
	if restrict == nil {
		return NewFullState(g)
	}
	s := NewEmptyState(g)
	s.verts.Or(restrict)
	s.ForEachActiveVertex(func(v graph.VertexID) {
		base := int(g.AdjOffset(v))
		for i, w := range g.Neighbors(v) {
			if s.verts.Get(int(w)) {
				s.edges.Set(base + i)
			}
		}
	})
	return s
}

// NewEmptyState returns a state with everything inactive.
func NewEmptyState(g *graph.Graph) *State {
	return &State{
		g:     g,
		verts: bitvec.New(g.NumVertices()),
		edges: bitvec.New(g.NumDirectedEdges()),
	}
}

// Clone returns an independent copy of the state. The view, when present,
// is immutable and shared.
func (s *State) Clone() *State {
	return &State{g: s.g, verts: s.verts.Clone(), edges: s.edges.Clone(), view: s.view}
}

// Graph returns the underlying background graph.
func (s *State) Graph() *graph.Graph { return s.g }

// View returns the compacted view this state runs on, or nil when the state
// addresses the original graph directly.
func (s *State) View() *graph.View { return s.view }

// origID translates a (possibly view-local) vertex id to the original
// graph's id space — the id space of the work-recycling cache and of every
// emitted result.
func (s *State) origID(v graph.VertexID) graph.VertexID {
	if s.view == nil {
		return v
	}
	return s.view.OrigVertex(v)
}

// VertexActive reports whether v is active.
func (s *State) VertexActive(v graph.VertexID) bool { return s.verts.Get(int(v)) }

// DeactivateVertex removes v and all its incident directed edge slots —
// both v's own out-slots and the reverse slots its neighbors hold toward v,
// keeping the slot vector symmetric. (Out-slots alone would be enough for
// correctness, because every traversal re-checks the far endpoint's vertex
// bit, but dangling reverse slots inflate NumActiveDirectedEdges and the
// StateBytes/level-stats accounting built on it.)
func (s *State) DeactivateVertex(v graph.VertexID) {
	s.verts.Clear(int(v))
	ns := s.g.Neighbors(v)
	base := int(s.g.AdjOffset(v))
	for i, u := range ns {
		s.edges.Clear(base + i)
		if j := s.g.EdgeIndex(u, v); j >= 0 {
			s.edges.Clear(s.slot(u, j))
		}
	}
}

// slot returns the directed adjacency slot index for u's i-th neighbor.
func (s *State) slot(u graph.VertexID, i int) int {
	return int(s.g.AdjOffset(u)) + i
}

// EdgeActiveAt reports whether the directed slot (u, i-th neighbor) is
// active. An edge is usable only when the slot, the vertex and the neighbor
// are all active; the traversal helpers below enforce that.
func (s *State) EdgeActiveAt(u graph.VertexID, i int) bool {
	return s.edges.Get(s.slot(u, i))
}

// DeactivateEdgeAt removes the undirected edge between u and its i-th
// neighbor (both directions).
func (s *State) DeactivateEdgeAt(u graph.VertexID, i int) {
	v := s.g.Neighbors(u)[i]
	s.edges.Clear(s.slot(u, i))
	if j := s.g.EdgeIndex(v, u); j >= 0 {
		s.edges.Clear(s.slot(v, j))
	}
}

// EdgeActiveBetween reports whether the undirected edge (u,v) is active
// (checks the u-side slot).
func (s *State) EdgeActiveBetween(u, v graph.VertexID) bool {
	i := s.g.EdgeIndex(u, v)
	return i >= 0 && s.edges.Get(s.slot(u, i))
}

// ForEachActiveVertex calls fn for every active vertex in increasing order.
func (s *State) ForEachActiveVertex(fn func(v graph.VertexID)) {
	s.verts.ForEach(func(i int) { fn(graph.VertexID(i)) })
}

// forEachActiveVertexIn calls fn for every active vertex in [lo, hi), in
// increasing order — the partitioned scan the superstep kernels run per
// worker.
func (s *State) forEachActiveVertexIn(lo, hi int, fn func(v graph.VertexID)) {
	s.verts.ForEachInRange(lo, hi, func(i int) { fn(graph.VertexID(i)) })
}

// ForEachActiveNeighbor calls fn(i, w) for every active neighbor w of u
// reachable over an active edge slot; i is the neighbor's position in u's
// adjacency. The active-slot range is scanned word-at-a-time, so heavily
// pruned adjacencies cost O(words) rather than O(degree).
func (s *State) ForEachActiveNeighbor(u graph.VertexID, fn func(i int, w graph.VertexID)) {
	ns := s.g.Neighbors(u)
	base := int(s.g.AdjOffset(u))
	s.edges.ForEachInRange(base, base+len(ns), func(slot int) {
		i := slot - base
		if w := ns[i]; s.verts.Get(int(w)) {
			fn(i, w)
		}
	})
}

// ActiveDegree returns the number of active incident edges of u with active
// far endpoints.
func (s *State) ActiveDegree(u graph.VertexID) int {
	d := 0
	s.ForEachActiveNeighbor(u, func(int, graph.VertexID) { d++ })
	return d
}

// NumActiveVertices returns the number of active vertices.
func (s *State) NumActiveVertices() int { return s.verts.Count() }

// NumActiveDirectedEdges returns the number of active directed edge slots.
func (s *State) NumActiveDirectedEdges() int { return s.edges.Count() }

// VertexBits exposes the active-vertex bit vector. Callers constructing a
// state from scratch may mutate it; shared states must be treated as
// read-only.
func (s *State) VertexBits() *bitvec.Vector { return s.verts }

// EdgeBits exposes the active-edge bit vector, under the same contract as
// VertexBits.
func (s *State) EdgeBits() *bitvec.Vector { return s.edges }

// StateBytes returns the memory footprint of the state's bit vectors, for
// the Fig. 11 memory accounting.
func (s *State) StateBytes() int64 { return s.verts.Bytes() + s.edges.Bytes() }

// candidateSet is the per-vertex template-vertex candidate bitmask ω(v)
// (Alg. 3). Templates have at most 64 vertices, comfortably above any
// practical search template.
type candidateSet []uint64

// initCandidates builds ω for a prototype over the active vertices of s:
// bit q of ω(v) is set when template vertex q's label accepts v's label
// (wildcard template vertices are candidates everywhere).
func initCandidates(s *State, t *pattern.Template) candidateSet {
	omega := make(candidateSet, s.g.NumVertices())
	labelBits := make(map[pattern.Label]uint64)
	var wildBits uint64
	for q := 0; q < t.NumVertices(); q++ {
		if t.Label(q) == pattern.Wildcard {
			wildBits |= 1 << uint(q)
		} else {
			labelBits[t.Label(q)] |= 1 << uint(q)
		}
	}
	s.ForEachActiveVertex(func(v graph.VertexID) {
		omega[v] = labelBits[s.g.Label(v)] | wildBits
	})
	return omega
}

func (o candidateSet) has(v graph.VertexID, q int) bool {
	return o[v]&(1<<uint(q)) != 0
}

func (o candidateSet) remove(v graph.VertexID, q int) {
	o[v] &^= 1 << uint(q)
}

func (o candidateSet) any(v graph.VertexID) bool { return o[v] != 0 }

// anyOf reports whether ω(v) intersects the template-vertex mask.
func (o candidateSet) anyOf(v graph.VertexID, mask uint64) bool {
	return o[v]&mask != 0
}
