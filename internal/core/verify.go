package core

import (
	"approxmatch/internal/bitvec"
	"approxmatch/internal/graph"
	"approxmatch/internal/pattern"
)

// kernelOpts toggles the redundancy-elimination features of the backtracking
// kernels. The zero value enables everything; Config.NoSymmetry/NoGuards are
// the public ablation knobs that map onto it. Both features are
// correctness-neutral: symmetry breaking explores one representative per
// match orbit and restores the full count/enumeration by the orbit size, and
// guards only skip subtrees proven matchless, so Rho, solution subgraphs and
// counts are identical with any combination of knobs.
type kernelOpts struct {
	noSymmetry bool
	noGuards   bool
}

// noDep is the minDep value of a subtree with no dependency on any earlier
// assignment (compares greater than every order position).
const noDep = int(^uint(0) >> 1)

// restrCheck is one symmetry-breaking restriction anchored at the
// later-assigned endpoint: when assigning graph vertex u at that position,
// u must be less (uLess) or greater than the image of the earlier-assigned
// template vertex `other`.
type restrCheck struct {
	other int
	uLess bool
}

// guardStore holds GuP-style failure guards: bit q,u set means "a search
// subtree rooted at assigning graph vertex u to template vertex q was fully
// explored, found no match, and depended on no earlier assignment" — under
// the store's fixed matching order and the monotone shrinking of state and
// candidate sets, re-entering that subtree can be rejected in O(1). Tables
// are allocated lazily per template vertex and charged against the run's
// byte budget; on budget refusal the store stops recording (never wrong,
// only less pruning). A nil *guardStore is valid and never matches.
type guardStore struct {
	cc       *CancelCheck
	nWords   int
	tables   [][]uint64
	disabled bool
}

func newGuardStore(nTemplate, nGraph int, cc *CancelCheck) *guardStore {
	return &guardStore{cc: cc, nWords: (nGraph + 63) / 64, tables: make([][]uint64, nTemplate)}
}

func (gs *guardStore) lookup(q int, u graph.VertexID) bool {
	if gs == nil {
		return false
	}
	t := gs.tables[q]
	return t != nil && t[u>>6]&(1<<(u&63)) != 0
}

func (gs *guardStore) set(q int, u graph.VertexID, m *Metrics) {
	if gs == nil || gs.disabled {
		return
	}
	t := gs.tables[q]
	if t == nil {
		if !gs.cc.TryChargeBytes(int64(8 * gs.nWords)) {
			gs.disabled = true
			return
		}
		t = make([]uint64, gs.nWords)
		gs.tables[q] = t
	}
	t[u>>6] |= 1 << (u & 63)
	m.GuardsSet++
}

// enumerator performs backtracking match search restricted to the active
// state and candidate sets. It powers the final verification phase (seeded
// first-match probes) and full match enumeration/counting. Matching walks
// the template in a connected order, drawing candidates from active
// adjacency, so it is exactly the token-carrying TDS search of §4 in
// sequential form.
type enumerator struct {
	s     *State
	omega candidateSet
	t     *pattern.Template
	cc    *CancelCheck
	m     *Metrics

	order    []int            // template vertices in assignment order
	assigned []graph.VertexID // template vertex -> graph vertex
	isSet    []bool
	depth    []int // template vertex -> its position in order, when set

	// Symmetry breaking (GraphPi restriction sets): restrs[idx] holds the
	// order constraints to check when assigning order[idx]; auts is the full
	// automorphism group for orbit expansion, aut its size (1 = disabled).
	restrs [][]restrCheck
	auts   [][]int
	aut    int64

	// Failure-guard pruning (GuP): guards is consulted per candidate and
	// populated after fully-explored matchless subtrees whose pruning
	// depended on no assignment earlier than the subtree root. found and
	// minDep track the current subtree's outcome: whether any match
	// completed inside it, and the smallest order position of an earlier
	// assignment its pruning read (candidate sourcing, injectivity
	// conflicts, failed edge/restriction checks).
	guards *guardStore
	exp    *int64 // node-expansion counter (a Metrics field)
	found  bool
	minDep int
}

func newEnumerator(s *State, omega candidateSet, t *pattern.Template, cc *CancelCheck, m *Metrics) *enumerator {
	return &enumerator{
		s:        s,
		omega:    omega,
		t:        t,
		cc:       cc,
		m:        m,
		assigned: make([]graph.VertexID, t.NumVertices()),
		isSet:    make([]bool, t.NumVertices()),
		depth:    make([]int, t.NumVertices()),
		aut:      1,
		exp:      &m.EnumExpansions,
		minDep:   noDep,
	}
}

// dep records that the current subtree's outcome depends on the assignment
// at order position d.
func (e *enumerator) dep(d int) {
	if d < e.minDep {
		e.minDep = d
	}
}

// applySymmetry installs the template's restriction set against the already
// chosen order. Each restriction A<B is anchored at whichever endpoint the
// order assigns later, so it is checked the moment both images exist.
func (e *enumerator) applySymmetry() {
	auts := pattern.Automorphisms(e.t)
	if len(auts) <= 1 {
		return
	}
	e.auts = auts
	e.aut = int64(len(auts))
	rs := pattern.RestrictionsFor(e.t.NumVertices(), auts)
	pos := make([]int, e.t.NumVertices())
	for i, q := range e.order {
		pos[q] = i
	}
	e.restrs = make([][]restrCheck, len(e.order))
	for _, r := range rs {
		if pos[r.A] > pos[r.B] {
			e.restrs[pos[r.A]] = append(e.restrs[pos[r.A]], restrCheck{other: r.B, uLess: true})
		} else {
			e.restrs[pos[r.B]] = append(e.restrs[pos[r.B]], restrCheck{other: r.A, uLess: false})
		}
	}
}

// orderFrom returns a template vertex order beginning with seeds in which
// every later vertex is adjacent to an earlier one.
func orderFrom(t *pattern.Template, seeds []int) []int {
	n := t.NumVertices()
	order := make([]int, 0, n)
	in := make([]bool, n)
	for _, q := range seeds {
		order = append(order, q)
		in[q] = true
	}
	for len(order) < n {
		bestQ, bestScore := -1, -1
		for q := 0; q < n; q++ {
			if in[q] {
				continue
			}
			score := 0
			for _, r := range t.Neighbors(q) {
				if in[r] {
					score++
				}
			}
			if score > bestScore {
				bestQ, bestScore = q, score
			}
		}
		order = append(order, bestQ)
		in[bestQ] = true
	}
	return order
}

// run explores all completions of the current partial assignment; fn
// receives each complete match (slice reused) and returns false to stop.
// run returns false when fn stopped the search.
func (e *enumerator) run(idx int, fn func([]graph.VertexID) bool) bool {
	if idx == len(e.order) {
		e.found = true
		return fn(e.assigned)
	}
	q := e.order[idx]
	// Pick an assigned template neighbor to source candidates from. The
	// candidate stream reads that neighbor's image, so the subtree depends
	// on its position.
	var src graph.VertexID
	hasSrc := false
	for _, r := range e.t.Neighbors(q) {
		if e.isSet[r] {
			src = e.assigned[r]
			hasSrc = true
			e.dep(e.depth[r])
			break
		}
	}
	try := func(u graph.VertexID) bool {
		e.cc.Tick()
		if !e.omega.has(u, q) {
			return true
		}
		if e.guards.lookup(q, u) {
			e.m.GuardHits++
			return true
		}
		for _, rc := range e.restrs[idx] {
			o := e.assigned[rc.other]
			if rc.uLess == (u >= o) {
				e.dep(e.depth[rc.other])
				return true
			}
		}
		// Injectivity: u must not already be the image of another template
		// vertex (≤|T| assigned slots, so a linear scan beats a map).
		for r, set := range e.isSet {
			if set && e.assigned[r] == u {
				e.dep(e.depth[r])
				return true
			}
		}
		e.m.VerifyMessages++
		// All template edges from q to already-placed vertices must be
		// active graph edges with acceptable edge labels.
		for _, r := range e.t.Neighbors(q) {
			if !e.isSet[r] {
				continue
			}
			if !e.s.EdgeActiveBetween(u, e.assigned[r]) || !templateEdgeLabelOK(e.s, e.t, q, r, u, e.assigned[r]) {
				e.dep(e.depth[r])
				return true
			}
		}
		e.assigned[q] = u
		e.isSet[q] = true
		e.depth[q] = idx
		*e.exp++
		savedFound, savedMin := e.found, e.minDep
		e.found, e.minDep = false, noDep
		ok := e.run(idx+1, fn)
		subFound, subMin := e.found, e.minDep
		e.isSet[q] = false
		// Guardable iff the subtree was fully explored, matchless, and its
		// pruning depended on nothing assigned before this position.
		if ok && !subFound && subMin >= idx {
			e.guards.set(q, u, e.m)
		}
		e.found = savedFound || subFound
		e.minDep = savedMin
		e.dep(subMin)
		return ok
	}
	if e.restrs == nil {
		// No symmetry breaking for this template/order: keep restrs
		// indexable without a nil check per candidate.
		e.restrs = make([][]restrCheck, len(e.order))
	}
	if hasSrc {
		cont := true
		e.s.ForEachActiveNeighbor(src, func(_ int, u graph.VertexID) {
			if cont {
				cont = try(u)
			}
		})
		return cont
	}
	// No placed neighbor (only possible for the very first vertex): scan
	// all active vertices.
	cont := true
	e.s.ForEachActiveVertex(func(u graph.VertexID) {
		if cont {
			cont = try(u)
		}
	})
	return cont
}

// seed pre-assigns template vertex q to graph vertex u at order position
// pos; it returns false if the seed is inconsistent.
func (e *enumerator) seed(q int, u graph.VertexID, pos int) bool {
	if !e.omega.has(u, q) || !e.s.VertexActive(u) {
		return false
	}
	for r, set := range e.isSet {
		if set && r != q && e.assigned[r] == u {
			return false
		}
	}
	for _, r := range e.t.Neighbors(q) {
		if !e.isSet[r] {
			continue
		}
		if !e.s.EdgeActiveBetween(u, e.assigned[r]) {
			return false
		}
		if !templateEdgeLabelOK(e.s, e.t, q, r, u, e.assigned[r]) {
			return false
		}
	}
	e.assigned[q] = u
	e.isSet[q] = true
	e.depth[q] = pos
	return true
}

// templateEdgeLabelOK checks that the graph edge realizing template edge
// (q,r) carries an acceptable edge label.
func templateEdgeLabelOK(s *State, t *pattern.Template, q, r int, gu, gv graph.VertexID) bool {
	tl, ok := t.EdgeLabelBetween(q, r)
	if !ok {
		return false
	}
	if tl == pattern.Wildcard {
		return true
	}
	gl, ok := s.Graph().EdgeLabelBetween(gu, gv)
	return ok && gl == tl
}

// findSeeded searches for one match with the given (template vertex → graph
// vertex) seeds; it returns the match or nil. A non-nil guards store must
// have been built for the same matching order orderFrom(t, seedQ) and may
// only be reused while state and candidates shrink monotonically; guards
// never change which first witness is found — they skip subtrees proven to
// hold no match at all.
func findSeeded(s *State, omega candidateSet, t *pattern.Template, cc *CancelCheck, m *Metrics, guards *guardStore, seedQ []int, seedV []graph.VertexID) []graph.VertexID {
	e := newEnumerator(s, omega, t, cc, m)
	e.exp = &m.VerifyExpansions
	e.guards = guards
	for i, q := range seedQ {
		if !e.seed(q, seedV[i], i) {
			return nil
		}
	}
	e.order = orderFrom(t, seedQ)
	var found []graph.VertexID
	e.run(len(seedQ), func(match []graph.VertexID) bool {
		found = append([]graph.VertexID(nil), match...)
		return false
	})
	return found
}

// verifyExact is the final verification phase of SEARCH_PROTOTYPE: it
// reduces state and candidates to exactly the vertices and edges
// participating in at least one match of t (Def. 2), guaranteeing 100%
// precision on top of the recall-safe pruning phases. It returns the
// participating directed-edge bit vector.
//
// verifyExact keeps one-witness semantics: no symmetry breaking (a seeded
// probe must be free to find ANY witness through its seed), only failure
// guards, which are shared across the vertex phase's probes per seed
// template vertex (fixed matching order per q; state/omega only shrink).
func verifyExact(s *State, omega candidateSet, t *pattern.Template, cc *CancelCheck, m *Metrics, opts kernelOpts) *bitvec.Vector {
	g := s.Graph()
	vmark := make(candidateSet, g.NumVertices())
	emark := bitvec.New(g.NumDirectedEdges())

	var stores []*guardStore
	if !opts.noGuards {
		stores = make([]*guardStore, t.NumVertices())
		for q := range stores {
			stores[q] = newGuardStore(t.NumVertices(), g.NumVertices(), cc)
		}
	}

	markMatch := func(match []graph.VertexID) {
		for tq, gv := range match {
			vmark[gv] |= 1 << uint(tq)
		}
		for _, e := range t.Edges() {
			u, v := match[e.I], match[e.J]
			if i := g.EdgeIndex(u, v); i >= 0 {
				emark.Set(int(g.AdjOffset(u)) + i)
			}
			if i := g.EdgeIndex(v, u); i >= 0 {
				emark.Set(int(g.AdjOffset(v)) + i)
			}
		}
	}

	// Vertex phase: certify or refute every (vertex, candidate) pair.
	s.ForEachActiveVertex(func(v graph.VertexID) {
		cc.Tick()
		for q := 0; q < t.NumVertices(); q++ {
			if !omega.has(v, q) || vmark.has(v, q) {
				continue
			}
			m.VerifySearches++
			var gs *guardStore
			if stores != nil {
				gs = stores[q]
			}
			if match := findSeeded(s, omega, t, cc, m, gs, []int{q}, []graph.VertexID{v}); match != nil {
				markMatch(match)
			} else {
				omega.remove(v, q)
			}
		}
		if !omega.any(v) {
			s.DeactivateVertex(v)
		}
	})

	// Edge phase: certify or refute every remaining active edge. Probes are
	// 2-seeded with per-orientation matching orders, so no guard store
	// applies here.
	s.ForEachActiveVertex(func(v graph.VertexID) {
		cc.Tick()
		ns := g.Neighbors(v)
		base := int(g.AdjOffset(v))
		for i, u := range ns {
			if !s.edges.Get(base+i) || !s.verts.Get(int(u)) || v > u {
				continue
			}
			if emark.Get(base + i) {
				continue
			}
			participates := false
			for _, te := range t.Edges() {
				for _, ori := range [2][2]int{{te.I, te.J}, {te.J, te.I}} {
					if !vmark.has(v, ori[0]) || !vmark.has(u, ori[1]) {
						continue
					}
					m.VerifySearches++
					if match := findSeeded(s, omega, t, cc, m, nil, []int{ori[0], ori[1]}, []graph.VertexID{v, u}); match != nil {
						markMatch(match)
						participates = true
					}
					if participates {
						break
					}
				}
				if participates {
					break
				}
			}
			if !participates {
				s.DeactivateEdgeAt(v, i)
			}
		}
	})
	return emark
}

// countMatches enumerates every match of t within the active state and
// returns the total number of distinct vertex mappings. With symmetry
// breaking enabled it explores one representative per automorphism orbit
// and multiplies by the orbit size — the result is identical either way.
func countMatches(s *State, omega candidateSet, t *pattern.Template, cc *CancelCheck, m *Metrics, opts kernelOpts) int64 {
	e := newEnumerator(s, omega, t, cc, m)
	e.order = orderFrom(t, []int{rootVertex(t)})
	if !opts.noSymmetry {
		e.applySymmetry()
	}
	if !opts.noGuards {
		e.guards = newGuardStore(t.NumVertices(), s.Graph().NumVertices(), cc)
	}
	var count int64
	e.run(0, func([]graph.VertexID) bool {
		count++
		return true
	})
	return count * e.aut
}

// enumerateMatches calls fn for every match; fn returns false to stop. The
// match slice is reused between calls. With symmetry breaking the
// enumeration order differs from the naive kernel's, but the multiset of
// mappings is identical: each restricted representative is expanded through
// the full automorphism group.
func enumerateMatches(s *State, omega candidateSet, t *pattern.Template, cc *CancelCheck, m *Metrics, opts kernelOpts, fn func([]graph.VertexID) bool) {
	e := newEnumerator(s, omega, t, cc, m)
	e.order = orderFrom(t, []int{rootVertex(t)})
	if !opts.noSymmetry {
		e.applySymmetry()
	}
	if !opts.noGuards {
		e.guards = newGuardStore(t.NumVertices(), s.Graph().NumVertices(), cc)
	}
	if e.aut <= 1 {
		e.run(0, fn)
		return
	}
	buf := make([]graph.VertexID, t.NumVertices())
	e.run(0, func(match []graph.VertexID) bool {
		for _, g := range e.auts {
			for q := range buf {
				buf[q] = match[g[q]]
			}
			if !fn(buf) {
				return false
			}
		}
		return true
	})
}

// rootVertex picks the enumeration root: highest degree wins.
func rootVertex(t *pattern.Template) int {
	best := 0
	for q := 1; q < t.NumVertices(); q++ {
		if t.Degree(q) > t.Degree(best) {
			best = q
		}
	}
	return best
}
