package core

import (
	"approxmatch/internal/bitvec"
	"approxmatch/internal/graph"
	"approxmatch/internal/pattern"
)

// enumerator performs backtracking match search restricted to the active
// state and candidate sets. It powers the final verification phase (seeded
// first-match probes) and full match enumeration/counting. Matching walks
// the template in a connected order, drawing candidates from active
// adjacency, so it is exactly the token-carrying TDS search of §4 in
// sequential form.
type enumerator struct {
	s     *State
	omega candidateSet
	t     *pattern.Template
	cc    *CancelCheck
	m     *Metrics

	order    []int            // template vertices in assignment order
	assigned []graph.VertexID // template vertex -> graph vertex
	isSet    []bool
	owner    map[graph.VertexID]int
}

func newEnumerator(s *State, omega candidateSet, t *pattern.Template, cc *CancelCheck, m *Metrics) *enumerator {
	return &enumerator{
		s:        s,
		omega:    omega,
		t:        t,
		cc:       cc,
		m:        m,
		assigned: make([]graph.VertexID, t.NumVertices()),
		isSet:    make([]bool, t.NumVertices()),
		owner:    make(map[graph.VertexID]int, t.NumVertices()),
	}
}

// orderFrom returns a template vertex order beginning with seeds in which
// every later vertex is adjacent to an earlier one.
func orderFrom(t *pattern.Template, seeds []int) []int {
	n := t.NumVertices()
	order := make([]int, 0, n)
	in := make([]bool, n)
	for _, q := range seeds {
		order = append(order, q)
		in[q] = true
	}
	for len(order) < n {
		bestQ, bestScore := -1, -1
		for q := 0; q < n; q++ {
			if in[q] {
				continue
			}
			score := 0
			for _, r := range t.Neighbors(q) {
				if in[r] {
					score++
				}
			}
			if score > bestScore {
				bestQ, bestScore = q, score
			}
		}
		order = append(order, bestQ)
		in[bestQ] = true
	}
	return order
}

// run explores all completions of the current partial assignment; fn
// receives each complete match (slice reused) and returns false to stop.
// run returns false when fn stopped the search.
func (e *enumerator) run(idx int, fn func([]graph.VertexID) bool) bool {
	if idx == len(e.order) {
		return fn(e.assigned)
	}
	q := e.order[idx]
	// Pick an assigned template neighbor to source candidates from.
	var src graph.VertexID
	hasSrc := false
	for _, r := range e.t.Neighbors(q) {
		if e.isSet[r] {
			src = e.assigned[r]
			hasSrc = true
			break
		}
	}
	try := func(u graph.VertexID) bool {
		e.cc.Tick()
		if !e.omega.has(u, q) {
			return true
		}
		if _, taken := e.owner[u]; taken {
			return true
		}
		e.m.VerifyMessages++
		// All template edges from q to already-placed vertices must be
		// active graph edges with acceptable edge labels.
		for _, r := range e.t.Neighbors(q) {
			if !e.isSet[r] {
				continue
			}
			if !e.s.EdgeActiveBetween(u, e.assigned[r]) {
				return true
			}
			if !templateEdgeLabelOK(e.s, e.t, q, r, u, e.assigned[r]) {
				return true
			}
		}
		e.assigned[q] = u
		e.isSet[q] = true
		e.owner[u] = q
		ok := e.run(idx+1, fn)
		e.isSet[q] = false
		delete(e.owner, u)
		return ok
	}
	if hasSrc {
		cont := true
		e.s.ForEachActiveNeighbor(src, func(_ int, u graph.VertexID) {
			if cont {
				cont = try(u)
			}
		})
		return cont
	}
	// No placed neighbor (only possible for the very first vertex): scan
	// all active vertices.
	cont := true
	e.s.ForEachActiveVertex(func(u graph.VertexID) {
		if cont {
			cont = try(u)
		}
	})
	return cont
}

// seed pre-assigns template vertex q to graph vertex u; it returns false if
// the seed is inconsistent.
func (e *enumerator) seed(q int, u graph.VertexID) bool {
	if !e.omega.has(u, q) || !e.s.VertexActive(u) {
		return false
	}
	if prev, taken := e.owner[u]; taken && prev != q {
		return false
	}
	for _, r := range e.t.Neighbors(q) {
		if !e.isSet[r] {
			continue
		}
		if !e.s.EdgeActiveBetween(u, e.assigned[r]) {
			return false
		}
		if !templateEdgeLabelOK(e.s, e.t, q, r, u, e.assigned[r]) {
			return false
		}
	}
	e.assigned[q] = u
	e.isSet[q] = true
	e.owner[u] = q
	return true
}

// templateEdgeLabelOK checks that the graph edge realizing template edge
// (q,r) carries an acceptable edge label.
func templateEdgeLabelOK(s *State, t *pattern.Template, q, r int, gu, gv graph.VertexID) bool {
	tl, ok := t.EdgeLabelBetween(q, r)
	if !ok {
		return false
	}
	if tl == pattern.Wildcard {
		return true
	}
	gl, ok := s.Graph().EdgeLabelBetween(gu, gv)
	return ok && gl == tl
}

// findSeeded searches for one match with the given (template vertex → graph
// vertex) seeds; it returns the match or nil.
func findSeeded(s *State, omega candidateSet, t *pattern.Template, cc *CancelCheck, m *Metrics, seedQ []int, seedV []graph.VertexID) []graph.VertexID {
	e := newEnumerator(s, omega, t, cc, m)
	for i, q := range seedQ {
		if !e.seed(q, seedV[i]) {
			return nil
		}
	}
	e.order = orderFrom(t, seedQ)
	var found []graph.VertexID
	e.run(len(seedQ), func(match []graph.VertexID) bool {
		found = append([]graph.VertexID(nil), match...)
		return false
	})
	return found
}

// verifyExact is the final verification phase of SEARCH_PROTOTYPE: it
// reduces state and candidates to exactly the vertices and edges
// participating in at least one match of t (Def. 2), guaranteeing 100%
// precision on top of the recall-safe pruning phases. It returns the
// participating directed-edge bit vector.
func verifyExact(s *State, omega candidateSet, t *pattern.Template, cc *CancelCheck, m *Metrics) *bitvec.Vector {
	g := s.Graph()
	vmark := make(candidateSet, g.NumVertices())
	emark := bitvec.New(g.NumDirectedEdges())

	markMatch := func(match []graph.VertexID) {
		for tq, gv := range match {
			vmark[gv] |= 1 << uint(tq)
		}
		for _, e := range t.Edges() {
			u, v := match[e.I], match[e.J]
			if i := g.EdgeIndex(u, v); i >= 0 {
				emark.Set(int(g.AdjOffset(u)) + i)
			}
			if i := g.EdgeIndex(v, u); i >= 0 {
				emark.Set(int(g.AdjOffset(v)) + i)
			}
		}
	}

	// Vertex phase: certify or refute every (vertex, candidate) pair.
	s.ForEachActiveVertex(func(v graph.VertexID) {
		cc.Tick()
		for q := 0; q < t.NumVertices(); q++ {
			if !omega.has(v, q) || vmark.has(v, q) {
				continue
			}
			m.VerifySearches++
			if match := findSeeded(s, omega, t, cc, m, []int{q}, []graph.VertexID{v}); match != nil {
				markMatch(match)
			} else {
				omega.remove(v, q)
			}
		}
		if !omega.any(v) {
			s.DeactivateVertex(v)
		}
	})

	// Edge phase: certify or refute every remaining active edge.
	s.ForEachActiveVertex(func(v graph.VertexID) {
		cc.Tick()
		ns := g.Neighbors(v)
		base := int(g.AdjOffset(v))
		for i, u := range ns {
			if !s.edges.Get(base+i) || !s.verts.Get(int(u)) || v > u {
				continue
			}
			if emark.Get(base + i) {
				continue
			}
			participates := false
			for _, te := range t.Edges() {
				for _, ori := range [2][2]int{{te.I, te.J}, {te.J, te.I}} {
					if !vmark.has(v, ori[0]) || !vmark.has(u, ori[1]) {
						continue
					}
					m.VerifySearches++
					if match := findSeeded(s, omega, t, cc, m, []int{ori[0], ori[1]}, []graph.VertexID{v, u}); match != nil {
						markMatch(match)
						participates = true
					}
					if participates {
						break
					}
				}
				if participates {
					break
				}
			}
			if !participates {
				s.DeactivateEdgeAt(v, i)
			}
		}
	})
	return emark
}

// countMatches enumerates every match of t within the active state and
// returns the total number of distinct vertex mappings.
func countMatches(s *State, omega candidateSet, t *pattern.Template, cc *CancelCheck, m *Metrics) int64 {
	e := newEnumerator(s, omega, t, cc, m)
	e.order = orderFrom(t, []int{rootVertex(t)})
	var count int64
	e.run(0, func([]graph.VertexID) bool {
		count++
		return true
	})
	return count
}

// enumerateMatches calls fn for every match; fn returns false to stop. The
// match slice is reused between calls.
func enumerateMatches(s *State, omega candidateSet, t *pattern.Template, cc *CancelCheck, m *Metrics, fn func([]graph.VertexID) bool) {
	e := newEnumerator(s, omega, t, cc, m)
	e.order = orderFrom(t, []int{rootVertex(t)})
	e.run(0, fn)
}

// rootVertex picks the enumeration root: highest degree wins.
func rootVertex(t *pattern.Template) int {
	best := 0
	for q := 1; q < t.NumVertices(); q++ {
		if t.Degree(q) > t.Degree(best) {
			best = q
		}
	}
	return best
}
