package core

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"approxmatch/internal/graph"
	"approxmatch/internal/pattern"
	"approxmatch/internal/refmatch"
)

func featureFixture(t *testing.T) (*graph.Graph, *Result) {
	t.Helper()
	b := graph.NewBuilder(0)
	a0 := b.AddVertex(1)
	a1 := b.AddVertex(2)
	a2 := b.AddVertex(3)
	b.AddEdge(a0, a1)
	b.AddEdge(a1, a2)
	b.AddEdge(a0, a2)
	// A second label-2 vertex adjacent to both others: participates in a
	// second triangle.
	a3 := b.AddVertex(2)
	b.AddEdge(a0, a3)
	b.AddEdge(a2, a3)
	g := b.Build()
	tp := pattern.MustNew([]pattern.Label{1, 2, 3},
		[]pattern.Edge{{I: 0, J: 1}, {I: 1, J: 2}, {I: 0, J: 2}})
	res, err := Run(g, tp, DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	return g, res
}

func TestParticipationCounts(t *testing.T) {
	g, res := featureFixture(t)
	counts := res.ParticipationCounts(0) // base triangle
	// Vertices 0 and 2 are in both triangles; 1 and 3 in one each.
	want := []int64{2, 1, 2, 1}
	for v, c := range want {
		if counts[v] != c {
			t.Errorf("vertex %d participation = %d, want %d", v, counts[v], c)
		}
	}
	// Cross-check against brute force.
	oracle := make([]int64, g.NumVertices())
	refmatch.EnumerateFunc(g, res.Template, refmatch.Options{}, func(m refmatch.Match) bool {
		for _, v := range m {
			oracle[v]++
		}
		return true
	})
	for v := range oracle {
		if counts[v] != oracle[v] {
			t.Errorf("vertex %d: %d vs oracle %d", v, counts[v], oracle[v])
		}
	}
}

func TestWriteFeaturesCSV(t *testing.T) {
	_, res := featureFixture(t)
	var buf bytes.Buffer
	if err := res.WriteFeaturesCSV(&buf, FeatureOptions{}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != res.Graph.NumVertices()+1 {
		t.Fatalf("rows = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "vertex,p0,p1") {
		t.Fatalf("header = %q", lines[0])
	}
	// Vertex 0 matches the base prototype: first data column is 1.
	if !strings.HasPrefix(lines[1], "0,1,") {
		t.Fatalf("row = %q", lines[1])
	}
	// OnlyMatching trims all-zero rows.
	buf.Reset()
	if err := res.WriteFeaturesCSV(&buf, FeatureOptions{OnlyMatching: true}); err != nil {
		t.Fatal(err)
	}
	trimmed := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(trimmed) > len(lines) {
		t.Error("OnlyMatching did not trim")
	}
	// Rates mode writes counts.
	buf.Reset()
	if err := res.WriteFeaturesCSV(&buf, FeatureOptions{Rates: true}); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(strings.Split(buf.String(), "\n")[1], "0,2,") {
		t.Errorf("rates row = %q", strings.Split(buf.String(), "\n")[1])
	}
}

func TestWriteMatchesTSV(t *testing.T) {
	_, res := featureFixture(t)
	var buf bytes.Buffer
	if err := res.WriteMatchesTSV(&buf, 0, 0); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if int64(len(lines)) != res.CountMatchesOf(0) {
		t.Fatalf("rows = %d, matches = %d", len(lines), res.CountMatchesOf(0))
	}
	for _, line := range lines {
		if len(strings.Split(line, "\t")) != res.Template.NumVertices() {
			t.Fatalf("bad row %q", line)
		}
	}
	// Limit.
	buf.Reset()
	if err := res.WriteMatchesTSV(&buf, 0, 1); err != nil {
		t.Fatal(err)
	}
	if got := len(strings.Split(strings.TrimSpace(buf.String()), "\n")); got != 1 {
		t.Fatalf("limited rows = %d", got)
	}
}

func TestParticipationRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for trial := 0; trial < 6; trial++ {
		g := randomGraph(rng, 25, 70, 3)
		tp := randomTemplate(rng, 4, 3)
		res, err := Run(g, tp, DefaultConfig(1))
		if err != nil {
			t.Fatal(err)
		}
		for pi, p := range res.Set.Protos {
			counts := res.ParticipationCounts(pi)
			oracle := make([]int64, g.NumVertices())
			refmatch.EnumerateFunc(g, p.Template, refmatch.Options{}, func(m refmatch.Match) bool {
				for _, v := range m {
					oracle[v]++
				}
				return true
			})
			for v := range oracle {
				if counts[v] != oracle[v] {
					t.Errorf("trial %d proto %d vertex %d: %d vs %d", trial, pi, v, counts[v], oracle[v])
				}
			}
		}
	}
}

func TestMatchUnionGraph(t *testing.T) {
	g, res := featureFixture(t)
	sub, orig := res.MatchUnionGraph(0)
	// The base triangle's union covers all 4 vertices (two triangles).
	if sub.NumVertices() != 4 {
		t.Fatalf("union vertices = %d", sub.NumVertices())
	}
	if err := sub.Validate(); err != nil {
		t.Fatal(err)
	}
	// Labels preserved through the mapping.
	for nv, ov := range orig {
		if sub.Label(graph.VertexID(nv)) != g.Label(ov) {
			t.Errorf("label mismatch at %d", nv)
		}
	}
	// Every extracted edge participates in a match of the base triangle:
	// re-counting matches in the extracted graph matches the original.
	var m Metrics
	fullState := NewFullState(sub)
	if got := countMatches(fullState, initCandidates(fullState, res.Template), res.Template, nil, &m, kernelOpts{}); got != res.CountMatchesOf(0) {
		t.Errorf("extracted-graph count %d, want %d", got, res.CountMatchesOf(0))
	}
	all, _ := res.AllMatchesUnionGraph()
	if all.NumVertices() < sub.NumVertices() {
		t.Error("all-union smaller than one prototype's union")
	}
	if res.UnionEdges().Count() == 0 {
		t.Error("no union edges")
	}
}
