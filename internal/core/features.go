package core

import (
	"bufio"
	"fmt"
	"io"

	"approxmatch/internal/graph"
)

// ParticipationCounts returns, for prototype pi, the number of matches each
// vertex participates in — the "participation rates" enrichment of the
// match vectors that Def. 3 suggests for richer machine-learning features.
// Zero entries are vertices outside the solution subgraph. The slice is
// indexed by external vertex id (EnumerateMatches reports external ids), so
// the counts are invariant under degree relabeling.
func (r *Result) ParticipationCounts(pi int) []int64 {
	counts := make([]int64, r.Graph.NumVertices())
	r.EnumerateMatches(pi, func(m []graph.VertexID) bool {
		for _, v := range m {
			counts[v]++
		}
		return true
	})
	return counts
}

// FeatureOptions control feature export.
type FeatureOptions struct {
	// OnlyMatching skips vertices with an all-zero match vector.
	OnlyMatching bool
	// Rates exports per-prototype participation counts instead of 0/1
	// membership bits (costs one enumeration pass per prototype).
	Rates bool
}

// WriteFeaturesCSV exports the per-vertex prototype features as CSV:
// a header row "vertex,p0,p1,...", then one row per vertex — the bulk-label
// output of usage scenario S4.
func (r *Result) WriteFeaturesCSV(w io.Writer, opts FeatureOptions) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprint(bw, "vertex"); err != nil {
		return err
	}
	for pi := range r.Set.Protos {
		if _, err := fmt.Fprintf(bw, ",p%d", pi); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(bw); err != nil {
		return err
	}

	var rates [][]int64
	if opts.Rates {
		rates = make([][]int64, r.Set.Count())
		for pi := range r.Set.Protos {
			rates[pi] = r.ParticipationCounts(pi)
		}
	}
	// Rows iterate in external-id order (Rho is internal-id-indexed, rates
	// external), so the CSV is byte-identical with and without relabeling.
	for e := 0; e < r.Graph.NumVertices(); e++ {
		v := int(r.Graph.InternalID(graph.VertexID(e)))
		if opts.OnlyMatching && !r.Rho.RowAny(v) {
			continue
		}
		if _, err := fmt.Fprintf(bw, "%d", e); err != nil {
			return err
		}
		for pi := range r.Set.Protos {
			var val int64
			if opts.Rates {
				val = rates[pi][e]
			} else if r.Rho.Get(v, pi) {
				val = 1
			}
			if _, err := fmt.Fprintf(bw, ",%d", val); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(bw); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteMatchesTSV streams the full match enumeration of prototype pi as
// tab-separated vertex tuples (one match per line, columns in template
// vertex order) — the "full match enumeration for each template version"
// derived output of §1. Vertex ids are external (see EnumerateMatches).
// limit bounds the number of rows (0 = unlimited).
func (r *Result) WriteMatchesTSV(w io.Writer, pi int, limit int64) error {
	bw := bufio.NewWriter(w)
	var n int64
	var writeErr error
	r.EnumerateMatches(pi, func(m []graph.VertexID) bool {
		for i, v := range m {
			if i > 0 {
				if _, writeErr = fmt.Fprint(bw, "\t"); writeErr != nil {
					return false
				}
			}
			if _, writeErr = fmt.Fprintf(bw, "%d", v); writeErr != nil {
				return false
			}
		}
		if _, writeErr = fmt.Fprintln(bw); writeErr != nil {
			return false
		}
		n++
		return limit == 0 || n < limit
	})
	if writeErr != nil {
		return writeErr
	}
	return bw.Flush()
}
