package core

import (
	"context"
	"fmt"

	"approxmatch/internal/bitvec"
	"approxmatch/internal/graph"
	"approxmatch/internal/pattern"
	"approxmatch/internal/prototype"
)

// Incremental maintenance: keep a query's Result current across a graph
// delta without a from-scratch run, using the paper's containment rule
// (Obs. 1) in reverse. The pipeline is exact (100% precision and recall),
// so Rho and the solution subgraphs are pure functions of the graph — which
// makes "re-run only near the change and merge" a well-defined operation
// with a provable equivalence, not a heuristic.
//
// The locality argument: every prototype keeps all n_T template vertices
// (only edges are deleted), so a match is a connected subgraph of at most
// n_T vertices and any two of its vertices are within r hops of each other,
// where r = max over P_k of diameter(prototype). (The issue's δ+diam(H0)
// is not a sound bound — deleting one edge from a cycle nearly doubles its
// diameter — so the implementation computes r exactly by BFS on the
// generated prototypes; r <= n_T - 1 always.) With C the changed vertices
// of a delta:
//
//   - a match created or destroyed by the delta contains a changed element
//     (an inserted/deleted edge endpoint or a relabeled vertex), hence lies
//     entirely within ball(C, r) of its graph;
//   - therefore matches touching no vertex of A := ball_old(C,r) ∪
//     ball_new(C,r) are carried over verbatim, and for vertices inside A
//     the truth is recomputed by running the pipeline restricted to
//     B := ball_old(C,2r) ∪ ball_new(C,2r), which contains every match —
//     old or new — through any vertex of A.
//
// Two restricted runs (old graph and new graph, both confined to B via
// Config.Restrict) then give exactly the information needed to splice the
// dirty region into the previous result, including exact match counts:
// newCount = prevCount - oldRestrictedCount + newRestrictedCount, because
// matches fully inside B that the delta did not touch appear in both
// restricted runs and cancel.

// DeltaStats reports the locality of one incremental maintenance run — how
// small the dirty region was relative to the graph, which is what makes the
// incremental path cheaper than a full recompute.
type DeltaStats struct {
	// Radius is r, the largest prototype diameter.
	Radius int
	// ChangedVertices is |C|: endpoints of inserted/deleted edges plus
	// relabeled vertices.
	ChangedVertices int
	// AffectedVertices is |A| = |ball(C, r)| (old and new graph united):
	// vertices whose match vector may change.
	AffectedVertices int
	// RegionVertices is |B| = |ball(C, 2r)|: vertices the restricted
	// re-runs touch.
	RegionVertices int
}

// RunIncremental is RunIncrementalContext with a background context.
func RunIncremental(prev *Result, newG *graph.Graph, changed []graph.VertexID, cfg Config) (*Result, *DeltaStats, error) {
	return RunIncrementalContext(context.Background(), prev, newG, changed, cfg)
}

// RunIncrementalContext maintains prev — a complete Result of a Run on the
// pre-delta graph — across a graph delta: newG is the post-delta graph
// (same vertex set; see graph.ApplyDelta) and changed is the delta's
// changed-vertex list. It returns a Result bit-identical in Rho, Solutions
// and match counts to a from-scratch run on newG, at the cost of two
// pipeline runs restricted to the dirty region around the change.
//
// Contract: prev must be non-partial and stem from a run with the same
// EditDistance and CountMatches settings on the graph the delta was applied
// to; cfg.Restrict must be nil (the incremental path owns it). The merged
// Result carries no Candidate state (it is a per-run pruning artifact, not
// part of the maintained output), its Levels keep the semantic fields only
// (timings and compaction flags describe the restricted runs, not a full
// run) and its Metrics sum the two restricted runs. There is no
// anytime-partial contract here: a budget or cancellation abort in either
// restricted run fails the whole call with no merged result.
func RunIncrementalContext(ctx context.Context, prev *Result, newG *graph.Graph, changed []graph.VertexID, cfg Config) (*Result, *DeltaStats, error) {
	if prev == nil || prev.Partial {
		return nil, nil, fmt.Errorf("core: incremental maintenance needs a complete previous result")
	}
	if cfg.Restrict != nil {
		return nil, nil, fmt.Errorf("core: Restrict is owned by the incremental path")
	}
	oldG := prev.Graph
	n := newG.NumVertices()
	if oldG.NumVertices() != n {
		return nil, nil, fmt.Errorf("core: delta changed the vertex count (%d -> %d)", oldG.NumVertices(), n)
	}
	if cfg.EditDistance != prev.Set.K {
		return nil, nil, fmt.Errorf("core: edit distance %d differs from previous run's %d", cfg.EditDistance, prev.Set.K)
	}
	if cfg.CountMatches && prev.Solutions[0].MatchCount < 0 {
		return nil, nil, fmt.Errorf("core: CountMatches set but previous result is uncounted")
	}
	for _, v := range changed {
		if int(v) >= n {
			return nil, nil, fmt.Errorf("core: changed vertex %d out of range (n=%d)", v, n)
		}
	}

	r := prototypeRadius(prev.Set)
	A := bitvec.New(n)
	B := bitvec.New(n)
	growBalls(oldG, changed, r, 2*r, A, B)
	growBalls(newG, changed, r, 2*r, A, B)
	stats := &DeltaStats{
		Radius:           r,
		ChangedVertices:  len(changed),
		AffectedVertices: A.Count(),
		RegionVertices:   B.Count(),
	}

	rcfg := cfg
	rcfg.Restrict = B
	oldR, err := RunContext(ctx, oldG, prev.Template, rcfg)
	if err != nil {
		return nil, stats, fmt.Errorf("core: restricted run on previous epoch: %w", err)
	}
	newR, err := RunContext(ctx, newG, prev.Template, rcfg)
	if err != nil {
		return nil, stats, fmt.Errorf("core: restricted run on new epoch: %w", err)
	}

	res := mergeIncremental(prev, oldR, newR, newG, A, cfg.CountMatches)
	return res, stats, nil
}

// prototypeRadius returns the largest diameter over the prototype set's
// templates — the locality radius r of the containment argument above.
func prototypeRadius(set *prototype.Set) int {
	r := 0
	for _, p := range set.Protos {
		if d := templateDiameter(p.Template); d > r {
			r = d
		}
	}
	return r
}

// templateDiameter returns the diameter of a (connected) template by BFS
// from every vertex; templates have at most 64 vertices, so this is cheap.
func templateDiameter(t *pattern.Template) int {
	n := t.NumVertices()
	diam := 0
	dist := make([]int, n)
	queue := make([]int, 0, n)
	for src := 0; src < n; src++ {
		for i := range dist {
			dist[i] = -1
		}
		dist[src] = 0
		queue = append(queue[:0], src)
		for qi := 0; qi < len(queue); qi++ {
			v := queue[qi]
			if dist[v] > diam {
				diam = dist[v]
			}
			for _, w := range t.Neighbors(v) {
				if dist[w] < 0 {
					dist[w] = dist[v] + 1
					queue = append(queue, w)
				}
			}
		}
	}
	return diam
}

// growBalls runs one multi-source BFS from seeds on g, OR-ing vertices
// within distance inner into A and vertices within distance outer into B
// (inner <= outer). Called once per epoch's graph; the unions over both
// graphs are what the containment argument needs.
func growBalls(g *graph.Graph, seeds []graph.VertexID, inner, outer int, A, B *bitvec.Vector) {
	n := g.NumVertices()
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	queue := make([]graph.VertexID, 0, len(seeds))
	for _, v := range seeds {
		if dist[v] < 0 {
			dist[v] = 0
			queue = append(queue, v)
		}
	}
	for qi := 0; qi < len(queue); qi++ {
		v := queue[qi]
		d := dist[v]
		if int(d) <= inner {
			A.Set(int(v))
		}
		B.Set(int(v))
		if int(d) >= outer {
			continue
		}
		for _, w := range g.Neighbors(v) {
			if dist[w] < 0 {
				dist[w] = d + 1
				queue = append(queue, w)
			}
		}
	}
}

// mergeIncremental splices the restricted runs into the previous result:
// inside A the new restricted run is the truth, outside A the previous
// epoch's bits carry over (with edge slots remapped from the old CSR's
// offsets to the new one's — an unaffected vertex keeps an identical
// neighbor list, only its base offset may shift).
func mergeIncremental(prev, oldR, newR *Result, newG *graph.Graph, A *bitvec.Vector, counted bool) *Result {
	oldG := prev.Graph
	n := newG.NumVertices()
	set := newR.Set
	count := set.Count()
	res := &Result{
		Graph:     newG,
		Template:  prev.Template,
		Set:       set,
		Rho:       bitvec.NewMatrix(n, count),
		Solutions: make([]*Solution, count),
	}
	for pi := 0; pi < count; pi++ {
		ps, os, nsol := prev.Solutions[pi], oldR.Solutions[pi], newR.Solutions[pi]
		verts := ps.Verts.Clone()
		verts.AndNot(A)
		inA := nsol.Verts.Clone()
		inA.And(A)
		verts.Or(inA)

		edges := bitvec.New(newG.NumDirectedEdges())
		for v := 0; v < n; v++ {
			vid := graph.VertexID(v)
			deg := newG.Degree(vid)
			if deg == 0 {
				continue
			}
			nb := int(newG.AdjOffset(vid))
			if A.Get(v) {
				for i := 0; i < deg; i++ {
					if nsol.Edges.Get(nb + i) {
						edges.Set(nb + i)
					}
				}
			} else {
				ob := int(oldG.AdjOffset(vid))
				for i := 0; i < deg; i++ {
					if ps.Edges.Get(ob + i) {
						edges.Set(nb + i)
					}
				}
			}
		}

		mc := int64(-1)
		if counted {
			mc = ps.MatchCount - os.MatchCount + nsol.MatchCount
		}
		res.Solutions[pi] = &Solution{Proto: pi, Verts: verts, Edges: edges, MatchCount: mc}
		verts.ForEach(func(v int) { res.Rho.Set(v, pi) })
	}

	// Rebuild the per-level stats' semantic fields from the merged
	// solutions, mirroring commitLevel's accounting; the run-shape fields
	// (Duration, ActiveFraction, Compacted) stay zero — they would describe
	// the restricted runs, not a full run.
	for dist := set.MaxDist; dist >= 0; dist-- {
		unionVerts := bitvec.New(n)
		var labels int64
		ids := set.At(dist)
		for _, pi := range ids {
			unionVerts.Or(res.Solutions[pi].Verts)
			labels += int64(res.Solutions[pi].Verts.Count())
		}
		res.Levels = append(res.Levels, LevelStats{
			Dist:            dist,
			Prototypes:      len(ids),
			ActiveVertices:  unionVerts.Count(),
			LabelsGenerated: labels,
			Complete:        true,
		})
	}
	res.Metrics.Add(&oldR.Metrics)
	res.Metrics.Add(&newR.Metrics)
	return res
}
