package core

import (
	"approxmatch/internal/bitvec"
	"approxmatch/internal/graph"
)

// This file implements physical search-space reduction: the containment
// rule (Obs. 1) shrinks the active subgraph logically at every edit-distance
// level, and once the active fraction drops below Config.CompactBelow the
// engine extracts a compacted graph.View and searches that instead, so the
// kernels stop paying for the dead regions of the original CSR.
//
// Compaction is semantically invisible. The view's vertex remap is monotone
// (see graph.NewView), so every kernel — the LCC fixpoints, the NLCC walks,
// the superstep partitioner and the verification phase — replays the exact
// trajectory it would have on the original graph, and the per-search results
// are translated back to original ids before they are emitted. Work-recycling
// cache keys are translated eagerly (see nlcc/nlccPar), keeping recycled
// verdicts shareable across compacted and uncompacted searches.

// ActiveFraction returns the fraction of s's underlying graph (vertices plus
// directed edge slots) that is still active — the compaction trigger and the
// per-level trajectory reported in LevelStats.
func ActiveFraction(s *State) float64 {
	total := s.g.NumVertices() + s.g.NumDirectedEdges()
	if total == 0 {
		return 1
	}
	return float64(s.verts.Count()+s.edges.Count()) / float64(total)
}

// CompactState returns a state physically restricted to the active subgraph
// of s when its active fraction is below threshold, and s itself otherwise.
// A threshold <= 0 disables compaction (the ablation path); a state that is
// already a view is returned unchanged (levels are always rebuilt in
// original space, so views never nest). The returned state is fully active
// over a fresh graph.View; results computed on it must be translated back
// through State.View. Compaction accounting is recorded into m.
func CompactState(s *State, threshold float64, m *Metrics) *State {
	return CompactStateBudgeted(s, threshold, m, nil)
}

// CompactStateBudgeted is CompactState charging the view's memory against
// cc's budget. Compaction is an optimization, so when the view does not fit
// the check declines (Metrics.CompactionsDeclined) and the search proceeds
// on the uncompacted state instead of aborting — the result is identical
// either way.
func CompactStateBudgeted(s *State, threshold float64, m *Metrics, cc *CancelCheck) *State {
	if threshold <= 0 || s.view != nil {
		return s
	}
	m.CompactionChecks++
	frac := ActiveFraction(s)
	m.CompactionFracBefore += frac
	if frac >= threshold {
		m.CompactionFracAfter += frac
		return s
	}
	if !cc.TryChargeBytes(viewBytesEstimate(s)) {
		m.CompactionsDeclined++
		m.CompactionFracAfter += frac
		return s
	}
	vw := graph.NewView(s.g, s.VertexActive, func(slot int64) bool {
		return s.edges.Get(int(slot))
	})
	cg := vw.Graph()
	vs := &State{
		g:     cg,
		verts: bitvec.New(cg.NumVertices()),
		edges: bitvec.New(cg.NumDirectedEdges()),
		view:  vw,
	}
	vs.verts.SetAll()
	vs.edges.SetAll()
	m.Compactions++
	m.CompactionFracAfter++ // the compacted structure is fully active
	if reclaimed := s.g.TopologyBytes() + s.StateBytes() -
		cg.TopologyBytes() - vs.StateBytes(); reclaimed > 0 {
		m.CompactionBytesReclaimed += reclaimed
	}
	return vs
}

// viewBytesEstimate upper-bounds the memory a compacted view of s would
// allocate: the dense CSR over the nv active vertices and ns active slots
// (offsets, adjacency, labels, optional edge labels), the old↔new remap
// tables, and the fully-active state bitvecs.
func viewBytesEstimate(s *State) int64 {
	nv := int64(s.verts.Count())
	ns := int64(s.edges.Count())
	n := int64(s.g.NumVertices())
	est := 8*(nv+1) + 4*ns + 4*nv // offsets + adj + labels
	if s.g.HasEdgeLabels() {
		est += 4 * ns
	}
	est += 4*nv + 8*ns + 4*n // origVerts + origSlots + newVerts remaps
	est += (nv + ns) / 8     // state bitvecs
	return est
}

// compact applies the engine's configured compaction threshold to a level
// state, charging the view against the run's budget. It must only be called
// from the coordinator goroutine (it writes the engine metrics).
func (e *engine) compact(s *State) *State {
	return CompactStateBudgeted(s, e.cfg.CompactBelow, &e.metrics, e.cc)
}

// translateSolution rewrites a view-space solution into the original
// graph's id space, in place.
func translateSolution(sol *Solution, vw *graph.View) {
	og := vw.Orig()
	verts := bitvec.New(og.NumVertices())
	sol.Verts.ForEach(func(nv int) {
		verts.Set(int(vw.OrigVertex(graph.VertexID(nv))))
	})
	edges := bitvec.New(og.NumDirectedEdges())
	sol.Edges.ForEach(func(ns int) {
		edges.Set(int(vw.OrigSlot(ns)))
	})
	sol.Verts, sol.Edges = verts, edges
}
