package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"approxmatch/internal/graph"
	"approxmatch/internal/pattern"
	"approxmatch/internal/refmatch"
	"approxmatch/internal/tle"
)

// randomGraph builds a random labeled graph.
func randomGraph(rng *rand.Rand, n, m, labels int) *graph.Graph {
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		b.SetLabel(graph.VertexID(v), graph.Label(rng.Intn(labels)))
	}
	for i := 0; i < m; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			b.AddEdge(graph.VertexID(u), graph.VertexID(v))
		}
	}
	return b.Build()
}

// randomTemplate builds a small random connected labeled template.
func randomTemplate(rng *rand.Rand, maxV, labels int) *pattern.Template {
	n := 2 + rng.Intn(maxV-1)
	ls := make([]pattern.Label, n)
	for i := range ls {
		ls[i] = pattern.Label(rng.Intn(labels))
	}
	var edges []pattern.Edge
	for v := 1; v < n; v++ {
		edges = append(edges, pattern.Edge{I: rng.Intn(v), J: v})
	}
	for i := 0; i < rng.Intn(3); i++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a == b {
			continue
		}
		if a > b {
			a, b = b, a
		}
		e := pattern.Edge{I: a, J: b}
		dup := false
		for _, x := range edges {
			if x == e {
				dup = true
			}
		}
		if !dup {
			edges = append(edges, e)
		}
	}
	t, err := pattern.New(ls, edges)
	if err != nil {
		panic(err)
	}
	return t
}

// checkAgainstOracle verifies the pipeline's per-prototype solution
// subgraphs, match vector and counts against brute force.
func checkAgainstOracle(t *testing.T, g *graph.Graph, tp *pattern.Template, cfg Config) {
	t.Helper()
	cfg.CountMatches = true
	res, err := Run(g, tp, cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for pi, p := range res.Set.Protos {
		sol := res.Solutions[pi]
		wantVs, wantEs := refmatch.SolutionSubgraph(g, p.Template)
		// Vertices: exact equality (precision + recall).
		for v := 0; v < g.NumVertices(); v++ {
			got := sol.Verts.Get(v)
			want := wantVs[graph.VertexID(v)]
			if got != want {
				t.Errorf("proto %d (δ=%d %v): vertex %d got=%v want=%v",
					pi, p.Dist, p.Template, v, got, want)
			}
			if res.Rho.Get(v, pi) != want {
				t.Errorf("proto %d: rho[%d] wrong", pi, v)
			}
		}
		// Edges: every participating edge marked, nothing else.
		for v := 0; v < g.NumVertices(); v++ {
			base := int(g.AdjOffset(graph.VertexID(v)))
			for i, u := range g.Neighbors(graph.VertexID(v)) {
				a, b := graph.VertexID(v), u
				if a > b {
					a, b = b, a
				}
				want := wantEs[graph.Edge{U: a, V: b}]
				got := sol.Edges.Get(base + i)
				if got != want {
					t.Errorf("proto %d (δ=%d %v): edge (%d,%d) got=%v want=%v",
						pi, p.Dist, p.Template, v, u, got, want)
				}
			}
		}
		// Counts.
		if want := refmatch.Count(g, p.Template, false); sol.MatchCount != want {
			t.Errorf("proto %d (δ=%d %v): count=%d want=%d", pi, p.Dist, p.Template, sol.MatchCount, want)
		}
	}
}

func TestPipelineTinyKnownCase(t *testing.T) {
	// Graph: two triangles sharing vertex 2, labels 1-2-3 and 1-2 on the
	// second; template: labeled triangle, k=1.
	b := graph.NewBuilder(5)
	b.SetLabel(0, 1)
	b.SetLabel(1, 2)
	b.SetLabel(2, 3)
	b.SetLabel(3, 1)
	b.SetLabel(4, 2)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(0, 2)
	b.AddEdge(2, 3)
	b.AddEdge(3, 4)
	b.AddEdge(4, 2)
	g := b.Build()
	tp := pattern.MustNew([]pattern.Label{1, 2, 3},
		[]pattern.Edge{{I: 0, J: 1}, {I: 1, J: 2}, {I: 0, J: 2}})
	checkAgainstOracle(t, g, tp, DefaultConfig(1))
}

func TestPipelineRandomizedDefault(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		g := randomGraph(rng, 20+rng.Intn(30), 60+rng.Intn(60), 3)
		tp := randomTemplate(rng, 5, 3)
		k := rng.Intn(3)
		checkAgainstOracle(t, g, tp, DefaultConfig(k))
	}
}

func TestPipelineRandomizedAblations(t *testing.T) {
	// Every optimization toggle must preserve exactness.
	rng := rand.New(rand.NewSource(7))
	configs := []Config{
		{EditDistance: 2},
		{EditDistance: 2, WorkRecycling: true},
		{EditDistance: 2, FrequencyOrdering: true},
		{EditDistance: 2, LabelPairRefinement: true},
		{EditDistance: 2, WorkRecycling: true, FrequencyOrdering: true, LabelPairRefinement: true},
	}
	for trial := 0; trial < 8; trial++ {
		g := randomGraph(rng, 25, 70, 3)
		tp := randomTemplate(rng, 4, 3)
		for _, cfg := range configs {
			checkAgainstOracle(t, g, tp, cfg)
		}
	}
}

func TestPipelineQuickProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 15+rng.Intn(15), 40+rng.Intn(40), 3)
		tp := randomTemplate(rng, 4, 3)
		cfg := DefaultConfig(rng.Intn(2))
		cfg.CountMatches = true
		res, err := Run(g, tp, cfg)
		if err != nil {
			return false
		}
		for pi, p := range res.Set.Protos {
			if res.Solutions[pi].MatchCount != refmatch.Count(g, p.Template, false) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxCandidateSetIsSuperset(t *testing.T) {
	// M* must contain the solution subgraph of EVERY prototype.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		g := randomGraph(rng, 30, 90, 3)
		tp := randomTemplate(rng, 4, 3)
		var m Metrics
		mcs := MaxCandidateSet(g, tp, &m)
		res, err := Run(g, tp, DefaultConfig(2))
		if err != nil {
			t.Fatal(err)
		}
		for pi := range res.Set.Protos {
			res.Solutions[pi].Verts.ForEach(func(v int) {
				if !mcs.VertexActive(graph.VertexID(v)) {
					t.Errorf("trial %d proto %d: matching vertex %d not in M*", trial, pi, v)
				}
			})
			res.Solutions[pi].Edges.ForEach(func(slot int) {
				if !mcs.EdgeBits().Get(slot) {
					t.Errorf("trial %d proto %d: matching edge slot %d not in M*", trial, pi, slot)
				}
			})
		}
	}
}

func TestContainmentRuleHolds(t *testing.T) {
	// Obs. 1: V*_{δ,p} ⊆ V*_{δ+1,c} for every child c.
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 10; trial++ {
		g := randomGraph(rng, 30, 90, 3)
		tp := randomTemplate(rng, 4, 3)
		res, err := Run(g, tp, DefaultConfig(2))
		if err != nil {
			t.Fatal(err)
		}
		for pi, p := range res.Set.Protos {
			for _, ci := range p.Children {
				child := res.Solutions[ci].Verts
				res.Solutions[pi].Verts.ForEach(func(v int) {
					if !child.Get(v) {
						t.Errorf("trial %d: containment violated: proto %d vertex %d not in child %d", trial, pi, v, ci)
					}
				})
			}
		}
	}
}

func TestMandatoryEdgesQuery(t *testing.T) {
	// RDT-1-style: mandatory core with optional attachments.
	tp, err := pattern.NewWithMandatory(
		[]pattern.Label{1, 2, 3},
		[]pattern.Edge{{I: 0, J: 1}, {I: 1, J: 2}, {I: 0, J: 2}},
		[]bool{true, false, false},
	)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 6; trial++ {
		g := randomGraph(rng, 30, 90, 3)
		checkAgainstOracle(t, g, tp, DefaultConfig(1))
	}
}

func TestTopDownMatchesBottomUp(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 10; trial++ {
		g := randomGraph(rng, 25, 60, 3)
		tp := randomTemplate(rng, 4, 3)
		cfg := DefaultConfig(2)
		bu, err := Run(g, tp, cfg)
		if err != nil {
			t.Fatal(err)
		}
		td, err := RunTopDown(g, tp, cfg)
		if err != nil {
			t.Fatal(err)
		}
		// The first distance with matches must agree.
		wantFirst := -1
		for d := 0; d <= bu.Set.MaxDist; d++ {
			for _, pi := range bu.Set.At(d) {
				if bu.Solutions[pi].Verts.Any() {
					wantFirst = d
					break
				}
			}
			if wantFirst >= 0 {
				break
			}
		}
		if td.FoundDist != wantFirst {
			t.Errorf("trial %d: top-down found at %d, bottom-up at %d", trial, td.FoundDist, wantFirst)
		}
		if wantFirst >= 0 {
			// Per-prototype solutions at the found level must agree.
			for _, pi := range bu.Set.At(wantFirst) {
				if !td.Solutions[pi].Verts.Equal(bu.Solutions[pi].Verts) {
					t.Errorf("trial %d proto %d: top-down/bottom-up vertex sets differ", trial, pi)
				}
			}
		}
	}
}

func TestEnumerationExtensionMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 10; trial++ {
		g := randomGraph(rng, 25, 70, 3)
		tp := randomTemplate(rng, 4, 3)
		res, err := Run(g, tp, DefaultConfig(2))
		if err != nil {
			t.Fatal(err)
		}
		direct := CountAllMatches(res, nil)
		extended, err := CountAllMatchesExtended(res, nil)
		if err != nil {
			t.Fatal(err)
		}
		for pi := range direct {
			if direct[pi] != extended[pi] {
				t.Errorf("trial %d proto %d: direct=%d extended=%d", trial, pi, direct[pi], extended[pi])
			}
			if want := refmatch.Count(g, res.Set.Protos[pi].Template, false); direct[pi] != want {
				t.Errorf("trial %d proto %d: direct=%d oracle=%d", trial, pi, direct[pi], want)
			}
		}
	}
}

func TestWorkRecyclingReducesTokens(t *testing.T) {
	// On a cyclic template with shared constraints across prototypes, the
	// cache must strictly reduce initiated tokens.
	rng := rand.New(rand.NewSource(31))
	g := randomGraph(rng, 60, 240, 3)
	// 4-cycle with a pendant (Fig. 3b's shape): deleting the pendant edge
	// leaves the cycle intact, so the 4-Cycle CC is shared between levels.
	tp := pattern.MustNew([]pattern.Label{0, 1, 0, 1, 2},
		[]pattern.Edge{{I: 0, J: 1}, {I: 1, J: 2}, {I: 2, J: 3}, {I: 0, J: 3}, {I: 3, J: 4}})
	with := DefaultConfig(2)
	without := with
	without.WorkRecycling = false
	r1, err := Run(g, tp, with)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(g, tp, without)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Metrics.CacheHits == 0 {
		t.Error("expected cache hits with recycling enabled")
	}
	if r1.Metrics.TokensInitiated >= r2.Metrics.TokensInitiated {
		t.Errorf("recycling did not reduce tokens: with=%d without=%d",
			r1.Metrics.TokensInitiated, r2.Metrics.TokensInitiated)
	}
	// And identical results.
	for pi := range r1.Set.Protos {
		if !r1.Solutions[pi].Verts.Equal(r2.Solutions[pi].Verts) {
			t.Errorf("proto %d: recycling changed the result", pi)
		}
	}
}

func TestEmptyResultOnImpossibleLabels(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomGraph(rng, 20, 40, 2) // labels 0,1 only
	tp := pattern.MustNew([]pattern.Label{7, 8}, []pattern.Edge{{I: 0, J: 1}})
	res, err := Run(g, tp, DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.UnionVertices().Any() {
		t.Error("impossible template produced matches")
	}
	if res.Candidate.NumActiveVertices() != 0 {
		t.Error("candidate set should be empty")
	}
}

func TestResultDerivedOutputs(t *testing.T) {
	b := graph.NewBuilder(3)
	b.SetLabel(0, 1)
	b.SetLabel(1, 2)
	b.SetLabel(2, 3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g := b.Build()
	tp := pattern.MustNew([]pattern.Label{1, 2, 3}, []pattern.Edge{{I: 0, J: 1}, {I: 1, J: 2}})
	cfg := DefaultConfig(1)
	cfg.CountMatches = true
	res, err := Run(g, tp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.MatchVector(1); len(got) != res.Set.Count() {
		t.Errorf("vertex 1 should match all %d prototypes, got %v", res.Set.Count(), got)
	}
	if res.LabelsGenerated() == 0 {
		t.Error("no labels generated")
	}
	if res.TotalMatchCount() <= 0 {
		t.Errorf("TotalMatchCount = %d", res.TotalMatchCount())
	}
	var count int
	res.EnumerateMatches(0, func(m []graph.VertexID) bool {
		count++
		return true
	})
	if int64(count) != res.Solutions[0].MatchCount {
		t.Errorf("enumerated %d, counted %d", count, res.Solutions[0].MatchCount)
	}
}

func TestRunParallelMatchesRun(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 6; trial++ {
		g := randomGraph(rng, 35, 100, 3)
		tp := randomTemplate(rng, 4, 3)
		cfg := DefaultConfig(2)
		cfg.CountMatches = true
		seq, err := Run(g, tp, cfg)
		if err != nil {
			t.Fatal(err)
		}
		par, err := RunParallel(g, tp, cfg, 4)
		if err != nil {
			t.Fatal(err)
		}
		for pi := range seq.Set.Protos {
			if !par.Solutions[pi].Verts.Equal(seq.Solutions[pi].Verts) {
				t.Errorf("trial %d proto %d: vertex sets differ", trial, pi)
			}
			if !par.Solutions[pi].Edges.Equal(seq.Solutions[pi].Edges) {
				t.Errorf("trial %d proto %d: edge sets differ", trial, pi)
			}
			if par.Solutions[pi].MatchCount != seq.Solutions[pi].MatchCount {
				t.Errorf("trial %d proto %d: counts differ", trial, pi)
			}
		}
	}
}

func TestThreeWayMatcherAgreement(t *testing.T) {
	// Constraint pipeline vs brute-force oracle vs TLE baseline: three
	// independent matchers, one answer.
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 8; trial++ {
		g := randomGraph(rng, 30, 90, 3)
		tp := randomTemplate(rng, 4, 3)
		sol, _ := ExactMatch(g, tp, true, true)
		want := refmatch.Count(g, tp, false)
		tleCount, _, err := tle.CountTemplate(g, tp, tle.Config{})
		if err != nil {
			t.Fatal(err)
		}
		if sol.MatchCount != want || tleCount != want {
			t.Errorf("trial %d: pipeline=%d oracle=%d tle=%d",
				trial, sol.MatchCount, want, tleCount)
		}
	}
}
