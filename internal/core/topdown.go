package core

import (
	"context"
	"fmt"
	"time"

	"approxmatch/internal/bitvec"
	"approxmatch/internal/graph"
	"approxmatch/internal/pattern"
	"approxmatch/internal/prototype"
)

// TopDownResult is the output of the exploratory (top-down) search mode
// (§4, "Top-Down Search Mode"; evaluated in §5.5 with the WDC-4 6-Clique):
// the search starts at the exact template (δ=0) and relaxes one edit at a
// time until matches appear or the budget k is exhausted.
type TopDownResult struct {
	// Set is the full prototype set up to the configured k.
	Set *prototype.Set
	// FoundDist is the edit distance at which the first matches appeared,
	// or -1 if none were found within k.
	FoundDist int
	// PrototypesSearched counts the prototypes examined across all levels.
	PrototypesSearched int
	// MatchingVertices marks the vertices participating in a match of any
	// prototype at FoundDist.
	MatchingVertices *bitvec.Vector
	// Solutions holds the per-prototype solutions at FoundDist, indexed by
	// prototype index (nil elsewhere).
	Solutions []*Solution
	// Metrics aggregates work counters; Levels records per-level stats in
	// top-down (increasing δ) order.
	Metrics Metrics
	Levels  []LevelStats
}

// RunTopDown performs exploratory search: for δ = 0, 1, ..., k it searches
// every prototype at distance δ on the maximum candidate set and stops at
// the first δ with a non-empty match set. Work recycling naturally applies
// in the top-down direction too (Obs. 2): constraints proven for a δ
// prototype are shared with the δ+1 prototypes that inherit them.
func RunTopDown(g *graph.Graph, t *pattern.Template, cfg Config) (*TopDownResult, error) {
	return RunTopDownContext(context.Background(), g, t, cfg)
}

// RunTopDownContext is RunTopDown honoring ctx: the per-prototype searches
// carry cancellation probes and the run returns ctx.Err() once the context
// fires. When ctx never fires, the results are identical to RunTopDown's.
// Budget exhaustion surfaces as a plain ErrBudgetExhausted error — the
// top-down mode has no containment guarantee to salvage a partial result
// from (an unfinished level says nothing about smaller distances).
func RunTopDownContext(ctx context.Context, g *graph.Graph, t *pattern.Template, cfg Config) (*TopDownResult, error) {
	ctx = withConfigBudget(ctx, cfg.Budget)
	cc := NewCancelCheck(ctx)
	var res *TopDownResult
	err := func() (err error) {
		defer RecoverCancel(&err)
		cc.Check()
		res, err = runTopDown(cc, g, t, cfg)
		return err
	}()
	if err != nil {
		return nil, err
	}
	return res, nil
}

func runTopDown(cc *CancelCheck, g *graph.Graph, t *pattern.Template, cfg Config) (*TopDownResult, error) {
	set, err := prototype.Generate(t, cfg.EditDistance)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	e := newEngine(g, set, cfg)
	defer e.close()
	e.cc = cc
	res := &TopDownResult{
		Set:              set,
		FoundDist:        -1,
		MatchingVertices: bitvec.New(g.NumVertices()),
		Solutions:        make([]*Solution, set.Count()),
	}
	candidate := maxCandidateSet(g, t, e.cfg.Restrict, e.pool, cc, &e.metrics)
	// Top-down searches every level on the candidate set, so one compaction
	// pays off across all of them.
	frac := ActiveFraction(candidate)
	searchCand := e.compact(candidate)

	for dist := 0; dist <= set.MaxDist; dist++ {
		cc.Check()
		start := time.Now()
		found := false
		var labels int64
		levelVerts := bitvec.New(g.NumVertices())
		for _, pi := range set.At(dist) {
			sol := e.searchPrototype(searchCand, pi)
			res.PrototypesSearched++
			res.Solutions[pi] = sol
			if sol.Verts.Any() {
				found = true
				levelVerts.Or(sol.Verts)
				labels += int64(sol.Verts.Count())
			}
		}
		res.Levels = append(res.Levels, LevelStats{
			Dist:            dist,
			Prototypes:      set.CountAt(dist),
			ActiveVertices:  levelVerts.Count(),
			LabelsGenerated: labels,
			Duration:        time.Since(start),
			ActiveFraction:  frac,
			Compacted:       searchCand.View() != nil,
			Complete:        true,
		})
		if found {
			res.FoundDist = dist
			res.MatchingVertices = levelVerts
			break
		}
	}
	res.Metrics = e.metrics
	return res, nil
}
