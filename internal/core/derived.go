package core

import (
	"approxmatch/internal/bitvec"
	"approxmatch/internal/graph"
)

// Derived outputs (§1): beyond the per-vertex match vectors, users consume
// (i) the union of all matches, (ii) the union of matches per template
// version and (iii) full enumerations. This file provides the subgraph
// extraction forms of (i) and (ii).

// UnionEdges returns the directed-slot bit vector of edges participating in
// any prototype's matches.
func (r *Result) UnionEdges() *bitvec.Vector {
	out := bitvec.New(r.Graph.NumDirectedEdges())
	for _, sol := range r.Solutions {
		if sol != nil {
			out.Or(sol.Edges)
		}
	}
	return out
}

// MatchUnionGraph extracts the solution subgraph of prototype pi as a
// standalone graph (vertex-induced on the participating vertices,
// edge-restricted to participating edges), along with the mapping from new
// vertex ids back to the background graph's.
func (r *Result) MatchUnionGraph(pi int) (*graph.Graph, []graph.VertexID) {
	return extractSubgraph(r.Graph, r.Solutions[pi].Verts, r.Solutions[pi].Edges)
}

// AllMatchesUnionGraph extracts the union of every prototype's solution
// subgraph as a standalone graph.
func (r *Result) AllMatchesUnionGraph() (*graph.Graph, []graph.VertexID) {
	return extractSubgraph(r.Graph, r.UnionVertices(), r.UnionEdges())
}

// extractSubgraph builds a graph from active vertex and directed-slot bit
// vectors, preserving vertex and edge labels.
func extractSubgraph(g *graph.Graph, verts *bitvec.Vector, slots *bitvec.Vector) (*graph.Graph, []graph.VertexID) {
	remap := make(map[graph.VertexID]graph.VertexID)
	var orig []graph.VertexID
	verts.ForEach(func(v int) {
		remap[graph.VertexID(v)] = graph.VertexID(len(orig))
		orig = append(orig, graph.VertexID(v))
	})
	b := graph.NewBuilder(len(orig))
	for nv, ov := range orig {
		b.SetLabel(graph.VertexID(nv), g.Label(ov))
	}
	labeled := g.HasEdgeLabels()
	for _, ov := range orig {
		base := int(g.AdjOffset(ov))
		for i, w := range g.Neighbors(ov) {
			if !slots.Get(base + i) {
				continue
			}
			nw, ok := remap[w]
			if !ok || remap[ov] >= nw {
				continue
			}
			if labeled {
				b.AddEdgeLabeled(remap[ov], nw, g.EdgeLabelAt(ov, i))
			} else {
				b.AddEdge(remap[ov], nw)
			}
		}
	}
	return b.Build(), orig
}
