package core

import (
	"context"
	"math/rand"
	"testing"

	"approxmatch/internal/graph"
	"approxmatch/internal/pattern"
	"approxmatch/internal/refmatch"
)

func TestSingleVertexTemplate(t *testing.T) {
	b := graph.NewBuilder(4)
	b.SetLabel(0, 7)
	b.SetLabel(1, 7)
	b.SetLabel(2, 8)
	b.SetLabel(3, 7)
	b.AddEdge(0, 1)
	g := b.Build()
	tp := pattern.MustNew([]pattern.Label{7}, nil)
	cfg := DefaultConfig(0)
	cfg.CountMatches = true
	res, err := Run(g, tp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Set.Count() != 1 {
		t.Fatalf("prototypes = %d", res.Set.Count())
	}
	// Every label-7 vertex matches, including the isolated vertex 3.
	for _, v := range []int{0, 1, 3} {
		if !res.Solutions[0].Verts.Get(v) {
			t.Errorf("vertex %d should match", v)
		}
	}
	if res.Solutions[0].Verts.Get(2) {
		t.Error("vertex 2 has the wrong label")
	}
	if res.Solutions[0].MatchCount != 3 {
		t.Errorf("count = %d", res.Solutions[0].MatchCount)
	}
}

func TestEditDistanceZeroIsExactMatching(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 8; trial++ {
		g := randomGraph(rng, 30, 90, 3)
		tp := randomTemplate(rng, 4, 3)
		res, err := Run(g, tp, DefaultConfig(0))
		if err != nil {
			t.Fatal(err)
		}
		if res.Set.Count() != 1 {
			t.Fatalf("k=0 generated %d prototypes", res.Set.Count())
		}
		wantVs, _ := refmatch.SolutionSubgraph(g, tp)
		for v := 0; v < g.NumVertices(); v++ {
			if res.Solutions[0].Verts.Get(v) != wantVs[graph.VertexID(v)] {
				t.Errorf("trial %d: vertex %d wrong", trial, v)
			}
		}
	}
}

func TestEditDistanceBeyondDisconnection(t *testing.T) {
	// A path template disconnects on any removal: k=5 must behave as k=0.
	g := randomGraph(rand.New(rand.NewSource(62)), 20, 50, 3)
	tp := pattern.MustNew([]pattern.Label{0, 1, 2}, []pattern.Edge{{I: 0, J: 1}, {I: 1, J: 2}})
	res, err := Run(g, tp, DefaultConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	if res.Set.Count() != 1 || res.Set.MaxDist != 0 {
		t.Fatalf("count=%d maxdist=%d", res.Set.Count(), res.Set.MaxDist)
	}
}

func TestEmptyAndEdgelessGraphs(t *testing.T) {
	tp := pattern.MustNew([]pattern.Label{0, 1}, []pattern.Edge{{I: 0, J: 1}})
	// Empty graph.
	empty := graph.NewBuilder(0).Build()
	res, err := Run(empty, tp, DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.UnionVertices().Any() {
		t.Error("matches in an empty graph")
	}
	// Edgeless graph with matching labels.
	b := graph.NewBuilder(3)
	b.SetLabel(0, 0)
	b.SetLabel(1, 1)
	edgeless := b.Build()
	res, err = Run(edgeless, tp, DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.UnionVertices().Any() {
		t.Error("matches without edges")
	}
}

func TestAllMandatoryTemplate(t *testing.T) {
	// Every edge mandatory: P_k is just the base template at any k.
	tp, err := pattern.NewWithMandatory(
		[]pattern.Label{0, 1, 2},
		[]pattern.Edge{{I: 0, J: 1}, {I: 1, J: 2}, {I: 0, J: 2}},
		[]bool{true, true, true})
	if err != nil {
		t.Fatal(err)
	}
	g := randomGraph(rand.New(rand.NewSource(63)), 30, 90, 3)
	res, err := Run(g, tp, DefaultConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Set.Count() != 1 {
		t.Fatalf("all-mandatory template produced %d prototypes", res.Set.Count())
	}
	wantVs, _ := refmatch.SolutionSubgraph(g, tp)
	for v := 0; v < g.NumVertices(); v++ {
		if res.Solutions[0].Verts.Get(v) != wantVs[graph.VertexID(v)] {
			t.Errorf("vertex %d wrong", v)
		}
	}
}

func TestHighFrequencyLabels(t *testing.T) {
	// Stress: a single-label graph and template (everything is a
	// candidate; repeated labels force TDS verification).
	rng := rand.New(rand.NewSource(64))
	g := randomGraph(rng, 25, 70, 1)
	tp := pattern.MustNew([]pattern.Label{0, 0, 0},
		[]pattern.Edge{{I: 0, J: 1}, {I: 1, J: 2}, {I: 0, J: 2}})
	checkAgainstOracle(t, g, tp, DefaultConfig(1))
}

func TestDenseMatchRegion(t *testing.T) {
	// A clique of one label: every triple matches the unlabeled triangle;
	// counts must be exact (n·(n-1)·(n-2) mappings).
	n := 9
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(graph.VertexID(i), graph.VertexID(j))
		}
	}
	g := b.Build()
	tp := pattern.MustNew(make([]pattern.Label, 3),
		[]pattern.Edge{{I: 0, J: 1}, {I: 1, J: 2}, {I: 0, J: 2}})
	cfg := DefaultConfig(1)
	cfg.CountMatches = true
	res, err := Run(g, tp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(n * (n - 1) * (n - 2))
	if res.Solutions[0].MatchCount != want {
		t.Errorf("triangle mappings = %d, want %d", res.Solutions[0].MatchCount, want)
	}
}

func TestStateInvariants(t *testing.T) {
	g := randomGraph(rand.New(rand.NewSource(65)), 20, 50, 2)
	s := NewFullState(g)
	if s.NumActiveVertices() != g.NumVertices() {
		t.Fatal("full state not full")
	}
	if s.NumActiveDirectedEdges() != g.NumDirectedEdges() {
		t.Fatal("full edges not full")
	}
	// Deactivating a vertex kills its outgoing slots; traversal helpers
	// must never yield it.
	s.DeactivateVertex(0)
	if s.VertexActive(0) {
		t.Fatal("vertex still active")
	}
	s.ForEachActiveNeighbor(1, func(_ int, w graph.VertexID) {
		if w == 0 {
			t.Fatal("dead neighbor yielded")
		}
	})
	// Edge deactivation is symmetric.
	if g.Degree(1) > 0 {
		s2 := NewFullState(g)
		w := g.Neighbors(1)[0]
		s2.DeactivateEdgeAt(1, 0)
		if s2.EdgeActiveBetween(w, 1) || s2.EdgeActiveBetween(1, w) {
			t.Fatal("edge deactivation not symmetric")
		}
	}
	// Clone independence.
	c := s.Clone()
	c.DeactivateVertex(2)
	if !s.VertexActive(2) {
		t.Fatal("clone aliases original")
	}
}

func TestExactMatchStandalone(t *testing.T) {
	rng := rand.New(rand.NewSource(66))
	for trial := 0; trial < 6; trial++ {
		g := randomGraph(rng, 30, 90, 3)
		tp := randomTemplate(rng, 4, 3)
		sol, m := ExactMatch(g, tp, true, true)
		if want := refmatch.Count(g, tp, false); sol.MatchCount != want {
			t.Errorf("trial %d: count %d, want %d", trial, sol.MatchCount, want)
		}
		if m.PrototypesSearched != 1 {
			t.Errorf("searched %d templates", m.PrototypesSearched)
		}
	}
}

func TestFinalizeExactFromLooseState(t *testing.T) {
	// FinalizeExact must reduce ANY recall-safe superset state to the
	// exact solution subgraph.
	rng := rand.New(rand.NewSource(67))
	for trial := 0; trial < 6; trial++ {
		g := randomGraph(rng, 25, 70, 3)
		tp := randomTemplate(rng, 4, 3)
		s := NewFullState(g) // the loosest possible superset
		var m Metrics
		edges := FinalizeExact(context.Background(), s, tp, 0, &m)
		wantVs, wantEs := refmatch.SolutionSubgraph(g, tp)
		for v := 0; v < g.NumVertices(); v++ {
			if s.VertexActive(graph.VertexID(v)) != wantVs[graph.VertexID(v)] {
				t.Errorf("trial %d: vertex %d wrong", trial, v)
			}
			base := int(g.AdjOffset(graph.VertexID(v)))
			for i, u := range g.Neighbors(graph.VertexID(v)) {
				a, b := graph.VertexID(v), u
				if a > b {
					a, b = b, a
				}
				if edges.Get(base+i) != wantEs[graph.Edge{U: a, V: b}] {
					t.Errorf("trial %d: edge (%d,%d) wrong", trial, v, u)
				}
			}
		}
	}
}

func TestPhaseTimingsRecorded(t *testing.T) {
	rng := rand.New(rand.NewSource(68))
	g := randomGraph(rng, 60, 200, 3)
	tp := pattern.MustNew([]pattern.Label{0, 1, 2},
		[]pattern.Edge{{I: 0, J: 1}, {I: 1, J: 2}, {I: 0, J: 2}})
	res, err := Run(g, tp, DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics
	if m.CandidateTime <= 0 {
		t.Error("no candidate time recorded")
	}
	if m.LCCTime <= 0 {
		t.Error("no LCC time recorded")
	}
	if m.NLCCTime <= 0 {
		t.Error("no NLCC time recorded (triangle has a cycle constraint)")
	}
	if m.VerifyTime <= 0 {
		t.Error("no verification time recorded")
	}
	if m.PhaseSummary() == "" {
		t.Error("empty phase summary")
	}
}
