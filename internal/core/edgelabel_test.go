package core

import (
	"math/rand"
	"testing"

	"approxmatch/internal/graph"
	"approxmatch/internal/pattern"
	"approxmatch/internal/refmatch"
)

// randomEdgeLabeledGraph builds a random graph with labeled edges.
func randomEdgeLabeledGraph(rng *rand.Rand, n, m, labels, edgeLabels int) *graph.Graph {
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		b.SetLabel(graph.VertexID(v), graph.Label(rng.Intn(labels)))
	}
	for i := 0; i < m; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			b.AddEdgeLabeled(graph.VertexID(u), graph.VertexID(v), graph.Label(rng.Intn(edgeLabels)))
		}
	}
	return b.Build()
}

// randomEdgeLabeledTemplate builds a template with some concrete edge-label
// requirements and some wildcards.
func randomEdgeLabeledTemplate(rng *rand.Rand, maxV, labels, edgeLabels int) *pattern.Template {
	base := randomTemplate(rng, maxV, labels)
	els := make([]pattern.Label, base.NumEdges())
	for i := range els {
		if rng.Intn(2) == 0 {
			els[i] = pattern.Wildcard
		} else {
			els[i] = pattern.Label(rng.Intn(edgeLabels))
		}
	}
	t, err := pattern.NewEdgeLabeled(base.Labels(), base.Edges(), els, nil)
	if err != nil {
		panic(err)
	}
	return t
}

func TestEdgeLabelSimple(t *testing.T) {
	// Two A-B edges, one labeled "friend" (1), one "enemy" (2); the
	// template demands "friend".
	b := graph.NewBuilder(4)
	b.SetLabel(0, 1)
	b.SetLabel(1, 2)
	b.SetLabel(2, 1)
	b.SetLabel(3, 2)
	b.AddEdgeLabeled(0, 1, 1) // friend
	b.AddEdgeLabeled(2, 3, 2) // enemy
	g := b.Build()
	tp, err := pattern.NewEdgeLabeled(
		[]pattern.Label{1, 2},
		[]pattern.Edge{{I: 0, J: 1}},
		[]pattern.Label{1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(0)
	cfg.CountMatches = true
	res, err := Run(g, tp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Solutions[0].MatchCount != 1 {
		t.Fatalf("count = %d, want 1", res.Solutions[0].MatchCount)
	}
	if res.Solutions[0].Verts.Get(2) || res.Solutions[0].Verts.Get(3) {
		t.Error("enemy edge matched a friend requirement")
	}
}

func TestEdgeLabelAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 12; trial++ {
		g := randomEdgeLabeledGraph(rng, 25, 70, 3, 2)
		tp := randomEdgeLabeledTemplate(rng, 4, 3, 2)
		checkAgainstOracle(t, g, tp, DefaultConfig(rng.Intn(2)))
	}
}

func TestEdgeLabelPrototypesCarryLabels(t *testing.T) {
	tp, err := pattern.NewEdgeLabeled(
		[]pattern.Label{1, 2, 3},
		[]pattern.Edge{{I: 0, J: 1}, {I: 1, J: 2}, {I: 0, J: 2}},
		[]pattern.Label{7, 8, 9}, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(92))
	g := randomEdgeLabeledGraph(rng, 30, 90, 3, 12)
	res, err := Run(g, tp, DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	for pi, p := range res.Set.Protos {
		if !p.Template.HasEdgeLabels() {
			t.Fatalf("proto %d lost edge labels", pi)
		}
		// Oracle comparison per prototype.
		wantVs, _ := refmatch.SolutionSubgraph(g, p.Template)
		for v := 0; v < g.NumVertices(); v++ {
			if res.Solutions[pi].Verts.Get(v) != wantVs[graph.VertexID(v)] {
				t.Errorf("proto %d vertex %d wrong", pi, v)
			}
		}
	}
}

func TestEdgeLabelUnlabeledGraphRejectsConcreteRequirement(t *testing.T) {
	// A graph built without edge labels carries the default label 0 on all
	// edges; a template demanding edge label 5 can never match, while one
	// demanding 0 behaves like the unlabeled search.
	rng := rand.New(rand.NewSource(93))
	g := randomGraph(rng, 20, 60, 2)
	demand5, err := pattern.NewEdgeLabeled(
		[]pattern.Label{0, 1}, []pattern.Edge{{I: 0, J: 1}},
		[]pattern.Label{5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(g, demand5, DefaultConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	if res.UnionVertices().Any() {
		t.Error("edge label 5 matched an unlabeled graph")
	}
}

func TestFeatureCrossProduct(t *testing.T) {
	// Wildcards + edge labels + mandatory edges together, against the
	// oracle, bottom-up and top-down.
	rng := rand.New(rand.NewSource(120))
	for trial := 0; trial < 6; trial++ {
		g := randomEdgeLabeledGraph(rng, 25, 70, 3, 2)
		tp, err := pattern.NewEdgeLabeled(
			[]pattern.Label{0, pattern.Wildcard, 2, 1},
			[]pattern.Edge{{I: 0, J: 1}, {I: 1, J: 2}, {I: 2, J: 3}, {I: 0, J: 3}},
			[]pattern.Label{pattern.Wildcard, 1, pattern.Wildcard, 0},
			[]bool{true, false, false, false})
		if err != nil {
			t.Fatal(err)
		}
		checkAgainstOracle(t, g, tp, DefaultConfig(2))

		td, err := RunTopDown(g, tp, DefaultConfig(2))
		if err != nil {
			t.Fatal(err)
		}
		bu, err := Run(g, tp, DefaultConfig(2))
		if err != nil {
			t.Fatal(err)
		}
		wantFirst := -1
		for d := 0; d <= bu.Set.MaxDist && wantFirst < 0; d++ {
			for _, pi := range bu.Set.At(d) {
				if bu.Solutions[pi].Verts.Any() {
					wantFirst = d
					break
				}
			}
		}
		if td.FoundDist != wantFirst {
			t.Errorf("trial %d: top-down %d vs bottom-up %d", trial, td.FoundDist, wantFirst)
		}
	}
}

func TestFlipsWithEdgeLabelsAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(121))
	g := randomEdgeLabeledGraph(rng, 25, 70, 3, 2)
	tp, err := pattern.NewEdgeLabeled(
		[]pattern.Label{0, 1, 2},
		[]pattern.Edge{{I: 0, J: 1}, {I: 1, J: 2}},
		[]pattern.Label{1, 0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(0)
	cfg.CountMatches = true
	res, err := MatchFlips(g, tp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for fi, f := range res.Flips {
		if want := refmatch.Count(g, f.Template, false); res.Solutions[fi].MatchCount != want {
			t.Errorf("flip %d: count %d, want %d", fi, res.Solutions[fi].MatchCount, want)
		}
	}
}
