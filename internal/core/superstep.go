package core

import (
	"sort"

	"approxmatch/internal/bitvec"
	"approxmatch/internal/constraint"
	"approxmatch/internal/graph"
	"approxmatch/internal/pattern"
)

// This file implements the parallel (Jacobi-style) schedule of the
// constraint-checking kernels. Each fixpoint round becomes a superstep with
// BSP semantics: workers scan disjoint vertex partitions of the round-start
// State/candidateSet snapshot — which is frozen, because every elimination
// is recorded into a per-partition delta buffer instead of being applied —
// and a barrier merge applies all deltas before the next round begins.
//
// Eliminations are monotone (bits only ever go from set to clear) and every
// per-vertex verdict is computed from the snapshot, so the parallel
// schedule performs chaotic iteration of the same monotone operator as the
// sequential Gauss-Seidel loops and converges to the same greatest
// fixpoint. Intermediate trajectories differ — the sequential loops see
// same-round eliminations early — but the exact verification phase (and,
// for locally-sufficient templates, the final LCC fixpoint itself) makes
// `Rho`/`Solutions` bit-identical regardless of schedule. Counters are
// deterministic for any fixed worker count, and identical across all
// parallel worker counts N >= 1, because each vertex's per-round work
// depends only on the round-start snapshot, not on the partitioning.

// omegaDelta records candidate-mask bits to remove from ω(v) at the next
// barrier.
type omegaDelta struct {
	v    graph.VertexID
	mask uint64
}

// partDelta buffers one partition's eliminations during a superstep, plus
// its metrics and cancellation probe. Buffers are reused across rounds.
type partDelta struct {
	cc      *CancelCheck
	omega   []omegaDelta
	verts   []graph.VertexID
	slots   []int // directed adjacency slots to clear
	m       Metrics
	changed bool
}

// superstep coordinates the parallel rounds of one kernel call: fixed
// vertex partitions (edge-balanced by CSR offset), one delta buffer and one
// forked cancellation probe per partition.
type superstep struct {
	pool  *Pool
	s     *State
	omega candidateSet
	// cc is the coordinator's probe, polled at every barrier merge so
	// budget exhaustion is enforced at superstep granularity even when the
	// workers' forked probes are mid-batch.
	cc     *CancelCheck
	parts  []*partDelta
	bounds []int // len(parts)+1 partition boundaries over vertex IDs
}

func newSuperstep(pool *Pool, s *State, omega candidateSet, cc *CancelCheck) *superstep {
	w := pool.Workers()
	if w < 1 {
		w = 1
	}
	ss := &superstep{pool: pool, s: s, omega: omega, cc: cc}
	ss.parts = make([]*partDelta, w)
	for i := range ss.parts {
		ss.parts[i] = &partDelta{cc: cc.Fork()}
	}
	ss.bounds = partitionBounds(s.g, w)
	return ss
}

// partitionBounds splits the vertex ID space into parts contiguous ranges
// of roughly equal directed-slot (adjacency) volume, so skewed degree
// distributions don't serialize a superstep behind one overloaded worker.
func partitionBounds(g *graph.Graph, parts int) []int {
	n := g.NumVertices()
	total := int64(g.NumDirectedEdges())
	bounds := make([]int, parts+1)
	for i := 1; i < parts; i++ {
		target := total * int64(i) / int64(parts)
		lo := sort.Search(n, func(v int) bool { return g.AdjOffset(graph.VertexID(v)) >= target })
		if lo < bounds[i-1] {
			lo = bounds[i-1]
		}
		bounds[i] = lo
	}
	bounds[parts] = n
	return bounds
}

// run executes one superstep: fn scans vertex range [lo, hi) against the
// frozen round-start state and records eliminations into d. The call
// returns after every partition has finished (the barrier).
func (ss *superstep) run(fn func(d *partDelta, lo, hi int)) {
	ss.pool.run(len(ss.parts), func(part int) {
		d := ss.parts[part]
		d.omega = d.omega[:0]
		d.verts = d.verts[:0]
		d.slots = d.slots[:0]
		d.changed = false
		fn(d, ss.bounds[part], ss.bounds[part+1])
	})
}

// merge applies the recorded deltas on the caller goroutine, in partition
// order, and folds each partition's metrics into m. Partition order and
// per-partition scan order are both fixed, and bit clears are idempotent
// and commutative, so the merged state and counters are deterministic. It
// reports whether any partition eliminated anything.
func (ss *superstep) merge(m *Metrics) bool {
	ss.cc.Check()
	changed := false
	for _, d := range ss.parts {
		m.Add(&d.m)
		d.m = Metrics{}
		for _, od := range d.omega {
			ss.omega[od.v] &^= od.mask
		}
		for _, v := range d.verts {
			ss.s.DeactivateVertex(v)
		}
		for _, sl := range d.slots {
			ss.s.edges.Clear(sl)
		}
		changed = changed || d.changed
	}
	return changed
}

// deferEdgeAt records both directed slots of the undirected edge (v, i-th
// neighbor) for clearing at the barrier — the deferred analogue of
// State.DeactivateEdgeAt.
func (d *partDelta) deferEdgeAt(s *State, v graph.VertexID, i int) {
	u := s.g.Neighbors(v)[i]
	d.slots = append(d.slots, s.slot(v, i))
	if j := s.g.EdgeIndex(u, v); j >= 0 {
		d.slots = append(d.slots, s.slot(u, j))
	}
}

// maxCandidateSetPar is the superstep schedule of maxCandidateSet.
func maxCandidateSetPar(g *graph.Graph, t *pattern.Template, restrict *bitvec.Vector, pool *Pool, cc *CancelCheck, m *Metrics) *State {
	s := seedState(g, restrict)
	p := newCandsetPrep(t)
	omega := make(candidateSet, g.NumVertices())
	ss := newSuperstep(pool, s, omega, cc)

	// Init superstep: label filter. Each partition owns its vertex range,
	// so ω writes go straight in; deactivations are deferred. Vertices
	// outside a restriction mask start inactive and keep ω = 0.
	ss.run(func(d *partDelta, lo, hi int) {
		s.forEachActiveVertexIn(lo, hi, func(v graph.VertexID) {
			bits := p.labelBits[g.Label(v)] | p.wildBits
			omega[v] = bits
			if bits == 0 {
				d.verts = append(d.verts, v)
			}
		})
	})
	ss.merge(m)

	// Edge-filter superstep: label pairs and edge labels (both sides of an
	// edge may record the same slots; clears are idempotent).
	ss.run(func(d *partDelta, lo, hi int) {
		s.forEachActiveVertexIn(lo, hi, func(v graph.VertexID) {
			ns := g.Neighbors(v)
			base := int(g.AdjOffset(v))
			lv := g.Label(v)
			for i := range ns {
				if !s.edges.Get(base + i) {
					continue
				}
				if !p.pairs.Matches(lv, g.Label(ns[i])) ||
					(!p.elWild && !p.elSet[g.EdgeLabelAt(v, i)]) {
					d.deferEdgeAt(s, v, i)
				}
			}
		})
	})
	ss.merge(m)

	// Fixpoint: Jacobi vertex supersteps until no candidate is eliminated.
	for {
		ss.run(func(d *partDelta, lo, hi int) {
			s.forEachActiveVertexIn(lo, hi, func(v graph.VertexID) {
				d.cc.Tick()
				d.m.CandidateMessages += int64(s.ActiveDegree(v))
				// ω is frozen during the superstep, so the round-start
				// neighbor union serves every q (same values the sequential
				// schedule reads, since a vertex never borders itself).
				var nbrUnion uint64
				s.ForEachActiveNeighbor(v, func(_ int, w graph.VertexID) {
					nbrUnion |= omega[w]
				})
				var rm uint64
				for q := 0; q < t.NumVertices(); q++ {
					if omega.has(v, q) && !candidateViable(s, omega, p.prof, v, q, p.single, nbrUnion) {
						rm |= 1 << uint(q)
					}
				}
				if rm != 0 {
					d.omega = append(d.omega, omegaDelta{v, rm})
					d.changed = true
					if omega[v]&^rm == 0 {
						d.verts = append(d.verts, v)
					}
				}
			})
		})
		if !ss.merge(m) {
			return s
		}
	}
}

// lccPar is the superstep schedule of lcc: per iteration, a vertex
// superstep and an edge superstep, each followed by a barrier merge —
// mirroring the sequential phase structure of Alg. 4.
func lccPar(s *State, omega candidateSet, prof *localProfile, pool *Pool, cc *CancelCheck, m *Metrics) bool {
	t := prof.Template()
	ss := newSuperstep(pool, s, omega, cc)
	eliminatedAny := false
	for {
		m.LCCIterations++
		ss.run(func(d *partDelta, lo, hi int) {
			s.forEachActiveVertexIn(lo, hi, func(v graph.VertexID) {
				d.cc.Tick()
				d.m.LCCMessages += int64(s.ActiveDegree(v))
				var rm uint64
				for q := 0; q < t.NumVertices(); q++ {
					if omega.has(v, q) && !vertexSatisfiesLocal(s, omega, prof, v, q) {
						rm |= 1 << uint(q)
					}
				}
				if rm != 0 {
					d.omega = append(d.omega, omegaDelta{v, rm})
					d.changed = true
					if omega[v]&^rm == 0 {
						d.verts = append(d.verts, v)
					}
				}
			})
		})
		changed := ss.merge(m)
		ss.run(func(d *partDelta, lo, hi int) {
			s.forEachActiveVertexIn(lo, hi, func(v graph.VertexID) {
				d.cc.Tick()
				ns := s.g.Neighbors(v)
				base := int(s.g.AdjOffset(v))
				for i, u := range ns {
					if !s.edges.Get(base+i) || !s.verts.Get(int(u)) {
						continue
					}
					d.m.LCCMessages++
					if !edgeSupported(omega, prof, v, u) {
						d.deferEdgeAt(s, v, i)
						d.changed = true
					}
				}
			})
		})
		if ss.merge(m) {
			changed = true
		}
		if !changed {
			return eliminatedAny
		}
		eliminatedAny = true
	}
}

// nlccPar is the superstep schedule of the nlcc initiator scan: the walks
// themselves stay per-vertex and read only the frozen snapshot; the shared
// work-recycling Cache is already safe for concurrent use, and its keys are
// per (constraint, initiator vertex), so in-scan records never influence
// another initiator's verdict.
func nlccPar(s *State, omega candidateSet, t *pattern.Template, w *constraint.Walk, cache *Cache, pool *Pool, cc *CancelCheck, m *Metrics) bool {
	q0 := w.Seq[0]
	ss := newSuperstep(pool, s, omega, cc)
	ss.run(func(d *partDelta, lo, hi int) {
		s.forEachActiveVertexIn(lo, hi, func(v graph.VertexID) {
			d.cc.Tick()
			if !omega.has(v, q0) {
				return
			}
			if cache != nil && cache.Satisfied(w.ID, s.origID(v)) {
				d.m.CacheHits++
				return
			}
			d.m.TokensInitiated++
			if walkFrom(s, omega, t, w, v, d.cc, &d.m) {
				if cache != nil {
					cache.Record(w.ID, s.origID(v))
				}
				return
			}
			d.omega = append(d.omega, omegaDelta{v, 1 << uint(q0)})
			d.changed = true
			if omega[v]&^(1<<uint(q0)) == 0 {
				d.verts = append(d.verts, v)
			}
		})
	})
	return ss.merge(m)
}
