package core

import (
	"context"
	"fmt"
	"time"

	"approxmatch/internal/bitvec"
	"approxmatch/internal/constraint"
	"approxmatch/internal/graph"
	"approxmatch/internal/pattern"
	"approxmatch/internal/prototype"
)

// Config controls the pipeline's optimizations; every field corresponds to a
// design choice the paper evaluates, so each can be toggled for ablation.
type Config struct {
	// EditDistance is k, the maximum number of edge deletions.
	EditDistance int
	// WorkRecycling enables the NLCC result cache shared across prototypes
	// (Obs. 2; Fig. 8 scenario Y).
	WorkRecycling bool
	// FrequencyOrdering enables label-frequency-based constraint ordering
	// and walk orientation (§5.4, Fig. 9b top).
	FrequencyOrdering bool
	// LabelPairRefinement keeps, in the containment step, only candidate
	// edges whose label pair matches a removable template edge instead of
	// every candidate edge between active vertices (Obs. 1's edge bound).
	LabelPairRefinement bool
	// CountMatches computes per-prototype match counts during the search.
	CountMatches bool
	// Workers is the size of the shared worker pool the constraint-checking
	// kernels (candidate-set fixpoint, LCC phases, NLCC initiator scans) run
	// on, with superstep (BSP) semantics. 0 keeps the sequential reference
	// schedule. Rho and Solutions are bit-identical for every value;
	// counters are deterministic per value and identical across all
	// Workers >= 1.
	Workers int
	// CompactBelow triggers physical search-space reduction: when a level
	// state's active fraction (vertices plus directed slots) drops below
	// this threshold, the engine extracts a compacted graph.View and
	// searches that instead (see CompactState). 0 disables compaction — the
	// ablation path with today's exact behavior. Results are identical
	// either way.
	CompactBelow float64
	// Budget bounds the run's work, auxiliary memory and wall time; the
	// zero value is unlimited. On exhaustion the bottom-up pipeline stops
	// between edit-distance levels and returns a Partial result alongside an
	// ErrBudgetExhausted error — completed levels stay exact, unfinished
	// ones are reported unknown (see Result.Partial). A budget already
	// attached to the context via WithBudget takes precedence.
	Budget Budget
	// CacheBytes caps the NLCC work-recycling cache's memory; 0 is
	// unbounded (today's behavior). When full, least-recently-used entries
	// are evicted — eviction costs recomputation only, never correctness.
	CacheBytes int64
	// SharedCache, when non-nil, replaces the run's private NLCC
	// work-recycling cache with a caller-owned store that outlives the run,
	// so constraint walks recycle across queries, not just across
	// prototypes of one query (Obs. 2 lifted over the query boundary).
	// Walk IDs are label-canonical, so foreign entries only ever describe
	// the same constraint; in any case cache content is correctness-neutral
	// — the exact verification phase fixes precision, eviction only costs
	// recomputation. Requires WorkRecycling; the store must have been built
	// for the same background graph (vertex-id space). CacheBytes is
	// ignored — the store carries its own cap.
	SharedCache *Cache
	// NoSymmetry disables automorphism symmetry breaking in the match
	// counting/enumeration kernels (ablation). The optimized path explores
	// one representative per match orbit and restores the full count and
	// mapping set by the orbit size, so counts and solutions are identical
	// either way; only the enumeration order and EnumExpansions differ.
	NoSymmetry bool
	// NoGuards disables failure-guard pruning in the backtracking verifier
	// and enumerator (ablation). Guards only skip subtrees proven
	// matchless, so Rho, solutions and counts are bit-identical either way.
	NoGuards bool
	// Restrict, when non-nil, seeds the pipeline's active set from the
	// given vertex mask (length NumVertices) instead of the full graph: the
	// run computes exactly the matches of the subgraph induced by the
	// mask's vertices. The incremental maintenance path (RunIncremental)
	// uses this to confine re-matching to the dirty region around a graph
	// delta; a nil Restrict is today's full-graph behavior, bit-identical
	// counters included.
	Restrict *bitvec.Vector
}

// DefaultConfig returns the fully optimized configuration for edit-distance
// k.
func DefaultConfig(k int) Config {
	return Config{
		EditDistance:        k,
		WorkRecycling:       true,
		FrequencyOrdering:   true,
		LabelPairRefinement: true,
		CompactBelow:        0.5,
	}
}

// kernel maps the public ablation knobs onto the backtracking kernels'
// option set.
func (c *Config) kernel() kernelOpts {
	return kernelOpts{noSymmetry: c.NoSymmetry, noGuards: c.NoGuards}
}

// Solution is the solution subgraph G*_{δ,p} of one prototype (Def. 2):
// exactly the vertices and directed edge slots participating in at least one
// exact match, plus the match count when requested.
type Solution struct {
	// Proto is the prototype index within the Set.
	Proto int
	// Verts has a bit per background vertex.
	Verts *bitvec.Vector
	// Edges has a bit per directed adjacency slot.
	Edges *bitvec.Vector
	// MatchCount is the number of distinct matches, or -1 when not counted.
	MatchCount int64
}

// Result is the output of a pipeline run.
type Result struct {
	// Graph and Template echo the inputs.
	Graph    *graph.Graph
	Template *pattern.Template
	// Set is the generated prototype set P_k.
	Set *prototype.Set
	// Rho is the per-vertex match vector matrix: Rho[v][p] is set when v
	// participates in at least one match of prototype p (Def. 3).
	Rho *bitvec.Matrix
	// Solutions holds one Solution per prototype, indexed like Set.Protos.
	Solutions []*Solution
	// Candidate is the maximum candidate set M*.
	Candidate *State
	// Metrics aggregates the logical message counts.
	Metrics Metrics
	// Levels records per-edit-distance statistics, bottom-up order. On a
	// partial run it covers every level: completed ones with their real
	// stats and Complete set, unfinished ones as Complete=false
	// placeholders.
	Levels []LevelStats
	// Partial reports that the run's Budget was exhausted before all levels
	// completed. Per the containment rule (Obs. 1) each completed level is
	// computed only from the previous completed level, so the prototype
	// columns of levels with Complete set are exact — bit-identical to an
	// unbudgeted run's, 100% precision and recall — while the columns of
	// unfinished prototypes are all-zero and must be treated as unknown,
	// not as non-matches. Candidate may be nil when the budget died during
	// candidate-set generation.
	Partial bool
}

// CompletedLevels returns how many edit-distance levels finished.
func (r *Result) CompletedLevels() int {
	n := 0
	for _, l := range r.Levels {
		if l.Complete {
			n++
		}
	}
	return n
}

// engine carries the per-run machinery shared by the bottom-up and top-down
// modes.
type engine struct {
	g       *graph.Graph
	cfg     Config
	set     *prototype.Set
	cache   *Cache
	freq    constraint.LabelFreq
	metrics Metrics
	// cc is the run's cancellation probe (nil when the run's context can
	// never fire). Parallel searches Fork their own; this one serves the
	// sequential path.
	cc *CancelCheck
	// walks caches, per prototype index, the oriented/ordered pruning
	// walks and the local profile.
	walks    map[int][]*constraint.Walk
	profiles map[int]*localProfile
	// pool is the run-wide kernel worker pool (nil = sequential kernels),
	// shared by every prototype search of the run — including concurrent
	// ones — and closed by the run entry points via close().
	pool *Pool
}

func newEngine(g *graph.Graph, set *prototype.Set, cfg Config) *engine {
	e := &engine{
		g:        g,
		cfg:      cfg,
		set:      set,
		walks:    make(map[int][]*constraint.Walk),
		profiles: make(map[int]*localProfile),
	}
	if cfg.WorkRecycling {
		if cfg.SharedCache != nil {
			e.cache = cfg.SharedCache
		} else {
			e.cache = NewCacheBytes(g.NumVertices(), cfg.CacheBytes)
		}
	}
	if cfg.FrequencyOrdering {
		e.freq = make(constraint.LabelFreq)
		for l, c := range g.LabelFrequencies() {
			e.freq[l] = c
		}
		// The wildcard "label" occurs at every vertex.
		e.freq[pattern.Wildcard] = int64(g.NumVertices())
	}
	e.pool = NewPool(cfg.Workers)
	return e
}

// close releases the engine's worker pool.
func (e *engine) close() { e.pool.Close() }

func (e *engine) walksFor(pi int) []*constraint.Walk {
	if ws, ok := e.walks[pi]; ok {
		return ws
	}
	ws := preparedWalks(e.g, e.set.Protos[pi].Template, e.freq)
	e.walks[pi] = ws
	return ws
}

func (e *engine) profileFor(pi int) *localProfile {
	if p, ok := e.profiles[pi]; ok {
		return p
	}
	p := buildLocalProfile(e.set.Protos[pi].Template)
	e.profiles[pi] = p
	return p
}

// searchPrototype implements Alg. 2 for prototype pi: LCC fixpoint,
// interleaved NLCC pruning walks (with re-LCC after eliminations), then the
// exact verification phase. The input level state is not modified.
func (e *engine) searchPrototype(level *State, pi int) *Solution {
	t := e.set.Protos[pi].Template
	sol := searchTemplateOn(level, t, e.profileFor(pi), e.walksFor(pi), e.cache, e.pool, e.cc, e.cfg.CountMatches, &e.metrics, e.cfg.kernel())
	sol.Proto = pi
	return sol
}

// cleanEdges returns the active-edge vector restricted to slots whose both
// endpoints are active.
func cleanEdges(s *State) *bitvec.Vector {
	out := bitvec.New(s.g.NumDirectedEdges())
	s.ForEachActiveVertex(func(v graph.VertexID) {
		ns := s.g.Neighbors(v)
		base := int(s.g.AdjOffset(v))
		for i, u := range ns {
			if s.edges.Get(base+i) && s.verts.Get(int(u)) {
				out.Set(base + i)
			}
		}
	})
	return out
}

// Run executes the bottom-up approximate-matching pipeline (Alg. 1): it
// generates P_k, computes the maximum candidate set, then iterates from the
// furthest edit distance toward 0, searching each prototype within the
// union of the previous level's solution subgraphs per the containment rule.
func Run(g *graph.Graph, t *pattern.Template, cfg Config) (*Result, error) {
	return RunContext(context.Background(), g, t, cfg)
}

// RunContext is Run honoring ctx: cancellation and deadline expiry are
// observed by cheap periodic probes inside the candidate-set fixpoint, the
// LCC fixpoint, the NLCC walk loop and the verification phase, and the run
// returns ctx.Err(). When ctx never fires, the results are identical to
// Run's.
//
// When a budget governs the run (Config.Budget or WithBudget on ctx) and it
// is exhausted mid-pipeline, RunContext returns BOTH a non-nil partial
// result and a non-nil error matching ErrBudgetExhausted — check
// Result.Partial / errors.Is before discarding either.
func RunContext(ctx context.Context, g *graph.Graph, t *pattern.Template, cfg Config) (*Result, error) {
	ctx = withConfigBudget(ctx, cfg.Budget)
	cc := NewCancelCheck(ctx)
	var res *Result
	err := func() (err error) {
		defer RecoverCancel(&err)
		cc.Check()
		res, err = runBottomUp(cc, g, t, cfg)
		return err
	}()
	if err != nil && (res == nil || !res.Partial) {
		return nil, err
	}
	return res, err
}

func runBottomUp(cc *CancelCheck, g *graph.Graph, t *pattern.Template, cfg Config) (*Result, error) {
	if cfg.Restrict != nil && cfg.Restrict.Len() != g.NumVertices() {
		return nil, fmt.Errorf("core: restrict mask has %d bits for %d vertices",
			cfg.Restrict.Len(), g.NumVertices())
	}
	set, err := prototype.Generate(t, cfg.EditDistance)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	e := newEngine(g, set, cfg)
	defer e.close()
	e.cc = cc

	res := &Result{
		Graph:     g,
		Template:  t,
		Set:       set,
		Rho:       bitvec.NewMatrix(g.NumVertices(), set.Count()),
		Solutions: make([]*Solution, set.Count()),
	}
	// Candidate-set generation runs under the budget too; exhaustion there
	// yields a Partial result with zero completed levels (Candidate nil).
	if err := func() (err error) {
		defer recoverBudgetAbort(&err)
		res.Candidate = maxCandidateSet(g, t, e.cfg.Restrict, e.pool, cc, &e.metrics)
		return nil
	}(); err != nil {
		return e.finishPartial(res, err)
	}

	level := res.Candidate
	for dist := set.MaxDist; dist >= 0; dist-- {
		next, err := e.runLevel(res, level, dist, cc)
		if err != nil {
			return e.finishPartial(res, err)
		}
		level = next
	}
	e.foldCache()
	res.Metrics = e.metrics
	return res, nil
}

// runLevel searches every prototype of one edit-distance level and commits
// the results — solutions, Rho columns, level stats and the next level's
// containment state — only once the whole level has completed. A budget
// abort mid-level therefore leaves res exactly as it was before the level
// started (the level's half-computed solutions are discarded), which is
// what makes the Partial contract airtight: committed levels are always
// whole levels.
func (e *engine) runLevel(res *Result, level *State, dist int, cc *CancelCheck) (next *State, err error) {
	defer recoverBudgetAbort(&err)
	cc.Check()
	set := res.Set
	start := time.Now()
	frac := ActiveFraction(level)
	searchLevel := e.compact(level)
	sols := make([]*Solution, 0, set.CountAt(dist))
	for _, pi := range set.At(dist) {
		// The containment rule only covers prototypes derivable into
		// the previous level: a (rare) childless prototype — every
		// legal removal disconnects it — must be searched on the full
		// candidate set.
		searchState := searchLevel
		if dist < set.MaxDist && len(set.Protos[pi].Children) == 0 {
			searchState = res.Candidate
		}
		sols = append(sols, e.searchPrototype(searchState, pi))
	}
	return e.commitLevel(res, sols, dist, frac, searchLevel.View() != nil, start, cc), nil
}

// commitLevel publishes a completed level's solutions and stats into res and
// builds the next level's containment state (nil at δ=0).
func (e *engine) commitLevel(res *Result, sols []*Solution, dist int, frac float64, compacted bool, start time.Time, cc *CancelCheck) *State {
	unionVerts := bitvec.New(res.Graph.NumVertices())
	unionEdges := bitvec.New(res.Graph.NumDirectedEdges())
	var labels int64
	for _, sol := range sols {
		res.Solutions[sol.Proto] = sol
		unionVerts.Or(sol.Verts)
		unionEdges.Or(sol.Edges)
		sol.Verts.ForEach(func(v int) {
			res.Rho.Set(v, sol.Proto)
			labels++
		})
	}
	res.Levels = append(res.Levels, LevelStats{
		Dist:            dist,
		Prototypes:      len(sols),
		ActiveVertices:  unionVerts.Count(),
		LabelsGenerated: labels,
		Duration:        time.Since(start),
		ActiveFraction:  frac,
		Compacted:       compacted,
		Complete:        true,
	})
	if dist > 0 {
		return e.containmentState(cc, res.Candidate, unionVerts, unionEdges, dist)
	}
	return nil
}

// finishPartial marks res partial, appends Complete=false placeholders for
// every level that did not finish, folds the metrics gathered so far (so
// /metrics accounting survives the abort) and returns res together with the
// budget-exhaustion error.
func (e *engine) finishPartial(res *Result, cause error) (*Result, error) {
	res.Partial = true
	next := res.Set.MaxDist
	if n := len(res.Levels); n > 0 {
		next = res.Levels[n-1].Dist - 1
	}
	for dist := next; dist >= 0; dist-- {
		res.Levels = append(res.Levels, LevelStats{Dist: dist, Prototypes: res.Set.CountAt(dist)})
	}
	e.foldCache()
	res.Metrics = e.metrics
	return res, cause
}

// foldCache folds the work-recycling cache's eviction count into the run
// metrics; called once per run, on both the full and partial paths. A
// caller-owned SharedCache is skipped: its counters are cumulative across
// queries, so folding them here would double-count every prior query's
// evictions into this run's metrics — the store surfaces its own totals.
func (e *engine) foldCache() {
	if e.cache != nil && e.cache != e.cfg.SharedCache {
		e.metrics.CacheEvictions += e.cache.Evictions()
	}
}

// containmentState builds the search state for level dist-1 from the union
// of level-dist solution subgraphs (Obs. 1): union vertices, union edges,
// plus candidate-set edges between union vertices whose label pair matches
// an edge removable at this level (or every candidate edge when the
// refinement is disabled). The fresh state's bitvecs are charged against
// cc's byte budget.
func (e *engine) containmentState(cc *CancelCheck, candidate *State, unionVerts, unionEdges *bitvec.Vector, dist int) *State {
	cc.ChargeBytes(int64(e.g.NumVertices()+e.g.NumDirectedEdges()) / 8)
	s := NewEmptyState(e.g)
	s.verts.Or(unionVerts)
	s.edges.Or(unionEdges)

	var pairs *pattern.PairSet
	if e.cfg.LabelPairRefinement {
		pairs = e.set.RemovedLabelPairs(dist)
	}
	s.ForEachActiveVertex(func(v graph.VertexID) {
		ns := e.g.Neighbors(v)
		base := int(e.g.AdjOffset(v))
		lv := e.g.Label(v)
		for i, u := range ns {
			if !candidate.edges.Get(base+i) || !unionVerts.Get(int(u)) {
				continue
			}
			if pairs != nil && !pairs.Matches(lv, e.g.Label(u)) {
				continue
			}
			s.edges.Set(base + i)
		}
	})
	return s
}

// MatchVector returns the prototype indices vertex v matches.
func (r *Result) MatchVector(v graph.VertexID) []int {
	var out []int
	r.Rho.RowForEach(int(v), func(c int) { out = append(out, c) })
	return out
}

// UnionVertices returns the vertices participating in at least one match of
// any prototype.
func (r *Result) UnionVertices() *bitvec.Vector {
	out := bitvec.New(r.Graph.NumVertices())
	for _, sol := range r.Solutions {
		if sol != nil {
			out.Or(sol.Verts)
		}
	}
	return out
}

// LabelsGenerated returns the total number of (vertex, prototype) labels.
func (r *Result) LabelsGenerated() int64 {
	var total int64
	for _, l := range r.Levels {
		total += l.LabelsGenerated
	}
	return total
}

// TotalMatchCount sums per-prototype match counts; it returns -1 when the
// run did not count matches.
func (r *Result) TotalMatchCount() int64 {
	var total int64
	for _, sol := range r.Solutions {
		if sol == nil {
			continue
		}
		if sol.MatchCount < 0 {
			return -1
		}
		total += sol.MatchCount
	}
	return total
}

// SolutionFor returns the solution subgraph of prototype pi.
func (r *Result) SolutionFor(pi int) *Solution { return r.Solutions[pi] }

// SolutionState reconstructs a State from a prototype's solution subgraph,
// for enumeration.
func (r *Result) SolutionState(pi int) *State {
	s := NewEmptyState(r.Graph)
	sol := r.Solutions[pi]
	s.verts.Or(sol.Verts)
	s.edges.Or(sol.Edges)
	return s
}

// EnumerateMatches calls fn for every exact match of prototype pi; fn
// returns false to stop. The slice passed to fn is reused. Vertices are
// reported as external ids: on a degree-relabeled graph the kernel's
// internal ids are translated before fn sees them, so enumeration output is
// invariant under relabeling.
func (r *Result) EnumerateMatches(pi int, fn func([]graph.VertexID) bool) {
	s := r.SolutionState(pi)
	t := r.Set.Protos[pi].Template
	omega := initCandidates(s, t)
	var m Metrics
	if !r.Graph.Relabeled() {
		enumerateMatches(s, omega, t, nil, &m, kernelOpts{}, fn)
		return
	}
	ext := make([]graph.VertexID, t.NumVertices())
	enumerateMatches(s, omega, t, nil, &m, kernelOpts{}, func(match []graph.VertexID) bool {
		for i, v := range match {
			ext[i] = r.Graph.ExternalID(v)
		}
		return fn(ext)
	})
}

// CountMatchesOf enumerates and counts matches of prototype pi (independent
// of Config.CountMatches).
func (r *Result) CountMatchesOf(pi int) int64 {
	var count int64
	r.EnumerateMatches(pi, func([]graph.VertexID) bool {
		count++
		return true
	})
	return count
}
