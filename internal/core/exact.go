package core

import (
	"time"

	"approxmatch/internal/constraint"
	"approxmatch/internal/graph"
	"approxmatch/internal/pattern"
)

// ExactMatch runs the exact constraint-checking pipeline for a single
// template t on g: candidate-set generation, LCC, NLCC and final
// verification — the PruneJuice-style exact search that both the naïve
// baseline (§5.3) and the per-prototype search build on. No state is shared
// with other searches: no recycling cache, no containment.
func ExactMatch(g *graph.Graph, t *pattern.Template, freqOrdering, countMatches bool) (*Solution, Metrics) {
	var m Metrics
	s := maxCandidateSet(g, t, nil, nil, nil, &m)
	var freq constraint.LabelFreq
	if freqOrdering {
		freq = make(constraint.LabelFreq)
		for l, c := range g.LabelFrequencies() {
			freq[l] = c
		}
		freq[pattern.Wildcard] = int64(g.NumVertices())
	}
	prof := buildLocalProfile(t)
	walks := preparedWalks(g, t, freq)
	sol := searchTemplateOn(s, t, prof, walks, nil, nil, nil, countMatches, &m, kernelOpts{})
	return sol, m
}

// preparedWalks generates, orients and orders the pruning walks for t:
// orientation picks cheap initiators by label frequency, and ordering uses
// the expected-token-traffic estimator so cheap walks prune before
// expensive ones run. A nil frequency map disables both.
func preparedWalks(g *graph.Graph, t *pattern.Template, freq constraint.LabelFreq) []*constraint.Walk {
	pruning, _ := constraint.Generate(t)
	if freq == nil {
		constraint.OrderWalks(t, pruning, nil)
		return pruning
	}
	pruning = constraint.OrientAll(t, pruning, freq)
	avg := 0.0
	if n := g.NumVertices(); n > 0 {
		avg = float64(2*g.NumEdges()) / float64(n)
	}
	ce := constraint.NewCostEstimator(int64(g.NumVertices()), avg, freq)
	constraint.OrderWalksEstimated(t, pruning, ce)
	return pruning
}

// searchTemplateOn implements Alg. 2 for one template on a given starting
// state (which is not modified): LCC fixpoint, NLCC pruning walks with
// re-LCC after eliminations, then exact final verification. A non-nil pool
// runs the pruning kernels on the superstep schedule; the verification and
// counting phases stay on the calling goroutine.
func searchTemplateOn(level *State, t *pattern.Template, prof *localProfile, walks []*constraint.Walk, cache *Cache, pool *Pool, cc *CancelCheck, count bool, m *Metrics, opts kernelOpts) *Solution {
	m.PrototypesSearched++
	// Charge the search's two big allocations — the state clone and the
	// candidate masks — against the run's byte budget before making them.
	cc.ChargeBytes(level.StateBytes() + 8*int64(level.g.NumVertices()))
	s := level.Clone()
	omega := initCandidates(s, t)
	phase := time.Now()
	lcc(s, omega, prof, pool, cc, m)
	m.LCCTime += time.Since(phase)

	for _, w := range walks {
		cc.Tick()
		phase = time.Now()
		changed := nlcc(s, omega, t, w, cache, pool, cc, m)
		m.NLCCTime += time.Since(phase)
		if changed {
			phase = time.Now()
			lcc(s, omega, prof, pool, cc, m)
			m.LCCTime += time.Since(phase)
		}
	}

	sol := &Solution{Proto: -1, MatchCount: -1}
	phase = time.Now()
	if constraint.Analyze(t).LocalSufficient {
		sol.Edges = cleanEdges(s)
		sol.Verts = s.VertexBits().Clone()
	} else {
		sol.Edges = verifyExact(s, omega, t, cc, m, opts)
		sol.Verts = s.VertexBits().Clone()
	}
	m.VerifyTime += time.Since(phase)
	if count {
		sol.MatchCount = countMatches(s, omega, t, cc, m, opts)
	}
	// A compacted search produced view-local ids; emit original ids so the
	// public results are independent of whether compaction fired. Matches
	// biject between the spaces, so the count needs no adjustment.
	if vw := s.view; vw != nil {
		translateSolution(sol, vw)
	}
	return sol
}
