package core

import (
	"math/rand"
	"testing"

	"approxmatch/internal/graph"
	"approxmatch/internal/pattern"
	"approxmatch/internal/refmatch"
)

func TestWildcardSimple(t *testing.T) {
	// Template: A - * - C path; the wildcard middle accepts any label.
	b := graph.NewBuilder(6)
	b.SetLabel(0, 1)
	b.SetLabel(1, 9) // wildcard-matched middle
	b.SetLabel(2, 3)
	b.SetLabel(3, 1)
	b.SetLabel(4, 5)
	b.SetLabel(5, 3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(3, 4)
	b.AddEdge(4, 5)
	g := b.Build()
	tp := pattern.MustNew([]pattern.Label{1, pattern.Wildcard, 3},
		[]pattern.Edge{{I: 0, J: 1}, {I: 1, J: 2}})
	cfg := DefaultConfig(0)
	cfg.CountMatches = true
	res, err := Run(g, tp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Both paths match regardless of middle label.
	if res.Solutions[0].MatchCount != 2 {
		t.Fatalf("count = %d, want 2", res.Solutions[0].MatchCount)
	}
	for v := 0; v < 6; v++ {
		if !res.Solutions[0].Verts.Get(v) {
			t.Errorf("vertex %d should participate", v)
		}
	}
}

func TestWildcardAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 12; trial++ {
		g := randomGraph(rng, 25, 70, 3)
		tp := randomTemplate(rng, 4, 3)
		// Replace a random vertex's label with the wildcard.
		labels := append([]pattern.Label(nil), tp.Labels()...)
		labels[rng.Intn(len(labels))] = pattern.Wildcard
		wtp, err := pattern.New(labels, tp.Edges())
		if err != nil {
			t.Fatal(err)
		}
		checkAgainstOracle(t, g, wtp, DefaultConfig(rng.Intn(2)))
	}
}

func TestAllWildcardTemplateIsTopologyOnly(t *testing.T) {
	// All-wildcard triangle behaves exactly like an unlabeled triangle.
	rng := rand.New(rand.NewSource(72))
	g := randomGraph(rng, 20, 60, 4)
	wtp := pattern.MustNew(
		[]pattern.Label{pattern.Wildcard, pattern.Wildcard, pattern.Wildcard},
		[]pattern.Edge{{I: 0, J: 1}, {I: 1, J: 2}, {I: 0, J: 2}})
	cfg := DefaultConfig(0)
	cfg.CountMatches = true
	res, err := Run(g, wtp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	unl := pattern.MustNew(make([]pattern.Label, 3),
		[]pattern.Edge{{I: 0, J: 1}, {I: 1, J: 2}, {I: 0, J: 2}})
	gUnl := graph.FromEdges(make([]graph.Label, g.NumVertices()), g.Edges())
	if want := refmatch.Count(gUnl, unl, false); res.Solutions[0].MatchCount != want {
		t.Errorf("wildcard triangle count %d, want %d", res.Solutions[0].MatchCount, want)
	}
}

func TestWildcardPairSet(t *testing.T) {
	ps := pattern.NewPairSet()
	ps.Add(1, 2)
	ps.Add(pattern.Wildcard, 5)
	if !ps.Matches(1, 2) || !ps.Matches(2, 1) {
		t.Error("exact pair not matched")
	}
	if ps.Matches(1, 3) {
		t.Error("absent pair matched")
	}
	if !ps.Matches(5, 9) || !ps.Matches(9, 5) {
		t.Error("wildcard-partner pair not matched")
	}
	if ps.Matches(9, 9) {
		t.Error("unrelated pair matched")
	}
	ps.Add(pattern.Wildcard, pattern.Wildcard)
	if !ps.Matches(9, 9) {
		t.Error("any-any pair not matched")
	}
	if pattern.NewPairSet().Matches(0, 0) {
		t.Error("empty set matched")
	}
	if !pattern.NewPairSet().Empty() {
		t.Error("empty set not empty")
	}
}
