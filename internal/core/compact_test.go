package core

import (
	"math/rand"
	"testing"

	"approxmatch/internal/graph"
	"approxmatch/internal/rmat"
)

// forceCompact is a threshold above every possible active fraction, so
// CompactState always extracts a view — the adversarial setting of the
// compaction differential tests.
const forceCompact = 1.1

// TestCompactionDifferentialRMAT is the compaction-invisibility property
// test: on seeded R-MAT graphs with randomized templates, compaction off
// (CompactBelow=0), the default threshold, and compaction forced at every
// level must produce bit-identical Rho, Solutions and match counts, for
// Workers in {0, 1, 3} — and identical schedule-sensitive work counters,
// because the monotone remap makes a compacted search step-isomorphic to
// the original one.
func TestCompactionDifferentialRMAT(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 8; trial++ {
		p := rmat.Graph500(7, int64(3000+trial))
		p.EdgeFactor = 4
		g := rmat.Generate(p)
		tp := randomDecoratedTemplate(rng, g)
		for _, workers := range []int{0, 1, 3} {
			cfg := DefaultConfig(1 + trial%2)
			cfg.CountMatches = true
			cfg.Workers = workers
			cfg.CompactBelow = 0
			want, err := Run(g, tp, cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, threshold := range []float64{0.5, forceCompact} {
				ccfg := cfg
				ccfg.CompactBelow = threshold
				got, err := Run(g, tp, ccfg)
				if err != nil {
					t.Fatal(err)
				}
				assertSameResult(t, want, got, tp.String())
				wantC, gotC := counterVector(&want.Metrics), counterVector(&got.Metrics)
				for i := range wantC {
					if wantC[i] != gotC[i] {
						t.Errorf("%v workers=%d threshold=%v: counter %d = %d, want %d",
							tp, workers, threshold, i, gotC[i], wantC[i])
					}
				}
				if threshold == forceCompact && got.Metrics.Compactions == 0 {
					t.Errorf("%v workers=%d: forced compaction never fired", tp, workers)
				}
			}
		}
	}
}

// TestCompactionDifferentialEdgeLabels covers the edge-labeled corner: the
// view must carry per-slot edge labels through the remap.
func TestCompactionDifferentialEdgeLabels(t *testing.T) {
	rng := rand.New(rand.NewSource(2025))
	for trial := 0; trial < 6; trial++ {
		g := randomEdgeLabeledGraph(rng, 40, 120, 3, 2)
		tp := randomEdgeLabeledTemplate(rng, 4, 3, 2)
		cfg := DefaultConfig(trial % 3)
		cfg.CountMatches = true
		cfg.CompactBelow = 0
		want, err := Run(g, tp, cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.CompactBelow = forceCompact
		got, err := Run(g, tp, cfg)
		if err != nil {
			t.Fatal(err)
		}
		assertSameResult(t, want, got, tp.String())
	}
}

// TestCompactionDifferentialModes runs the same invisibility check through
// the other pipeline entry points: RunParallel, RunTopDown and MatchFlips.
func TestCompactionDifferentialModes(t *testing.T) {
	rng := rand.New(rand.NewSource(2026))
	g := randomGraph(rng, 50, 140, 3)
	tp := randomTemplate(rng, 4, 3)

	off := DefaultConfig(2)
	off.CountMatches = true
	off.CompactBelow = 0
	on := off
	on.CompactBelow = forceCompact

	wantPar, err := RunParallel(g, tp, off, 3)
	if err != nil {
		t.Fatal(err)
	}
	gotPar, err := RunParallel(g, tp, on, 3)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, wantPar, gotPar, "RunParallel")

	wantTD, err := RunTopDown(g, tp, off)
	if err != nil {
		t.Fatal(err)
	}
	gotTD, err := RunTopDown(g, tp, on)
	if err != nil {
		t.Fatal(err)
	}
	if wantTD.FoundDist != gotTD.FoundDist {
		t.Fatalf("top-down FoundDist %d vs %d", wantTD.FoundDist, gotTD.FoundDist)
	}
	if !wantTD.MatchingVertices.Equal(gotTD.MatchingVertices) {
		t.Error("top-down MatchingVertices differ")
	}

	wantFl, err := MatchFlips(g, tp, off)
	if err != nil {
		t.Fatal(err)
	}
	gotFl, err := MatchFlips(g, tp, on)
	if err != nil {
		t.Fatal(err)
	}
	if !wantFl.Base.Verts.Equal(gotFl.Base.Verts) || !wantFl.Base.Edges.Equal(gotFl.Base.Edges) {
		t.Error("flips base solution differs")
	}
	if wantFl.TotalMatchCount() != gotFl.TotalMatchCount() {
		t.Errorf("flips counts %d vs %d", wantFl.TotalMatchCount(), gotFl.TotalMatchCount())
	}
	for i := range wantFl.Solutions {
		if !wantFl.Solutions[i].Verts.Equal(gotFl.Solutions[i].Verts) {
			t.Errorf("flip %d vertex bits differ", i)
		}
	}
}

// TestCompactStateMechanics pins the CompactState contract: disabled and
// already-compacted states pass through; a fired compaction yields a
// fully-active view state, slot symmetry, and the accounting counters.
func TestCompactStateMechanics(t *testing.T) {
	rng := rand.New(rand.NewSource(2027))
	g := randomGraph(rng, 60, 150, 3)
	s := NewFullState(g)
	// Prune more than half the graph so the 0.5 default would fire too.
	for v := 0; v < 40; v++ {
		s.DeactivateVertex(graph.VertexID(v))
	}
	var m Metrics

	if got := CompactState(s, 0, &m); got != s {
		t.Fatal("threshold 0 must be a no-op")
	}
	if m.CompactionChecks != 0 {
		t.Fatal("disabled compaction must not count checks")
	}

	cs := CompactState(s, 0.9, &m)
	if cs == s || cs.View() == nil {
		t.Fatal("expected a compacted state")
	}
	if m.CompactionChecks != 1 || m.Compactions != 1 {
		t.Fatalf("checks=%d compactions=%d", m.CompactionChecks, m.Compactions)
	}
	if m.CompactionBytesReclaimed <= 0 {
		t.Errorf("bytes reclaimed = %d, want > 0", m.CompactionBytesReclaimed)
	}
	if m.CompactionFracBefore <= 0 || m.CompactionFracBefore >= 0.9 {
		t.Errorf("frac before = %v, want in (0, 0.9)", m.CompactionFracBefore)
	}
	if m.CompactionFracAfter != 1 {
		t.Errorf("frac after = %v, want 1", m.CompactionFracAfter)
	}
	if cs.NumActiveVertices() != cs.Graph().NumVertices() ||
		cs.NumActiveDirectedEdges() != cs.Graph().NumDirectedEdges() {
		t.Fatal("compacted state must be fully active")
	}
	if cs.NumActiveVertices() != s.NumActiveVertices() ||
		cs.NumActiveDirectedEdges() != s.NumActiveDirectedEdges() {
		t.Fatal("compaction changed the active counts")
	}
	assertSlotSymmetry(t, cs, "compacted")
	if err := cs.Graph().Validate(); err != nil {
		t.Fatalf("view graph invalid: %v", err)
	}

	if again := CompactState(cs, forceCompact, &m); again != cs {
		t.Fatal("a view state must not be re-compacted")
	}

	// Above-threshold states pass through but are counted.
	m = Metrics{}
	full := NewFullState(g)
	if got := CompactState(full, 0.5, &m); got != full {
		t.Fatal("dense state must not compact at 0.5")
	}
	if m.CompactionChecks != 1 || m.Compactions != 0 {
		t.Fatalf("dense: checks=%d compactions=%d", m.CompactionChecks, m.Compactions)
	}
}

// skewedGraph builds a graph whose low-id half is a dense high-degree
// community and whose high-id half is a sparse ring: edge-balancing over
// the full CSR assigns nearly all partitions to the dense region.
func skewedGraph(t *testing.T, dense, sparse int) *graph.Graph {
	b := graph.NewBuilder(0)
	for v := 0; v < dense; v++ {
		b.AddVertex(0)
	}
	for v := 0; v < sparse; v++ {
		b.AddVertex(1)
	}
	for u := 0; u < dense; u++ {
		for v := u + 1; v < dense; v++ {
			b.AddEdge(graph.VertexID(u), graph.VertexID(v))
		}
	}
	for i := 0; i < sparse; i++ {
		u := graph.VertexID(dense + i)
		v := graph.VertexID(dense + (i+1)%sparse)
		if u != v {
			b.AddEdge(u, v)
		}
	}
	g := b.Build()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	return g
}

// TestSuperstepPartitionSkewFixedByView is the partition-skew regression
// test: once the dense region is pruned away, edge-balancing over the
// original CSR offsets crams every active vertex into one partition (the
// others idle over dead memory), while partitioning the compacted view
// spreads the active directed slots evenly.
func TestSuperstepPartitionSkewFixedByView(t *testing.T) {
	const dense, sparse, parts = 64, 256, 4
	g := skewedGraph(t, dense, sparse)
	s := NewFullState(g)
	for v := 0; v < dense; v++ {
		s.DeactivateVertex(graph.VertexID(v))
	}

	activeSlots := func(st *State, gr *graph.Graph, bounds []int) []int {
		counts := make([]int, len(bounds)-1)
		for i := range counts {
			lo := int(gr.AdjOffset(graph.VertexID(bounds[i])))
			end := gr.NumDirectedEdges()
			if bounds[i+1] < gr.NumVertices() {
				end = int(gr.AdjOffset(graph.VertexID(bounds[i+1])))
			}
			counts[i] = st.EdgeBits().CountInRange(lo, end)
		}
		return counts
	}

	// Original-CSR partitioning: the dense region dominates the offsets, so
	// the active ring collapses into the last partition.
	origBounds := partitionBounds(g, parts)
	origCounts := activeSlots(s, g, origBounds)
	totalActive := s.NumActiveDirectedEdges()
	maxOrig := 0
	for _, c := range origCounts {
		if c > maxOrig {
			maxOrig = c
		}
	}
	if maxOrig < totalActive*9/10 {
		t.Fatalf("expected skew on the original CSR: max partition %d of %d active slots (%v)",
			maxOrig, totalActive, origCounts)
	}

	// View partitioning: every partition gets a fair share of active slots.
	var m Metrics
	cs := CompactState(s, 0.9, &m)
	if cs.View() == nil {
		t.Fatal("compaction did not fire")
	}
	viewBounds := partitionBounds(cs.Graph(), parts)
	viewCounts := activeSlots(cs, cs.Graph(), viewBounds)
	mean := totalActive / parts
	for i, c := range viewCounts {
		if c < mean/2 || c > mean*2 {
			t.Errorf("view partition %d holds %d active slots, want within [%d, %d] (counts %v)",
				i, c, mean/2, mean*2, viewCounts)
		}
	}
}
