package core

import (
	"fmt"
	"math/bits"

	"approxmatch/internal/graph"
	"approxmatch/internal/pattern"
)

// CountAllMatches enumerates every prototype's matches independently and
// returns per-prototype counts. It is the unoptimized baseline for the
// match-enumeration study of Fig. 9(b). When m is non-nil, candidate
// probes (the distributed engine's messages) are accumulated into it.
func CountAllMatches(r *Result, m *Metrics) []int64 {
	if m == nil {
		m = &Metrics{}
	}
	counts := make([]int64, r.Set.Count())
	for pi := range r.Set.Protos {
		s := r.SolutionState(pi)
		t := r.Set.Protos[pi].Template
		omega := initCandidates(s, t)
		var count int64
		enumerateMatches(s, omega, t, nil, m, kernelOpts{}, func([]graph.VertexID) bool {
			count++
			return true
		})
		counts[pi] = count
	}
	return counts
}

// CountAllMatchesExtended counts matches for every prototype using the
// edit-distance enumeration optimization of §4: since a δ-prototype match
// is exactly a (δ+1)-descendant match whose one extra edge is present,
// matches only need to be *searched* at the terminal (deepest) prototypes;
// every shallower prototype's matches are recognized on the fly by testing
// which extra edges the background graph provides. Each ancestor edge
// subset is assigned to a single canonical terminal descendant, so every
// match is counted exactly once.
// When m is non-nil, candidate probes and extension edge checks are
// accumulated into it (each edge check would be one message in the
// distributed engine).
func CountAllMatchesExtended(r *Result, m *Metrics) ([]int64, error) {
	if m == nil {
		m = &Metrics{}
	}
	set := r.Set
	base := set.Base
	counts := make([]int64, set.Count())

	// Optional-edge mask of the base template (mandatory edges are never
	// removed, hence never "extra").
	var optional uint64
	for i := 0; i < base.NumEdges(); i++ {
		if !base.Mandatory(i) {
			optional |= 1 << uint(i)
		}
	}
	deepPop := bits.OnesCount64(set.Protos[0].EdgeMask) - set.MaxDist

	// Terminal masks and the ancestor masks assigned to each.
	connected := func(mask uint64) bool {
		_, err := maskTemplate(base, mask)
		return err == nil
	}
	descend := func(mask uint64) uint64 {
		for bits.OnesCount64(mask) > deepPop {
			moved := false
			for ei := 0; ei < base.NumEdges(); ei++ {
				bit := uint64(1) << uint(ei)
				if mask&bit == 0 || optional&bit == 0 {
					continue
				}
				if next := mask &^ bit; connected(next) {
					mask = next
					moved = true
					break
				}
			}
			if !moved {
				break // childless mask: terminal above the deepest level
			}
		}
		return mask
	}
	// Only class-representative masks need counts; assign each to one
	// canonical terminal descendant and enumerate just those terminals.
	assigned := make(map[uint64][]uint64) // terminal -> ancestor rep masks
	for _, p := range set.Protos {
		term := descend(p.EdgeMask)
		if term != p.EdgeMask {
			assigned[term] = append(assigned[term], p.EdgeMask)
		} else if _, ok := assigned[term]; !ok {
			assigned[term] = nil
		}
	}

	maskCount := make(map[uint64]int64, len(assigned))
	for mask := range assigned {
		tmpl, err := maskTemplate(base, mask)
		if err != nil {
			return nil, fmt.Errorf("core: terminal mask disconnected: %w", err)
		}
		// Enumerate the terminal mask's matches within its class's exact
		// solution subgraph (solution subgraphs are isomorphism-class
		// invariants, so the class state is complete for this mask).
		ci, ok := set.ByMask[mask]
		if !ok {
			return nil, fmt.Errorf("core: mask %b missing class", mask)
		}
		s := r.SolutionState(ci)
		omega := initCandidates(s, tmpl)
		ancestors := assigned[mask]
		enumerateMatches(s, omega, tmpl, nil, m, kernelOpts{}, func(match []graph.VertexID) bool {
			maskCount[mask]++
			if len(ancestors) == 0 {
				return true
			}
			// Which extra optional edges does the graph provide for this
			// assignment?
			var present uint64
			for ei := 0; ei < base.NumEdges(); ei++ {
				bit := uint64(1) << uint(ei)
				if mask&bit != 0 || optional&bit == 0 {
					continue
				}
				e := base.Edge(ei)
				m.VerifyMessages++
				if r.Graph.HasEdge(match[e.I], match[e.J]) {
					present |= bit
				}
			}
			for _, anc := range ancestors {
				if extra := anc &^ mask; extra&^present == 0 {
					maskCount[anc]++
				}
			}
			return true
		})
	}
	for pi, p := range set.Protos {
		counts[pi] = maskCount[p.EdgeMask]
	}
	return counts, nil
}

// maskTemplate builds the template with base's vertices and the edges in
// mask (edge labels and mandatory flags carried); it fails when the mask is
// disconnected.
func maskTemplate(base *pattern.Template, mask uint64) (*pattern.Template, error) {
	return base.Restrict(mask)
}
