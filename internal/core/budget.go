package core

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// This file implements per-query resource governance. A Budget bounds a
// pipeline run along three dimensions — work units, auxiliary bytes and wall
// time — and the bottom-up pipeline turns exhaustion into an *anytime
// partial result* instead of a failure: every edit-distance level that
// completed before the budget died is exact (Obs. 1 makes each level's
// search state depend only on the previous, completed, level), so the run
// returns Result.Partial with the completed prototype columns intact and the
// unfinished ones marked unknown.
//
// Charging stays off the hot path: work is charged in cancelInterval-sized
// batches by the same amortized CancelCheck probes that poll cancellation,
// byte charges happen only at the pipeline's few large allocation sites
// (state clones, candidate masks, containment states, compacted views), and
// the superstep kernels re-check the budget at each barrier merge.

// ErrBudgetExhausted is the sentinel for budget exhaustion, the sibling of
// the context cancellation path: errors.Is(err, ErrBudgetExhausted) reports
// whether a run stopped because its Budget ran out. The concrete error is a
// *BudgetError carrying the exhausted dimension.
var ErrBudgetExhausted = errors.New("query budget exhausted")

// Budget bounds one pipeline run. The zero value is unlimited. Budgets are
// advisory between charge points, not preemptive: a run overshoots by at
// most one probe interval of work plus the allocation being charged.
type Budget struct {
	// MaxWork caps the run's work units. One work unit is one hot-loop
	// probe tick — roughly one visitor delivery, token hop or candidate
	// probe — so it tracks the Metrics message counters, not wall time.
	// 0 means unlimited.
	MaxWork int64
	// MaxBytes caps the run's cumulative auxiliary allocation: per-search
	// state clones and candidate masks, containment states, compacted
	// views. The background graph itself is not charged (it is shared and
	// loaded once). 0 means unlimited.
	MaxBytes int64
	// MaxWall caps the run's wall time, measured from the first charge.
	// Unlike a context deadline, wall exhaustion still yields a partial
	// result. 0 means unlimited.
	MaxWall time.Duration
}

// Unlimited reports whether the budget bounds nothing.
func (b Budget) Unlimited() bool {
	return b.MaxWork <= 0 && b.MaxBytes <= 0 && b.MaxWall <= 0
}

// BudgetError reports which dimension of a Budget ran out. It matches
// ErrBudgetExhausted under errors.Is.
type BudgetError struct {
	// Dim is "work", "bytes" or "wall".
	Dim string
	// Limit is the configured cap; Used is the consumption that crossed it
	// (work units, bytes, or nanoseconds for the wall dimension).
	Limit, Used int64
}

func (e *BudgetError) Error() string {
	if e.Dim == "wall" {
		return fmt.Sprintf("%v: wall %v exceeded %v",
			ErrBudgetExhausted, time.Duration(e.Used), time.Duration(e.Limit))
	}
	return fmt.Sprintf("%v: %s %d exceeded %d", ErrBudgetExhausted, e.Dim, e.Used, e.Limit)
}

func (e *BudgetError) Is(target error) bool { return target == ErrBudgetExhausted }

// BudgetTracker is the shared, concurrency-safe account a run charges
// against. One tracker serves every goroutine of a run (parallel prototype
// searches and superstep workers charge the same atomics through their
// forked probes).
type BudgetTracker struct {
	maxWork  int64
	maxBytes int64
	maxWall  time.Duration

	work  atomic.Int64
	bytes atomic.Int64
	// startNanos is the wall-clock origin, set once at the first charge so
	// queue wait before the run does not consume wall budget.
	startNanos atomic.Int64
}

// NewBudgetTracker returns a tracker for b, or nil when b is unlimited
// (a nil *BudgetTracker is valid and never charges).
func NewBudgetTracker(b Budget) *BudgetTracker {
	if b.Unlimited() {
		return nil
	}
	return &BudgetTracker{maxWork: b.MaxWork, maxBytes: b.MaxBytes, maxWall: b.MaxWall}
}

// WorkUsed returns the work units charged so far.
func (t *BudgetTracker) WorkUsed() int64 {
	if t == nil {
		return 0
	}
	return t.work.Load()
}

// BytesUsed returns the auxiliary bytes charged so far.
func (t *BudgetTracker) BytesUsed() int64 {
	if t == nil {
		return 0
	}
	return t.bytes.Load()
}

// charge adds n work units and checks every dimension; it returns a
// *BudgetError when any cap is crossed.
func (t *BudgetTracker) charge(n int64) error {
	if t == nil {
		return nil
	}
	w := t.work.Add(n)
	if t.maxWork > 0 && w > t.maxWork {
		return &BudgetError{Dim: "work", Limit: t.maxWork, Used: w}
	}
	if t.maxBytes > 0 {
		if b := t.bytes.Load(); b > t.maxBytes {
			return &BudgetError{Dim: "bytes", Limit: t.maxBytes, Used: b}
		}
	}
	return t.checkWall()
}

// checkWall polls the wall-clock dimension, arming the origin on first use.
func (t *BudgetTracker) checkWall() error {
	if t == nil || t.maxWall <= 0 {
		return nil
	}
	now := time.Now().UnixNano()
	start := t.startNanos.Load()
	if start == 0 {
		if t.startNanos.CompareAndSwap(0, now) {
			return nil
		}
		start = t.startNanos.Load()
	}
	if used := now - start; used > int64(t.maxWall) {
		return &BudgetError{Dim: "wall", Limit: int64(t.maxWall), Used: used}
	}
	return nil
}

// chargeBytes adds n auxiliary bytes; it returns a *BudgetError when the
// byte cap is crossed.
func (t *BudgetTracker) chargeBytes(n int64) error {
	if t == nil || n <= 0 {
		return nil
	}
	b := t.bytes.Add(n)
	if t.maxBytes > 0 && b > t.maxBytes {
		return &BudgetError{Dim: "bytes", Limit: t.maxBytes, Used: b}
	}
	return nil
}

// tryChargeBytes charges n bytes only if they fit under the cap; it reports
// whether the charge was applied. Optional allocations (compacted views) use
// it to decline gracefully instead of aborting the run.
func (t *BudgetTracker) tryChargeBytes(n int64) bool {
	if t == nil || n <= 0 {
		return true
	}
	if t.maxBytes > 0 {
		for {
			b := t.bytes.Load()
			if b+n > t.maxBytes {
				return false
			}
			if t.bytes.CompareAndSwap(b, b+n) {
				return true
			}
		}
	}
	t.bytes.Add(n)
	return true
}

// budgetCtxKey carries a *BudgetTracker through a context.
type budgetCtxKey struct{}

// WithBudget attaches a fresh tracker for b to ctx. An unlimited budget
// returns ctx unchanged. Every pipeline entry point picks the tracker up via
// its cancellation probes, so one WithBudget near the top of a query governs
// the whole run, including the distributed engine's finalization calls.
func WithBudget(ctx context.Context, b Budget) context.Context {
	return WithBudgetTracker(ctx, NewBudgetTracker(b))
}

// WithBudgetTracker attaches an existing tracker to ctx (nil returns ctx
// unchanged). Use it when the caller needs to observe consumption afterwards
// (BudgetTracker.WorkUsed / BytesUsed).
func WithBudgetTracker(ctx context.Context, t *BudgetTracker) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, budgetCtxKey{}, t)
}

// BudgetFromContext returns the tracker attached to ctx, or nil.
func BudgetFromContext(ctx context.Context) *BudgetTracker {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(budgetCtxKey{}).(*BudgetTracker)
	return t
}

// withConfigBudget applies cfg's budget to ctx unless the caller already
// attached one (an explicit WithBudget wins over Config.Budget).
func withConfigBudget(ctx context.Context, b Budget) context.Context {
	if b.Unlimited() || BudgetFromContext(ctx) != nil {
		return ctx
	}
	if ctx == nil {
		ctx = context.Background()
	}
	return WithBudget(ctx, b)
}

// recoverBudgetAbort converts a budget-exhaustion abort into *err; every
// other panic — including context cancellation aborts — propagates. The
// level loops defer it around each edit-distance level so exhaustion stops
// the pipeline *between* levels with the completed levels intact.
func recoverBudgetAbort(err *error) {
	r := recover()
	if r == nil {
		return
	}
	if a, ok := r.(pipelineAbort); ok && errors.Is(a.err, ErrBudgetExhausted) {
		*err = a.err
		return
	}
	panic(r)
}

// PanicError wraps a panic that escaped a pipeline worker goroutine. The
// parallel entry points convert worker panics into this error instead of
// crashing the process, so one poisoned query cannot take down a server
// hosting many (the serving layer maps it to a 500).
type PanicError struct {
	// Val is the recovered panic value.
	Val any
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("pipeline panic: %v", e.Val)
}
