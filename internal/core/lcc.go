package core

import (
	"math/bits"

	"approxmatch/internal/constraint"
	"approxmatch/internal/graph"
	"approxmatch/internal/pattern"
)

// localProfile aliases the shared profile type; the distributed engine uses
// the same analysis (internal/constraint).
type localProfile = constraint.LocalProfile

func buildLocalProfile(t *pattern.Template) *localProfile {
	return constraint.BuildLocalProfile(t)
}

// vertexSatisfiesLocal checks the local constraints of template vertex q at
// graph vertex v: for every distinct neighbor label of q, v must have at
// least as many distinct active neighbors holding a candidate in that group
// as the group's multiplicity.
func vertexSatisfiesLocal(s *State, omega candidateSet, prof *localProfile, v graph.VertexID, q int) bool {
	for _, g := range prof.Groups(q) {
		found := 0
		s.ForEachActiveNeighbor(v, func(_ int, w graph.VertexID) {
			if found < g.Count && omega[w]&g.Mask != 0 {
				found++
			}
		})
		if found < g.Count {
			return false
		}
	}
	return true
}

// lcc runs local constraint checking (Alg. 4) to a fixpoint on state s with
// candidate set omega for prototype template t. It eliminates candidate
// entries, vertices and edges, and returns whether anything was eliminated.
// A non-nil pool switches to the superstep (Jacobi) schedule in lccPar;
// both reach the same fixpoint.
func lcc(s *State, omega candidateSet, prof *localProfile, pool *Pool, cc *CancelCheck, m *Metrics) bool {
	if pool != nil {
		return lccPar(s, omega, prof, pool, cc, m)
	}
	t := prof.Template()
	eliminatedAny := false
	for {
		m.LCCIterations++
		changed := false
		// Vertex phase: every active vertex "receives visitors" from its
		// active neighbors and re-validates each candidate q.
		s.ForEachActiveVertex(func(v graph.VertexID) {
			cc.Tick()
			m.LCCMessages += int64(s.ActiveDegree(v))
			for q := 0; q < t.NumVertices(); q++ {
				if !omega.has(v, q) {
					continue
				}
				if !vertexSatisfiesLocal(s, omega, prof, v, q) {
					omega.remove(v, q)
					changed = true
				}
			}
			if !omega.any(v) {
				s.DeactivateVertex(v)
				changed = true
			}
		})
		// Edge phase: an active edge (v,u) survives only if some candidate
		// pair (q ∈ ω(v), q' ∈ ω(u)) is a template edge.
		s.ForEachActiveVertex(func(v graph.VertexID) {
			cc.Tick()
			ns := s.g.Neighbors(v)
			base := int(s.g.AdjOffset(v))
			for i, u := range ns {
				if !s.edges.Get(base+i) || !s.verts.Get(int(u)) {
					continue
				}
				// Each examined active edge slot is one edge-phase message
				// (one "visitor" per directed slot), mirroring the vertex
				// phase's per-visitor accounting.
				m.LCCMessages++
				if !edgeSupported(omega, prof, v, u) {
					s.DeactivateEdgeAt(v, i)
					changed = true
				}
			}
		})
		if changed {
			eliminatedAny = true
			continue
		}
		return eliminatedAny
	}
}

// edgeSupported reports whether edge (v,u) supports some template edge under
// the current candidates.
func edgeSupported(omega candidateSet, prof *localProfile, v, u graph.VertexID) bool {
	ov := omega[v]
	for ov != 0 {
		q := trailingZeros(ov)
		ov &= ov - 1
		if omega[u]&prof.NbrMask(q) != 0 {
			return true
		}
	}
	return false
}

func trailingZeros(x uint64) int { return bits.TrailingZeros64(x) }
