package core

import (
	"math/rand"
	"testing"

	"approxmatch/internal/bitvec"
	"approxmatch/internal/graph"
	"approxmatch/internal/rmat"
)

// TestCacheTinyCapDifferential is the eviction-safety property test: with
// work recycling on, a cache capped to roughly one constraint set must evict
// constantly yet produce bit-identical results to the unbounded run —
// eviction may only cost recomputation, never correctness.
func TestCacheTinyCapDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	evicted := int64(0)
	for trial := 0; trial < 8; trial++ {
		p := rmat.Graph500(7, int64(600+trial))
		p.EdgeFactor = 4
		g := rmat.Generate(p)
		tp := randomDecoratedTemplate(rng, g)
		cfg := DefaultConfig(2)
		cfg.CountMatches = true

		want, err := Run(g, tp, cfg)
		if err != nil {
			t.Fatal(err)
		}
		// One set is ceil(n/8) bytes rounded to words; cap at a set and a
		// half so any second constraint forces an eviction.
		cfg.CacheBytes = bitvec.New(g.NumVertices()).Bytes() * 3 / 2
		got, err := Run(g, tp, cfg)
		if err != nil {
			t.Fatal(err)
		}
		assertSameResult(t, want, got, tp.String())
		evicted += got.Metrics.CacheEvictions

		// A cap below a single set degenerates to a cache-free run — still
		// bit-identical.
		cfg.CacheBytes = 1
		bare, err := Run(g, tp, cfg)
		if err != nil {
			t.Fatal(err)
		}
		assertSameResult(t, want, bare, tp.String())
		if bare.Metrics.CacheHits != 0 {
			t.Fatalf("sub-set cap produced %d cache hits", bare.Metrics.CacheHits)
		}
	}
	if evicted == 0 {
		t.Fatal("tiny caps never evicted; the differential is vacuous")
	}
}

// TestCacheLRUAccounting drives the byte-bounded cache directly: the
// footprint must respect the cap, eviction must pick the least-recently-used
// set, and surviving entries keep their verdicts.
func TestCacheLRUAccounting(t *testing.T) {
	const n = 64
	setBytes := bitvec.New(n).Bytes()
	c := NewCacheBytes(n, 2*setBytes)
	c.Record("a", 1)
	c.Record("b", 2)
	if c.Bytes() != 2*setBytes {
		t.Fatalf("Bytes = %d, want %d", c.Bytes(), 2*setBytes)
	}
	// Touch "a" so "b" is the LRU victim when "c" arrives.
	if !c.Satisfied("a", 1) {
		t.Fatal("recorded verdict lost")
	}
	c.Record("c", 3)
	if c.Evictions() != 1 {
		t.Fatalf("Evictions = %d, want 1", c.Evictions())
	}
	if c.Satisfied("b", 2) {
		t.Fatal("LRU entry survived eviction")
	}
	if !c.Satisfied("a", 1) || !c.Satisfied("c", 3) {
		t.Fatal("recently-used entries evicted")
	}
	if c.Bytes() > 2*setBytes {
		t.Fatalf("cache over cap: %d > %d", c.Bytes(), 2*setBytes)
	}
}

// TestCacheTouchOnlyOnTrueHit is the regression test for the LRU bug where
// Satisfied bumped an entry's recency stamp even when the probed vertex bit
// was unset: a storm of negative probes against a dead set kept it resident
// while genuinely reused sets were evicted. The hot set must survive a miss
// storm against a cold one.
func TestCacheTouchOnlyOnTrueHit(t *testing.T) {
	const n = 64
	setBytes := bitvec.New(n).Bytes()
	c := NewCacheBytes(n, 2*setBytes)
	c.Record("hot", 1)
	c.Record("cold", 2)
	// Establish recency: hot is genuinely hit once...
	if !c.Satisfied("hot", 1) {
		t.Fatal("recorded verdict lost")
	}
	// ...then a storm of negative probes hammers cold (vertex 3 is unset).
	// These must NOT refresh cold's stamp.
	for i := 0; i < 100; i++ {
		if c.Satisfied("cold", 3) {
			t.Fatal("unrecorded vertex reported satisfied")
		}
	}
	// A third set forces one eviction; the victim must be cold, not hot.
	c.Record("new", 4)
	if c.Evictions() != 1 {
		t.Fatalf("Evictions = %d, want 1", c.Evictions())
	}
	if !c.Satisfied("hot", 1) {
		t.Fatal("hot set evicted: negative probes kept the cold set resident")
	}
	if c.Satisfied("cold", 2) {
		t.Fatal("cold set survived; LRU ignored the true-hit recency")
	}
}

// TestCacheBytesInvariantRandomized interleaves Record and probe operations
// under varying byte caps and asserts after every step that Bytes() equals
// the sum of resident set footprints — guarding the shared-store refactor
// against drift or double-charge bugs in the accounting.
func TestCacheBytesInvariantRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 32 + rng.Intn(200)
		setBytes := bitvec.New(n).Bytes()
		// Caps from "below one set" to "several sets", plus unbounded.
		cap := int64(0)
		if rng.Intn(4) > 0 {
			cap = int64(rng.Intn(5)) * setBytes / 2
		}
		c := NewCacheBytes(n, cap)
		resident := func() int64 {
			c.mu.RLock()
			defer c.mu.RUnlock()
			var sum int64
			for _, e := range c.sets {
				sum += e.set.Bytes()
			}
			return sum
		}
		ids := []string{"a", "b", "c", "d", "e", "f"}
		for op := 0; op < 300; op++ {
			id := ids[rng.Intn(len(ids))]
			v := graph.VertexID(rng.Intn(n))
			switch rng.Intn(3) {
			case 0, 1:
				c.Record(id, v)
			case 2:
				c.Satisfied(id, v)
			}
			if got, want := c.Bytes(), resident(); got != want {
				t.Fatalf("trial %d op %d: Bytes()=%d, resident sum=%d", trial, op, got, want)
			}
			if cap > 0 && c.Bytes() > cap {
				t.Fatalf("trial %d op %d: footprint %d exceeds cap %d", trial, op, c.Bytes(), cap)
			}
		}
		// Purge must zero the accounting as well as the map.
		c.Purge()
		if c.Bytes() != 0 || c.Sets() != 0 {
			t.Fatalf("trial %d: purge left Bytes=%d Sets=%d", trial, c.Bytes(), c.Sets())
		}
	}
}

// TestSharedCacheAcrossRuns runs the same query twice against one shared
// store: the second run must produce bit-identical results while recycling
// walk verdicts recorded by the first (store-level hits grow), and the
// per-run metrics must not absorb the store's cumulative eviction counter.
func TestSharedCacheAcrossRuns(t *testing.T) {
	p := rmat.Graph500(7, 71)
	p.EdgeFactor = 4
	g := rmat.Generate(p)
	rng := rand.New(rand.NewSource(23))
	tp := randomDecoratedTemplate(rng, g)

	cfg := DefaultConfig(2)
	cfg.CountMatches = true
	want, err := Run(g, tp, cfg)
	if err != nil {
		t.Fatal(err)
	}

	shared := NewCacheBytes(g.NumVertices(), 0)
	cfg.SharedCache = shared
	cold, err := Run(g, tp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, want, cold, tp.String())
	if shared.Sets() == 0 {
		t.Fatal("cold run recorded nothing in the shared store")
	}
	hitsAfterCold := shared.Hits()

	warm, err := Run(g, tp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, want, warm, tp.String())
	if shared.Hits() <= hitsAfterCold {
		t.Fatalf("warm run recycled nothing: store hits %d -> %d", hitsAfterCold, shared.Hits())
	}
	if warm.Metrics.CacheEvictions != 0 {
		t.Fatalf("per-run metrics absorbed shared-store evictions: %d", warm.Metrics.CacheEvictions)
	}
}
