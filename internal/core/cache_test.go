package core

import (
	"math/rand"
	"testing"

	"approxmatch/internal/bitvec"
	"approxmatch/internal/rmat"
)

// TestCacheTinyCapDifferential is the eviction-safety property test: with
// work recycling on, a cache capped to roughly one constraint set must evict
// constantly yet produce bit-identical results to the unbounded run —
// eviction may only cost recomputation, never correctness.
func TestCacheTinyCapDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	evicted := int64(0)
	for trial := 0; trial < 8; trial++ {
		p := rmat.Graph500(7, int64(600+trial))
		p.EdgeFactor = 4
		g := rmat.Generate(p)
		tp := randomDecoratedTemplate(rng, g)
		cfg := DefaultConfig(2)
		cfg.CountMatches = true

		want, err := Run(g, tp, cfg)
		if err != nil {
			t.Fatal(err)
		}
		// One set is ceil(n/8) bytes rounded to words; cap at a set and a
		// half so any second constraint forces an eviction.
		cfg.CacheBytes = bitvec.New(g.NumVertices()).Bytes() * 3 / 2
		got, err := Run(g, tp, cfg)
		if err != nil {
			t.Fatal(err)
		}
		assertSameResult(t, want, got, tp.String())
		evicted += got.Metrics.CacheEvictions

		// A cap below a single set degenerates to a cache-free run — still
		// bit-identical.
		cfg.CacheBytes = 1
		bare, err := Run(g, tp, cfg)
		if err != nil {
			t.Fatal(err)
		}
		assertSameResult(t, want, bare, tp.String())
		if bare.Metrics.CacheHits != 0 {
			t.Fatalf("sub-set cap produced %d cache hits", bare.Metrics.CacheHits)
		}
	}
	if evicted == 0 {
		t.Fatal("tiny caps never evicted; the differential is vacuous")
	}
}

// TestCacheLRUAccounting drives the byte-bounded cache directly: the
// footprint must respect the cap, eviction must pick the least-recently-used
// set, and surviving entries keep their verdicts.
func TestCacheLRUAccounting(t *testing.T) {
	const n = 64
	setBytes := bitvec.New(n).Bytes()
	c := NewCacheBytes(n, 2*setBytes)
	c.Record("a", 1)
	c.Record("b", 2)
	if c.Bytes() != 2*setBytes {
		t.Fatalf("Bytes = %d, want %d", c.Bytes(), 2*setBytes)
	}
	// Touch "a" so "b" is the LRU victim when "c" arrives.
	if !c.Satisfied("a", 1) {
		t.Fatal("recorded verdict lost")
	}
	c.Record("c", 3)
	if c.Evictions() != 1 {
		t.Fatalf("Evictions = %d, want 1", c.Evictions())
	}
	if c.Satisfied("b", 2) {
		t.Fatal("LRU entry survived eviction")
	}
	if !c.Satisfied("a", 1) || !c.Satisfied("c", 3) {
		t.Fatal("recently-used entries evicted")
	}
	if c.Bytes() > 2*setBytes {
		t.Fatalf("cache over cap: %d > %d", c.Bytes(), 2*setBytes)
	}
}
