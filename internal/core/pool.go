package core

import "sync"

// Pool is a fixed-size worker pool shared by the superstep kernels of a run
// (§4's vertex-level data parallelism). One pool serves every kernel call of
// a pipeline run — including concurrent prototype searches in RunParallel —
// so the total kernel concurrency of a run is bounded by the pool size
// rather than by searches × workers.
//
// A nil *Pool is valid and means "sequential": the kernels fall back to the
// reference Gauss-Seidel loops, preserving the exact pre-parallel behavior
// and counter values. NewPool returns nil for workers <= 0, so callers can
// thread Config.Workers straight through.
//
// Kernel supersteps must only be submitted from outside the pool (the run's
// search goroutines), never from a pool worker itself: run blocks until all
// of its parts finish, so nested submission could deadlock a fully busy
// pool.
type Pool struct {
	workers int
	tasks   chan func()
	once    sync.Once
}

// NewPool starts a pool of the given size, or returns nil (sequential) when
// workers <= 0. Callers own the pool and must Close it.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		return nil
	}
	p := &Pool{workers: workers, tasks: make(chan func())}
	for i := 0; i < workers; i++ {
		go func() {
			for fn := range p.tasks {
				fn()
			}
		}()
	}
	return p
}

// Workers returns the pool size; 0 for a nil (sequential) pool.
func (p *Pool) Workers() int {
	if p == nil {
		return 0
	}
	return p.workers
}

// Close stops the workers once every submitted task has drained. Safe to
// call multiple times and on a nil pool.
func (p *Pool) Close() {
	if p == nil {
		return
	}
	p.once.Do(func() { close(p.tasks) })
}

// run executes fn(0..parts-1) on the pool and blocks until all parts
// return. A panic in any part — including the pipelineAbort cancellation
// panic — is re-raised on the caller after the remaining parts finish, so
// the barrier is never left half-crossed and RecoverCancel keeps working
// across the pool boundary.
func (p *Pool) run(parts int, fn func(part int)) {
	if parts == 1 {
		fn(0)
		return
	}
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		first any
	)
	wg.Add(parts)
	for i := 0; i < parts; i++ {
		part := i
		p.tasks <- func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					mu.Lock()
					if first == nil {
						first = r
					}
					mu.Unlock()
				}
			}()
			fn(part)
		}
	}
	wg.Wait()
	if first != nil {
		panic(first)
	}
}
