package core

import (
	"math/rand"
	"sort"
	"strings"
	"testing"

	"approxmatch/internal/graph"
	"approxmatch/internal/pattern"
	"approxmatch/internal/refmatch"
)

// Randomized differential suite for the kernel redundancy eliminations:
// symmetry breaking, failure guards and degree relabeling are all
// result-invariant by design, so every knob combination must produce the
// same Rho, the same per-prototype counts (restricted representatives ×
// orbit size), and — through the external-id seam — identical enumerations.
// The refmatch backtracker serves as the independent oracle.

// knobConfigs enumerates the four symmetry/guard ablation combinations.
func knobConfigs(k int) []Config {
	var out []Config
	for _, noSym := range []bool{false, true} {
		for _, noGuard := range []bool{false, true} {
			cfg := DefaultConfig(k)
			cfg.CountMatches = true
			cfg.NoSymmetry = noSym
			cfg.NoGuards = noGuard
			out = append(out, cfg)
		}
	}
	return out
}

// TestKnobDifferentialRandomized cross-checks all four knob combinations
// against each other and against the refmatch oracle on random inputs: Rho
// bit-identical, per-prototype counts identical, counts matching the
// oracle.
func TestKnobDifferentialRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(88))
	for trial := 0; trial < 25; trial++ {
		g := randomGraph(rng, 28+rng.Intn(20), 60+rng.Intn(80), 3)
		tp := randomTemplate(rng, 4, 3)
		k := rng.Intn(2)

		var base *Result
		for ci, cfg := range knobConfigs(k) {
			res, err := Run(g, tp, cfg)
			if err != nil {
				t.Fatalf("trial %d cfg %d: %v", trial, ci, err)
			}
			if ci == 0 {
				base = res
				continue
			}
			if !res.Rho.Equal(base.Rho) {
				t.Fatalf("trial %d: Rho differs between knob configs 0 and %d (noSym=%v noGuards=%v)",
					trial, ci, cfg.NoSymmetry, cfg.NoGuards)
			}
			for pi := range res.Solutions {
				if res.Solutions[pi].MatchCount != base.Solutions[pi].MatchCount {
					t.Fatalf("trial %d proto %d: count %d under cfg %d, %d under cfg 0",
						trial, pi, res.Solutions[pi].MatchCount, ci, base.Solutions[pi].MatchCount)
				}
			}
		}

		for pi, p := range base.Set.Protos {
			if want := refmatch.Count(g, p.Template, false); base.Solutions[pi].MatchCount != want {
				t.Fatalf("trial %d proto %d: pipeline count %d, refmatch oracle %d",
					trial, pi, base.Solutions[pi].MatchCount, want)
			}
		}
	}
}

// TestSymmetryBreakingReducesExpansions pins the point of the optimization:
// on a symmetric template the restricted enumeration explores ~1/|Aut(T)| of
// the expansions while producing the exact oracle count.
func TestSymmetryBreakingReducesExpansions(t *testing.T) {
	cases := []struct {
		name string
		text string
		aut  int64
	}{
		{"triangle", "v 0 0\nv 1 0\nv 2 0\ne 0 1\ne 1 2\ne 0 2\n", 6},
		{"4clique", "v 0 0\nv 1 0\nv 2 0\nv 3 0\ne 0 1\ne 0 2\ne 0 3\ne 1 2\ne 1 3\ne 2 3\n", 24},
	}
	rng := rand.New(rand.NewSource(19))
	// Dense single-label graph: most partial embeddings complete, so the
	// expansion ratio approaches the |Aut| asymptote instead of being
	// swamped by shared dead-end prefixes.
	g := randomGraph(rng, 24, 500, 1)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tp, err := pattern.Parse(strings.NewReader(tc.text))
			if err != nil {
				t.Fatal(err)
			}
			run := func(noSym bool) (int64, int64) {
				cfg := DefaultConfig(0)
				cfg.CountMatches = true
				cfg.NoSymmetry = noSym
				res, err := Run(g, tp, cfg)
				if err != nil {
					t.Fatal(err)
				}
				return res.Solutions[0].MatchCount, res.Metrics.EnumExpansions
			}
			symCount, symExp := run(false)
			fullCount, fullExp := run(true)
			if want := refmatch.Count(g, tp, false); symCount != want || fullCount != want {
				t.Fatalf("counts: sym=%d full=%d oracle=%d", symCount, fullCount, want)
			}
			if symExp == 0 {
				t.Skip("no matches on this random graph; nothing to compare")
			}
			// The asymptotic reduction is |Aut|; partial embeddings that die
			// before completion blunt it, so require at least half.
			if ratio := float64(fullExp) / float64(symExp); ratio < float64(tc.aut)/2 {
				t.Errorf("expansion reduction %.2fx, want >= %.1fx (|Aut|=%d, sym=%d full=%d)",
					ratio, float64(tc.aut)/2, tc.aut, symExp, fullExp)
			}
		})
	}
}

// TestGuardsReduceVerifyWork checks the guards fire at all on a pruning-heavy
// instance and never change the solution.
func TestGuardsReduceVerifyWork(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := randomGraph(rng, 64, 500, 2)
	tp := mustTemplate(t, "v 0 0\nv 1 1\nv 2 0\nv 3 1\ne 0 1\ne 1 2\ne 2 3\ne 0 3\n")
	run := func(noGuards bool) *Result {
		cfg := DefaultConfig(1)
		cfg.CountMatches = true
		cfg.NoGuards = noGuards
		res, err := Run(g, tp, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	guarded, plain := run(false), run(true)
	if !guarded.Rho.Equal(plain.Rho) {
		t.Fatal("guards changed Rho")
	}
	if guarded.TotalMatchCount() != plain.TotalMatchCount() {
		t.Fatalf("guards changed counts: %d vs %d",
			guarded.TotalMatchCount(), plain.TotalMatchCount())
	}
	if plain.Metrics.GuardHits != 0 || plain.Metrics.GuardsSet != 0 {
		t.Fatalf("NoGuards run still recorded guard activity: hits=%d set=%d",
			plain.Metrics.GuardHits, plain.Metrics.GuardsSet)
	}
	if guarded.Metrics.VerifyMessages > plain.Metrics.VerifyMessages {
		t.Errorf("guards increased verify messages: %d > %d",
			guarded.Metrics.VerifyMessages, plain.Metrics.VerifyMessages)
	}
}

func mustTemplate(t *testing.T, text string) *pattern.Template {
	t.Helper()
	tp, err := pattern.Parse(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

// matchKey renders one enumerated match as a canonical string.
func matchKey(m []graph.VertexID) string {
	var sb strings.Builder
	for i, v := range m {
		if i > 0 {
			sb.WriteByte(',')
		}
		for _, c := range []byte{byte('0' + v/10000%10), byte('0' + v/1000%10), byte('0' + v/100%10), byte('0' + v/10%10), byte('0' + v%10)} {
			sb.WriteByte(c)
		}
	}
	return sb.String()
}

// enumSet collects prototype pi's enumeration as a sorted multiset of
// external-id tuples.
func enumSet(r *Result, pi int) []string {
	var out []string
	r.EnumerateMatches(pi, func(m []graph.VertexID) bool {
		out = append(out, matchKey(m))
		return true
	})
	sort.Strings(out)
	return out
}

// TestRelabelDifferentialRandomized runs the pipeline on a graph and on its
// degree-relabeled twin and checks every externally visible artifact is
// identical: membership per external id, per-prototype counts, and the full
// enumeration (external tuples). Incremental maintenance across an
// externally-addressed delta must agree too — the /ingest path's contract.
func TestRelabelDifferentialRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 12; trial++ {
		g := randomGraph(rng, 30+rng.Intn(16), 70+rng.Intn(60), 3)
		rg := graph.RelabelByDegree(g)
		tp := randomTemplate(rng, 4, 3)
		cfg := DefaultConfig(1)
		cfg.CountMatches = true

		plain, err := Run(g, tp, cfg)
		if err != nil {
			t.Fatalf("trial %d plain: %v", trial, err)
		}
		rel, err := Run(rg, tp, cfg)
		if err != nil {
			t.Fatalf("trial %d relabeled: %v", trial, err)
		}

		if len(plain.Solutions) != len(rel.Solutions) {
			t.Fatalf("trial %d: prototype count differs", trial)
		}
		for pi := range plain.Solutions {
			if plain.Solutions[pi].MatchCount != rel.Solutions[pi].MatchCount {
				t.Fatalf("trial %d proto %d: plain count %d, relabeled %d",
					trial, pi, plain.Solutions[pi].MatchCount, rel.Solutions[pi].MatchCount)
			}
			for e := 0; e < g.NumVertices(); e++ {
				iv := int(rg.InternalID(graph.VertexID(e)))
				if plain.Rho.Get(e, pi) != rel.Rho.Get(iv, pi) {
					t.Fatalf("trial %d proto %d external vertex %d: membership differs under relabeling",
						trial, pi, e)
				}
			}
			p, r := enumSet(plain, pi), enumSet(rel, pi)
			if len(p) != len(r) {
				t.Fatalf("trial %d proto %d: %d vs %d enumerated matches", trial, pi, len(p), len(r))
			}
			for i := range p {
				if p[i] != r[i] {
					t.Fatalf("trial %d proto %d: enumeration differs at %d: %q vs %q",
						trial, pi, i, p[i], r[i])
				}
			}
		}

		// One externally-addressed delta, maintained incrementally on both
		// sides of the seam.
		d := randomExternalDelta(rng, g)
		if d == nil {
			continue
		}
		ng, changed, err := graph.ApplyDelta(g, d)
		if err != nil {
			t.Fatalf("trial %d apply plain: %v", trial, err)
		}
		nrg, rchanged, err := graph.ApplyDelta(rg, graph.TranslateDeltaToInternal(rg, d))
		if err != nil {
			t.Fatalf("trial %d apply relabeled: %v", trial, err)
		}
		nextPlain, _, err := RunIncremental(plain, ng, changed, cfg)
		if err != nil {
			t.Fatalf("trial %d incremental plain: %v", trial, err)
		}
		nextRel, _, err := RunIncremental(rel, nrg, rchanged, cfg)
		if err != nil {
			t.Fatalf("trial %d incremental relabeled: %v", trial, err)
		}
		for pi := range nextPlain.Solutions {
			if nextPlain.Solutions[pi].MatchCount != nextRel.Solutions[pi].MatchCount {
				t.Fatalf("trial %d proto %d post-delta: plain count %d, relabeled %d",
					trial, pi, nextPlain.Solutions[pi].MatchCount, nextRel.Solutions[pi].MatchCount)
			}
			for e := 0; e < ng.NumVertices(); e++ {
				iv := int(nrg.InternalID(graph.VertexID(e)))
				if nextPlain.Rho.Get(e, pi) != nextRel.Rho.Get(iv, pi) {
					t.Fatalf("trial %d proto %d external vertex %d: post-delta membership differs",
						trial, pi, e)
				}
			}
		}
	}
}

// randomExternalDelta builds a small valid delta in g's external id space
// (g itself is unrelabeled, so external == its own ids): one edge insert,
// one delete, one relabel. Returns nil if no valid insert exists.
func randomExternalDelta(rng *rand.Rand, g *graph.Graph) *graph.Delta {
	n := g.NumVertices()
	b := graph.NewDeltaBuilder()
	inserted := false
	for tries := 0; tries < 60 && !inserted; tries++ {
		u, v := graph.VertexID(rng.Intn(n)), graph.VertexID(rng.Intn(n))
		if u == v || g.HasEdge(u, v) {
			continue
		}
		b.InsertEdge(u, v)
		inserted = true
	}
	if !inserted {
		return nil
	}
	for tries := 0; tries < 60; tries++ {
		u := graph.VertexID(rng.Intn(n))
		ns := g.Neighbors(u)
		if len(ns) == 0 {
			continue
		}
		b.DeleteEdge(u, ns[rng.Intn(len(ns))])
		break
	}
	b.RelabelVertex(graph.VertexID(rng.Intn(n)), graph.Label(rng.Intn(3)))
	return b.Delta()
}
