package core

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"approxmatch/internal/rmat"
)

// measureWork runs the pipeline under an effectively unlimited tracker and
// returns the result plus the total work units the run charged — the yard
// stick the partial-result differential scales its budgets from.
func measureWork(t *testing.T, run func(ctx context.Context) (*Result, error)) (*Result, int64) {
	t.Helper()
	tracker := NewBudgetTracker(Budget{MaxWork: 1 << 62})
	res, err := run(WithBudgetTracker(context.Background(), tracker))
	if err != nil {
		t.Fatal(err)
	}
	return res, tracker.WorkUsed()
}

// assertPartialPrefix checks the anytime-partial contract against a full
// reference run: levels form a complete-prefix (from MaxDist downward), every
// prototype on a completed level is bit-identical to the reference — column
// in Rho included — and incomplete prototypes are reported unknown (nil).
func assertPartialPrefix(t *testing.T, want, got *Result, tag string) {
	t.Helper()
	if len(got.Levels) != len(want.Levels) {
		t.Fatalf("%s: %d level entries, want %d", tag, len(got.Levels), len(want.Levels))
	}
	// Complete levels must be a prefix of the bottom-up order; once one
	// level is incomplete, all below it must be too.
	incomplete := false
	for _, lv := range got.Levels {
		if lv.Complete && incomplete {
			t.Fatalf("%s: level %d complete below an incomplete level", tag, lv.Dist)
		}
		if !lv.Complete {
			incomplete = true
		}
	}
	if got.Partial != incomplete {
		t.Fatalf("%s: Partial=%v but incomplete levels=%v", tag, got.Partial, incomplete)
	}
	exact := make(map[int]bool)
	for _, lv := range got.Levels {
		exact[lv.Dist] = lv.Complete
	}
	n := got.Rho.Rows()
	for pi, p := range got.Set.Protos {
		if !exact[p.Dist] {
			if got.Solutions[pi] != nil {
				t.Errorf("%s: proto %d on incomplete level has a solution", tag, pi)
			}
			continue
		}
		ws, gs := want.Solutions[pi], got.Solutions[pi]
		if gs == nil {
			t.Fatalf("%s: proto %d on complete level %d missing solution", tag, pi, p.Dist)
		}
		if !ws.Verts.Equal(gs.Verts) || !ws.Edges.Equal(gs.Edges) {
			t.Errorf("%s: proto %d bits differ from full run", tag, pi)
		}
		if ws.MatchCount != gs.MatchCount {
			t.Errorf("%s: proto %d count %d vs %d", tag, pi, gs.MatchCount, ws.MatchCount)
		}
		for v := 0; v < n; v++ {
			if want.Rho.Get(v, pi) != got.Rho.Get(v, pi) {
				t.Fatalf("%s: Rho column %d differs at vertex %d", tag, pi, v)
			}
		}
	}
}

// TestPartialDifferentialRMAT is the anytime-partial property test: on
// seeded R-MAT graphs with randomized templates, a run whose work budget is a
// fraction of the full run's work must return a Partial result whose
// completed levels are bit-identical to the unbudgeted run — across the
// sequential path, the superstep kernels and the prototype-parallel driver,
// and with compaction forced on.
func TestPartialDifferentialRMAT(t *testing.T) {
	rng := rand.New(rand.NewSource(2026))
	partials := 0
	for trial := 0; trial < 8; trial++ {
		p := rmat.Graph500(7, int64(4000+trial))
		p.EdgeFactor = 4
		g := rmat.Generate(p)
		tp := randomDecoratedTemplate(rng, g)
		cfg := DefaultConfig(1 + trial%2)
		cfg.CountMatches = true
		if trial%2 == 0 {
			cfg.CompactBelow = 1.1 // always below threshold: force compaction
		}

		variants := []struct {
			tag string
			run func(ctx context.Context, c Config) (*Result, error)
		}{
			{"seq", func(ctx context.Context, c Config) (*Result, error) {
				return RunContext(ctx, g, tp, c)
			}},
			{"workers", func(ctx context.Context, c Config) (*Result, error) {
				c.Workers = 3
				return RunContext(ctx, g, tp, c)
			}},
			{"parallel", func(ctx context.Context, c Config) (*Result, error) {
				return RunParallelContext(ctx, g, tp, c, 3)
			}},
		}
		for _, v := range variants {
			want, total := measureWork(t, func(ctx context.Context) (*Result, error) {
				return v.run(ctx, cfg)
			})
			for _, frac := range []float64{0.05, 0.3, 0.7} {
				bcfg := cfg
				bcfg.Budget = Budget{MaxWork: int64(frac * float64(total))}
				res, err := v.run(context.Background(), bcfg)
				if err != nil {
					if !errors.Is(err, ErrBudgetExhausted) {
						t.Fatalf("%s frac=%v: unexpected error %v", v.tag, frac, err)
					}
					if res == nil || !res.Partial {
						t.Fatalf("%s frac=%v: budget error without partial result", v.tag, frac)
					}
					partials++
				} else if res.Partial {
					t.Fatalf("%s frac=%v: partial result without error", v.tag, frac)
				}
				assertPartialPrefix(t, want, res, v.tag)
			}
		}
	}
	if partials == 0 {
		t.Fatal("no trial ever went partial; the differential is vacuous")
	}
}

// TestPartialCandidatePhase exhausts the budget during candidate-set
// generation: the result must be partial with zero completed levels and every
// prototype unknown.
func TestPartialCandidatePhase(t *testing.T) {
	g := rmat.Generate(rmat.Graph500(7, 99))
	tp := randomDecoratedTemplate(rand.New(rand.NewSource(3)), g)
	cfg := DefaultConfig(2)
	cfg.Budget = Budget{MaxWork: 1}
	res, err := Run(g, tp, cfg)
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("err = %v, want budget exhaustion", err)
	}
	if res == nil || !res.Partial {
		t.Fatal("no partial result")
	}
	for _, lv := range res.Levels {
		if lv.Complete {
			t.Fatalf("level %d marked complete under a 1-unit budget", lv.Dist)
		}
	}
	for pi, sol := range res.Solutions {
		if sol != nil {
			t.Fatalf("prototype %d has a solution under a 1-unit budget", pi)
		}
	}
}

// TestPartialMetricsFold is the regression test for the abort accounting:
// work performed before a budget abort must still reach Result.Metrics on
// both the sequential and the prototype-parallel path, so /metrics never
// undercounts aborted queries.
func TestPartialMetricsFold(t *testing.T) {
	g := rmat.Generate(rmat.Graph500(7, 123))
	tp := randomDecoratedTemplate(rand.New(rand.NewSource(17)), g)
	cfg := DefaultConfig(2)
	_, total := measureWork(t, func(ctx context.Context) (*Result, error) {
		return RunContext(ctx, g, tp, cfg)
	})
	for _, parallel := range []int{0, 3} {
		bcfg := cfg
		bcfg.Budget = Budget{MaxWork: total / 2}
		var res *Result
		var err error
		if parallel > 0 {
			res, err = RunParallel(g, tp, bcfg, parallel)
		} else {
			res, err = Run(g, tp, bcfg)
		}
		if !errors.Is(err, ErrBudgetExhausted) {
			t.Fatalf("parallel=%d: err = %v, want budget exhaustion", parallel, err)
		}
		if sum := counterVector(&res.Metrics); func() int64 {
			var s int64
			for _, c := range sum {
				s += c
			}
			return s
		}() == 0 {
			t.Fatalf("parallel=%d: aborted run folded no metrics", parallel)
		}
	}
}

// TestWallBudgetPartial checks the wall dimension alone also downgrades to a
// partial result.
func TestWallBudgetPartial(t *testing.T) {
	g := rmat.Generate(rmat.Graph500(8, 7))
	tp := randomDecoratedTemplate(rand.New(rand.NewSource(8)), g)
	cfg := DefaultConfig(2)
	cfg.Budget = Budget{MaxWall: time.Nanosecond}
	res, err := Run(g, tp, cfg)
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("err = %v, want budget exhaustion", err)
	}
	if res == nil || !res.Partial {
		t.Fatal("no partial result from wall exhaustion")
	}
	var be *BudgetError
	if !errors.As(err, &be) || be.Dim != "wall" {
		t.Fatalf("err = %#v, want wall-dimension BudgetError", err)
	}
}

// TestBudgetTrackerDims exercises the tracker's three dimensions directly.
func TestBudgetTrackerDims(t *testing.T) {
	tr := NewBudgetTracker(Budget{MaxWork: 10})
	if err := tr.charge(9); err != nil {
		t.Fatal(err)
	}
	if err := tr.charge(2); err == nil {
		t.Fatal("work over-charge accepted")
	} else if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("work error %v not ErrBudgetExhausted", err)
	}

	tr = NewBudgetTracker(Budget{MaxBytes: 100})
	if !tr.tryChargeBytes(60) || tr.tryChargeBytes(60) {
		t.Fatal("byte accounting wrong: want first 60 accepted, second declined")
	}
	if tr.BytesUsed() != 60 {
		t.Fatalf("BytesUsed = %d, want 60 (declined charge must not stick)", tr.BytesUsed())
	}
	if err := tr.chargeBytes(41); err == nil {
		t.Fatal("byte over-charge accepted")
	}

	if NewBudgetTracker(Budget{}) != nil {
		t.Fatal("zero budget must yield a nil (unlimited) tracker")
	}
}
