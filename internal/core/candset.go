package core

import (
	"time"

	"approxmatch/internal/bitvec"
	"approxmatch/internal/constraint"
	"approxmatch/internal/graph"
	"approxmatch/internal/pattern"
)

// MaxCandidateSet computes M* (§3.1): the subgraph that could participate in
// a match of ANY prototype of t, regardless of edit-distance. It uses only
// local information: vertices must carry a template label; edges must span a
// template label pair; iteratively, a vertex must retain (a) at least one
// active neighbor compatible with some adjacency of a candidate template
// vertex and (b) active neighbors covering every mandatory neighbor of that
// candidate. Metrics are accumulated into m.CandidateMessages.
func MaxCandidateSet(g *graph.Graph, t *pattern.Template, m *Metrics) *State {
	return maxCandidateSet(g, t, nil, nil, nil, m)
}

// MaxCandidateSetWorkers is MaxCandidateSet running the fixpoint on workers
// parallel workers (0 = sequential). Results are bit-identical either way.
func MaxCandidateSetWorkers(g *graph.Graph, t *pattern.Template, workers int, m *Metrics) *State {
	pool := NewPool(workers)
	defer pool.Close()
	return maxCandidateSet(g, t, nil, pool, nil, m)
}

// candsetPrep holds the per-template lookup tables shared by the sequential
// and superstep schedules of maxCandidateSet.
type candsetPrep struct {
	labelBits map[pattern.Label]uint64
	wildBits  uint64
	pairs     *pattern.PairSet
	elSet     map[pattern.Label]bool
	elWild    bool
	prof      *constraint.MandatoryProfile
	single    bool
}

func newCandsetPrep(t *pattern.Template) *candsetPrep {
	p := &candsetPrep{
		labelBits: make(map[pattern.Label]uint64),
		pairs:     t.EdgePairSet(),
		prof:      constraint.BuildMandatoryProfile(t),
		single:    t.NumVertices() == 1,
	}
	for q := 0; q < t.NumVertices(); q++ {
		if t.Label(q) == pattern.Wildcard {
			p.wildBits |= 1 << uint(q)
		} else {
			p.labelBits[t.Label(q)] |= 1 << uint(q)
		}
	}
	p.elSet, p.elWild = t.EdgeLabelSet()
	return p
}

// maxCandidateSet is MaxCandidateSet with an optional restriction mask (the
// pipeline seeds from the induced subgraph of the mask's vertices instead of
// the full graph — the incremental-maintenance dirty region), a worker pool
// (nil = the sequential reference schedule) and a cancellation probe
// threaded through the fixpoint loops. A nil restrict is bit-identical to
// the historical full-graph seeding, counters included.
func maxCandidateSet(g *graph.Graph, t *pattern.Template, restrict *bitvec.Vector, pool *Pool, cc *CancelCheck, m *Metrics) *State {
	defer func(start time.Time) { m.CandidateTime += time.Since(start) }(time.Now())
	if pool != nil {
		return maxCandidateSetPar(g, t, restrict, pool, cc, m)
	}
	s := seedState(g, restrict)
	p := newCandsetPrep(t)

	// Candidate masks over H0 vertices, by label only. Vertices outside the
	// restriction mask stay inactive with ω = 0.
	omega := make(candidateSet, g.NumVertices())
	s.ForEachActiveVertex(func(v graph.VertexID) {
		bits := p.labelBits[g.Label(v)] | p.wildBits
		omega[v] = bits
		if bits == 0 {
			s.DeactivateVertex(v)
		}
	})

	// Drop edges whose label pair never occurs in the template, and —
	// for edge-labeled templates — edges whose own label no template edge
	// accepts: no match of any prototype can use them. Both checks are
	// symmetric in the slot direction (pairs and edge labels are keyed by
	// the normalized undirected edge), so instead of per-bit two-sided
	// deactivation the verdicts are collected into a per-slot mask and
	// applied to the active-edge vector in one word-at-a-time intersection.
	slotOK := bitvec.New(g.NumDirectedEdges())
	s.ForEachActiveVertex(func(v graph.VertexID) {
		ns := g.Neighbors(v)
		base := int(g.AdjOffset(v))
		lv := g.Label(v)
		for i, u := range ns {
			if p.pairs.Matches(lv, g.Label(u)) && (p.elWild || p.elSet[g.EdgeLabelAt(v, i)]) {
				slotOK.Set(base + i)
			}
		}
	})
	s.edges.AndInto(s.edges, slotOK)

	for {
		changed := false
		s.ForEachActiveVertex(func(v graph.VertexID) {
			cc.Tick()
			m.CandidateMessages += int64(s.ActiveDegree(v))
			// One neighbor scan answers the common per-q questions: the
			// union of neighboring candidate masks decides every weak
			// requirement and every count-1 mandatory group in O(1) per q.
			var nbrUnion uint64
			s.ForEachActiveNeighbor(v, func(_ int, w graph.VertexID) {
				nbrUnion |= omega[w]
			})
			for q := 0; q < t.NumVertices(); q++ {
				if !omega.has(v, q) {
					continue
				}
				if !candidateViable(s, omega, p.prof, v, q, p.single, nbrUnion) {
					omega.remove(v, q)
					changed = true
				}
			}
			if !omega.any(v) {
				s.DeactivateVertex(v)
				changed = true
			}
		})
		// No inter-round edge cleanup is needed: DeactivateVertex clears
		// both directions of every incident slot (the network-traffic
		// optimization of §3.1 falls out of the symmetric edge state).
		if !changed {
			break
		}
	}
	return s
}

// candidateViable checks the max-candidate-set requirement for (v, q).
// nbrUnion is the OR of ω over v's active neighbors, computed once per
// vertex per round: existence questions distribute over the union, so the
// weak requirement and single-count mandatory groups need no neighbor scan
// at all; only multi-count groups still count neighbors.
func candidateViable(s *State, omega candidateSet, p *constraint.MandatoryProfile, v graph.VertexID, q int, single bool, nbrUnion uint64) bool {
	if single {
		return true
	}
	// Weak requirement: at least one active neighbor that can match some H0
	// neighbor of q (prototypes keep the template connected, so every match
	// vertex has at least one matched neighbor).
	if nbrUnion&p.AllNbr(q) == 0 {
		return false
	}
	// Mandatory requirement: neighbors covering every mandatory neighbor
	// group with multiplicity.
	for _, g := range p.Mandatory(q) {
		if nbrUnion&g.Mask == 0 {
			return false
		}
		if g.Count <= 1 {
			continue
		}
		found := 0
		s.ForEachActiveNeighbor(v, func(_ int, w graph.VertexID) {
			if found < g.Count && omega[w]&g.Mask != 0 {
				found++
			}
		})
		if found < g.Count {
			return false
		}
	}
	return true
}
