package core

import (
	"time"

	"approxmatch/internal/constraint"
	"approxmatch/internal/graph"
	"approxmatch/internal/pattern"
)

// MaxCandidateSet computes M* (§3.1): the subgraph that could participate in
// a match of ANY prototype of t, regardless of edit-distance. It uses only
// local information: vertices must carry a template label; edges must span a
// template label pair; iteratively, a vertex must retain (a) at least one
// active neighbor compatible with some adjacency of a candidate template
// vertex and (b) active neighbors covering every mandatory neighbor of that
// candidate. Metrics are accumulated into m.CandidateMessages.
func MaxCandidateSet(g *graph.Graph, t *pattern.Template, m *Metrics) *State {
	return maxCandidateSet(g, t, nil, m)
}

// maxCandidateSet is MaxCandidateSet with a cancellation probe threaded
// through the fixpoint loops.
func maxCandidateSet(g *graph.Graph, t *pattern.Template, cc *CancelCheck, m *Metrics) *State {
	defer func(start time.Time) { m.CandidateTime += time.Since(start) }(time.Now())
	s := NewFullState(g)
	labelBits := make(map[pattern.Label]uint64)
	var wildBits uint64
	for q := 0; q < t.NumVertices(); q++ {
		if t.Label(q) == pattern.Wildcard {
			wildBits |= 1 << uint(q)
		} else {
			labelBits[t.Label(q)] |= 1 << uint(q)
		}
	}
	pairs := t.EdgePairSet()

	// Candidate masks over H0 vertices, by label only.
	omega := make(candidateSet, g.NumVertices())
	for v := 0; v < g.NumVertices(); v++ {
		bits := labelBits[g.Label(graph.VertexID(v))] | wildBits
		omega[v] = bits
		if bits == 0 {
			s.DeactivateVertex(graph.VertexID(v))
		}
	}

	// Drop edges whose label pair never occurs in the template, and —
	// for edge-labeled templates — edges whose own label no template edge
	// accepts: no match of any prototype can use them.
	elSet, elWild := t.EdgeLabelSet()
	s.ForEachActiveVertex(func(v graph.VertexID) {
		ns := g.Neighbors(v)
		base := int(g.AdjOffset(v))
		lv := g.Label(v)
		for i, u := range ns {
			if !s.edges.Get(base + i) {
				continue
			}
			if !pairs.Matches(lv, g.Label(u)) {
				s.DeactivateEdgeAt(v, i)
				continue
			}
			if !elWild && !elSet[g.EdgeLabelAt(v, i)] {
				s.DeactivateEdgeAt(v, i)
			}
		}
	})

	prof := constraint.BuildMandatoryProfile(t)
	single := t.NumVertices() == 1

	for {
		changed := false
		s.ForEachActiveVertex(func(v graph.VertexID) {
			cc.Tick()
			m.CandidateMessages += int64(s.ActiveDegree(v))
			for q := 0; q < t.NumVertices(); q++ {
				if !omega.has(v, q) {
					continue
				}
				if !candidateViable(s, omega, prof, v, q, single) {
					omega.remove(v, q)
					changed = true
				}
			}
			if !omega.any(v) {
				s.DeactivateVertex(v)
				changed = true
			}
		})
		// Remove edges to eliminated neighbors (the network-traffic
		// optimization called out in §3.1).
		s.ForEachActiveVertex(func(v graph.VertexID) {
			ns := g.Neighbors(v)
			base := int(g.AdjOffset(v))
			for i, u := range ns {
				if s.edges.Get(base+i) && !s.verts.Get(int(u)) {
					s.edges.Clear(base + i)
				}
			}
		})
		if !changed {
			break
		}
	}
	return s
}

// candidateViable checks the max-candidate-set requirement for (v, q).
func candidateViable(s *State, omega candidateSet, p *constraint.MandatoryProfile, v graph.VertexID, q int, single bool) bool {
	if single {
		return true
	}
	// Weak requirement: at least one active neighbor that can match some H0
	// neighbor of q (prototypes keep the template connected, so every match
	// vertex has at least one matched neighbor).
	anyNbr := false
	s.ForEachActiveNeighbor(v, func(_ int, w graph.VertexID) {
		if !anyNbr && omega[w]&p.AllNbr(q) != 0 {
			anyNbr = true
		}
	})
	if !anyNbr {
		return false
	}
	// Mandatory requirement: neighbors covering every mandatory neighbor
	// group with multiplicity.
	for _, g := range p.Mandatory(q) {
		found := 0
		s.ForEachActiveNeighbor(v, func(_ int, w graph.VertexID) {
			if found < g.Count && omega[w]&g.Mask != 0 {
				found++
			}
		})
		if found < g.Count {
			return false
		}
	}
	return true
}
