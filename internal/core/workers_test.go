package core

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"approxmatch/internal/graph"
	"approxmatch/internal/pattern"
	"approxmatch/internal/rmat"
)

// randomDecoratedTemplate builds a small random connected template whose
// labels are sampled from the graph, with optional wildcard vertices and
// optional mandatory edges — the template mix of the kernel-equivalence
// property test.
func randomDecoratedTemplate(rng *rand.Rand, g *graph.Graph) *pattern.Template {
	// Sample labels from live edge endpoints so templates hit the graph's
	// populated label classes (isolated vertices would yield vacuous runs).
	liveLabel := func() pattern.Label {
		for tries := 0; tries < 50; tries++ {
			v := graph.VertexID(rng.Intn(g.NumVertices()))
			if len(g.Neighbors(v)) > 0 {
				return g.Label(v)
			}
		}
		return g.Label(0)
	}
	n := 2 + rng.Intn(3)
	ls := make([]pattern.Label, n)
	for i := range ls {
		ls[i] = liveLabel()
		if rng.Intn(5) == 0 {
			ls[i] = pattern.Wildcard
		}
	}
	var edges []pattern.Edge
	for v := 1; v < n; v++ {
		edges = append(edges, pattern.Edge{I: rng.Intn(v), J: v})
	}
	// Close a cycle often: cyclic templates generate non-local (CC/PC)
	// constraints, so the NLCC superstep path gets exercised.
	if n >= 3 && rng.Intn(3) != 0 {
		e := pattern.Edge{I: 0, J: n - 1}
		dup := false
		for _, x := range edges {
			if x == e {
				dup = true
			}
		}
		if !dup {
			edges = append(edges, e)
		}
	}
	mandatory := make([]bool, len(edges))
	for i := range mandatory {
		mandatory[i] = rng.Intn(5) == 0
	}
	t, err := pattern.NewEdgeLabeled(ls, edges, nil, mandatory)
	if err != nil {
		panic(err)
	}
	return t
}

// assertSameResult asserts bit-identical Rho, Solutions and match counts
// between two runs of the pipeline.
func assertSameResult(t *testing.T, want, got *Result, tag string) {
	t.Helper()
	if !want.Rho.Equal(got.Rho) {
		t.Errorf("%s: Rho differs", tag)
	}
	if len(want.Solutions) != len(got.Solutions) {
		t.Fatalf("%s: %d vs %d solutions", tag, len(want.Solutions), len(got.Solutions))
	}
	for pi := range want.Solutions {
		ws, gs := want.Solutions[pi], got.Solutions[pi]
		if !ws.Verts.Equal(gs.Verts) {
			t.Errorf("%s: proto %d vertex bits differ", tag, pi)
		}
		if !ws.Edges.Equal(gs.Edges) {
			t.Errorf("%s: proto %d edge bits differ", tag, pi)
		}
		if ws.MatchCount != gs.MatchCount {
			t.Errorf("%s: proto %d count %d vs %d", tag, pi, ws.MatchCount, gs.MatchCount)
		}
	}
}

// TestWorkersDifferentialRMAT is the kernel-equivalence property test: on
// seeded R-MAT graphs with randomized templates (wildcards, mandatory
// edges) and k in {0,1,2}, Workers: N must produce bit-identical Rho,
// Solutions and match counts to the sequential reference path.
func TestWorkersDifferentialRMAT(t *testing.T) {
	rng := rand.New(rand.NewSource(1701))
	for trial := 0; trial < 10; trial++ {
		p := rmat.Graph500(7, int64(1000+trial))
		p.EdgeFactor = 4
		g := rmat.Generate(p)
		tp := randomDecoratedTemplate(rng, g)
		cfg := DefaultConfig(trial % 3)
		cfg.CountMatches = true
		want, err := Run(g, tp, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 3} {
			wcfg := cfg
			wcfg.Workers = workers
			got, err := Run(g, tp, wcfg)
			if err != nil {
				t.Fatal(err)
			}
			assertSameResult(t, want, got, tp.String())
		}
	}
}

// TestWorkersDifferentialEdgeLabels covers the edge-labeled-template corner
// of the property test (R-MAT graphs carry no edge labels).
func TestWorkersDifferentialEdgeLabels(t *testing.T) {
	rng := rand.New(rand.NewSource(1702))
	for trial := 0; trial < 8; trial++ {
		g := randomEdgeLabeledGraph(rng, 40, 120, 3, 2)
		tp := randomEdgeLabeledTemplate(rng, 4, 3, 2)
		cfg := DefaultConfig(trial % 3)
		cfg.CountMatches = true
		want, err := Run(g, tp, cfg)
		if err != nil {
			t.Fatal(err)
		}
		wcfg := cfg
		wcfg.Workers = 4
		got, err := Run(g, tp, wcfg)
		if err != nil {
			t.Fatal(err)
		}
		assertSameResult(t, want, got, tp.String())
	}
}

// TestWorkersRunParallelMatchesRun crosses both parallelism layers:
// concurrent prototype searches sharing one kernel pool must still match
// the fully sequential run.
func TestWorkersRunParallelMatchesRun(t *testing.T) {
	rng := rand.New(rand.NewSource(1703))
	g := randomGraph(rng, 40, 110, 3)
	tp := randomTemplate(rng, 4, 3)
	cfg := DefaultConfig(2)
	cfg.CountMatches = true
	want, err := Run(g, tp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 3
	got, err := RunParallel(g, tp, cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, want, got, tp.String())
}

// counterVector extracts the schedule-sensitive work counters (durations
// excluded).
func counterVector(m *Metrics) []int64 {
	return []int64{
		m.CandidateMessages, m.LCCMessages, m.NLCCMessages, m.VerifyMessages,
		m.TokensInitiated, m.CacheHits, m.LCCIterations, m.VerifySearches,
		m.PrototypesSearched,
	}
}

// TestWorkersCountersScheduleIndependent asserts the superstep counters are
// schedule-independent: every parallel worker count N >= 1 reports the same
// message/iteration counters, because per-round work depends only on the
// round-start snapshot, not on the partitioning. (The sequential reference
// path may legitimately differ — its in-place loops see same-round
// eliminations early.)
func TestWorkersCountersScheduleIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(1704))
	for trial := 0; trial < 4; trial++ {
		g := rmat.Generate(rmat.Params{Scale: 6, EdgeFactor: 4, A: 0.57, B: 0.19, C: 0.19, Seed: int64(trial)})
		tp := randomDecoratedTemplate(rng, g)
		cfg := DefaultConfig(1)
		cfg.Workers = 1
		base, err := Run(g, tp, cfg)
		if err != nil {
			t.Fatal(err)
		}
		want := counterVector(&base.Metrics)
		for _, workers := range []int{2, 5} {
			cfg.Workers = workers
			res, err := Run(g, tp, cfg)
			if err != nil {
				t.Fatal(err)
			}
			got := counterVector(&res.Metrics)
			for i := range want {
				if want[i] != got[i] {
					t.Errorf("%v workers=%d: counter %d = %d, want %d (workers=1)",
						tp, workers, i, got[i], want[i])
				}
			}
		}
	}
}

// assertSlotSymmetry asserts the state-invariant of the edge bit vector:
// the two directed slots of every edge agree (no dangling one-sided slots).
func assertSlotSymmetry(t *testing.T, s *State, tag string) {
	t.Helper()
	g := s.Graph()
	for v := 0; v < g.NumVertices(); v++ {
		vid := graph.VertexID(v)
		base := int(g.AdjOffset(vid))
		for i, u := range g.Neighbors(vid) {
			j := g.EdgeIndex(u, vid)
			if j < 0 {
				t.Fatalf("%s: missing reverse slot for (%d,%d)", tag, v, u)
			}
			rev := int(g.AdjOffset(u)) + j
			if s.edges.Get(base+i) != s.edges.Get(rev) {
				t.Fatalf("%s: asymmetric slots for edge (%d,%d): %v vs %v",
					tag, v, u, s.edges.Get(base+i), s.edges.Get(rev))
			}
		}
	}
}

// TestSlotSymmetryAfterKernels runs every kernel on both schedules and
// asserts the directed-slot bit vector stays symmetric throughout —
// the invariant behind NumActiveDirectedEdges/StateBytes accounting.
func TestSlotSymmetryAfterKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(1705))
	for trial := 0; trial < 5; trial++ {
		g := randomEdgeLabeledGraph(rng, 30, 90, 3, 2)
		tp := randomEdgeLabeledTemplate(rng, 4, 3, 2)
		for _, workers := range []int{0, 3} {
			pool := NewPool(workers)
			var m Metrics
			s := maxCandidateSet(g, tp, nil, pool, nil, &m)
			assertSlotSymmetry(t, s, "maxCandidateSet")

			omega := initCandidates(s, tp)
			prof := buildLocalProfile(tp)
			lcc(s, omega, prof, pool, nil, &m)
			assertSlotSymmetry(t, s, "lcc")

			for _, w := range preparedWalks(g, tp, nil) {
				nlcc(s, omega, tp, w, nil, pool, nil, &m)
			}
			assertSlotSymmetry(t, s, "nlcc")

			verifyExact(s, omega, tp, nil, &m, kernelOpts{})
			assertSlotSymmetry(t, s, "verifyExact")
			pool.Close()
		}
	}
}

// TestPoolPanicPropagation checks that a worker panic crosses the barrier
// back onto the caller instead of killing the process from a pool
// goroutine.
func TestPoolPanicPropagation(t *testing.T) {
	pool := NewPool(2)
	defer pool.Close()
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want boom", r)
		}
	}()
	pool.run(4, func(part int) {
		if part == 2 {
			panic("boom")
		}
	})
	t.Fatal("unreachable")
}

// TestWorkersCancellation exercises cancellation through the superstep
// path: the forked per-partition probes must abort the run with the
// context's error.
func TestWorkersCancellation(t *testing.T) {
	g := rmat.Generate(rmat.Graph500(9, 7))
	tp := randomDecoratedTemplate(rand.New(rand.NewSource(9)), g)
	cfg := DefaultConfig(2)
	cfg.Workers = 3

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunContext(ctx, g, tp, cfg); err != context.Canceled {
		t.Fatalf("pre-canceled: err=%v", err)
	}

	ctx, cancel = context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := RunContext(ctx, g, tp, cfg); err != context.DeadlineExceeded {
		// A tiny run can legitimately finish before the deadline; only a
		// wrong error value is a failure.
		if err != nil {
			t.Fatalf("deadline: err=%v", err)
		}
	} else if time.Since(start) > 5*time.Second {
		t.Fatalf("cancellation took %v", time.Since(start))
	}
}
