package core

import (
	"context"

	"approxmatch/internal/bitvec"
	"approxmatch/internal/constraint"
	"approxmatch/internal/pattern"
)

// SearchOn runs the full single-template search (Alg. 2) on an explicit
// starting state, exposing the per-prototype engine step to other packages
// (the distributed runtime's parallel-prototype-search mode and the
// deployment-size experiments). The level state is not modified. The
// pruning kernels run on workers parallel workers (0 = sequential). A fired
// ctx aborts the search with a cancellation panic recovered by
// RecoverCancel — callers that pass a cancellable context must defer it.
func SearchOn(ctx context.Context, level *State, t *pattern.Template, cache *Cache, freq constraint.LabelFreq, count bool, workers int, m *Metrics) *Solution {
	cc := NewCancelCheck(ctx)
	cc.Check()
	pool := NewPool(workers)
	defer pool.Close()
	sol := searchTemplateOn(level, t, preparedProfile(t), preparedWalks(level.Graph(), t, freq), cache, pool, cc, count, m, kernelOpts{})
	// Charge the tail of the amortized ticks: phases shorter than one probe
	// interval must not be free, or small-graph work never hits the budget.
	cc.Check()
	return sol
}

// preparedProfile builds the local-constraint profile for t.
func preparedProfile(t *pattern.Template) *localProfile { return buildLocalProfile(t) }

// FinalizeExact reduces an already-pruned state (recall-safe, possibly
// imprecise) to the exact solution subgraph of t: it rebuilds candidates,
// re-runs the LCC fixpoint and applies the exact verification phase. It
// mutates s and returns the participating directed-edge bit vector. The
// distributed engine calls this after gathering its pruned subgraph — the
// in-process analogue of the paper's "reload the pruned graph on a smaller
// deployment" step. The LCC fixpoint runs on workers parallel workers
// (0 = sequential). A fired ctx aborts with a cancellation panic recovered
// by RecoverCancel.
func FinalizeExact(ctx context.Context, s *State, t *pattern.Template, workers int, m *Metrics) *bitvec.Vector {
	cc := NewCancelCheck(ctx)
	cc.Check()
	pool := NewPool(workers)
	defer pool.Close()
	omega := initCandidates(s, t)
	prof := buildLocalProfile(t)
	lcc(s, omega, prof, pool, cc, m)
	var edges *bitvec.Vector
	if constraint.Analyze(t).LocalSufficient {
		edges = cleanEdges(s)
	} else {
		edges = verifyExact(s, omega, t, cc, m, kernelOpts{})
	}
	cc.Check() // charge the tail of the amortized ticks
	return edges
}

// FinalizeSolution runs FinalizeExact on s (mutating it), captures the
// surviving vertices and, when count is set, the match count, and — when s
// is a compacted view state — translates the solution back to original ids.
// It packages the distributed engine's gather-and-finalize step so callers
// can compact the gathered state first (CompactState) without handling the
// id translation themselves.
func FinalizeSolution(ctx context.Context, s *State, t *pattern.Template, workers int, count bool, m *Metrics) *Solution {
	sol := &Solution{Proto: -1, MatchCount: -1}
	sol.Edges = FinalizeExact(ctx, s, t, workers, m)
	sol.Verts = s.VertexBits().Clone()
	if count {
		sol.MatchCount = CountOn(ctx, s, t, m)
	}
	if vw := s.view; vw != nil {
		translateSolution(sol, vw)
	}
	return sol
}

// CountOn enumerates matches of t restricted to the given exact state. A
// fired ctx aborts with a cancellation panic recovered by RecoverCancel.
func CountOn(ctx context.Context, s *State, t *pattern.Template, m *Metrics) int64 {
	cc := NewCancelCheck(ctx)
	cc.Check()
	omega := initCandidates(s, t)
	n := countMatches(s, omega, t, cc, m, kernelOpts{})
	cc.Check() // charge the tail of the amortized ticks
	return n
}
