package core

import (
	"approxmatch/internal/bitvec"
	"approxmatch/internal/constraint"
	"approxmatch/internal/pattern"
)

// SearchOn runs the full single-template search (Alg. 2) on an explicit
// starting state, exposing the per-prototype engine step to other packages
// (the distributed runtime's parallel-prototype-search mode and the
// deployment-size experiments). The level state is not modified.
func SearchOn(level *State, t *pattern.Template, cache *Cache, freq constraint.LabelFreq, count bool, m *Metrics) *Solution {
	return searchTemplateOn(level, t, preparedProfile(t), preparedWalks(level.Graph(), t, freq), cache, count, m)
}

// preparedProfile builds the local-constraint profile for t.
func preparedProfile(t *pattern.Template) *localProfile { return buildLocalProfile(t) }

// FinalizeExact reduces an already-pruned state (recall-safe, possibly
// imprecise) to the exact solution subgraph of t: it rebuilds candidates,
// re-runs the LCC fixpoint and applies the exact verification phase. It
// mutates s and returns the participating directed-edge bit vector. The
// distributed engine calls this after gathering its pruned subgraph — the
// in-process analogue of the paper's "reload the pruned graph on a smaller
// deployment" step.
func FinalizeExact(s *State, t *pattern.Template, m *Metrics) *bitvec.Vector {
	omega := initCandidates(s, t)
	prof := buildLocalProfile(t)
	lcc(s, omega, prof, m)
	if constraint.Analyze(t).LocalSufficient {
		return cleanEdges(s)
	}
	return verifyExact(s, omega, t, m)
}

// CountOn enumerates matches of t restricted to the given exact state.
func CountOn(s *State, t *pattern.Template, m *Metrics) int64 {
	omega := initCandidates(s, t)
	return countMatches(s, omega, t, m)
}
