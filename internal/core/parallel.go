package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"approxmatch/internal/bitvec"
	"approxmatch/internal/graph"
	"approxmatch/internal/pattern"
	"approxmatch/internal/prototype"
)

// RunParallel is the pipeline of Run with multi-level parallelism enabled
// (§4, "Multi-level Parallelism" — Fig. 8's scenario Z): the prototypes of
// each edit-distance level are searched concurrently on replicas of the
// level state, up to `parallelism` at a time, sharing one work-recycling
// cache. Results are bit-identical to Run's.
func RunParallel(g *graph.Graph, t *pattern.Template, cfg Config, parallelism int) (*Result, error) {
	return RunParallelContext(context.Background(), g, t, cfg, parallelism)
}

// RunParallelContext is RunParallel honoring ctx: each prototype-search
// goroutine carries its own cancellation probe, so a fired context stops
// every in-flight search and the run returns ctx.Err(). When ctx never
// fires, the results are identical to RunParallel's (and Run's).
func RunParallelContext(ctx context.Context, g *graph.Graph, t *pattern.Template, cfg Config, parallelism int) (*Result, error) {
	cc := NewCancelCheck(ctx)
	var res *Result
	err := func() (err error) {
		defer RecoverCancel(&err)
		cc.Check()
		res, err = runParallel(cc, g, t, cfg, parallelism)
		return err
	}()
	if err != nil {
		return nil, err
	}
	return res, nil
}

func runParallel(cc *CancelCheck, g *graph.Graph, t *pattern.Template, cfg Config, parallelism int) (*Result, error) {
	if parallelism < 1 {
		parallelism = 1
	}
	set, err := prototype.Generate(t, cfg.EditDistance)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	e := newEngine(g, set, cfg)
	defer e.close()
	// Pre-build walks and profiles serially: the engine's lazy maps are
	// not synchronized.
	for pi := range set.Protos {
		e.walksFor(pi)
		e.profileFor(pi)
	}

	res := &Result{
		Graph:     g,
		Template:  t,
		Set:       set,
		Rho:       bitvec.NewMatrix(g.NumVertices(), set.Count()),
		Solutions: make([]*Solution, set.Count()),
	}
	res.Candidate = maxCandidateSet(g, t, e.pool, cc, &e.metrics)

	level := res.Candidate
	for dist := set.MaxDist; dist >= 0; dist-- {
		cc.Check()
		start := time.Now()
		// Compact on the coordinator goroutine, before the level's searches
		// launch: the view and the engine metrics are not synchronized.
		frac := ActiveFraction(level)
		searchLevel := e.compact(level)
		ids := set.At(dist)
		metrics := make([]Metrics, len(ids))
		sem := make(chan struct{}, parallelism)
		var wg sync.WaitGroup
		var abortOnce sync.Once
		var abortErr error
		for idx, pi := range ids {
			wg.Add(1)
			go func(idx, pi int) {
				defer wg.Done()
				// A fired context aborts this goroutine's search via the
				// pipelineAbort panic; capture the first one and let the
				// level finish draining (sibling searches abort on their
				// own probes within one check interval).
				defer func() {
					if r := recover(); r != nil {
						if a, ok := r.(pipelineAbort); ok {
							abortOnce.Do(func() { abortErr = a.err })
							return
						}
						panic(r)
					}
				}()
				sem <- struct{}{}
				defer func() { <-sem }()
				searchState := searchLevel
				if dist < set.MaxDist && len(set.Protos[pi].Children) == 0 {
					searchState = res.Candidate
				}
				t := set.Protos[pi].Template
				sol := searchTemplateOn(searchState, t, e.profiles[pi], e.walks[pi], e.cache, e.pool, cc.Fork(), cfg.CountMatches, &metrics[idx])
				sol.Proto = pi
				res.Solutions[pi] = sol
			}(idx, pi)
		}
		wg.Wait()
		if abortErr != nil {
			return nil, abortErr
		}

		unionVerts := bitvec.New(g.NumVertices())
		unionEdges := bitvec.New(g.NumDirectedEdges())
		var labels int64
		for idx, pi := range ids {
			e.metrics.Add(&metrics[idx])
			sol := res.Solutions[pi]
			unionVerts.Or(sol.Verts)
			unionEdges.Or(sol.Edges)
			sol.Verts.ForEach(func(v int) {
				res.Rho.Set(v, pi)
				labels++
			})
		}
		res.Levels = append(res.Levels, LevelStats{
			Dist:            dist,
			Prototypes:      len(ids),
			ActiveVertices:  unionVerts.Count(),
			LabelsGenerated: labels,
			Duration:        time.Since(start),
			ActiveFraction:  frac,
			Compacted:       searchLevel.View() != nil,
		})
		if dist > 0 {
			level = e.containmentState(res.Candidate, unionVerts, unionEdges, dist)
		}
	}
	res.Metrics = e.metrics
	return res, nil
}
