package core

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"time"

	"approxmatch/internal/bitvec"
	"approxmatch/internal/graph"
	"approxmatch/internal/pattern"
	"approxmatch/internal/prototype"
)

// RunParallel is the pipeline of Run with multi-level parallelism enabled
// (§4, "Multi-level Parallelism" — Fig. 8's scenario Z): the prototypes of
// each edit-distance level are searched concurrently on replicas of the
// level state, up to `parallelism` at a time, sharing one work-recycling
// cache. Results are bit-identical to Run's.
func RunParallel(g *graph.Graph, t *pattern.Template, cfg Config, parallelism int) (*Result, error) {
	return RunParallelContext(context.Background(), g, t, cfg, parallelism)
}

// RunParallelContext is RunParallel honoring ctx: each prototype-search
// goroutine carries its own cancellation probe, so a fired context stops
// every in-flight search and the run returns ctx.Err(). When ctx never
// fires, the results are identical to RunParallel's (and Run's).
//
// Budget exhaustion returns a non-nil Partial result alongside the
// ErrBudgetExhausted error, exactly like RunContext. A panic inside a
// prototype-search goroutine is returned as a *PanicError instead of
// crashing the process.
func RunParallelContext(ctx context.Context, g *graph.Graph, t *pattern.Template, cfg Config, parallelism int) (*Result, error) {
	ctx = withConfigBudget(ctx, cfg.Budget)
	cc := NewCancelCheck(ctx)
	var res *Result
	err := func() (err error) {
		defer RecoverCancel(&err)
		cc.Check()
		res, err = runParallel(cc, g, t, cfg, parallelism)
		return err
	}()
	if err != nil && (res == nil || !res.Partial) {
		return nil, err
	}
	return res, err
}

// testHookPrototypeSearch, when set, runs at the start of every
// prototype-search goroutine — the seam the panic-isolation tests use to
// inject a worker panic into a live query.
var testHookPrototypeSearch func(proto int)

func runParallel(cc *CancelCheck, g *graph.Graph, t *pattern.Template, cfg Config, parallelism int) (*Result, error) {
	if parallelism < 1 {
		parallelism = 1
	}
	if cfg.Restrict != nil && cfg.Restrict.Len() != g.NumVertices() {
		return nil, fmt.Errorf("core: restrict mask has %d bits for %d vertices",
			cfg.Restrict.Len(), g.NumVertices())
	}
	set, err := prototype.Generate(t, cfg.EditDistance)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	e := newEngine(g, set, cfg)
	defer e.close()
	// Pre-build walks and profiles serially: the engine's lazy maps are
	// not synchronized.
	for pi := range set.Protos {
		e.walksFor(pi)
		e.profileFor(pi)
	}

	res := &Result{
		Graph:     g,
		Template:  t,
		Set:       set,
		Rho:       bitvec.NewMatrix(g.NumVertices(), set.Count()),
		Solutions: make([]*Solution, set.Count()),
	}
	if err := func() (err error) {
		defer recoverBudgetAbort(&err)
		res.Candidate = maxCandidateSet(g, t, e.cfg.Restrict, e.pool, cc, &e.metrics)
		return nil
	}(); err != nil {
		return e.finishPartial(res, err)
	}

	level := res.Candidate
	for dist := set.MaxDist; dist >= 0; dist-- {
		next, err := e.runLevelParallel(res, level, dist, cc, parallelism)
		if err != nil {
			if errors.Is(err, ErrBudgetExhausted) {
				return e.finishPartial(res, err)
			}
			return nil, err
		}
		level = next
	}
	e.foldCache()
	res.Metrics = e.metrics
	return res, nil
}

// runLevelParallel is runLevel with the level's prototypes searched
// concurrently. Like the sequential variant it commits nothing into res
// until the whole level has completed, so a budget abort mid-level keeps the
// Partial contract: committed levels are always whole levels.
func (e *engine) runLevelParallel(res *Result, level *State, dist int, cc *CancelCheck, parallelism int) (next *State, err error) {
	defer recoverBudgetAbort(&err)
	cc.Check()
	set := res.Set
	start := time.Now()
	// Compact on the coordinator goroutine, before the level's searches
	// launch: the view and the engine metrics are not synchronized.
	frac := ActiveFraction(level)
	searchLevel := e.compact(level)
	ids := set.At(dist)
	sols := make([]*Solution, len(ids))
	metrics := make([]Metrics, len(ids))
	sem := make(chan struct{}, parallelism)
	var wg sync.WaitGroup
	var abortOnce sync.Once
	var abortErr error
	for idx, pi := range ids {
		wg.Add(1)
		go func(idx, pi int) {
			defer wg.Done()
			// A fired context or exhausted budget aborts this goroutine's
			// search via the pipelineAbort panic; capture the first one and
			// let the level finish draining (sibling searches abort on their
			// own probes within one check interval). Any other panic is a
			// worker bug: convert it to a *PanicError so one poisoned query
			// fails with an error instead of killing the process.
			defer func() {
				if r := recover(); r != nil {
					var ferr error
					if a, ok := r.(pipelineAbort); ok {
						ferr = a.err
					} else {
						ferr = &PanicError{Val: r, Stack: debug.Stack()}
					}
					abortOnce.Do(func() { abortErr = ferr })
				}
			}()
			sem <- struct{}{}
			defer func() { <-sem }()
			if h := testHookPrototypeSearch; h != nil {
				h(pi)
			}
			searchState := searchLevel
			if dist < set.MaxDist && len(set.Protos[pi].Children) == 0 {
				searchState = res.Candidate
			}
			t := set.Protos[pi].Template
			sol := searchTemplateOn(searchState, t, e.profiles[pi], e.walks[pi], e.cache, e.pool, cc.Fork(), e.cfg.CountMatches, &metrics[idx], e.cfg.kernel())
			sol.Proto = pi
			sols[idx] = sol
		}(idx, pi)
	}
	wg.Wait()
	// Fold the workers' counters before any abort: work actually performed
	// must reach the caller (and /metrics) even when the level dies.
	for idx := range metrics {
		e.metrics.Add(&metrics[idx])
	}
	if abortErr != nil {
		if errors.Is(abortErr, ErrBudgetExhausted) {
			// Re-enter the budget-abort path so the deferred
			// recoverBudgetAbort reports it uniformly.
			panic(pipelineAbort{abortErr})
		}
		return nil, abortErr
	}
	return e.commitLevel(res, sols, dist, frac, searchLevel.View() != nil, start, cc), nil
}
