package core

import (
	"fmt"
	"math/rand"
	"testing"

	"approxmatch/internal/graph"
)

// randomDelta builds a random valid mutation batch against g: a mix of
// inserts, deletes and relabels, honoring ApplyDelta's strictness rules.
func randomDelta(rng *rand.Rand, g *graph.Graph, labels int) *graph.Delta {
	n := g.NumVertices()
	db := graph.NewDeltaBuilder()
	edgeLabeled := g.HasEdgeLabels()
	used := make(map[graph.Edge]bool)
	ops := 1 + rng.Intn(4)
	for i := 0; i < ops; i++ {
		u, v := graph.VertexID(rng.Intn(n)), graph.VertexID(rng.Intn(n))
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		if used[graph.Edge{U: u, V: v}] {
			continue
		}
		used[graph.Edge{U: u, V: v}] = true
		if g.HasEdge(u, v) {
			db.DeleteEdge(u, v)
		} else if edgeLabeled {
			db.InsertEdgeLabeled(u, v, graph.Label(rng.Intn(2)))
		} else {
			db.InsertEdge(u, v)
		}
	}
	relabeled := make(map[graph.VertexID]bool)
	for i := 0; i < rng.Intn(3); i++ {
		v := graph.VertexID(rng.Intn(n))
		if relabeled[v] {
			continue
		}
		relabeled[v] = true
		db.RelabelVertex(v, graph.Label(rng.Intn(labels)))
	}
	return db.Delta()
}

// assertIncrementalEqual compares the result surfaces the incremental contract
// covers: Rho, per-prototype solution subgraphs, match counts and the
// semantic per-level stats.
func assertIncrementalEqual(t *testing.T, tag string, got, want *Result) {
	t.Helper()
	if !got.Rho.Equal(want.Rho) {
		t.Fatalf("%s: Rho differs from from-scratch run", tag)
	}
	if len(got.Solutions) != len(want.Solutions) {
		t.Fatalf("%s: %d solutions vs %d", tag, len(got.Solutions), len(want.Solutions))
	}
	for pi := range want.Solutions {
		gs, ws := got.Solutions[pi], want.Solutions[pi]
		if !gs.Verts.Equal(ws.Verts) {
			t.Fatalf("%s: prototype %d vertex set differs", tag, pi)
		}
		if !gs.Edges.Equal(ws.Edges) {
			t.Fatalf("%s: prototype %d edge set differs", tag, pi)
		}
		if gs.MatchCount != ws.MatchCount {
			t.Fatalf("%s: prototype %d match count %d, want %d", tag, pi, gs.MatchCount, ws.MatchCount)
		}
	}
	if len(got.Levels) != len(want.Levels) {
		t.Fatalf("%s: %d levels vs %d", tag, len(got.Levels), len(want.Levels))
	}
	for i, wl := range want.Levels {
		gl := got.Levels[i]
		if gl.Dist != wl.Dist || gl.Prototypes != wl.Prototypes ||
			gl.ActiveVertices != wl.ActiveVertices ||
			gl.LabelsGenerated != wl.LabelsGenerated || gl.Complete != wl.Complete {
			t.Fatalf("%s: level %d semantic stats differ: %+v vs %+v", tag, i, gl, wl)
		}
	}
}

// TestIncrementalDifferential is the randomized differential suite for the
// incremental maintenance path: over streams of insert/delete/relabel
// batches, the incrementally maintained result must stay bit-identical to a
// from-scratch run on the mutated graph — across worker counts, forced
// compaction and edge-labeled graphs. Each step chains off the previous
// incremental result, so drift would compound and get caught.
func TestIncrementalDifferential(t *testing.T) {
	for _, workers := range []int{0, 1, 3} {
		for _, compact := range []float64{0, 1.0} {
			t.Run(fmt.Sprintf("workers=%d/compact=%v", workers, compact), func(t *testing.T) {
				rng := rand.New(rand.NewSource(int64(4200 + workers*10 + int(compact))))
				for round := 0; round < 3; round++ {
					edgeLabeled := round%2 == 1
					var g *graph.Graph
					if edgeLabeled {
						g = randomEdgeLabeledGraph(rng, 40, 110, 3, 2)
					} else {
						g = randomGraph(rng, 40, 110, 3)
					}
					var tpl = randomTemplate(rng, 4, 3)
					if edgeLabeled {
						tpl = randomEdgeLabeledTemplate(rng, 4, 3, 2)
					}
					cfg := DefaultConfig(1 + rng.Intn(2))
					cfg.CountMatches = true
					cfg.Workers = workers
					cfg.CompactBelow = compact

					prev, err := Run(g, tpl, cfg)
					if err != nil {
						t.Fatal(err)
					}
					for step := 0; step < 4; step++ {
						d := randomDelta(rng, g, 3)
						ng, changed, err := graph.ApplyDelta(g, d)
						if err != nil {
							t.Fatalf("round %d step %d: %v", round, step, err)
						}
						inc, stats, err := RunIncremental(prev, ng, changed, cfg)
						if err != nil {
							t.Fatalf("round %d step %d: incremental: %v", round, step, err)
						}
						scratch, err := Run(ng, tpl, cfg)
						if err != nil {
							t.Fatalf("round %d step %d: scratch: %v", round, step, err)
						}
						tag := fmt.Sprintf("round %d step %d (|C|=%d |A|=%d |B|=%d r=%d)",
							round, step, stats.ChangedVertices, stats.AffectedVertices,
							stats.RegionVertices, stats.Radius)
						assertIncrementalEqual(t, tag, inc, scratch)
						if stats.AffectedVertices > stats.RegionVertices {
							t.Fatalf("%s: |A| > |B|", tag)
						}
						g, prev = ng, inc
					}
				}
			})
		}
	}
}

// TestIncrementalEmptyDelta: maintaining across a no-op change (an empty
// changed list, e.g. an epoch bump) must reproduce the previous result.
func TestIncrementalEmptyDelta(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := randomGraph(rng, 30, 80, 3)
	tpl := randomTemplate(rng, 4, 3)
	cfg := DefaultConfig(1)
	cfg.CountMatches = true
	prev, err := Run(g, tpl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	inc, stats, err := RunIncremental(prev, g, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.RegionVertices != 0 || stats.AffectedVertices != 0 {
		t.Errorf("empty delta grew a dirty region: %+v", stats)
	}
	assertIncrementalEqual(t, "empty delta", inc, prev)
}

// TestIncrementalContractErrors covers the validation surface.
func TestIncrementalContractErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := randomGraph(rng, 20, 40, 3)
	tpl := randomTemplate(rng, 4, 3)
	cfg := DefaultConfig(1)
	cfg.CountMatches = true
	prev, err := Run(g, tpl, cfg)
	if err != nil {
		t.Fatal(err)
	}

	if _, _, err := RunIncremental(nil, g, nil, cfg); err == nil {
		t.Error("nil prev accepted")
	}
	bad := cfg
	bad.EditDistance = 2
	if _, _, err := RunIncremental(prev, g, nil, bad); err == nil {
		t.Error("mismatched edit distance accepted")
	}
	bad = cfg
	bad.Restrict = prev.Solutions[0].Verts
	if _, _, err := RunIncremental(prev, g, nil, bad); err == nil {
		t.Error("caller-set Restrict accepted")
	}
	if _, _, err := RunIncremental(prev, g, []graph.VertexID{99}, cfg); err == nil {
		t.Error("out-of-range changed vertex accepted")
	}
	uncounted := cfg
	uncounted.CountMatches = false
	prevU, err := Run(g, tpl, uncounted)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := RunIncremental(prevU, g, nil, cfg); err == nil {
		t.Error("counting against an uncounted previous result accepted")
	}
	partial := &Result{}
	*partial = *prev
	partial.Partial = true
	if _, _, err := RunIncremental(partial, g, nil, cfg); err == nil {
		t.Error("partial prev accepted")
	}
}

// TestRestrictFullMaskIdentical: a Restrict mask covering every vertex must
// be bit-identical to an unrestricted run — results AND deterministic
// counters — on both the sequential and superstep schedules.
func TestRestrictFullMaskIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	g := randomGraph(rng, 30, 80, 3)
	tpl := randomTemplate(rng, 4, 3)
	for _, workers := range []int{0, 2} {
		cfg := DefaultConfig(1)
		cfg.CountMatches = true
		cfg.Workers = workers
		base, err := Run(g, tpl, cfg)
		if err != nil {
			t.Fatal(err)
		}
		full := NewFullState(g)
		cfg.Restrict = full.VertexBits()
		masked, err := Run(g, tpl, cfg)
		if err != nil {
			t.Fatal(err)
		}
		assertIncrementalEqual(t, fmt.Sprintf("workers=%d", workers), masked, base)
		if masked.Metrics.CandidateMessages != base.Metrics.CandidateMessages {
			t.Errorf("workers=%d: candidate messages %d, want %d",
				workers, masked.Metrics.CandidateMessages, base.Metrics.CandidateMessages)
		}
	}
}
