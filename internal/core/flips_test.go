package core

import (
	"math/rand"
	"testing"

	"approxmatch/internal/graph"
	"approxmatch/internal/pattern"
	"approxmatch/internal/prototype"
	"approxmatch/internal/refmatch"
)

func TestFlipsEnumeration(t *testing.T) {
	// Triangle with distinct labels: each flip removes one edge and adds
	// the... a triangle is complete, no addable edge → zero flips.
	tri := pattern.MustNew([]pattern.Label{1, 2, 3},
		[]pattern.Edge{{I: 0, J: 1}, {I: 1, J: 2}, {I: 0, J: 2}})
	flips, err := prototype.Flips(tri)
	if err != nil {
		t.Fatal(err)
	}
	if len(flips) != 0 {
		t.Errorf("complete template has %d flips, want 0", len(flips))
	}
	// Path a-b-c: remove a-b, add a-c → path b-c-a (distinct labels: a new
	// structure); remove b-c, add a-c similarly. 2 flips.
	p := pattern.MustNew([]pattern.Label{1, 2, 3}, []pattern.Edge{{I: 0, J: 1}, {I: 1, J: 2}})
	flips, err = prototype.Flips(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(flips) != 2 {
		t.Errorf("path flips = %d, want 2", len(flips))
	}
	for _, f := range flips {
		if f.Template.NumEdges() != p.NumEdges() {
			t.Error("flip changed edge count")
		}
		if !f.Template.Connected() {
			t.Error("flip disconnected")
		}
	}
	// Mandatory edges are never removed.
	pm, err := pattern.NewWithMandatory([]pattern.Label{1, 2, 3},
		[]pattern.Edge{{I: 0, J: 1}, {I: 1, J: 2}}, []bool{true, true})
	if err != nil {
		t.Fatal(err)
	}
	flips, err = prototype.Flips(pm)
	if err != nil {
		t.Fatal(err)
	}
	if len(flips) != 0 {
		t.Errorf("all-mandatory template has %d flips", len(flips))
	}
}

func TestMatchFlipsAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	for trial := 0; trial < 6; trial++ {
		g := randomGraph(rng, 25, 70, 3)
		tp := randomTemplate(rng, 4, 3)
		cfg := DefaultConfig(0)
		cfg.CountMatches = true
		res, err := MatchFlips(g, tp, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if want := refmatch.Count(g, tp, false); res.Base.MatchCount != want {
			t.Errorf("trial %d: base count %d, want %d", trial, res.Base.MatchCount, want)
		}
		for fi, f := range res.Flips {
			want := refmatch.Count(g, f.Template, false)
			if res.Solutions[fi].MatchCount != want {
				t.Errorf("trial %d flip %d (%v): count %d, want %d",
					trial, fi, f.Template, res.Solutions[fi].MatchCount, want)
			}
			wantVs, _ := refmatch.SolutionSubgraph(g, f.Template)
			for v := 0; v < g.NumVertices(); v++ {
				if res.Solutions[fi].Verts.Get(v) != wantVs[graph.VertexID(v)] {
					t.Errorf("trial %d flip %d: vertex %d wrong", trial, fi, v)
				}
			}
		}
		if res.TotalMatchCount() < res.Base.MatchCount {
			t.Error("total below base")
		}
	}
}
