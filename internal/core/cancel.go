package core

import "context"

// cancelInterval is the number of Tick calls between real context polls.
// Ticks sit on the pipeline's hot loops (per-vertex LCC work, NLCC token
// hops, verification probes), each of which does at least a neighborhood's
// worth of real work, so polling every 256 ticks keeps the overhead
// unmeasurable while reacting to cancellation within fractions of a
// millisecond even on heavily pruned (small) active sets.
const cancelInterval = 256

// CancelCheck is a cheap, amortized cancellation probe threaded through the
// pipeline phases. A nil *CancelCheck is valid and never fires, which is
// what NewCancelCheck returns for contexts that cannot be canceled — the
// context-free entry points keep their exact pre-context behavior and cost.
//
// A CancelCheck is NOT safe for concurrent use: parallel prototype searches
// must each Fork their own.
type CancelCheck struct {
	ctx context.Context
	n   uint32
}

// NewCancelCheck returns a probe for ctx, or nil when ctx can never be
// canceled (nil, context.Background, context.TODO).
func NewCancelCheck(ctx context.Context) *CancelCheck {
	if ctx == nil || ctx.Done() == nil {
		return nil
	}
	return &CancelCheck{ctx: ctx}
}

// Fork returns an independent probe for the same context, for use by a
// separate goroutine.
func (c *CancelCheck) Fork() *CancelCheck {
	if c == nil {
		return nil
	}
	return &CancelCheck{ctx: c.ctx}
}

// Tick is called from hot loops; every cancelInterval-th call polls the
// context and aborts the pipeline (via panic, see RecoverCancel) when the
// context has fired.
func (c *CancelCheck) Tick() {
	if c == nil {
		return
	}
	if c.n++; c.n%cancelInterval != 0 {
		return
	}
	c.Check()
}

// Check polls the context immediately and aborts the pipeline when it has
// fired. Entry points call it up front so a query with an already-expired
// deadline returns before any graph work starts.
func (c *CancelCheck) Check() {
	if c == nil {
		return
	}
	if err := c.ctx.Err(); err != nil {
		panic(pipelineAbort{err})
	}
}

// Abort unwinds the pipeline with err, to be converted back into an
// ordinary error by the nearest RecoverCancel. It is how deeply nested
// machinery (the distributed fault plane's quiescence deadline) surfaces a
// failure without threading error returns through every phase signature.
func Abort(err error) {
	panic(pipelineAbort{err})
}

// pipelineAbort carries a context error out of the deeply nested phase
// loops. Threading an error return through the LCC fixpoint, NLCC walks and
// the backtracking verifier would contaminate every signature for a path
// taken only on cancellation, so the abort travels as a panic and is
// converted back to an ordinary error at the pipeline entry points.
type pipelineAbort struct{ err error }

// RecoverCancel converts a cancellation abort into *err; any other panic is
// re-raised. Defer it in any function that calls pipeline internals with a
// live CancelCheck (the Context entry points here and in internal/dist do).
func RecoverCancel(err *error) {
	switch r := recover().(type) {
	case nil:
	case pipelineAbort:
		*err = r.err
	default:
		panic(r)
	}
}
