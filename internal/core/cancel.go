package core

import "context"

// cancelInterval is the number of Tick calls between real context polls.
// Ticks sit on the pipeline's hot loops (per-vertex LCC work, NLCC token
// hops, verification probes), each of which does at least a neighborhood's
// worth of real work, so polling every 256 ticks keeps the overhead
// unmeasurable while reacting to cancellation within fractions of a
// millisecond even on heavily pruned (small) active sets.
const cancelInterval = 256

// CancelCheck is a cheap, amortized cancellation *and budget* probe threaded
// through the pipeline phases. A nil *CancelCheck is valid and never fires,
// which is what NewCancelCheck returns for contexts that cannot be canceled
// and carry no budget — the context-free entry points keep their exact
// pre-context behavior and cost.
//
// When the context carries a BudgetTracker (WithBudget), every real poll
// also charges the ticks accumulated since the previous poll as work units,
// so budget accounting rides the existing amortization for free: the hot
// loops still only pay a local counter increment per tick.
//
// A CancelCheck is NOT safe for concurrent use: parallel prototype searches
// must each Fork their own (forks share the underlying tracker, whose
// counters are atomic).
type CancelCheck struct {
	ctx     context.Context
	tracker *BudgetTracker
	n       uint32
	// sinceCharge counts ticks not yet charged to the tracker.
	sinceCharge uint32
}

// NewCancelCheck returns a probe for ctx, or nil when ctx can never be
// canceled (nil, context.Background, context.TODO) and carries no budget.
func NewCancelCheck(ctx context.Context) *CancelCheck {
	if ctx == nil {
		return nil
	}
	t := BudgetFromContext(ctx)
	if ctx.Done() == nil && t == nil {
		return nil
	}
	return &CancelCheck{ctx: ctx, tracker: t}
}

// Fork returns an independent probe for the same context, for use by a
// separate goroutine. Forks charge the same shared budget tracker.
func (c *CancelCheck) Fork() *CancelCheck {
	if c == nil {
		return nil
	}
	return &CancelCheck{ctx: c.ctx, tracker: c.tracker}
}

// Tick is called from hot loops; every cancelInterval-th call polls the
// context and the budget, and aborts the pipeline (via panic, see
// RecoverCancel / recoverBudgetAbort) when either has fired.
func (c *CancelCheck) Tick() {
	if c == nil {
		return
	}
	c.sinceCharge++
	if c.n++; c.n%cancelInterval != 0 {
		return
	}
	c.Check()
}

// Check polls the context and the budget immediately and aborts the pipeline
// when either has fired. Entry points call it up front so a query with an
// already-expired deadline returns before any graph work starts; the
// superstep kernels call it at each barrier merge so budget exhaustion is
// observed at superstep granularity even when worker probes are mid-batch.
func (c *CancelCheck) Check() {
	if c == nil {
		return
	}
	if c.ctx != nil && c.ctx.Done() != nil {
		if err := c.ctx.Err(); err != nil {
			panic(pipelineAbort{err})
		}
	}
	if c.tracker != nil {
		n := int64(c.sinceCharge)
		c.sinceCharge = 0
		if err := c.tracker.charge(n); err != nil {
			panic(pipelineAbort{err})
		}
	}
}

// ChargeBytes charges an auxiliary allocation of n bytes against the run's
// budget, aborting the pipeline on exhaustion. The pipeline calls it at its
// few large allocation sites (state clones, candidate masks, containment
// states) — never from hot loops.
func (c *CancelCheck) ChargeBytes(n int64) {
	if c == nil || c.tracker == nil {
		return
	}
	if err := c.tracker.chargeBytes(n); err != nil {
		panic(pipelineAbort{err})
	}
}

// TryChargeBytes attempts to charge an *optional* allocation of n bytes and
// reports whether it fits under the budget. Callers that can proceed without
// the allocation (compacted views are an optimization, not a requirement)
// use it to decline gracefully instead of aborting.
func (c *CancelCheck) TryChargeBytes(n int64) bool {
	if c == nil || c.tracker == nil {
		return true
	}
	return c.tracker.tryChargeBytes(n)
}

// Abort unwinds the pipeline with err, to be converted back into an
// ordinary error by the nearest RecoverCancel. It is how deeply nested
// machinery (the distributed fault plane's quiescence deadline) surfaces a
// failure without threading error returns through every phase signature.
func Abort(err error) {
	panic(pipelineAbort{err})
}

// pipelineAbort carries a context error out of the deeply nested phase
// loops. Threading an error return through the LCC fixpoint, NLCC walks and
// the backtracking verifier would contaminate every signature for a path
// taken only on cancellation, so the abort travels as a panic and is
// converted back to an ordinary error at the pipeline entry points.
type pipelineAbort struct{ err error }

// RecoverCancel converts a cancellation abort into *err; any other panic is
// re-raised. Defer it in any function that calls pipeline internals with a
// live CancelCheck (the Context entry points here and in internal/dist do).
func RecoverCancel(err *error) {
	switch r := recover().(type) {
	case nil:
	case pipelineAbort:
		*err = r.err
	default:
		panic(r)
	}
}
