package core

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"approxmatch/internal/rmat"
)

// TestWorkerPanicIsolation injects a panic into one prototype-search
// goroutine and checks the parallel driver converts it into a *PanicError
// carrying the worker's stack — the query fails, the process survives, and a
// subsequent clean run on the same inputs is unaffected.
func TestWorkerPanicIsolation(t *testing.T) {
	g := rmat.Generate(rmat.Graph500(7, 55))
	tp := randomDecoratedTemplate(rand.New(rand.NewSource(55)), g)
	cfg := DefaultConfig(2)

	testHookPrototypeSearch = func(pi int) {
		if pi == 0 {
			panic("injected worker bug")
		}
	}
	res, err := RunParallel(g, tp, cfg, 2)
	testHookPrototypeSearch = nil
	if err == nil {
		t.Fatal("poisoned run succeeded")
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v (%T), want *PanicError", err, err)
	}
	if pe.Val != "injected worker bug" {
		t.Fatalf("PanicError.Val = %v", pe.Val)
	}
	if !strings.Contains(string(pe.Stack), "goroutine") {
		t.Fatal("PanicError carries no stack")
	}
	if res != nil {
		t.Fatal("panic must not yield a (possibly torn) result")
	}

	clean, err := RunParallel(g, tp, cfg, 2)
	if err != nil {
		t.Fatalf("clean rerun failed: %v", err)
	}
	want, err := Run(g, tp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, want, clean, "post-panic rerun")
}
