package core

import (
	"context"
	"fmt"

	"approxmatch/internal/graph"
	"approxmatch/internal/pattern"
	"approxmatch/internal/prototype"
)

// FlipResult reports an edge-flip search (§3.1's "edge 'flip'" extension):
// each flip variant is its own exact search with its own candidate set
// (flips can introduce label pairs the deletion candidate set excluded), so
// the containment rule does not apply; the work-recycling cache still
// shares constraint results across flips.
type FlipResult struct {
	// Base is the exact search of the original template.
	Base *Solution
	// Flips lists the flip prototypes, aligned with Solutions.
	Flips []*prototype.Flip
	// Solutions holds the exact solution subgraph of each flip.
	Solutions []*Solution
	// Metrics aggregates the work across all searches.
	Metrics Metrics
}

// MatchFlips searches the template and all of its single-edge-flip variants
// exactly.
func MatchFlips(g *graph.Graph, t *pattern.Template, cfg Config) (*FlipResult, error) {
	return MatchFlipsContext(context.Background(), g, t, cfg)
}

// MatchFlipsContext is MatchFlips honoring ctx: every per-variant search
// carries a cancellation probe and the run returns ctx.Err() once the
// context fires. When ctx never fires, the results are identical to
// MatchFlips'.
func MatchFlipsContext(ctx context.Context, g *graph.Graph, t *pattern.Template, cfg Config) (*FlipResult, error) {
	ctx = withConfigBudget(ctx, cfg.Budget)
	cc := NewCancelCheck(ctx)
	var res *FlipResult
	err := func() (err error) {
		defer RecoverCancel(&err)
		cc.Check()
		res, err = matchFlips(cc, g, t, cfg)
		return err
	}()
	if err != nil {
		return nil, err
	}
	return res, nil
}

func matchFlips(cc *CancelCheck, g *graph.Graph, t *pattern.Template, cfg Config) (*FlipResult, error) {
	flips, err := prototype.Flips(t)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	res := &FlipResult{Flips: flips}
	var cache *Cache
	if cfg.WorkRecycling {
		if cfg.SharedCache != nil {
			cache = cfg.SharedCache
		} else {
			cache = NewCacheBytes(g.NumVertices(), cfg.CacheBytes)
		}
	}
	pool := NewPool(cfg.Workers)
	defer pool.Close()
	search := func(tpl *pattern.Template) *Solution {
		cc.Check()
		var m Metrics
		s := maxCandidateSet(g, tpl, cfg.Restrict, pool, cc, &m)
		// Each flip variant has its own candidate set; compact it when the
		// label classes are selective enough. Cache keys stay in original-id
		// space, so recycling still crosses flips.
		s = CompactStateBudgeted(s, cfg.CompactBelow, &m, cc)
		var freq map[pattern.Label]int64
		if cfg.FrequencyOrdering {
			freq = g.LabelFrequencies()
			freq[pattern.Wildcard] = int64(g.NumVertices())
		}
		sol := searchTemplateOn(s, tpl, buildLocalProfile(tpl), preparedWalks(g, tpl, freq), cache, pool, cc, cfg.CountMatches, &m, cfg.kernel())
		res.Metrics.Add(&m)
		return sol
	}
	res.Base = search(t)
	for _, f := range flips {
		res.Solutions = append(res.Solutions, search(f.Template))
	}
	if cache != nil {
		res.Metrics.CacheEvictions += cache.Evictions()
	}
	return res, nil
}

// TotalMatchCount sums counts across the base and every flip (-1 when not
// counted).
func (r *FlipResult) TotalMatchCount() int64 {
	if r.Base.MatchCount < 0 {
		return -1
	}
	total := r.Base.MatchCount
	for _, sol := range r.Solutions {
		if sol.MatchCount < 0 {
			return -1
		}
		total += sol.MatchCount
	}
	return total
}
