package core

import (
	"fmt"

	"approxmatch/internal/graph"
	"approxmatch/internal/pattern"
	"approxmatch/internal/prototype"
)

// FlipResult reports an edge-flip search (§3.1's "edge 'flip'" extension):
// each flip variant is its own exact search with its own candidate set
// (flips can introduce label pairs the deletion candidate set excluded), so
// the containment rule does not apply; the work-recycling cache still
// shares constraint results across flips.
type FlipResult struct {
	// Base is the exact search of the original template.
	Base *Solution
	// Flips lists the flip prototypes, aligned with Solutions.
	Flips []*prototype.Flip
	// Solutions holds the exact solution subgraph of each flip.
	Solutions []*Solution
	// Metrics aggregates the work across all searches.
	Metrics Metrics
}

// MatchFlips searches the template and all of its single-edge-flip variants
// exactly.
func MatchFlips(g *graph.Graph, t *pattern.Template, cfg Config) (*FlipResult, error) {
	flips, err := prototype.Flips(t)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	res := &FlipResult{Flips: flips}
	var cache *Cache
	if cfg.WorkRecycling {
		cache = NewCache(g.NumVertices())
	}
	search := func(tpl *pattern.Template) *Solution {
		var m Metrics
		s := MaxCandidateSet(g, tpl, &m)
		var freq map[pattern.Label]int64
		if cfg.FrequencyOrdering {
			freq = g.LabelFrequencies()
			freq[pattern.Wildcard] = int64(g.NumVertices())
		}
		sol := searchTemplateOn(s, tpl, buildLocalProfile(tpl), preparedWalks(g, tpl, freq), cache, cfg.CountMatches, &m)
		res.Metrics.Add(&m)
		return sol
	}
	res.Base = search(t)
	for _, f := range flips {
		res.Solutions = append(res.Solutions, search(f.Template))
	}
	return res, nil
}

// TotalMatchCount sums counts across the base and every flip (-1 when not
// counted).
func (r *FlipResult) TotalMatchCount() int64 {
	if r.Base.MatchCount < 0 {
		return -1
	}
	total := r.Base.MatchCount
	for _, sol := range r.Solutions {
		if sol.MatchCount < 0 {
			return -1
		}
		total += sol.MatchCount
	}
	return total
}
