package core

import (
	"fmt"
	"math/rand"
	"testing"

	"approxmatch/internal/graph"
	"approxmatch/internal/pattern"
	"approxmatch/internal/rmat"
)

func BenchmarkMaxCandidateSet(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := randomGraph(rng, 5000, 20000, 4)
	tp := pattern.MustNew([]pattern.Label{0, 1, 2},
		[]pattern.Edge{{I: 0, J: 1}, {I: 1, J: 2}, {I: 0, J: 2}})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var m Metrics
		MaxCandidateSet(g, tp, &m)
	}
}

func BenchmarkExactMatchTriangle(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	g := randomGraph(rng, 5000, 20000, 4)
	tp := pattern.MustNew([]pattern.Label{0, 1, 2},
		[]pattern.Edge{{I: 0, J: 1}, {I: 1, J: 2}, {I: 0, J: 2}})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ExactMatch(g, tp, true, false)
	}
}

func BenchmarkPipelineK2(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	g := randomGraph(rng, 3000, 12000, 4)
	tp := pattern.MustNew([]pattern.Label{0, 1, 2, 3},
		[]pattern.Edge{{I: 0, J: 1}, {I: 1, J: 2}, {I: 2, J: 3}, {I: 0, J: 3}, {I: 0, J: 2}})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(g, tp, DefaultConfig(2)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWorkRecyclingAblation(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	g := randomGraph(rng, 3000, 15000, 3)
	tp := pattern.MustNew([]pattern.Label{0, 1, 0, 1, 2},
		[]pattern.Edge{{I: 0, J: 1}, {I: 1, J: 2}, {I: 2, J: 3}, {I: 0, J: 3}, {I: 3, J: 4}})
	for _, recycle := range []bool{false, true} {
		name := "off"
		if recycle {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			cfg := DefaultConfig(2)
			cfg.WorkRecycling = recycle
			for i := 0; i < b.N; i++ {
				if _, err := Run(g, tp, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchRMAT builds the shared benchmark graph/template pair for the kernel
// worker benchmarks: a scale-12 R-MAT graph and a decorated triangle over
// its densest label classes.
func benchRMAT(b *testing.B) (*graph.Graph, *pattern.Template) {
	b.Helper()
	p := rmat.Graph500(12, 42)
	p.EdgeFactor = 8
	g := rmat.Generate(p)
	tp := pattern.MustNew([]pattern.Label{2, 3, 2},
		[]pattern.Edge{{I: 0, J: 1}, {I: 1, J: 2}, {I: 0, J: 2}})
	return g, tp
}

func BenchmarkMaxCandidateSetWorkers(b *testing.B) {
	g, tp := benchRMAT(b)
	for _, workers := range []int{0, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				var m Metrics
				MaxCandidateSetWorkers(g, tp, workers, &m)
			}
		})
	}
}

func BenchmarkSearchWorkers(b *testing.B) {
	g, tp := benchRMAT(b)
	for _, workers := range []int{0, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := DefaultConfig(1)
			cfg.Workers = workers
			for i := 0; i < b.N; i++ {
				if _, err := Run(g, tp, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
