package core

import (
	"math/rand"
	"testing"

	"approxmatch/internal/pattern"
)

func BenchmarkMaxCandidateSet(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := randomGraph(rng, 5000, 20000, 4)
	tp := pattern.MustNew([]pattern.Label{0, 1, 2},
		[]pattern.Edge{{I: 0, J: 1}, {I: 1, J: 2}, {I: 0, J: 2}})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var m Metrics
		MaxCandidateSet(g, tp, &m)
	}
}

func BenchmarkExactMatchTriangle(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	g := randomGraph(rng, 5000, 20000, 4)
	tp := pattern.MustNew([]pattern.Label{0, 1, 2},
		[]pattern.Edge{{I: 0, J: 1}, {I: 1, J: 2}, {I: 0, J: 2}})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ExactMatch(g, tp, true, false)
	}
}

func BenchmarkPipelineK2(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	g := randomGraph(rng, 3000, 12000, 4)
	tp := pattern.MustNew([]pattern.Label{0, 1, 2, 3},
		[]pattern.Edge{{I: 0, J: 1}, {I: 1, J: 2}, {I: 2, J: 3}, {I: 0, J: 3}, {I: 0, J: 2}})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(g, tp, DefaultConfig(2)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWorkRecyclingAblation(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	g := randomGraph(rng, 3000, 15000, 3)
	tp := pattern.MustNew([]pattern.Label{0, 1, 0, 1, 2},
		[]pattern.Edge{{I: 0, J: 1}, {I: 1, J: 2}, {I: 2, J: 3}, {I: 0, J: 3}, {I: 3, J: 4}})
	for _, recycle := range []bool{false, true} {
		name := "off"
		if recycle {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			cfg := DefaultConfig(2)
			cfg.WorkRecycling = recycle
			for i := 0; i < b.N; i++ {
				if _, err := Run(g, tp, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
