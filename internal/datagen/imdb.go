package datagen

import (
	"math/rand"

	"approxmatch/internal/graph"
	"approxmatch/internal/pattern"
)

// IMDb-like vertex labels. Movies are bucketed by release window so the
// IMDB-1 query's "between 2012 and 2017" constraint becomes a label; genres
// split into Sport (the queried one) and the long tail.
const (
	IMDbActress graph.Label = iota
	IMDbActor
	IMDbDirector
	IMDbGenreSport
	IMDbGenreOther
	IMDbMovieRecent // released 2012–2017
	IMDbMovieOld
)

// IMDbConfig sizes the synthetic movie metadata graph.
type IMDbConfig struct {
	NumActresses int
	NumActors    int
	NumDirectors int
	NumGenres    int
	NumMovies    int
	Seed         int64
	// PlantTuples injects that many IMDB-1-style tuples (a team sharing
	// two recent Sport movies), alternating full and partial instances.
	PlantTuples int
}

// DefaultIMDbConfig returns a laptop-scale IMDb-like configuration.
func DefaultIMDbConfig() IMDbConfig {
	return IMDbConfig{
		NumActresses: 4000,
		NumActors:    4000,
		NumDirectors: 1500,
		NumGenres:    25,
		NumMovies:    12000,
		Seed:         3,
		PlantTuples:  30,
	}
}

// IMDb builds the bipartite movie metadata graph: edges connect movies to
// actresses, actors, directors and genres only.
func IMDb(cfg IMDbConfig) *graph.Graph {
	rng := rand.New(rand.NewSource(cfg.Seed))
	b := graph.NewBuilder(0)

	actresses := addAll(b, cfg.NumActresses, IMDbActress)
	actors := addAll(b, cfg.NumActors, IMDbActor)
	directors := addAll(b, cfg.NumDirectors, IMDbDirector)
	genres := make([]graph.VertexID, cfg.NumGenres)
	genres[0] = b.AddVertex(IMDbGenreSport)
	for i := 1; i < cfg.NumGenres; i++ {
		genres[i] = b.AddVertex(IMDbGenreOther)
	}
	for i := 0; i < cfg.NumMovies; i++ {
		label := IMDbMovieOld
		if rng.Intn(5) == 0 {
			label = IMDbMovieRecent
		}
		m := b.AddVertex(label)
		// Cast: 1-3 actresses, 1-3 actors, one director, 1-2 genres.
		for j := 0; j < 1+rng.Intn(3); j++ {
			b.AddEdge(m, actresses[rng.Intn(len(actresses))])
		}
		for j := 0; j < 1+rng.Intn(3); j++ {
			b.AddEdge(m, actors[rng.Intn(len(actors))])
		}
		b.AddEdge(m, directors[rng.Intn(len(directors))])
		b.AddEdge(m, genres[rng.Intn(len(genres))])
		if rng.Intn(4) == 0 {
			b.AddEdge(m, genres[rng.Intn(len(genres))])
		}
	}
	if cfg.PlantTuples > 0 {
		plantIMDbTuples(rng, b, genres[0], cfg.PlantTuples)
	}
	return b.Build()
}

func addAll(b *graph.Builder, n int, l graph.Label) []graph.VertexID {
	out := make([]graph.VertexID, n)
	for i := range out {
		out[i] = b.AddVertex(l)
	}
	return out
}

// plantIMDbTuples injects IMDB-1 structures: two recent Sport movies
// sharing an actress, actor and director — with some instances missing one
// or two of the second-movie person edges (the approximate matches).
func plantIMDbTuples(rng *rand.Rand, b *graph.Builder, sport graph.VertexID, count int) {
	for i := 0; i < count; i++ {
		a := b.AddVertex(IMDbActress)
		c := b.AddVertex(IMDbActor)
		d := b.AddVertex(IMDbDirector)
		m1 := b.AddVertex(IMDbMovieRecent)
		m2 := b.AddVertex(IMDbMovieRecent)
		b.AddEdge(sport, m1)
		b.AddEdge(sport, m2)
		b.AddEdge(a, m1)
		b.AddEdge(c, m1)
		b.AddEdge(d, m1)
		// Second movie: drop 0-2 person edges round-robin.
		drop := i % 3
		people := []graph.VertexID{a, c, d}
		for j, p := range people {
			if j >= len(people)-drop {
				continue
			}
			b.AddEdge(p, m2)
		}
	}
}

// IMDB1 is the §5.5 information-mining template (Fig. 10): actress, actor,
// director and two recent movies in the Sport genre, where at least one
// individual keeps the same role in both movies. The first-movie edges and
// the genre edges are mandatory; the second-movie person edges are optional.
// With k=2 this yields the paper's seven prototypes.
func IMDB1() *pattern.Template {
	t, err := pattern.NewWithMandatory(
		[]pattern.Label{
			IMDbActress,     // 0
			IMDbActor,       // 1
			IMDbDirector,    // 2
			IMDbGenreSport,  // 3
			IMDbMovieRecent, // 4: M1
			IMDbMovieRecent, // 5: M2
		},
		[]pattern.Edge{
			{I: 0, J: 4}, // actress-M1   mandatory
			{I: 1, J: 4}, // actor-M1     mandatory
			{I: 2, J: 4}, // director-M1  mandatory
			{I: 3, J: 4}, // sport-M1     mandatory
			{I: 3, J: 5}, // sport-M2     mandatory
			{I: 0, J: 5}, // actress-M2   optional
			{I: 1, J: 5}, // actor-M2     optional
			{I: 2, J: 5}, // director-M2  optional
		},
		[]bool{true, true, true, true, true, false, false, false},
	)
	if err != nil {
		panic(err)
	}
	return t
}

// IMDB1EditDistance is the edit distance used for the IMDB-1 query in §5.5.
const IMDB1EditDistance = 2
