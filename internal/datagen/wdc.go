package datagen

import (
	"math/rand"

	"approxmatch/internal/graph"
	"approxmatch/internal/pattern"
)

// Domain labels for the WDC-like webgraph, ordered by frequency rank so the
// Zipf assignment makes Com the most frequent, Org second, and Ac rare —
// matching the frequency relationships the paper reports for its WDC labels.
const (
	LabelCom graph.Label = iota
	LabelOrg
	LabelNet
	LabelEdu
	LabelGov
	LabelInfo
	LabelIo
	LabelCo
	LabelBiz
	LabelAc
	NumWDCLabels = 30 // long tail of rarer domains beyond the named ones
)

// WDCConfig sizes the synthetic webgraph.
type WDCConfig struct {
	NumVertices    int
	EdgesPerVertex int
	Seed           int64
	// PlantExact / PlantPartial inject that many full / one-edge-short
	// WDC-1 instances so the approximate queries have guaranteed matches.
	PlantExact   int
	PlantPartial int
	// PlantNearClique injects that many 6-clique-minus-4-edges org
	// structures, the first matches the WDC-4 exploratory search discovers
	// at k=4 (§5.5).
	PlantNearClique int
}

// DefaultWDCConfig returns a laptop-scale WDC-like graph configuration.
func DefaultWDCConfig() WDCConfig {
	return WDCConfig{NumVertices: 50000, EdgesPerVertex: 8, Seed: 1, PlantExact: 20, PlantPartial: 40}
}

// WDC builds the synthetic webgraph: preferential-attachment topology with
// Zipf-distributed domain labels.
func WDC(cfg WDCConfig) *graph.Graph {
	rng := rand.New(rand.NewSource(cfg.Seed))
	b := graph.NewBuilder(cfg.NumVertices)
	labels := zipfLabels(rng, cfg.NumVertices, NumWDCLabels, 1.4)
	for v, l := range labels {
		b.SetLabel(graph.VertexID(v), l)
	}
	prefAttachEdges(rng, b, cfg.NumVertices, cfg.EdgesPerVertex)
	// Planted instances make the WDC patterns "naturally occurring" in the
	// synthetic graph the way they are in the real webgraph: exact copies
	// plus partial copies at one and two deletions.
	for _, tpl := range []*pattern.Template{WDC1(), WDC2(), WDC3()} {
		if cfg.PlantExact > 0 {
			Plant(rng, b, tpl, cfg.PlantExact)
		}
		if cfg.PlantPartial > 0 {
			PlantPartial(rng, b, tpl, cfg.PlantPartial, 1)
			PlantPartial(rng, b, tpl, cfg.PlantPartial/2, 2)
		}
	}
	if cfg.PlantNearClique > 0 {
		PlantPartial(rng, b, WDC4(), cfg.PlantNearClique, 4)
	}
	return b.Build()
}

// WDC1 is the WDC-1 pattern (Fig. 5): two triangles sharing an edge with a
// pendant — cycles sharing edges force TDS verification.
//
//	org — net
//	 | \  /|
//	 |  \/ |
//	 |  /\ |
//	edu    gov — ac
func WDC1() *pattern.Template {
	return pattern.MustNew(
		[]pattern.Label{LabelOrg, LabelNet, LabelEdu, LabelGov, LabelAc},
		[]pattern.Edge{
			{I: 0, J: 1},               // org-net (shared edge)
			{I: 0, J: 2}, {I: 1, J: 2}, // triangle 1 with edu
			{I: 0, J: 3}, {I: 1, J: 3}, // triangle 2 with gov
			{I: 3, J: 4}, // pendant ac
		})
}

// WDC2 is the WDC-2 pattern (Fig. 5): a 4-cycle with a chord plus a tail —
// multiple cycles sharing an edge and a repeated frequent label.
func WDC2() *pattern.Template {
	return pattern.MustNew(
		[]pattern.Label{LabelOrg, LabelNet, LabelOrg, LabelEdu, LabelGov, LabelAc},
		[]pattern.Edge{
			{I: 0, J: 1}, {I: 1, J: 2}, {I: 2, J: 3}, {I: 0, J: 3}, // 4-cycle
			{I: 1, J: 3}, // chord
			{I: 2, J: 4}, // tail
			{I: 4, J: 5}, // tail
		})
}

// WDC3 is the WDC-3 pattern (Fig. 5): the prototype-count stress test — a
// dense 6-vertex pattern whose k=4 prototype set exceeds 100 classes.
func WDC3() *pattern.Template {
	return pattern.MustNew(
		[]pattern.Label{LabelOrg, LabelNet, LabelEdu, LabelGov, LabelCo, LabelAc},
		[]pattern.Edge{
			{I: 0, J: 1}, {I: 1, J: 2}, {I: 2, J: 3}, {I: 3, J: 4}, {I: 4, J: 5}, {I: 0, J: 5}, // 6-cycle
			{I: 0, J: 2}, {I: 0, J: 3}, {I: 1, J: 3}, {I: 2, J: 5}, // chords
		})
}

// WDC4 is the WDC-4 pattern (Fig. 5): the 6-Clique on the most frequent
// label, used by the top-down exploratory search of §5.5.
func WDC4() *pattern.Template {
	labels := make([]pattern.Label, 6)
	for i := range labels {
		labels[i] = LabelOrg
	}
	var edges []pattern.Edge
	for i := 0; i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			edges = append(edges, pattern.Edge{I: i, J: j})
		}
	}
	return pattern.MustNew(labels, edges)
}
