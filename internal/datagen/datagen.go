// Package datagen builds the deterministic synthetic stand-ins for the
// paper's datasets (§5: WDC, Reddit, IMDb, the Arabesque-comparison graphs)
// together with the search templates of Figs. 4, 5 and 10. Real datasets are
// hundreds of billions of edges; these generators reproduce the relevant
// structure — skewed degrees, label skew, typed adjacency — at scales a
// single machine handles, per the reproduction's substitution rules
// (DESIGN.md §2). Planting utilities inject known template instances so
// experiments have guaranteed, countable matches.
package datagen

import (
	"math/rand"

	"approxmatch/internal/graph"
	"approxmatch/internal/pattern"
)

// zipfLabels assigns labels 0..numLabels-1 with a Zipf-like distribution
// (label 0 most frequent), mirroring the heavy label skew of the WDC domain
// labels.
func zipfLabels(rng *rand.Rand, n, numLabels int, s float64) []graph.Label {
	z := rand.NewZipf(rng, s, 1, uint64(numLabels-1))
	labels := make([]graph.Label, n)
	for i := range labels {
		labels[i] = graph.Label(z.Uint64())
	}
	return labels
}

// prefAttachEdges emits m undirected edges with preferential attachment,
// producing the skewed degree distribution of web/social graphs.
func prefAttachEdges(rng *rand.Rand, b *graph.Builder, n, edgesPerVertex int) {
	// targets repeats vertices proportionally to their degree.
	targets := make([]graph.VertexID, 0, 2*n*edgesPerVertex)
	for v := 1; v < n; v++ {
		for e := 0; e < edgesPerVertex; e++ {
			var u graph.VertexID
			if len(targets) == 0 || rng.Float64() < 0.2 {
				u = graph.VertexID(rng.Intn(v))
			} else {
				u = targets[rng.Intn(len(targets))]
			}
			b.AddEdge(graph.VertexID(v), u)
			targets = append(targets, u, graph.VertexID(v))
		}
	}
}

// Plant injects count instances of template t into the builder: for each
// instance it picks fresh vertices, labels them to match the template and
// adds the template's edges. It returns the planted vertex tuples.
func Plant(rng *rand.Rand, b *graph.Builder, t *pattern.Template, count int) [][]graph.VertexID {
	planted := make([][]graph.VertexID, 0, count)
	for i := 0; i < count; i++ {
		tuple := make([]graph.VertexID, t.NumVertices())
		for q := 0; q < t.NumVertices(); q++ {
			tuple[q] = b.AddVertex(t.Label(q))
		}
		for _, e := range t.Edges() {
			b.AddEdge(tuple[e.I], tuple[e.J])
		}
		// Attach the instance to the rest of the graph through one random
		// vertex so the graph stays connected-ish.
		if b.NumVertices() > t.NumVertices()+1 {
			anchor := graph.VertexID(rng.Intn(b.NumVertices() - t.NumVertices()))
			b.AddEdge(tuple[rng.Intn(len(tuple))], anchor)
		}
		planted = append(planted, tuple)
	}
	return planted
}

// PlantPartial injects count instances of t with `missing` randomly chosen
// optional edges left out — approximate matches at the given edit distance.
func PlantPartial(rng *rand.Rand, b *graph.Builder, t *pattern.Template, count, missing int) [][]graph.VertexID {
	planted := make([][]graph.VertexID, 0, count)
	var optional []int
	for i := 0; i < t.NumEdges(); i++ {
		if !t.Mandatory(i) {
			optional = append(optional, i)
		}
	}
	for i := 0; i < count; i++ {
		skip := make(map[int]bool)
		perm := rng.Perm(len(optional))
		for j := 0; j < missing && j < len(optional); j++ {
			skip[optional[perm[j]]] = true
		}
		tuple := make([]graph.VertexID, t.NumVertices())
		for q := 0; q < t.NumVertices(); q++ {
			tuple[q] = b.AddVertex(t.Label(q))
		}
		for ei, e := range t.Edges() {
			if !skip[ei] {
				b.AddEdge(tuple[e.I], tuple[e.J])
			}
		}
		planted = append(planted, tuple)
	}
	return planted
}

// ER returns an Erdős–Rényi-style unlabeled graph with n vertices and ~m
// edges, deterministic in seed.
func ER(n, m int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for i := 0; i < m; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			b.AddEdge(graph.VertexID(u), graph.VertexID(v))
		}
	}
	return b.Build()
}

// PowerLaw returns an unlabeled preferential-attachment graph with n
// vertices and ~n*epv edges.
func PowerLaw(n, epv int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	prefAttachEdges(rng, b, n, epv)
	return b.Build()
}

// newRand returns a deterministic RNG; exported-for-tests helper.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
