package datagen

import (
	"approxmatch/internal/graph"
	"approxmatch/internal/pattern"
	"approxmatch/internal/rmat"
)

// The §5.6 comparison graphs (CiteSeer, Mico, Patent, YouTube, LiveJournal)
// are unlabeled real-world graphs used for motif counting. These generators
// reproduce their scale relationships — CiteSeer tiny and sparse, the others
// progressively larger and denser — at sizes the in-process TLE baseline can
// still materialize embeddings for. Sizes are scaled down uniformly; the
// comparison's behaviour (embedding blow-up on the larger graphs and
// patterns) is preserved.

// CiteSeerLike matches the real CiteSeer's published size (3.3K vertices,
// ~4.7K undirected edges).
func CiteSeerLike() *graph.Graph { return ER(3300, 4700, 101) }

// MicoLike is a scaled-down Mico (dense co-authorship-like).
func MicoLike() *graph.Graph { return PowerLaw(8000, 11, 102) }

// PatentLike is a scaled-down citation network (moderate density).
func PatentLike() *graph.Graph { return ER(20000, 100000, 103) }

// YouTubeLike is a scaled-down social network with heavy degree skew.
func YouTubeLike() *graph.Graph { return PowerLaw(15000, 10, 104) }

// LiveJournalLike is a scaled-down social network, denser than YouTubeLike.
func LiveJournalLike() *graph.Graph { return PowerLaw(12000, 14, 105) }

// RMAT1 is the Fig. 4 weak-scaling pattern, instantiated against a concrete
// R-MAT graph: a theta graph (two hubs joined by three paths of lengths 2,
// 2 and 3) with a pendant, labeled with the three most frequent
// degree-derived labels of g. Like the paper's RMAT-1 it reaches exactly
// k=2 before disconnecting and generates exactly 24 prototypes — 7 at k=1
// and 16 at k=2 — while its labels cover a large fraction (~45%) of the
// vertices.
func RMAT1(g *graph.Graph) *pattern.Template {
	top := topLabels(g, 3)
	l0, l1, l2 := top[0], top[1], top[2]
	return pattern.MustNew(
		[]pattern.Label{l0, l1, l2, l0, l1, l2, l0},
		[]pattern.Edge{
			{I: 0, J: 2}, {I: 2, J: 1}, // path 1 (length 2)
			{I: 0, J: 3}, {I: 3, J: 1}, // path 2 (length 2)
			{I: 0, J: 4}, {I: 4, J: 5}, {I: 5, J: 1}, // path 3 (length 3)
			{I: 1, J: 6}, // pendant
		})
}

// topLabels returns the n most frequent labels of g, most frequent first.
func topLabels(g *graph.Graph, n int) []graph.Label {
	freq := g.LabelFrequencies()
	out := make([]graph.Label, 0, n)
	for len(out) < n {
		var best graph.Label
		var bestCount int64 = -1
		for l, c := range freq {
			if c > bestCount {
				best, bestCount = l, c
			}
		}
		if bestCount < 0 {
			break
		}
		out = append(out, best)
		delete(freq, best)
	}
	for len(out) < n {
		out = append(out, out[len(out)-1])
	}
	return out
}

// RMATGraph generates the weak-scaling R-MAT graph at the given scale with
// degree labels (Graph500 parameters).
func RMATGraph(scale int) *graph.Graph {
	return rmat.Generate(rmat.Graph500(scale, int64(1000+scale)))
}

// RMATWithPattern generates the weak-scaling R-MAT graph and its RMAT-1
// template, planting exact and partial template instances in proportion to
// graph size so the weak-scaling workload has the paper's property of
// matches growing with the graph.
func RMATWithPattern(scale int) (*graph.Graph, *pattern.Template) {
	g0 := RMATGraph(scale)
	tpl := RMAT1(g0)
	rng := newRand(int64(7700 + scale))
	b := graph.NewBuilder(0)
	for v := 0; v < g0.NumVertices(); v++ {
		b.AddVertex(g0.Label(graph.VertexID(v)))
	}
	for _, e := range g0.Edges() {
		b.AddEdge(e.U, e.V)
	}
	count := g0.NumVertices() / 256
	if count < 4 {
		count = 4
	}
	Plant(rng, b, tpl, count)
	PlantPartial(rng, b, tpl, count, 1)
	PlantPartial(rng, b, tpl, count/2, 2)
	return b.Build(), tpl
}
