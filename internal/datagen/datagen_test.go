package datagen

import (
	"testing"

	"approxmatch/internal/graph"
	"approxmatch/internal/prototype"
	"approxmatch/internal/refmatch"
)

func TestWDCGraphShape(t *testing.T) {
	cfg := DefaultWDCConfig()
	cfg.NumVertices = 5000
	cfg.PlantExact, cfg.PlantPartial = 5, 5
	g := WDC(cfg)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	s := graph.ComputeStats(g)
	if s.NumVertices < 5000 {
		t.Errorf("vertices = %d", s.NumVertices)
	}
	// Skewed degrees: max degree far above average.
	if float64(s.MaxDegree) < 5*s.AvgDegree {
		t.Errorf("degree distribution not skewed: max=%d avg=%.1f", s.MaxDegree, s.AvgDegree)
	}
	// Zipf labels: label 0 (com) more frequent than label 9 (ac).
	freq := g.LabelFrequencies()
	if freq[LabelCom] <= freq[LabelAc] {
		t.Errorf("label skew wrong: com=%d ac=%d", freq[LabelCom], freq[LabelAc])
	}
	// Planted instances guarantee matches.
	if got := refmatch.Count(g, WDC1(), false); got < int64(cfg.PlantExact) {
		t.Errorf("WDC1 matches = %d, want >= %d", got, cfg.PlantExact)
	}
}

func TestWDCTemplateProperties(t *testing.T) {
	// WDC-1/2 must have cycles sharing edges (forces TDS); WDC-3 must
	// generate 100+ prototypes within k=4; WDC-4 is the 6-clique.
	if WDC1().EdgeMonocyclic() {
		t.Error("WDC-1 should have cycles sharing edges")
	}
	if WDC2().EdgeMonocyclic() {
		t.Error("WDC-2 should have cycles sharing edges")
	}
	s3, err := prototype.Generate(WDC3(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if s3.Count() < 100 {
		t.Errorf("WDC-3 prototypes within k=4: %d, want 100+", s3.Count())
	}
	if WDC4().NumEdges() != 15 || WDC4().NumVertices() != 6 {
		t.Error("WDC-4 should be the 6-clique")
	}
}

func TestRDT1FiveProtoTypes(t *testing.T) {
	s, err := prototype.Generate(RDT1(), RDT1EditDistance)
	if err != nil {
		t.Fatal(err)
	}
	if s.Count() != 5 {
		t.Errorf("RDT-1 prototypes = %d, want 5 (paper §5.5)", s.Count())
	}
}

func TestIMDB1SevenPrototypes(t *testing.T) {
	s, err := prototype.Generate(IMDB1(), IMDB1EditDistance)
	if err != nil {
		t.Fatal(err)
	}
	if s.Count() != 7 {
		t.Errorf("IMDB-1 prototypes = %d, want 7 (paper §5.5)", s.Count())
	}
}

func TestRedditGraphTyped(t *testing.T) {
	cfg := DefaultRedditConfig()
	cfg.NumAuthors, cfg.NumPosts, cfg.NumComments = 500, 1500, 3000
	cfg.PlantAdversarial = 5
	g := Reddit(cfg)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Type discipline: no author-author or subreddit-comment edges.
	for v := 0; v < g.NumVertices(); v++ {
		lv := g.Label(graph.VertexID(v))
		for _, u := range g.Neighbors(graph.VertexID(v)) {
			lu := g.Label(u)
			if lv == RedditAuthor && lu == RedditAuthor {
				t.Fatalf("author-author edge (%d,%d)", v, u)
			}
			if lv == RedditSubreddit && lu != RedditPostPos && lu != RedditPostNeg && lu != RedditPostNeutral {
				t.Fatalf("subreddit connected to non-post (%d,%d)", v, u)
			}
		}
	}
	// Planted adversarial structures must match some RDT-1 prototype.
	s, _ := prototype.Generate(RDT1(), RDT1EditDistance)
	total := int64(0)
	for _, p := range s.Protos {
		total += refmatch.Count(g, p.Template, false)
	}
	if total == 0 {
		t.Error("no RDT-1 matches in Reddit graph")
	}
}

func TestIMDbGraphBipartite(t *testing.T) {
	cfg := DefaultIMDbConfig()
	cfg.NumMovies, cfg.NumActresses, cfg.NumActors, cfg.NumDirectors = 2000, 600, 600, 200
	cfg.PlantTuples = 6
	g := IMDb(cfg)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	isMovie := func(l graph.Label) bool { return l == IMDbMovieRecent || l == IMDbMovieOld }
	for v := 0; v < g.NumVertices(); v++ {
		lv := g.Label(graph.VertexID(v))
		for _, u := range g.Neighbors(graph.VertexID(v)) {
			if isMovie(lv) == isMovie(g.Label(u)) {
				t.Fatalf("non-bipartite edge (%d,%d): labels %d-%d", v, u, lv, g.Label(u))
			}
		}
	}
	// Full planted tuples match the exact template.
	if got := refmatch.Count(g, IMDB1(), false); got == 0 {
		t.Error("no exact IMDB-1 matches despite planting")
	}
}

func TestSmallGraphScaleOrdering(t *testing.T) {
	cs, yt := CiteSeerLike(), YouTubeLike()
	if cs.NumEdges() >= yt.NumEdges() {
		t.Errorf("CiteSeer-like (%d) should be smaller than YouTube-like (%d)",
			cs.NumEdges(), yt.NumEdges())
	}
	if cs.NumVertices() != 3300 {
		t.Errorf("CiteSeer-like vertices = %d", cs.NumVertices())
	}
}

func TestRMAT1Properties(t *testing.T) {
	g := RMATGraph(10)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	tp := RMAT1(g)
	s, err := prototype.Generate(tp, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Paper (§5.1): RMAT-1 reaches k=2 (then disconnects) with 24
	// prototypes, 16 of them at k=2.
	if s.MaxDist != 2 {
		t.Errorf("RMAT-1 MaxDist = %d, want 2", s.MaxDist)
	}
	if s.Count() != 24 || s.CountAt(2) != 16 || s.CountAt(1) != 7 {
		t.Errorf("RMAT-1 prototypes = %d (k1=%d k2=%d), want 24 (7, 16)",
			s.Count(), s.CountAt(1), s.CountAt(2))
	}
	// Labels must cover a large fraction of vertices.
	freq := g.LabelFrequencies()
	var covered int64
	seen := map[graph.Label]bool{}
	for _, l := range tp.Labels() {
		if !seen[l] {
			covered += freq[l]
			seen[l] = true
		}
	}
	if frac := float64(covered) / float64(g.NumVertices()); frac < 0.25 {
		t.Errorf("template labels cover %.0f%% of vertices, want frequent labels", 100*frac)
	}
}

func TestPlantGuaranteesMatches(t *testing.T) {
	tp := WDC1()
	b := graph.NewBuilder(100)
	// Background noise vertices with non-template labels.
	for v := 0; v < 100; v++ {
		b.SetLabel(graph.VertexID(v), 20+graph.Label(v%5))
	}
	rng := newRand(77)
	Plant(rng, b, tp, 3)
	g := b.Build()
	if got := refmatch.Count(g, tp, false); got < 3 {
		t.Errorf("planted 3, found %d matches", got)
	}
}
