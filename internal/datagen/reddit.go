package datagen

import (
	"math/rand"

	"approxmatch/internal/graph"
	"approxmatch/internal/pattern"
)

// Reddit-like vertex labels (§5, Datasets): four vertex types, with Post and
// Comment types split by vote balance.
const (
	RedditAuthor graph.Label = iota
	RedditSubreddit
	RedditPostPos
	RedditPostNeg
	RedditPostNeutral
	RedditCommentPos
	RedditCommentNeg
	RedditCommentNeutral
)

// RedditConfig sizes the synthetic Reddit metadata graph.
type RedditConfig struct {
	NumAuthors    int
	NumSubreddits int
	NumPosts      int
	NumComments   int
	Seed          int64
	// PlantAdversarial injects that many RDT-1-style adversarial
	// poster-commenter structures (§5.5) so the query has matches.
	PlantAdversarial int
}

// DefaultRedditConfig returns a laptop-scale Reddit-like configuration.
func DefaultRedditConfig() RedditConfig {
	return RedditConfig{
		NumAuthors:       8000,
		NumSubreddits:    200,
		NumPosts:         20000,
		NumComments:      40000,
		Seed:             2,
		PlantAdversarial: 25,
	}
}

// Reddit builds the typed social graph: Author–Post, Author–Comment,
// Subreddit–Post, Post–Comment and Comment–Comment (parent/child) edges,
// with vote-balance labels on posts and comments.
func Reddit(cfg RedditConfig) *graph.Graph {
	rng := rand.New(rand.NewSource(cfg.Seed))
	b := graph.NewBuilder(0)

	authors := make([]graph.VertexID, cfg.NumAuthors)
	for i := range authors {
		authors[i] = b.AddVertex(RedditAuthor)
	}
	subs := make([]graph.VertexID, cfg.NumSubreddits)
	for i := range subs {
		subs[i] = b.AddVertex(RedditSubreddit)
	}
	postLabel := func() graph.Label {
		switch rng.Intn(3) {
		case 0:
			return RedditPostPos
		case 1:
			return RedditPostNeg
		default:
			return RedditPostNeutral
		}
	}
	commentLabel := func() graph.Label {
		switch rng.Intn(3) {
		case 0:
			return RedditCommentPos
		case 1:
			return RedditCommentNeg
		default:
			return RedditCommentNeutral
		}
	}
	posts := make([]graph.VertexID, cfg.NumPosts)
	for i := range posts {
		p := b.AddVertex(postLabel())
		posts[i] = p
		b.AddEdge(p, authors[rng.Intn(len(authors))])
		b.AddEdge(p, subs[rng.Intn(len(subs))])
	}
	comments := make([]graph.VertexID, 0, cfg.NumComments)
	for i := 0; i < cfg.NumComments; i++ {
		c := b.AddVertex(commentLabel())
		b.AddEdge(c, authors[rng.Intn(len(authors))])
		// Parent: a post, or an earlier comment (thread reply).
		if len(comments) > 0 && rng.Intn(3) == 0 {
			b.AddEdge(c, comments[rng.Intn(len(comments))])
		} else {
			b.AddEdge(c, posts[rng.Intn(len(posts))])
		}
		comments = append(comments, c)
	}
	if cfg.PlantAdversarial > 0 {
		plantAdversarial(rng, b, subs, cfg.PlantAdversarial)
	}
	return b.Build()
}

// plantAdversarial injects structures matching RDT1: an author with an
// upvoted and a downvoted post in different subreddits, each drawing an
// opposite-polarity comment by the same author.
func plantAdversarial(rng *rand.Rand, b *graph.Builder, subs []graph.VertexID, count int) {
	for i := 0; i < count; i++ {
		a := b.AddVertex(RedditAuthor)
		pPos := b.AddVertex(RedditPostPos)
		pNeg := b.AddVertex(RedditPostNeg)
		cNeg := b.AddVertex(RedditCommentNeg)
		cPos := b.AddVertex(RedditCommentPos)
		s1 := subs[rng.Intn(len(subs))]
		s2 := subs[rng.Intn(len(subs))]
		for s1 == s2 && len(subs) > 1 {
			s2 = subs[rng.Intn(len(subs))]
		}
		b.AddEdge(a, pPos)
		b.AddEdge(a, pNeg)
		b.AddEdge(pPos, cNeg)
		b.AddEdge(pNeg, cPos)
		b.AddEdge(s1, pPos)
		b.AddEdge(s2, pNeg)
		// Roughly half the planted instances are "precise" (the same
		// author also wrote the comments); the rest miss an author edge —
		// the approximate matches the query is after.
		if rng.Intn(2) == 0 {
			b.AddEdge(a, cNeg)
			b.AddEdge(a, cPos)
		} else if rng.Intn(2) == 0 {
			b.AddEdge(a, cNeg)
		} else {
			b.AddEdge(a, cPos)
		}
	}
}

// RDT1 is the Reddit adversarial poster–commenter template of §5.5
// (Fig. 10): author A with posts P+ (under subreddit S1) and P- (under S2,
// S1 ≠ S2 via injectivity), comment C- on P+ and comment C+ on P-. The
// author-post and author-comment edges are optional ("a valid match can be
// missing an author-post or an author-comment edge"); post-comment and
// subreddit-post edges are mandatory. With k=1 this yields the paper's five
// prototypes (base plus one per removable author edge).
func RDT1() *pattern.Template {
	t, err := pattern.NewWithMandatory(
		[]pattern.Label{
			RedditAuthor,     // 0: A
			RedditPostPos,    // 1: P+
			RedditPostNeg,    // 2: P-
			RedditCommentNeg, // 3: C- (on P+)
			RedditCommentPos, // 4: C+ (on P-)
			RedditSubreddit,  // 5: S1
			RedditSubreddit,  // 6: S2
		},
		[]pattern.Edge{
			{I: 1, J: 3}, // P+-C-    mandatory
			{I: 2, J: 4}, // P--C+    mandatory
			{I: 5, J: 1}, // S1-P+    mandatory
			{I: 6, J: 2}, // S2-P-    mandatory
			{I: 0, J: 1}, // A-P+     optional
			{I: 0, J: 2}, // A-P-     optional
			{I: 0, J: 3}, // A-C-     optional
			{I: 0, J: 4}, // A-C+     optional
		},
		[]bool{true, true, true, true, false, false, false, false},
	)
	if err != nil {
		panic(err)
	}
	return t
}

// RDT1EditDistance is the edit distance used for the RDT-1 query in §5.5.
const RDT1EditDistance = 1
