// Package constraint turns a search template (or prototype) into the set of
// constraints that vertices and edges participating in a match must meet
// (§3 of the paper, following PruneJuice):
//
//   - local constraints: a vertex must carry a template label and have
//     active neighbors covering the labeled adjacency of its template
//     vertex, with multiplicities;
//   - non-local constraints: directed walks in the template — cycle
//     constraints (CC), path constraints (PC) between repeated labels, and
//     template-driven search (TDS) walks that certify a full injective
//     mapping — verified by token passing in the background graph.
//
// Each non-local walk carries a canonical ID; prototypes that share a
// substructure share the ID, which is what enables work recycling (Obs. 2).
package constraint

import (
	"fmt"
	"sort"
	"strings"

	"approxmatch/internal/pattern"
)

// Label aliases the shared label type.
type Label = pattern.Label

// Kind classifies a non-local constraint walk.
type Kind int

// Walk kinds, in increasing verification strength.
const (
	// CC is a cycle constraint: the walk returns to its initiator.
	CC Kind = iota
	// PC is a path constraint between two template vertices with the same
	// label: the endpoint must be a distinct graph vertex.
	PC
	// TDS is a template-driven search walk covering every prototype edge;
	// completing it certifies a full injective match around the initiator.
	TDS
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case CC:
		return "CC"
	case PC:
		return "PC"
	case TDS:
		return "TDS"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Walk is a non-local constraint: a sequence of template vertices in which
// consecutive entries are adjacent in the prototype. A token walks the
// background graph along active edges mirroring the sequence; template
// vertices revisited by the walk must map to the same graph vertex, and
// distinct template vertices to distinct graph vertices.
type Walk struct {
	Kind Kind
	// Seq lists template vertex indices; Seq[0] is the initiator. For CC
	// walks the final entry equals Seq[0] (explicit closure).
	Seq []int
	// ID is the canonical identity of this constraint, shared across
	// prototypes containing the same substructure.
	ID string
}

// Len returns the number of hops (edges traversed) in the walk.
func (w *Walk) Len() int { return len(w.Seq) - 1 }

// String renders the walk for debugging.
func (w *Walk) String() string {
	parts := make([]string, len(w.Seq))
	for i, q := range w.Seq {
		parts[i] = fmt.Sprintf("%d", q)
	}
	return fmt.Sprintf("%s[%s]", w.Kind, strings.Join(parts, ">"))
}

// Requirements describes which checks a template needs beyond the local
// constraint fixpoint to guarantee 100% precision.
type Requirements struct {
	// LocalSufficient means the LCC fixpoint alone is exact: the template
	// is a tree with all-distinct labels.
	LocalSufficient bool
	// CyclesSufficient means cycle constraints restore exactness: distinct
	// labels and edge-monocyclic cycles (no two cycles share an edge).
	CyclesSufficient bool
	// NeedsTDS means a full template-driven walk is required (repeated
	// labels, or cycles sharing edges).
	NeedsTDS bool
}

// Analyze classifies a template per the paper's Fig. 2 discussion. The
// LCC-exact and CC-exact fast paths additionally require no wildcard
// vertex labels (a wildcard vertex can collide with any other template
// vertex, so injectivity is no longer implied by distinct labels) and no
// concrete edge-label requirements (local checking does not evaluate edge
// labels); templates using either extension take the full verification
// path.
func Analyze(t *pattern.Template) Requirements {
	distinct := !t.HasRepeatedLabels() && !t.HasWildcard()
	if labels, _ := t.EdgeLabelSet(); len(labels) > 0 {
		distinct = false
	}
	switch {
	case distinct && t.IsTree():
		return Requirements{LocalSufficient: true}
	case distinct && t.EdgeMonocyclic():
		return Requirements{CyclesSufficient: true}
	default:
		return Requirements{NeedsTDS: true}
	}
}

// maxCombinedCyclePairs caps the number of combined-cycle TDS pruning
// walks generated for dense templates (the paper selects additional
// constraints heuristically; see also Tripoul et al.).
const maxCombinedCyclePairs = 8

// Generate returns the non-local constraint set K0 for a prototype: one CC
// per simple cycle, one PC per repeated-label vertex pair, one combined
// TDS per pair of edge-sharing cycles (Fig. 2's non-edge-monocyclic case),
// and — when the requirements call for it — a full TDS edge-covering
// verification walk. The pruning set is returned alongside the
// verification set.
func Generate(t *pattern.Template) (pruning []*Walk, verification []*Walk) {
	req := Analyze(t)
	cycles := t.SimpleCycles()
	for _, c := range cycles {
		pruning = append(pruning, cycleWalk(t, c))
	}
	pairs := pattern.CyclesSharingEdges(cycles)
	for i, pr := range pairs {
		if i >= maxCombinedCyclePairs {
			break
		}
		if w := combinedCycleWalk(t, cycles[pr[0]], cycles[pr[1]]); w != nil {
			pruning = append(pruning, w)
		}
	}
	for _, qs := range sortedMultiplicity(t) {
		for i := 0; i < len(qs); i++ {
			for j := i + 1; j < len(qs); j++ {
				if w := pathWalk(t, qs[i], qs[j]); w != nil {
					pruning = append(pruning, w)
				}
			}
		}
	}
	switch {
	case req.LocalSufficient:
		// no verification constraints needed
	case req.CyclesSufficient:
		for _, w := range pruning {
			if w.Kind == CC {
				verification = append(verification, w)
			}
		}
	default:
		verification = append(verification, TDSWalk(t, tdsRoot(t)))
	}
	return pruning, verification
}

// sortedMultiplicity returns repeated-label vertex groups in deterministic
// order.
func sortedMultiplicity(t *pattern.Template) [][]int {
	mult := t.LabelMultiplicity()
	labels := make([]Label, 0, len(mult))
	for l, qs := range mult {
		if len(qs) > 1 {
			labels = append(labels, l)
		}
	}
	sort.Slice(labels, func(i, j int) bool { return labels[i] < labels[j] })
	groups := make([][]int, 0, len(labels))
	for _, l := range labels {
		groups = append(groups, mult[l])
	}
	return groups
}

// cycleWalk builds the CC walk for a simple cycle, canonicalized so the
// smallest vertex leads and the smaller neighbor comes second.
func cycleWalk(t *pattern.Template, c pattern.Cycle) *Walk {
	seq := canonicalCycle(c)
	seq = append(seq, seq[0])
	return &Walk{Kind: CC, Seq: seq, ID: walkID(t, CC, seq)}
}

// canonicalCycle rotates and possibly reflects the cycle so that the
// minimum vertex is first and its smaller cycle-neighbor second.
func canonicalCycle(c pattern.Cycle) []int {
	n := len(c)
	minPos := 0
	for i, q := range c {
		if q < c[minPos] {
			minPos = i
		}
	}
	rot := make([]int, n)
	for i := 0; i < n; i++ {
		rot[i] = c[(minPos+i)%n]
	}
	if rot[n-1] < rot[1] {
		// reflect: keep rot[0], reverse the rest
		ref := make([]int, n)
		ref[0] = rot[0]
		for i := 1; i < n; i++ {
			ref[i] = rot[n-i]
		}
		rot = ref
	}
	return rot
}

// pathWalk builds the PC walk between two same-label vertices along a
// shortest template path (BFS); nil when a == b.
func pathWalk(t *pattern.Template, a, b int) *Walk {
	if a == b {
		return nil
	}
	if a > b {
		a, b = b, a
	}
	prev := bfsParents(t, a)
	if prev[b] == -2 {
		return nil // unreachable; cannot happen for connected templates
	}
	var seq []int
	for q := b; q != -1; q = prev[q] {
		seq = append(seq, q)
	}
	// seq is b..a; reverse to a..b.
	for i, j := 0, len(seq)-1; i < j; i, j = i+1, j-1 {
		seq[i], seq[j] = seq[j], seq[i]
	}
	return &Walk{Kind: PC, Seq: seq, ID: walkID(t, PC, seq)}
}

func bfsParents(t *pattern.Template, src int) []int {
	prev := make([]int, t.NumVertices())
	for i := range prev {
		prev[i] = -2
	}
	prev[src] = -1
	queue := []int{src}
	for len(queue) > 0 {
		q := queue[0]
		queue = queue[1:]
		for _, r := range t.Neighbors(q) {
			if prev[r] == -2 {
				prev[r] = q
				queue = append(queue, r)
			}
		}
	}
	return prev
}

// combinedCycleWalk builds a TDS pruning walk covering the union of two
// edge-sharing cycles (Fig. 2, top): an edge-covering walk of the two-cycle
// substructure, rooted at a vertex on a shared edge so the token verifies
// both closures consistently.
func combinedCycleWalk(t *pattern.Template, c1, c2 pattern.Cycle) *Walk {
	edges := make(map[pattern.Edge]bool)
	adj := make(map[int][]int)
	addCycle := func(c pattern.Cycle) {
		for i := range c {
			a, b := c[i], c[(i+1)%len(c)]
			if a > b {
				a, b = b, a
			}
			e := pattern.Edge{I: a, J: b}
			if !edges[e] {
				edges[e] = true
				adj[a] = append(adj[a], b)
				adj[b] = append(adj[b], a)
			}
		}
	}
	addCycle(c1)
	addCycle(c2)
	// Root: a vertex shared by both cycles.
	root := -1
	in1 := make(map[int]bool, len(c1))
	for _, q := range c1 {
		in1[q] = true
	}
	for _, q := range c2 {
		if in1[q] {
			root = q
			break
		}
	}
	if root == -1 {
		return nil
	}
	for q := range adj {
		sort.Ints(adj[q])
	}
	covered := make(map[pattern.Edge]bool, len(edges))
	seq := []int{root}
	var dfs func(q int)
	dfs = func(q int) {
		for _, r := range adj[q] {
			a, b := q, r
			if a > b {
				a, b = b, a
			}
			e := pattern.Edge{I: a, J: b}
			if covered[e] {
				continue
			}
			covered[e] = true
			if containsInt(seq, r) {
				seq = append(seq, r, q)
				continue
			}
			seq = append(seq, r)
			dfs(r)
			seq = append(seq, q)
		}
	}
	dfs(root)
	if len(covered) != len(edges) {
		return nil // should not happen: the union of two sharing cycles is connected
	}
	return &Walk{Kind: TDS, Seq: seq, ID: walkID(t, TDS, seq)}
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// TDSWalk builds an edge-covering walk of the template rooted at root: a
// depth-first traversal that descends and returns along every tree edge and
// takes an out-and-back detour across every non-tree edge. Completing the
// walk with the token consistency rules verifies the full template around
// the initiator.
func TDSWalk(t *pattern.Template, root int) *Walk {
	n := t.NumVertices()
	visited := make([]bool, n)
	covered := make(map[pattern.Edge]bool, t.NumEdges())
	seq := []int{root}
	var dfs func(q int)
	dfs = func(q int) {
		visited[q] = true
		for _, r := range t.Neighbors(q) {
			e := pattern.Edge{I: min(q, r), J: max(q, r)}
			if covered[e] {
				continue
			}
			covered[e] = true
			if visited[r] {
				// back edge: detour out and back
				seq = append(seq, r, q)
				continue
			}
			seq = append(seq, r)
			dfs(r)
			seq = append(seq, q)
		}
	}
	dfs(root)
	return &Walk{Kind: TDS, Seq: seq, ID: walkID(t, TDS, seq)}
}

// tdsRoot picks the TDS initiator: the highest-degree vertex, ties broken by
// smaller index. Frequency-aware selection is applied later by the ordering
// heuristics when label statistics are available.
func tdsRoot(t *pattern.Template) int {
	best := 0
	for q := 1; q < t.NumVertices(); q++ {
		if t.Degree(q) > t.Degree(best) {
			best = q
		}
	}
	return best
}

// walkID canonically encodes a walk's semantic content: the kind, the
// vertex-label sequence, the revisit structure (walk vertices renumbered by
// first appearance, so raw template indices cancel out) and the per-hop
// edge-label requirements. Two walks get one ID exactly when they impose
// the same constraint on the background graph — whether they come from two
// prototypes of one template (classic work recycling, Obs. 2) or from
// different queries sharing a cross-query NLCC store. Index-only encodings
// collide across templates (every triangle would be "CC:0.1.2.0" regardless
// of labels); such collisions are correctness-neutral — pruning keeps a
// superset and exact verification restores precision — but they waste the
// shared store on satisfied-sets no other query can reuse.
func walkID(t *pattern.Template, k Kind, seq []int) string {
	canon := make(map[int]int, len(seq))
	var sb strings.Builder
	sb.WriteString(k.String())
	sb.WriteByte(':')
	for i, q := range seq {
		c, ok := canon[q]
		if !ok {
			c = len(canon)
			canon[q] = c
		}
		if i > 0 {
			el, _ := t.EdgeLabelBetween(seq[i-1], q)
			fmt.Fprintf(&sb, "-%d>", el)
		}
		fmt.Fprintf(&sb, "%d@%d", c, t.Label(q))
	}
	return sb.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
