package constraint

import (
	"sort"

	"approxmatch/internal/pattern"
)

// LabelFreq maps a label to its vertex count in the background graph. It
// drives the cost heuristics of §5.4 ("Constraint and Prototype Ordering").
type LabelFreq map[Label]int64

// EstimateCost scores a walk: the product-ish cost proxy used for ordering —
// the frequency of the initiator's label weighted by walk length. Cheaper
// (rarer-start, shorter) walks are verified first so they prune the graph
// before expensive walks run.
func EstimateCost(t *pattern.Template, w *Walk, freq LabelFreq) float64 {
	start := freq[t.Label(w.Seq[0])]
	if start == 0 {
		start = 1
	}
	return float64(start) * float64(len(w.Seq))
}

// OrderWalks sorts the walks in place so cheaper walks come first. With a
// nil frequency map (heuristic disabled) walks keep insertion order except
// that verification-strength kinds sort last.
func OrderWalks(t *pattern.Template, walks []*Walk, freq LabelFreq) {
	if freq == nil {
		sort.SliceStable(walks, func(i, j int) bool { return walks[i].Kind < walks[j].Kind })
		return
	}
	sort.SliceStable(walks, func(i, j int) bool {
		ci, cj := EstimateCost(t, walks[i], freq), EstimateCost(t, walks[j], freq)
		if ci != cj {
			return ci < cj
		}
		return walks[i].Kind < walks[j].Kind
	})
}

// OrientWalk rewrites a walk so that it starts from its cheapest admissible
// initiator: CC walks rotate so the minimum-frequency label leads; PC walks
// reverse when the far endpoint is rarer. TDS walks are re-rooted at the
// rarest-label vertex of maximum degree. The walk ID is preserved — identity
// is structural, not directional.
func OrientWalk(t *pattern.Template, w *Walk, freq LabelFreq) *Walk {
	if freq == nil {
		return w
	}
	switch w.Kind {
	case CC:
		cyc := w.Seq[:len(w.Seq)-1]
		best := 0
		for i, q := range cyc {
			if freq[t.Label(q)] < freq[t.Label(cyc[best])] {
				best = i
			}
		}
		if best == 0 {
			return w
		}
		seq := make([]int, 0, len(w.Seq))
		for i := 0; i < len(cyc); i++ {
			seq = append(seq, cyc[(best+i)%len(cyc)])
		}
		seq = append(seq, seq[0])
		return &Walk{Kind: CC, Seq: seq, ID: w.ID}
	case PC:
		if freq[t.Label(w.Seq[len(w.Seq)-1])] < freq[t.Label(w.Seq[0])] {
			seq := make([]int, len(w.Seq))
			for i, q := range w.Seq {
				seq[len(seq)-1-i] = q
			}
			return &Walk{Kind: PC, Seq: seq, ID: w.ID}
		}
		return w
	case TDS:
		best, bestScore := -1, int64(0)
		for q := 0; q < t.NumVertices(); q++ {
			score := freq[t.Label(q)]
			if best == -1 || score < bestScore ||
				(score == bestScore && t.Degree(q) > t.Degree(best)) {
				best, bestScore = q, score
			}
		}
		nw := TDSWalk(t, best)
		nw.ID = w.ID
		return nw
	}
	return w
}

// OrientAll applies OrientWalk to each walk, returning a new slice.
func OrientAll(t *pattern.Template, walks []*Walk, freq LabelFreq) []*Walk {
	out := make([]*Walk, len(walks))
	for i, w := range walks {
		out[i] = OrientWalk(t, w, freq)
	}
	return out
}
