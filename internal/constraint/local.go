package constraint

import "approxmatch/internal/pattern"

// Group is one neighbor-label requirement of a template vertex: the
// bitmask of template neighbors carrying one label and how many distinct
// matched neighbors that label demands.
type Group struct {
	// Mask has bit r set for each template neighbor r in the group.
	Mask uint64
	// Count is the group's multiplicity (number of template neighbors
	// with this label).
	Count int
}

// LocalProfile precomputes the local-constraint requirements of every
// template vertex; both the sequential and the distributed engines evaluate
// LCC against it.
type LocalProfile struct {
	t *pattern.Template
	// groups[q] holds one Group per distinct neighbor label of q.
	groups [][]Group
	// nbrMask[q] is the bitmask of all template neighbors of q.
	nbrMask []uint64
}

// BuildLocalProfile analyzes t.
func BuildLocalProfile(t *pattern.Template) *LocalProfile {
	p := &LocalProfile{
		t:       t,
		groups:  make([][]Group, t.NumVertices()),
		nbrMask: make([]uint64, t.NumVertices()),
	}
	for q := 0; q < t.NumVertices(); q++ {
		byLabel := make(map[Label]int) // label -> index into groups[q]
		for _, r := range t.Neighbors(q) {
			p.nbrMask[q] |= 1 << uint(r)
			l := t.Label(r)
			gi, ok := byLabel[l]
			if !ok {
				gi = len(p.groups[q])
				byLabel[l] = gi
				p.groups[q] = append(p.groups[q], Group{})
			}
			p.groups[q][gi].Mask |= 1 << uint(r)
			p.groups[q][gi].Count++
		}
	}
	return p
}

// Template returns the profiled template.
func (p *LocalProfile) Template() *pattern.Template { return p.t }

// Groups returns the neighbor-label requirements of template vertex q.
func (p *LocalProfile) Groups(q int) []Group { return p.groups[q] }

// NbrMask returns the template-neighbor bitmask of q.
func (p *LocalProfile) NbrMask(q int) uint64 { return p.nbrMask[q] }

// MandatoryProfile captures the requirements that hold in EVERY prototype
// of a template: the mandatory-edge neighbor groups and the full
// H0-neighbor masks. Max-candidate-set generation checks against it.
type MandatoryProfile struct {
	t         *pattern.Template
	mandatory [][]Group
	allNbr    []uint64
}

// BuildMandatoryProfile analyzes t's mandatory edges.
func BuildMandatoryProfile(t *pattern.Template) *MandatoryProfile {
	p := &MandatoryProfile{
		t:         t,
		mandatory: make([][]Group, t.NumVertices()),
		allNbr:    make([]uint64, t.NumVertices()),
	}
	for q := 0; q < t.NumVertices(); q++ {
		for _, r := range t.Neighbors(q) {
			p.allNbr[q] |= 1 << uint(r)
		}
	}
	for i, e := range t.Edges() {
		if !t.Mandatory(i) {
			continue
		}
		p.add(e.I, e.J)
		p.add(e.J, e.I)
	}
	return p
}

func (p *MandatoryProfile) add(q, r int) {
	l := p.t.Label(r)
	for gi := range p.mandatory[q] {
		g := &p.mandatory[q][gi]
		member := firstBit(g.Mask)
		if p.t.Label(member) == l {
			g.Mask |= 1 << uint(r)
			g.Count++
			return
		}
	}
	p.mandatory[q] = append(p.mandatory[q], Group{Mask: 1 << uint(r), Count: 1})
}

// Mandatory returns the mandatory neighbor groups of q.
func (p *MandatoryProfile) Mandatory(q int) []Group { return p.mandatory[q] }

// AllNbr returns the mask of all H0 neighbors of q.
func (p *MandatoryProfile) AllNbr(q int) uint64 { return p.allNbr[q] }

func firstBit(x uint64) int {
	n := 0
	for x&1 == 0 {
		x >>= 1
		n++
	}
	return n
}
