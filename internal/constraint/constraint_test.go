package constraint

import (
	"testing"

	"approxmatch/internal/pattern"
)

func triangle() *pattern.Template {
	return pattern.MustNew([]pattern.Label{1, 2, 3},
		[]pattern.Edge{{I: 0, J: 1}, {I: 1, J: 2}, {I: 0, J: 2}})
}

func TestAnalyzeClassification(t *testing.T) {
	tree := pattern.MustNew([]pattern.Label{1, 2, 3}, []pattern.Edge{{I: 0, J: 1}, {I: 1, J: 2}})
	if r := Analyze(tree); !r.LocalSufficient || r.NeedsTDS {
		t.Errorf("distinct-label tree: %+v", r)
	}
	if r := Analyze(triangle()); !r.CyclesSufficient || r.NeedsTDS {
		t.Errorf("distinct-label triangle: %+v", r)
	}
	repTree := pattern.MustNew([]pattern.Label{1, 2, 1}, []pattern.Edge{{I: 0, J: 1}, {I: 1, J: 2}})
	if r := Analyze(repTree); !r.NeedsTDS {
		t.Errorf("repeated-label tree: %+v", r)
	}
	diamond := pattern.MustNew([]pattern.Label{1, 2, 3, 4},
		[]pattern.Edge{{I: 0, J: 1}, {I: 1, J: 2}, {I: 0, J: 2}, {I: 1, J: 3}, {I: 2, J: 3}})
	if r := Analyze(diamond); !r.NeedsTDS {
		t.Errorf("diamond (shared-edge cycles): %+v", r)
	}
}

func TestGenerateTriangleConstraints(t *testing.T) {
	pruning, verification := Generate(triangle())
	ccs := 0
	for _, w := range pruning {
		if w.Kind == CC {
			ccs++
			// Cycle closure: first == last, length 4 (3 hops).
			if w.Seq[0] != w.Seq[len(w.Seq)-1] || w.Len() != 3 {
				t.Errorf("bad CC walk %v", w)
			}
		}
	}
	if ccs != 1 {
		t.Errorf("triangle CCs = %d, want 1", ccs)
	}
	// Distinct-label edge-monocyclic: verification = the CCs.
	if len(verification) != 1 || verification[0].Kind != CC {
		t.Errorf("verification set = %v", verification)
	}
}

func TestGeneratePathConstraints(t *testing.T) {
	// Tree with two label-1 vertices at distance 2.
	tp := pattern.MustNew([]pattern.Label{1, 2, 1}, []pattern.Edge{{I: 0, J: 1}, {I: 1, J: 2}})
	pruning, verification := Generate(tp)
	pcs := 0
	for _, w := range pruning {
		if w.Kind == PC {
			pcs++
			if w.Seq[0] != 0 || w.Seq[len(w.Seq)-1] != 2 {
				t.Errorf("PC endpoints wrong: %v", w)
			}
		}
	}
	if pcs != 1 {
		t.Errorf("PCs = %d, want 1", pcs)
	}
	if len(verification) != 1 || verification[0].Kind != TDS {
		t.Errorf("repeated labels need TDS, got %v", verification)
	}
}

func TestTDSWalkCoversAllEdges(t *testing.T) {
	cases := []*pattern.Template{
		triangle(),
		pattern.MustNew(make([]pattern.Label, 4),
			[]pattern.Edge{{I: 0, J: 1}, {I: 1, J: 2}, {I: 2, J: 3}, {I: 0, J: 3}, {I: 0, J: 2}}),
		pattern.MustNew([]pattern.Label{1, 1, 2, 2},
			[]pattern.Edge{{I: 0, J: 1}, {I: 1, J: 2}, {I: 2, J: 3}}),
	}
	for ci, tp := range cases {
		for root := 0; root < tp.NumVertices(); root++ {
			w := TDSWalk(tp, root)
			if w.Seq[0] != root {
				t.Errorf("case %d root %d: walk starts at %d", ci, root, w.Seq[0])
			}
			covered := make(map[pattern.Edge]bool)
			for i := 0; i+1 < len(w.Seq); i++ {
				a, b := w.Seq[i], w.Seq[i+1]
				if !tp.HasEdge(a, b) {
					t.Fatalf("case %d: walk step %d-%d not a template edge", ci, a, b)
				}
				if a > b {
					a, b = b, a
				}
				covered[pattern.Edge{I: a, J: b}] = true
			}
			if len(covered) != tp.NumEdges() {
				t.Errorf("case %d root %d: covered %d of %d edges", ci, root, len(covered), tp.NumEdges())
			}
		}
	}
}

func TestWalkIDSharedAcrossPrototypes(t *testing.T) {
	// The 4-cycle constraint of a template survives edge removal elsewhere;
	// its ID must be identical in both.
	full := pattern.MustNew(make([]pattern.Label, 5),
		[]pattern.Edge{{I: 0, J: 1}, {I: 1, J: 2}, {I: 2, J: 3}, {I: 0, J: 3}, {I: 0, J: 4}, {I: 4, J: 2}})
	reduced := pattern.MustNew(make([]pattern.Label, 5),
		[]pattern.Edge{{I: 0, J: 1}, {I: 1, J: 2}, {I: 2, J: 3}, {I: 0, J: 3}, {I: 0, J: 4}})
	ids := func(tp *pattern.Template) map[string]bool {
		out := make(map[string]bool)
		pruning, _ := Generate(tp)
		for _, w := range pruning {
			if w.Kind == CC && w.Len() == 4 {
				out[w.ID] = true
			}
		}
		return out
	}
	fullIDs, reducedIDs := ids(full), ids(reduced)
	shared := false
	for id := range reducedIDs {
		if fullIDs[id] {
			shared = true
		}
	}
	if !shared {
		t.Errorf("4-cycle constraint not shared: full=%v reduced=%v", fullIDs, reducedIDs)
	}
}

func TestCycleCanonicalizationStable(t *testing.T) {
	// The same cycle discovered in different rotations must get one ID.
	tp := pattern.MustNew([]pattern.Label{1, 2, 3, 4},
		[]pattern.Edge{{I: 0, J: 1}, {I: 1, J: 2}, {I: 2, J: 3}, {I: 0, J: 3}})
	a := cycleWalk(tp, pattern.Cycle{0, 1, 2, 3})
	b := cycleWalk(tp, pattern.Cycle{1, 2, 3, 0})
	c := cycleWalk(tp, pattern.Cycle{0, 3, 2, 1})
	if a.ID != b.ID || a.ID != c.ID {
		t.Errorf("cycle IDs differ: %q %q %q", a.ID, b.ID, c.ID)
	}
}

func TestOrderWalksByFrequency(t *testing.T) {
	tp := pattern.MustNew([]pattern.Label{1, 2, 3, 1},
		[]pattern.Edge{{I: 0, J: 1}, {I: 1, J: 2}, {I: 0, J: 2}, {I: 2, J: 3}})
	pruning, _ := Generate(tp)
	freq := LabelFreq{1: 1000, 2: 10, 3: 100}
	oriented := OrientAll(tp, pruning, freq)
	OrderWalks(tp, oriented, freq)
	for i := 1; i < len(oriented); i++ {
		if EstimateCost(tp, oriented[i-1], freq) > EstimateCost(tp, oriented[i], freq) {
			t.Errorf("walks not sorted by cost at %d", i)
		}
	}
	// Oriented CC should start at the rarest label on the cycle (label 2).
	for _, w := range oriented {
		if w.Kind == CC {
			if tp.Label(w.Seq[0]) != 2 {
				t.Errorf("CC starts at label %d, want 2", tp.Label(w.Seq[0]))
			}
			if w.Seq[0] != w.Seq[len(w.Seq)-1] {
				t.Errorf("oriented CC lost closure: %v", w)
			}
		}
	}
}

func TestOrientPreservesID(t *testing.T) {
	tp := triangle()
	pruning, _ := Generate(tp)
	freq := LabelFreq{1: 5, 2: 50, 3: 500}
	for _, w := range pruning {
		o := OrientWalk(tp, w, freq)
		if o.ID != w.ID {
			t.Errorf("orientation changed ID: %q -> %q", w.ID, o.ID)
		}
	}
}

func TestCombinedCycleWalks(t *testing.T) {
	// Diamond: two triangles sharing edge (1,2) — one combined TDS pruning
	// walk covering all five edges.
	diamond := pattern.MustNew(make([]pattern.Label, 4),
		[]pattern.Edge{{I: 0, J: 1}, {I: 1, J: 2}, {I: 0, J: 2}, {I: 1, J: 3}, {I: 2, J: 3}})
	pruning, _ := Generate(diamond)
	var combined []*Walk
	for _, w := range pruning {
		if w.Kind == TDS {
			combined = append(combined, w)
		}
	}
	if len(combined) == 0 {
		t.Fatal("no combined-cycle TDS walks generated for the diamond")
	}
	for _, w := range combined {
		// Every step must be a template edge; the walk must cover both
		// cycles' edges (at least 5 distinct for the diamond's two
		// triangles... the pair covers the union of the two cycles).
		covered := make(map[pattern.Edge]bool)
		for i := 0; i+1 < len(w.Seq); i++ {
			a, b := w.Seq[i], w.Seq[i+1]
			if !diamond.HasEdge(a, b) {
				t.Fatalf("walk step %d-%d not an edge", a, b)
			}
			if a > b {
				a, b = b, a
			}
			covered[pattern.Edge{I: a, J: b}] = true
		}
		if len(covered) < 5 {
			t.Errorf("combined walk covers %d edges, want 5", len(covered))
		}
	}
	// Bowtie (vertex-sharing cycles) has no edge-sharing pairs: no
	// combined walks.
	bowtie := pattern.MustNew(make([]pattern.Label, 5),
		[]pattern.Edge{{I: 0, J: 1}, {I: 1, J: 2}, {I: 0, J: 2}, {I: 2, J: 3}, {I: 3, J: 4}, {I: 2, J: 4}})
	pruning, _ = Generate(bowtie)
	for _, w := range pruning {
		if w.Kind == TDS {
			t.Error("bowtie should not generate combined-cycle walks")
		}
	}
}

func TestCombinedCycleWalkSharedAcrossPrototypes(t *testing.T) {
	// K4 vs the diamond obtained by removing edge (0,3): the diamond's
	// shared-edge triangle pair exists in both, so its combined walk ID
	// must be shared.
	full := pattern.MustNew(make([]pattern.Label, 4),
		[]pattern.Edge{{I: 0, J: 1}, {I: 1, J: 2}, {I: 0, J: 2}, {I: 1, J: 3}, {I: 2, J: 3}, {I: 0, J: 3}})
	reduced := pattern.MustNew(make([]pattern.Label, 4),
		[]pattern.Edge{{I: 0, J: 1}, {I: 1, J: 2}, {I: 0, J: 2}, {I: 1, J: 3}, {I: 2, J: 3}})
	ids := func(tp *pattern.Template) map[string]bool {
		out := make(map[string]bool)
		pruning, _ := Generate(tp)
		for _, w := range pruning {
			if w.Kind == TDS {
				out[w.ID] = true
			}
		}
		return out
	}
	fullIDs, reducedIDs := ids(full), ids(reduced)
	shared := false
	for id := range reducedIDs {
		if fullIDs[id] {
			shared = true
		}
	}
	if !shared {
		t.Errorf("combined walk not shared: %v vs %v", fullIDs, reducedIDs)
	}
}

func TestCostEstimatorOrdering(t *testing.T) {
	// Rare-start short walks must be predicted cheaper than frequent-start
	// long walks.
	tp := pattern.MustNew([]pattern.Label{1, 2, 3, 1},
		[]pattern.Edge{{I: 0, J: 1}, {I: 1, J: 2}, {I: 0, J: 2}, {I: 2, J: 3}})
	ce := NewCostEstimator(10000, 8, LabelFreq{1: 5000, 2: 10, 3: 500})
	cheap := &Walk{Kind: CC, Seq: []int{1, 2, 0, 1}}  // starts at rare label 2
	costly := &Walk{Kind: CC, Seq: []int{0, 1, 2, 0}} // starts at frequent label 1
	if ce.WalkCost(tp, cheap) >= ce.WalkCost(tp, costly) {
		t.Errorf("rare start not cheaper: %.0f vs %.0f",
			ce.WalkCost(tp, cheap), ce.WalkCost(tp, costly))
	}
	walks := []*Walk{costly, cheap}
	OrderWalksEstimated(tp, walks, ce)
	if walks[0] != cheap {
		t.Error("ordering did not put the cheap walk first")
	}
	// Nil estimator falls back to kind ordering without panicking.
	OrderWalksEstimated(tp, walks, nil)
}

func TestCostEstimatorMonotonicInLength(t *testing.T) {
	tp := pattern.MustNew([]pattern.Label{1, 1, 1, 1},
		[]pattern.Edge{{I: 0, J: 1}, {I: 1, J: 2}, {I: 2, J: 3}, {I: 0, J: 3}})
	ce := NewCostEstimator(1000, 6, LabelFreq{1: 1000})
	short := &Walk{Kind: PC, Seq: []int{0, 1}}
	long := &Walk{Kind: PC, Seq: []int{0, 1, 2, 3}}
	if ce.WalkCost(tp, short) >= ce.WalkCost(tp, long) {
		t.Error("longer unselective walk should cost more")
	}
	// Wildcard frequency auto-filled.
	if ce.Freq[pattern.Wildcard] != 1000 {
		t.Error("wildcard frequency not filled")
	}
}

func TestKindStringAndWalkString(t *testing.T) {
	if CC.String() != "CC" || PC.String() != "PC" || TDS.String() != "TDS" {
		t.Error("Kind.String wrong")
	}
	if Kind(9).String() == "" {
		t.Error("unknown kind empty")
	}
	w := &Walk{Kind: CC, Seq: []int{0, 1, 2, 0}}
	if w.String() == "" || w.Len() != 3 {
		t.Errorf("walk string/len: %q %d", w.String(), w.Len())
	}
}

func TestOrderWalksNilFreq(t *testing.T) {
	tp := triangle()
	pruning, _ := Generate(tp)
	OrderWalks(tp, pruning, nil)
	// Kind-sorted: CC (0) entries precede TDS (2) ones.
	for i := 1; i < len(pruning); i++ {
		if pruning[i-1].Kind > pruning[i].Kind {
			t.Error("nil-freq ordering not kind-sorted")
		}
	}
	// Orientation with nil freq is identity.
	for _, w := range pruning {
		if OrientWalk(tp, w, nil) != w {
			t.Error("nil-freq orientation changed the walk")
		}
	}
}

func TestLocalProfileAccessors(t *testing.T) {
	tp := pattern.MustNew([]pattern.Label{1, 2, 2},
		[]pattern.Edge{{I: 0, J: 1}, {I: 0, J: 2}})
	p := BuildLocalProfile(tp)
	if p.Template() != tp {
		t.Error("Template accessor wrong")
	}
	// Vertex 0 has two label-2 neighbors: one group, count 2.
	groups := p.Groups(0)
	if len(groups) != 1 || groups[0].Count != 2 {
		t.Errorf("groups = %+v", groups)
	}
	if p.NbrMask(0) != 0b110 {
		t.Errorf("NbrMask(0) = %b", p.NbrMask(0))
	}
	mp := BuildMandatoryProfile(tp)
	if mp.AllNbr(0) != 0b110 || len(mp.Mandatory(0)) != 0 {
		t.Error("mandatory profile wrong for all-optional template")
	}
}

func TestWalkIDLabelAware(t *testing.T) {
	// Same labeled triangle embedded in two different templates (different
	// vertex indices, different surrounding structure) must share its CC ID —
	// that is what lets a cross-query NLCC store recycle the walk.
	a := pattern.MustNew([]pattern.Label{5, 6, 7},
		[]pattern.Edge{{I: 0, J: 1}, {I: 1, J: 2}, {I: 0, J: 2}})
	b := pattern.MustNew([]pattern.Label{9, 5, 6, 7},
		[]pattern.Edge{{I: 0, J: 1}, {I: 1, J: 2}, {I: 2, J: 3}, {I: 1, J: 3}})
	ccIDs := func(tp *pattern.Template) map[string]bool {
		pruning, _ := Generate(tp)
		out := make(map[string]bool)
		for _, w := range pruning {
			if w.Kind == CC {
				out[w.ID] = true
			}
		}
		return out
	}
	idsA, idsB := ccIDs(a), ccIDs(b)
	shared := false
	for id := range idsA {
		if idsB[id] {
			shared = true
		}
	}
	if !shared {
		t.Errorf("label-identical triangles got no shared CC ID: %v vs %v", idsA, idsB)
	}
	// A triangle with different labels must NOT share an ID with either.
	c := pattern.MustNew([]pattern.Label{5, 6, 8},
		[]pattern.Edge{{I: 0, J: 1}, {I: 1, J: 2}, {I: 0, J: 2}})
	for id := range ccIDs(c) {
		if idsA[id] {
			t.Errorf("triangles with different labels share CC ID %q", id)
		}
	}
}
