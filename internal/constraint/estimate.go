package constraint

import (
	"sort"

	"approxmatch/internal/pattern"
)

// CostEstimator predicts the expected token traffic of a constraint walk
// from background-graph statistics, in the spirit of the cost/likelihood
// estimation the paper's ordering heuristic builds on (Tripoul et al.,
// "There are Trillions of Little Forks in the Road"): a walk starting from
// a rare label with selective hops dies quickly and cheaply; one starting
// from a frequent label over unselective hops floods the graph.
type CostEstimator struct {
	// NumVertices is |V| of the background graph.
	NumVertices int64
	// AvgDegree is the mean vertex degree.
	AvgDegree float64
	// Freq maps labels to vertex counts (include pattern.Wildcard mapped
	// to NumVertices).
	Freq LabelFreq
}

// NewCostEstimator builds an estimator; the wildcard frequency is filled in
// automatically.
func NewCostEstimator(numVertices int64, avgDegree float64, freq LabelFreq) *CostEstimator {
	ce := &CostEstimator{NumVertices: numVertices, AvgDegree: avgDegree, Freq: freq}
	if ce.Freq == nil {
		ce.Freq = LabelFreq{}
	}
	ce.Freq[pattern.Wildcard] = numVertices
	return ce
}

// labelProb is the probability a uniform vertex carries a label accepted by
// template label l.
func (ce *CostEstimator) labelProb(l Label) float64 {
	if ce.NumVertices == 0 {
		return 0
	}
	return float64(ce.Freq[l]) / float64(ce.NumVertices)
}

// WalkCost estimates the expected number of token forwards for walk w on
// template t: tokens start at every vertex whose label matches the
// initiator; each hop fans out to the average degree and survives with the
// probability that the hopped-to vertex carries the required label.
// Revisit hops (already-assigned template vertices) route to one vertex
// instead of fanning out.
func (ce *CostEstimator) WalkCost(t *pattern.Template, w *Walk) float64 {
	if len(w.Seq) == 0 {
		return 0
	}
	survivors := float64(ce.Freq[t.Label(w.Seq[0])])
	if survivors == 0 {
		survivors = 1
	}
	total := 0.0
	seen := map[int]bool{w.Seq[0]: true}
	for r := 1; r < len(w.Seq); r++ {
		tq := w.Seq[r]
		if seen[tq] {
			// Revisit: one routed message per surviving token; survival is
			// the chance the specific required edge exists (~AvgDegree/n).
			total += survivors
			p := ce.AvgDegree / float64(maxI64(ce.NumVertices, 1))
			survivors *= p
			continue
		}
		seen[tq] = true
		// Fan-out: each survivor broadcasts to its neighbors...
		msgs := survivors * ce.AvgDegree
		total += msgs
		survivors = msgs * ce.labelProb(t.Label(tq))
		if survivors < 1e-12 {
			survivors = 1e-12
		}
	}
	return total
}

// OrderWalksEstimated sorts walks by predicted token traffic, cheapest
// first, so early cheap walks prune the graph before expensive ones run.
// The sort is stable so equal-cost walks keep generation order.
func OrderWalksEstimated(t *pattern.Template, walks []*Walk, ce *CostEstimator) {
	if ce == nil {
		OrderWalks(t, walks, nil)
		return
	}
	sort.SliceStable(walks, func(i, j int) bool {
		ci, cj := ce.WalkCost(t, walks[i]), ce.WalkCost(t, walks[j])
		if ci != cj {
			return ci < cj
		}
		return walks[i].Kind < walks[j].Kind
	})
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
