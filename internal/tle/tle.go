// Package tle is the Arabesque stand-in for the §5.6 comparison: a
// think-like-an-embedding (TLE), BSP motif counter. It materializes every
// connected vertex-induced embedding level by level — exactly the execution
// model that makes Arabesque fast on small graphs and memory-bound on large
// ones (the paper's LiveJournal 4-Motif run OOMs). A configurable embedding
// budget reproduces that OOM behaviour deterministically.
package tle

import (
	"errors"
	"fmt"
	"sort"

	"approxmatch/internal/graph"
	"approxmatch/internal/pattern"
)

// ErrOutOfMemory is returned when the materialized embedding set exceeds
// the configured budget — the in-process analogue of Arabesque's OOM.
var ErrOutOfMemory = errors.New("tle: embedding budget exceeded")

// Stats reports the engine's footprint, the quantity the §5.6 comparison is
// about.
type Stats struct {
	// EmbeddingsPerLevel counts materialized embeddings after each BSP
	// superstep (level i holds i+1-vertex embeddings).
	EmbeddingsPerLevel []int64
	// PeakEmbeddings is the maximum simultaneously-materialized count.
	PeakEmbeddings int64
	// PeakBytes estimates the peak embedding-store footprint.
	PeakBytes int64
}

// Config bounds the engine.
type Config struct {
	// MaxEmbeddings aborts with ErrOutOfMemory when a level materializes
	// more embeddings (0 = unlimited).
	MaxEmbeddings int64
}

// CountMotifs counts connected vertex-induced subgraphs ("motifs") of the
// given size, grouped by the canonical code of their induced pattern. The
// graph's labels are ignored (motif counting is unlabeled, as in §5.6).
func CountMotifs(g *graph.Graph, size int, cfg Config) (map[string]int64, Stats, error) {
	if size < 1 {
		return nil, Stats{}, fmt.Errorf("tle: size %d", size)
	}
	var stats Stats
	// Level 0: single-vertex embeddings. Embeddings are stored as sorted
	// vertex sets, deduplicated globally per level — the TLE model's
	// defining (and memory-hungry) trait.
	level := make([][]graph.VertexID, 0, g.NumVertices())
	for v := 0; v < g.NumVertices(); v++ {
		level = append(level, []graph.VertexID{graph.VertexID(v)})
	}
	note := func(n int64) {
		stats.EmbeddingsPerLevel = append(stats.EmbeddingsPerLevel, n)
		if n > stats.PeakEmbeddings {
			stats.PeakEmbeddings = n
			stats.PeakBytes = n * int64(size) * 4
		}
	}
	note(int64(len(level)))

	for sz := 1; sz < size; sz++ {
		seen := make(map[string]bool)
		var next [][]graph.VertexID
		for _, emb := range level {
			for _, u := range emb {
				for _, w := range g.Neighbors(u) {
					if contains(emb, w) {
						continue
					}
					cand := extend(emb, w)
					key := embKey(cand)
					if seen[key] {
						continue
					}
					seen[key] = true
					next = append(next, cand)
					if cfg.MaxEmbeddings > 0 && int64(len(next)) > cfg.MaxEmbeddings {
						return nil, stats, ErrOutOfMemory
					}
				}
			}
		}
		level = next
		note(int64(len(level)))
	}

	counts := make(map[string]int64)
	codeCache := make(map[uint64]string)
	for _, emb := range level {
		counts[inducedCode(g, emb, codeCache)]++
	}
	return counts, stats, nil
}

// contains reports membership in a small sorted vertex set.
func contains(emb []graph.VertexID, v graph.VertexID) bool {
	i := sort.Search(len(emb), func(i int) bool { return emb[i] >= v })
	return i < len(emb) && emb[i] == v
}

// extend inserts v into a sorted vertex set, returning a new slice.
func extend(emb []graph.VertexID, v graph.VertexID) []graph.VertexID {
	out := make([]graph.VertexID, 0, len(emb)+1)
	inserted := false
	for _, u := range emb {
		if !inserted && v < u {
			out = append(out, v)
			inserted = true
		}
		out = append(out, u)
	}
	if !inserted {
		out = append(out, v)
	}
	return out
}

// embKey serializes a sorted vertex set.
func embKey(emb []graph.VertexID) string {
	buf := make([]byte, 0, len(emb)*4)
	for _, v := range emb {
		buf = append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return string(buf)
}

// inducedCode computes the canonical pattern code of the subgraph induced
// by emb, memoizing on the adjacency bitmask (embeddings are tiny).
func inducedCode(g *graph.Graph, emb []graph.VertexID, cache map[uint64]string) string {
	n := len(emb)
	var mask uint64
	var edges []pattern.Edge
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if g.HasEdge(emb[i], emb[j]) {
				mask |= 1 << uint(i*n+j)
				edges = append(edges, pattern.Edge{I: i, J: j})
			}
		}
	}
	if code, ok := cache[mask]; ok {
		return code
	}
	t, err := pattern.New(make([]pattern.Label, n), edges)
	if err != nil {
		// Disconnected induced set cannot occur: embeddings grow by
		// neighbor extension.
		panic(fmt.Sprintf("tle: disconnected embedding %v", emb))
	}
	code := pattern.CanonicalCode(t)
	cache[mask] = code
	return code
}
