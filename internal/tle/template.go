package tle

import (
	"approxmatch/internal/graph"
	"approxmatch/internal/pattern"
)

// CountTemplate counts exact (non-induced) matches of a labeled template by
// the TLE model: partial embeddings grow level by level in a fixed matching
// order and every superstep materializes the full frontier (the memory
// behaviour that limits Arabesque at scale). It serves both as the
// Arabesque-style query baseline and as a third independent implementation
// for cross-checking the constraint-checking engines. The returned count is
// the number of distinct vertex mappings.
func CountTemplate(g *graph.Graph, t *pattern.Template, cfg Config) (int64, Stats, error) {
	order, anchorsOf := matchingOrder(t)
	var stats Stats

	note := func(n int64) {
		stats.EmbeddingsPerLevel = append(stats.EmbeddingsPerLevel, n)
		if n > stats.PeakEmbeddings {
			stats.PeakEmbeddings = n
			stats.PeakBytes = n * int64(t.NumVertices()) * 4
		}
	}

	// Level 0: candidates for order[0] by label.
	var level [][]graph.VertexID
	for v := 0; v < g.NumVertices(); v++ {
		if pattern.LabelMatches(t.Label(order[0]), g.Label(graph.VertexID(v))) {
			level = append(level, []graph.VertexID{graph.VertexID(v)})
		}
	}
	note(int64(len(level)))

	for pos := 1; pos < len(order); pos++ {
		q := order[pos]
		var next [][]graph.VertexID
		for _, emb := range level {
			// Candidates: neighbors of the anchor's assigned vertex.
			anchorVertex := emb[anchorsOf[pos]]
			for _, u := range g.Neighbors(anchorVertex) {
				if !extendOK(g, t, order, emb, q, u) {
					continue
				}
				grown := append(append([]graph.VertexID(nil), emb...), u)
				next = append(next, grown)
				if cfg.MaxEmbeddings > 0 && int64(len(next)) > cfg.MaxEmbeddings {
					return 0, stats, ErrOutOfMemory
				}
			}
		}
		level = next
		note(int64(len(level)))
	}
	return int64(len(level)), stats, nil
}

// extendOK validates adding u as order[pos]=q against the embedding so far.
func extendOK(g *graph.Graph, t *pattern.Template, order []int, emb []graph.VertexID, q int, u graph.VertexID) bool {
	if !pattern.LabelMatches(t.Label(q), g.Label(u)) {
		return false
	}
	for _, gv := range emb {
		if gv == u {
			return false
		}
	}
	for pi := 0; pi < len(emb); pi++ {
		r := order[pi]
		if !t.HasEdge(q, r) {
			continue
		}
		i := g.EdgeIndex(u, emb[pi])
		if i < 0 {
			return false
		}
		if el, ok := t.EdgeLabelBetween(q, r); ok && el != pattern.Wildcard {
			if g.EdgeLabelAt(u, i) != el {
				return false
			}
		}
	}
	return true
}

// matchingOrder returns a connected order and, per position, the index of
// an earlier adjacent position (the extension anchor).
func matchingOrder(t *pattern.Template) (order []int, anchors []int) {
	n := t.NumVertices()
	in := make([]bool, n)
	start := 0
	for q := 1; q < n; q++ {
		if t.Degree(q) > t.Degree(start) {
			start = q
		}
	}
	order = append(order, start)
	anchors = append(anchors, -1)
	in[start] = true
	for len(order) < n {
		bestQ, bestScore, bestAnchor := -1, -1, -1
		for q := 0; q < n; q++ {
			if in[q] {
				continue
			}
			score, anchor := 0, -1
			for pi, r := range order {
				if t.HasEdge(q, r) {
					score++
					if anchor == -1 {
						anchor = pi
					}
				}
			}
			if score > bestScore {
				bestQ, bestScore, bestAnchor = q, score, anchor
			}
		}
		order = append(order, bestQ)
		anchors = append(anchors, bestAnchor)
		in[bestQ] = true
	}
	return order, anchors
}
