package tle

import (
	"testing"

	"approxmatch/internal/graph"
	"approxmatch/internal/pattern"
)

func complete(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(graph.VertexID(i), graph.VertexID(j))
		}
	}
	return b.Build()
}

func TestCountMotifsK5Triangles(t *testing.T) {
	counts, stats, err := CountMotifs(complete(5), 3, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, c := range counts {
		total += c
	}
	if total != 10 { // C(5,3)
		t.Errorf("K5 3-subsets = %d, want 10", total)
	}
	if len(counts) != 1 {
		t.Errorf("K5 has one 3-motif class, got %v", counts)
	}
	if stats.PeakEmbeddings < 10 {
		t.Errorf("peak embeddings = %d", stats.PeakEmbeddings)
	}
	if len(stats.EmbeddingsPerLevel) != 3 {
		t.Errorf("levels recorded = %d", len(stats.EmbeddingsPerLevel))
	}
}

func TestCountMotifsPath(t *testing.T) {
	// Path graph 0-1-2-3: 3-motifs are two induced paths.
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	g := b.Build()
	counts, _, err := CountMotifs(g, 3, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, c := range counts {
		total += c
	}
	if total != 2 || len(counts) != 1 {
		t.Errorf("path 3-motifs = %v", counts)
	}
}

func TestCountMotifsBudget(t *testing.T) {
	if _, _, err := CountMotifs(complete(10), 3, Config{MaxEmbeddings: 10}); err != ErrOutOfMemory {
		t.Errorf("expected OOM, got %v", err)
	}
	// A generous budget succeeds.
	if _, _, err := CountMotifs(complete(10), 3, Config{MaxEmbeddings: 1000}); err != nil {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestCountMotifsSizeOne(t *testing.T) {
	counts, _, err := CountMotifs(complete(4), 1, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, c := range counts {
		total += c
	}
	if total != 4 {
		t.Errorf("1-motifs = %d, want 4", total)
	}
	if _, _, err := CountMotifs(complete(4), 0, Config{}); err == nil {
		t.Error("size 0 accepted")
	}
}

func TestStatsGrowthPattern(t *testing.T) {
	// The embedding count must grow steeply with level on a dense graph —
	// the memory blow-up that makes the TLE model fail at scale.
	_, stats, err := CountMotifs(complete(12), 4, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(stats.EmbeddingsPerLevel); i++ {
		if stats.EmbeddingsPerLevel[i] <= stats.EmbeddingsPerLevel[i-1] {
			t.Errorf("level %d did not grow: %v", i, stats.EmbeddingsPerLevel)
		}
	}
	if stats.PeakBytes <= 0 {
		t.Error("no peak bytes recorded")
	}
}

func TestCountTemplateTriangleK5(t *testing.T) {
	g := complete(5)
	tri, err := pattern.New(make([]pattern.Label, 3),
		[]pattern.Edge{{I: 0, J: 1}, {I: 1, J: 2}, {I: 0, J: 2}})
	if err != nil {
		t.Fatal(err)
	}
	count, stats, err := CountTemplate(g, tri, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if count != 60 { // C(5,3)·3!
		t.Errorf("triangle mappings = %d, want 60", count)
	}
	if stats.PeakEmbeddings == 0 {
		t.Error("no embeddings recorded")
	}
}

func TestCountTemplateBudget(t *testing.T) {
	g := complete(12)
	p4, err := pattern.New(make([]pattern.Label, 4),
		[]pattern.Edge{{I: 0, J: 1}, {I: 1, J: 2}, {I: 2, J: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := CountTemplate(g, p4, Config{MaxEmbeddings: 100}); err != ErrOutOfMemory {
		t.Errorf("expected OOM, got %v", err)
	}
}
