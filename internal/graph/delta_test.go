package graph

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

// deltaTestGraph builds a small labeled graph: a 5-cycle plus a chord.
func deltaTestGraph() *Graph {
	b := NewBuilder(6)
	for v := 0; v < 6; v++ {
		b.SetLabel(VertexID(v), Label(v%3))
	}
	for _, e := range [][2]VertexID{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}, {0, 2}} {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}

func TestApplyDeltaBasic(t *testing.T) {
	g := deltaTestGraph()
	db := NewDeltaBuilder()
	db.InsertEdge(3, 5)
	db.DeleteEdge(2, 0) // reversed endpoint order on purpose
	db.RelabelVertex(4, 9)
	ng, changed, err := db.Apply(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := ng.Validate(); err != nil {
		t.Fatalf("mutated graph invalid: %v", err)
	}
	if !ng.HasEdge(3, 5) || !ng.HasEdge(5, 3) {
		t.Error("inserted edge (3,5) missing")
	}
	if ng.HasEdge(0, 2) || ng.HasEdge(2, 0) {
		t.Error("deleted edge (0,2) still present")
	}
	if ng.Label(4) != 9 {
		t.Errorf("Label(4) = %d, want 9", ng.Label(4))
	}
	if want := []VertexID{0, 2, 3, 4, 5}; !reflect.DeepEqual(changed, want) {
		t.Errorf("changed = %v, want %v", changed, want)
	}
	// The input graph is untouched.
	if g.Label(4) != 1 || !g.HasEdge(0, 2) || g.HasEdge(3, 5) {
		t.Error("ApplyDelta mutated its input graph")
	}
	if ng.NumEdges() != g.NumEdges() {
		t.Errorf("NumEdges = %d, want %d", ng.NumEdges(), g.NumEdges())
	}
}

func TestApplyDeltaEdgeLabels(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdgeLabeled(0, 1, 3)
	b.AddEdgeLabeled(1, 2, 4)
	g := b.Build()

	db := NewDeltaBuilder()
	db.InsertEdgeLabeled(2, 3, 7)
	db.InsertEdge(0, 3) // unlabeled insert into a labeled graph: default label
	db.DeleteEdge(0, 1)
	ng, _, err := db.Apply(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := ng.Validate(); err != nil {
		t.Fatal(err)
	}
	if !ng.HasEdgeLabels() {
		t.Fatal("edge labels lost across ApplyDelta")
	}
	if l, ok := ng.EdgeLabelBetween(2, 3); !ok || l != 7 {
		t.Errorf("EdgeLabelBetween(2,3) = %d,%t want 7,true", l, ok)
	}
	if l, ok := ng.EdgeLabelBetween(3, 2); !ok || l != 7 {
		t.Errorf("reverse slot label = %d,%t want 7,true", l, ok)
	}
	if l, ok := ng.EdgeLabelBetween(1, 2); !ok || l != 4 {
		t.Errorf("retained label = %d,%t want 4,true", l, ok)
	}
	if l, ok := ng.EdgeLabelBetween(0, 3); !ok || l != EdgeLabelDefault {
		t.Errorf("defaulted label = %d,%t want %d,true", l, ok, EdgeLabelDefault)
	}

	// Labeled insert into an edge-unlabeled graph must be rejected.
	plain := deltaTestGraph()
	db2 := NewDeltaBuilder()
	db2.InsertEdgeLabeled(3, 5, 2)
	if _, _, err := db2.Apply(plain); err == nil {
		t.Error("labeled insert into unlabeled graph: want error")
	}
	// ...but an explicitly-default label is fine.
	db3 := NewDeltaBuilder()
	db3.InsertEdgeLabeled(3, 5, EdgeLabelDefault)
	if _, _, err := db3.Apply(plain); err != nil {
		t.Errorf("default-labeled insert into unlabeled graph: %v", err)
	}
}

func TestApplyDeltaRejectsHostileBatches(t *testing.T) {
	g := deltaTestGraph()
	cases := []struct {
		name string
		d    Delta
	}{
		{"insert out of range", Delta{Insert: []Edge{{0, 99}}}},
		{"insert self loop", Delta{Insert: []Edge{{2, 2}}}},
		{"insert present", Delta{Insert: []Edge{{0, 1}}}},
		{"insert present reversed", Delta{Insert: []Edge{{1, 0}}}},
		{"insert duplicate", Delta{Insert: []Edge{{3, 5}, {5, 3}}}},
		{"delete out of range", Delta{Delete: []Edge{{99, 0}}}},
		{"delete self loop", Delta{Delete: []Edge{{1, 1}}}},
		{"delete absent", Delta{Delete: []Edge{{1, 4}}}},
		{"delete duplicate", Delta{Delete: []Edge{{0, 1}, {1, 0}}}},
		{"insert and delete same edge", Delta{Insert: []Edge{{3, 5}}, Delete: []Edge{{5, 3}}}},
		{"relabel out of range", Delta{Relabels: []Relabel{{V: 6, L: 1}}}},
		{"relabel twice", Delta{Relabels: []Relabel{{V: 2, L: 1}, {V: 2, L: 1}}}},
		{"labels without inserts", Delta{InsertLabels: []Label{1}}},
		{"mis-sized labels", Delta{Insert: []Edge{{3, 5}}, InsertLabels: []Label{1, 2}}},
	}
	for _, tc := range cases {
		if _, _, err := ApplyDelta(g, &tc.d); err == nil {
			t.Errorf("%s: want error, got nil", tc.name)
		}
	}
	// Errors leave the input graph untouched.
	if err := g.Validate(); err != nil {
		t.Fatalf("graph corrupted by rejected deltas: %v", err)
	}
}

func TestApplyDeltaEmpty(t *testing.T) {
	g := deltaTestGraph()
	ng, changed, err := ApplyDelta(g, &Delta{})
	if err != nil || ng != g || changed != nil {
		t.Errorf("empty delta: got (%p,%v,%v), want (%p,nil,nil)", ng, changed, err, g)
	}
}

// TestApplyDeltaRandomizedDifferential checks ApplyDelta against a
// from-scratch Builder on random mutation batches.
func TestApplyDeltaRandomizedDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 30; round++ {
		n := 8 + rng.Intn(16)
		edgeLabeled := rng.Intn(2) == 0
		b := NewBuilder(n)
		for v := 0; v < n; v++ {
			b.SetLabel(VertexID(v), Label(rng.Intn(4)))
		}
		present := make(map[Edge]Label)
		for tries := 0; tries < 3*n; tries++ {
			u, v := VertexID(rng.Intn(n)), VertexID(rng.Intn(n))
			if u == v {
				continue
			}
			e := normEdge(Edge{u, v})
			if _, ok := present[e]; ok {
				continue
			}
			l := EdgeLabelDefault
			if edgeLabeled {
				l = Label(rng.Intn(3))
				b.AddEdgeLabeled(e.U, e.V, l)
			} else {
				b.AddEdge(e.U, e.V)
			}
			present[e] = l
		}
		g := b.Build()

		// Random valid delta.
		db := NewDeltaBuilder()
		inserted, deleted := make(map[Edge]Label), make(map[Edge]bool)
		for tries := 0; tries < n; tries++ {
			u, v := VertexID(rng.Intn(n)), VertexID(rng.Intn(n))
			if u == v {
				continue
			}
			e := normEdge(Edge{u, v})
			_, have := present[e]
			_, ins := inserted[e]
			if have && !deleted[e] && !ins && rng.Intn(2) == 0 {
				db.DeleteEdge(e.U, e.V)
				deleted[e] = true
			} else if !have && !ins && !deleted[e] {
				l := EdgeLabelDefault
				if edgeLabeled {
					l = Label(rng.Intn(3))
					db.InsertEdgeLabeled(e.U, e.V, l)
				} else {
					db.InsertEdge(e.U, e.V)
				}
				inserted[e] = l
			}
		}
		relabels := make(map[VertexID]Label)
		for i := 0; i < 2; i++ {
			v := VertexID(rng.Intn(n))
			if _, ok := relabels[v]; ok {
				continue
			}
			relabels[v] = Label(rng.Intn(4))
			db.RelabelVertex(v, relabels[v])
		}

		got, _, err := db.Apply(g)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("round %d: invalid result: %v", round, err)
		}

		// From-scratch reference.
		ref := NewBuilder(n)
		for v := 0; v < n; v++ {
			l := g.Label(VertexID(v))
			if nl, ok := relabels[VertexID(v)]; ok {
				l = nl
			}
			ref.SetLabel(VertexID(v), l)
		}
		addRef := func(e Edge, l Label) {
			if edgeLabeled {
				ref.AddEdgeLabeled(e.U, e.V, l)
			} else {
				ref.AddEdge(e.U, e.V)
			}
		}
		for e, l := range present {
			if !deleted[e] {
				addRef(e, l)
			}
		}
		for e, l := range inserted {
			addRef(e, l)
		}
		want := ref.Build()

		if !reflect.DeepEqual(got.offsets, want.offsets) ||
			!reflect.DeepEqual(got.adj, want.adj) ||
			!reflect.DeepEqual(got.labels, want.labels) ||
			!reflect.DeepEqual(got.edgeLabels, want.edgeLabels) {
			t.Fatalf("round %d: delta result differs from rebuilt graph", round)
		}
	}
}

func TestSnapshotStoreEpochsAndRetirement(t *testing.T) {
	st := NewSnapshotStore(deltaTestGraph())
	if st.Epoch() != 0 {
		t.Fatalf("initial epoch = %d, want 0", st.Epoch())
	}
	s0 := st.Acquire()

	db := NewDeltaBuilder()
	db.InsertEdge(3, 5)
	epoch, changed, err := st.Apply(db.Delta())
	if err != nil || epoch != 1 {
		t.Fatalf("Apply: epoch=%d err=%v, want 1,nil", epoch, err)
	}
	if len(changed) != 2 {
		t.Fatalf("changed = %v, want two vertices", changed)
	}
	// The pinned reader still sees epoch 0's graph.
	if s0.Graph().HasEdge(3, 5) {
		t.Error("pinned snapshot observed the mutation")
	}
	if st.Current().HasEdge(3, 5) == false {
		t.Error("current snapshot missing the mutation")
	}
	if st.Retired() != 0 {
		t.Errorf("Retired = %d before last reader released, want 0", st.Retired())
	}
	s0.Release()
	if st.Retired() != 1 {
		t.Errorf("Retired = %d after last reader released, want 1", st.Retired())
	}

	// A failing Apply publishes nothing.
	bad := &Delta{Insert: []Edge{{0, 1}}}
	if _, _, err := st.Apply(bad); err == nil {
		t.Fatal("hostile delta accepted")
	}
	if st.Epoch() != 1 {
		t.Errorf("epoch moved to %d on a rejected delta", st.Epoch())
	}

	// Bump republishes the same graph under a new epoch.
	g1 := st.Current()
	if e := st.Bump(); e != 2 {
		t.Errorf("Bump = %d, want 2", e)
	}
	if st.Current() != g1 {
		t.Error("Bump changed the graph")
	}
	// The unread epoch-1 snapshot retires on the spot.
	if st.Retired() != 2 {
		t.Errorf("Retired = %d after bump, want 2", st.Retired())
	}
}

// TestSnapshotStoreConcurrentReaders hammers Acquire/Release against a
// writer applying deltas; run under -race via make check. Every reader must
// observe a self-consistent epoch (graph validity plus a stable edge count
// within one snapshot).
func TestSnapshotStoreConcurrentReaders(t *testing.T) {
	st := NewSnapshotStore(deltaTestGraph())
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := st.Acquire()
				m := s.Graph().NumEdges()
				for i := 0; i < 10; i++ {
					if got := s.Graph().NumEdges(); got != m {
						t.Errorf("edge count changed mid-snapshot: %d -> %d", m, got)
					}
				}
				s.Release()
			}
		}()
	}
	for i := 0; i < 50; i++ {
		db := NewDeltaBuilder()
		db.InsertEdge(3, 5)
		if _, _, err := st.Apply(db.Delta()); err != nil {
			t.Error(err)
		}
		db2 := NewDeltaBuilder()
		db2.DeleteEdge(3, 5)
		if _, _, err := st.Apply(db2.Delta()); err != nil {
			t.Error(err)
		}
	}
	close(stop)
	wg.Wait()
	if st.Epoch() != 100 {
		t.Errorf("epoch = %d, want 100", st.Epoch())
	}
}

// TestTopologyBytesCountsEdgeLabels is the regression test for the
// accounting bug where the edge-label array was omitted from the topology
// footprint: an edge-labeled graph must report exactly 4 bytes per directed
// slot more than its unlabeled twin.
func TestTopologyBytesCountsEdgeLabels(t *testing.T) {
	plain := NewBuilder(4)
	plain.AddEdge(0, 1)
	plain.AddEdge(1, 2)
	plain.AddEdge(2, 3)
	pg := plain.Build()

	labeled := NewBuilder(4)
	labeled.AddEdgeLabeled(0, 1, 1)
	labeled.AddEdgeLabeled(1, 2, 2)
	labeled.AddEdgeLabeled(2, 3, 3)
	lg := labeled.Build()

	want := pg.TopologyBytes() + int64(lg.NumDirectedEdges())*4
	if got := lg.TopologyBytes(); got != want {
		t.Errorf("TopologyBytes = %d, want %d (unlabeled %d + %d slots * 4)",
			got, want, pg.TopologyBytes(), lg.NumDirectedEdges())
	}
}
