package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadEdgeList exercises the graph text parser: any input must either
// error or produce a structurally valid graph that round-trips.
func FuzzReadEdgeList(f *testing.F) {
	f.Add("# vertices 3\nv 0 5\n0 1\n1 2\n")
	f.Add("0 1 7\n1 2 8\n")
	f.Add("v 0 1\n")
	f.Fuzz(func(t *testing.T, in string) {
		g, err := ReadEdgeList(strings.NewReader(in))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("parsed graph invalid: %v\ninput: %q", err, in)
		}
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			t.Fatal(err)
		}
		g2, err := ReadEdgeList(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if !sameGraph(g, g2) {
			t.Fatal("round trip changed the graph")
		}
	})
}
