package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadBinary exercises the binary CSR loader with hostile bytes: any
// input must either error or produce a structurally valid graph — never
// panic, and never allocate beyond the (tiny, test-sized) loader limits.
func FuzzReadBinary(f *testing.F) {
	// Seed with valid files of both magics so the fuzzer reaches the
	// section decoding and CSR validation, not just the header checks.
	b := NewBuilder(4)
	b.SetLabel(0, 5)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	var plain bytes.Buffer
	if err := WriteBinary(&plain, b.Build()); err != nil {
		f.Fatal(err)
	}
	f.Add(plain.Bytes())
	bl := NewBuilder(3)
	bl.AddEdgeLabeled(0, 1, 7)
	bl.AddEdgeLabeled(1, 2, 8)
	var labeled bytes.Buffer
	if err := WriteBinary(&labeled, bl.Build()); err != nil {
		f.Fatal(err)
	}
	f.Add(labeled.Bytes())
	f.Add([]byte{})

	lim := LoaderLimits{MaxVertices: 1 << 12, MaxDirectedEdges: 1 << 13}
	f.Fuzz(func(t *testing.T, in []byte) {
		g, err := ReadBinaryLimits(bytes.NewReader(in), lim)
		if err != nil {
			return
		}
		// The loader's structural validation must be strong enough that
		// every accessor is safe; Validate walks them all.
		for v := 0; v < g.NumVertices(); v++ {
			g.Neighbors(VertexID(v))
			g.Degree(VertexID(v))
		}
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			t.Fatalf("rewrite failed on loaded graph: %v", err)
		}
	})
}

// FuzzReadEdgeList exercises the graph text parser: any input must either
// error or produce a structurally valid graph that round-trips.
func FuzzReadEdgeList(f *testing.F) {
	f.Add("# vertices 3\nv 0 5\n0 1\n1 2\n")
	f.Add("0 1 7\n1 2 8\n")
	f.Add("v 0 1\n")
	f.Fuzz(func(t *testing.T, in string) {
		g, err := ReadEdgeList(strings.NewReader(in))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("parsed graph invalid: %v\ninput: %q", err, in)
		}
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			t.Fatal(err)
		}
		g2, err := ReadEdgeList(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if !sameGraph(g, g2) {
			t.Fatal("round trip changed the graph")
		}
	})
}
