package graph

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// FuzzReadBinary exercises the binary CSR loader with hostile bytes: any
// input must either error or produce a structurally valid graph — never
// panic, and never allocate beyond the (tiny, test-sized) loader limits.
func FuzzReadBinary(f *testing.F) {
	// Seed with valid files of both magics so the fuzzer reaches the
	// section decoding and CSR validation, not just the header checks.
	b := NewBuilder(4)
	b.SetLabel(0, 5)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	var plain bytes.Buffer
	if err := WriteBinary(&plain, b.Build()); err != nil {
		f.Fatal(err)
	}
	f.Add(plain.Bytes())
	bl := NewBuilder(3)
	bl.AddEdgeLabeled(0, 1, 7)
	bl.AddEdgeLabeled(1, 2, 8)
	var labeled bytes.Buffer
	if err := WriteBinary(&labeled, bl.Build()); err != nil {
		f.Fatal(err)
	}
	f.Add(labeled.Bytes())
	f.Add([]byte{})

	lim := LoaderLimits{MaxVertices: 1 << 12, MaxDirectedEdges: 1 << 13}
	f.Fuzz(func(t *testing.T, in []byte) {
		g, err := ReadBinaryLimits(bytes.NewReader(in), lim)
		if err != nil {
			return
		}
		// The loader's structural validation must be strong enough that
		// every accessor is safe; Validate walks them all.
		for v := 0; v < g.NumVertices(); v++ {
			g.Neighbors(VertexID(v))
			g.Degree(VertexID(v))
		}
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			t.Fatalf("rewrite failed on loaded graph: %v", err)
		}
	})
}

// FuzzReadEdgeList exercises the graph text parser: any input must either
// error or produce a structurally valid graph that round-trips.
func FuzzReadEdgeList(f *testing.F) {
	f.Add("# vertices 3\nv 0 5\n0 1\n1 2\n")
	f.Add("0 1 7\n1 2 8\n")
	f.Add("v 0 1\n")
	f.Fuzz(func(t *testing.T, in string) {
		g, err := ReadEdgeList(strings.NewReader(in))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("parsed graph invalid: %v\ninput: %q", err, in)
		}
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			t.Fatal(err)
		}
		g2, err := ReadEdgeList(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if !sameGraph(g, g2) {
			t.Fatal("round trip changed the graph")
		}
	})
}

// FuzzApplyDelta feeds hostile mutation batches to ApplyDelta: any batch
// must either be rejected with an error or produce a structurally valid
// next-epoch graph — never panic, and never corrupt the input snapshot.
// The byte stream decodes to ops of 5 bytes: opcode, two 2-byte operands.
func FuzzApplyDelta(f *testing.F) {
	f.Add([]byte{0, 0, 3, 0, 5, 1, 0, 0, 0, 1, 2, 0, 4, 0, 9})
	f.Add([]byte{0, 0, 2, 0, 2})       // self loop
	f.Add([]byte{1, 0, 1, 0, 4})       // delete absent
	f.Add([]byte{3, 0, 3, 0, 5, 0xff}) // labeled insert
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, in []byte) {
		base := NewBuilder(6)
		for v := 0; v < 6; v++ {
			base.SetLabel(VertexID(v), Label(v%3))
		}
		base.AddEdge(0, 1)
		base.AddEdge(1, 2)
		base.AddEdge(2, 3)
		base.AddEdge(3, 4)
		base.AddEdge(4, 0)
		base.AddEdge(0, 2)
		g := base.Build()
		before := struct {
			offsets []int64
			adj     []VertexID
			labels  []Label
		}{
			append([]int64(nil), g.offsets...),
			append([]VertexID(nil), g.adj...),
			append([]Label(nil), g.labels...),
		}

		d := &Delta{}
		for i := 0; i+4 < len(in); i += 5 {
			a := VertexID(in[i+1]) | VertexID(in[i+2])<<8
			b := VertexID(in[i+3]) | VertexID(in[i+4])<<8
			switch in[i] % 4 {
			case 0:
				d.Insert = append(d.Insert, Edge{a, b})
			case 1:
				d.Delete = append(d.Delete, Edge{a, b})
			case 2:
				d.Relabels = append(d.Relabels, Relabel{V: a, L: Label(b)})
			case 3:
				d.Insert = append(d.Insert, Edge{a, b})
				d.InsertLabels = append(d.InsertLabels, Label(in[i]))
			}
		}

		ng, changed, err := ApplyDelta(g, d)
		if err == nil && !d.Empty() {
			if verr := ng.Validate(); verr != nil {
				t.Fatalf("accepted delta produced invalid graph: %v", verr)
			}
			if len(changed) == 0 {
				t.Fatal("accepted non-empty delta reported no changed vertices")
			}
		}
		// The input snapshot must be bit-identical either way.
		if !reflect.DeepEqual(g.offsets, before.offsets) ||
			!reflect.DeepEqual(g.adj, before.adj) ||
			!reflect.DeepEqual(g.labels, before.labels) {
			t.Fatal("ApplyDelta corrupted the input snapshot")
		}
	})
}
