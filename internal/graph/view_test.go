package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randomViewGraph builds a random simple graph, optionally edge-labeled.
func randomViewGraph(rng *rand.Rand, n, m, labels, edgeLabels int) *Graph {
	b := NewBuilder(0)
	for v := 0; v < n; v++ {
		b.AddVertex(Label(rng.Intn(labels)))
	}
	for i := 0; i < m; i++ {
		u, v := VertexID(rng.Intn(n)), VertexID(rng.Intn(n))
		if u == v {
			continue
		}
		if edgeLabels > 0 {
			b.AddEdgeLabeled(u, v, Label(rng.Intn(edgeLabels)))
		} else {
			b.AddEdge(u, v)
		}
	}
	return b.Build()
}

// symmetricKeepSlots builds a random symmetric slot predicate: an undirected
// edge's two directed slots are always kept or dropped together, as the
// View contract requires.
func symmetricKeepSlots(rng *rand.Rand, g *Graph) map[int64]bool {
	keep := make(map[int64]bool, g.NumDirectedEdges())
	for u := 0; u < g.NumVertices(); u++ {
		uid := VertexID(u)
		base := g.AdjOffset(uid)
		for i, w := range g.Neighbors(uid) {
			if uid > w {
				continue // decide once per undirected edge
			}
			k := rng.Intn(4) != 0 // drop ~25% of edges
			keep[base+int64(i)] = k
			if j := g.EdgeIndex(w, uid); j >= 0 {
				keep[g.AdjOffset(w)+int64(j)] = k
			}
		}
	}
	return keep
}

// TestViewRoundTripQuick is the remap round-trip property test: for random
// graphs, keep sets and symmetric slot drops, the view must (1) be a valid
// CSR graph, (2) preserve vertex and edge labels through the remap, (3) map
// ids old→new→old and new→old→new consistently, and (4) keep slot symmetry
// — the reverse of every kept view slot is kept and maps to the reverse of
// its original slot.
func TestViewRoundTripQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(60)
		edgeLabels := 0
		if rng.Intn(2) == 0 {
			edgeLabels = 3
		}
		g := randomViewGraph(rng, n, 3*n, 4, edgeLabels)
		keepV := make([]bool, n)
		for v := range keepV {
			keepV[v] = rng.Intn(3) != 0
		}
		keepS := symmetricKeepSlots(rng, g)
		vw := NewView(g,
			func(v VertexID) bool { return keepV[v] },
			func(slot int64) bool { return keepS[slot] })
		cg := vw.Graph()
		if err := cg.Validate(); err != nil {
			t.Logf("seed %d: view graph invalid: %v", seed, err)
			return false
		}
		if vw.Orig() != g || vw.NumVertices() != cg.NumVertices() {
			return false
		}

		// Vertex round trip + label preservation + monotone order.
		kept := 0
		for ov := 0; ov < n; ov++ {
			nv, ok := vw.NewVertex(VertexID(ov))
			if ok != keepV[ov] {
				return false
			}
			if !ok {
				continue
			}
			kept++
			if vw.OrigVertex(nv) != VertexID(ov) || cg.Label(nv) != g.Label(VertexID(ov)) {
				return false
			}
		}
		if kept != cg.NumVertices() {
			return false
		}
		for i := 1; i < len(vw.OrigVertices()); i++ {
			if vw.OrigVertices()[i-1] >= vw.OrigVertices()[i] {
				return false // remap must stay monotone
			}
		}

		// Slot round trip: every view slot maps to an original slot that
		// connects the same (remapped) endpoints with the same edge label,
		// and slot symmetry survives the extraction.
		if cg.HasEdgeLabels() != g.HasEdgeLabels() {
			return false
		}
		for nu := 0; nu < cg.NumVertices(); nu++ {
			nuid := VertexID(nu)
			base := int(cg.AdjOffset(nuid))
			for i, nw := range cg.Neighbors(nuid) {
				oslot := vw.OrigSlot(base + i)
				if !keepS[oslot] {
					return false
				}
				ou := vw.OrigVertex(nuid)
				ow := g.Neighbors(ou)[oslot-g.AdjOffset(ou)]
				if ow != vw.OrigVertex(nw) {
					return false
				}
				if g.HasEdgeLabels() && cg.EdgeLabelAt(nuid, i) != g.EdgeLabelAt(ou, int(oslot-g.AdjOffset(ou))) {
					return false
				}
				// Reverse slot must exist in the view and map to the
				// original reverse slot.
				j := cg.EdgeIndex(nw, nuid)
				if j < 0 {
					return false
				}
				rev := vw.OrigSlot(int(cg.AdjOffset(nw)) + j)
				if oj := g.EdgeIndex(ow, ou); oj < 0 || rev != g.AdjOffset(ow)+int64(oj) {
					return false
				}
			}
		}

		// Completeness: every original slot with both endpoints kept and the
		// slot kept must appear in the view.
		for ou := 0; ou < n; ou++ {
			ouid := VertexID(ou)
			base := g.AdjOffset(ouid)
			for i, ow := range g.Neighbors(ouid) {
				wantKept := keepV[ou] && keepV[ow] && keepS[base+int64(i)]
				if !wantKept {
					continue
				}
				nu, _ := vw.NewVertex(ouid)
				nw, _ := vw.NewVertex(ow)
				if cg.EdgeIndex(nu, nw) < 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestViewEmptyAndFull covers the degenerate keep sets: a keep-everything
// view reproduces the graph 1:1, and a keep-nothing view is empty.
func TestViewEmptyAndFull(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := randomViewGraph(rng, 30, 90, 3, 2)
	all := NewView(g, func(VertexID) bool { return true }, func(int64) bool { return true })
	if all.Graph().NumVertices() != g.NumVertices() || all.Graph().NumDirectedEdges() != g.NumDirectedEdges() {
		t.Fatalf("full view: %d/%d vertices, %d/%d slots",
			all.Graph().NumVertices(), g.NumVertices(),
			all.Graph().NumDirectedEdges(), g.NumDirectedEdges())
	}
	for s := 0; s < g.NumDirectedEdges(); s++ {
		if all.OrigSlot(s) != int64(s) {
			t.Fatalf("full view: slot %d maps to %d", s, all.OrigSlot(s))
		}
	}
	none := NewView(g, func(VertexID) bool { return false }, func(int64) bool { return true })
	if none.Graph().NumVertices() != 0 || none.Graph().NumDirectedEdges() != 0 {
		t.Fatal("empty view not empty")
	}
	if err := none.Graph().Validate(); err != nil {
		t.Fatalf("empty view invalid: %v", err)
	}
}
