package graph

// Edge-label support: the paper notes its techniques "can be easily
// generalized, including to edge-labeled graphs" (§2). Edge labels are
// optional — an unlabeled graph carries no per-edge storage — and are
// stored per directed adjacency slot, aligned with the adjacency array.

// EdgeLabelDefault is the label of edges added without an explicit label.
const EdgeLabelDefault Label = 0

// AddEdgeLabeled records the undirected edge (u,v) with an edge label.
// When the same undirected edge is added multiple times, the largest label
// wins (deterministic regardless of insertion order).
func (b *Builder) AddEdgeLabeled(u, v VertexID, l Label) {
	if u == v {
		return
	}
	b.AddEdge(u, v)
	if u > v {
		u, v = v, u
	}
	if b.edgeLabels == nil {
		b.edgeLabels = make(map[Edge]Label)
	}
	if prev, ok := b.edgeLabels[Edge{u, v}]; !ok || l > prev {
		b.edgeLabels[Edge{u, v}] = l
	}
}

// HasEdgeLabels reports whether any edge carries a non-default label.
func (g *Graph) HasEdgeLabels() bool { return g.edgeLabels != nil }

// EdgeLabelAt returns the label of the directed slot (u, i-th neighbor);
// EdgeLabelDefault when the graph is edge-unlabeled.
func (g *Graph) EdgeLabelAt(u VertexID, i int) Label {
	if g.edgeLabels == nil {
		return EdgeLabelDefault
	}
	return g.edgeLabels[g.offsets[u]+int64(i)]
}

// EdgeLabelBetween returns the label of the undirected edge (u,v) and
// whether the edge exists.
func (g *Graph) EdgeLabelBetween(u, v VertexID) (Label, bool) {
	i := g.EdgeIndex(u, v)
	if i < 0 {
		return 0, false
	}
	return g.EdgeLabelAt(u, i), true
}

// EdgeLabelFrequencies returns counts of undirected edges per edge label
// (empty for edge-unlabeled graphs).
func (g *Graph) EdgeLabelFrequencies() map[Label]int64 {
	freq := make(map[Label]int64)
	if g.edgeLabels == nil {
		return freq
	}
	for u := 0; u < g.NumVertices(); u++ {
		for i, w := range g.Neighbors(VertexID(u)) {
			if VertexID(u) < w {
				freq[g.EdgeLabelAt(VertexID(u), i)]++
			}
		}
	}
	return freq
}
