package graph

import (
	"fmt"
	"sort"
)

// Builder accumulates labeled vertices and undirected edges and produces a
// CSR Graph. It deduplicates parallel edges, drops self loops and
// symmetrizes the edge set, so callers may add each undirected edge in
// either or both directions.
type Builder struct {
	labels     []Label
	edges      []Edge
	edgeLabels map[Edge]Label // nil unless AddEdgeLabeled was used
}

// NewBuilder returns a Builder pre-sized for n vertices with label zero.
func NewBuilder(n int) *Builder {
	return &Builder{labels: make([]Label, n)}
}

// AddVertex appends a vertex with the given label and returns its id.
func (b *Builder) AddVertex(l Label) VertexID {
	b.labels = append(b.labels, l)
	return VertexID(len(b.labels) - 1)
}

// SetLabel sets the label of an existing vertex.
func (b *Builder) SetLabel(v VertexID, l Label) { b.labels[v] = l }

// NumVertices returns the number of vertices added so far.
func (b *Builder) NumVertices() int { return len(b.labels) }

// AddEdge records the undirected edge (u,v). Self loops are ignored.
// Vertices must already exist.
func (b *Builder) AddEdge(u, v VertexID) {
	if u == v {
		return
	}
	if int(u) >= len(b.labels) || int(v) >= len(b.labels) {
		panic(fmt.Sprintf("graph: AddEdge(%d,%d) beyond %d vertices", u, v, len(b.labels)))
	}
	if u > v {
		u, v = v, u
	}
	b.edges = append(b.edges, Edge{u, v})
}

// Build produces the CSR graph. The builder may be reused afterwards, but
// the produced graph is independent of it.
func (b *Builder) Build() *Graph {
	n := len(b.labels)
	// Sort and deduplicate the canonicalized (u<v) edge list.
	sort.Slice(b.edges, func(i, j int) bool {
		if b.edges[i].U != b.edges[j].U {
			return b.edges[i].U < b.edges[j].U
		}
		return b.edges[i].V < b.edges[j].V
	})
	dedup := b.edges[:0]
	for i, e := range b.edges {
		if i > 0 && e == b.edges[i-1] {
			continue
		}
		dedup = append(dedup, e)
	}
	b.edges = dedup

	deg := make([]int64, n+1)
	for _, e := range b.edges {
		deg[e.U+1]++
		deg[e.V+1]++
	}
	offsets := make([]int64, n+1)
	for i := 0; i < n; i++ {
		offsets[i+1] = offsets[i] + deg[i+1]
	}
	adj := make([]VertexID, offsets[n])
	cursor := make([]int64, n)
	copy(cursor, offsets[:n])
	for _, e := range b.edges {
		adj[cursor[e.U]] = e.V
		cursor[e.U]++
		adj[cursor[e.V]] = e.U
		cursor[e.V]++
	}
	// Neighbor lists of each vertex are already sorted because edges were
	// processed in (U,V) order: entries written at u come in increasing V,
	// and entries written at v (from the reverse direction) come in
	// increasing U; but the two interleave, so sort each list.
	g := &Graph{offsets: offsets, adj: adj, labels: append([]Label(nil), b.labels...)}
	for v := 0; v < n; v++ {
		ns := adj[offsets[v]:offsets[v+1]]
		sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
	}
	if b.edgeLabels != nil {
		g.edgeLabels = make([]Label, len(adj))
		for v := 0; v < n; v++ {
			for i, w := range g.Neighbors(VertexID(v)) {
				a, bb := VertexID(v), w
				if a > bb {
					a, bb = bb, a
				}
				g.edgeLabels[offsets[v]+int64(i)] = b.edgeLabels[Edge{a, bb}]
			}
		}
	}
	return g
}

// FromEdges is a convenience constructor building a graph directly from a
// label slice and an edge list.
func FromEdges(labels []Label, edges []Edge) *Graph {
	b := NewBuilder(0)
	b.labels = append(b.labels, labels...)
	for _, e := range edges {
		b.AddEdge(e.U, e.V)
	}
	return b.Build()
}

// InducedSubgraph returns the subgraph of g induced by keep (a vertex
// predicate), along with a mapping from new vertex ids to original ids.
// It is used by tests and by the load-rebalancing checkpoint path.
func InducedSubgraph(g *Graph, keep func(VertexID) bool) (*Graph, []VertexID) {
	remap := make(map[VertexID]VertexID)
	var orig []VertexID
	for v := 0; v < g.NumVertices(); v++ {
		if keep(VertexID(v)) {
			remap[VertexID(v)] = VertexID(len(orig))
			orig = append(orig, VertexID(v))
		}
	}
	b := NewBuilder(len(orig))
	for nv, ov := range orig {
		b.SetLabel(VertexID(nv), g.Label(ov))
	}
	labeled := g.HasEdgeLabels()
	for _, ov := range orig {
		for i, w := range g.Neighbors(ov) {
			nw, ok := remap[w]
			if !ok || remap[ov] >= nw {
				continue
			}
			if labeled {
				b.AddEdgeLabeled(remap[ov], nw, g.EdgeLabelAt(ov, i))
			} else {
				b.AddEdge(remap[ov], nw)
			}
		}
	}
	return b.Build(), orig
}
