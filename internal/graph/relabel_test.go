package graph

import (
	"math/rand"
	"testing"
)

// randomLabeledGraph builds an Erdős–Rényi-ish graph with vertex and edge
// labels, deterministic in seed.
func randomLabeledGraph(n int, p float64, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(n)
	for v := 0; v < n; v++ {
		b.SetLabel(VertexID(v), Label(rng.Intn(4)))
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				b.AddEdgeLabeled(VertexID(u), VertexID(v), Label(rng.Intn(3)))
			}
		}
	}
	return b.Build()
}

// extEdge is an undirected edge in external-id space with its label, the
// relabel-invariant view of the topology.
type extEdge struct {
	u, v VertexID
	l    Label
}

func externalEdgeSet(t *testing.T, g *Graph) map[extEdge]bool {
	t.Helper()
	set := make(map[extEdge]bool)
	for v := 0; v < g.NumVertices(); v++ {
		iv := VertexID(v)
		for i, w := range g.Neighbors(iv) {
			eu, ev := g.ExternalID(iv), g.ExternalID(w)
			if eu > ev {
				eu, ev = ev, eu
			}
			var l Label
			if g.HasEdgeLabels() {
				l = g.EdgeLabelAt(iv, i)
			}
			e := extEdge{eu, ev, l}
			if set[e] && eu != ev {
				continue // second directed slot of the same edge
			}
			set[e] = true
		}
	}
	return set
}

func TestRelabelByDegreePreservesGraph(t *testing.T) {
	g := randomLabeledGraph(64, 0.12, 7)
	rg := RelabelByDegree(g)
	if err := rg.Validate(); err != nil {
		t.Fatalf("relabeled graph invalid: %v", err)
	}
	if !rg.Relabeled() {
		t.Fatal("relabeled graph reports Relabeled() = false")
	}
	if rg.NumVertices() != g.NumVertices() || rg.NumEdges() != g.NumEdges() {
		t.Fatalf("size changed: %d/%d vs %d/%d vertices/edges",
			rg.NumVertices(), rg.NumEdges(), g.NumVertices(), g.NumEdges())
	}

	// Internal ids are degree-ordered.
	for v := 1; v < rg.NumVertices(); v++ {
		if rg.Degree(VertexID(v)) > rg.Degree(VertexID(v-1)) {
			t.Fatalf("degree order violated at internal id %d: %d > %d",
				v, rg.Degree(VertexID(v)), rg.Degree(VertexID(v-1)))
		}
	}

	// The id maps are inverse bijections.
	for v := 0; v < rg.NumVertices(); v++ {
		iv := VertexID(v)
		if rg.InternalID(rg.ExternalID(iv)) != iv {
			t.Fatalf("InternalID(ExternalID(%d)) != %d", v, v)
		}
	}

	// Same labeled vertex set and labeled edge set in external-id terms.
	for v := 0; v < rg.NumVertices(); v++ {
		iv := VertexID(v)
		if rg.Label(iv) != g.Label(rg.ExternalID(iv)) {
			t.Fatalf("label mismatch at internal id %d", v)
		}
		if rg.Degree(iv) != g.Degree(rg.ExternalID(iv)) {
			t.Fatalf("degree mismatch at internal id %d", v)
		}
	}
	got, want := externalEdgeSet(t, rg), externalEdgeSet(t, g)
	if len(got) != len(want) {
		t.Fatalf("edge-set size %d, want %d", len(got), len(want))
	}
	for e := range want {
		if !got[e] {
			t.Fatalf("edge %v missing after relabel", e)
		}
	}
}

func TestRelabelByDegreeIdentityShortCircuit(t *testing.T) {
	// A graph already in descending degree order: a star with the hub first.
	b := NewBuilder(5)
	for v := 1; v < 5; v++ {
		b.AddEdge(0, VertexID(v))
	}
	g := b.Build()
	if rg := RelabelByDegree(g); rg != g {
		t.Error("already-ordered graph was copied instead of returned")
	}
	if g.Relabeled() {
		t.Error("identity result must not carry tables")
	}
	if g.ExternalID(3) != 3 || g.InternalID(3) != 3 {
		t.Error("identity translation broken")
	}
}

func TestRelabelByDegreeComposes(t *testing.T) {
	g := randomLabeledGraph(40, 0.15, 11)
	once := RelabelByDegree(g)
	twice := RelabelByDegree(once)
	// Relabeling a degree-ordered graph is the identity permutation, but the
	// input carries tables, so a copy with the SAME external mapping comes
	// back — external ids must still refer to g's space.
	if twice.NumVertices() != g.NumVertices() {
		t.Fatal("vertex count changed")
	}
	for v := 0; v < twice.NumVertices(); v++ {
		iv := VertexID(v)
		if twice.ExternalID(iv) != once.ExternalID(iv) {
			t.Fatalf("composition broke external mapping at %d", v)
		}
		if twice.Label(iv) != g.Label(twice.ExternalID(iv)) {
			t.Fatalf("composition broke labels at %d", v)
		}
	}
}

func TestTranslateDeltaToInternal(t *testing.T) {
	g := randomLabeledGraph(32, 0.1, 3)
	rg := RelabelByDegree(g)

	// Pick an external non-edge to insert and an external edge to delete.
	var insU, insV VertexID
	found := false
	for u := 0; u < 32 && !found; u++ {
		for v := u + 1; v < 32; v++ {
			if !g.HasEdge(VertexID(u), VertexID(v)) {
				insU, insV, found = VertexID(u), VertexID(v), true
				break
			}
		}
	}
	if !found {
		t.Fatal("no non-edge available")
	}
	delU := VertexID(0)
	delV := g.Neighbors(0)[0]

	db := NewDeltaBuilder()
	db.InsertEdge(insU, insV)
	db.DeleteEdge(delU, delV)
	db.RelabelVertex(5, 7)
	d := db.Delta()

	nd := TranslateDeltaToInternal(rg, d)
	if nd == d {
		t.Fatal("relabeled graph returned the delta untranslated")
	}
	ng, _, err := ApplyDelta(rg, nd)
	if err != nil {
		t.Fatal(err)
	}
	if !ng.Relabeled() {
		t.Fatal("ApplyDelta dropped the permutation tables")
	}
	// The mutation is visible in external-id terms.
	if !ng.HasEdge(ng.InternalID(insU), ng.InternalID(insV)) {
		t.Errorf("inserted external edge (%d,%d) missing", insU, insV)
	}
	if ng.HasEdge(ng.InternalID(delU), ng.InternalID(delV)) {
		t.Errorf("deleted external edge (%d,%d) still present", delU, delV)
	}
	if ng.Label(ng.InternalID(5)) != 7 {
		t.Error("relabel lost in translation")
	}
	// And matches applying the same external delta to the plain graph.
	pg, _, err := ApplyDelta(g, d)
	if err != nil {
		t.Fatal(err)
	}
	gotES, wantES := externalEdgeSet(t, ng), externalEdgeSet(t, pg)
	if len(gotES) != len(wantES) {
		t.Fatalf("edge sets diverge: %d vs %d", len(gotES), len(wantES))
	}
	for e := range wantES {
		if !gotES[e] {
			t.Fatalf("edge %v missing from translated-delta graph", e)
		}
	}

	// Identity on a plain graph, and out-of-range ids pass through so delta
	// validation still rejects them.
	if TranslateDeltaToInternal(g, d) != d {
		t.Error("plain graph should get the delta back unchanged")
	}
	bad := NewDeltaBuilder()
	bad.InsertEdge(1, 99)
	if _, _, err := ApplyDelta(rg, TranslateDeltaToInternal(rg, bad.Delta())); err == nil {
		t.Error("out-of-range external id survived translation and validation")
	}
}

// TestSnapshotRetirementReclaimsBytes pins the proactive-release accounting:
// a retired epoch drops its graph pointer, and ReclaimedBytes grows by the
// superseded CSR's topology bytes exactly once per distinct graph — Bump and
// empty deltas, which republish the same CSR, add retirements but no bytes.
func TestSnapshotRetirementReclaimsBytes(t *testing.T) {
	g0 := deltaTestGraph()
	st := NewSnapshotStore(g0)
	b0 := uint64(g0.TopologyBytes())

	s0 := st.Acquire()

	db := NewDeltaBuilder()
	db.InsertEdge(3, 5)
	if _, _, err := st.Apply(db.Delta()); err != nil {
		t.Fatal(err)
	}
	if st.ReclaimedBytes() != 0 {
		t.Fatalf("ReclaimedBytes = %d while epoch 0 still pinned, want 0", st.ReclaimedBytes())
	}
	s0.Release()
	if st.Retired() != 1 {
		t.Fatalf("Retired = %d, want 1", st.Retired())
	}
	if got := st.ReclaimedBytes(); got != b0 {
		t.Fatalf("ReclaimedBytes = %d after epoch 0 retired, want %d", got, b0)
	}
	if s0.Graph() != nil {
		t.Error("retired snapshot still holds its graph pointer")
	}

	// Bump shares the CSR with the new epoch: retirement without reclaim.
	g1bytes := uint64(st.Current().TopologyBytes())
	st.Bump()
	if st.Retired() != 2 {
		t.Fatalf("Retired = %d after bump, want 2", st.Retired())
	}
	if got := st.ReclaimedBytes(); got != b0 {
		t.Fatalf("ReclaimedBytes = %d after bump, want unchanged %d", got, b0)
	}

	// An empty delta also republishes the same graph.
	if _, _, err := st.Apply(NewDeltaBuilder().Delta()); err != nil {
		t.Fatal(err)
	}
	if got := st.ReclaimedBytes(); got != b0 {
		t.Fatalf("ReclaimedBytes = %d after empty delta, want unchanged %d", got, b0)
	}

	// A real delta finally supersedes the shared CSR; its bytes count once
	// even though three epochs referenced it.
	db2 := NewDeltaBuilder()
	db2.DeleteEdge(0, 1)
	if _, _, err := st.Apply(db2.Delta()); err != nil {
		t.Fatal(err)
	}
	if got, want := st.ReclaimedBytes(), b0+g1bytes; got != want {
		t.Fatalf("ReclaimedBytes = %d after shared CSR superseded, want %d", got, want)
	}
	if st.Retired() != 4 {
		t.Fatalf("Retired = %d, want 4", st.Retired())
	}

	// A racing reader that pinned before the swap keeps the graph alive and
	// readable until its own Release.
	s := st.Acquire()
	gNow := s.Graph()
	st.Bump()
	st.Bump()
	if s.Graph() != gNow {
		t.Error("pinned snapshot lost its graph across bumps")
	}
	s.Release()
	if s.Graph() != nil {
		t.Error("snapshot kept its graph after final release")
	}
}
