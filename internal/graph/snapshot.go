package graph

import (
	"sync"
	"sync/atomic"
)

// Epoch-swapped graph snapshots. A SnapshotStore publishes an immutable
// graph under a monotonically increasing epoch; writers build the
// next-epoch CSR off to the side (ApplyDelta) and swap it in with one
// atomic pointer store, while in-flight readers keep using the snapshot
// they acquired. When the last reader of a superseded snapshot releases,
// the snapshot retires: it drops its graph pointer so the CSR becomes
// collectible immediately instead of living as long as the Snapshot header
// does, and — once no other epoch still shares that same graph (Bump and
// empty deltas republish the previous CSR) — its topology bytes are added
// to the store's reclaimed-bytes counter surfaced on /metrics.

// poisonReaders marks a retired snapshot's reader count. Any value this
// negative can only mean "retired": a racing Acquire that bumps past it
// still sees a negative count, backs out, and retries on the new current.
const poisonReaders = int64(-1) << 40

// graphRef tracks how many live epochs reference one CSR, so reclaimed-bytes
// accounting fires exactly once per distinct graph — when its last holding
// epoch retires — no matter how many Bump/empty-delta epochs shared it.
type graphRef struct {
	holders atomic.Int64
	bytes   int64
}

// Snapshot is one immutable epoch of the graph. Readers obtain it via
// SnapshotStore.Acquire and must call Release exactly once when done; the
// graph is only guaranteed reachable through the snapshot while pinned.
type Snapshot struct {
	gp      atomic.Pointer[Graph]
	ref     *graphRef
	epoch   uint64
	store   *SnapshotStore
	readers atomic.Int64
	current atomic.Bool
}

// Graph returns the snapshot's immutable graph. It is nil once the snapshot
// has retired — after the caller's own Release, which is the only time a
// correctly pinning caller could observe it.
func (s *Snapshot) Graph() *Graph { return s.gp.Load() }

// Epoch returns the snapshot's epoch number.
func (s *Snapshot) Epoch() uint64 { return s.epoch }

// Release drops the reader's pin. When the last reader of a superseded
// snapshot releases, the snapshot retires.
func (s *Snapshot) Release() {
	if s.readers.Add(-1) == 0 && !s.current.Load() {
		s.tryRetire()
	}
}

// tryRetire retires the snapshot iff no reader holds it. The CAS from zero
// to the poison value is the once-guard and the synchronization point: once
// it lands, no Acquire can pin the snapshot again (they see a negative count
// and back off), so dropping the graph pointer is safe. Callers guarantee
// the snapshot is already superseded.
func (s *Snapshot) tryRetire() {
	if !s.readers.CompareAndSwap(0, poisonReaders) {
		return
	}
	s.gp.Store(nil)
	if s.ref.holders.Add(-1) == 0 {
		s.store.reclaimedBytes.Add(uint64(s.ref.bytes))
	}
	s.store.retired.Add(1)
}

// SnapshotStore publishes the current graph epoch and serializes writers.
// Acquire/Release are wait-free for readers except in the rare race with
// the retirement of a just-superseded epoch; Apply and Bump are mutually
// exclusive.
type SnapshotStore struct {
	writeMu        sync.Mutex
	cur            atomic.Pointer[Snapshot]
	retired        atomic.Uint64
	reclaimedBytes atomic.Uint64
}

// NewSnapshotStore publishes g as epoch 0.
func NewSnapshotStore(g *Graph) *SnapshotStore {
	return NewSnapshotStoreAt(g, 0)
}

// NewSnapshotStoreAt publishes g under a non-zero starting epoch. This is
// the WAL recovery path: the store must resume exactly where the crashed
// process stopped so replayed clients, epoch-keyed caches, and the delta
// log's epoch chain all agree on what "next" means.
func NewSnapshotStoreAt(g *Graph, epoch uint64) *SnapshotStore {
	st := &SnapshotStore{}
	s := &Snapshot{store: st, epoch: epoch}
	s.gp.Store(g)
	s.ref = &graphRef{bytes: g.TopologyBytes()}
	s.ref.holders.Store(1)
	s.current.Store(true)
	st.cur.Store(s)
	return st
}

// Acquire pins and returns the current snapshot. The snapshot stays valid —
// it is immutable and its graph pointer is held until the last pin drops —
// even if a writer swaps in a new epoch concurrently; the caller must
// Release it exactly once.
func (st *SnapshotStore) Acquire() *Snapshot {
	for {
		s := st.cur.Load()
		if s.readers.Add(1) > 0 {
			return s
		}
		// The snapshot retired between the load and the pin (count is
		// poisoned). Back out and retry on the newer current — retirement
		// implies one exists.
		s.readers.Add(-1)
	}
}

// Current returns the current graph without pinning it. Use Acquire when
// the caller does more than one read against a consistent epoch.
func (st *SnapshotStore) Current() *Graph {
	for {
		if g := st.cur.Load().gp.Load(); g != nil {
			return g
		}
		// Loaded a snapshot that was superseded and retired in between; the
		// store already points at a newer epoch.
	}
}

// Epoch returns the current epoch number.
func (st *SnapshotStore) Epoch() uint64 { return st.cur.Load().epoch }

// Retired returns how many superseded snapshots have seen their last reader
// finish (or had none when superseded).
func (st *SnapshotStore) Retired() uint64 { return st.retired.Load() }

// ReclaimedBytes returns the total CSR topology bytes made collectible by
// snapshot retirement: a graph's bytes count once, when the last epoch
// referencing it retires. Epochs that republished the same CSR (Bump, empty
// deltas) contribute nothing extra.
func (st *SnapshotStore) ReclaimedBytes() uint64 { return st.reclaimedBytes.Load() }

// publish swaps g in as the next epoch. Caller holds writeMu.
func (st *SnapshotStore) publish(g *Graph) *Snapshot {
	old := st.cur.Load()
	next := &Snapshot{epoch: old.epoch + 1, store: st}
	next.gp.Store(g)
	if old.gp.Load() == g {
		next.ref = old.ref // same CSR carried forward: share the holder count
	} else {
		next.ref = &graphRef{bytes: g.TopologyBytes()}
	}
	next.ref.holders.Add(1)
	next.current.Store(true)
	st.cur.Store(next)
	old.current.Store(false)
	// Retire immediately when no reader holds the superseded epoch; a pinned
	// epoch retires in its last Release instead (which re-checks current).
	old.tryRetire()
	return next
}

// Apply validates and applies d to the current epoch, publishes the result
// as the next epoch and returns the new epoch number plus the changed
// vertices (see ApplyDelta). On a validation error nothing is published. An
// empty delta still advances the epoch (publishing the same graph), so
// callers can rely on Apply to version out epoch-keyed caches.
func (st *SnapshotStore) Apply(d *Delta) (epoch uint64, changed []VertexID, err error) {
	return st.ApplyLogged(d, nil)
}

// ApplyLogged is Apply with a durability commit hook. After d validates
// against the current epoch — the next-epoch CSR is fully built at that
// point — and before anything is published to readers, commit runs under
// the writer lock with the epoch the batch is about to become. If commit
// returns an error, nothing is published and the error is returned: this
// is the write-ahead contract, a published epoch always implies a
// durably logged record and never the reverse. A nil commit makes
// ApplyLogged identical to Apply.
func (st *SnapshotStore) ApplyLogged(d *Delta, commit func(epoch uint64) error) (epoch uint64, changed []VertexID, err error) {
	st.writeMu.Lock()
	defer st.writeMu.Unlock()
	old := st.cur.Load()
	ng, changed, err := ApplyDelta(old.Graph(), d)
	if err != nil {
		return old.epoch, nil, err
	}
	if commit != nil {
		if err := commit(old.epoch + 1); err != nil {
			return old.epoch, nil, err
		}
	}
	return st.publish(ng).epoch, changed, nil
}

// Bump republishes the current graph under a new epoch without mutating it,
// for callers that need epoch-keyed caches invalidated (operator-driven
// BumpEpoch).
func (st *SnapshotStore) Bump() uint64 {
	st.writeMu.Lock()
	defer st.writeMu.Unlock()
	return st.publish(st.cur.Load().Graph()).epoch
}
