package graph

import (
	"sync"
	"sync/atomic"
)

// Epoch-swapped graph snapshots. A SnapshotStore publishes an immutable
// graph under a monotonically increasing epoch; writers build the
// next-epoch CSR off to the side (ApplyDelta) and swap it in with one
// atomic pointer store, while in-flight readers keep using the snapshot
// they acquired. Old epochs are "retired" when their last reader releases —
// an accounting signal (surfaced on /metrics); reclamation itself is the
// garbage collector's job, which is what makes the scheme safe without
// hazard pointers or RCU grace periods.

// Snapshot is one immutable epoch of the graph. Readers obtain it via
// SnapshotStore.Acquire and must call Release exactly once when done.
type Snapshot struct {
	g       *Graph
	epoch   uint64
	store   *SnapshotStore
	readers atomic.Int64
	current atomic.Bool
	retired atomic.Bool
}

// Graph returns the snapshot's immutable graph.
func (s *Snapshot) Graph() *Graph { return s.g }

// Epoch returns the snapshot's epoch number.
func (s *Snapshot) Epoch() uint64 { return s.epoch }

// Release drops the reader's pin. When the last reader of a superseded
// snapshot releases, the snapshot counts as retired.
func (s *Snapshot) Release() {
	if s.readers.Add(-1) == 0 && !s.current.Load() {
		s.retire()
	}
}

func (s *Snapshot) retire() {
	if s.retired.CompareAndSwap(false, true) {
		s.store.retired.Add(1)
	}
}

// SnapshotStore publishes the current graph epoch and serializes writers.
// Acquire/Release are wait-free for readers; Apply and Bump are mutually
// exclusive.
type SnapshotStore struct {
	writeMu sync.Mutex
	cur     atomic.Pointer[Snapshot]
	retired atomic.Uint64
}

// NewSnapshotStore publishes g as epoch 0.
func NewSnapshotStore(g *Graph) *SnapshotStore {
	st := &SnapshotStore{}
	s := &Snapshot{g: g, store: st}
	s.current.Store(true)
	st.cur.Store(s)
	return st
}

// Acquire pins and returns the current snapshot. The snapshot stays valid —
// it is immutable — even if a writer swaps in a new epoch concurrently; the
// caller must Release it exactly once.
func (st *SnapshotStore) Acquire() *Snapshot {
	s := st.cur.Load()
	s.readers.Add(1)
	return s
}

// Current returns the current graph without pinning it. Use Acquire when
// the caller does more than one read against a consistent epoch.
func (st *SnapshotStore) Current() *Graph { return st.cur.Load().g }

// Epoch returns the current epoch number.
func (st *SnapshotStore) Epoch() uint64 { return st.cur.Load().epoch }

// Retired returns how many superseded snapshots have seen their last reader
// finish (or had none when superseded).
func (st *SnapshotStore) Retired() uint64 { return st.retired.Load() }

// publish swaps g in as the next epoch. Caller holds writeMu.
func (st *SnapshotStore) publish(g *Graph) *Snapshot {
	old := st.cur.Load()
	next := &Snapshot{g: g, epoch: old.epoch + 1, store: st}
	next.current.Store(true)
	st.cur.Store(next)
	old.current.Store(false)
	if old.readers.Load() == 0 {
		// No reader will retire it: either none ever acquired it, or every
		// Release ran while it was still current. A racing reader that
		// acquired just before the swap re-runs the check in its Release,
		// and the CAS in retire keeps the count exact.
		old.retire()
	}
	return next
}

// Apply validates and applies d to the current epoch, publishes the result
// as the next epoch and returns the new epoch number plus the changed
// vertices (see ApplyDelta). On a validation error nothing is published. An
// empty delta still advances the epoch (publishing the same graph), so
// callers can rely on Apply to version out epoch-keyed caches.
func (st *SnapshotStore) Apply(d *Delta) (epoch uint64, changed []VertexID, err error) {
	st.writeMu.Lock()
	defer st.writeMu.Unlock()
	old := st.cur.Load()
	ng, changed, err := ApplyDelta(old.g, d)
	if err != nil {
		return old.epoch, nil, err
	}
	return st.publish(ng).epoch, changed, nil
}

// Bump republishes the current graph under a new epoch without mutating it,
// for callers that need epoch-keyed caches invalidated (operator-driven
// BumpEpoch).
func (st *SnapshotStore) Bump() uint64 {
	st.writeMu.Lock()
	defer st.writeMu.Unlock()
	return st.publish(st.cur.Load().g).epoch
}
