package graph

import (
	"fmt"
	"sort"
)

// Degree-ordered internal vertex IDs. RelabelByDegree rewrites the CSR so
// internal id 0 is the highest-degree vertex: hub-heavy workloads touch a
// dense prefix of every per-vertex array (offsets, labels, bit vectors,
// candidate masks), which is where the matching kernels spend their time, so
// the hot working set packs into far fewer cache lines than load-order ids
// allow. The original ("external") ids remain the public vocabulary — the
// loader's line numbers, ingest batches, server JSON, result exports — and
// the permutation tables carried on the Graph translate at every API
// boundary. A graph without tables is its own external space (identity).

// Relabeled reports whether g carries an internal/external id permutation.
func (g *Graph) Relabeled() bool { return g.toExt != nil }

// ExternalID translates an internal vertex id to the external id space; it
// is the identity on non-relabeled graphs.
func (g *Graph) ExternalID(v VertexID) VertexID {
	if g.toExt == nil {
		return v
	}
	return g.toExt[v]
}

// InternalID translates an external vertex id to the internal id space; it
// is the identity on non-relabeled graphs.
func (g *Graph) InternalID(v VertexID) VertexID {
	if g.toInt == nil {
		return v
	}
	return g.toInt[v]
}

// ExternalTable returns a copy of the internal→external id permutation,
// or nil when internal ids are the identity. WAL checkpoints persist this
// table alongside the CSR: the checkpointed graph is already in internal
// order, so re-deriving the permutation from it would yield the identity
// and silently break external-id translation after recovery.
func (g *Graph) ExternalTable() []VertexID {
	if g.toExt == nil {
		return nil
	}
	out := make([]VertexID, len(g.toExt))
	copy(out, g.toExt)
	return out
}

// SetExternalTable installs toExt as g's internal→external permutation
// (nil clears it) and derives the inverse. It validates that toExt is a
// permutation of [0, n) — checkpoint bytes are not trusted.
func (g *Graph) SetExternalTable(toExt []VertexID) error {
	if toExt == nil {
		g.toExt, g.toInt = nil, nil
		return nil
	}
	n := g.NumVertices()
	if len(toExt) != n {
		return fmt.Errorf("graph: external table has %d entries for %d vertices", len(toExt), n)
	}
	toInt := make([]VertexID, n)
	seen := make([]bool, n)
	for i, e := range toExt {
		if int(e) >= n {
			return fmt.Errorf("graph: external table entry %d out of range (n=%d)", e, n)
		}
		if seen[e] {
			return fmt.Errorf("graph: external table maps id %d twice", e)
		}
		seen[e] = true
		toInt[e] = VertexID(i)
	}
	own := make([]VertexID, n)
	copy(own, toExt)
	g.toExt, g.toInt = own, toInt
	return nil
}

// RelabelByDegree returns a graph isomorphic to g whose internal vertex ids
// are ordered by descending degree (ties broken by ascending prior id), with
// translation tables installed so ExternalID/InternalID map between the new
// internal space and g's external space. When g is already degree-ordered
// and carries no tables, g itself is returned. Deltas applied to the result
// must use internal ids (see TranslateDeltaToInternal); the vertex set is
// fixed per process, so the tables stay valid across every epoch derived
// from the result.
func RelabelByDegree(g *Graph) *Graph {
	n := g.NumVertices()
	if n == 0 {
		return g
	}
	order := make([]VertexID, n) // internal id -> previous id
	for i := range order {
		order[i] = VertexID(i)
	}
	sort.Slice(order, func(i, j int) bool {
		di, dj := g.Degree(order[i]), g.Degree(order[j])
		if di != dj {
			return di > dj
		}
		return order[i] < order[j]
	})
	identity := true
	for i, p := range order {
		if p != VertexID(i) {
			identity = false
			break
		}
	}
	if identity && !g.Relabeled() {
		return g
	}

	// Compose with any existing permutation so external ids always refer to
	// the original load-time space.
	toExt := make([]VertexID, n)
	toInt := make([]VertexID, n)
	for i, p := range order {
		toExt[i] = g.ExternalID(p)
		toInt[toExt[i]] = VertexID(i)
	}
	toPrevInt := make([]VertexID, n) // previous id -> new internal id
	for i, p := range order {
		toPrevInt[p] = VertexID(i)
	}

	ng := &Graph{
		offsets: make([]int64, n+1),
		adj:     make([]VertexID, len(g.adj)),
		labels:  make([]Label, n),
		toExt:   toExt,
		toInt:   toInt,
	}
	labeled := g.HasEdgeLabels()
	if labeled {
		ng.edgeLabels = make([]Label, len(g.adj))
	}
	for v := 0; v < n; v++ {
		ng.offsets[v+1] = ng.offsets[v] + int64(g.Degree(order[v]))
		ng.labels[v] = g.labels[order[v]]
	}
	type half struct {
		w VertexID
		l Label
	}
	var hs []half
	for v := 0; v < n; v++ {
		prev := order[v]
		old := g.Neighbors(prev)
		hs = hs[:0]
		for i, w := range old {
			h := half{w: toPrevInt[w]}
			if labeled {
				h.l = g.EdgeLabelAt(prev, i)
			}
			hs = append(hs, h)
		}
		sort.Slice(hs, func(i, j int) bool { return hs[i].w < hs[j].w })
		pos := ng.offsets[v]
		for _, h := range hs {
			ng.adj[pos] = h.w
			if labeled {
				ng.edgeLabels[pos] = h.l
			}
			pos++
		}
	}
	return ng
}

// TranslateDeltaToInternal returns a copy of d with every vertex id
// translated from g's external space to its internal space — the form
// ApplyDelta and SnapshotStore.Apply expect. On a non-relabeled graph d is
// returned unchanged. Out-of-range ids pass through untranslated so delta
// validation still reports them (with the id the caller supplied).
func TranslateDeltaToInternal(g *Graph, d *Delta) *Delta {
	if !g.Relabeled() || d == nil {
		return d
	}
	n := VertexID(g.NumVertices())
	tr := func(v VertexID) VertexID {
		if v >= n {
			return v
		}
		return g.InternalID(v)
	}
	nd := &Delta{InsertLabels: d.InsertLabels}
	nd.Insert = make([]Edge, len(d.Insert))
	for i, e := range d.Insert {
		nd.Insert[i] = Edge{tr(e.U), tr(e.V)}
	}
	nd.Delete = make([]Edge, len(d.Delete))
	for i, e := range d.Delete {
		nd.Delete[i] = Edge{tr(e.U), tr(e.V)}
	}
	nd.Relabels = make([]Relabel, len(d.Relabels))
	for i, r := range d.Relabels {
		nd.Relabels[i] = Relabel{V: tr(r.V), L: r.L}
	}
	return nd
}
