package graph

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"
)

func binaryHeader(magic uint32, n, m uint64) []byte {
	var buf bytes.Buffer
	for _, h := range []uint64{uint64(magic), n, m} {
		binary.Write(&buf, binary.LittleEndian, h)
	}
	return buf.Bytes()
}

// TestReadBinaryHostileHeader checks that a header declaring huge sections is
// rejected before any allocation — the error mentions the limit, and no
// multi-gigabyte make happens (the test would OOM-kill the runner if it did).
func TestReadBinaryHostileHeader(t *testing.T) {
	lim := LoaderLimits{MaxVertices: 100, MaxDirectedEdges: 200}
	cases := []struct {
		name string
		hdr  []byte
	}{
		{"vertices over limit", binaryHeader(binaryMagic, 101, 0)},
		{"edges over limit", binaryHeader(binaryMagic, 10, 201)},
		{"max uint64 vertices", binaryHeader(binaryMagic, ^uint64(0), 0)},
		{"max uint64 edges", binaryHeader(binaryMagicEL, 1, ^uint64(0))},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadBinaryLimits(bytes.NewReader(tc.hdr), lim); err == nil {
				t.Fatal("hostile header accepted")
			} else if !strings.Contains(err.Error(), "limit") {
				t.Fatalf("error does not name the limit: %v", err)
			}
		})
	}
}

// TestReadBinaryMalformedCSR checks the structural validation: declared
// sizes within limits but offsets/adjacency that would crash accessors must
// be rejected at load time.
func TestReadBinaryMalformedCSR(t *testing.T) {
	write := func(offsets []int64, adj []VertexID, labels []Label) []byte {
		var buf bytes.Buffer
		for _, h := range []uint64{uint64(binaryMagic), uint64(len(labels)), uint64(len(adj))} {
			binary.Write(&buf, binary.LittleEndian, h)
		}
		for _, s := range []any{offsets, adj, labels} {
			binary.Write(&buf, binary.LittleEndian, s)
		}
		return buf.Bytes()
	}
	cases := []struct {
		name string
		raw  []byte
	}{
		{"nonzero first offset", write([]int64{1, 2}, []VertexID{0, 0}, []Label{0})},
		{"decreasing offsets", write([]int64{0, 2, 1}, []VertexID{1, 0}, []Label{0, 0})},
		{"offsets overrun adjacency", write([]int64{0, 5}, []VertexID{0, 0}, []Label{0})},
		{"out-of-range neighbor", write([]int64{0, 1}, []VertexID{7}, []Label{0})},
		{"truncated sections", binaryHeader(binaryMagic, 4, 4)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadBinary(bytes.NewReader(tc.raw)); err == nil {
				t.Fatal("malformed file accepted")
			}
		})
	}
}

// TestReadEdgeListVertexLimit checks the text loader's vertex cap is
// configurable and that the header line cannot force allocations past it.
func TestReadEdgeListVertexLimit(t *testing.T) {
	lim := LoaderLimits{MaxVertices: 10}
	if _, err := ReadEdgeListLimits(strings.NewReader("# vertices 11\n"), lim); err == nil {
		t.Fatal("oversized header accepted")
	}
	if _, err := ReadEdgeListLimits(strings.NewReader("0 10\n"), lim); err == nil {
		t.Fatal("oversized edge endpoint accepted")
	}
	g, err := ReadEdgeListLimits(strings.NewReader("# vertices 10\n0 9\n"), lim)
	if err != nil {
		t.Fatalf("in-limit graph rejected: %v", err)
	}
	if g.NumVertices() != 10 {
		t.Fatalf("NumVertices = %d, want 10", g.NumVertices())
	}
}
