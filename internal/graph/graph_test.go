package graph

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func triangleWithTail(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder(4)
	b.SetLabel(0, 1)
	b.SetLabel(1, 2)
	b.SetLabel(2, 3)
	b.SetLabel(3, 2)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 0)
	b.AddEdge(2, 3)
	return b.Build()
}

func TestBuilderBasics(t *testing.T) {
	g := triangleWithTail(t)
	if g.NumVertices() != 4 {
		t.Fatalf("NumVertices = %d", g.NumVertices())
	}
	if g.NumEdges() != 4 {
		t.Fatalf("NumEdges = %d", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Degree(2) != 3 {
		t.Fatalf("Degree(2) = %d", g.Degree(2))
	}
	if !g.HasEdge(0, 2) || !g.HasEdge(2, 0) {
		t.Fatal("edge (0,2) missing")
	}
	if g.HasEdge(0, 3) {
		t.Fatal("phantom edge (0,3)")
	}
	if g.Label(3) != 2 {
		t.Fatalf("Label(3) = %d", g.Label(3))
	}
}

func TestBuilderDedupAndSelfLoops(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0) // duplicate in reverse
	b.AddEdge(0, 1) // exact duplicate
	b.AddEdge(2, 2) // self loop, dropped
	g := b.Build()
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestEdgesEnumeration(t *testing.T) {
	g := triangleWithTail(t)
	edges := g.Edges()
	if len(edges) != 4 {
		t.Fatalf("Edges returned %d, want 4", len(edges))
	}
	for _, e := range edges {
		if e.U >= e.V {
			t.Errorf("edge %v not canonical", e)
		}
		if !g.HasEdge(e.U, e.V) {
			t.Errorf("edge %v not in graph", e)
		}
	}
}

func TestLabelFrequencies(t *testing.T) {
	g := triangleWithTail(t)
	freq := g.LabelFrequencies()
	if freq[1] != 1 || freq[2] != 2 || freq[3] != 1 {
		t.Fatalf("frequencies = %v", freq)
	}
}

func TestComputeStats(t *testing.T) {
	g := triangleWithTail(t)
	s := ComputeStats(g)
	if s.NumVertices != 4 || s.NumEdges != 4 || s.MaxDegree != 3 || s.NumLabels != 3 {
		t.Fatalf("stats = %+v", s)
	}
	if s.AvgDegree != 2.0 {
		t.Fatalf("AvgDegree = %v", s.AvgDegree)
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := triangleWithTail(t)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertSameGraph(t, g, g2)
}

func TestBinaryRoundTrip(t *testing.T) {
	g := triangleWithTail(t)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertSameGraph(t, g, g2)
}

func TestReadBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader(make([]byte, 64))); err == nil {
		t.Fatal("expected error for bad magic")
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := triangleWithTail(t)
	sub, orig := InducedSubgraph(g, func(v VertexID) bool { return v != 3 })
	if sub.NumVertices() != 3 || sub.NumEdges() != 3 {
		t.Fatalf("induced triangle: n=%d m=%d", sub.NumVertices(), sub.NumEdges())
	}
	if len(orig) != 3 {
		t.Fatalf("orig mapping = %v", orig)
	}
	for nv, ov := range orig {
		if sub.Label(VertexID(nv)) != g.Label(ov) {
			t.Errorf("label mismatch at %d", nv)
		}
	}
}

func TestRandomGraphInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		b := NewBuilder(n)
		for v := 0; v < n; v++ {
			b.SetLabel(VertexID(v), Label(rng.Intn(4)))
		}
		m := rng.Intn(3 * n)
		for i := 0; i < m; i++ {
			b.AddEdge(VertexID(rng.Intn(n)), VertexID(rng.Intn(n)))
		}
		g := b.Build()
		if err := g.Validate(); err != nil {
			t.Logf("validate: %v", err)
			return false
		}
		// Round trip through both formats.
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			return false
		}
		g2, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		return sameGraph(g, g2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func sameGraph(a, b *Graph) bool {
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		return false
	}
	for v := 0; v < a.NumVertices(); v++ {
		if a.Label(VertexID(v)) != b.Label(VertexID(v)) {
			return false
		}
		na, nb := a.Neighbors(VertexID(v)), b.Neighbors(VertexID(v))
		if len(na) != len(nb) {
			return false
		}
		for i := range na {
			if na[i] != nb[i] {
				return false
			}
		}
	}
	return true
}

func assertSameGraph(t *testing.T, a, b *Graph) {
	t.Helper()
	if !sameGraph(a, b) {
		t.Fatalf("graphs differ:\n a: %v\n b: %v", ComputeStats(a), ComputeStats(b))
	}
}

func TestEdgeLabels(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdgeLabeled(0, 1, 7)
	b.AddEdgeLabeled(2, 1, 8)
	b.AddEdge(2, 3) // unlabeled edge in a labeled graph: default 0
	g := b.Build()
	if !g.HasEdgeLabels() {
		t.Fatal("HasEdgeLabels false")
	}
	if l, ok := g.EdgeLabelBetween(0, 1); !ok || l != 7 {
		t.Errorf("EdgeLabelBetween(0,1) = %d,%v", l, ok)
	}
	if l, ok := g.EdgeLabelBetween(1, 0); !ok || l != 7 {
		t.Errorf("reverse direction = %d,%v", l, ok)
	}
	if l, ok := g.EdgeLabelBetween(1, 2); !ok || l != 8 {
		t.Errorf("EdgeLabelBetween(1,2) = %d,%v", l, ok)
	}
	if l, ok := g.EdgeLabelBetween(2, 3); !ok || l != EdgeLabelDefault {
		t.Errorf("unlabeled edge = %d,%v", l, ok)
	}
	if _, ok := g.EdgeLabelBetween(0, 3); ok {
		t.Error("absent edge reported")
	}
	freq := g.EdgeLabelFrequencies()
	if freq[7] != 1 || freq[8] != 1 || freq[0] != 1 {
		t.Errorf("frequencies = %v", freq)
	}
	// Duplicate labeled adds: largest label wins deterministically.
	b2 := NewBuilder(2)
	b2.AddEdgeLabeled(0, 1, 3)
	b2.AddEdgeLabeled(1, 0, 9)
	g2 := b2.Build()
	if l, _ := g2.EdgeLabelBetween(0, 1); l != 9 {
		t.Errorf("duplicate resolution = %d, want 9", l)
	}
	// Unlabeled graphs stay zero-overhead.
	if NewBuilder(2).Build().HasEdgeLabels() {
		t.Error("unlabeled graph reports edge labels")
	}
}

func TestEdgeLabelIORoundTrips(t *testing.T) {
	b := NewBuilder(4)
	b.SetLabel(1, 5)
	b.AddEdgeLabeled(0, 1, 7)
	b.AddEdgeLabeled(1, 2, 8)
	b.AddEdgeLabeled(2, 3, 0)
	g := b.Build()

	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertSameGraph(t, g, g2)
	if l, _ := g2.EdgeLabelBetween(0, 1); l != 7 {
		t.Errorf("text round trip lost edge label: %d", l)
	}

	buf.Reset()
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	g3, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertSameGraph(t, g, g3)
	if l, _ := g3.EdgeLabelBetween(1, 2); l != 8 {
		t.Errorf("binary round trip lost edge label: %d", l)
	}
	// Backward compatibility: unlabeled graphs still read.
	buf.Reset()
	plain := triangleWithTail(t)
	if err := WriteBinary(&buf, plain); err != nil {
		t.Fatal(err)
	}
	g4, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g4.HasEdgeLabels() {
		t.Error("plain graph gained edge labels")
	}
}

func TestConnectedComponents(t *testing.T) {
	b := NewBuilder(7)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(3, 4)
	// 5, 6 isolated
	g := b.Build()
	comp, count := ConnectedComponents(g)
	if count != 4 {
		t.Fatalf("components = %d, want 4", count)
	}
	if comp[0] != comp[1] || comp[1] != comp[2] {
		t.Error("first component split")
	}
	if comp[3] != comp[4] || comp[3] == comp[0] {
		t.Error("second component wrong")
	}
	if comp[5] == comp[6] {
		t.Error("isolated vertices merged")
	}
	lc, orig := LargestComponent(g)
	if lc.NumVertices() != 3 || len(orig) != 3 {
		t.Errorf("largest component size = %d", lc.NumVertices())
	}
	if err := lc.Validate(); err != nil {
		t.Fatal(err)
	}
	// Empty graph.
	if _, count := ConnectedComponents(NewBuilder(0).Build()); count != 0 {
		t.Error("empty graph components != 0")
	}
}
