package graph

// View is a physically compacted copy of the active portion of a graph: a
// CSR over the kept vertices and kept directed edge slots, plus the remap
// tables connecting the two id spaces. It makes the paper's search-space
// reduction (Obs. 1) physical — kernels scanning a view touch only memory
// proportional to the active subgraph instead of skipping over the dead
// regions of the original CSR.
//
// Vertices are renumbered in increasing original-id order, so the remap is
// monotone: relative neighbor order, vertex scan order and u<v edge
// orientations are all preserved, which is what lets a search on the view
// replay the exact trajectory of the same search on the original graph.
type View struct {
	g    *Graph
	orig *Graph
	// origVerts maps a view vertex id to its original id (increasing).
	origVerts []VertexID
	// origSlots maps a view directed slot to its original slot.
	origSlots []int64
	// newVerts maps an original vertex id to its view id, -1 when dropped.
	newVerts []int32
}

// NewView extracts the compacted view of orig containing exactly the
// vertices accepted by keepVert and the directed slots accepted by keepSlot
// whose both endpoints are kept. keepSlot must be symmetric (the slot (u,v)
// is kept iff (v,u) is), as State's slot invariant guarantees; an
// asymmetric predicate yields a view graph that fails Validate.
func NewView(orig *Graph, keepVert func(VertexID) bool, keepSlot func(slot int64) bool) *View {
	n := orig.NumVertices()
	vw := &View{orig: orig, newVerts: make([]int32, n)}
	for v := 0; v < n; v++ {
		if keepVert(VertexID(v)) {
			vw.newVerts[v] = int32(len(vw.origVerts))
			vw.origVerts = append(vw.origVerts, VertexID(v))
		} else {
			vw.newVerts[v] = -1
		}
	}
	nn := len(vw.origVerts)

	// First pass: count surviving slots per kept vertex to lay out offsets.
	offsets := make([]int64, nn+1)
	for nv, ov := range vw.origVerts {
		base := orig.offsets[ov]
		kept := int64(0)
		for i, w := range orig.Neighbors(ov) {
			if vw.newVerts[w] >= 0 && keepSlot(base+int64(i)) {
				kept++
			}
		}
		offsets[nv+1] = offsets[nv] + kept
	}

	// Second pass: fill adjacency, slot remap, and labels. The kept
	// neighbors of each vertex are emitted in original adjacency order and
	// the vertex remap is monotone, so the view adjacency stays sorted.
	total := offsets[nn]
	adj := make([]VertexID, total)
	vw.origSlots = make([]int64, total)
	labels := make([]Label, nn)
	var edgeLabels []Label
	if orig.edgeLabels != nil {
		edgeLabels = make([]Label, total)
	}
	for nv, ov := range vw.origVerts {
		labels[nv] = orig.labels[ov]
		base := orig.offsets[ov]
		cur := offsets[nv]
		for i, w := range orig.Neighbors(ov) {
			slot := base + int64(i)
			if vw.newVerts[w] < 0 || !keepSlot(slot) {
				continue
			}
			adj[cur] = VertexID(vw.newVerts[w])
			vw.origSlots[cur] = slot
			if edgeLabels != nil {
				edgeLabels[cur] = orig.edgeLabels[slot]
			}
			cur++
		}
	}
	vw.g = &Graph{offsets: offsets, adj: adj, labels: labels, edgeLabels: edgeLabels}
	return vw
}

// Graph returns the compacted graph.
func (vw *View) Graph() *Graph { return vw.g }

// Orig returns the original graph the view was extracted from.
func (vw *View) Orig() *Graph { return vw.orig }

// NumVertices returns the number of kept vertices.
func (vw *View) NumVertices() int { return len(vw.origVerts) }

// OrigVertex maps a view vertex id back to its original id.
func (vw *View) OrigVertex(nv VertexID) VertexID { return vw.origVerts[nv] }

// NewVertex maps an original vertex id to its view id; ok is false when the
// vertex was dropped.
func (vw *View) NewVertex(ov VertexID) (VertexID, bool) {
	nv := vw.newVerts[ov]
	if nv < 0 {
		return 0, false
	}
	return VertexID(nv), true
}

// OrigSlot maps a view directed slot index back to its original slot index.
func (vw *View) OrigSlot(ns int) int64 { return vw.origSlots[ns] }

// OrigVertices returns the view-to-original vertex map, indexed by view id
// and increasing. The caller must not modify it.
func (vw *View) OrigVertices() []VertexID { return vw.origVerts }
