package graph

import (
	"fmt"
	"sort"
)

// Live-graph ingest: a Delta is a batch of edge insertions, edge deletions
// and vertex relabelings applied to an immutable CSR snapshot. ApplyDelta
// never mutates the input graph — it builds the next-epoch CSR from scratch
// for the touched vertices and shares nothing mutable with the old one — so
// in-flight readers of the previous snapshot are unaffected (see
// snapshot.go for the epoch-swap machinery).
//
// The vertex set is fixed: deltas change edges and labels, never add or
// remove vertices. That keeps every per-vertex auxiliary structure sized by
// NumVertices (match vectors, NLCC caches, bitsets) valid across epochs.

// Relabel assigns a new label to an existing vertex.
type Relabel struct {
	V VertexID
	L Label
}

// Delta is a batch of mutations. Validation is strict: ApplyDelta rejects
// (with an error, never a panic or a partial application) out-of-range
// endpoints, self loops, inserting a present edge, deleting an absent edge,
// duplicate operations within the batch, an edge both inserted and deleted,
// conflicting relabels of one vertex, a mis-sized InsertLabels slice, and
// edge labels supplied for an edge-unlabeled graph.
type Delta struct {
	// Insert lists undirected edges to add (either endpoint order).
	Insert []Edge
	// InsertLabels, when non-empty, must have one edge label per Insert
	// entry. It may only carry non-default labels when the target graph has
	// edge labels; on an edge-labeled graph a nil InsertLabels means every
	// inserted edge gets EdgeLabelDefault.
	InsertLabels []Label
	// Delete lists undirected edges to remove (either endpoint order).
	Delete []Edge
	// Relabels lists vertex label changes.
	Relabels []Relabel
}

// Empty reports whether the delta carries no operations.
func (d *Delta) Empty() bool {
	return len(d.Insert) == 0 && len(d.Delete) == 0 && len(d.Relabels) == 0
}

// DeltaBuilder accumulates mutations into a Delta.
type DeltaBuilder struct {
	d       Delta
	labeled bool // an InsertEdgeLabeled call was seen
}

// NewDeltaBuilder returns an empty builder.
func NewDeltaBuilder() *DeltaBuilder { return &DeltaBuilder{} }

// InsertEdge records an edge insertion with the default edge label.
func (b *DeltaBuilder) InsertEdge(u, v VertexID) {
	b.d.Insert = append(b.d.Insert, Edge{u, v})
	if b.labeled {
		b.d.InsertLabels = append(b.d.InsertLabels, EdgeLabelDefault)
	}
}

// InsertEdgeLabeled records an edge insertion carrying an edge label.
func (b *DeltaBuilder) InsertEdgeLabeled(u, v VertexID, l Label) {
	if !b.labeled {
		// Backfill default labels for inserts recorded before the first
		// labeled one, so InsertLabels stays aligned with Insert.
		b.labeled = true
		b.d.InsertLabels = make([]Label, len(b.d.Insert))
	}
	b.d.Insert = append(b.d.Insert, Edge{u, v})
	b.d.InsertLabels = append(b.d.InsertLabels, l)
}

// DeleteEdge records an edge deletion.
func (b *DeltaBuilder) DeleteEdge(u, v VertexID) {
	b.d.Delete = append(b.d.Delete, Edge{u, v})
}

// RelabelVertex records a vertex label change.
func (b *DeltaBuilder) RelabelVertex(v VertexID, l Label) {
	b.d.Relabels = append(b.d.Relabels, Relabel{V: v, L: l})
}

// Delta returns the accumulated batch. The builder may keep being used; the
// returned Delta aliases its internal slices until the next mutation.
func (b *DeltaBuilder) Delta() *Delta { return &b.d }

// Apply is shorthand for ApplyDelta(g, b.Delta()).
func (b *DeltaBuilder) Apply(g *Graph) (*Graph, []VertexID, error) {
	return ApplyDelta(g, b.Delta())
}

func normEdge(e Edge) Edge {
	if e.U > e.V {
		e.U, e.V = e.V, e.U
	}
	return e
}

// validateDelta checks d against g and returns the canonicalized insert and
// delete maps. It performs no mutation.
func validateDelta(g *Graph, d *Delta) (ins map[Edge]Label, del map[Edge]bool, err error) {
	n := g.NumVertices()
	checkEdge := func(what string, e Edge) error {
		if int(e.U) >= n || int(e.V) >= n {
			return fmt.Errorf("graph: delta %s (%d,%d): endpoint out of range (n=%d)", what, e.U, e.V, n)
		}
		if e.U == e.V {
			return fmt.Errorf("graph: delta %s (%d,%d): self loop", what, e.U, e.V)
		}
		return nil
	}
	if len(d.InsertLabels) != 0 && len(d.InsertLabels) != len(d.Insert) {
		return nil, nil, fmt.Errorf("graph: delta has %d insert labels for %d inserts",
			len(d.InsertLabels), len(d.Insert))
	}
	ins = make(map[Edge]Label, len(d.Insert))
	for i, e := range d.Insert {
		if err := checkEdge("insert", e); err != nil {
			return nil, nil, err
		}
		ce := normEdge(e)
		if _, dup := ins[ce]; dup {
			return nil, nil, fmt.Errorf("graph: delta inserts edge (%d,%d) twice", ce.U, ce.V)
		}
		if g.HasEdge(ce.U, ce.V) {
			return nil, nil, fmt.Errorf("graph: delta inserts edge (%d,%d) already present", ce.U, ce.V)
		}
		l := EdgeLabelDefault
		if len(d.InsertLabels) > 0 {
			l = d.InsertLabels[i]
		}
		if l != EdgeLabelDefault && !g.HasEdgeLabels() {
			return nil, nil, fmt.Errorf("graph: delta inserts labeled edge (%d,%d) into an edge-unlabeled graph", ce.U, ce.V)
		}
		ins[ce] = l
	}
	del = make(map[Edge]bool, len(d.Delete))
	for _, e := range d.Delete {
		if err := checkEdge("delete", e); err != nil {
			return nil, nil, err
		}
		ce := normEdge(e)
		if del[ce] {
			return nil, nil, fmt.Errorf("graph: delta deletes edge (%d,%d) twice", ce.U, ce.V)
		}
		if _, both := ins[ce]; both {
			return nil, nil, fmt.Errorf("graph: delta both inserts and deletes edge (%d,%d)", ce.U, ce.V)
		}
		if !g.HasEdge(ce.U, ce.V) {
			return nil, nil, fmt.Errorf("graph: delta deletes edge (%d,%d) not present", ce.U, ce.V)
		}
		del[ce] = true
	}
	seen := make(map[VertexID]bool, len(d.Relabels))
	for _, r := range d.Relabels {
		if int(r.V) >= n {
			return nil, nil, fmt.Errorf("graph: delta relabels vertex %d out of range (n=%d)", r.V, n)
		}
		if seen[r.V] {
			return nil, nil, fmt.Errorf("graph: delta relabels vertex %d twice", r.V)
		}
		seen[r.V] = true
	}
	return ins, del, nil
}

// ApplyDelta validates d against g and, if valid, returns the next-epoch
// graph plus the sorted, deduplicated list of changed vertices (endpoints of
// inserted or deleted edges and relabeled vertices — the seed set for
// incremental re-matching). g is never modified; on error the returned
// graph is nil and g is untouched. An empty delta returns g itself.
func ApplyDelta(g *Graph, d *Delta) (*Graph, []VertexID, error) {
	ins, del, err := validateDelta(g, d)
	if err != nil {
		return nil, nil, err
	}
	if len(ins) == 0 && len(del) == 0 && len(d.Relabels) == 0 {
		return g, nil, nil
	}
	n := g.NumVertices()

	// Per-vertex insertion lists (both directions), sorted by neighbor.
	type half struct {
		w VertexID
		l Label
	}
	insAdj := make(map[VertexID][]half, 2*len(ins))
	for e, l := range ins {
		insAdj[e.U] = append(insAdj[e.U], half{e.V, l})
		insAdj[e.V] = append(insAdj[e.V], half{e.U, l})
	}
	for v := range insAdj {
		hs := insAdj[v]
		sort.Slice(hs, func(i, j int) bool { return hs[i].w < hs[j].w })
	}
	delCount := make(map[VertexID]int, 2*len(del))
	for e := range del {
		delCount[e.U]++
		delCount[e.V]++
	}

	ng := &Graph{
		offsets: make([]int64, n+1),
		labels:  append([]Label(nil), g.labels...),
		// The vertex set is fixed, so the id permutation survives deltas
		// unchanged; epochs share the tables with the base graph.
		toExt: g.toExt,
		toInt: g.toInt,
	}
	for _, r := range d.Relabels {
		ng.labels[r.V] = r.L
	}
	for v := 0; v < n; v++ {
		deg := int64(g.Degree(VertexID(v)) + len(insAdj[VertexID(v)]) - delCount[VertexID(v)])
		ng.offsets[v+1] = ng.offsets[v] + deg
	}
	ng.adj = make([]VertexID, ng.offsets[n])
	labeled := g.HasEdgeLabels()
	if labeled {
		ng.edgeLabels = make([]Label, ng.offsets[n])
	}
	// Merge each vertex's retained old neighbors with its sorted insertions;
	// both inputs are sorted, so the output list is sorted too.
	for v := 0; v < n; v++ {
		vid := VertexID(v)
		old := g.Neighbors(vid)
		add := insAdj[vid]
		pos := ng.offsets[v]
		oi := 0
		emit := func(w VertexID, l Label) {
			ng.adj[pos] = w
			if labeled {
				ng.edgeLabels[pos] = l
			}
			pos++
		}
		for _, h := range add {
			for oi < len(old) && old[oi] < h.w {
				if !del[normEdge(Edge{vid, old[oi]})] {
					emit(old[oi], g.EdgeLabelAt(vid, oi))
				}
				oi++
			}
			emit(h.w, h.l)
		}
		for ; oi < len(old); oi++ {
			if !del[normEdge(Edge{vid, old[oi]})] {
				emit(old[oi], g.EdgeLabelAt(vid, oi))
			}
		}
	}

	changedSet := make(map[VertexID]bool, len(delCount)+len(insAdj)+len(d.Relabels))
	for v := range insAdj {
		changedSet[v] = true
	}
	for v := range delCount {
		changedSet[v] = true
	}
	for _, r := range d.Relabels {
		changedSet[r.V] = true
	}
	changed := make([]VertexID, 0, len(changedSet))
	for v := range changedSet {
		changed = append(changed, v)
	}
	sort.Slice(changed, func(i, j int) bool { return changed[i] < changed[j] })
	return ng, changed, nil
}
