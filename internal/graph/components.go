package graph

// ConnectedComponents labels each vertex with a component id (0-based,
// ordered by smallest member vertex) and returns the labels plus the
// component count. Useful for scoping exploratory searches and for
// sanity-checking generated datasets.
func ConnectedComponents(g *Graph) (comp []int, count int) {
	n := g.NumVertices()
	comp = make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	var stack []VertexID
	for v := 0; v < n; v++ {
		if comp[v] != -1 {
			continue
		}
		comp[v] = count
		stack = append(stack[:0], VertexID(v))
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, w := range g.Neighbors(u) {
				if comp[w] == -1 {
					comp[w] = count
					stack = append(stack, w)
				}
			}
		}
		count++
	}
	return comp, count
}

// LargestComponent returns the subgraph induced by the largest connected
// component together with the mapping back to original vertex ids.
func LargestComponent(g *Graph) (*Graph, []VertexID) {
	comp, count := ConnectedComponents(g)
	if count == 0 {
		return g, nil
	}
	sizes := make([]int, count)
	for _, c := range comp {
		sizes[c]++
	}
	best := 0
	for c, s := range sizes {
		if s > sizes[best] {
			best = c
		}
	}
	return InducedSubgraph(g, func(v VertexID) bool { return comp[v] == best })
}
