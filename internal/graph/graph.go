// Package graph provides the vertex-labeled, undirected background graph used
// by the approximate pattern-matching pipeline, stored in compressed sparse
// row (CSR) form, together with builders, statistics and serialization.
//
// The conventions follow §2 of the paper: graphs are simple (no self loops,
// no parallel edges), undirected ((i,j) present implies (j,i) present) and
// vertex labeled with small integer labels.
package graph

import (
	"fmt"
	"math"
	"sort"
)

// VertexID identifies a vertex of the background graph.
type VertexID = uint32

// Label is a discrete vertex label drawn from a small alphabet.
type Label = uint32

// Edge is an undirected edge between two vertices.
type Edge struct {
	U, V VertexID
}

// Graph is a vertex-labeled undirected graph in CSR form. Both directions of
// every undirected edge are stored, so the adjacency of a vertex enumerates
// all its neighbors directly. The zero value is an empty graph.
type Graph struct {
	offsets []int64
	adj     []VertexID
	labels  []Label
	// edgeLabels, when non-nil, holds a label per directed adjacency slot
	// (see edgelabels.go).
	edgeLabels []Label
	// toExt/toInt, when non-nil, map the internal (storage) vertex id space
	// to the external (loader/API) id space and back (see relabel.go). Both
	// are nil on graphs built directly from input, where the spaces coincide.
	toExt []VertexID
	toInt []VertexID
}

// NumVertices returns the number of vertices n.
func (g *Graph) NumVertices() int {
	if len(g.offsets) == 0 {
		return 0
	}
	return len(g.offsets) - 1
}

// NumEdges returns the number of undirected edges m (each counted once).
func (g *Graph) NumEdges() int { return len(g.adj) / 2 }

// NumDirectedEdges returns 2m, the number of stored adjacency entries.
func (g *Graph) NumDirectedEdges() int { return len(g.adj) }

// Label returns the label of vertex v.
func (g *Graph) Label(v VertexID) Label { return g.labels[v] }

// Labels returns the full label slice, indexed by vertex. The caller must
// not modify it.
func (g *Graph) Labels() []Label { return g.labels }

// Degree returns the degree of vertex v.
func (g *Graph) Degree(v VertexID) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

// Neighbors returns the sorted neighbor list of v. The caller must not
// modify it.
func (g *Graph) Neighbors(v VertexID) []VertexID {
	return g.adj[g.offsets[v]:g.offsets[v+1]]
}

// AdjOffset returns the index into the global adjacency array at which the
// neighbor list of v begins. Together with Neighbors it lets callers address
// per-directed-edge state arrays.
func (g *Graph) AdjOffset(v VertexID) int64 { return g.offsets[v] }

// HasEdge reports whether the undirected edge (u,v) is present, by binary
// search over u's (sorted) neighbor list.
func (g *Graph) HasEdge(u, v VertexID) bool {
	ns := g.Neighbors(u)
	i := sort.Search(len(ns), func(i int) bool { return ns[i] >= v })
	return i < len(ns) && ns[i] == v
}

// EdgeIndex returns the position of neighbor v within u's adjacency list, or
// -1 when the edge is absent.
func (g *Graph) EdgeIndex(u, v VertexID) int {
	ns := g.Neighbors(u)
	i := sort.Search(len(ns), func(i int) bool { return ns[i] >= v })
	if i < len(ns) && ns[i] == v {
		return i
	}
	return -1
}

// MaxLabel returns the largest label value present, or 0 for an empty graph.
func (g *Graph) MaxLabel() Label {
	var max Label
	for _, l := range g.labels {
		if l > max {
			max = l
		}
	}
	return max
}

// LabelFrequencies returns a map from label to the number of vertices
// carrying it.
func (g *Graph) LabelFrequencies() map[Label]int64 {
	freq := make(map[Label]int64)
	for _, l := range g.labels {
		freq[l]++
	}
	return freq
}

// Edges returns every undirected edge once, with U < V.
func (g *Graph) Edges() []Edge {
	edges := make([]Edge, 0, g.NumEdges())
	for u := 0; u < g.NumVertices(); u++ {
		for _, v := range g.Neighbors(VertexID(u)) {
			if VertexID(u) < v {
				edges = append(edges, Edge{VertexID(u), v})
			}
		}
	}
	return edges
}

// TopologyBytes returns the approximate memory footprint of the CSR topology
// (offsets, adjacency, vertex labels and, when present, the per-slot edge
// labels), mirroring the paper's Fig. 11(a) accounting.
func (g *Graph) TopologyBytes() int64 {
	return int64(len(g.offsets))*8 + int64(len(g.adj))*4 +
		int64(len(g.labels))*4 + int64(len(g.edgeLabels))*4
}

// Validate checks structural invariants: sorted neighbor lists, no self
// loops, no duplicate edges, and symmetric adjacency. It is intended for
// tests and for validating externally loaded data.
func (g *Graph) Validate() error {
	n := g.NumVertices()
	if len(g.labels) != n {
		return fmt.Errorf("graph: %d labels for %d vertices", len(g.labels), n)
	}
	for u := 0; u < n; u++ {
		ns := g.Neighbors(VertexID(u))
		for i, v := range ns {
			if int(v) >= n {
				return fmt.Errorf("graph: vertex %d has out-of-range neighbor %d", u, v)
			}
			if v == VertexID(u) {
				return fmt.Errorf("graph: self loop at vertex %d", u)
			}
			if i > 0 && ns[i-1] >= v {
				return fmt.Errorf("graph: adjacency of %d not strictly sorted at %d", u, i)
			}
			if !g.HasEdge(v, VertexID(u)) {
				return fmt.Errorf("graph: edge (%d,%d) missing reverse direction", u, v)
			}
		}
	}
	return nil
}

// Stats summarizes a graph for reporting (the dataset table in §5: d_max,
// d_avg, d_stdev and label count).
type Stats struct {
	NumVertices int
	NumEdges    int // undirected
	MaxDegree   int
	AvgDegree   float64
	StdevDegree float64
	NumLabels   int
}

// ComputeStats returns summary statistics for g.
func ComputeStats(g *Graph) Stats {
	s := Stats{NumVertices: g.NumVertices(), NumEdges: g.NumEdges()}
	labels := make(map[Label]struct{})
	var sumSq float64
	for v := 0; v < s.NumVertices; v++ {
		d := g.Degree(VertexID(v))
		if d > s.MaxDegree {
			s.MaxDegree = d
		}
		sumSq += float64(d) * float64(d)
		labels[g.Label(VertexID(v))] = struct{}{}
	}
	if s.NumVertices > 0 {
		s.AvgDegree = float64(2*s.NumEdges) / float64(s.NumVertices)
		variance := sumSq/float64(s.NumVertices) - s.AvgDegree*s.AvgDegree
		if variance > 0 {
			s.StdevDegree = math.Sqrt(variance)
		}
	}
	s.NumLabels = len(labels)
	return s
}

// DegreeHistogram returns counts of vertices per ⌈log2(d+1)⌉ degree bucket,
// a compact view of the (typically heavy-tailed) degree distribution.
func DegreeHistogram(g *Graph) map[int]int {
	hist := make(map[int]int)
	for v := 0; v < g.NumVertices(); v++ {
		bucket := 0
		if d := g.Degree(VertexID(v)); d > 0 {
			bucket = int(math.Ceil(math.Log2(float64(d) + 1)))
		}
		hist[bucket]++
	}
	return hist
}

// String implements fmt.Stringer for Stats.
func (s Stats) String() string {
	return fmt.Sprintf("n=%d m=%d dmax=%d davg=%.1f dstdev=%.1f labels=%d",
		s.NumVertices, s.NumEdges, s.MaxDegree, s.AvgDegree, s.StdevDegree, s.NumLabels)
}
