package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteEdgeList writes g in a simple text format: a header line
// "# vertices <n>", one "v <id> <label>" line per vertex with a nonzero
// label, and one "<u> <v>" (or "<u> <v> <edgelabel>" for edge-labeled
// graphs) line per undirected edge.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# vertices %d\n", g.NumVertices()); err != nil {
		return err
	}
	for v := 0; v < g.NumVertices(); v++ {
		if l := g.Label(VertexID(v)); l != 0 {
			if _, err := fmt.Fprintf(bw, "v %d %d\n", v, l); err != nil {
				return err
			}
		}
	}
	labeled := g.HasEdgeLabels()
	for _, e := range g.Edges() {
		if labeled {
			l, _ := g.EdgeLabelBetween(e.U, e.V)
			if _, err := fmt.Fprintf(bw, "%d %d %d\n", e.U, e.V, l); err != nil {
				return err
			}
			continue
		}
		if _, err := fmt.Fprintf(bw, "%d %d\n", e.U, e.V); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoaderLimits bounds what the loaders will allocate before any payload is
// trusted, so a corrupt or hostile file yields an error instead of an OOM
// kill. The zero value of either field picks the package default.
type LoaderLimits struct {
	// MaxVertices caps the vertex count (default 1<<28).
	MaxVertices int64
	// MaxDirectedEdges caps the directed adjacency slots — twice the
	// undirected edge count (default 1<<31). Only the binary loader sizes
	// allocations from a declared edge count; the text loader grows
	// proportionally to its input and is bounded by MaxVertices alone.
	MaxDirectedEdges int64
}

// DefaultLoaderLimits returns the limits ReadEdgeList and ReadBinary apply.
func DefaultLoaderLimits() LoaderLimits {
	return LoaderLimits{MaxVertices: 1 << 28, MaxDirectedEdges: 1 << 31}
}

func (l LoaderLimits) withDefaults() LoaderLimits {
	d := DefaultLoaderLimits()
	if l.MaxVertices <= 0 {
		l.MaxVertices = d.MaxVertices
	}
	if l.MaxDirectedEdges <= 0 {
		l.MaxDirectedEdges = d.MaxDirectedEdges
	}
	return l
}

// ReadEdgeList parses the format produced by WriteEdgeList. Lines starting
// with '#' other than the vertex header are ignored, as are blank lines.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	return ReadEdgeListLimits(r, DefaultLoaderLimits())
}

// ReadEdgeListLimits is ReadEdgeList with explicit loader limits.
func ReadEdgeListLimits(r io.Reader, lim LoaderLimits) (*Graph, error) {
	lim = lim.withDefaults()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	b := NewBuilder(0)
	maxParsedVertices := uint64(lim.MaxVertices)
	ensure := func(v uint64) error {
		if v >= maxParsedVertices {
			return fmt.Errorf("graph: vertex id %d exceeds the text-format limit %d", v, maxParsedVertices)
		}
		for uint64(b.NumVertices()) <= v {
			b.AddVertex(0)
		}
		return nil
	}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			var n int64
			if _, err := fmt.Sscanf(line, "# vertices %d", &n); err == nil && n > 0 {
				if err := ensure(uint64(n) - 1); err != nil {
					return nil, err
				}
			}
			continue
		}
		fields := strings.Fields(line)
		switch {
		case fields[0] == "v" && len(fields) == 3:
			id, err1 := strconv.ParseUint(fields[1], 10, 32)
			l, err2 := strconv.ParseUint(fields[2], 10, 32)
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("graph: line %d: bad vertex line %q", lineNo, line)
			}
			if err := ensure(id); err != nil {
				return nil, err
			}
			b.SetLabel(VertexID(id), Label(l))
		case len(fields) == 2 || len(fields) == 3:
			u, err1 := strconv.ParseUint(fields[0], 10, 32)
			v, err2 := strconv.ParseUint(fields[1], 10, 32)
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("graph: line %d: bad edge line %q", lineNo, line)
			}
			if err := ensure(u); err != nil {
				return nil, err
			}
			if err := ensure(v); err != nil {
				return nil, err
			}
			if len(fields) == 3 {
				el, err := strconv.ParseUint(fields[2], 10, 32)
				if err != nil {
					return nil, fmt.Errorf("graph: line %d: bad edge label %q", lineNo, line)
				}
				b.AddEdgeLabeled(VertexID(u), VertexID(v), Label(el))
			} else {
				b.AddEdge(VertexID(u), VertexID(v))
			}
		default:
			return nil, fmt.Errorf("graph: line %d: unrecognized line %q", lineNo, line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return b.Build(), nil
}

const (
	binaryMagic   = uint32(0x47435352) // "GCSR": vertex labels only
	binaryMagicEL = uint32(0x47435332) // "GCS2": with edge labels
)

// WriteBinary writes g in a compact binary CSR format, used by the
// checkpoint/reload load-balancing path (§4, "Load Balancing"). Edge
// labels, when present, are carried in a versioned section.
func WriteBinary(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	magic := binaryMagic
	if g.HasEdgeLabels() {
		magic = binaryMagicEL
	}
	hdr := []uint64{uint64(magic), uint64(g.NumVertices()), uint64(len(g.adj))}
	for _, h := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, h); err != nil {
			return err
		}
	}
	for _, section := range []any{g.offsets, g.adj, g.labels} {
		if err := binary.Write(bw, binary.LittleEndian, section); err != nil {
			return err
		}
	}
	if g.HasEdgeLabels() {
		if err := binary.Write(bw, binary.LittleEndian, g.edgeLabels); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary reads a graph produced by WriteBinary under the default loader
// limits.
func ReadBinary(r io.Reader) (*Graph, error) {
	return ReadBinaryLimits(r, DefaultLoaderLimits())
}

// ReadBinaryLimits is ReadBinary with explicit loader limits. The declared
// header sizes are checked against the limits BEFORE anything is allocated —
// a hostile header cannot force a multi-gigabyte allocation — and the decoded
// CSR structure is validated before the graph is returned, so downstream code
// indexing by offsets or neighbor ids cannot be made to panic by a crafted
// payload.
func ReadBinaryLimits(r io.Reader, lim LoaderLimits) (*Graph, error) {
	lim = lim.withDefaults()
	br := bufio.NewReader(r)
	var magic, n, m uint64
	for _, p := range []*uint64{&magic, &n, &m} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, err
		}
	}
	if uint32(magic) != binaryMagic && uint32(magic) != binaryMagicEL {
		return nil, fmt.Errorf("graph: bad binary magic %#x", magic)
	}
	// Bound the header before allocating. The uint64 comparisons are safe
	// for any declared size: limits are positive int64s, so the casts below
	// never truncate a value that passed the check.
	if n > uint64(lim.MaxVertices) {
		return nil, fmt.Errorf("graph: binary header declares %d vertices, limit is %d", n, lim.MaxVertices)
	}
	if m > uint64(lim.MaxDirectedEdges) {
		return nil, fmt.Errorf("graph: binary header declares %d directed edges, limit is %d", m, lim.MaxDirectedEdges)
	}
	g := &Graph{
		offsets: make([]int64, n+1),
		adj:     make([]VertexID, m),
		labels:  make([]Label, n),
	}
	for _, section := range []any{g.offsets, g.adj, g.labels} {
		if err := binary.Read(br, binary.LittleEndian, section); err != nil {
			return nil, err
		}
	}
	if uint32(magic) == binaryMagicEL {
		g.edgeLabels = make([]Label, m)
		if err := binary.Read(br, binary.LittleEndian, g.edgeLabels); err != nil {
			return nil, err
		}
	}
	if err := validateCSR(g, int64(m)); err != nil {
		return nil, err
	}
	return g, nil
}

// validateCSR checks the decoded arrays form a well-formed CSR before any
// accessor touches them: monotone offsets spanning exactly the adjacency
// section, and in-range neighbor ids. Graph.Validate checks the stronger
// semantic invariants (sortedness, symmetry) but itself indexes by offsets,
// so this structural pass must come first.
func validateCSR(g *Graph, m int64) error {
	if g.offsets[0] != 0 {
		return fmt.Errorf("graph: binary offsets start at %d, want 0", g.offsets[0])
	}
	for i := 1; i < len(g.offsets); i++ {
		if g.offsets[i] < g.offsets[i-1] {
			return fmt.Errorf("graph: binary offsets decrease at vertex %d", i-1)
		}
	}
	if last := g.offsets[len(g.offsets)-1]; last != m {
		return fmt.Errorf("graph: binary offsets end at %d, want %d", last, m)
	}
	n := VertexID(len(g.labels))
	for i, v := range g.adj {
		if v >= n {
			return fmt.Errorf("graph: binary adjacency slot %d holds out-of-range vertex %d", i, v)
		}
	}
	return nil
}
