package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteEdgeList writes g in a simple text format: a header line
// "# vertices <n>", one "v <id> <label>" line per vertex with a nonzero
// label, and one "<u> <v>" (or "<u> <v> <edgelabel>" for edge-labeled
// graphs) line per undirected edge.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# vertices %d\n", g.NumVertices()); err != nil {
		return err
	}
	for v := 0; v < g.NumVertices(); v++ {
		if l := g.Label(VertexID(v)); l != 0 {
			if _, err := fmt.Fprintf(bw, "v %d %d\n", v, l); err != nil {
				return err
			}
		}
	}
	labeled := g.HasEdgeLabels()
	for _, e := range g.Edges() {
		if labeled {
			l, _ := g.EdgeLabelBetween(e.U, e.V)
			if _, err := fmt.Fprintf(bw, "%d %d %d\n", e.U, e.V, l); err != nil {
				return err
			}
			continue
		}
		if _, err := fmt.Fprintf(bw, "%d %d\n", e.U, e.V); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses the format produced by WriteEdgeList. Lines starting
// with '#' other than the vertex header are ignored, as are blank lines.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	b := NewBuilder(0)
	// maxParsedVertices bounds text-format inputs; larger graphs should use
	// the binary format (whose header sizes its allocations exactly).
	const maxParsedVertices = 1 << 28
	ensure := func(v uint64) error {
		if v >= maxParsedVertices {
			return fmt.Errorf("graph: vertex id %d exceeds the text-format limit %d", v, uint64(maxParsedVertices))
		}
		for uint64(b.NumVertices()) <= v {
			b.AddVertex(0)
		}
		return nil
	}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			var n int64
			if _, err := fmt.Sscanf(line, "# vertices %d", &n); err == nil && n > 0 {
				if err := ensure(uint64(n) - 1); err != nil {
					return nil, err
				}
			}
			continue
		}
		fields := strings.Fields(line)
		switch {
		case fields[0] == "v" && len(fields) == 3:
			id, err1 := strconv.ParseUint(fields[1], 10, 32)
			l, err2 := strconv.ParseUint(fields[2], 10, 32)
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("graph: line %d: bad vertex line %q", lineNo, line)
			}
			if err := ensure(id); err != nil {
				return nil, err
			}
			b.SetLabel(VertexID(id), Label(l))
		case len(fields) == 2 || len(fields) == 3:
			u, err1 := strconv.ParseUint(fields[0], 10, 32)
			v, err2 := strconv.ParseUint(fields[1], 10, 32)
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("graph: line %d: bad edge line %q", lineNo, line)
			}
			if err := ensure(u); err != nil {
				return nil, err
			}
			if err := ensure(v); err != nil {
				return nil, err
			}
			if len(fields) == 3 {
				el, err := strconv.ParseUint(fields[2], 10, 32)
				if err != nil {
					return nil, fmt.Errorf("graph: line %d: bad edge label %q", lineNo, line)
				}
				b.AddEdgeLabeled(VertexID(u), VertexID(v), Label(el))
			} else {
				b.AddEdge(VertexID(u), VertexID(v))
			}
		default:
			return nil, fmt.Errorf("graph: line %d: unrecognized line %q", lineNo, line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return b.Build(), nil
}

const (
	binaryMagic   = uint32(0x47435352) // "GCSR": vertex labels only
	binaryMagicEL = uint32(0x47435332) // "GCS2": with edge labels
)

// WriteBinary writes g in a compact binary CSR format, used by the
// checkpoint/reload load-balancing path (§4, "Load Balancing"). Edge
// labels, when present, are carried in a versioned section.
func WriteBinary(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	magic := binaryMagic
	if g.HasEdgeLabels() {
		magic = binaryMagicEL
	}
	hdr := []uint64{uint64(magic), uint64(g.NumVertices()), uint64(len(g.adj))}
	for _, h := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, h); err != nil {
			return err
		}
	}
	for _, section := range []any{g.offsets, g.adj, g.labels} {
		if err := binary.Write(bw, binary.LittleEndian, section); err != nil {
			return err
		}
	}
	if g.HasEdgeLabels() {
		if err := binary.Write(bw, binary.LittleEndian, g.edgeLabels); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary reads a graph produced by WriteBinary.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	var magic, n, m uint64
	for _, p := range []*uint64{&magic, &n, &m} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, err
		}
	}
	if uint32(magic) != binaryMagic && uint32(magic) != binaryMagicEL {
		return nil, fmt.Errorf("graph: bad binary magic %#x", magic)
	}
	// Sanity-check the header before allocating: vertex ids are 32-bit and
	// m counts directed slots, so anything beyond these bounds is a
	// corrupt or hostile file, not a real graph.
	const maxBinaryVertices = uint64(1) << 32
	if n > maxBinaryVertices || m > 2*maxBinaryVertices {
		return nil, fmt.Errorf("graph: implausible binary header (n=%d, m=%d)", n, m)
	}
	g := &Graph{
		offsets: make([]int64, n+1),
		adj:     make([]VertexID, m),
		labels:  make([]Label, n),
	}
	for _, section := range []any{g.offsets, g.adj, g.labels} {
		if err := binary.Read(br, binary.LittleEndian, section); err != nil {
			return nil, err
		}
	}
	if uint32(magic) == binaryMagicEL {
		g.edgeLabels = make([]Label, m)
		if err := binary.Read(br, binary.LittleEndian, g.edgeLabels); err != nil {
			return nil, err
		}
	}
	return g, nil
}
