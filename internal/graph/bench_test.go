package graph

import (
	"math/rand"
	"testing"
)

func benchGraph(n, m int) *Graph {
	rng := rand.New(rand.NewSource(1))
	b := NewBuilder(n)
	for v := 0; v < n; v++ {
		b.SetLabel(VertexID(v), Label(rng.Intn(8)))
	}
	for i := 0; i < m; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			b.AddEdge(VertexID(u), VertexID(v))
		}
	}
	return b.Build()
}

func BenchmarkBuild(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchGraph(10000, 80000)
	}
}

func BenchmarkHasEdge(b *testing.B) {
	g := benchGraph(10000, 80000)
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.HasEdge(VertexID(rng.Intn(10000)), VertexID(rng.Intn(10000)))
	}
}

func BenchmarkNeighborsScan(b *testing.B) {
	g := benchGraph(10000, 80000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var total int
		for v := 0; v < g.NumVertices(); v++ {
			total += len(g.Neighbors(VertexID(v)))
		}
	}
}

func BenchmarkComputeStats(b *testing.B) {
	g := benchGraph(10000, 80000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ComputeStats(g)
	}
}
