package prototype

import (
	"strings"
	"testing"

	"approxmatch/internal/pattern"
)

// FuzzGenerate drives the prototype generator with parser-accepted templates
// from arbitrary text: generation must never panic, and the produced set must
// satisfy its structural invariants (base first, consistent distance index,
// symmetric DAG links). This is the fuzz surface behind the server's query
// path — pattern.Parse on a hostile body followed by Generate.
func FuzzGenerate(f *testing.F) {
	f.Add("v 0 1\nv 1 2\ne 0 1\n", 2)
	f.Add("v 0 *\nv 1 2\nv 2 3\ne 0 1\ne 1 2 mandatory\ne 2 0\n", 3)
	f.Add("e 0 1\ne 1 2\ne 2 3\ne 3 0\ne 0 2\n", 4)
	f.Fuzz(func(t *testing.T, in string, k int) {
		tpl, err := pattern.Parse(strings.NewReader(in))
		if err != nil {
			return
		}
		// Bound the search: prototype counts grow combinatorially with
		// template size, and the fuzzer's job here is crashing the
		// generator, not sizing it.
		if tpl.NumEdges() > 8 || tpl.NumVertices() > 10 {
			return
		}
		if k < 0 || k > 4 {
			return
		}
		set, err := Generate(tpl, k)
		if err != nil {
			return
		}
		if len(set.Protos) == 0 || set.Protos[0].Dist != 0 || set.Protos[0].Template != tpl {
			t.Fatalf("base prototype malformed: %+v", set.Protos[0])
		}
		if set.MaxDist > set.K {
			t.Fatalf("MaxDist %d exceeds K %d", set.MaxDist, set.K)
		}
		for d, ids := range set.ByDist {
			for _, pi := range ids {
				if set.Protos[pi].Dist != d {
					t.Fatalf("ByDist[%d] holds prototype %d at dist %d", d, pi, set.Protos[pi].Dist)
				}
			}
		}
		for pi, p := range set.Protos {
			if p.Index != pi {
				t.Fatalf("prototype %d has Index %d", pi, p.Index)
			}
			for _, ci := range p.Children {
				c := set.Protos[ci]
				if c.Dist != p.Dist+1 {
					t.Fatalf("child %d of %d at dist %d, want %d", ci, pi, c.Dist, p.Dist+1)
				}
				if !contains(c.Parents, pi) {
					t.Fatalf("child %d of %d lacks the back link", ci, pi)
				}
			}
			for _, qi := range p.Parents {
				if !contains(set.Protos[qi].Children, pi) {
					t.Fatalf("parent %d of %d lacks the forward link", qi, pi)
				}
			}
		}
	})
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
