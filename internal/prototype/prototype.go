// Package prototype generates the prototype set P_k of a search template —
// every connected, non-isomorphic variant obtained by deleting at most k
// optional edges (Def. 1 in the paper) — and exposes the edit-distance DAG
// (which prototypes are one edge removal apart) that powers the containment
// rule (Obs. 1), work recycling (Obs. 2) and the match-enumeration
// extension optimization (§4).
package prototype

import (
	"fmt"
	"math/bits"
	"sort"

	"approxmatch/internal/pattern"
)

// Prototype is one entry of P_k: a connected template variant at
// edit-distance Dist from the base template.
type Prototype struct {
	// Template is the prototype's own structure (same vertices/labels as
	// the base, subset of its edges).
	Template *pattern.Template
	// Dist is the edit-distance δ from the base template (0 = base).
	Dist int
	// Index is the prototype's position in Set.Protos.
	Index int
	// EdgeMask has bit i set iff base edge i is present in this prototype.
	EdgeMask uint64
	// Parents lists indices of prototypes at Dist-1 from which this one is
	// derived by removing one edge (empty for the base template).
	Parents []int
	// Children lists indices of prototypes at Dist+1 derived from this one
	// by removing one edge.
	Children []int
	// Canon is the canonical isomorphism code, shared by any other edge
	// subset isomorphic to this one.
	Canon string
}

// Set is the complete prototype set for a template and edit-distance bound.
type Set struct {
	// Base is the original search template H0.
	Base *pattern.Template
	// K is the requested edit-distance bound.
	K int
	// MaxDist is the furthest distance actually populated; it can be less
	// than K when further removals always disconnect the template.
	MaxDist int
	// Protos lists all prototypes; Protos[0] is the base template.
	Protos []*Prototype
	// ByDist[δ] lists prototype indices at distance δ.
	ByDist [][]int
	// ByMask maps every connected edge subset encountered during
	// generation to the prototype index of its isomorphism class
	// representative. Distinct masks can map to one index.
	ByMask map[uint64]int
}

// Generate builds the prototype set for template t within edit-distance k.
// Prototypes are deduplicated by label-preserving isomorphism; each retains
// links to its distance-one relatives. Mandatory edges are never removed.
// An error is returned when the base template has more than 64 edges (the
// edge-mask width) — far beyond any practical search template.
func Generate(t *pattern.Template, k int) (*Set, error) {
	if t.NumEdges() > 64 {
		return nil, fmt.Errorf("prototype: template has %d edges, limit 64", t.NumEdges())
	}
	if k < 0 {
		return nil, fmt.Errorf("prototype: negative edit-distance %d", k)
	}
	fullMask := uint64(0)
	if ne := t.NumEdges(); ne == 64 {
		fullMask = ^uint64(0)
	} else {
		fullMask = (uint64(1) << uint(t.NumEdges())) - 1
	}
	s := &Set{Base: t, K: k}
	base := &Prototype{Template: t, Dist: 0, Index: 0, EdgeMask: fullMask, Canon: pattern.CanonicalCode(t)}
	s.Protos = append(s.Protos, base)
	s.ByDist = append(s.ByDist, []int{0})

	// The BFS expands every connected edge subset (mask) level by level but
	// folds isomorphic masks into one Prototype per class: ByMask maps each
	// mask to its class index, byCanon maps canonical codes to class
	// indices within the current level. DAG links connect classes.
	s.ByMask = map[uint64]int{fullMask: 0}

	level := []uint64{fullMask}
	for dist := 1; dist <= k && len(level) > 0; dist++ {
		byCanon := make(map[string]int)
		var next []uint64
		var created []int
		for _, parentMask := range level {
			parentIdx := s.ByMask[parentMask]
			for ei := 0; ei < t.NumEdges(); ei++ {
				bit := uint64(1) << uint(ei)
				if parentMask&bit == 0 || t.Mandatory(ei) {
					continue
				}
				mask := parentMask &^ bit
				if ci, ok := s.ByMask[mask]; ok {
					link(s.Protos[parentIdx], s.Protos[ci])
					continue
				}
				sub, err := subTemplate(t, mask)
				if err != nil {
					continue // disconnected; not a prototype
				}
				canon := pattern.CanonicalCode(sub)
				ci, ok := byCanon[canon]
				if !ok {
					p := &Prototype{
						Template: sub,
						Dist:     dist,
						Index:    len(s.Protos),
						EdgeMask: mask,
						Canon:    canon,
					}
					s.Protos = append(s.Protos, p)
					byCanon[canon] = p.Index
					created = append(created, p.Index)
					ci = p.Index
				}
				s.ByMask[mask] = ci
				next = append(next, mask)
				link(s.Protos[parentIdx], s.Protos[ci])
			}
		}
		if len(created) > 0 {
			s.ByDist = append(s.ByDist, created)
			s.MaxDist = dist
		}
		level = next
	}
	for _, p := range s.Protos {
		sort.Ints(p.Parents)
		sort.Ints(p.Children)
		p.Parents = dedupInts(p.Parents)
		p.Children = dedupInts(p.Children)
	}
	return s, nil
}

// link records the parent/child relation between a distance-δ prototype and
// a distance-δ+1 prototype.
func link(parent, child *Prototype) {
	parent.Children = append(parent.Children, child.Index)
	child.Parents = append(child.Parents, parent.Index)
}

func dedupInts(xs []int) []int {
	out := xs[:0]
	for i, x := range xs {
		if i > 0 && x == xs[i-1] {
			continue
		}
		out = append(out, x)
	}
	return out
}

// subTemplate builds the template induced by keeping the base edges in
// mask, carrying mandatory flags and edge labels.
func subTemplate(t *pattern.Template, mask uint64) (*pattern.Template, error) {
	return t.Restrict(mask)
}

// Count returns the number of prototype isomorphism classes. The paper's
// prototype counts (e.g. 1,941 for the 6-Clique at k=4) enumerate connected
// edge subsets before isomorphism folding; MaskCount reports that number.
func (s *Set) Count() int { return len(s.Protos) }

// MaskCount returns the number of distinct connected edge subsets within
// the edit-distance bound — the paper's prototype count. Searching one
// representative per isomorphism class covers all of them (isomorphic
// prototypes have identical solution subgraphs).
func (s *Set) MaskCount() int { return len(s.ByMask) }

// MaskCountAt returns the number of connected edge subsets at distance δ.
func (s *Set) MaskCountAt(dist int) int {
	base := bits.OnesCount64(s.Protos[0].EdgeMask)
	n := 0
	for mask := range s.ByMask {
		if base-bits.OnesCount64(mask) == dist {
			n++
		}
	}
	return n
}

// CountAt returns the number of prototypes at distance δ (0 when δ exceeds
// MaxDist).
func (s *Set) CountAt(dist int) int {
	if dist < 0 || dist >= len(s.ByDist) {
		return 0
	}
	return len(s.ByDist[dist])
}

// At returns the prototype indices at distance δ.
func (s *Set) At(dist int) []int {
	if dist < 0 || dist >= len(s.ByDist) {
		return nil
	}
	return s.ByDist[dist]
}

// RemovedEdge returns the base-template edge ids present in parent but
// absent from child; for a distance-one pair this has length one when the
// masks differ by a single bit (mask-level relation). Because prototypes
// represent isomorphism classes, the difference can occasionally span more
// bits; callers needing the exact extra-edge semantics should use
// ExtensionEdges.
func (s *Set) RemovedEdge(parent, child int) []int {
	diff := s.Protos[parent].EdgeMask &^ s.Protos[child].EdgeMask
	var ids []int
	for i := 0; i < s.Base.NumEdges(); i++ {
		if diff&(1<<uint(i)) != 0 {
			ids = append(ids, i)
		}
	}
	return ids
}

// RemovedLabelPairs returns, for a given distance δ, the (wildcard-aware)
// set of label pairs of every base-template edge that is missing from at
// least one prototype at distance δ. When searching distance δ-1 inside the
// union of distance δ solution subgraphs (Obs. 1), edges whose label pair
// matches this set are retained even if no δ solution used them.
func (s *Set) RemovedLabelPairs(dist int) *pattern.PairSet {
	out := pattern.NewPairSet()
	for _, pi := range s.At(dist) {
		mask := s.Protos[pi].EdgeMask
		for i, e := range s.Base.Edges() {
			if mask&(1<<uint(i)) != 0 {
				continue
			}
			out.Add(s.Base.Label(e.I), s.Base.Label(e.J))
		}
	}
	return out
}
