package prototype

import (
	"approxmatch/internal/pattern"
)

// Flip support: §3.1 notes that "edge 'flip' (swapping edges while keeping
// the number of edges constant) fits our pipeline's design and requires
// small updates". A flip prototype removes one optional edge and adds one
// non-edge between existing template vertices, keeping the template
// connected and the edge count constant.

// Flip describes one flip prototype.
type Flip struct {
	// Template is the flipped template.
	Template *pattern.Template
	// Removed is the base edge index that was deleted.
	Removed int
	// Added is the new edge.
	Added pattern.Edge
	// Canon is the canonical code (deduplication key).
	Canon string
}

// Flips enumerates all distinct single-edge-flip prototypes of t:
// non-isomorphic connected variants with exactly one optional edge swapped
// for a currently-absent edge. Variants isomorphic to t itself are skipped
// (a flip that lands back on the same structure finds the same matches).
// Added edges carry the wildcard edge label when t is edge-labeled.
func Flips(t *pattern.Template) ([]*Flip, error) {
	baseCanon := pattern.CanonicalCode(t)
	seen := map[string]bool{baseCanon: true}
	var out []*Flip
	n := t.NumVertices()
	for ei := 0; ei < t.NumEdges(); ei++ {
		if t.Mandatory(ei) {
			continue
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if t.HasEdge(i, j) {
					continue
				}
				flipped, err := buildFlip(t, ei, pattern.Edge{I: i, J: j})
				if err != nil {
					continue // disconnected
				}
				canon := pattern.CanonicalCode(flipped)
				if seen[canon] {
					continue
				}
				seen[canon] = true
				out = append(out, &Flip{
					Template: flipped,
					Removed:  ei,
					Added:    pattern.Edge{I: i, J: j},
					Canon:    canon,
				})
			}
		}
	}
	return out, nil
}

// buildFlip constructs the template with edge ei removed and `added`
// appended, preserving edge labels and mandatory flags of the kept edges.
func buildFlip(t *pattern.Template, ei int, added pattern.Edge) (*pattern.Template, error) {
	var edges []pattern.Edge
	var mand []bool
	var elabels []pattern.Label
	hasEL := t.HasEdgeLabels()
	for i, e := range t.Edges() {
		if i == ei {
			continue
		}
		edges = append(edges, e)
		mand = append(mand, t.Mandatory(i))
		if hasEL {
			elabels = append(elabels, t.EdgeLabel(i))
		}
	}
	edges = append(edges, added)
	mand = append(mand, false)
	if hasEL {
		elabels = append(elabels, pattern.Wildcard)
	}
	return pattern.NewEdgeLabeled(t.Labels(), edges, elabels, mand)
}
