package prototype

import (
	"math/bits"
	"math/rand"
	"testing"
	"testing/quick"

	"approxmatch/internal/pattern"
)

func mustGen(t *testing.T, tp *pattern.Template, k int) *Set {
	t.Helper()
	s, err := Generate(tp, k)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestGenerateBaseOnly(t *testing.T) {
	tp := pattern.MustNew([]pattern.Label{1, 2}, []pattern.Edge{{I: 0, J: 1}})
	s := mustGen(t, tp, 3)
	if s.Count() != 1 || s.MaxDist != 0 {
		t.Fatalf("single-edge template: count=%d maxdist=%d", s.Count(), s.MaxDist)
	}
}

func TestGenerateTriangle(t *testing.T) {
	// Labeled triangle with distinct labels: k=1 gives 3 distinct paths
	// (labels make them non-isomorphic); k=2 disconnects, so MaxDist=1.
	tp := pattern.MustNew([]pattern.Label{1, 2, 3}, []pattern.Edge{{I: 0, J: 1}, {I: 1, J: 2}, {I: 0, J: 2}})
	s := mustGen(t, tp, 2)
	if got := s.CountAt(1); got != 3 {
		t.Errorf("k=1 prototypes = %d, want 3", got)
	}
	if s.MaxDist != 1 {
		t.Errorf("MaxDist = %d, want 1", s.MaxDist)
	}
	// Unlabeled triangle: the three paths are isomorphic — one class.
	un := pattern.MustNew(make([]pattern.Label, 3), []pattern.Edge{{I: 0, J: 1}, {I: 1, J: 2}, {I: 0, J: 2}})
	s2 := mustGen(t, un, 1)
	if got := s2.CountAt(1); got != 1 {
		t.Errorf("unlabeled k=1 prototypes = %d, want 1", got)
	}
}

func TestGenerateCliqueMotifCounts(t *testing.T) {
	// From an unlabeled 4-clique, the connected ≤k-distance prototypes are
	// exactly the connected 4-vertex graphs: K4, diamond, C4, paw, path,
	// star (6 classes at k ≤ 3).
	labels := make([]pattern.Label, 4)
	var edges []pattern.Edge
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			edges = append(edges, pattern.Edge{I: i, J: j})
		}
	}
	tp := pattern.MustNew(labels, edges)
	s := mustGen(t, tp, 6)
	if s.Count() != 6 {
		t.Errorf("4-clique classes = %d, want 6", s.Count())
	}
	wantAt := map[int]int{0: 1, 1: 1, 2: 2, 3: 2}
	for d, want := range wantAt {
		if got := s.CountAt(d); got != want {
			t.Errorf("distance %d: %d classes, want %d", d, got, want)
		}
	}
	if s.MaxDist != 3 {
		t.Errorf("MaxDist = %d, want 3", s.MaxDist)
	}
}

func TestGenerate6CliqueScale(t *testing.T) {
	// §5.5: the 6-Clique exploratory search sifts through 1,941 prototypes
	// in total; 1,365 at distance k=4. Within k=4 the set is 1+1+2+5+13
	// plus ... the paper's count includes all distances: verify the known
	// number of connected 6-vertex graphs reachable by ≤9 removals is 112
	// classes (total connected 6-vertex graphs); here we check k=4 counts
	// against the brute-force recount below instead of literature numbers.
	labels := make([]pattern.Label, 6)
	var edges []pattern.Edge
	for i := 0; i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			edges = append(edges, pattern.Edge{I: i, J: j})
		}
	}
	tp := pattern.MustNew(labels, edges)
	s := mustGen(t, tp, 4)
	for d := 0; d <= s.MaxDist; d++ {
		want := bruteClassCount(t, tp, d)
		if got := s.CountAt(d); got != want {
			t.Errorf("6-clique distance %d: %d classes, want %d", d, got, want)
		}
	}
}

// bruteClassCount counts isomorphism classes of connected spanning subgraphs
// of tp with exactly d edges removed, independently of Generate.
func bruteClassCount(t *testing.T, tp *pattern.Template, d int) int {
	t.Helper()
	ne := tp.NumEdges()
	canon := make(map[string]bool)
	full := (uint64(1) << uint(ne)) - 1
	var rec func(mask uint64, next, removed int)
	rec = func(mask uint64, next, removed int) {
		if removed == d {
			sub, err := subTemplate(tp, mask)
			if err != nil {
				return
			}
			canon[pattern.CanonicalCode(sub)] = true
			return
		}
		for i := next; i < ne; i++ {
			if tp.Mandatory(i) {
				continue
			}
			rec(mask&^(1<<uint(i)), i+1, removed+1)
		}
	}
	rec(full, 0, 0)
	return len(canon)
}

func TestPrototypeDAGInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tp := randomTemplate(rng)
		k := rng.Intn(3)
		s, err := Generate(tp, k)
		if err != nil {
			return false
		}
		for _, p := range s.Protos {
			// Dist equals removed edge count.
			if bits.OnesCount64(s.Protos[0].EdgeMask)-bits.OnesCount64(p.EdgeMask) != p.Dist {
				return false
			}
			// Connectivity & vertex preservation.
			if !p.Template.Connected() || p.Template.NumVertices() != tp.NumVertices() {
				return false
			}
			// Parent/child distances.
			for _, ci := range p.Children {
				if s.Protos[ci].Dist != p.Dist+1 {
					return false
				}
			}
			for _, pi := range p.Parents {
				if s.Protos[pi].Dist != p.Dist-1 {
					return false
				}
			}
			// Mandatory edges retained.
			for i := 0; i < tp.NumEdges(); i++ {
				if tp.Mandatory(i) && p.EdgeMask&(1<<uint(i)) == 0 {
					return false
				}
			}
		}
		// No two prototypes at the same distance are isomorphic.
		for d := 0; d <= s.MaxDist; d++ {
			ids := s.At(d)
			for i := 0; i < len(ids); i++ {
				for j := i + 1; j < len(ids); j++ {
					if pattern.Isomorphic(s.Protos[ids[i]].Template, s.Protos[ids[j]].Template) {
						return false
					}
				}
			}
			// Class counts match brute force.
			if s.CountAt(d) != bruteClassCount(t, tp, d) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMandatoryEdgesNeverRemoved(t *testing.T) {
	tp, err := pattern.NewWithMandatory(
		[]pattern.Label{1, 2, 3},
		[]pattern.Edge{{I: 0, J: 1}, {I: 1, J: 2}, {I: 0, J: 2}},
		[]bool{true, false, false},
	)
	if err != nil {
		t.Fatal(err)
	}
	s := mustGen(t, tp, 2)
	// Only edges 1 and 2 are removable; removing either leaves a connected
	// path; removing both disconnects. So: base + 2 prototypes at k=1.
	if s.Count() != 3 || s.CountAt(1) != 2 || s.MaxDist != 1 {
		t.Fatalf("mandatory generation: count=%d at1=%d maxdist=%d", s.Count(), s.CountAt(1), s.MaxDist)
	}
}

func TestRemovedLabelPairs(t *testing.T) {
	tp := pattern.MustNew([]pattern.Label{1, 2, 3}, []pattern.Edge{{I: 0, J: 1}, {I: 1, J: 2}, {I: 0, J: 2}})
	s := mustGen(t, tp, 1)
	pairs := s.RemovedLabelPairs(1)
	// Each k=1 prototype misses one distinct edge; all three label pairs
	// appear, and nothing else matches.
	for _, want := range [][2]pattern.Label{{1, 2}, {2, 3}, {1, 3}} {
		if !pairs.Matches(want[0], want[1]) {
			t.Errorf("pair %v missing", want)
		}
	}
	if pairs.Matches(1, 1) || pairs.Matches(7, 8) {
		t.Error("unexpected pair matched")
	}
}

func TestByMaskCoversAllConnectedSubsets(t *testing.T) {
	tp := pattern.MustNew(make([]pattern.Label, 4),
		[]pattern.Edge{{I: 0, J: 1}, {I: 1, J: 2}, {I: 2, J: 3}, {I: 0, J: 3}, {I: 0, J: 2}})
	s := mustGen(t, tp, 2)
	full := (uint64(1) << 5) - 1
	for d := 1; d <= s.MaxDist; d++ {
		// Every connected mask at distance d must be present in ByMask.
		var rec func(mask uint64, next, removed int)
		rec = func(mask uint64, next, removed int) {
			if removed == d {
				if _, err := subTemplate(tp, mask); err != nil {
					return
				}
				if _, ok := s.ByMask[mask]; !ok {
					t.Errorf("connected mask %b at distance %d missing from ByMask", mask, d)
				}
				return
			}
			for i := next; i < 5; i++ {
				rec(mask&^(1<<uint(i)), i+1, removed+1)
			}
		}
		rec(full, 0, 0)
	}
}

func randomTemplate(rng *rand.Rand) *pattern.Template {
	n := 2 + rng.Intn(4)
	labels := make([]pattern.Label, n)
	for i := range labels {
		labels[i] = pattern.Label(rng.Intn(3))
	}
	var edges []pattern.Edge
	for v := 1; v < n; v++ {
		edges = append(edges, pattern.Edge{I: rng.Intn(v), J: v})
	}
	for i := 0; i < rng.Intn(3); i++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a == b {
			continue
		}
		if a > b {
			a, b = b, a
		}
		e := pattern.Edge{I: a, J: b}
		dup := false
		for _, x := range edges {
			if x == e {
				dup = true
				break
			}
		}
		if !dup {
			edges = append(edges, e)
		}
	}
	tp, err := pattern.New(labels, edges)
	if err != nil {
		panic(err)
	}
	return tp
}

func TestGenerateErrors(t *testing.T) {
	tp := pattern.MustNew([]pattern.Label{1, 2}, []pattern.Edge{{I: 0, J: 1}})
	if _, err := Generate(tp, -1); err == nil {
		t.Error("negative k accepted")
	}
}

func TestMaskCountsMatchPaperScale(t *testing.T) {
	// 6-clique: mask counts per level are the binomials C(15, d) (every
	// ≤4-removal subset stays connected), totaling the paper's 1,941.
	labels := make([]pattern.Label, 6)
	var edges []pattern.Edge
	for i := 0; i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			edges = append(edges, pattern.Edge{I: i, J: j})
		}
	}
	s := mustGen(t, pattern.MustNew(labels, edges), 4)
	want := []int{1, 15, 105, 455, 1365}
	total := 0
	for d, w := range want {
		if got := s.MaskCountAt(d); got != w {
			t.Errorf("mask count at %d = %d, want %d", d, got, w)
		}
		total += w
	}
	if s.MaskCount() != total {
		t.Errorf("MaskCount = %d, want %d", s.MaskCount(), total)
	}
}

func TestRemovedEdgeHelper(t *testing.T) {
	tp := pattern.MustNew([]pattern.Label{1, 2, 3},
		[]pattern.Edge{{I: 0, J: 1}, {I: 1, J: 2}, {I: 0, J: 2}})
	s := mustGen(t, tp, 1)
	base := s.Protos[0]
	for _, ci := range base.Children {
		ids := s.RemovedEdge(0, ci)
		if len(ids) != 1 {
			t.Errorf("child %d: removed edges = %v", ci, ids)
		}
		if s.Protos[ci].EdgeMask|1<<uint(ids[0]) != base.EdgeMask {
			t.Errorf("child %d: mask relation broken", ci)
		}
	}
	// At/CountAt out-of-range behave.
	if s.At(99) != nil || s.CountAt(99) != 0 || s.CountAt(-1) != 0 {
		t.Error("out-of-range distance mishandled")
	}
}

func TestFlipsDirect(t *testing.T) {
	// C4 with distinct labels: each flip removes a cycle edge and adds a
	// diagonal, producing triangle-with-tail shapes.
	tp := pattern.MustNew([]pattern.Label{1, 2, 3, 4},
		[]pattern.Edge{{I: 0, J: 1}, {I: 1, J: 2}, {I: 2, J: 3}, {I: 0, J: 3}})
	flips, err := Flips(tp)
	if err != nil {
		t.Fatal(err)
	}
	if len(flips) == 0 {
		t.Fatal("no flips for C4")
	}
	seen := map[string]bool{pattern.CanonicalCode(tp): true}
	for _, f := range flips {
		if f.Template.NumEdges() != 4 || !f.Template.Connected() {
			t.Errorf("flip shape wrong: %v", f.Template)
		}
		if seen[f.Canon] {
			t.Errorf("duplicate flip class %q", f.Canon)
		}
		seen[f.Canon] = true
		if !tp.HasEdge(f.Added.I, f.Added.J) == false {
			// Added edge must have been absent in the base.
			t.Errorf("added edge %v existed", f.Added)
		}
	}
	// Edge-labeled base: added edges carry the wildcard.
	el, err := pattern.NewEdgeLabeled([]pattern.Label{1, 2, 3},
		[]pattern.Edge{{I: 0, J: 1}, {I: 1, J: 2}}, []pattern.Label{5, 6}, nil)
	if err != nil {
		t.Fatal(err)
	}
	flips, err = Flips(el)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range flips {
		id := f.Template.EdgeID(f.Added.I, f.Added.J)
		if f.Template.EdgeLabel(id) != pattern.Wildcard {
			t.Errorf("added edge label = %d, want wildcard", f.Template.EdgeLabel(id))
		}
	}
}
